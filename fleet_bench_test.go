package pi2bench

import (
	"bufio"
	"encoding/json"
	"os"
	"os/exec"
	"strings"
	"testing"

	"pi2/internal/campaign"
	"pi2/internal/fleet"
)

// TestMain lets this test binary double as a fleet worker: the benchmark
// below re-executes it with PI2_FLEET_WORKER=1 and speaks the protocol
// over its stdin/stdout.
func TestMain(m *testing.M) {
	if os.Getenv("PI2_FLEET_WORKER") == "1" {
		if err := fleet.Serve(os.Stdin, os.Stdout); err != nil {
			os.Exit(1)
		}
		os.Exit(0)
	}
	if os.Getenv("PI2_FLEET_SERVE") == "1" {
		if err := fleet.ServeTCP("127.0.0.1:0", os.Stdout, os.Stderr); err != nil {
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

type fleetBenchRes struct{ V int64 }

func init() {
	campaign.RegisterWireType(fleetBenchRes{})
	campaign.RegisterSource("fleetbench", func(raw []byte) ([]campaign.Task, error) {
		var sp struct {
			N int `json:"n"`
		}
		if err := json.Unmarshal(raw, &sp); err != nil {
			return nil, err
		}
		tasks := make([]campaign.Task, sp.N)
		for i := range tasks {
			tasks[i] = campaign.Task{
				Name: "fleetbench", SeedIndex: i,
				Run: func(tc *campaign.TaskCtx) any { return fleetBenchRes{V: tc.Seed} },
			}
		}
		return tasks, nil
	})
}

func fleetBenchGrid(b *testing.B, n int) ([]campaign.Task, campaign.ExecOptions) {
	b.Helper()
	raw, err := json.Marshal(struct {
		N int `json:"n"`
	}{N: n})
	if err != nil {
		b.Fatal(err)
	}
	src, _ := campaign.LookupSource("fleetbench")
	tasks, err := src(raw)
	if err != nil {
		b.Fatal(err)
	}
	return tasks, campaign.ExecOptions{Jobs: 1, BaseSeed: 1, Family: "fleetbench", Spec: raw}
}

// BenchmarkFleetDispatchOverhead prices the fleet protocol per cell: one
// campaign of b.N empty cells through a single worker process (JSON
// envelope + gob record round trip over pipes) against the same campaign
// through the in-process pool. The difference is the floor a cell's
// simulation work must dominate for -workers to pay off; BENCH_hotpath.json
// budgets both so a protocol regression fails the bench gate.
func BenchmarkFleetDispatchOverhead(b *testing.B) {
	b.Run("inproc", func(b *testing.B) {
		tasks, opt := fleetBenchGrid(b, b.N)
		b.ReportAllocs()
		b.ResetTimer()
		campaign.Execute(tasks, opt)
	})
	b.Run("fleet", func(b *testing.B) {
		exe, err := os.Executable()
		if err != nil {
			b.Fatal(err)
		}
		pool := fleet.NewPool(fleet.Config{
			Workers: 1,
			Command: []string{exe},
			Env:     []string{"PI2_FLEET_WORKER=1"},
		})
		defer pool.Close()
		// Spawn and init the worker outside the timer: process startup is
		// a per-campaign cost, not a per-cell one.
		warm, warmOpt := fleetBenchGrid(b, 1)
		warmOpt.Dispatch = pool
		campaign.Execute(warm, warmOpt)

		tasks, opt := fleetBenchGrid(b, b.N)
		opt.Dispatch = pool
		b.ReportAllocs()
		b.ResetTimer()
		campaign.Execute(tasks, opt)
	})
}

// BenchmarkFleetTCPDispatchOverhead prices the same empty cell through the
// TCP transport on loopback: a worker host process (re-exec'd with
// PI2_FLEET_SERVE=1), one connection, per-cell read deadlines armed. The
// delta over the stdio arm above is what -hosts costs on top of -workers
// before any real network is involved.
func BenchmarkFleetTCPDispatchOverhead(b *testing.B) {
	exe, err := os.Executable()
	if err != nil {
		b.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), "PI2_FLEET_SERVE=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		b.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		b.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		b.Fatalf("reading host announcement: %v", err)
	}
	addr := strings.TrimSpace(strings.TrimPrefix(line, "fleet: listening on "))

	pool := fleet.NewPool(fleet.Config{Hosts: []fleet.Host{{Addr: addr, Workers: 1}}})
	defer pool.Close()
	// Dial and handshake outside the timer: connection setup is a
	// per-campaign cost, not a per-cell one.
	warm, warmOpt := fleetBenchGrid(b, 1)
	warmOpt.Dispatch = pool
	campaign.Execute(warm, warmOpt)

	tasks, opt := fleetBenchGrid(b, b.N)
	opt.Dispatch = pool
	b.ReportAllocs()
	b.ResetTimer()
	campaign.Execute(tasks, opt)
}
