package sim

import (
	"testing"
	"time"

	"pi2/internal/packet"
)

// TestShiftPendingPreservesOrder checks that a shifted schedule fires the
// same callbacks in the same order at uniformly translated times.
func TestShiftPendingPreservesOrder(t *testing.T) {
	type fire struct {
		id int
		at time.Duration
	}
	run := func(shiftAt, delta time.Duration) []fire {
		s := New(1)
		var fired []fire
		for i, d := range []time.Duration{5, 3, 3, 9, 12, 7} {
			i, d := i, time.Duration(d)*time.Millisecond
			s.At(d, func() { fired = append(fired, fire{i, s.Now()}) })
		}
		s.Every(4*time.Millisecond, func() { fired = append(fired, fire{100, s.Now()}) })
		s.RunUntil(shiftAt)
		s.ShiftPending(delta)
		s.RunUntil(20*time.Millisecond + delta)
		return fired
	}
	base := run(2*time.Millisecond, 0)
	shifted := run(2*time.Millisecond, 50*time.Millisecond)
	if len(base) != len(shifted) {
		t.Fatalf("fire counts differ: %d vs %d", len(base), len(shifted))
	}
	for i := range base {
		if base[i].id != shifted[i].id {
			t.Fatalf("order differs at %d: %v vs %v", i, base[i], shifted[i])
		}
		if shifted[i].at != base[i].at+50*time.Millisecond {
			t.Fatalf("time not translated at %d: %v vs %v", i, base[i], shifted[i])
		}
	}
}

// TestShiftPendingZeroIsNoop checks delta=0 leaves the clock and schedule
// untouched (the zero-length-epoch identity the ff engine relies on).
func TestShiftPendingZeroIsNoop(t *testing.T) {
	s := New(1)
	n := 0
	s.At(3*time.Millisecond, func() { n++ })
	s.RunUntil(time.Millisecond)
	s.ShiftPending(0)
	if s.Now() != time.Millisecond {
		t.Fatalf("clock moved: %v", s.Now())
	}
	s.RunUntil(3 * time.Millisecond)
	if n != 1 {
		t.Fatalf("event lost: fired %d times", n)
	}
}

// TestShiftPendingAdvancesClock checks the clock jumps even with an empty
// schedule and that scheduling after a shift uses the new time base.
func TestShiftPendingAdvancesClock(t *testing.T) {
	s := New(1)
	s.RunUntil(10 * time.Millisecond)
	s.ShiftPending(90 * time.Millisecond)
	if s.Now() != 100*time.Millisecond {
		t.Fatalf("now = %v, want 100ms", s.Now())
	}
	if s.NowNanos() != int64(100*time.Millisecond) {
		t.Fatalf("NowNanos = %d", s.NowNanos())
	}
	fired := time.Duration(-1)
	s.After(time.Millisecond, func() { fired = s.Now() })
	s.Run()
	if fired != 101*time.Millisecond {
		t.Fatalf("fired at %v", fired)
	}
}

func TestShiftPendingNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative delta")
		}
	}()
	New(1).ShiftPending(-time.Nanosecond)
}

// TestCoordinatorShiftPending checks a sharded shift translates both the
// domain schedulers and the in-flight cross-domain arrivals, preserving the
// mailbox delivery invariant.
func TestCoordinatorShiftPending(t *testing.T) {
	look := 5 * time.Millisecond
	co := NewCoordinator(1, 2, look)
	d0, d1 := co.Domain(0), co.Domain(1)
	var got []time.Duration
	pool := d0.Sim().PacketPool()
	// A message in flight across the shift: sent in the first window,
	// arriving well after the shift point.
	d0.Sim().At(time.Millisecond, func() {
		p := pool.NewData(1, 0, packet.MSS, packet.NotECT)
		d0.Send(1, 20*time.Millisecond, p, func(p *packet.Packet) {
			got = append(got, d1.Sim().Now())
			d1.Sim().PacketPool().Release(p)
		})
	})
	co.RunUntil(10 * time.Millisecond)
	co.ShiftPending(100 * time.Millisecond)
	if co.Now() != 110*time.Millisecond {
		t.Fatalf("coordinator now = %v", co.Now())
	}
	co.RunUntil(200 * time.Millisecond)
	if len(got) != 1 || got[0] != 121*time.Millisecond {
		t.Fatalf("arrival = %v, want [121ms]", got)
	}
}
