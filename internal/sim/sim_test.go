package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New(1)
	var got []time.Duration
	for _, d := range []time.Duration{5, 1, 3, 2, 4} {
		d := d * time.Millisecond
		s.After(d, func() { got = append(got, s.Now()) })
	}
	s.Run()
	if len(got) != 5 {
		t.Fatalf("ran %d events, want 5", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Errorf("events out of order: %v", got)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", got)
		}
	}
}

func TestAfterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s := New(1)
	s.After(-time.Second, func() {})
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	ran := false
	tm := s.After(time.Millisecond, func() { ran = true })
	tm.Stop()
	s.Run()
	if ran {
		t.Error("stopped timer still fired")
	}
	// Stopping again (and stopping a zero Timer) must be safe.
	tm.Stop()
	var zero Timer
	zero.Stop()
	if zero.Active() {
		t.Error("zero Timer reports Active")
	}
}

func TestEveryTicksAndStops(t *testing.T) {
	s := New(1)
	n := 0
	var tm Timer
	tm = s.Every(10*time.Millisecond, func() {
		n++
		if n == 5 {
			tm.Stop()
		}
	})
	s.RunUntil(time.Second)
	if n != 5 {
		t.Errorf("ticked %d times, want 5", n)
	}
	if s.Now() != time.Second {
		t.Errorf("RunUntil left clock at %v", s.Now())
	}
}

func TestEveryZeroIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	New(1).Every(0, func() {})
}

func TestRunUntilIncludesBoundary(t *testing.T) {
	s := New(1)
	ran := false
	s.At(time.Second, func() { ran = true })
	s.RunUntil(time.Second)
	if !ran {
		t.Error("event exactly at the boundary did not run")
	}
}

func TestRunUntilExcludesLater(t *testing.T) {
	s := New(1)
	ran := false
	s.At(time.Second+1, func() { ran = true })
	s.RunUntil(time.Second)
	if ran {
		t.Error("event after the boundary ran")
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			s.After(time.Microsecond, recurse)
		}
	}
	s.After(0, recurse)
	s.Run()
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
}

func TestMaxEventsGuard(t *testing.T) {
	s := New(1)
	s.MaxEvents = 10
	var loop func()
	loop = func() { s.After(time.Millisecond, loop) }
	s.After(0, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("MaxEvents did not panic")
		}
	}()
	s.Run()
}

func TestRNGStreamsIndependent(t *testing.T) {
	a1 := New(7).RNG()
	// Taking a second stream first must not change the first stream's
	// draws for a fresh simulator with the same seed.
	s := New(7)
	b1 := s.RNG()
	_ = s.RNG()
	x, y := a1.Float64(), b1.Float64()
	if x != y {
		t.Errorf("first stream differs: %v vs %v", x, y)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []float64 {
		s := New(99)
		rng := s.RNG()
		var out []float64
		for i := 0; i < 50; i++ {
			d := time.Duration(rng.Int63n(int64(time.Second)))
			s.After(d, func() { out = append(out, rng.Float64()) })
		}
		s.Run()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d", i)
		}
	}
}

// TestPropertyOrdering: for any set of non-negative delays, execution order
// is a sorted permutation of the scheduled times.
func TestPropertyOrdering(t *testing.T) {
	f := func(raw []uint32) bool {
		s := New(1)
		want := make([]time.Duration, 0, len(raw))
		got := make([]time.Duration, 0, len(raw))
		for _, r := range raw {
			d := time.Duration(r) * time.Microsecond
			want = append(want, d)
			s.After(d, func() { got = append(got, s.Now()) })
		}
		s.Run()
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := New(1)
	if s.Step() {
		t.Error("Step on empty queue returned true")
	}
	s.After(0, func() {})
	if !s.Step() {
		t.Error("Step with pending event returned false")
	}
	if s.Processed() != 1 {
		t.Errorf("Processed = %d, want 1", s.Processed())
	}
}

func TestCancelledEventsSkippedByPending(t *testing.T) {
	s := New(1)
	t1 := s.After(time.Millisecond, func() {})
	s.After(2*time.Millisecond, func() {})
	t1.Stop()
	if got := s.Pending(); got != 1 {
		t.Errorf("Pending = %d, want 1", got)
	}
}

// TestPendingCounterTracksLifecycle exercises the O(1) live counter through
// schedule / cancel / double-cancel / fire / post-fire-cancel transitions.
func TestPendingCounterTracksLifecycle(t *testing.T) {
	s := New(1)
	timers := make([]Timer, 10)
	for i := range timers {
		timers[i] = s.After(time.Duration(i+1)*time.Millisecond, func() {})
	}
	if got := s.Pending(); got != 10 {
		t.Fatalf("Pending = %d, want 10", got)
	}
	timers[0].Stop() // cancel the heap top: must drain eagerly
	timers[5].Stop()
	timers[5].Stop() // double-stop must not double-decrement
	if got := s.Pending(); got != 8 {
		t.Fatalf("after stops: Pending = %d, want 8", got)
	}
	for i := 0; i < 3; i++ { // fire three events
		if !s.Step() {
			t.Fatal("Step found nothing to run")
		}
	}
	if got := s.Pending(); got != 5 {
		t.Fatalf("after 3 steps: Pending = %d, want 5", got)
	}
	timers[1].Stop() // already fired: must be a no-op
	if got := s.Pending(); got != 5 {
		t.Fatalf("after stopping fired timer: Pending = %d, want 5", got)
	}
	s.Run()
	if got := s.Pending(); got != 0 {
		t.Fatalf("after Run: Pending = %d, want 0", got)
	}
}

// TestEveryStopInsideOwnCallback: an Every ticker stopped from inside its
// own callback must not reschedule, and the queue must fully drain.
func TestEveryStopInsideOwnCallback(t *testing.T) {
	s := New(1)
	n := 0
	var tm Timer
	tm = s.Every(10*time.Millisecond, func() {
		n++
		if n == 3 {
			tm.Stop()
			tm.Stop() // second stop from the same callback: still safe
		}
	})
	s.RunUntil(time.Second)
	if n != 3 {
		t.Errorf("ticked %d times, want 3", n)
	}
	if got := s.Pending(); got != 0 {
		t.Errorf("Pending = %d after self-stop, want 0", got)
	}
	tm.Stop() // stop after drain: no-op
	if got := s.Pending(); got != 0 {
		t.Errorf("Pending = %d, want 0", got)
	}
}

// TestEveryStopFromEventAtSameTimestamp pins the same-instant semantics both
// ways. Events at one timestamp fire in scheduling order: a tick's next item
// is created only when the tick fires, so a stopper scheduled earlier for
// the same instant runs relative to the tick according to its seq.
func TestEveryStopFromEventAtSameTimestamp(t *testing.T) {
	// Case 1: ticker created first. At t=10ms the tick (scheduled at t=0)
	// has the lower seq, so it fires before the stopper: one tick lands,
	// then the stopper cancels the rescheduled tick.
	s := New(1)
	n := 0
	tm := s.Every(10*time.Millisecond, func() { n++ })
	s.At(10*time.Millisecond, func() { tm.Stop() })
	s.RunUntil(time.Second)
	if n != 1 {
		t.Errorf("ticker-first: ticked %d times, want 1", n)
	}
	if got := s.Pending(); got != 0 {
		t.Errorf("ticker-first: Pending = %d, want 0", got)
	}

	// Case 2: stopper scheduled before the ticker exists. Its seq is lower
	// than the first tick's, so at t=10ms it cancels the tick before the
	// tick can fire: zero ticks.
	s2 := New(1)
	m := 0
	var tm2 Timer
	s2.At(10*time.Millisecond, func() { tm2.Stop() })
	tm2 = s2.Every(10*time.Millisecond, func() { m++ })
	s2.RunUntil(time.Second)
	if m != 0 {
		t.Errorf("stopper-first: ticked %d times, want 0", m)
	}
	if got := s2.Pending(); got != 0 {
		t.Errorf("stopper-first: Pending = %d, want 0", got)
	}
}

// TestStopDrainsDeadHeapTop: cancelling the earliest events must not leave
// dead items at the heap top (the eager-drain path).
func TestStopDrainsDeadHeapTop(t *testing.T) {
	s := New(1)
	var head []Timer
	for i := 0; i < 5; i++ {
		head = append(head, s.After(time.Millisecond, func() {}))
	}
	ran := false
	s.After(time.Hour, func() { ran = true })
	for _, tm := range head {
		tm.Stop()
	}
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
	if !s.Step() || !ran {
		t.Error("surviving event did not run first")
	}
}

// TestTimerActiveLifecycle pins Active across schedule / stop / fire.
func TestTimerActiveLifecycle(t *testing.T) {
	s := New(1)
	t1 := s.After(time.Millisecond, func() {})
	if !t1.Active() {
		t.Error("pending timer not Active")
	}
	t1.Stop()
	if t1.Active() {
		t.Error("stopped timer still Active")
	}
	t2 := s.After(time.Millisecond, func() {})
	s.Run()
	if t2.Active() {
		t.Error("fired timer still Active")
	}
}

// TestStaleHandleDoesNotTouchRecycledSlot: a Timer held past its event's
// lifetime must not cancel the slot's next tenant (generation check).
func TestStaleHandleDoesNotTouchRecycledSlot(t *testing.T) {
	s := New(1)
	t1 := s.After(time.Millisecond, func() {})
	s.Run() // t1 fires; its slot goes to the free list
	ran := false
	t2 := s.After(time.Millisecond, func() { ran = true }) // reuses the slot
	t1.Stop()                                              // stale handle: must be a no-op
	if !t2.Active() {
		t.Fatal("stale Stop cancelled the slot's new tenant")
	}
	s.Run()
	if !ran {
		t.Fatal("recycled slot's event did not run")
	}
}

// TestSlabRecyclesSlots: a schedule/fire churn loop must not grow the slab
// past the peak number of concurrently pending events.
func TestSlabRecyclesSlots(t *testing.T) {
	s := New(1)
	for i := 0; i < 10000; i++ {
		s.After(time.Microsecond, func() {})
		s.Step()
	}
	if got := len(s.slab); got > 4 {
		t.Errorf("slab grew to %d slots for 1 concurrent event", got)
	}
}

// TestSteadyStateSchedulingDoesNotAllocate pins the zero-alloc property the
// scheduler exists for: once slab and heap have grown to the working set,
// schedule/fire/reschedule cycles allocate nothing.
func TestSteadyStateSchedulingDoesNotAllocate(t *testing.T) {
	s := New(1)
	// Warm up: grow slab, heap and free list to the working set.
	for i := 0; i < 64; i++ {
		s.After(time.Duration(i)*time.Microsecond, nop)
	}
	s.Run()
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			s.After(time.Duration(i)*time.Microsecond, nop)
		}
		s.Run()
	})
	if avg != 0 {
		t.Errorf("steady-state schedule/fire allocates %.1f allocs per cycle, want 0", avg)
	}
}

// nop is package-level so scheduling it captures nothing.
func nop() {}

func TestCancelStopsRunWithReason(t *testing.T) {
	s := New(1)
	ticks := 0
	s.Every(time.Millisecond, func() {
		ticks++
		if ticks == 5 {
			s.Cancel("test verdict")
		}
	})
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("canceled run did not panic")
		}
		c, ok := p.(Canceled)
		if !ok {
			t.Fatalf("panic value %T, want sim.Canceled", p)
		}
		if c.Reason != "test verdict" {
			t.Errorf("reason %q", c.Reason)
		}
		if c.CancelReason() != c.Reason {
			t.Error("CancelReason does not echo the reason")
		}
		// The in-flight callback finishes before the unwind: exactly the
		// 5 ticks that ran, never a 6th.
		if ticks != 5 {
			t.Errorf("%d ticks ran after cancellation", ticks)
		}
	}()
	s.RunUntil(time.Second)
}

func TestNowNanosTracksVirtualClock(t *testing.T) {
	s := New(1)
	if got := s.NowNanos(); got != 0 {
		t.Fatalf("initial NowNanos %d", got)
	}
	var seen int64
	s.At(3*time.Millisecond, func() { seen = s.NowNanos() })
	s.RunUntil(10 * time.Millisecond)
	if seen != int64(3*time.Millisecond) {
		t.Errorf("NowNanos inside event %d, want 3ms", seen)
	}
	if got := s.NowNanos(); got != int64(10*time.Millisecond) {
		t.Errorf("NowNanos after RunUntil %d, want 10ms", got)
	}
}
