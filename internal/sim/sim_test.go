package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New(1)
	var got []time.Duration
	for _, d := range []time.Duration{5, 1, 3, 2, 4} {
		d := d * time.Millisecond
		s.After(d, func() { got = append(got, s.Now()) })
	}
	s.Run()
	if len(got) != 5 {
		t.Fatalf("ran %d events, want 5", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Errorf("events out of order: %v", got)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", got)
		}
	}
}

func TestAfterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s := New(1)
	s.After(-time.Second, func() {})
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	ran := false
	tm := s.After(time.Millisecond, func() { ran = true })
	tm.Stop()
	s.Run()
	if ran {
		t.Error("stopped timer still fired")
	}
	// Stopping again (and stopping nil) must be safe.
	tm.Stop()
	var nilTimer *Timer
	nilTimer.Stop()
}

func TestEveryTicksAndStops(t *testing.T) {
	s := New(1)
	n := 0
	var tm *Timer
	tm = s.Every(10*time.Millisecond, func() {
		n++
		if n == 5 {
			tm.Stop()
		}
	})
	s.RunUntil(time.Second)
	if n != 5 {
		t.Errorf("ticked %d times, want 5", n)
	}
	if s.Now() != time.Second {
		t.Errorf("RunUntil left clock at %v", s.Now())
	}
}

func TestEveryZeroIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	New(1).Every(0, func() {})
}

func TestRunUntilIncludesBoundary(t *testing.T) {
	s := New(1)
	ran := false
	s.At(time.Second, func() { ran = true })
	s.RunUntil(time.Second)
	if !ran {
		t.Error("event exactly at the boundary did not run")
	}
}

func TestRunUntilExcludesLater(t *testing.T) {
	s := New(1)
	ran := false
	s.At(time.Second+1, func() { ran = true })
	s.RunUntil(time.Second)
	if ran {
		t.Error("event after the boundary ran")
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			s.After(time.Microsecond, recurse)
		}
	}
	s.After(0, recurse)
	s.Run()
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
}

func TestMaxEventsGuard(t *testing.T) {
	s := New(1)
	s.MaxEvents = 10
	var loop func()
	loop = func() { s.After(time.Millisecond, loop) }
	s.After(0, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("MaxEvents did not panic")
		}
	}()
	s.Run()
}

func TestRNGStreamsIndependent(t *testing.T) {
	a1 := New(7).RNG()
	// Taking a second stream first must not change the first stream's
	// draws for a fresh simulator with the same seed.
	s := New(7)
	b1 := s.RNG()
	_ = s.RNG()
	x, y := a1.Float64(), b1.Float64()
	if x != y {
		t.Errorf("first stream differs: %v vs %v", x, y)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []float64 {
		s := New(99)
		rng := s.RNG()
		var out []float64
		for i := 0; i < 50; i++ {
			d := time.Duration(rng.Int63n(int64(time.Second)))
			s.After(d, func() { out = append(out, rng.Float64()) })
		}
		s.Run()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d", i)
		}
	}
}

// TestPropertyOrdering: for any set of non-negative delays, execution order
// is a sorted permutation of the scheduled times.
func TestPropertyOrdering(t *testing.T) {
	f := func(raw []uint32) bool {
		s := New(1)
		want := make([]time.Duration, 0, len(raw))
		got := make([]time.Duration, 0, len(raw))
		for _, r := range raw {
			d := time.Duration(r) * time.Microsecond
			want = append(want, d)
			s.After(d, func() { got = append(got, s.Now()) })
		}
		s.Run()
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := New(1)
	if s.Step() {
		t.Error("Step on empty queue returned true")
	}
	s.After(0, func() {})
	if !s.Step() {
		t.Error("Step with pending event returned false")
	}
	if s.Processed() != 1 {
		t.Errorf("Processed = %d, want 1", s.Processed())
	}
}

func TestCancelledEventsSkippedByPending(t *testing.T) {
	s := New(1)
	t1 := s.After(time.Millisecond, func() {})
	s.After(2*time.Millisecond, func() {})
	t1.Stop()
	if got := s.Pending(); got != 1 {
		t.Errorf("Pending = %d, want 1", got)
	}
}
