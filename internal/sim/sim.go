// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps a virtual clock in integer nanoseconds (time.Duration)
// and a binary-heap event queue. Events scheduled for the same instant fire
// in the order they were scheduled, which keeps simulations fully
// deterministic for a given seed. All network components in this repository
// (links, AQMs, TCP endpoints, traffic sources) are driven from a single
// Simulator; nothing reads the wall clock.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a closure to run at a simulated instant.
type Event func()

type item struct {
	at   time.Duration
	seq  uint64 // tie-break: FIFO among equal timestamps
	fn   Event
	dead bool // cancelled
	idx  int
}

type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	it := x.(*item)
	it.idx = len(*h)
	*h = append(*h, it)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.idx = -1
	*h = old[:n-1]
	return it
}

// Timer is a handle to a scheduled event; it can be cancelled.
type Timer struct {
	s  *Simulator
	it *item
}

// Stop cancels the timer. It is safe to call on an already-fired or
// already-stopped timer, and safe to call on a nil Timer — including from
// inside the timer's own callback (an Every ticker stopping itself).
func (t *Timer) Stop() {
	if t == nil || t.it == nil || t.it.dead {
		return
	}
	t.it.dead = true
	// An item still in the heap (idx >= 0) counts toward live; one that
	// already popped for execution was decremented in Step.
	if t.it.idx >= 0 {
		t.s.live--
		// Eagerly drain dead items off the heap top so peek/Step never
		// accumulate a prefix of cancelled events.
		for len(t.s.heap) > 0 && t.s.heap[0].dead {
			heap.Pop(&t.s.heap)
		}
	}
}

// Simulator is a discrete-event scheduler with a virtual clock.
// The zero value is not usable; call New.
type Simulator struct {
	now  time.Duration
	heap eventHeap
	seq  uint64
	rng  *rand.Rand
	// live counts scheduled events that are neither cancelled nor fired,
	// so Pending is O(1) instead of a heap scan.
	live int

	// processed counts events executed, for diagnostics and run limits.
	processed uint64
	// MaxEvents aborts Run with a panic if exceeded (0 = unlimited).
	// It is a guard against accidentally unbounded simulations in tests.
	MaxEvents uint64
}

// New returns a Simulator whose RNG streams derive from seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Processed reports how many events have executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// RNG returns a new independent random stream seeded from the simulator's
// root RNG. Components should each take their own stream at construction so
// adding a component does not perturb the draws seen by others.
func (s *Simulator) RNG() *rand.Rand {
	return rand.New(rand.NewSource(s.rng.Int63()))
}

// At schedules fn at an absolute virtual time. Scheduling in the past
// (before Now) panics: it would break causality.
func (s *Simulator) At(t time.Duration, fn Event) *Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	it := &item{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.heap, it)
	s.live++
	return &Timer{s: s, it: it}
}

// After schedules fn delay from now. Negative delays panic.
func (s *Simulator) After(delay time.Duration, fn Event) *Timer {
	return s.At(s.now+delay, fn)
}

// Every schedules fn every interval, starting one interval from now,
// until the returned Timer is stopped. fn observes the tick time via Now.
func (s *Simulator) Every(interval time.Duration, fn Event) *Timer {
	if interval <= 0 {
		panic("sim: Every interval must be positive")
	}
	t := &Timer{s: s}
	var tick func()
	tick = func() {
		fn()
		if !t.it.dead { // fn may have stopped us
			t.it = s.After(interval, tick).it
		}
	}
	t.it = s.After(interval, tick).it
	return t
}

// Step executes the next pending event, if any, and reports whether one ran.
func (s *Simulator) Step() bool {
	for len(s.heap) > 0 {
		it := heap.Pop(&s.heap).(*item)
		if it.dead {
			continue // already uncounted by Stop
		}
		s.live--
		// Monotone-clock invariant: the heap must never yield an event
		// before the current time. At() rejects past scheduling, so a
		// violation here means the event queue itself is corrupted; the
		// auditor-backed harness relies on this holding unconditionally.
		if it.at < s.now {
			panic(fmt.Sprintf("sim: clock went backwards: next event at %v, now %v", it.at, s.now))
		}
		s.now = it.at
		s.processed++
		if s.MaxEvents > 0 && s.processed > s.MaxEvents {
			panic("sim: MaxEvents exceeded")
		}
		it.fn()
		return true
	}
	return false
}

// RunUntil executes events until the virtual clock would pass end, then sets
// the clock to end. Events scheduled exactly at end do run.
func (s *Simulator) RunUntil(end time.Duration) {
	for {
		it := s.peek()
		if it == nil || it.at > end {
			break
		}
		s.Step()
	}
	if s.now < end {
		s.now = end
	}
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// Pending reports the number of live events in the queue in O(1).
func (s *Simulator) Pending() int { return s.live }

func (s *Simulator) peek() *item {
	for len(s.heap) > 0 {
		if s.heap[0].dead {
			heap.Pop(&s.heap)
			continue
		}
		return s.heap[0]
	}
	return nil
}
