// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine keeps a virtual clock in integer nanoseconds (time.Duration)
// and a hand-specialized 4-ary min-heap event queue. Events scheduled for
// the same instant fire in the order they were scheduled, which keeps
// simulations fully deterministic for a given seed. All network components
// in this repository (links, AQMs, TCP endpoints, traffic sources) are
// driven from a single Simulator; nothing reads the wall clock.
//
// The scheduler is allocation-free in steady state: events live in a slab
// of inline structs with a free list (no container/heap interface boxing,
// no per-event pointer allocation), the heap orders small slab indices, and
// Timer is a generation-checked value handle, so scheduling, firing,
// cancelling and recurring ticks all recycle slots instead of allocating.
// Only slab/heap growth allocates, and that is amortized away once a
// simulation reaches its peak number of concurrently pending events.
package sim

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"pi2/internal/packet"
)

// Event is a closure to run at a simulated instant.
type Event func()

// slot is one scheduler entry in the slab. Free slots are tracked by index
// on the free list; gen is bumped every time a slot is recycled so stale
// Timer handles (lazy deletion) can never touch the slot's next tenant.
type slot struct {
	at    time.Duration
	seq   uint64 // tie-break: FIFO among equal timestamps
	fn    Event
	every time.Duration // recurring interval (0 = one-shot)
	gen   uint32
	pos   int32 // heap position; noPos while executing or free
	dead  bool  // cancelled
}

// noPos marks a slot that is not in the heap (free or currently executing).
const noPos = -1

// Timer is a handle to a scheduled event; it can be cancelled. It is a
// small value (not a pointer): copies are interchangeable, and the zero
// Timer is inert — Stop and Active on it are safe no-ops. A handle whose
// event already fired (or was stopped) is recognized by its generation and
// ignored, so holding a Timer past its event's lifetime is always safe.
type Timer struct {
	s   *Simulator
	idx int32
	gen uint32
}

// Stop cancels the timer. It is safe to call on an already-fired or
// already-stopped timer, and safe to call on a zero Timer — including from
// inside the timer's own callback (an Every ticker stopping itself).
func (t Timer) Stop() {
	s := t.s
	if s == nil {
		return
	}
	sl := &s.slab[t.idx]
	if sl.gen != t.gen || sl.dead {
		return
	}
	sl.dead = true
	// A slot still in the heap (pos >= 0) counts toward live; one that
	// already popped for execution was decremented in Step.
	if sl.pos >= 0 {
		s.live--
		// Eagerly drain dead slots off the heap top so peek/Step never
		// accumulate a prefix of cancelled events.
		for len(s.heap) > 0 && s.slab[s.heap[0]].dead {
			s.release(s.popTop())
		}
	}
}

// Active reports whether the timer's event is still pending or currently
// executing (i.e. Stop would have an effect on a pending event, or the
// callback is on the stack right now). It is false for the zero Timer and
// for handles whose event already fired or was stopped.
func (t Timer) Active() bool {
	if t.s == nil {
		return false
	}
	sl := &t.s.slab[t.idx]
	return sl.gen == t.gen && !sl.dead
}

// Simulator is a discrete-event scheduler with a virtual clock.
// The zero value is not usable; call New.
type Simulator struct {
	now  time.Duration
	slab []slot
	heap []int32 // slab indices ordered as a 4-ary min-heap on (at, seq)
	free []int32 // recycled slab indices, LIFO
	seq  uint64
	rng  *rand.Rand
	// live counts scheduled events that are neither cancelled nor fired,
	// so Pending is O(1) instead of a heap scan.
	live int

	// pool recycles this simulation's packets (see packet.Pool); keeping
	// it on the Simulator gives every component a shared per-run free list
	// without threading one through each constructor.
	pool packet.Pool

	// processed counts events executed, for diagnostics and run limits.
	processed uint64
	// MaxEvents aborts Run with a panic if exceeded (0 = unlimited).
	// It is a guard against accidentally unbounded simulations in tests.
	MaxEvents uint64

	// canceled is the cooperative-cancellation flag; it is the only
	// simulator state another goroutine may touch (the campaign watchdog
	// calls Cancel from its monitor goroutine). cancelMsg is written before
	// the flag's release-store, so the Step that observes the flag also
	// sees the reason.
	canceled  atomic.Bool
	cancelMsg string
	// nowAtomic mirrors now so NowNanos can be read from other goroutines
	// (the watchdog's sim-time stall detector) without a lock.
	nowAtomic atomic.Int64
}

// Canceled is the panic value Step raises after Cancel. It unwinds the
// simulation loop to whoever owns the run (the campaign engine recovers it
// and marks the cell timed-out instead of failed-with-a-bug).
type Canceled struct{ Reason string }

// CancelReason marks the panic as a cooperative cancellation; callers detect
// it structurally (interface{ CancelReason() string }) so packages that
// recover it need not import sim.
func (c Canceled) CancelReason() string { return c.Reason }

func (c Canceled) String() string { return "sim: canceled: " + c.Reason }

// Cancel requests that the simulation stop at the next event boundary: the
// next Step call panics with Canceled{Reason}. It is the one Simulator
// method that is safe to call from another goroutine; everything else is
// single-threaded. Cancel never interrupts an event callback mid-flight —
// a callback that loops forever can only be abandoned, not canceled.
func (s *Simulator) Cancel(reason string) {
	s.cancelMsg = reason
	s.canceled.Store(true)
}

// NowNanos returns the virtual clock in integer nanoseconds, readable from
// any goroutine. The campaign watchdog polls it to detect cells whose wall
// clock runs but whose virtual clock does not (a stuck control loop).
func (s *Simulator) NowNanos() int64 { return s.nowAtomic.Load() }

// New returns a Simulator whose RNG streams derive from seed.
func New(seed int64) *Simulator {
	s := &Simulator{rng: rand.New(rand.NewSource(seed))}
	s.pool.Poison = packet.PoisonFreed
	return s
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Processed reports how many events have executed so far.
func (s *Simulator) Processed() uint64 { return s.processed }

// PacketPool returns the simulation's packet free list.
func (s *Simulator) PacketPool() *packet.Pool { return &s.pool }

// RNG returns a new independent random stream seeded from the simulator's
// root RNG. Components should each take their own stream at construction so
// adding a component does not perturb the draws seen by others.
func (s *Simulator) RNG() *rand.Rand {
	return rand.New(rand.NewSource(s.rng.Int63()))
}

// alloc pops a free slot, growing the slab when the free list is empty.
func (s *Simulator) alloc() int32 {
	if n := len(s.free); n > 0 {
		idx := s.free[n-1]
		s.free = s.free[:n-1]
		return idx
	}
	s.slab = append(s.slab, slot{})
	return int32(len(s.slab) - 1)
}

// release recycles a slot. Bumping gen invalidates every outstanding Timer
// handle for the slot's previous tenancy (a 32-bit wrap would need four
// billion recycles of one slot while a stale handle is still held).
func (s *Simulator) release(idx int32) {
	sl := &s.slab[idx]
	sl.fn = nil
	sl.every = 0
	sl.dead = false
	sl.pos = noPos
	sl.gen++
	s.free = append(s.free, idx)
}

// schedule allocates, fills and enqueues a slot.
func (s *Simulator) schedule(at time.Duration, fn Event, every time.Duration) Timer {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	idx := s.alloc()
	sl := &s.slab[idx]
	sl.at = at
	sl.seq = s.seq
	sl.fn = fn
	sl.every = every
	s.seq++
	s.push(idx)
	s.live++
	return Timer{s: s, idx: idx, gen: sl.gen}
}

// At schedules fn at an absolute virtual time. Scheduling in the past
// (before Now) panics: it would break causality.
func (s *Simulator) At(t time.Duration, fn Event) Timer {
	return s.schedule(t, fn, 0)
}

// After schedules fn delay from now. Negative delays panic.
func (s *Simulator) After(delay time.Duration, fn Event) Timer {
	return s.schedule(s.now+delay, fn, 0)
}

// Every schedules fn every interval, starting one interval from now,
// until the returned Timer is stopped. fn observes the tick time via Now.
// The ticker reuses one slab slot for its whole lifetime: rescheduling
// after each tick allocates nothing.
func (s *Simulator) Every(interval time.Duration, fn Event) Timer {
	if interval <= 0 {
		panic("sim: Every interval must be positive")
	}
	return s.schedule(s.now+interval, fn, interval)
}

// Step executes the next pending event, if any, and reports whether one ran.
func (s *Simulator) Step() bool {
	if s.canceled.Load() {
		panic(Canceled{Reason: s.cancelMsg})
	}
	for len(s.heap) > 0 {
		idx := s.popTop()
		sl := &s.slab[idx]
		if sl.dead {
			s.release(idx) // already uncounted by Stop
			continue
		}
		s.live--
		// Monotone-clock invariant: the heap must never yield an event
		// before the current time. At() rejects past scheduling, so a
		// violation here means the event queue itself is corrupted; the
		// auditor-backed harness relies on this holding unconditionally.
		if sl.at < s.now {
			panic(fmt.Sprintf("sim: clock went backwards: next event at %v, now %v", sl.at, s.now))
		}
		s.now = sl.at
		s.nowAtomic.Store(int64(sl.at))
		s.processed++
		if s.MaxEvents > 0 && s.processed > s.MaxEvents {
			panic("sim: MaxEvents exceeded")
		}
		sl.fn()
		// fn may have scheduled events and grown the slab; the old slot
		// pointer could be stale, so re-derive it before touching it.
		sl = &s.slab[idx]
		if sl.every > 0 && !sl.dead {
			// Recurring tick: reschedule in place. The sequence number is
			// assigned after fn ran, exactly as if the callback had
			// re-armed itself, so same-instant ordering is unchanged.
			sl.at = s.now + sl.every
			sl.seq = s.seq
			s.seq++
			s.push(idx)
			s.live++
		} else {
			s.release(idx)
		}
		return true
	}
	return false
}

// RunUntil executes events until the virtual clock would pass end, then sets
// the clock to end. Events scheduled exactly at end do run.
func (s *Simulator) RunUntil(end time.Duration) {
	for {
		at, ok := s.peek()
		if !ok || at > end {
			break
		}
		s.Step()
	}
	if s.now < end {
		s.now = end
		s.nowAtomic.Store(int64(end))
	}
}

// RunBefore executes events strictly before end, then sets the clock to
// end. It is the window primitive of the sharded coordinator: events
// exactly at a window boundary belong to the next window (or to the final
// inclusive RunUntil pass), so a message arriving precisely at a barrier is
// never raced by the window that produced it.
func (s *Simulator) RunBefore(end time.Duration) {
	for {
		at, ok := s.peek()
		if !ok || at >= end {
			break
		}
		s.Step()
	}
	if s.now < end {
		s.now = end
		s.nowAtomic.Store(int64(end))
	}
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// Pending reports the number of live events in the queue in O(1).
func (s *Simulator) Pending() int { return s.live }

// peek reports the earliest live event's time, draining dead heap tops.
func (s *Simulator) peek() (time.Duration, bool) {
	for len(s.heap) > 0 {
		idx := s.heap[0]
		if s.slab[idx].dead {
			s.release(s.popTop())
			continue
		}
		return s.slab[idx].at, true
	}
	return 0, false
}

// --- 4-ary min-heap on (at, seq) over slab indices ---
//
// A 4-ary layout halves the tree depth of a binary heap; with the hot
// comparison data inline in the slab (no interface dispatch) the wider
// node's extra comparisons are cheaper than the extra levels.

// less orders two slab indices by (at, seq). seq is unique, so the order
// is total and pop order is independent of heap arity and layout.
func (s *Simulator) less(a, b int32) bool {
	x, y := &s.slab[a], &s.slab[b]
	if x.at != y.at {
		return x.at < y.at
	}
	return x.seq < y.seq
}

// push appends a slot index and restores the heap property upward.
func (s *Simulator) push(idx int32) {
	i := len(s.heap)
	s.heap = append(s.heap, idx)
	for i > 0 {
		p := (i - 1) / 4
		if !s.less(idx, s.heap[p]) {
			break
		}
		s.heap[i] = s.heap[p]
		s.slab[s.heap[i]].pos = int32(i)
		i = p
	}
	s.heap[i] = idx
	s.slab[idx].pos = int32(i)
}

// popTop removes and returns the minimum slot index.
func (s *Simulator) popTop() int32 {
	top := s.heap[0]
	s.slab[top].pos = noPos
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	if last > 0 {
		s.siftDown(0)
	}
	return top
}

// siftDown restores the heap property downward from position i.
func (s *Simulator) siftDown(i int) {
	n := len(s.heap)
	idx := s.heap[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		best := c
		for j := c + 1; j < end; j++ {
			if s.less(s.heap[j], s.heap[best]) {
				best = j
			}
		}
		if !s.less(s.heap[best], idx) {
			break
		}
		s.heap[i] = s.heap[best]
		s.slab[s.heap[i]].pos = int32(i)
		i = best
	}
	s.heap[i] = idx
	s.slab[idx].pos = int32(i)
}
