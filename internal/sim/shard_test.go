package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"pi2/internal/packet"
)

// pingPong wires a deterministic two-domain workload: domain 0 fires a
// packet to domain 1 every ms with the given one-way delay; domain 1 echoes
// each arrival straight back. Each domain records its own deliveries in its
// own trace (domains run on separate goroutines, so a shared recorder would
// itself be a race).
func pingPong(seed int64, look, oneWay time.Duration) (*Coordinator, *[2][]string) {
	co := NewCoordinator(seed, 2, look)
	traces := &[2][]string{}
	d0, d1 := co.Domain(0), co.Domain(1)
	var echo func(p *packet.Packet)
	echo = func(p *packet.Packet) {
		traces[1] = append(traces[1], fmt.Sprintf("%v #%d", d1.Sim().Now(), p.FlowID))
		d1.Send(0, oneWay, p, func(p *packet.Packet) {
			traces[0] = append(traces[0], fmt.Sprintf("%v #%d", d0.Sim().Now(), p.FlowID))
		})
	}
	id := 0
	d0.Sim().Every(time.Millisecond, func() {
		id++
		p := packet.NewData(id, 0, 100, packet.NotECT)
		d0.Send(1, oneWay, p, echo)
	})
	return co, traces
}

func TestCoordinatorPingPongDeterministic(t *testing.T) {
	run := func() ([2][]string, uint64) {
		co, traces := pingPong(5, 2*time.Millisecond, 3*time.Millisecond)
		co.RunUntil(50 * time.Millisecond)
		return *traces, co.Processed()
	}
	tracesA, evA := run()
	tracesB, evB := run()
	if evA != evB {
		t.Fatalf("event counts differ across identical runs: %d vs %d", evA, evB)
	}
	for dom := range tracesA {
		a, b := tracesA[dom], tracesB[dom]
		if len(a) == 0 {
			t.Fatalf("domain %d recorded no deliveries", dom)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("domain %d delivery %d differs: %q vs %q", dom, i, a[i], b[i])
			}
		}
	}
	// Sanity: timestamps are the scheduled instants (send at k ms, echo
	// delivered at k+3 ms, returned to d0 at k+6 ms).
	if tracesA[1][0] != "4ms #1" {
		t.Errorf("first delivery = %q, want \"4ms #1\"", tracesA[1][0])
	}
	if tracesA[0][0] != "7ms #1" {
		t.Errorf("first echo = %q, want \"7ms #1\"", tracesA[0][0])
	}
}

// TestCoordinatorBoundaryArrivalDelivered: an arrival landing exactly on the
// RunUntil horizon must still fire — the final fixpoint loop re-runs
// inclusive windows until no messages move.
func TestCoordinatorBoundaryArrivalDelivered(t *testing.T) {
	co := NewCoordinator(1, 2, time.Millisecond)
	got := time.Duration(-1)
	d0, d1 := co.Domain(0), co.Domain(1)
	d0.Sim().At(9*time.Millisecond, func() {
		p := packet.NewData(1, 0, 10, packet.NotECT)
		d0.Send(1, time.Millisecond, p, func(*packet.Packet) {
			got = d1.Sim().Now()
		})
	})
	co.RunUntil(10 * time.Millisecond)
	if got != 10*time.Millisecond {
		t.Fatalf("boundary arrival fired at %v, want exactly 10ms", got)
	}
	if co.Now() != 10*time.Millisecond {
		t.Errorf("barrier clock %v, want 10ms", co.Now())
	}
}

// TestCoordinatorMailboxTotalOrder: simultaneous arrivals from multiple
// sources must deliver in (time, source domain, per-source sequence) order,
// not in goroutine-completion order.
func TestCoordinatorMailboxTotalOrder(t *testing.T) {
	co := NewCoordinator(9, 3, time.Millisecond)
	var order []int
	dst := co.Domain(0)
	for _, src := range []int{2, 1} { // deliberately out of order
		d := co.Domain(src)
		srcID := src
		d.Sim().At(0, func() {
			for i := 0; i < 3; i++ {
				tag := srcID*10 + i
				p := packet.NewData(tag, 0, 10, packet.NotECT)
				d.Send(0, time.Millisecond, p, func(p *packet.Packet) {
					order = append(order, p.FlowID)
				})
			}
		})
	}
	co.RunUntil(5 * time.Millisecond)
	want := []int{10, 11, 12, 20, 21, 22}
	if len(order) != len(want) {
		t.Fatalf("delivered %d messages, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("delivery order %v, want %v (src-major, then sequence)", order, want)
		}
	}
	_ = dst
}

// TestCoordinatorSingleDomainDegenerate: one domain means no windows, no
// goroutines — the run must be the plain slab path, with the same processed
// count and final clock as a bare Simulator.
func TestCoordinatorSingleDomainDegenerate(t *testing.T) {
	co := NewCoordinator(7, 1, 0)
	ticks := 0
	co.Domain(0).Sim().Every(time.Millisecond, func() { ticks++ })
	co.RunUntil(10 * time.Millisecond)

	plain := New(mixSeed(7, 0))
	pticks := 0
	plain.Every(time.Millisecond, func() { pticks++ })
	plain.RunUntil(10 * time.Millisecond)

	if ticks != pticks || co.Processed() != plain.Processed() {
		t.Fatalf("degenerate coordinator diverged: ticks %d/%d events %d/%d",
			ticks, pticks, co.Processed(), plain.Processed())
	}
	if co.Now() != 10*time.Millisecond {
		t.Errorf("coordinator clock %v, want 10ms", co.Now())
	}
}

func TestSendBelowLookaheadPanics(t *testing.T) {
	co := NewCoordinator(1, 2, 2*time.Millisecond)
	d0 := co.Domain(0)
	d0.Sim().At(0, func() {
		p := packet.NewData(1, 0, 10, packet.NotECT)
		d0.Send(1, time.Millisecond, p, func(*packet.Packet) {})
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("short cross-domain send did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "lookahead") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	co.RunUntil(time.Millisecond)
}

func TestSendToOwnDomainPanics(t *testing.T) {
	co := NewCoordinator(1, 2, time.Millisecond)
	d0 := co.Domain(0)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("self-send did not panic")
		}
	}()
	d0.Send(0, time.Millisecond, packet.NewData(1, 0, 10, packet.NotECT), func(*packet.Packet) {})
}

// TestCoordinatorCancelStopsRun: Cancel from another goroutine must stop a
// multi-domain run with the Canceled panic carrying the reason — the same
// cooperative contract a single Simulator gives the campaign watchdog.
func TestCoordinatorCancelStopsRun(t *testing.T) {
	co, _ := pingPong(3, 2*time.Millisecond, 3*time.Millisecond)
	stopped := make(chan any, 1)
	go func() {
		defer func() { stopped <- recover() }()
		co.RunUntil(time.Hour)
	}()
	for co.NowNanos() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	co.Cancel("watchdog: test timeout")
	r := <-stopped
	c, ok := r.(Canceled)
	if !ok {
		t.Fatalf("run ended with %v, want Canceled", r)
	}
	if c.CancelReason() != "watchdog: test timeout" {
		t.Errorf("reason %q", c.CancelReason())
	}
	if co.NowNanos() >= int64(time.Hour) {
		t.Error("run completed instead of cancelling")
	}
}

// TestRunBeforeStrictBoundary pins the window primitive: events strictly
// before the end run, an event exactly at the end stays pending, and the
// clock still advances to the boundary.
func TestRunBeforeStrictBoundary(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	for _, at := range []time.Duration{0, 4 * time.Millisecond, 5 * time.Millisecond, 6 * time.Millisecond} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunBefore(5 * time.Millisecond)
	if len(fired) != 2 || fired[0] != 0 || fired[1] != 4*time.Millisecond {
		t.Fatalf("RunBefore fired %v, want [0 4ms]", fired)
	}
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("clock %v after RunBefore, want 5ms", s.Now())
	}
	// The boundary event is still pending and runs on the inclusive pass.
	s.RunUntil(5 * time.Millisecond)
	if len(fired) != 3 || fired[2] != 5*time.Millisecond {
		t.Fatalf("inclusive pass fired %v, want the 5ms event", fired)
	}
}

// TestMixSeedSeparation: domain seed derivation must differ across domains
// and base seeds, and never emit the invalid zero seed.
func TestMixSeedSeparation(t *testing.T) {
	seen := map[int64]bool{}
	for seed := int64(0); seed < 8; seed++ {
		for i := 0; i < 8; i++ {
			s := mixSeed(seed, i)
			if s == 0 {
				t.Fatalf("mixSeed(%d,%d) = 0", seed, i)
			}
			if seen[s] {
				t.Fatalf("mixSeed collision at (%d,%d)", seed, i)
			}
			seen[s] = true
		}
	}
}
