package sim

import (
	"fmt"
	"time"
)

// This file holds the fast-forward (epoch-skip) hooks of the slab scheduler
// and the sharded coordinator. A fast-forward epoch freezes the packet world
// at a quiescent instant and advances the clock by delta in one jump: every
// pending event keeps its relative firing order and distance from "now", so
// when packet mode resumes, the frozen world continues exactly as it would
// have — just translated in time. The analytic progress made during the
// epoch (cwnd growth, AQM probability, virtual throughput) is patched in by
// the ff engine on top of this shift.

// ShiftPending advances the virtual clock by delta and moves every pending
// event (one-shot and recurring alike) forward by the same amount. A uniform
// shift preserves the (at, seq) order of the heap, so no re-heapify is
// needed and the post-shift pop order is exactly the pre-shift pop order.
// It must only be called between Step/RunUntil calls (no event mid-flight);
// negative deltas would break causality and panic.
func (s *Simulator) ShiftPending(delta time.Duration) {
	if delta < 0 {
		panic(fmt.Sprintf("sim: ShiftPending with negative delta %v", delta))
	}
	if delta == 0 {
		return
	}
	// Dead (cancelled) slots still sitting in the heap shift harmlessly;
	// free-list slots are not in the heap and are never touched.
	for _, idx := range s.heap {
		s.slab[idx].at += delta
	}
	s.now += delta
	s.nowAtomic.Store(int64(s.now))
}

// ShiftPending advances the coordinator's barrier clock and every domain by
// delta: each domain's scheduler shifts uniformly, and the pending
// cross-domain arrivals shift with them so the mailbox invariant (a delivery
// event fires exactly at its heap minimum's arrival time) keeps holding.
// It must only be called between RunUntil calls, when every domain worker is
// parked and all outboxes have been drained by the final fixpoint exchange.
func (c *Coordinator) ShiftPending(delta time.Duration) {
	if delta < 0 {
		panic(fmt.Sprintf("sim: ShiftPending with negative delta %v", delta))
	}
	if delta == 0 {
		return
	}
	for _, d := range c.domains {
		for i := range d.arr {
			d.arr[i].at += delta
		}
		for dst := range d.out {
			if len(d.out[dst]) != 0 {
				// Outboxes drain at every barrier; RunUntil's fixpoint loop
				// guarantees they are empty between calls.
				panic("sim: ShiftPending with undrained outbox")
			}
		}
		d.sim.ShiftPending(delta)
	}
	c.setNow(c.now + delta)
}
