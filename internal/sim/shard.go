package sim

import (
	"fmt"
	"slices"
	"sync/atomic"
	"time"

	"pi2/internal/packet"
)

// This file implements conservative parallel discrete-event simulation
// (PDES) on top of the slab scheduler: the simulation is split into
// domains, each owning its own Simulator, and a Coordinator advances all
// domains in lock-step lookahead windows bounded by the minimum
// cross-domain propagation delay. Within a window domains run truly in
// parallel (one goroutine each); they interact only through cross-domain
// mailboxes that are exchanged at window barriers.
//
// Correctness rests on two rules:
//
//   - Lookahead: every cross-domain message must carry a delay of at least
//     the coordinator's lookahead W. An event executing in window [T, T+W)
//     can then only produce arrivals at ≥ T+W — never inside the window any
//     domain is currently executing — so no domain ever receives a message
//     from its own past. Send enforces the bound with a panic: a shorter
//     delay is a wiring bug, not a runtime condition.
//   - Deterministic merge: messages are delivered in the total order
//     (arrival time, source domain, per-source sequence). Outboxes are
//     per-(source, destination), so no two goroutines ever write one slice;
//     the single-threaded barrier merge sorts each destination's batch and
//     the per-domain arrival heap replays ties identically on every run,
//     regardless of how goroutines were scheduled.
//
// At one domain the Coordinator degenerates to the plain slab path: no
// goroutines, no windows, a single RunUntil on the underlying Simulator.

// crossMsg is one cross-domain handoff: invoke fn(p) in the destination
// domain at virtual time at. (src, seq) breaks ties deterministically.
type crossMsg struct {
	at  time.Duration
	seq uint64 // per-source send sequence
	src int32
	fn  func(*packet.Packet)
	p   *packet.Packet
}

// crossLess is the mailbox total order: (at, src, seq). seq is unique per
// source, so the order is total and independent of goroutine scheduling.
func crossLess(a, b *crossMsg) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// Domain is one shard of a simulation: a private Simulator plus the
// mailbox plumbing that connects it to its peers. All methods except the
// coordinator's barrier-time bookkeeping run on the domain's own goroutine.
type Domain struct {
	id   int32
	co   *Coordinator
	sim  *Simulator
	out  [][]crossMsg // outbox per destination domain, drained at barriers
	sent uint64       // per-source send sequence (also the sent-packet count)

	// arr is the pending-arrivals 4-ary min-heap ordered by crossLess.
	// Each pushed message also schedules one deliverFn event at its arrival
	// time in the domain's Simulator; when that event fires, the heap
	// minimum is exactly the message to deliver (see deliverNext).
	arr       []crossMsg
	deliverFn Event

	// Wire-ledger counters, folded into the coordinator's cumulative ledger
	// at each barrier (single-threaded), so the hot path needs no atomics.
	sentBytes  int64
	fired      uint64
	firedBytes int64
	inArrBytes int64
}

// ID returns the domain's index (0..N-1).
func (d *Domain) ID() int { return int(d.id) }

// Sim returns the domain's private Simulator. Components owned by the
// domain are built against it exactly as in an unsharded run.
func (d *Domain) Sim() *Simulator { return d.sim }

// Send posts a cross-domain message: fn(p) will run in domain dst at
// now+delay. delay must be at least the coordinator's lookahead window —
// anything shorter could land inside a window a peer is already executing,
// which is a conservative-synchronization violation and therefore a panic.
func (d *Domain) Send(dst int, delay time.Duration, p *packet.Packet, fn func(*packet.Packet)) {
	if delay < d.co.look {
		panic(fmt.Sprintf("sim: cross-domain send with delay %v below lookahead %v", delay, d.co.look))
	}
	if dst == int(d.id) {
		panic("sim: cross-domain send to own domain (schedule locally instead)")
	}
	d.out[dst] = append(d.out[dst], crossMsg{
		at:  d.sim.Now() + delay,
		seq: d.sent,
		src: d.id,
		fn:  fn,
		p:   p,
	})
	d.sent++
	d.sentBytes += int64(p.WireLen)
}

// pushArrival accepts one merged message at a barrier: heap-insert plus one
// scheduled delivery event at the message's arrival time. Runs on the
// coordinator goroutine while every domain worker is parked at the barrier.
func (d *Domain) pushArrival(m crossMsg) {
	d.arr = append(d.arr, m)
	i := len(d.arr) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !crossLess(&d.arr[i], &d.arr[p]) {
			break
		}
		d.arr[i], d.arr[p] = d.arr[p], d.arr[i]
		i = p
	}
	d.inArrBytes += int64(m.p.WireLen)
	d.sim.At(m.at, d.deliverFn)
}

// deliverNext pops the earliest pending arrival and runs its handler. One
// delivery event exists per pending message, so the heap minimum's arrival
// time always equals the firing event's time; a mismatch means the mailbox
// order was corrupted and the run cannot be trusted.
func (d *Domain) deliverNext() {
	m := d.arr[0]
	n := len(d.arr) - 1
	d.arr[0] = d.arr[n]
	d.arr = d.arr[:n]
	// Sift down.
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		best := c
		for j := c + 1; j < end; j++ {
			if crossLess(&d.arr[j], &d.arr[best]) {
				best = j
			}
		}
		if !crossLess(&d.arr[best], &d.arr[i]) {
			break
		}
		d.arr[i], d.arr[best] = d.arr[best], d.arr[i]
		i = best
	}
	if m.at != d.sim.Now() {
		panic(fmt.Sprintf("sim: mailbox order corrupted: delivering message for %v at %v", m.at, d.sim.Now()))
	}
	d.fired++
	d.firedBytes += int64(m.p.WireLen)
	d.inArrBytes -= int64(m.p.WireLen)
	m.fn(m.p)
}

// pendingArrivals reports the in-flight messages parked at this domain.
func (d *Domain) pendingArrivals() (pkts int, bytes int64) {
	return len(d.arr), d.inArrBytes
}

// WireAudit observes the cross-domain mailbox fabric at every barrier: the
// cumulative sent/delivered ledger plus the structurally counted in-flight
// backlog. link.WireAuditor implements it with the same conservation
// identities the bottleneck auditor applies to its queue; the interface
// lives here so sim need not import link (link imports sim).
type WireAudit interface {
	WireWindow(now time.Duration, sentPkts, firedPkts uint64,
		sentBytes, firedBytes int64, inFlightPkts int, inFlightBytes int64)
}

// Coordinator advances a set of domains in lock-step lookahead windows.
// It satisfies campaign.Canceler structurally (Cancel + NowNanos), so the
// watchdog supervises a sharded cell exactly like a single simulator.
type Coordinator struct {
	domains []*Domain
	look    time.Duration

	now       time.Duration
	nowAtomic atomic.Int64

	canceled  atomic.Bool
	cancelMsg string

	audit WireAudit
	// Cumulative wire ledger, folded from per-domain counters at barriers.
	sentPkts, firedPkts   uint64
	sentBytes, firedBytes int64

	// DropCrossHook, when set, may swallow a message at the barrier merge —
	// it models a lossy mailbox fabric. Test-only: the dropped message stays
	// in the sent ledger but never arrives, so the wire auditor must flag
	// the conservation violation. Returning true drops the message.
	DropCrossHook func(dst int, p *packet.Packet) bool

	sortBuf []crossMsg
}

// NewCoordinator builds n domains whose simulator seeds derive from seed
// via an independent SplitMix64 mix, so shard count changes never reuse a
// stream. lookahead is the minimum cross-domain propagation delay; it must
// be positive when n > 1 (with one domain there are no cross sends and the
// coordinator degenerates to the plain slab path).
func NewCoordinator(seed int64, n int, lookahead time.Duration) *Coordinator {
	if n < 1 {
		panic("sim: coordinator needs at least one domain")
	}
	if n > 1 && lookahead <= 0 {
		panic("sim: multi-domain coordinator needs a positive lookahead")
	}
	c := &Coordinator{look: lookahead, domains: make([]*Domain, n)}
	for i := range c.domains {
		d := &Domain{
			id:  int32(i),
			co:  c,
			sim: New(mixSeed(seed, i)),
			out: make([][]crossMsg, n),
		}
		d.deliverFn = d.deliverNext
		c.domains[i] = d
	}
	return c
}

// mixSeed derives domain i's simulator seed from the run seed with a
// SplitMix64 step (the same construction campaign.DeriveSeed uses), so
// domain streams are well-separated for any (seed, i).
func mixSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(int64(i)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	s := int64(z)
	if s == 0 {
		s = 1
	}
	return s
}

// Domains returns the number of domains.
func (c *Coordinator) Domains() int { return len(c.domains) }

// Domain returns shard i.
func (c *Coordinator) Domain(i int) *Domain { return c.domains[i] }

// Lookahead returns the window width.
func (c *Coordinator) Lookahead() time.Duration { return c.look }

// SetWireAudit installs the cross-domain conservation auditor; it is
// invoked at every barrier on the coordinator goroutine.
func (c *Coordinator) SetWireAudit(a WireAudit) { c.audit = a }

// Now returns the barrier clock: every domain has executed all events
// strictly before it.
func (c *Coordinator) Now() time.Duration { return c.now }

// NowNanos exposes the barrier clock to other goroutines (the watchdog's
// stall detector). Windows are at most one lookahead wide, so the barrier
// clock tracks true progress closely.
func (c *Coordinator) NowNanos() int64 { return c.nowAtomic.Load() }

// Cancel requests a cooperative stop: the flag fans out to every domain
// simulator (their next Step panics Canceled) and the coordinator itself
// checks it at each barrier, so even an idle run stops promptly. Safe to
// call from any goroutine.
func (c *Coordinator) Cancel(reason string) {
	c.cancelMsg = reason
	c.canceled.Store(true)
	for _, d := range c.domains {
		d.sim.Cancel(reason)
	}
}

// Processed sums executed events across all domains.
func (c *Coordinator) Processed() uint64 {
	var sum uint64
	for _, d := range c.domains {
		sum += d.sim.Processed()
	}
	return sum
}

func (c *Coordinator) setNow(t time.Duration) {
	c.now = t
	c.nowAtomic.Store(int64(t))
}

func (c *Coordinator) checkCanceled() {
	if c.canceled.Load() {
		panic(Canceled{Reason: c.cancelMsg})
	}
}

// window is one barrier-to-barrier work order. inclusive selects the final
// fixpoint passes that run events exactly at the end time.
type window struct {
	end       time.Duration
	inclusive bool
}

// runWindow executes one window on the domain's goroutine, converting a
// panic (including cooperative cancellation) into a value the coordinator
// re-raises deterministically.
func (d *Domain) runWindow(w window) (err any) {
	defer func() { err = recover() }()
	if w.inclusive {
		d.sim.RunUntil(w.end)
	} else {
		d.sim.RunBefore(w.end)
	}
	return nil
}

// RunUntil advances every domain to end. Windows are c.look wide: all
// domains execute events strictly before the window boundary in parallel,
// then the coordinator (single-threaded) merges the outboxes into the
// destination heaps. A final fixpoint loop runs events exactly at end,
// re-exchanging until no messages moved, so boundary arrivals (t+d == end)
// are delivered just as RunUntil on a single simulator would.
func (c *Coordinator) RunUntil(end time.Duration) {
	if len(c.domains) == 1 {
		// Degenerate single-shard path: the slab scheduler as-is. No
		// goroutines, no windows, no merge — and therefore byte-identical
		// behavior to an unsharded run by construction.
		c.checkCanceled()
		c.domains[0].sim.RunUntil(end)
		c.setNow(end)
		return
	}

	n := len(c.domains)
	work := make([]chan window, n)
	done := make(chan struct {
		id  int
		err any
	}, n)
	for i, d := range c.domains {
		ch := make(chan window)
		work[i] = ch
		go func(d *Domain, ch chan window) {
			for w := range ch {
				done <- struct {
					id  int
					err any
				}{int(d.id), d.runWindow(w)}
			}
		}(d, ch)
	}
	// Workers exit when their channel closes; closing here (rather than at
	// normal completion only) keeps a panicking run from leaking one parked
	// goroutine per domain.
	defer func() {
		for _, ch := range work {
			close(ch)
		}
	}()

	runAll := func(w window) {
		for _, ch := range work {
			ch <- w
		}
		firstID, firstErr := n, any(nil)
		for i := 0; i < n; i++ {
			r := <-done
			if r.err != nil && r.id < firstID {
				firstID, firstErr = r.id, r.err
			}
		}
		if firstErr != nil {
			// Re-raise the lowest-numbered domain's panic so a multi-domain
			// failure reports the same error on every run.
			panic(firstErr)
		}
	}

	for c.now < end {
		c.checkCanceled()
		b := c.now + c.look
		if b > end {
			b = end
		}
		runAll(window{end: b})
		c.setNow(b)
		c.exchange()
	}
	for {
		c.checkCanceled()
		runAll(window{end: end, inclusive: true})
		if c.exchange() == 0 {
			break
		}
	}
}

// exchange is the barrier merge: fold each domain's wire counters into the
// cumulative ledger, then move every outbox message into its destination's
// arrival heap in (at, src, seq) order. It runs on the coordinator
// goroutine while all workers are parked, so no locking is needed; the
// worker channels' happens-before edges publish the outbox writes. Returns
// the number of messages moved (dropped ones included — a drop still means
// the window was not quiescent).
func (c *Coordinator) exchange() int {
	for _, d := range c.domains {
		c.sentPkts += d.sent
		c.sentBytes += d.sentBytes
		c.firedPkts += d.fired
		c.firedBytes += d.firedBytes
		d.sent, d.sentBytes = 0, 0
		d.fired, d.firedBytes = 0, 0
	}
	moved := 0
	for dstID, dst := range c.domains {
		batch := c.sortBuf[:0]
		for _, src := range c.domains {
			if m := src.out[dstID]; len(m) > 0 {
				batch = append(batch, m...)
				src.out[dstID] = m[:0]
			}
		}
		if len(batch) == 0 {
			continue
		}
		moved += len(batch)
		sortCross(batch)
		for i := range batch {
			if c.DropCrossHook != nil && c.DropCrossHook(dstID, batch[i].p) {
				continue
			}
			dst.pushArrival(batch[i])
		}
		c.sortBuf = batch[:0]
	}
	if c.audit != nil {
		inP, inB := 0, int64(0)
		for _, d := range c.domains {
			p, b := d.pendingArrivals()
			inP += p
			inB += b
		}
		c.audit.WireWindow(c.now, c.sentPkts, c.firedPkts,
			c.sentBytes, c.firedBytes, inP, inB)
	}
	return moved
}

// sortCross orders a merged batch by crossLess. The order is total (seq is
// unique per source), so an unstable sort yields the same permutation on
// every run.
func sortCross(ms []crossMsg) {
	slices.SortFunc(ms, func(a, b crossMsg) int {
		if crossLess(&a, &b) {
			return -1
		}
		if crossLess(&b, &a) {
			return 1
		}
		return 0
	})
}
