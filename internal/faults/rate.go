package faults

import (
	"time"

	"pi2/internal/sim"
)

// RateSetter is the capacity-control surface a schedule drives. Both
// link.Link and core.DualLink satisfy it.
type RateSetter interface {
	SetRateBps(float64)
	RateBps() float64
}

// RateSchedule varies a bottleneck's capacity over virtual time. Schedules
// draw no randomness: a capacity trajectory is part of the scenario, so the
// same schedule replays identically across paired AQM arms and never
// perturbs any component's RNG stream.
type RateSchedule interface {
	// Apply arms the schedule's timers on s against l.
	Apply(s *sim.Simulator, l RateSetter)
}

// Square is a square-wave capacity flap: the link starts at HighBps, drops
// to LowBps after half a Period, returns to HighBps at the full Period, and
// repeats until the simulation ends.
type Square struct {
	HighBps, LowBps float64
	Period          time.Duration
}

// Apply arms one recurring half-period toggle (a single reused timer slot).
func (sq Square) Apply(s *sim.Simulator, l RateSetter) {
	half := sq.Period / 2
	if half <= 0 {
		panic("faults: Square.Period must be positive")
	}
	low := false
	s.Every(half, func() {
		low = !low
		if low {
			l.SetRateBps(sq.LowBps)
		} else {
			l.SetRateBps(sq.HighBps)
		}
	})
}

// Step is one point of a piecewise-constant capacity schedule.
type Step struct {
	At      time.Duration
	RateBps float64
}

// Steps applies each capacity step at its absolute time.
type Steps []Step

// Apply arms one timer per step.
func (st Steps) Apply(s *sim.Simulator, l RateSetter) {
	for _, sp := range st {
		rate := sp.RateBps
		s.At(sp.At, func() { l.SetRateBps(rate) })
	}
}

// Ramp sweeps the capacity linearly from FromBps to ToBps over
// [Start, Start+Length], quantized into Tick-spaced steps
// (default Length/20).
type Ramp struct {
	FromBps, ToBps float64
	Start, Length  time.Duration
	Tick           time.Duration
}

// Apply arms the quantized steps of the ramp.
func (r Ramp) Apply(s *sim.Simulator, l RateSetter) {
	tick := r.Tick
	if tick <= 0 {
		tick = r.Length / 20
	}
	if tick <= 0 {
		panic("faults: Ramp needs a positive Length or Tick")
	}
	n := int(r.Length / tick)
	if n < 1 {
		n = 1
	}
	for i := 0; i <= n; i++ {
		frac := float64(i) / float64(n)
		rate := r.FromBps + (r.ToBps-r.FromBps)*frac
		s.At(r.Start+time.Duration(i)*tick, func() { l.SetRateBps(rate) })
	}
}
