package faults

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"pi2/internal/link"
	"pi2/internal/packet"
	"pi2/internal/sim"
)

// TestGilbertElliottMatchesClosedForm drives the two-state chain for many
// packets and checks the empirical loss rate and mean burst length against
// the stationary closed forms: loss = π_bad·LossBad + π_good·LossGood with
// π_bad = PGB/(PGB+PBG), and mean burst length 1/PBG (for LossBad=1).
func TestGilbertElliottMatchesClosedForm(t *testing.T) {
	cases := []struct{ pgb, pbg float64 }{
		{0.002, 0.25},
		{0.01, 0.1},
		{0.05, 0.5},
	}
	const n = 400000
	for _, c := range cases {
		ge := &GilbertElliott{PGB: c.pgb, PBG: c.pbg, LossBad: 1}
		rng := rand.New(rand.NewSource(42))
		losses, bursts := 0, 0
		inBurst := false
		for i := 0; i < n; i++ {
			if ge.Lose(rng) {
				losses++
				if !inBurst {
					bursts++
					inBurst = true
				}
			} else {
				inBurst = false
			}
		}
		wantLoss := ge.StationaryLoss()
		gotLoss := float64(losses) / n
		if rel := math.Abs(gotLoss-wantLoss) / wantLoss; rel > 0.1 {
			t.Errorf("(p=%v r=%v): empirical loss %.5f vs stationary %.5f (rel %.3f)",
				c.pgb, c.pbg, gotLoss, wantLoss, rel)
		}
		wantBurst := ge.MeanBurstLen()
		gotBurst := float64(losses) / float64(bursts)
		if rel := math.Abs(gotBurst-wantBurst) / wantBurst; rel > 0.1 {
			t.Errorf("(p=%v r=%v): empirical burst %.3f vs 1/r %.3f (rel %.3f)",
				c.pgb, c.pbg, gotBurst, wantBurst, rel)
		}
	}
}

func TestGilbertElliottDegenerateParams(t *testing.T) {
	// A chain that never transitions reports the good-state loss.
	ge := &GilbertElliott{LossGood: 0.3}
	if got := ge.StationaryLoss(); got != 0.3 {
		t.Errorf("frozen chain stationary loss %v, want 0.3", got)
	}
	if got := (&GilbertElliott{PGB: 0.1}).MeanBurstLen(); !math.IsInf(got, 1) {
		t.Errorf("PBG=0 mean burst %v, want +Inf", got)
	}
}

func TestIIDLossRate(t *testing.T) {
	m := IIDLoss{P: 0.05}
	rng := rand.New(rand.NewSource(7))
	losses := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if m.Lose(rng) {
			losses++
		}
	}
	if f := float64(losses) / n; math.Abs(f-0.05) > 0.005 {
		t.Errorf("empirical loss %.4f, want ~0.05", f)
	}
}

// TestInjectorConservation runs a lossy, reordering, duplicating channel
// behind a real link and balances the packet ledger: every packet the link
// delivered is either forwarded (possibly late), duplicated into existence,
// or dropped by the channel — and dropped packets go back to the pool
// exactly once.
func TestInjectorConservation(t *testing.T) {
	s := sim.New(3)
	received := 0
	cfg := Config{
		Loss:          IIDLoss{P: 0.1},
		ReorderProb:   0.05,
		ReorderDelay:  2 * time.Millisecond,
		ReorderJitter: time.Millisecond,
		DupProb:       0.05,
	}
	var inj *Injector
	inj = NewInjector(s, cfg, func(p *packet.Packet) {
		received++
		s.PacketPool().Release(p)
	})
	l := link.New(s, link.Config{RateBps: 100e6}, inj.Deliver)
	pool := s.PacketPool()
	for i := 0; i < 2000; i++ {
		seq := int64(i)
		s.At(time.Duration(i)*100*time.Microsecond, func() {
			l.Enqueue(pool.NewData(1, seq, packet.MSS, packet.NotECT))
		})
	}
	s.Run()

	if v := l.Audit().Violations(); v != nil {
		t.Fatalf("link auditor violations with faults active: %v", v)
	}
	if inj.Dropped == 0 || inj.Duplicated == 0 || inj.Reordered == 0 {
		t.Fatalf("channel did not exercise all impairments: %+v", inj)
	}
	delivered := l.Audit().DeliveredPackets
	if got := delivered + inj.Duplicated - inj.Dropped; got != inj.Forwarded {
		t.Errorf("forwarded %d != delivered %d + dup %d - dropped %d",
			inj.Forwarded, delivered, inj.Duplicated, inj.Dropped)
	}
	if received != inj.Forwarded {
		t.Errorf("receiver saw %d packets, injector forwarded %d", received, inj.Forwarded)
	}
	// Every packet was released exactly once: drops by the injector, the
	// rest by the receiving callback.
	if rel := pool.Stats().Released; rel != uint64(received+inj.Dropped) {
		t.Errorf("pool releases %d, want received %d + dropped %d", rel, received, inj.Dropped)
	}
}

// TestInjectorOnDropOwnership: an OnDrop observer takes ownership of lost
// packets, so the pool must not see them.
func TestInjectorOnDropOwnership(t *testing.T) {
	s := sim.New(4)
	inj := NewInjector(s, Config{Loss: IIDLoss{P: 1}}, func(p *packet.Packet) {
		t.Error("lossless delivery through a P=1 channel")
	})
	var seen int
	inj.OnDrop = func(p *packet.Packet, r link.DropReason) {
		if r != link.DropFault {
			t.Errorf("drop reason %v, want DropFault", r)
		}
		if p.Released() {
			t.Error("OnDrop received a released packet")
		}
		seen++
	}
	pool := s.PacketPool()
	for i := 0; i < 10; i++ {
		inj.Deliver(pool.NewData(1, int64(i), packet.MSS, packet.NotECT))
	}
	if seen != 10 || inj.Dropped != 10 {
		t.Errorf("observer saw %d, counter %d, want 10", seen, inj.Dropped)
	}
	if rel := pool.Stats().Released; rel != 0 {
		t.Errorf("pool saw %d releases despite observer ownership", rel)
	}
}

// TestInjectorDeterminism: the same seed must produce the identical fault
// pattern — counters and all.
func TestInjectorDeterminism(t *testing.T) {
	run := func() (int, int, int, int) {
		s := sim.New(9)
		var got []int64
		var inj *Injector
		inj = NewInjector(s, Config{
			Loss:         &GilbertElliott{PGB: 0.01, PBG: 0.2, LossBad: 1},
			ReorderProb:  0.05,
			ReorderDelay: time.Millisecond,
			DupProb:      0.02,
		}, func(p *packet.Packet) {
			got = append(got, p.Seq)
			s.PacketPool().Release(p)
		})
		pool := s.PacketPool()
		for i := 0; i < 5000; i++ {
			seq := int64(i)
			s.At(time.Duration(i)*50*time.Microsecond, func() {
				inj.Deliver(pool.NewData(1, seq, packet.MSS, packet.NotECT))
			})
		}
		s.Run()
		sum := int64(0)
		for _, v := range got {
			sum += v
		}
		return inj.Dropped, inj.Duplicated, inj.Reordered, int(sum % 1000003)
	}
	d1, u1, r1, s1 := run()
	d2, u2, r2, s2 := run()
	if d1 != d2 || u1 != u2 || r1 != r2 || s1 != s2 {
		t.Errorf("same seed diverged: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			d1, u1, r1, s1, d2, u2, r2, s2)
	}
	if d1 == 0 || u1 == 0 || r1 == 0 {
		t.Errorf("impairments not exercised: drops=%d dups=%d reorders=%d", d1, u1, r1)
	}
}

// TestRateSchedules checks the three schedule shapes against a recording
// rate setter.
func TestRateSchedules(t *testing.T) {
	t.Run("square", func(t *testing.T) {
		s := sim.New(1)
		rs := &recordingSetter{rate: 40e6}
		Square{HighBps: 40e6, LowBps: 10e6, Period: 10 * time.Millisecond}.Apply(s, rs)
		s.RunUntil(25 * time.Millisecond)
		// Half-period toggles at 5,10,15,20,25 ms: low,high,low,high,low.
		want := []float64{10e6, 40e6, 10e6, 40e6, 10e6}
		if len(rs.sets) != len(want) {
			t.Fatalf("%d rate changes, want %d (%v)", len(rs.sets), len(want), rs.sets)
		}
		for i, w := range want {
			if rs.sets[i] != w {
				t.Errorf("toggle %d: %v, want %v", i, rs.sets[i], w)
			}
		}
	})
	t.Run("steps", func(t *testing.T) {
		s := sim.New(1)
		rs := &recordingSetter{rate: 100e6}
		Steps{
			{At: 5 * time.Millisecond, RateBps: 20e6},
			{At: 10 * time.Millisecond, RateBps: 80e6},
		}.Apply(s, rs)
		s.Run()
		if len(rs.sets) != 2 || rs.sets[0] != 20e6 || rs.sets[1] != 80e6 {
			t.Errorf("steps applied %v", rs.sets)
		}
	})
	t.Run("ramp", func(t *testing.T) {
		s := sim.New(1)
		rs := &recordingSetter{rate: 10e6}
		Ramp{FromBps: 10e6, ToBps: 50e6, Start: 0, Length: 100 * time.Millisecond}.Apply(s, rs)
		s.RunUntil(200 * time.Millisecond)
		if len(rs.sets) == 0 {
			t.Fatal("ramp applied no steps")
		}
		for i := 1; i < len(rs.sets); i++ {
			if rs.sets[i] < rs.sets[i-1] {
				t.Fatalf("ramp not monotone: %v", rs.sets)
			}
		}
		if final := rs.sets[len(rs.sets)-1]; final != 50e6 {
			t.Errorf("ramp ended at %v, want 50e6", final)
		}
	})
}

type recordingSetter struct {
	rate float64
	sets []float64
}

func (r *recordingSetter) SetRateBps(v float64) { r.rate = v; r.sets = append(r.sets, v) }
func (r *recordingSetter) RateBps() float64     { return r.rate }
