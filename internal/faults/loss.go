package faults

import (
	"math"
	"math/rand"
)

// LossModel decides, packet by packet, whether the channel loses the next
// delivery. Implementations must consume a deterministic number of draws
// from rng per call (state-dependent behavior is fine; state-dependent draw
// counts would still be reproducible, but a fixed count keeps streams easy
// to reason about), so a run's fault pattern depends only on its seed.
type LossModel interface {
	Lose(rng *rand.Rand) bool
}

// IIDLoss loses each packet independently with probability P.
type IIDLoss struct {
	P float64
}

// Lose draws one uniform variate per packet.
func (m IIDLoss) Lose(rng *rand.Rand) bool { return rng.Float64() < m.P }

// GilbertElliott is the classic two-state bursty-loss channel: a Markov
// chain alternates between a Good and a Bad state, and each state loses
// packets with its own probability. The common parameterization
// (LossGood=0, LossBad=1) makes every Bad-state visit a loss burst whose
// length is geometric with mean 1/PBG.
//
// The model is stateful: one instance serves one packet stream. The zero
// state starts Good.
type GilbertElliott struct {
	// PGB is the per-packet probability of moving Good → Bad;
	// PBG of moving Bad → Good.
	PGB, PBG float64
	// LossGood and LossBad are the per-packet loss probabilities inside
	// each state.
	LossGood, LossBad float64

	bad bool
}

// Lose evaluates the loss in the current state, then advances the chain.
// Evaluating before the transition is what gives the closed forms below:
// the packet's fate depends on the state it found the channel in. Exactly
// two variates are drawn per packet regardless of state.
func (m *GilbertElliott) Lose(rng *rand.Rand) bool {
	p := m.LossGood
	if m.bad {
		p = m.LossBad
	}
	lost := rng.Float64() < p
	if m.bad {
		if rng.Float64() < m.PBG {
			m.bad = false
		}
	} else {
		if rng.Float64() < m.PGB {
			m.bad = true
		}
	}
	return lost
}

// StationaryLoss returns the chain's long-run loss probability:
// π_bad·LossBad + π_good·LossGood with π_bad = PGB/(PGB+PBG).
func (m *GilbertElliott) StationaryLoss() float64 {
	d := m.PGB + m.PBG
	if d == 0 {
		// The chain never leaves its initial (Good) state.
		return m.LossGood
	}
	piBad := m.PGB / d
	return piBad*m.LossBad + (1-piBad)*m.LossGood
}

// MeanBurstLen returns the expected length of a consecutive-loss run for
// the on/off parameterization (LossGood=0, LossBad=1): the Bad-state
// holding time, 1/PBG.
func (m *GilbertElliott) MeanBurstLen() float64 {
	if m.PBG == 0 {
		return math.Inf(1)
	}
	return 1 / m.PBG
}
