// Package faults is the deterministic impairment layer: it sits between a
// bottleneck's transmitter and the receiving endpoints and subjects the
// delivered packet stream to channel faults — bursty (Gilbert–Elliott) or
// i.i.d. loss, reordering via delayed re-injection through the scheduler,
// duplication, and time-varying capacity schedules driving SetRateBps.
//
// Placement matters for the invariant story: the injector wraps the
// delivery callback *after* the link, so the link auditor's conservation
// identities (offered = accepted + dropped, delivered ≤ dequeued) keep
// holding with impairments active; channel losses are a property of the
// wire beyond the queue, reported as link.DropFault. All randomness comes
// from one RNG stream taken from the simulator at construction, so a run's
// fault pattern depends only on its seed — and constructing an injector
// only when impairments are configured leaves unimpaired runs' RNG draws
// (and golden fingerprints) untouched.
package faults

import (
	"math/rand"
	"time"

	"pi2/internal/link"
	"pi2/internal/packet"
	"pi2/internal/sim"
)

// Config describes the impairments applied to a delivery path. The zero
// value injects nothing.
type Config struct {
	// Loss decides per-packet channel loss (nil = lossless).
	Loss LossModel
	// ReorderProb is the probability a delivered packet is held back by
	// ReorderDelay plus a uniform jitter in [0, ReorderJitter) and
	// re-injected through the scheduler — packets behind it pass it.
	ReorderProb   float64
	ReorderDelay  time.Duration
	ReorderJitter time.Duration
	// DupProb is the probability a delivered packet is duplicated; the
	// copy is a deep pool-backed clone delivered alongside the original.
	DupProb float64
	// Rate, if non-nil, drives the bottleneck capacity over time. It is
	// applied by the scenario runner (it needs the link handle), not by
	// the Injector.
	Rate RateSchedule
}

// Active reports whether any per-packet impairment is configured (a pure
// rate schedule needs no injector in the delivery path).
func (c Config) Active() bool {
	return c.Loss != nil || c.ReorderProb > 0 || c.DupProb > 0
}

// Injector applies a Config to a delivery stream. Wire it as
//
//	inj := faults.NewInjector(s, cfg, dispatcher.Deliver)
//	l := link.New(s, linkCfg, inj.Deliver)
//
// so every packet completing serialization passes through the channel.
type Injector struct {
	sim  *sim.Simulator
	pool *packet.Pool
	cfg  Config
	rng  *rand.Rand
	next func(*packet.Packet)

	// OnDrop, if set, takes ownership of packets the channel loses
	// (invoked with reason link.DropFault); otherwise lost packets are
	// released straight back to the pool.
	OnDrop func(*packet.Packet, link.DropReason)

	// Counters for reporting; all are totals since construction.
	Dropped    int
	Duplicated int
	Reordered  int
	Forwarded  int
}

// NewInjector builds an injector whose randomness comes from one fresh
// stream off the simulator's root RNG (taken here, at construction, like
// every other component).
func NewInjector(s *sim.Simulator, cfg Config, next func(*packet.Packet)) *Injector {
	return &Injector{sim: s, pool: s.PacketPool(), cfg: cfg, rng: s.RNG(), next: next}
}

// Deliver subjects one packet to the configured channel and forwards the
// survivors (and any duplicates) to the wrapped delivery callback.
func (inj *Injector) Deliver(p *packet.Packet) {
	if inj.cfg.Loss != nil && inj.cfg.Loss.Lose(inj.rng) {
		inj.Dropped++
		if inj.OnDrop != nil {
			inj.OnDrop(p, link.DropFault)
		} else {
			// The channel is the lost packet's terminal owner.
			inj.pool.Release(p)
		}
		return
	}
	if inj.cfg.DupProb > 0 && inj.rng.Float64() < inj.cfg.DupProb {
		inj.Duplicated++
		inj.forward(inj.clone(p))
	}
	inj.forward(p)
}

// forward hands a packet on, possibly holding it back first (reordering).
func (inj *Injector) forward(p *packet.Packet) {
	if inj.cfg.ReorderProb > 0 && inj.rng.Float64() < inj.cfg.ReorderProb {
		inj.Reordered++
		delay := inj.cfg.ReorderDelay
		if j := inj.cfg.ReorderJitter; j > 0 {
			delay += time.Duration(inj.rng.Int63n(int64(j)))
		}
		inj.sim.After(delay, func() {
			inj.Forwarded++
			inj.next(p)
		})
		return
	}
	inj.Forwarded++
	inj.next(p)
}

// clone deep-copies a packet out of the pool. SACK is the packet's only
// pointer-carrying field, so one slice copy makes the clone independent.
func (inj *Injector) clone(p *packet.Packet) *packet.Packet {
	cp := inj.pool.Get()
	*cp = *p
	if p.SACK != nil {
		cp.SACK = append([][2]int64(nil), p.SACK...)
	}
	return cp
}
