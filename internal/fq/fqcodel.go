// Package fq implements a flow-queuing bottleneck in the style of FQ-CoDel
// (RFC 8290): packets hash to per-flow queues served by deficit round robin
// with new-flow priority, and each queue runs its own CoDel instance.
//
// The paper's introduction names per-flow queuing as the pre-existing way
// to protect latency-sensitive traffic, at the cost of the network
// inspecting transport headers and keeping per-flow state. This package
// exists to put numbers behind that comparison: FQ isolates flows without
// any coupling, so a Cubic and a DCTCP flow each get their fair share
// regardless of congestion-control aggressiveness — but every flow still
// stands in its own (CoDel-controlled) queue, and the flow identification
// the paper's single-queue design avoids is mandatory here.
package fq

import (
	"time"

	"pi2/internal/aqm"
	"pi2/internal/packet"
	"pi2/internal/sim"
	"pi2/internal/stats"
)

// Config parametrizes the FQ-CoDel bottleneck.
type Config struct {
	// RateBps is the serialization rate in bits/s.
	RateBps float64
	// Queues is the number of hash buckets (default 1024).
	Queues int
	// Quantum is the DRR byte quantum (default 1514).
	Quantum int
	// Target and Interval parametrize each queue's CoDel
	// (defaults 5 ms / 100 ms).
	Target, Interval time.Duration
	// BufferPackets bounds the total backlog (default 10240, as in the
	// Linux default limit).
	BufferPackets int
}

type flowQueue struct {
	pkts    []*packet.Packet
	head    int
	bytes   int
	deficit int
	codel   *aqm.CoDel
	isNew   bool
}

func (q *flowQueue) len() int { return len(q.pkts) - q.head }

func (q *flowQueue) push(p *packet.Packet) {
	q.pkts = append(q.pkts, p)
	q.bytes += p.WireLen
}

func (q *flowQueue) pop() *packet.Packet {
	p := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head++
	if q.head > 256 && q.head*2 >= len(q.pkts) {
		n := copy(q.pkts, q.pkts[q.head:])
		clear(q.pkts[n:])
		q.pkts = q.pkts[:n]
		q.head = 0
	}
	q.bytes -= p.WireLen
	return p
}

// Link is the FQ-CoDel bottleneck. It presents the same Enqueue/deliver
// shape as link.Link and core.DualLink so endpoints can attach directly.
type Link struct {
	sim     *sim.Simulator
	cfg     Config
	deliver func(*packet.Packet)

	queues  []*flowQueue
	newQ    []int // round-robin list of new (priority) queue indices
	oldQ    []int // round-robin list of old queue indices
	inList  []bool
	backlog int
	busy    bool

	// Statistics.
	Sojourn   stats.Sample
	drops     int
	codelDrop int
	busySince time.Duration
	busyTotal time.Duration
}

// New creates an FQ-CoDel bottleneck.
func New(s *sim.Simulator, cfg Config, deliver func(*packet.Packet)) *Link {
	if cfg.Queues == 0 {
		cfg.Queues = 1024
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 1514
	}
	if cfg.Target == 0 {
		cfg.Target = 5 * time.Millisecond
	}
	if cfg.Interval == 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.BufferPackets == 0 {
		cfg.BufferPackets = 10240
	}
	l := &Link{
		sim:     s,
		cfg:     cfg,
		deliver: deliver,
		queues:  make([]*flowQueue, cfg.Queues),
		inList:  make([]bool, cfg.Queues),
	}
	return l
}

// bucket hashes a flow id to a queue index (Fibonacci hashing; flows in
// the simulator are small integers, so this spreads them well enough).
func (l *Link) bucket(flowID int) int {
	h := uint64(flowID) * 0x9e3779b97f4a7c15
	return int(h % uint64(l.cfg.Queues))
}

// Enqueue classifies the packet into its flow queue.
func (l *Link) Enqueue(p *packet.Packet) {
	now := l.sim.Now()
	if l.backlog >= l.cfg.BufferPackets {
		l.drops++
		return
	}
	idx := l.bucket(p.FlowID)
	q := l.queues[idx]
	if q == nil {
		q = &flowQueue{codel: aqm.NewCoDel(aqm.CoDelConfig{
			Target: l.cfg.Target, Interval: l.cfg.Interval, ECN: true,
		})}
		l.queues[idx] = q
	}
	p.EnqueuedAt = now
	q.push(p)
	l.backlog++
	if !l.inList[idx] {
		// A queue becoming active enters the new-flow list with a
		// fresh quantum (RFC 8290 §4.1).
		q.isNew = true
		q.deficit = l.cfg.Quantum
		l.newQ = append(l.newQ, idx)
		l.inList[idx] = true
	}
	if !l.busy {
		l.startTx()
	}
}

// nextQueue picks the queue to serve: new flows first, then old flows,
// replenishing deficits DRR-style.
func (l *Link) nextQueue() (int, *flowQueue) {
	for {
		var idx int
		var fromNew bool
		switch {
		case len(l.newQ) > 0:
			idx = l.newQ[0]
			fromNew = true
		case len(l.oldQ) > 0:
			idx = l.oldQ[0]
		default:
			return -1, nil
		}
		q := l.queues[idx]
		if q.len() == 0 {
			// Queue drained: a new queue leaves the lists entirely;
			// an old queue also leaves (it re-enters on next packet).
			if fromNew {
				l.newQ = l.newQ[1:]
			} else {
				l.oldQ = l.oldQ[1:]
			}
			l.inList[idx] = false
			continue
		}
		if q.deficit <= 0 {
			// Exhausted quantum: rotate to the old list.
			q.deficit += l.cfg.Quantum
			if fromNew {
				l.newQ = l.newQ[1:]
				q.isNew = false
			} else {
				l.oldQ = l.oldQ[1:]
			}
			l.oldQ = append(l.oldQ, idx)
			continue
		}
		return idx, q
	}
}

func (l *Link) startTx() {
	now := l.sim.Now()
	var p *packet.Packet
	for {
		_, q := l.nextQueue()
		if q == nil {
			return
		}
		cand := q.pop()
		l.backlog--
		switch q.codel.DequeueVerdict(cand, codelView{q}, now) {
		case aqm.Drop:
			l.drops++
			l.codelDrop++
			continue
		case aqm.Mark:
			cand.ECN = packet.CE
		}
		q.deficit -= cand.WireLen
		p = cand
		break
	}
	l.Sojourn.Add((now - p.EnqueuedAt).Seconds())

	l.busy = true
	l.busySince = now
	txTime := time.Duration(float64(p.WireLen*8) / l.cfg.RateBps * float64(time.Second))
	l.sim.After(txTime, func() {
		l.busyTotal += l.sim.Now() - l.busySince
		l.deliver(p)
		l.busy = false
		if l.backlog > 0 {
			l.startTx()
		}
	})
}

// codelView adapts a flowQueue to aqm.QueueInfo for its CoDel instance.
type codelView struct{ q *flowQueue }

func (v codelView) BacklogBytes() int   { return v.q.bytes }
func (v codelView) BacklogPackets() int { return v.q.len() }
func (v codelView) HeadSojourn(now time.Duration) time.Duration {
	if v.q.len() == 0 {
		return 0
	}
	return now - v.q.pkts[v.q.head].EnqueuedAt
}
func (v codelView) CapacityBps() float64 { return 0 }

// Drops returns total drops (overflow + CoDel).
func (l *Link) Drops() int { return l.drops }

// CoDelDrops returns only the CoDel-decided drops.
func (l *Link) CoDelDrops() int { return l.codelDrop }

// Backlog returns the total queued packet count.
func (l *Link) Backlog() int { return l.backlog }

// Utilization returns the busy fraction since simulation start.
func (l *Link) Utilization() float64 {
	now := l.sim.Now()
	busy := l.busyTotal
	if l.busy {
		busy += now - l.busySince
	}
	if now <= 0 {
		return 0
	}
	return float64(busy) / float64(now)
}
