package fq

import (
	"testing"
	"time"

	"pi2/internal/link"
	"pi2/internal/packet"
	"pi2/internal/sim"
	"pi2/internal/stats"
	"pi2/internal/tcp"
)

func TestSingleFlowDrains(t *testing.T) {
	s := sim.New(1)
	n := 0
	l := New(s, Config{RateBps: 12e6}, func(*packet.Packet) { n++ })
	for i := int64(0); i < 20; i++ {
		l.Enqueue(packet.NewData(1, i, packet.MSS, packet.NotECT))
	}
	s.RunUntil(time.Second)
	if n != 20 {
		t.Errorf("delivered %d, want 20", n)
	}
	if l.Backlog() != 0 {
		t.Errorf("backlog %d", l.Backlog())
	}
}

func TestFairnessBetweenBacklogs(t *testing.T) {
	// Two permanently backlogged flows must each get ~half the deliveries
	// regardless of arrival imbalance.
	s := sim.New(1)
	got := map[int]int{}
	l := New(s, Config{RateBps: 12e6}, func(p *packet.Packet) { got[p.FlowID]++ })
	// Flow 1 offers 3x more packets than flow 2.
	for i := int64(0); i < 300; i++ {
		l.Enqueue(packet.NewData(1, i, packet.MSS, packet.NotECT))
	}
	for i := int64(0); i < 100; i++ {
		l.Enqueue(packet.NewData(2, i, packet.MSS, packet.NotECT))
	}
	// Serve exactly 150 packet times.
	s.RunUntil(150 * time.Millisecond) // 1 ms per packet at 12 Mb/s
	if got[2] < 70 {
		t.Errorf("flow 2 got %d of ~75 fair deliveries (flow 1: %d)", got[2], got[1])
	}
}

func TestNewFlowPriority(t *testing.T) {
	// A fresh sparse flow's packet jumps ahead of a deep old queue.
	s := sim.New(1)
	var order []int
	l := New(s, Config{RateBps: 1.2e6}, func(p *packet.Packet) { order = append(order, p.FlowID) })
	for i := int64(0); i < 50; i++ {
		l.Enqueue(packet.NewData(1, i, packet.MSS, packet.NotECT))
	}
	s.RunUntil(50 * time.Millisecond) // several packets served; flow 1 now "old"
	l.Enqueue(packet.NewData(2, 0, 100, packet.NotECT))
	s.RunUntil(100 * time.Millisecond)
	pos := -1
	for i, f := range order {
		if f == 2 {
			pos = i
			break
		}
	}
	if pos < 0 {
		t.Fatal("flow 2 never served")
	}
	// It must be served within ~2 packets of its arrival (one in
	// transmission + immediate priority), i.e. near position 5-7, far
	// before the 50 flow-1 packets drain.
	if pos > 10 {
		t.Errorf("sparse flow served at position %d, want near-immediate priority", pos)
	}
}

func TestOverflowDrops(t *testing.T) {
	s := sim.New(1)
	l := New(s, Config{RateBps: 1e6, BufferPackets: 10}, func(*packet.Packet) {})
	for i := int64(0); i < 30; i++ {
		l.Enqueue(packet.NewData(1, i, packet.MSS, packet.NotECT))
	}
	if l.Drops() == 0 {
		t.Error("no overflow drops")
	}
	s.RunUntil(time.Second)
}

func TestCoDelEngagesPerQueue(t *testing.T) {
	// A single saturating Reno flow over FQ-CoDel: its queue must be
	// CoDel-controlled to ~target, not grow to the buffer limit.
	s := sim.New(1)
	d := link.NewDispatcher()
	l := New(s, Config{RateBps: 10e6}, d.Deliver)
	ep := tcp.NewWithEnqueuer(s, l.Enqueue, tcp.Config{ID: 1, CC: tcp.Reno{}, BaseRTT: 50 * time.Millisecond})
	d.Register(1, ep.DeliverData)
	ep.Start()
	s.RunUntil(30 * time.Second)
	// CoDel ECN-marks the flow (ECN off here → drops) and keeps sojourn low.
	if l.CoDelDrops() == 0 {
		t.Error("CoDel never engaged")
	}
	mean := l.Sojourn.Mean()
	if mean > 0.030 {
		t.Errorf("mean sojourn %.1f ms, want CoDel-controlled (~5 ms target)", mean*1e3)
	}
	// A single Reno flow under CoDel's 5 ms target pays utilization for
	// latency (halving below BDP drains the shallow queue) — the classic
	// CoDel trade-off. Anything above ~0.75 is the expected regime.
	if u := l.Utilization(); u < 0.75 {
		t.Errorf("utilization %.3f", u)
	}
}

// TestFQIsolatesWithoutCoupling is the paper-motivating comparison: under
// FQ, Cubic vs DCTCP fairness comes from scheduling, not from any coupled
// signal — both get their fair share AND the DCTCP flow sees low delay,
// but only because the network classifies flows (the cost the paper's
// single-queue design avoids).
func TestFQIsolatesWithoutCoupling(t *testing.T) {
	s := sim.New(2)
	d := link.NewDispatcher()
	l := New(s, Config{RateBps: 40e6}, d.Deliver)
	cubic := tcp.NewWithEnqueuer(s, l.Enqueue, tcp.Config{ID: 1, CC: &tcp.Cubic{}, BaseRTT: 10 * time.Millisecond})
	dctcp := tcp.NewWithEnqueuer(s, l.Enqueue, tcp.Config{ID: 2, CC: &tcp.DCTCP{}, ECN: tcp.ECNScalable, BaseRTT: 10 * time.Millisecond})
	d.Register(1, cubic.DeliverData)
	d.Register(2, dctcp.DeliverData)
	cubic.Start()
	dctcp.Start()
	s.RunUntil(15 * time.Second)
	cubic.Goodput.Reset(s.Now())
	dctcp.Goodput.Reset(s.Now())
	s.RunUntil(45 * time.Second)
	now := s.Now()
	ratio := cubic.Goodput.RateBps(now) / dctcp.Goodput.RateBps(now)
	jain := stats.JainIndex([]float64{cubic.Goodput.RateBps(now), dctcp.Goodput.RateBps(now)})
	t.Logf("fq-codel: cubic/dctcp = %.3f, jain = %.3f", ratio, jain)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("FQ scheduling failed to isolate: ratio %.3f", ratio)
	}
	if jain < 0.9 {
		t.Errorf("jain %.3f, want > 0.9 under per-flow scheduling", jain)
	}
}

func TestBucketSpreads(t *testing.T) {
	l := New(sim.New(1), Config{RateBps: 1e6, Queues: 64}, func(*packet.Packet) {})
	seen := map[int]bool{}
	for id := 0; id < 32; id++ {
		seen[l.bucket(id)] = true
	}
	if len(seen) < 24 {
		t.Errorf("32 flows landed in only %d of 64 buckets", len(seen))
	}
}
