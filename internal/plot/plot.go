// Package plot renders time series and CDFs as ASCII charts for terminal
// output — the simulator's stand-in for the paper's gnuplot figures. It is
// deliberately simple: fixed-size character grids, automatic axis scaling,
// multiple series by glyph.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"pi2/internal/stats"
)

// Series is one named line of (x, y) points.
type Series struct {
	Name  string
	Glyph byte
	X, Y  []float64
}

// Chart is an ASCII chart definition.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 72)
	Height int // plot area rows (default 18)
	// YMin/YMax fix the y-axis; when both zero the axis auto-scales.
	YMin, YMax float64
	Series     []Series
}

var glyphs = []byte{'*', '+', 'o', 'x', '#', '@'}

// Add appends a series, assigning a default glyph by position.
func (c *Chart) Add(name string, x, y []float64) {
	g := glyphs[len(c.Series)%len(glyphs)]
	c.Series = append(c.Series, Series{Name: name, Glyph: g, X: x, Y: y})
}

// AddTimeSeries appends a stats.TimeSeries with seconds on the x axis and
// the given y scale factor (e.g. 1e3 for milliseconds).
func (c *Chart) AddTimeSeries(name string, ts *stats.TimeSeries, yScale float64) {
	x := make([]float64, ts.Len())
	y := make([]float64, ts.Len())
	for i := range ts.Values {
		x[i] = ts.Times[i].Seconds()
		y[i] = ts.Values[i] * yScale
	}
	c.Add(name, x, y)
}

// Render writes the chart.
func (c *Chart) Render(w io.Writer) {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 18
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		fmt.Fprintln(w, c.Title, "(no data)")
		return
	}
	if c.YMax != 0 || c.YMin != 0 {
		ymin, ymax = c.YMin, c.YMax
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range c.Series {
		for i := range s.X {
			col := int(float64(width-1) * (s.X[i] - xmin) / (xmax - xmin))
			row := int(float64(height-1) * (s.Y[i] - ymin) / (ymax - ymin))
			if col < 0 || col >= width || row < 0 || row >= height {
				continue
			}
			grid[height-1-row][col] = s.Glyph
		}
	}

	if c.Title != "" {
		fmt.Fprintln(w, c.Title)
	}
	for r, line := range grid {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3g", ymax)
		case height - 1:
			label = fmt.Sprintf("%8.3g", ymin)
		default:
			label = strings.Repeat(" ", 8)
		}
		fmt.Fprintf(w, "%s |%s|\n", label, string(line))
	}
	fmt.Fprintf(w, "%s +%s+\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s  %-10.4g%s%10.4g\n", strings.Repeat(" ", 8),
		xmin, strings.Repeat(" ", max(0, width-20)), xmax)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(w, "%s  x: %s   y: %s\n", strings.Repeat(" ", 8), c.XLabel, c.YLabel)
	}
	for _, s := range c.Series {
		fmt.Fprintf(w, "%s  %c %s\n", strings.Repeat(" ", 8), s.Glyph, s.Name)
	}
}

// CDFChart renders one or more empirical CDFs on a shared axis.
func CDFChart(w io.Writer, title, xlabel string, samples map[string]*stats.Sample, points int) {
	c := Chart{Title: title, XLabel: xlabel, YLabel: "P[X<=x]", YMin: 0, YMax: 1}
	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		pts := samples[name].CDF(points)
		x := make([]float64, len(pts))
		y := make([]float64, len(pts))
		for i, p := range pts {
			x[i] = p.X
			y[i] = p.F
		}
		c.Add(name, x, y)
	}
	c.Render(w)
}

// Sparkline renders a compact one-line bar representation of values.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi == lo {
		hi = lo + 1
	}
	var sb strings.Builder
	for _, v := range values {
		idx := int(float64(len(levels)-1) * (v - lo) / (hi - lo))
		sb.WriteRune(levels[idx])
	}
	return sb.String()
}

// sortStrings is a tiny insertion sort to avoid importing sort for 2-3 keys.
func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}
