package plot

import (
	"strings"
	"testing"
	"time"

	"pi2/internal/stats"
)

func TestChartRenders(t *testing.T) {
	c := Chart{Title: "test chart", XLabel: "t", YLabel: "q"}
	c.Add("a", []float64{0, 1, 2, 3}, []float64{0, 1, 4, 9})
	c.Add("b", []float64{0, 1, 2, 3}, []float64{9, 4, 1, 0})
	var sb strings.Builder
	c.Render(&sb)
	out := sb.String()
	for _, want := range []string{"test chart", "*", "+", " a", " b", "x: t", "y: q"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Axis bounds appear.
	if !strings.Contains(out, "9") || !strings.Contains(out, "0") {
		t.Error("axis labels missing")
	}
}

func TestChartEmpty(t *testing.T) {
	c := Chart{Title: "empty"}
	var sb strings.Builder
	c.Render(&sb)
	if !strings.Contains(sb.String(), "no data") {
		t.Error("empty chart should say so")
	}
}

func TestChartConstantSeries(t *testing.T) {
	c := Chart{}
	c.Add("flat", []float64{0, 1}, []float64{5, 5})
	var sb strings.Builder
	c.Render(&sb) // must not divide by zero
	if sb.Len() == 0 {
		t.Error("nothing rendered")
	}
}

func TestAddTimeSeries(t *testing.T) {
	ts := &stats.TimeSeries{}
	ts.Record(1*time.Second, 0.010)
	ts.Record(2*time.Second, 0.020)
	c := Chart{}
	c.AddTimeSeries("q", ts, 1e3)
	if len(c.Series) != 1 || c.Series[0].Y[1] != 20 {
		t.Errorf("series = %+v", c.Series)
	}
}

func TestCDFChart(t *testing.T) {
	var a, b stats.Sample
	for i := 0; i < 100; i++ {
		a.Add(float64(i))
		b.Add(float64(i) * 2)
	}
	var sb strings.Builder
	CDFChart(&sb, "cdfs", "ms", map[string]*stats.Sample{"pie": &a, "pi2": &b}, 50)
	out := sb.String()
	if !strings.Contains(out, "pie") || !strings.Contains(out, "pi2") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if len([]rune(s)) != 8 {
		t.Errorf("sparkline runes = %d, want 8", len([]rune(s)))
	}
	if []rune(s)[0] != '▁' || []rune(s)[7] != '█' {
		t.Errorf("sparkline endpoints wrong: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty input")
	}
	if len([]rune(Sparkline([]float64{3, 3, 3}))) != 3 {
		t.Error("constant input")
	}
}

func TestGlyphCycle(t *testing.T) {
	c := Chart{}
	for i := 0; i < 8; i++ {
		c.Add("s", []float64{0}, []float64{0})
	}
	if c.Series[0].Glyph != c.Series[6].Glyph {
		t.Error("glyphs should cycle after 6 series")
	}
	if c.Series[0].Glyph == c.Series[1].Glyph {
		t.Error("adjacent series share a glyph")
	}
}
