package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"pi2/internal/aqm"
	"pi2/internal/packet"
)

type fakeQueue struct {
	bytes   int
	sojourn time.Duration
	rate    float64
}

func (f *fakeQueue) BacklogBytes() int                       { return f.bytes }
func (f *fakeQueue) BacklogPackets() int                     { return f.bytes / packet.FullLen }
func (f *fakeQueue) HeadSojourn(time.Duration) time.Duration { return f.sojourn }
func (f *fakeQueue) CapacityBps() float64                    { return f.rate }

func newPI2(cfg Config) *PI2 { return New(cfg, rand.New(rand.NewSource(1))) }

// driveTo raises p′ to roughly the requested value by running updates with
// an inflated queue, then freezing. Returns the PI2 with p′ near target.
func driveTo(t *testing.T, q2 *PI2, pPrime float64) {
	t.Helper()
	q := &fakeQueue{}
	for i := 0; i < 100000 && q2.PPrime() < pPrime; i++ {
		q.sojourn = time.Second
		q2.Update(q, time.Duration(i)*32*time.Millisecond)
	}
	if q2.PPrime() < pPrime-1e-9 {
		t.Fatalf("could not drive p' to %v (got %v)", pPrime, q2.PPrime())
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	cfg := Config{}
	cfg.setDefaults()
	if cfg.Alpha != 5.0/16 || cfg.Beta != 50.0/16 {
		t.Errorf("gains %v/%v, want 0.3125/3.125 (the paper's 2.5x PIE gains)", cfg.Alpha, cfg.Beta)
	}
	if cfg.K != 2 {
		t.Errorf("k = %v, want 2", cfg.K)
	}
	if cfg.Target != 20*time.Millisecond || cfg.Tupdate != 32*time.Millisecond {
		t.Errorf("target/tupdate %v/%v", cfg.Target, cfg.Tupdate)
	}
	if cfg.MaxClassicProb != 0.25 {
		t.Errorf("classic cap %v, want 0.25", cfg.MaxClassicProb)
	}
}

func TestClassicProbabilityIsSquare(t *testing.T) {
	q2 := newPI2(Config{})
	driveTo(t, q2, 0.3)
	pp := q2.PPrime()
	if got := q2.DropProbability(); math.Abs(got-pp*pp) > 1e-12 {
		t.Errorf("classic prob = %v, want p'^2 = %v", got, pp*pp)
	}
}

func TestScalableProbabilityIsKTimes(t *testing.T) {
	q2 := newPI2(Config{})
	driveTo(t, q2, 0.3)
	pp := q2.PPrime()
	if got := q2.ScalableProbability(); math.Abs(got-2*pp) > 1e-12 {
		t.Errorf("scalable prob = %v, want k*p' = %v", got, 2*pp)
	}
}

func TestCouplingRelation14(t *testing.T) {
	// Equation (14): p_c = (p_s / k)^2 must hold exactly between the two
	// reported probabilities at any operating point.
	q2 := newPI2(Config{})
	driveTo(t, q2, 0.2)
	pc := q2.DropProbability()
	ps := q2.ScalableProbability()
	if math.Abs(pc-(ps/2)*(ps/2)) > 1e-12 {
		t.Errorf("pc = %v, (ps/k)^2 = %v", pc, (ps/2)*(ps/2))
	}
}

func TestPPrimeCapEnforcesClassicCap(t *testing.T) {
	q2 := newPI2(Config{})
	q := &fakeQueue{sojourn: 10 * time.Second}
	for i := 0; i < 10000; i++ {
		q2.Update(q, time.Duration(i)*32*time.Millisecond)
	}
	if pp := q2.PPrime(); math.Abs(pp-0.5) > 1e-9 {
		t.Errorf("p' = %v, want capped at 0.5 (sqrt of 25%%)", pp)
	}
	if pc := q2.DropProbability(); pc > 0.25+1e-9 {
		t.Errorf("classic prob %v exceeds 25%% cap", pc)
	}
	if ps := q2.ScalableProbability(); ps > 1 {
		t.Errorf("scalable prob %v exceeds 100%%", ps)
	}
}

func TestClassifierVerdicts(t *testing.T) {
	q2 := newPI2(Config{})
	driveTo(t, q2, 0.5) // p' = 0.5: classic prob 25 %, scalable prob 100 %
	q := &fakeQueue{}

	// Scalable (ECT(1)) at p_s = 1: always marked, never dropped.
	for i := 0; i < 100; i++ {
		if v := q2.Enqueue(packet.NewData(1, 0, packet.MSS, packet.ECT1), q, 0); v != aqm.Mark {
			t.Fatalf("ECT(1) verdict %v, want mark", v)
		}
	}
	// CE input (already marked) also takes the scalable path: stays Mark.
	if v := q2.Enqueue(packet.NewData(1, 0, packet.MSS, packet.CE), q, 0); v != aqm.Mark {
		t.Errorf("CE verdict %v, want mark", v)
	}
	// Classic ECT(0): marked (never dropped) with squared probability.
	marks := 0
	for i := 0; i < 4000; i++ {
		switch q2.Enqueue(packet.NewData(1, 0, packet.MSS, packet.ECT0), q, 0) {
		case aqm.Drop:
			t.Fatal("dropped an ECT(0) packet")
		case aqm.Mark:
			marks++
		}
	}
	if f := float64(marks) / 4000; math.Abs(f-0.25) > 0.03 {
		t.Errorf("ECT(0) mark rate %.3f, want ~0.25", f)
	}
	// Not-ECT: dropped with squared probability.
	drops := 0
	for i := 0; i < 4000; i++ {
		if q2.Enqueue(packet.NewData(1, 0, packet.MSS, packet.NotECT), q, 0) == aqm.Drop {
			drops++
		}
	}
	if f := float64(drops) / 4000; math.Abs(f-0.25) > 0.03 {
		t.Errorf("Not-ECT drop rate %.3f, want ~0.25", f)
	}
}

// TestSquareForms verifies the "multiply" and "max of two randoms" square
// implementations hit at statistically identical rates (the Section 4
// hardware/software equivalence claim).
func TestSquareForms(t *testing.T) {
	for _, pp := range []float64{0.05, 0.2, 0.5} {
		rates := make(map[bool]float64)
		for _, useMult := range []bool{false, true} {
			q2 := newPI2(Config{UseMultiply: useMult, MaxClassicProb: 1})
			driveTo(t, q2, pp)
			// Freeze p' exactly at pp for a fair comparison.
			q2.core.SetP(pp)
			q := &fakeQueue{}
			hits := 0
			const n = 200000
			for i := 0; i < n; i++ {
				if q2.Enqueue(packet.NewData(1, 0, packet.MSS, packet.NotECT), q, 0) == aqm.Drop {
					hits++
				}
			}
			rates[useMult] = float64(hits) / n
		}
		want := pp * pp
		for useMult, got := range rates {
			if math.Abs(got-want) > 0.01 {
				t.Errorf("p'=%v useMultiply=%v: rate %.4f, want %.4f", pp, useMult, got, want)
			}
		}
	}
}

// TestPropertySquaredRate: for random p′, the empirical Classic hit rate
// tracks p′² within binomial noise.
func TestPropertySquaredRate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(raw uint8) bool {
		pp := float64(raw%100) / 100
		q2 := newPI2(Config{MaxClassicProb: 1})
		q2.core.SetP(pp)
		q := &fakeQueue{}
		hits := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if q2.Enqueue(packet.NewData(1, 0, packet.MSS, packet.NotECT), q, 0) == aqm.Drop {
				hits++
			}
		}
		return math.Abs(float64(hits)/n-pp*pp) < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestZeroProbabilityPassesEverything(t *testing.T) {
	q2 := newPI2(Config{})
	q := &fakeQueue{}
	for i := 0; i < 100; i++ {
		for _, ecn := range []packet.ECN{packet.NotECT, packet.ECT0, packet.ECT1} {
			if v := q2.Enqueue(packet.NewData(1, 0, packet.MSS, ecn), q, 0); v != aqm.Accept {
				t.Fatalf("verdict %v at p'=0", v)
			}
		}
	}
}

func TestUpdateRespondsToQueue(t *testing.T) {
	q2 := newPI2(Config{})
	q := &fakeQueue{sojourn: 40 * time.Millisecond}
	q2.Update(q, 0)
	if q2.PPrime() <= 0 {
		t.Fatal("p' did not rise with queue above target")
	}
	// Queue empties: p' must decay to 0.
	q.sojourn = 0
	for i := 0; i < 1000; i++ {
		q2.Update(q, time.Duration(i)*32*time.Millisecond)
	}
	if q2.PPrime() != 0 {
		t.Errorf("p' = %v after long-empty queue, want 0", q2.PPrime())
	}
}

func TestNoHeuristics(t *testing.T) {
	// PI2's point: a fresh instance at high queue delay reacts on the
	// very first update — no burst allowance, no suppression.
	q2 := newPI2(Config{})
	q := &fakeQueue{sojourn: 100 * time.Millisecond}
	q2.Update(q, 0)
	want := (5.0/16)*(0.08) + (50.0/16)*(0.1)
	if got := q2.PPrime(); math.Abs(got-want) > 1e-12 {
		t.Errorf("first update p' = %v, want %v (no heuristics in the way)", got, want)
	}
}

func TestKOneDisablesCoupling(t *testing.T) {
	q2 := newPI2(Config{K: 1})
	q2.core.SetP(0.3)
	if got := q2.ScalableProbability(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("k=1 scalable prob = %v, want p' itself", got)
	}
}

func TestName(t *testing.T) {
	if newPI2(Config{}).Name() != "pi2" {
		t.Error("name")
	}
	if newPI2(Config{}).UpdateInterval() != 32*time.Millisecond {
		t.Error("update interval")
	}
}
