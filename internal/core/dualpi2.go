package core

import (
	"math"
	"math/rand"
	"time"

	"pi2/internal/aqm"
	"pi2/internal/link"
	"pi2/internal/packet"
	"pi2/internal/sim"
	"pi2/internal/stats"
)

// DualConfig parametrizes the DualPI2 dual-queue coupled AQM — the paper's
// stated deployment goal (Section 7, refs [12][13]; later RFC 9332). It is
// an extension beyond the paper's own single-queue evaluation.
type DualConfig struct {
	// Config provides the coupled PI²/PI parameters (gains act on p′,
	// Classic probability is p′², Scalable coupled probability is k·p′).
	Config
	// LThreshMin/LThreshMax bound the L-queue native ramp: the marking
	// probability rises linearly from 0 at LThreshMin sojourn to 1 at
	// LThreshMax (defaults 1 ms and 2 ms). The applied L probability is
	// the maximum of the ramp and the coupled probability k·p′.
	LThreshMin, LThreshMax time.Duration
	// TShift is the time-shifted-FIFO scheduler bias: the L queue is
	// served unless the Classic head has waited TShift longer than the
	// L head (default 40 ms). This gives L near-priority without
	// starving C.
	TShift time.Duration
	// BufferPackets bounds the combined queue (default 40000).
	BufferPackets int
}

func (c *DualConfig) setDefaults() {
	c.Config.setDefaults()
	if c.LThreshMin == 0 {
		c.LThreshMin = time.Millisecond
	}
	if c.LThreshMax == 0 {
		c.LThreshMax = 2 * time.Millisecond
	}
	if c.TShift == 0 {
		c.TShift = 40 * time.Millisecond
	}
	if c.BufferPackets == 0 {
		c.BufferPackets = 40000
	}
}

// subqueue is one of the two FIFOs inside the DualLink.
type subqueue struct {
	pkts  []*packet.Packet
	head  int
	bytes int
}

func (q *subqueue) len() int { return len(q.pkts) - q.head }

func (q *subqueue) push(p *packet.Packet) {
	q.pkts = append(q.pkts, p)
	q.bytes += p.WireLen
}

func (q *subqueue) pop() *packet.Packet {
	p := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head++
	if q.head > 1024 && q.head*2 >= len(q.pkts) {
		n := copy(q.pkts, q.pkts[q.head:])
		clear(q.pkts[n:])
		q.pkts = q.pkts[:n]
		q.head = 0
	}
	q.bytes -= p.WireLen
	return p
}

func (q *subqueue) headSojourn(now time.Duration) time.Duration {
	if q.len() == 0 {
		return 0
	}
	return now - q.pkts[q.head].EnqueuedAt
}

// DualLink is a bottleneck with the DualPI2 structure: a low-latency (L)
// queue for Scalable traffic and a Classic (C) queue, drained by one
// transmitter under a time-shifted priority scheduler, with one PI
// controller coupling the congestion signals of both queues.
type DualLink struct {
	sim     *sim.Simulator
	cfg     DualConfig
	rng     *rand.Rand
	rate    float64
	deliver func(*packet.Packet)

	lq, cq subqueue
	busy   bool

	core aqm.PICore

	// txPkt is the packet currently serializing and txDoneFn the pre-bound
	// completion callback — one slot instead of a per-packet closure, the
	// same zero-allocation transmit path as link.Link.
	txPkt    *packet.Packet
	txDoneFn sim.Event

	// pool recycles dropped packets (delivered ones are released by their
	// terminal consumer downstream).
	pool *packet.Pool

	// OnDrop, if set, observes every dropped packet (and takes ownership of
	// it), mirroring link.Link.OnDrop.
	OnDrop func(*packet.Packet, link.DropReason)

	// Statistics, split per queue. Exact samples by default; the heavy
	// many-flow tier swaps in constant-memory histograms (assign before
	// the first enqueue).
	LSojourn, CSojourn stats.Quantiler // seconds
	drops              int
	lMarks, cMarks     int
	busySince          time.Duration
	busyTotal          time.Duration

	// aud is the always-on invariant auditor shared with link.Link: the
	// same conservation identities hold over the combined L+C backlog.
	aud link.Auditor
}

// NewDualLink creates a DualPI2 bottleneck of the given rate (bits/s).
func NewDualLink(s *sim.Simulator, rateBps float64, cfg DualConfig, deliver func(*packet.Packet)) *DualLink {
	cfg.setDefaults()
	d := &DualLink{
		sim:      s,
		cfg:      cfg,
		rng:      s.RNG(),
		rate:     rateBps,
		deliver:  deliver,
		pool:     s.PacketPool(),
		LSojourn: &stats.Sample{},
		CSojourn: &stats.Sample{},
	}
	d.txDoneFn = d.txDone
	d.core = aqm.PICore{
		Alpha:  cfg.Alpha,
		Beta:   cfg.Beta,
		Target: cfg.Target,
		PMax:   pMaxFor(cfg.MaxClassicProb),
	}
	s.Every(cfg.Tupdate, d.update)
	return d
}

func pMaxFor(maxClassic float64) float64 {
	// p′ is capped so p′² never exceeds the Classic cap.
	if maxClassic >= 1 {
		return 1
	}
	return math.Sqrt(maxClassic)
}

// PPrime returns the coupled controller's internal variable p′.
func (d *DualLink) PPrime() float64 { return d.core.P() }

// Drops returns the total dropped-packet count.
func (d *DualLink) Drops() int { return d.drops }

// Marks returns the CE marks applied to the L and C queues respectively.
func (d *DualLink) Marks() (l, c int) { return d.lMarks, d.cMarks }

// update runs the PI law on the deeper of the two queue delays, so the
// controller keeps working when only one kind of traffic is present.
func (d *DualLink) update() {
	now := d.sim.Now()
	qdelay := d.cq.headSojourn(now)
	if l := d.lq.headSojourn(now); l > qdelay {
		qdelay = l
	}
	d.core.Update(qdelay)
}

// Enqueue classifies and admits a packet. Classic packets face the squared
// probability at enqueue; L-queue packets are marked at dequeue (so the
// mark reflects the delay actually experienced).
func (d *DualLink) Enqueue(p *packet.Packet) {
	if p.Released() {
		panic("duallink: enqueued a packet that was already released to the pool")
	}
	now := d.sim.Now()
	d.aud.Offered(p, now)
	if d.lq.len()+d.cq.len() >= d.cfg.BufferPackets {
		d.drop(p, link.DropOverflow)
		return
	}
	p.EnqueuedAt = now
	if p.ECN.Scalable() {
		d.lq.push(p)
	} else {
		pp := d.core.P()
		if d.rng.Float64() < pp && d.rng.Float64() < pp {
			if p.ECN == packet.ECT0 {
				d.aud.Marked(p, now)
				p.ECN = packet.CE
				d.cMarks++
			} else {
				d.drop(p, link.DropAQM)
				return
			}
		}
		d.cq.push(p)
	}
	d.aud.Accepted(p, now)
	d.aud.Conserve(now, d.lq.len()+d.cq.len(), d.lq.bytes+d.cq.bytes)
	if !d.busy {
		d.startTx()
	}
}

// drop records an enqueue-time drop (overflow or Classic squared drop) and
// recycles the packet unless an OnDrop observer takes ownership.
func (d *DualLink) drop(p *packet.Packet, r link.DropReason) {
	now := d.sim.Now()
	d.aud.DroppedPkt(p, now, false)
	d.drops++
	if d.OnDrop != nil {
		d.OnDrop(p, r)
	} else {
		d.pool.Release(p)
	}
	d.aud.Conserve(now, d.lq.len()+d.cq.len(), d.lq.bytes+d.cq.bytes)
}

// rampProb is the L queue's native AQM: linear ramp on sojourn time.
func (d *DualLink) rampProb(sojourn time.Duration) float64 {
	if sojourn <= d.cfg.LThreshMin {
		return 0
	}
	if sojourn >= d.cfg.LThreshMax {
		return 1
	}
	return float64(sojourn-d.cfg.LThreshMin) / float64(d.cfg.LThreshMax-d.cfg.LThreshMin)
}

func (d *DualLink) startTx() {
	now := d.sim.Now()
	var p *packet.Packet
	// Time-shifted priority: serve L unless the C head is TShift older.
	serveL := d.lq.len() > 0 &&
		(d.cq.len() == 0 || d.lq.headSojourn(now)+d.cfg.TShift >= d.cq.headSojourn(now))
	if serveL {
		p = d.lq.pop()
		d.LSojourn.Add((now - p.EnqueuedAt).Seconds())
		// Coupled + native marking, whichever is stronger.
		pL := d.cfg.K * d.core.P()
		if r := d.rampProb(now - p.EnqueuedAt); r > pL {
			pL = r
		}
		if pL > 1 {
			pL = 1
		}
		if d.rng.Float64() < pL {
			d.aud.Marked(p, now)
			p.ECN = packet.CE
			d.lMarks++
		}
	} else {
		p = d.cq.pop()
		d.CSojourn.Add((now - p.EnqueuedAt).Seconds())
	}
	d.aud.Dequeued(p, now)
	d.aud.Conserve(now, d.lq.len()+d.cq.len(), d.lq.bytes+d.cq.bytes)

	d.busy = true
	d.busySince = now
	d.txPkt = p
	txTime := time.Duration(float64(p.WireLen*8) / d.rate * float64(time.Second))
	d.sim.After(txTime, d.txDoneFn)
}

// txDone completes the in-flight packet's serialization and hands it to the
// delivery callback; pre-bound once so transmission schedules a method
// value, not a fresh closure per packet.
func (d *DualLink) txDone() {
	p := d.txPkt
	d.txPkt = nil
	d.busyTotal += d.sim.Now() - d.busySince
	d.aud.Delivered(p, d.sim.Now())
	d.deliver(p)
	d.busy = false
	if d.lq.len()+d.cq.len() > 0 {
		d.startTx()
	}
}

// SetRateBps changes the link capacity (rate-flap impairment schedules call
// this); a packet already serializing completes at the old rate.
func (d *DualLink) SetRateBps(r float64) { d.rate = r }

// RateBps returns the current capacity in bits/s.
func (d *DualLink) RateBps() float64 { return d.rate }

// Audit returns the always-on invariant auditor (same identities as
// link.Link's, over the combined L+C backlog).
func (d *DualLink) Audit() *link.Auditor { return &d.aud }

// Utilization returns the busy fraction since simulation start.
func (d *DualLink) Utilization() float64 {
	now := d.sim.Now()
	busy := d.busyTotal
	if d.busy {
		busy += now - d.busySince
	}
	if now <= 0 {
		return 0
	}
	return float64(busy) / float64(now)
}
