// Package core implements the paper's contribution: the PI2 AQM — a plain
// linear PI controller on a pseudo-probability p′ whose output is squared
// into the Classic drop/mark probability (Figure 8) — and its coupled form
// that simultaneously supports Scalable congestion controls by applying p′
// directly (Figure 9), plus the DualPI2 dual-queue extension the paper
// names as the next step (Section 7; later standardized as RFC 9332).
//
// The controlled variable here is p′, the Classic pseudo-probability. The
// coupled Scalable marking probability is p_s = k·p′ and the Classic
// drop/mark probability is p_c = p′² = (p_s/k)², which is exactly the
// relation (14) the paper derives for equal steady-state rates between
// CReno and DCTCP. With the default k = 2, the Table 1 Scalable gains
// (α = 10/16, β = 100/16) acting on p_s are identical to the Classic gains
// (α = 5/16, β = 50/16) acting on p′.
package core

import (
	"math"
	"math/rand"
	"time"

	"pi2/internal/aqm"
	"pi2/internal/packet"
)

// Config parametrizes a PI2 AQM.
type Config struct {
	// Alpha, Beta are the PI gains in Hz acting on p′. Defaults are the
	// paper's 2.5×-PIE gains: α = 5/16 = 0.3125, β = 50/16 = 3.125
	// (Figure 6/7 captions), made possible by PI2's flat gain margin.
	Alpha, Beta float64
	// Target is the queuing-delay reference τ0 (default 20 ms, Table 1).
	Target time.Duration
	// Tupdate is the control interval T (default 32 ms).
	Tupdate time.Duration
	// K is the coupling factor between Scalable and Classic signalling
	// (default 2; the paper derives 1.19 analytically in (14) and
	// validates 2 empirically, which also doubles the Scalable gains for
	// optimal stability).
	K float64
	// MaxClassicProb caps the Classic drop/mark probability (default
	// 0.25, the paper's overload strategy replacing PIE's ECN-drop rule).
	// The equivalent Scalable cap (k·√0.25 = 100 % with k = 2) follows.
	MaxClassicProb float64
	// Estimator selects queue-delay measurement. The PI2 qdisc timestamps
	// packets, so the default is head-sojourn.
	Estimator aqm.DelayEstimator
	// UseMultiply applies the square by multiplying p′·p′ (the software
	// form) instead of comparing against the maximum of two random
	// variables (the hardware form). Both are provided for the ablation
	// bench; they are statistically identical.
	UseMultiply bool
}

func (c *Config) setDefaults() {
	if c.Alpha == 0 {
		c.Alpha = 5.0 / 16
	}
	if c.Beta == 0 {
		c.Beta = 50.0 / 16
	}
	if c.Target == 0 {
		c.Target = 20 * time.Millisecond
	}
	if c.Tupdate == 0 {
		c.Tupdate = 32 * time.Millisecond
	}
	if c.K == 0 {
		c.K = 2
	}
	if c.MaxClassicProb == 0 {
		c.MaxClassicProb = 0.25
	}
}

// PI2 is the paper's AQM: PI control of a linear pseudo-probability p′,
// squared into the Classic congestion signal at the drop/mark decision, and
// applied directly (scaled by k) to Scalable packets. A single instance
// serves both Figure 8 (Classic-only traffic) and Figure 9 (coexistence):
// the per-packet ECN classifier picks the right decision.
type PI2 struct {
	cfg  Config
	core aqm.PICore
	rate aqm.DepartRateEstimator
	rng  *rand.Rand
}

// New builds a PI2 AQM with the given RNG stream.
func New(cfg Config, rng *rand.Rand) *PI2 {
	cfg.setDefaults()
	return &PI2{
		cfg: cfg,
		core: aqm.PICore{
			Alpha:  cfg.Alpha,
			Beta:   cfg.Beta,
			Target: cfg.Target,
			// p′ is capped so that p′² never exceeds the Classic cap.
			PMax: math.Sqrt(cfg.MaxClassicProb),
		},
		rng: rng,
	}
}

// Name implements aqm.AQM.
func (q2 *PI2) Name() string { return "pi2" }

// PPrime returns the internal linear pseudo-probability p′.
func (q2 *PI2) PPrime() float64 { return q2.core.P() }

// DropProbability implements aqm.ProbabilityReporter: the probability
// currently applied to Classic packets, p = p′².
func (q2 *PI2) DropProbability() float64 {
	p := q2.core.P()
	return p * p
}

// ScalableProbability implements aqm.ScalableReporter: p_s = min(k·p′, 1).
func (q2 *PI2) ScalableProbability() float64 {
	ps := q2.cfg.K * q2.core.P()
	if ps > 1 {
		return 1
	}
	return ps
}

// Enqueue implements aqm.AQM: the Figure 9 classifier and decision blocks.
// The decision logic lives in FFDecide so packet mode and fast-forward mode
// share one RNG discipline.
func (q2 *PI2) Enqueue(p *packet.Packet, _ aqm.QueueInfo, _ time.Duration) Verdict {
	return q2.FFDecide(p.ECN, p.WireLen, 0)
}

// squaredHit draws the squared-probability decision: either one uniform
// draw against p′² or two draws both below p′ (max(Y1,Y2) < p′).
func (q2 *PI2) squaredHit() bool {
	pp := q2.core.P()
	if q2.cfg.UseMultiply {
		return q2.rng.Float64() < pp*pp
	}
	return q2.rng.Float64() < pp && q2.rng.Float64() < pp
}

// Verdict aliases aqm.Verdict for readability at call sites.
type Verdict = aqm.Verdict

// Dequeue implements aqm.AQM.
func (q2 *PI2) Dequeue(p *packet.Packet, q aqm.QueueInfo, now time.Duration) {
	if q2.cfg.Estimator == aqm.EstimateByRate {
		q2.rate.OnDequeue(p.WireLen, q.BacklogBytes(), now)
	}
}

// UpdateInterval implements aqm.AQM.
func (q2 *PI2) UpdateInterval() time.Duration { return q2.cfg.Tupdate }

// Update implements aqm.AQM: one plain PI step — no auto-tuning, no
// heuristics; that is the point.
func (q2 *PI2) Update(q aqm.QueueInfo, now time.Duration) {
	q2.FFUpdate(aqm.EstimateDelay(q2.cfg.Estimator, q, &q2.rate, now))
}
