package core

import (
	"strings"
	"testing"
	"time"
)

func TestConfigValidateAcceptsZeroValue(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config (Table 1 defaults) invalid: %v", err)
	}
	if err := (DualConfig{}).Validate(); err != nil {
		t.Errorf("zero dual config invalid: %v", err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"negative alpha", Config{Alpha: -1}, "non-negative"},
		{"swapped gains", Config{Alpha: 3.125, Beta: 0.3125}, "swapped"},
		{"negative target", Config{Target: -time.Second}, "target"},
		{"negative k", Config{K: -2}, "coupling"},
		{"probability above one", Config{MaxClassicProb: 1.5}, "[0,1]"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.want)
		}
	}
}

func TestDualConfigValidateRejects(t *testing.T) {
	bad := DualConfig{LThreshMin: 2 * time.Millisecond, LThreshMax: time.Millisecond}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "LThreshMin") {
		t.Errorf("inverted ramp accepted: %v", err)
	}
	if err := (DualConfig{TShift: -1}).Validate(); err == nil {
		t.Error("negative TShift accepted")
	}
	if err := (DualConfig{BufferPackets: -1}).Validate(); err == nil {
		t.Error("negative buffer accepted")
	}
}

func TestConfigString(t *testing.T) {
	s := Config{}.String()
	for _, want := range []string{"alpha=0.3125", "beta=3.125", "k=2", "target=20ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
