package core

import (
	"math/rand"
	"testing"
	"time"

	"pi2/internal/aqm"
	"pi2/internal/packet"
	"pi2/internal/sim"
)

// Same-seed twin equivalence: one PI2 driven through the packet interface,
// one through the FastForwarder interface; verdict streams and the p′
// trajectory must be bit-identical, for both squaring forms.

type ffFakeQueue struct {
	sojourn time.Duration
}

func (f *ffFakeQueue) BacklogBytes() int                       { return 0 }
func (f *ffFakeQueue) BacklogPackets() int                     { return 0 }
func (f *ffFakeQueue) HeadSojourn(time.Duration) time.Duration { return f.sojourn }
func (f *ffFakeQueue) CapacityBps() float64                    { return 0 }

func ffECN(i int) packet.ECN {
	switch i % 4 {
	case 0:
		return packet.NotECT
	case 1:
		return packet.ECT0
	case 2:
		return packet.ECT1
	default:
		return packet.CE
	}
}

func TestPI2FastForwardTwinEquivalence(t *testing.T) {
	for _, useMul := range []bool{false, true} {
		name := "two-draw"
		if useMul {
			name = "multiply"
		}
		t.Run(name, func(t *testing.T) {
			seed := int64(23)
			pkt := New(Config{UseMultiply: useMul}, rand.New(rand.NewSource(seed)))
			ff := New(Config{UseMultiply: useMul}, rand.New(rand.NewSource(seed)))
			q := &ffFakeQueue{}
			delays := []time.Duration{
				25 * time.Millisecond, 60 * time.Millisecond, 15 * time.Millisecond,
				0, 35 * time.Millisecond, 22 * time.Millisecond,
			}
			for step := 0; step < 300; step++ {
				qd := delays[step%len(delays)]
				q.sojourn = qd
				pkt.Update(q, 0)
				ff.FFUpdate(qd)
				if pkt.PPrime() != ff.PPrime() {
					t.Fatalf("step %d: p' diverged: %g vs %g", step, pkt.PPrime(), ff.PPrime())
				}
				for i := 0; i < 9; i++ {
					ecn := ffECN(i)
					vp := pkt.Enqueue(packet.NewData(1, 0, packet.MSS, ecn), q, 0)
					vf := ff.FFDecide(ecn, packet.FullLen, 0)
					if vp != vf {
						t.Fatalf("step %d pkt %d (%v): verdict diverged: %v vs %v",
							step, i, ecn, vp, vf)
					}
				}
			}
		})
	}
}

func TestPI2FFTarget(t *testing.T) {
	var iface aqm.FastForwarder = New(Config{}, rand.New(rand.NewSource(1)))
	if got := iface.FFTarget(); got != 20*time.Millisecond {
		t.Fatalf("target = %v", got)
	}
}

// TestDualLinkFFUpdate checks the dual-queue control-law stepping hook
// matches a bare PICore twin with the DualPI2 gains and cap: the ff engine
// never fast-forwards dualpi2 epochs, but the hook must still step p′
// exactly as the periodic update would for the same delay observations.
func TestDualLinkFFUpdate(t *testing.T) {
	s := sim.New(1)
	d := NewDualLink(s, 1e8, DualConfig{}, func(p *packet.Packet) {
		s.PacketPool().Release(p)
	})
	cfg := Config{}
	cfg.setDefaults()
	twin := aqm.PICore{
		Alpha:  cfg.Alpha,
		Beta:   cfg.Beta,
		Target: cfg.Target,
		PMax:   pMaxFor(cfg.MaxClassicProb),
	}
	for step := 0; step < 100; step++ {
		qd := time.Duration(step%7) * 10 * time.Millisecond
		d.FFUpdate(qd)
		twin.Update(qd)
		if d.PPrime() != twin.P() {
			t.Fatalf("step %d: p' = %g, twin %g", step, d.PPrime(), twin.P())
		}
	}
}
