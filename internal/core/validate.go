package core

import (
	"errors"
	"fmt"
)

// Validate reports whether the configuration is usable before defaults are
// applied: zero values are legal (they select Table 1 defaults); negative
// or out-of-range values are not.
func (c Config) Validate() error {
	var errs []error
	if c.Alpha < 0 || c.Beta < 0 {
		errs = append(errs, fmt.Errorf("gains must be non-negative (alpha=%v beta=%v)", c.Alpha, c.Beta))
	}
	if c.Alpha > 0 && c.Beta > 0 && c.Alpha > c.Beta {
		// Not fatal in theory, but always a configuration mistake in
		// practice: the paper's β is 10x α.
		errs = append(errs, fmt.Errorf("alpha (%v) exceeds beta (%v): gains likely swapped", c.Alpha, c.Beta))
	}
	if c.Target < 0 {
		errs = append(errs, fmt.Errorf("target delay must be non-negative, got %v", c.Target))
	}
	if c.Tupdate < 0 {
		errs = append(errs, fmt.Errorf("tupdate must be non-negative, got %v", c.Tupdate))
	}
	if c.K < 0 {
		errs = append(errs, fmt.Errorf("coupling factor k must be non-negative, got %v", c.K))
	}
	if c.MaxClassicProb < 0 || c.MaxClassicProb > 1 {
		errs = append(errs, fmt.Errorf("max classic probability must be in [0,1], got %v", c.MaxClassicProb))
	}
	return errors.Join(errs...)
}

// Validate checks the dual-queue configuration.
func (c DualConfig) Validate() error {
	var errs []error
	if err := c.Config.Validate(); err != nil {
		errs = append(errs, err)
	}
	if c.LThreshMin < 0 || c.LThreshMax < 0 {
		errs = append(errs, errors.New("L-queue thresholds must be non-negative"))
	}
	if c.LThreshMin != 0 && c.LThreshMax != 0 && c.LThreshMin >= c.LThreshMax {
		errs = append(errs, fmt.Errorf("LThreshMin (%v) must be below LThreshMax (%v)", c.LThreshMin, c.LThreshMax))
	}
	if c.TShift < 0 {
		errs = append(errs, fmt.Errorf("TShift must be non-negative, got %v", c.TShift))
	}
	if c.BufferPackets < 0 {
		errs = append(errs, fmt.Errorf("buffer must be non-negative, got %d", c.BufferPackets))
	}
	return errors.Join(errs...)
}

// String summarizes the effective (post-default) configuration.
func (c Config) String() string {
	c.setDefaults()
	return fmt.Sprintf("pi2{alpha=%g beta=%g target=%v T=%v k=%g maxClassic=%g est=%v}",
		c.Alpha, c.Beta, c.Target, c.Tupdate, c.K, c.MaxClassicProb, c.Estimator)
}
