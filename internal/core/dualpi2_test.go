package core

import (
	"testing"
	"time"

	"pi2/internal/link"
	"pi2/internal/packet"
	"pi2/internal/sim"
)

// collect runs a DualLink inside a simulator and gathers delivered packets.
func newDualHarness(seed int64, rateBps float64, cfg DualConfig) (*sim.Simulator, *DualLink, *[]*packet.Packet) {
	s := sim.New(seed)
	var delivered []*packet.Packet
	d := NewDualLink(s, rateBps, cfg, func(p *packet.Packet) {
		delivered = append(delivered, p)
	})
	return s, d, &delivered
}

func TestDualClassifiesByECN(t *testing.T) {
	s, d, delivered := newDualHarness(1, 1e9, DualConfig{})
	d.Enqueue(packet.NewData(1, 0, packet.MSS, packet.ECT1))
	d.Enqueue(packet.NewData(2, 0, packet.MSS, packet.NotECT))
	s.RunUntil(5 * time.Second)
	if len(*delivered) != 2 {
		t.Fatalf("delivered %d", len(*delivered))
	}
}

func TestDualLQueuePriority(t *testing.T) {
	// Fill the C queue, then add one L packet: it must jump the line
	// (TShift priority) even though it arrived last.
	s, d, delivered := newDualHarness(1, 1e6, DualConfig{}) // slow link
	for i := 0; i < 20; i++ {
		d.Enqueue(packet.NewData(1, int64(i), packet.MSS, packet.NotECT))
	}
	d.Enqueue(packet.NewData(2, 0, packet.MSS, packet.ECT1))
	s.RunUntil(5 * time.Second)
	// One C packet is already in the transmitter when L arrives; the L
	// packet must come no later than second.
	pos := -1
	for i, p := range *delivered {
		if p.FlowID == 2 {
			pos = i
		}
	}
	if pos < 0 || pos > 1 {
		t.Errorf("L packet delivered at position %d, want <= 1", pos)
	}
}

func TestDualTShiftPreventsCStarvation(t *testing.T) {
	// Keep the L queue constantly busy; C packets must still trickle out
	// once their head age exceeds TShift.
	cfg := DualConfig{TShift: 5 * time.Millisecond}
	s, d, delivered := newDualHarness(1, 1e6, cfg) // 1 Mb/s: 12 ms per pkt
	stop := s.Every(time.Millisecond, func() {
		d.Enqueue(packet.NewData(2, 0, 100, packet.ECT1))
	})
	d.Enqueue(packet.NewData(1, 0, packet.MSS, packet.NotECT))
	s.RunUntil(200 * time.Millisecond)
	stop.Stop()
	sawC := false
	for _, p := range *delivered {
		if p.FlowID == 1 {
			sawC = true
		}
	}
	if !sawC {
		t.Error("C queue starved despite TShift")
	}
}

func TestDualNativeRampMarksDeepLQueue(t *testing.T) {
	cfg := DualConfig{LThreshMin: time.Millisecond, LThreshMax: 2 * time.Millisecond}
	s, d, delivered := newDualHarness(1, 1e6, cfg)
	// Burst 50 L packets: the later ones wait >> 2 ms at 1 Mb/s and must
	// be CE-marked by the native ramp even though p' is still 0.
	for i := 0; i < 50; i++ {
		d.Enqueue(packet.NewData(2, int64(i), packet.MSS, packet.ECT1))
	}
	s.RunUntil(5 * time.Second)
	marked := 0
	for _, p := range *delivered {
		if p.ECN == packet.CE {
			marked++
		}
	}
	if marked < 25 {
		t.Errorf("ramp marked %d of 50, want most of the deep queue", marked)
	}
	l, c := d.Marks()
	if l != marked || c != 0 {
		t.Errorf("mark counters l=%d c=%d, want l=%d c=0", l, c, marked)
	}
}

func TestDualBufferOverflowDrops(t *testing.T) {
	cfg := DualConfig{BufferPackets: 10}
	s, d, _ := newDualHarness(1, 1e6, cfg)
	for i := 0; i < 30; i++ {
		d.Enqueue(packet.NewData(1, int64(i), packet.MSS, packet.NotECT))
	}
	if d.Drops() == 0 {
		t.Error("no drops beyond the buffer limit")
	}
	s.RunUntil(5 * time.Second)
}

func TestDualClassicSquaredDropAtEnqueue(t *testing.T) {
	s, d, _ := newDualHarness(1, 1e9, DualConfig{})
	d.core.SetP(0.5) // classic prob 25 %
	drops := 0
	const n = 8000
	for i := 0; i < n; i++ {
		before := d.Drops()
		d.Enqueue(packet.NewData(1, int64(i), packet.MSS, packet.NotECT))
		if d.Drops() > before {
			drops++
		}
	}
	f := float64(drops) / n
	if f < 0.2 || f > 0.3 {
		t.Errorf("classic drop rate %.3f, want ~0.25", f)
	}
	s.RunUntil(5 * time.Second)
}

func TestDualUtilizationAccounting(t *testing.T) {
	s, d, _ := newDualHarness(1, 1e6, DualConfig{})
	d.Enqueue(packet.NewData(1, 0, packet.MSS, packet.NotECT))
	// One 1500 B packet at 1 Mb/s serializes in exactly 12 ms; run to
	// that instant so the link was busy for the whole elapsed time.
	s.RunUntil(12 * time.Millisecond)
	if u := d.Utilization(); u < 0.99 {
		t.Errorf("utilization %v for a fully busy period, want ~1", u)
	}
}

func TestDualPPrimeRisesWithCQueue(t *testing.T) {
	s, d, _ := newDualHarness(1, 1e5, DualConfig{}) // 100 kb/s: deep queue
	for i := 0; i < 100; i++ {
		d.Enqueue(packet.NewData(1, int64(i), packet.MSS, packet.NotECT))
	}
	s.RunUntil(2 * time.Second)
	if d.PPrime() == 0 {
		t.Error("p' stayed 0 with a standing Classic queue")
	}
}

func TestDualAuditorConservation(t *testing.T) {
	// Overflow drops, Classic squared drops, L marks and deliveries all in
	// one run: the auditor's conservation identities must hold throughout
	// and the ledger must match the DualLink's own counters.
	cfg := DualConfig{BufferPackets: 20}
	s, d, delivered := newDualHarness(1, 1e6, cfg)
	d.core.SetP(0.3)
	for i := 0; i < 60; i++ {
		d.Enqueue(packet.NewData(1, int64(i), packet.MSS, packet.NotECT))
		d.Enqueue(packet.NewData(2, int64(i), packet.MSS, packet.ECT1))
	}
	s.RunUntil(10 * time.Second)
	a := d.Audit()
	if v := a.Violations(); v != nil {
		t.Fatalf("auditor violations: %v", v)
	}
	if a.OfferedPackets != 120 {
		t.Errorf("offered %d, want 120", a.OfferedPackets)
	}
	if a.DroppedPackets != d.Drops() {
		t.Errorf("auditor drops %d != link drops %d", a.DroppedPackets, d.Drops())
	}
	if a.DeliveredPackets != len(*delivered) {
		t.Errorf("auditor delivered %d, callback saw %d", a.DeliveredPackets, len(*delivered))
	}
	if a.AcceptedPackets+a.DroppedPackets != a.OfferedPackets {
		t.Errorf("accepted %d + dropped %d != offered %d",
			a.AcceptedPackets, a.DroppedPackets, a.OfferedPackets)
	}
	if a.DeliveredBytes != a.AcceptedBytes {
		t.Errorf("drained run: delivered %d B != accepted %d B", a.DeliveredBytes, a.AcceptedBytes)
	}
}

func TestDualDroppedPacketsReturnToPool(t *testing.T) {
	cfg := DualConfig{BufferPackets: 5}
	s, d, _ := newDualHarness(1, 1e6, cfg)
	pool := s.PacketPool()
	for i := 0; i < 20; i++ {
		d.Enqueue(pool.NewData(1, int64(i), packet.MSS, packet.NotECT))
	}
	if d.Drops() == 0 {
		t.Fatal("no overflow drops")
	}
	if got := pool.Stats().Released; got != uint64(d.Drops()) {
		t.Errorf("pool saw %d releases, want %d (one per drop)", got, d.Drops())
	}
	s.RunUntil(5 * time.Second)
}

func TestDualOnDropTakesOwnership(t *testing.T) {
	cfg := DualConfig{BufferPackets: 5}
	s, d, _ := newDualHarness(1, 1e6, cfg)
	var seen []link.DropReason
	d.OnDrop = func(p *packet.Packet, r link.DropReason) {
		if p.Released() {
			t.Error("OnDrop received an already-released packet")
		}
		seen = append(seen, r)
	}
	pool := s.PacketPool()
	for i := 0; i < 20; i++ {
		d.Enqueue(pool.NewData(1, int64(i), packet.MSS, packet.NotECT))
	}
	if len(seen) != d.Drops() {
		t.Errorf("observer saw %d drops, counter says %d", len(seen), d.Drops())
	}
	for _, r := range seen {
		if r != link.DropOverflow {
			t.Errorf("drop reason %v, want overflow", r)
		}
	}
	if got := pool.Stats().Released; got != 0 {
		t.Errorf("pool saw %d releases despite observer owning drops", got)
	}
	s.RunUntil(5 * time.Second)
}

func TestDualSetRateBps(t *testing.T) {
	s, d, delivered := newDualHarness(1, 1e6, DualConfig{})
	if got := d.RateBps(); got != 1e6 {
		t.Fatalf("initial rate %v", got)
	}
	d.SetRateBps(2e6)
	d.Enqueue(packet.NewData(1, 0, packet.MSS, packet.NotECT))
	// 1500 B at 2 Mb/s serializes in 6 ms, not the 12 ms of the old rate.
	s.RunUntil(7 * time.Millisecond)
	if len(*delivered) != 1 {
		t.Errorf("packet not delivered at the new rate within 7 ms")
	}
}
