package core

import (
	"time"

	"pi2/internal/aqm"
	"pi2/internal/packet"
)

// Fast-forward support for PI2 and DualPI2. PI2 implements the full
// aqm.FastForwarder contract (its Enqueue/Update delegate here, so packet
// mode and fast-forward mode share one RNG discipline). DualPI2 only exposes
// control-law stepping: dual-queue epochs keep two coupled backlogs whose
// interaction (time-shifted priority, ramp marking at dequeue) has no
// closed-form fluid model here, so the ff engine leaves dualpi2 scenarios in
// packet mode and this hook exists for unit-level validation.

var _ aqm.FastForwarder = (*PI2)(nil)

// FFDecide implements aqm.FastForwarder: the Figure 9 classifier fed a
// synthetic arrival. Scalable packets consume exactly one draw ("think once
// to mark"); Classic packets consume one draw under UseMultiply and one or
// two draws (short-circuit) under the hardware form — the same draws Enqueue
// makes.
func (q2 *PI2) FFDecide(ecn packet.ECN, _, _ int) Verdict {
	if ecn.Scalable() {
		if q2.rng.Float64() < q2.ScalableProbability() {
			return aqm.Mark
		}
		return aqm.Accept
	}
	if !q2.squaredHit() {
		return aqm.Accept
	}
	if ecn == packet.ECT0 {
		return aqm.Mark
	}
	return aqm.Drop
}

// FFUpdate implements aqm.FastForwarder: one plain PI step on p′ with a
// synthetic queue-delay observation.
func (q2 *PI2) FFUpdate(qdelay time.Duration) { q2.core.Update(qdelay) }

// FFShift implements aqm.FastForwarder.
func (q2 *PI2) FFShift(delta time.Duration) { q2.rate.FFShift(delta) }

// FFTarget implements aqm.FastForwarder.
func (q2 *PI2) FFTarget() time.Duration { return q2.cfg.Target }

// FFUpdate steps DualPI2's shared control law with a synthetic queue-delay
// observation, exactly as the periodic update would for the deeper of the
// two head sojourns. DualLink deliberately does NOT implement the full
// FastForwarder interface — see the package comment above.
func (d *DualLink) FFUpdate(qdelay time.Duration) { d.core.Update(qdelay) }
