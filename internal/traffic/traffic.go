// Package traffic provides the load generators the paper's experiments use:
// long-running bulk TCP flows (with staged start/stop schedules for the
// varying-intensity tests), constant-bit-rate UDP sources, and a web-like
// short-flow workload for flow-completion-time measurements.
package traffic

import (
	"math"
	"time"

	"pi2/internal/link"
	"pi2/internal/packet"
	"pi2/internal/sim"
	"pi2/internal/stats"
	"pi2/internal/tcp"
)

// BulkFlowSpec describes a group of identical long-running TCP flows.
type BulkFlowSpec struct {
	// CC is a congestion-control name accepted by tcp.NewCC.
	CC string
	// Feedback overrides the CC's default ECN wiring ("accurate" or
	// "classic", see tcp.NewCCFeedback); "" keeps the default.
	Feedback string
	// Count is the number of flows in the group.
	Count int
	// RTT is each flow's base round-trip time.
	RTT time.Duration
	// StartAt/StopAt bound the group's activity (StopAt 0 = run forever).
	StartAt, StopAt time.Duration
	// Label tags the group in results (defaults to CC).
	Label string
	// SACK enables selective-acknowledgment recovery on every flow.
	SACK bool
	// AckEvery sets the delayed/stretch-ACK factor (0/1 = every segment).
	AckEvery int
}

// UDPSpec describes one constant-bit-rate unresponsive source.
type UDPSpec struct {
	// RateBps is the send rate in bits/s.
	RateBps float64
	// PacketLen is the wire length per packet (default 1500 B).
	PacketLen int
	// StartAt/StopAt bound activity (StopAt 0 = run forever).
	StartAt, StopAt time.Duration
}

// UDPSource emits CBR packets into the bottleneck and counts both what it
// sent and what arrived, so overload experiments can report loss.
type UDPSource struct {
	Spec     UDPSpec
	Sent     stats.RateMeter
	Received stats.RateMeter
	flowID   int
	simr     *sim.Simulator
	link     *link.Link
	pool     *packet.Pool
	timer    sim.Timer
}

// StartUDP wires a UDP source into the simulation: packets enter the link
// and delivered ones are counted via the dispatcher.
func StartUDP(s *sim.Simulator, l *link.Link, d *link.Dispatcher, flowID int, spec UDPSpec) *UDPSource {
	if spec.PacketLen == 0 {
		spec.PacketLen = packet.FullLen
	}
	u := &UDPSource{Spec: spec, flowID: flowID, simr: s, link: l, pool: s.PacketPool()}
	d.Register(flowID, func(p *packet.Packet) {
		u.Received.Add(p.WireLen)
		u.pool.Release(p) // UDP sink: terminal owner of delivered packets
	})
	interval := time.Duration(float64(spec.PacketLen*8) / spec.RateBps * float64(time.Second))
	s.At(spec.StartAt, func() {
		u.ResetStats(s.Now())
		u.timer = s.Every(interval, u.emit)
		u.emit()
	})
	if spec.StopAt > spec.StartAt {
		s.At(spec.StopAt, func() { u.timer.Stop() })
	}
	return u
}

func (u *UDPSource) emit() {
	p := u.pool.Get()
	p.FlowID = u.flowID
	p.WireLen = u.Spec.PacketLen
	p.ECN = packet.NotECT
	u.Sent.Add(p.WireLen)
	u.link.Enqueue(p)
}

// ResetStats restarts both meters — the runner calls this at the warm-up
// boundary so delivered/lost counts cover the measurement window only.
func (u *UDPSource) ResetStats(now time.Duration) {
	u.Sent.Reset(now)
	u.Received.Reset(now)
}

// BulkGroup is a group of running bulk flows sharing a spec.
type BulkGroup struct {
	Spec  BulkFlowSpec
	Flows []*tcp.Endpoint
}

// Goodput returns the group's aggregate goodput in bits/s at the given time.
func (g *BulkGroup) Goodput(now time.Duration) float64 {
	var sum float64
	for _, f := range g.Flows {
		sum += f.Goodput.RateBps(now)
	}
	return sum
}

// StartBulk creates, registers and schedules a group of bulk TCP flows.
// Flow IDs are assigned sequentially from firstID; the next free ID is
// returned.
func StartBulk(s *sim.Simulator, l *link.Link, d *link.Dispatcher, firstID int, spec BulkFlowSpec) (*BulkGroup, int) {
	g := &BulkGroup{Spec: spec, Flows: make([]*tcp.Endpoint, 0, spec.Count)}
	id := firstID
	for i := 0; i < spec.Count; i++ {
		cc, mode, err := tcp.NewCCFeedback(spec.CC, spec.Feedback)
		if err != nil {
			panic(err)
		}
		ep := tcp.New(s, l, tcp.Config{
			ID:       id,
			CC:       cc,
			ECN:      mode,
			BaseRTT:  spec.RTT,
			SACK:     spec.SACK,
			AckEvery: spec.AckEvery,
		})
		d.Register(id, ep.DeliverData)
		s.At(spec.StartAt, ep.Start)
		if spec.StopAt > spec.StartAt {
			s.At(spec.StopAt, ep.Stop)
		}
		g.Flows = append(g.Flows, ep)
		id++
	}
	return g, id
}

// StagedCounts builds the paper's varying-intensity schedule: counts[i]
// flows of the given CC are active during stage i, each stage lasting
// stageLen. Flows persist across stages when the count stays ≥ their rank,
// exactly like starting/stopping iperf instances. Used by Figures 6 and 13
// (10:30:50:30:10 over 50 s stages).
func StagedCounts(s *sim.Simulator, l *link.Link, d *link.Dispatcher, firstID int,
	cc string, rtt time.Duration, counts []int, stageLen time.Duration) ([]*tcp.Endpoint, int) {

	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	id := firstID
	var eps []*tcp.Endpoint
	// Flow with rank r (0-based) is active during every stage with
	// count > r. Because the paper's schedules are unimodal, each rank is
	// active over one contiguous interval [firstStage, lastStage].
	for r := 0; r < maxCount; r++ {
		first, last := -1, -1
		for i, c := range counts {
			if c > r {
				if first < 0 {
					first = i
				}
				last = i
			}
		}
		if first < 0 {
			continue
		}
		ccImpl, mode, err := tcp.NewCC(cc)
		if err != nil {
			panic(err)
		}
		ep := tcp.New(s, l, tcp.Config{ID: id, CC: ccImpl, ECN: mode, BaseRTT: rtt})
		d.Register(id, ep.DeliverData)
		s.At(time.Duration(first)*stageLen, ep.Start)
		stop := time.Duration(last+1) * stageLen
		if int(last) != len(counts)-1 {
			s.At(stop, ep.Stop)
		}
		eps = append(eps, ep)
		id++
	}
	return eps, id
}

// WebSpec describes a web-like short-flow workload: flows arrive as a
// Poisson process with bounded-Pareto sizes (heavy-tailed, like web
// responses).
type WebSpec struct {
	// ArrivalRate is flows per second.
	ArrivalRate float64
	// MeanSegs sets the mean flow size in segments (bounded Pareto with
	// shape 1.2 between MinSegs and MaxSegs, scaled to this mean).
	MinSegs, MaxSegs int64
	// Shape is the Pareto shape parameter (default 1.2).
	Shape float64
	// CC and RTT apply to every generated flow.
	CC  string
	RTT time.Duration
	// StopAt ends new arrivals.
	StopAt time.Duration
}

// WebWorkload generates short flows and records their completion times.
type WebWorkload struct {
	Spec WebSpec
	// FCT collects flow completion times in seconds. StartWeb installs an
	// exact stats.Sample; the runner may swap in a shared constant-memory
	// collector (before any flow completes) for heavy-scale runs.
	FCT stats.Quantiler
	// Started and Finished count generated/completed flows.
	Started, Finished int

	s      *sim.Simulator
	l      *link.Link
	d      *link.Dispatcher
	nextID *int
}

// StartWeb launches a web-like workload. nextID is advanced for every
// generated flow so callers can keep allocating unique IDs.
func StartWeb(s *sim.Simulator, l *link.Link, d *link.Dispatcher, nextID *int, spec WebSpec) *WebWorkload {
	if spec.Shape == 0 {
		spec.Shape = 1.2
	}
	if spec.MinSegs == 0 {
		spec.MinSegs = 2
	}
	if spec.MaxSegs == 0 {
		spec.MaxSegs = 2000
	}
	w := &WebWorkload{Spec: spec, FCT: &stats.Sample{}, s: s, l: l, d: d, nextID: nextID}
	rng := s.RNG()
	var arrive func()
	arrive = func() {
		if spec.StopAt > 0 && s.Now() >= spec.StopAt {
			return
		}
		w.launch(rng.Float64())
		gap := time.Duration(expRand(rng.Float64(), spec.ArrivalRate) * float64(time.Second))
		s.After(gap, arrive)
	}
	s.After(0, arrive)
	return w
}

func (w *WebWorkload) launch(u float64) {
	size := boundedPareto(u, w.Spec.Shape, float64(w.Spec.MinSegs), float64(w.Spec.MaxSegs))
	cc, mode, err := tcp.NewCC(w.Spec.CC)
	if err != nil {
		panic(err)
	}
	id := *w.nextID
	*w.nextID = id + 1
	started := w.s.Now()
	ep := tcp.New(w.s, w.l, tcp.Config{
		ID:       id,
		CC:       cc,
		ECN:      mode,
		BaseRTT:  w.Spec.RTT,
		FlowSegs: int64(size),
		OnComplete: func(now time.Duration) {
			w.Finished++
			w.FCT.Add((now - started).Seconds())
			w.d.Unregister(id)
		},
	})
	w.d.Register(id, ep.DeliverData)
	w.Started++
	ep.Start()
}

// expRand maps a uniform u to an exponential inter-arrival with rate λ.
func expRand(u, lambda float64) float64 {
	if u <= 0 {
		u = 1e-12
	}
	return -math.Log(u) / lambda
}

// boundedPareto maps a uniform u to a bounded Pareto sample in [lo, hi].
func boundedPareto(u, shape, lo, hi float64) float64 {
	if u >= 1 {
		u = 1 - 1e-12
	}
	la := math.Pow(lo, shape)
	ha := math.Pow(hi, shape)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/shape)
}
