package traffic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"pi2/internal/link"
	"pi2/internal/sim"
)

func newNet(seed int64, rateBps float64) (*sim.Simulator, *link.Link, *link.Dispatcher) {
	s := sim.New(seed)
	d := link.NewDispatcher()
	l := link.New(s, link.Config{RateBps: rateBps}, d.Deliver)
	return s, l, d
}

func TestUDPSourceRate(t *testing.T) {
	s, l, d := newNet(1, 100e6)
	u := StartUDP(s, l, d, 1, UDPSpec{RateBps: 6e6})
	s.RunUntil(10 * time.Second)
	got := u.Received.RateBps(s.Now())
	if math.Abs(got-6e6)/6e6 > 0.02 {
		t.Errorf("UDP rate = %.0f, want ~6e6", got)
	}
}

func TestUDPStartStop(t *testing.T) {
	s, l, d := newNet(1, 100e6)
	u := StartUDP(s, l, d, 1, UDPSpec{
		RateBps: 6e6,
		StartAt: 2 * time.Second,
		StopAt:  4 * time.Second,
	})
	s.RunUntil(time.Second)
	if u.Received.Bytes() != 0 {
		t.Error("UDP sent before StartAt")
	}
	s.RunUntil(10 * time.Second)
	// Received ~2 s worth of 6 Mb/s = 1.5 MB.
	got := float64(u.Received.Bytes())
	want := 6e6 / 8 * 2
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("bytes = %.0f, want ~%.0f (2 s of traffic)", got, want)
	}
}

func TestStartBulkAssignsIDs(t *testing.T) {
	s, l, d := newNet(1, 10e6)
	g, next := StartBulk(s, l, d, 5, BulkFlowSpec{CC: "reno", Count: 3, RTT: 10 * time.Millisecond})
	if next != 8 {
		t.Errorf("next id = %d, want 8", next)
	}
	if len(g.Flows) != 3 {
		t.Fatalf("flows = %d", len(g.Flows))
	}
	for i, f := range g.Flows {
		if f.ID() != 5+i {
			t.Errorf("flow %d has id %d", i, f.ID())
		}
	}
	s.RunUntil(2 * time.Second)
	if g.Goodput(s.Now()) == 0 {
		t.Error("no goodput")
	}
}

func TestStartBulkUnknownCCPanics(t *testing.T) {
	s, l, d := newNet(1, 10e6)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown CC did not panic")
		}
	}()
	StartBulk(s, l, d, 1, BulkFlowSpec{CC: "nope", Count: 1})
}

func TestStagedCountsSchedule(t *testing.T) {
	// A small buffer keeps tail-drop queuing delay bounded so late-stage
	// flows get ACKs promptly (no AQM in this unit test).
	s := sim.New(1)
	d := link.NewDispatcher()
	l := link.New(s, link.Config{RateBps: 100e6, BufferPackets: 100}, d.Deliver)
	counts := []int{2, 5, 3}
	stage := time.Second
	eps, next := StagedCounts(s, l, d, 1, "reno", 10*time.Millisecond, counts, stage)
	if len(eps) != 5 || next != 6 {
		t.Fatalf("eps=%d next=%d, want 5/6", len(eps), next)
	}
	// Mid-stage checks: count flows that have sent anything and not stopped.
	s.RunUntil(stage / 2)
	sent := 0
	for _, e := range eps {
		if e.Goodput.Bytes() > 0 || !e.Stopped() && e.State().Cwnd > 0 && e.RTTSamples.N() > 0 {
			sent++
		}
	}
	if sent != 2 {
		t.Errorf("stage 0 active flows = %d, want 2", sent)
	}
	s.RunUntil(stage + stage/2)
	sent = 0
	for _, e := range eps {
		if e.RTTSamples.N() > 0 && !e.Stopped() {
			sent++
		}
	}
	if sent != 5 {
		t.Errorf("stage 1 active flows = %d, want 5", sent)
	}
	s.RunUntil(2*stage + stage/2)
	stopped := 0
	for _, e := range eps {
		if e.Stopped() {
			stopped++
		}
	}
	if stopped != 2 {
		t.Errorf("stage 2 stopped flows = %d, want 2 (5 -> 3)", stopped)
	}
}

func TestStagedUnimodalRanks(t *testing.T) {
	// Rank 0 must persist across the whole 10:30:50:30:10 schedule; the
	// highest ranks exist only during the peak stage.
	s := sim.New(1)
	d := link.NewDispatcher()
	l := link.New(s, link.Config{RateBps: 100e6, BufferPackets: 100}, d.Deliver)
	counts := []int{10, 30, 50, 30, 10}
	eps, _ := StagedCounts(s, l, d, 1, "reno", 10*time.Millisecond, counts, time.Second)
	if len(eps) != 50 {
		t.Fatalf("eps = %d, want 50", len(eps))
	}
	s.RunUntil(5 * time.Second)
	// The first 10 ranks never stop (active in the final stage).
	for i := 0; i < 10; i++ {
		if eps[i].Stopped() {
			t.Errorf("rank %d stopped but is active in every stage", i)
		}
	}
	for i := 10; i < 50; i++ {
		if !eps[i].Stopped() {
			t.Errorf("rank %d still active after its last stage", i)
		}
	}
}

func TestBoundedParetoRange(t *testing.T) {
	f := func(raw uint32) bool {
		u := float64(raw) / float64(math.MaxUint32)
		x := boundedPareto(u, 1.2, 2, 2000)
		return x >= 2-1e-9 && x <= 2000+1e-9
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBoundedParetoHeavyTail(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var small, large int
	for i := 0; i < 100000; i++ {
		x := boundedPareto(rng.Float64(), 1.2, 2, 2000)
		if x < 10 {
			small++
		}
		if x > 500 {
			large++
		}
	}
	if small < 60000 {
		t.Errorf("small flows = %d of 100000, want the heavy-tail bulk", small)
	}
	if large == 0 {
		t.Error("no large flows: tail missing")
	}
}

func TestExpRandMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const lambda = 20.0
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += expRand(rng.Float64(), lambda)
	}
	mean := sum / n
	if math.Abs(mean-1/lambda)/(1/lambda) > 0.05 {
		t.Errorf("mean gap = %v, want %v", mean, 1/lambda)
	}
}

func TestWebWorkloadCompletesFlows(t *testing.T) {
	s, l, d := newNet(4, 100e6)
	nextID := 1
	w := StartWeb(s, l, d, &nextID, WebSpec{
		ArrivalRate: 50,
		CC:          "reno",
		RTT:         10 * time.Millisecond,
		StopAt:      5 * time.Second,
	})
	s.RunUntil(20 * time.Second)
	if w.Started < 100 {
		t.Errorf("started %d flows, want ~250", w.Started)
	}
	if w.Finished < w.Started*9/10 {
		t.Errorf("finished %d of %d", w.Finished, w.Started)
	}
	if w.FCT.N() != w.Finished {
		t.Error("FCT sample count mismatch")
	}
	if w.FCT.Mean() <= 0 {
		t.Error("nonpositive mean FCT")
	}
	if nextID != w.Started+1 {
		t.Errorf("nextID %d after %d flows", nextID, w.Started)
	}
}
