// Package golden is the repository's result-regression harness. It runs
// every registered experiment at a reduced but fully deterministic scale,
// reduces each campaign cell to its scalar metric fingerprint
// (campaign.RunRecord.Metrics), and compares the capture against checked-in
// golden JSON under testdata/golden/ with per-metric tolerance bands.
//
// The goldens pin the paper-facing numbers: a refactor that accidentally
// changes PI2's control law, the coupling, or the traffic model shifts queue
// delay, drop/mark totals or goodput shares far outside the bands and the
// failure names the experiment, cell and metric that moved. Runs are
// bit-identical per (seed, time scale), so the bands exist only to absorb
// cross-platform floating-point wobble — they are deliberately far tighter
// than any real behavioural change.
//
// Three consumers share this package: `go test ./internal/golden` (tier-1),
// `pi2bench -check` / `-update-golden`, and the CI golden-check job.
package golden

import (
	"bytes"
	"crypto/sha256"
	"embed"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pi2/internal/campaign"

	// Register every experiment with the campaign registry.
	_ "pi2/internal/experiments"
)

// Capture scale: every fingerprint — checked in or recaptured — uses the
// Quick grids with durations divided by TimeDiv and base seed Seed. The
// constants are part of the golden format; changing either invalidates
// every checked-in file.
const (
	// TimeDiv divides experiment durations (instead of Quick's fixed 5x):
	// deep enough that the whole registry replays in seconds, shallow
	// enough that flows leave slow-start and the AQMs reach steady state.
	TimeDiv = 20
	// Seed is the campaign base seed for every capture.
	Seed int64 = 1
)

// DefaultDir is where -update-golden writes, relative to the repository
// root. Reads prefer the embedded copy so pi2bench -check works from any
// working directory.
const DefaultDir = "internal/golden/testdata/golden"

//go:embed all:testdata/golden
var embedded embed.FS

// Run is one campaign cell's fingerprint: its identity and scalar metrics.
type Run struct {
	Name    string             `json:"name"`
	Index   int                `json:"index"`
	Seed    int64              `json:"seed"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Fingerprint is one experiment's golden record.
type Fingerprint struct {
	Experiment string `json:"experiment"`
	TimeDiv    int    `json:"time_div"`
	Seed       int64  `json:"seed"`
	// OutputSHA256 hashes the printed output for analytic experiments
	// that run no simulator cells (table1, fig4, fig5, fig7). Simulation
	// experiments are fingerprinted by Runs instead, so harmless
	// formatting changes don't invalidate them.
	OutputSHA256 string `json:"output_sha256,omitempty"`
	Runs         []Run  `json:"runs,omitempty"`
}

// Exec carries the execution-side knobs a capture can route through. The
// zero value is a plain serial in-process run; none of the fields can
// change a fingerprint — that invariance is precisely what the fleet,
// chaos and resume CI jobs check by comparing captures across Execs.
type Exec struct {
	// Jobs is the in-process worker count (0 = serial).
	Jobs int
	// Dispatch routes campaigns through a fleet of worker processes.
	Dispatch campaign.Dispatcher
	// Journal receives every final record; Resume replays a previous
	// journal, skipping its completed cells.
	Journal campaign.JournalSink
	Resume  campaign.ResumeSet
}

// Capture runs the named experiment at golden scale and reduces it to a
// fingerprint. The Exec knobs affect only wall-clock time and fault
// tolerance, never the result (seeds derive from (Seed, cell index);
// records are sorted by identity). A cell that fails — including an
// invariant-auditor violation, which the runner raises as a panic carrying
// the full report — turns into an error naming the cell.
func Capture(name string, ex Exec) (*Fingerprint, error) {
	exp, ok := campaign.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("golden: unknown experiment %q", name)
	}
	col := &campaign.Collector{}
	ctx := &campaign.Context{
		Quick:     true,
		TimeDiv:   TimeDiv,
		Seed:      Seed,
		Jobs:      ex.Jobs,
		Collector: col,
		Dispatch:  ex.Dispatch,
		Journal:   ex.Journal,
		Resume:    ex.Resume,
	}
	var buf bytes.Buffer
	if err := exp.Run(ctx, &buf); err != nil {
		return nil, fmt.Errorf("golden: %s: %w", name, err)
	}

	recs := col.Records()
	// The collector sees records in completion order, which depends on
	// scheduling; (Name, Index) identifies a cell uniquely, so sorting by
	// it makes the fingerprint independent of worker count.
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Name != recs[j].Name {
			return recs[i].Name < recs[j].Name
		}
		return recs[i].Index < recs[j].Index
	})

	fp := &Fingerprint{Experiment: name, TimeDiv: TimeDiv, Seed: Seed}
	for _, rec := range recs {
		if rec.Err != "" {
			return nil, fmt.Errorf("golden: %s: cell %s[%d] failed:\n%s",
				name, rec.Name, rec.Index, rec.Err)
		}
		fp.Runs = append(fp.Runs, Run{
			Name:    rec.Name,
			Index:   rec.Index,
			Seed:    rec.Seed,
			Metrics: finiteOnly(rec.Metrics),
		})
	}
	if len(fp.Runs) == 0 {
		sum := sha256.Sum256(buf.Bytes())
		fp.OutputSHA256 = hex.EncodeToString(sum[:])
	}
	return fp, nil
}

// finiteOnly copies m without NaN/Inf entries — encoding/json rejects them,
// and a non-finite metric (e.g. a ratio whose denominator starved at golden
// scale) carries no regression signal anyway. The reduction is
// deterministic, so the same keys drop on every capture.
func finiteOnly(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			out[k] = v
		}
	}
	return out
}

// Tolerance is a per-metric acceptance band: a comparison passes when
// |got-want| <= Abs + Rel*|want|.
type Tolerance struct {
	Abs float64 `json:"abs"`
	Rel float64 `json:"rel"`
}

// ToleranceFor maps a metric name to its band. Counts get a few units of
// slack; probabilities, shares and utilizations get small absolute bands
// (their magnitudes are bounded); everything else gets 2% relative plus a
// vanishing absolute term for near-zero values.
func ToleranceFor(metric string) Tolerance {
	switch {
	case metric == "events" || metric == "fct_n" ||
		strings.HasSuffix(metric, "_retx"):
		return Tolerance{Abs: 4, Rel: 0.02}
	case strings.HasPrefix(metric, "drops_") || metric == "marks":
		return Tolerance{Abs: 2, Rel: 0.05}
	case strings.HasPrefix(metric, "prob_"):
		return Tolerance{Abs: 2e-4, Rel: 0.02}
	case metric == "utilization" || metric == "util" || metric == "util_mean":
		return Tolerance{Abs: 0.01}
	case metric == "jain" || strings.HasSuffix(metric, "_share") ||
		strings.HasSuffix(metric, "_loss_ratio"):
		return Tolerance{Abs: 0.02}
	case strings.HasSuffix(metric, "_ms"):
		return Tolerance{Abs: 0.05, Rel: 0.02}
	default:
		return Tolerance{Abs: 1e-9, Rel: 0.02}
	}
}

// Within reports whether got is inside the band around want.
func (t Tolerance) Within(want, got float64) bool {
	return math.Abs(got-want) <= t.Abs+t.Rel*math.Abs(want)
}

// Mismatch is one comparison failure, locating the exact run and metric
// that moved.
type Mismatch struct {
	Run    string  `json:"run"`
	Metric string  `json:"metric"`
	Want   float64 `json:"want"`
	Got    float64 `json:"got"`
	// Detail describes structural mismatches (missing run, missing
	// metric, hash change) where Want/Got don't apply.
	Detail string `json:"detail,omitempty"`
}

func (m Mismatch) String() string {
	if m.Detail != "" {
		return fmt.Sprintf("%s: %s: %s", m.Run, m.Metric, m.Detail)
	}
	tol := ToleranceFor(m.Metric)
	return fmt.Sprintf("%s: %s = %.6g, want %.6g ± (%g + %g·|want|)",
		m.Run, m.Metric, m.Got, m.Want, tol.Abs, tol.Rel)
}

// Compare checks a fresh capture against the golden baseline and returns
// every metric outside its tolerance band (nil when the capture passes).
func Compare(want, got *Fingerprint) []Mismatch {
	var out []Mismatch
	bad := func(run, metric string, w, g float64, detail string) {
		out = append(out, Mismatch{Run: run, Metric: metric, Want: w, Got: g, Detail: detail})
	}
	id := want.Experiment
	if want.TimeDiv != got.TimeDiv || want.Seed != got.Seed {
		bad(id, "scale", 0, 0, fmt.Sprintf(
			"golden captured at timediv=%d seed=%d, got timediv=%d seed=%d",
			want.TimeDiv, want.Seed, got.TimeDiv, got.Seed))
		return out
	}
	if want.OutputSHA256 != "" || got.OutputSHA256 != "" {
		if want.OutputSHA256 != got.OutputSHA256 {
			bad(id, "output_sha256", 0, 0, fmt.Sprintf(
				"printed output changed: want %.12s…, got %.12s…",
				want.OutputSHA256, got.OutputSHA256))
		}
	}
	gotByID := make(map[string]Run, len(got.Runs))
	for _, r := range got.Runs {
		gotByID[runID(r)] = r
	}
	wantIDs := make(map[string]bool, len(want.Runs))
	for _, w := range want.Runs {
		wid := runID(w)
		wantIDs[wid] = true
		g, ok := gotByID[wid]
		if !ok {
			bad(wid, "run", 0, 0, "cell missing from capture")
			continue
		}
		if g.Seed != w.Seed {
			bad(wid, "seed", float64(w.Seed), float64(g.Seed),
				"seed derivation changed")
		}
		keys := make([]string, 0, len(w.Metrics))
		for k := range w.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			gv, ok := g.Metrics[k]
			if !ok {
				bad(wid, k, w.Metrics[k], 0, "metric missing from capture")
				continue
			}
			if !ToleranceFor(k).Within(w.Metrics[k], gv) {
				bad(wid, k, w.Metrics[k], gv, "")
			}
		}
		for k := range g.Metrics {
			if _, ok := w.Metrics[k]; !ok {
				bad(wid, k, 0, g.Metrics[k],
					"metric not in golden (regenerate with -update-golden)")
			}
		}
	}
	for _, g := range got.Runs {
		if !wantIDs[runID(g)] {
			bad(runID(g), "run", 0, 0,
				"cell not in golden (regenerate with -update-golden)")
		}
	}
	return out
}

func runID(r Run) string { return fmt.Sprintf("%s[%d]", r.Name, r.Index) }

// Baseline loads the checked-in fingerprint for an experiment. With dir ==
// "" it reads the copy embedded at build time; otherwise it reads
// dir/<name>.json from disk (for freshly regenerated goldens).
func Baseline(name, dir string) (*Fingerprint, error) {
	var (
		raw []byte
		err error
	)
	if dir == "" {
		raw, err = embedded.ReadFile("testdata/golden/" + name + ".json")
	} else {
		raw, err = os.ReadFile(filepath.Join(dir, name+".json"))
	}
	if err != nil {
		return nil, fmt.Errorf("golden: no baseline for %q (run pi2bench -update-golden): %w", name, err)
	}
	fp := &Fingerprint{}
	if err := json.Unmarshal(raw, fp); err != nil {
		return nil, fmt.Errorf("golden: corrupt baseline for %q: %w", name, err)
	}
	return fp, nil
}

// Save writes a fingerprint to dir/<name>.json, creating dir if needed.
func Save(dir string, fp *Fingerprint) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(fp, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	return os.WriteFile(filepath.Join(dir, fp.Experiment+".json"), raw, 0o644)
}

// Check captures one experiment at golden scale and compares it against its
// baseline. It returns the mismatches (empty slice on success) — a non-nil
// error means the capture or baseline load itself failed.
func Check(name string, dir string, ex Exec) ([]Mismatch, error) {
	want, err := Baseline(name, dir)
	if err != nil {
		return nil, err
	}
	got, err := Capture(name, ex)
	if err != nil {
		return nil, err
	}
	return Compare(want, got), nil
}
