package golden

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"pi2/internal/aqm"
	"pi2/internal/campaign"
	"pi2/internal/core"
	"pi2/internal/experiments"
	"pi2/internal/traffic"
)

// TestRegistryAgainstGoldens is the tier-1 regression gate: every experiment
// the CLI's "all" runs must have a checked-in fingerprint, and recapturing
// it at golden scale must land inside every tolerance band. (fig15–fig18
// and fig19–fig20 are printed views of "sweep" and "combos", so "all"
// already fingerprints every simulation cell in the registry.)
func TestRegistryAgainstGoldens(t *testing.T) {
	for _, name := range campaign.AllNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			mismatches, err := Check(name, "", Exec{})
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range mismatches {
				t.Error(m)
			}
		})
	}
}

// TestCaptureDeterministicAcrossJobs pins the campaign engine's core
// guarantee at the fingerprint level: a capture is bit-identical at any
// worker count. Exact equality, no tolerance bands.
func TestCaptureDeterministicAcrossJobs(t *testing.T) {
	for _, name := range []string{"sweep", "dualq"} {
		one, err := Capture(name, Exec{Jobs: 1})
		if err != nil {
			t.Fatalf("%s jobs=1: %v", name, err)
		}
		eight, err := Capture(name, Exec{Jobs: 8})
		if err != nil {
			t.Fatalf("%s jobs=8: %v", name, err)
		}
		if !reflect.DeepEqual(one, eight) {
			for _, m := range Compare(one, eight) {
				t.Errorf("%s: jobs=1 vs jobs=8: %s", name, m)
			}
			if len(Compare(one, eight)) == 0 {
				t.Errorf("%s: fingerprints differ across job counts", name)
			}
		}
	}
}

// TestCompareFlagsPerturbedMetric drives the tolerance machinery directly:
// a baseline compared to itself is clean, and nudging one metric past its
// band produces a mismatch naming exactly that run and metric.
func TestCompareFlagsPerturbedMetric(t *testing.T) {
	base, err := Baseline("fig6", "")
	if err != nil {
		t.Fatal(err)
	}
	if ms := Compare(base, base); len(ms) != 0 {
		t.Fatalf("baseline vs itself: unexpected mismatches %v", ms)
	}

	pert := &Fingerprint{
		Experiment:   base.Experiment,
		TimeDiv:      base.TimeDiv,
		Seed:         base.Seed,
		OutputSHA256: base.OutputSHA256,
	}
	var run, metric string
	for _, r := range base.Runs {
		cp := Run{Name: r.Name, Index: r.Index, Seed: r.Seed,
			Metrics: make(map[string]float64, len(r.Metrics))}
		for k, v := range r.Metrics {
			cp.Metrics[k] = v
		}
		if metric == "" {
			if v, ok := cp.Metrics["sojourn_mean_ms"]; ok && v > 1 {
				run, metric = runID(r), "sojourn_mean_ms"
				cp.Metrics[metric] = v * 1.10
			}
		}
		pert.Runs = append(pert.Runs, cp)
	}
	if metric == "" {
		t.Fatal("fig6 golden has no run with sojourn_mean_ms > 1ms to perturb")
	}
	ms := Compare(base, pert)
	if len(ms) != 1 || ms[0].Run != run || ms[0].Metric != metric {
		t.Fatalf("perturbing %s of %s: got mismatches %v, want exactly that one", metric, run, ms)
	}
}

// TestAlphaPerturbationShiftsFingerprint is the sensitivity check behind
// the whole harness: doubling PI2's α gain on an otherwise identical run
// (same seed, same traffic) must push metrics out of their golden bands.
// If this fails, the bands are too loose to catch a control-law regression.
func TestAlphaPerturbationShiftsFingerprint(t *testing.T) {
	run := func(alpha float64) map[string]float64 {
		res := experiments.Run(experiments.Scenario{
			Seed:        42,
			LinkRateBps: 40e6,
			NewAQM: func(rng *rand.Rand) aqm.AQM {
				return core.New(core.Config{
					Target: 20 * time.Millisecond,
					Alpha:  alpha,
				}, rng)
			},
			Bulk: []traffic.BulkFlowSpec{
				{CC: "cubic", Count: 2, RTT: 20 * time.Millisecond},
				{CC: "dctcp", Count: 1, RTT: 20 * time.Millisecond},
			},
			Duration: 10 * time.Second,
			WarmUp:   2 * time.Second,
		})
		return res.Metrics()
	}
	def := run(5.0 / 16)
	pert := run(2 * 5.0 / 16)
	var moved []string
	for k, want := range def {
		if got, ok := pert[k]; ok && !ToleranceFor(k).Within(want, got) {
			moved = append(moved, k)
		}
	}
	if len(moved) == 0 {
		t.Fatalf("doubling alpha moved no metric outside its band; defaults %v vs perturbed %v", def, pert)
	}
	t.Logf("alpha perturbation flagged by %d metric(s): %v", len(moved), moved)
}
