package aqm

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"pi2/internal/packet"
)

// fakeQueue is a controllable QueueInfo for unit tests.
type fakeQueue struct {
	bytes   int
	pkts    int
	sojourn time.Duration
	rate    float64
}

func (f *fakeQueue) BacklogBytes() int                       { return f.bytes }
func (f *fakeQueue) BacklogPackets() int                     { return f.pkts }
func (f *fakeQueue) HeadSojourn(time.Duration) time.Duration { return f.sojourn }
func (f *fakeQueue) CapacityBps() float64                    { return f.rate }

func TestPICoreUpdateMatchesEquation4(t *testing.T) {
	c := PICore{Alpha: 0.3125, Beta: 3.125, Target: 20 * time.Millisecond}
	// First update from τ = 30 ms (prev 0): Δp = α(0.03−0.02) + β(0.03−0).
	got := c.Update(30 * time.Millisecond)
	want := 0.3125*0.01 + 3.125*0.03
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("p after first update = %v, want %v", got, want)
	}
	// Second update from τ = 25 ms: Δp = α(0.005) + β(−0.005).
	got = c.Update(25 * time.Millisecond)
	want += 0.3125*0.005 + 3.125*(-0.005)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("p after second update = %v, want %v", got, want)
	}
}

func TestPICoreNeverNegative(t *testing.T) {
	c := PICore{Alpha: 0.125, Beta: 1.25, Target: 20 * time.Millisecond}
	for i := 0; i < 100; i++ {
		c.Update(0) // queue empty, error negative every time
	}
	if c.P() != 0 {
		t.Errorf("p = %v, want clamped to 0", c.P())
	}
}

func TestPICoreClampsAtPMax(t *testing.T) {
	c := PICore{Alpha: 10, Beta: 100, Target: time.Millisecond, PMax: 0.5}
	for i := 0; i < 100; i++ {
		c.Update(time.Second)
	}
	if c.P() != 0.5 {
		t.Errorf("p = %v, want clamped to PMax 0.5", c.P())
	}
}

func TestPICoreDefaultPMaxIsOne(t *testing.T) {
	c := PICore{Alpha: 10, Beta: 100, Target: time.Millisecond}
	for i := 0; i < 100; i++ {
		c.Update(time.Second)
	}
	if c.P() != 1 {
		t.Errorf("p = %v, want 1", c.P())
	}
}

func TestPICoreSetP(t *testing.T) {
	c := PICore{PMax: 0.25}
	c.SetP(0.9)
	if c.P() != 0.25 {
		t.Errorf("SetP did not clamp: %v", c.P())
	}
	c.SetP(-1)
	if c.P() != 0 {
		t.Errorf("SetP did not clamp negative: %v", c.P())
	}
}

func TestDepartRateEstimator(t *testing.T) {
	var d DepartRateEstimator
	if _, ok := d.RateBps(); ok {
		t.Fatal("fresh estimator claims a rate")
	}
	// Below threshold: no cycle starts.
	d.OnDequeue(1500, 1000, 0)
	if _, ok := d.RateBps(); ok {
		t.Fatal("rate measured without a full cycle")
	}
	// Backlog above threshold starts a cycle; 16 KiB over 13.1 ms at
	// 10 Mb/s.
	now := time.Duration(0)
	d.OnDequeue(1500, DefaultDQThreshold+1, now)
	perPkt := time.Duration(float64(1500*8) / 10e6 * float64(time.Second))
	for i := 0; i < 12; i++ {
		now += perPkt
		d.OnDequeue(1500, DefaultDQThreshold, now)
	}
	r, ok := d.RateBps()
	if !ok {
		t.Fatal("no rate after a full cycle")
	}
	if math.Abs(r-10e6)/10e6 > 0.05 {
		t.Errorf("rate = %.0f, want ~10e6", r)
	}
}

func TestDepartRateEstimatorEWMA(t *testing.T) {
	var d DepartRateEstimator
	cycle := func(rateBps float64, start time.Duration) time.Duration {
		now := start
		d.OnDequeue(1500, DefaultDQThreshold+1, now)
		perPkt := time.Duration(float64(1500*8) / rateBps * float64(time.Second))
		for i := 0; i < 12; i++ {
			now += perPkt
			d.OnDequeue(1500, DefaultDQThreshold, now)
		}
		return now
	}
	now := cycle(10e6, 0)
	cycle(20e6, now+time.Millisecond)
	r, _ := d.RateBps()
	// EWMA 1/2 of 10 and 20 Mb/s ≈ 15 Mb/s.
	if r < 13e6 || r > 17e6 {
		t.Errorf("EWMA rate = %.0f, want ~15e6", r)
	}
}

func TestEstimateDelayVariants(t *testing.T) {
	q := &fakeQueue{bytes: 12500, sojourn: 7 * time.Millisecond, rate: 10e6}
	if got := EstimateDelay(EstimateBySojourn, q, nil, 0); got != 7*time.Millisecond {
		t.Errorf("sojourn = %v", got)
	}
	// 12500 B × 8 / 10 Mb/s = 10 ms.
	if got := EstimateDelay(EstimateByCapacity, q, nil, 0); got != 10*time.Millisecond {
		t.Errorf("capacity = %v", got)
	}
	// Rate estimator without a valid measurement ⇒ 0 (like Linux PIE
	// before its first cycle).
	var d DepartRateEstimator
	if got := EstimateDelay(EstimateByRate, q, &d, 0); got != 0 {
		t.Errorf("rate without measurement = %v, want 0", got)
	}
	if got := EstimateDelay(EstimateByRate, q, nil, 0); got != 0 {
		t.Errorf("rate with nil estimator = %v, want 0", got)
	}
}

func TestEstimateDelayZeroCapacity(t *testing.T) {
	q := &fakeQueue{bytes: 1000, rate: 0}
	if got := EstimateDelay(EstimateByCapacity, q, nil, 0); got != 0 {
		t.Errorf("zero-capacity delay = %v, want 0", got)
	}
}

func TestPIDropsAtControlledProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pi := NewPI(PIConfig{Target: 20 * time.Millisecond, Estimator: EstimateBySojourn}, rng)
	q := &fakeQueue{sojourn: 120 * time.Millisecond, rate: 10e6}
	// Drive p up with a standing 120 ms queue.
	for i := 0; i < 200; i++ {
		pi.Update(q, time.Duration(i)*32*time.Millisecond)
	}
	p := pi.DropProbability()
	if p <= 0.05 {
		t.Fatalf("p = %v, want substantial", p)
	}
	drops := 0
	const n = 20000
	for i := 0; i < n; i++ {
		pkt := packet.NewData(1, 0, packet.MSS, packet.NotECT)
		if pi.Enqueue(pkt, q, 0) == Drop {
			drops++
		}
	}
	got := float64(drops) / n
	if math.Abs(got-p) > 0.02 {
		t.Errorf("empirical drop rate %.3f, want ~%.3f", got, p)
	}
}

func TestPIMarksECNWhenEnabled(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pi := NewPI(PIConfig{ECN: true}, rng)
	q := &fakeQueue{sojourn: 500 * time.Millisecond}
	for i := 0; i < 500; i++ {
		pi.Update(q, 0)
	}
	sawMark := false
	for i := 0; i < 100; i++ {
		pkt := packet.NewData(1, 0, packet.MSS, packet.ECT0)
		switch pi.Enqueue(pkt, q, 0) {
		case Drop:
			t.Fatal("dropped an ECN-capable packet with ECN enabled")
		case Mark:
			sawMark = true
		}
	}
	if !sawMark {
		t.Error("never marked despite high p")
	}
}

func TestPIDefaults(t *testing.T) {
	pi := NewPI(PIConfig{}, rand.New(rand.NewSource(1)))
	if pi.cfg.Alpha != 0.125 || pi.cfg.Beta != 1.25 {
		t.Errorf("default gains = %v/%v", pi.cfg.Alpha, pi.cfg.Beta)
	}
	if pi.cfg.Target != 20*time.Millisecond || pi.cfg.Tupdate != 32*time.Millisecond {
		t.Errorf("default target/tupdate = %v/%v", pi.cfg.Target, pi.cfg.Tupdate)
	}
	if pi.UpdateInterval() != 32*time.Millisecond {
		t.Errorf("UpdateInterval = %v", pi.UpdateInterval())
	}
	if pi.Name() != "pi" {
		t.Errorf("Name = %q", pi.Name())
	}
}

func TestTailDrop(t *testing.T) {
	td := TailDrop{}
	if td.Name() != "taildrop" {
		t.Error("name")
	}
	if td.Enqueue(nil, nil, 0) != Accept {
		t.Error("taildrop must accept everything")
	}
	if td.UpdateInterval() != 0 {
		t.Error("taildrop needs no timer")
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{
		Accept: "accept", Mark: "mark", Drop: "drop", Verdict(9): "invalid",
	} {
		if got := v.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", v, got, want)
		}
	}
}

func TestDelayEstimatorString(t *testing.T) {
	for v, want := range map[DelayEstimator]string{
		EstimateBySojourn: "sojourn", EstimateByRate: "rate",
		EstimateByCapacity: "capacity", DelayEstimator(9): "invalid",
	} {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
