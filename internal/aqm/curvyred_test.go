package aqm

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"pi2/internal/packet"
)

func TestCurvyREDBelowMinThAccepts(t *testing.T) {
	c := NewCurvyRED(CurvyREDConfig{}, rand.New(rand.NewSource(1)))
	q := &fakeQueue{sojourn: time.Millisecond}
	for i := 0; i < 200; i++ {
		for _, e := range []packet.ECN{packet.NotECT, packet.ECT1} {
			if v := c.Enqueue(packet.NewData(1, 0, packet.MSS, e), q, 0); v != Accept {
				t.Fatalf("verdict %v below MinTh", v)
			}
		}
	}
}

func TestCurvyREDCouplingSquare(t *testing.T) {
	// Mid-ramp: the Classic hit rate must approximate ramp², the
	// Scalable rate ramp (the DualQ draft's coupling with U = 2).
	cfg := CurvyREDConfig{MinTh: 10 * time.Millisecond, MaxTh: 90 * time.Millisecond, Smoothing: 1}
	c := NewCurvyRED(cfg, rand.New(rand.NewSource(1)))
	q := &fakeQueue{sojourn: 50 * time.Millisecond} // ramp = (50-10)/(90-10) = 0.5
	const n = 40000
	classicHits, scalHits := 0, 0
	for i := 0; i < n; i++ {
		if c.Enqueue(packet.NewData(1, 0, packet.MSS, packet.NotECT), q, 0) == Drop {
			classicHits++
		}
		if c.Enqueue(packet.NewData(1, 0, packet.MSS, packet.ECT1), q, 0) == Mark {
			scalHits++
		}
	}
	pc := float64(classicHits) / n
	ps := float64(scalHits) / n
	if math.Abs(pc-0.25) > 0.02 {
		t.Errorf("classic rate %.3f, want ~0.25 (ramp^2)", pc)
	}
	if math.Abs(ps-0.5) > 0.02 {
		t.Errorf("scalable rate %.3f, want ~0.5 (ramp)", ps)
	}
}

func TestCurvyREDSaturatesAtMaxTh(t *testing.T) {
	cfg := CurvyREDConfig{MinTh: time.Millisecond, MaxTh: 10 * time.Millisecond, Smoothing: 1}
	c := NewCurvyRED(cfg, rand.New(rand.NewSource(1)))
	q := &fakeQueue{sojourn: time.Second}
	c.Enqueue(packet.NewData(1, 0, packet.MSS, packet.NotECT), q, 0) // warm EWMA
	for i := 0; i < 50; i++ {
		if v := c.Enqueue(packet.NewData(1, 0, packet.MSS, packet.NotECT), q, 0); v != Drop {
			t.Fatalf("verdict %v at saturation, want drop", v)
		}
		if v := c.Enqueue(packet.NewData(1, 0, packet.MSS, packet.ECT1), q, 0); v != Mark {
			t.Fatalf("verdict %v at saturation, want mark", v)
		}
	}
}

func TestCurvyREDClassicECNMarked(t *testing.T) {
	cfg := CurvyREDConfig{MinTh: time.Millisecond, MaxTh: 2 * time.Millisecond, Smoothing: 1}
	c := NewCurvyRED(cfg, rand.New(rand.NewSource(1)))
	q := &fakeQueue{sojourn: time.Second}
	c.Enqueue(packet.NewData(1, 0, packet.MSS, packet.ECT0), q, 0)
	for i := 0; i < 50; i++ {
		if v := c.Enqueue(packet.NewData(1, 0, packet.MSS, packet.ECT0), q, 0); v == Drop {
			t.Fatal("dropped an ECT(0) packet")
		}
	}
}

func TestCurvyREDReporters(t *testing.T) {
	c := NewCurvyRED(CurvyREDConfig{MinTh: 10 * time.Millisecond, MaxTh: 90 * time.Millisecond, Smoothing: 1}, rand.New(rand.NewSource(1)))
	q := &fakeQueue{sojourn: 50 * time.Millisecond}
	c.Enqueue(packet.NewData(1, 0, packet.MSS, packet.NotECT), q, 0)
	c.Enqueue(packet.NewData(1, 0, packet.MSS, packet.ECT1), q, 0)
	if math.Abs(c.DropProbability()-0.25) > 1e-9 {
		t.Errorf("pc = %v, want 0.25", c.DropProbability())
	}
	if math.Abs(c.ScalableProbability()-0.5) > 1e-9 {
		t.Errorf("ps = %v, want 0.5", c.ScalableProbability())
	}
	if c.Name() != "curvy-red" || c.UpdateInterval() != 0 {
		t.Error("identity")
	}
}

func TestStepMarkThreshold(t *testing.T) {
	s := NewStepMark(StepMarkConfig{Threshold: 5 * time.Millisecond})
	below := &fakeQueue{sojourn: 4 * time.Millisecond}
	above := &fakeQueue{sojourn: 6 * time.Millisecond}
	if v := s.Enqueue(packet.NewData(1, 0, packet.MSS, packet.ECT1), below, 0); v != Accept {
		t.Errorf("below threshold: %v", v)
	}
	if v := s.Enqueue(packet.NewData(1, 0, packet.MSS, packet.ECT1), above, 0); v != Mark {
		t.Errorf("above threshold: %v", v)
	}
	if v := s.Enqueue(packet.NewData(1, 0, packet.MSS, packet.NotECT), above, 0); v != Accept {
		t.Errorf("Not-ECT must pass: %v", v)
	}
	if s.Marks() != 1 {
		t.Errorf("marks = %d", s.Marks())
	}
}

func TestPIEDerandomizationBounds(t *testing.T) {
	cfg := BarePIEConfig()
	cfg.Derandomize = true
	pe := newTestPIE(cfg)
	pe.core.SetP(0.1)
	q := &fakeQueue{bytes: 1 << 20}
	// With p = 0.1, the accumulator forbids a drop within the first 8
	// packets (accu < 0.85) and forces one by packet 85 (accu ≥ 8.5).
	gap := 0
	maxGap, minGap := 0, 1<<30
	for i := 0; i < 20000; i++ {
		v := pe.Enqueue(packet.NewData(1, 0, packet.MSS, packet.NotECT), q, 0)
		gap++
		if v == Drop {
			if gap > maxGap {
				maxGap = gap
			}
			if gap < minGap {
				minGap = gap
			}
			gap = 0
		}
	}
	if minGap < 9 {
		t.Errorf("min inter-drop gap %d, want >= 9 (accu < 0.85 suppression)", minGap)
	}
	if maxGap > 86 {
		t.Errorf("max inter-drop gap %d, want <= 86 (accu >= 8.5 forcing)", maxGap)
	}
}

func TestPIEDerandomizationPreservesMeanRate(t *testing.T) {
	cfg := BarePIEConfig()
	cfg.Derandomize = true
	pe := newTestPIE(cfg)
	pe.core.SetP(0.05)
	q := &fakeQueue{bytes: 1 << 20}
	drops := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if pe.Enqueue(packet.NewData(1, 0, packet.MSS, packet.NotECT), q, 0) == Drop {
			drops++
		}
	}
	got := float64(drops) / n
	// The RFC scheme is not rate-neutral in open loop: every inter-drop
	// gap gains a suppression period of 0.85/p packets on top of the
	// geometric wait of ~1/p, so the realized rate is ≈ p/1.85 (the
	// closed-loop controller compensates by holding p higher). For
	// p = 0.05 that is ≈ 0.027.
	want := 0.05 / 1.85
	if math.Abs(got-want) > 0.008 {
		t.Errorf("derandomized drop rate %.4f, want ~%.4f (p/1.85)", got, want)
	}
}
