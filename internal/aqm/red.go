package aqm

import (
	"math/rand"
	"time"

	"pi2/internal/packet"
)

// REDConfig parametrizes Random Early Detection (Floyd & Jacobson), the
// classical AQM the PI line of work descends from; it serves as a baseline.
// Thresholds are in bytes of average queue.
type REDConfig struct {
	// MinThresh and MaxThresh bound the probabilistic-drop region.
	MinThresh, MaxThresh int
	// MaxP is the drop probability at MaxThresh (default 0.1).
	MaxP float64
	// Wq is the EWMA weight for the average queue (default 0.002).
	Wq float64
	// ECN marks ECN-capable packets instead of dropping.
	ECN bool
	// Gentle extends the drop ramp from MaxP at MaxThresh to 1 at
	// 2·MaxThresh instead of jumping straight to 1 ("gentle RED").
	Gentle bool
}

// RED is the Random Early Detection AQM.
type RED struct {
	cfg REDConfig
	rng *rand.Rand

	avg       float64
	count     int // packets since last drop, for the uniform-spacing trick
	idleSince time.Duration
	idle      bool
	lastP     float64
}

// NewRED builds a RED instance.
func NewRED(cfg REDConfig, rng *rand.Rand) *RED {
	if cfg.MinThresh == 0 {
		cfg.MinThresh = 5 * packet.FullLen
	}
	if cfg.MaxThresh == 0 {
		cfg.MaxThresh = 15 * packet.FullLen
	}
	if cfg.MaxP == 0 {
		cfg.MaxP = 0.1
	}
	if cfg.Wq == 0 {
		cfg.Wq = 0.002
	}
	return &RED{cfg: cfg, rng: rng, count: -1}
}

// Name implements AQM.
func (r *RED) Name() string { return "red" }

// DropProbability implements ProbabilityReporter (last computed pb).
func (r *RED) DropProbability() float64 { return r.lastP }

// Enqueue implements AQM.
func (r *RED) Enqueue(p *packet.Packet, q QueueInfo, now time.Duration) Verdict {
	backlog := q.BacklogBytes()
	if r.idle {
		// Decay the average across the idle period as if m small packets
		// had been served.
		cap := q.CapacityBps()
		if cap > 0 {
			m := (now - r.idleSince).Seconds() * cap / 8 / float64(packet.FullLen)
			for i := 0; float64(i) < m && r.avg > 0; i++ {
				r.avg *= 1 - r.cfg.Wq
			}
		}
		r.idle = false
	}
	r.avg = (1-r.cfg.Wq)*r.avg + r.cfg.Wq*float64(backlog)

	var pb float64
	switch {
	case r.avg < float64(r.cfg.MinThresh):
		r.count = -1
		r.lastP = 0
		return Accept
	case r.avg >= float64(r.cfg.MaxThresh):
		if !r.cfg.Gentle {
			r.count = 0
			r.lastP = 1
			return r.signal(p)
		}
		if r.avg >= 2*float64(r.cfg.MaxThresh) {
			r.count = 0
			r.lastP = 1
			return r.signal(p)
		}
		pb = r.cfg.MaxP + (1-r.cfg.MaxP)*
			(r.avg-float64(r.cfg.MaxThresh))/float64(r.cfg.MaxThresh)
	default:
		pb = r.cfg.MaxP * (r.avg - float64(r.cfg.MinThresh)) /
			float64(r.cfg.MaxThresh-r.cfg.MinThresh)
	}
	r.lastP = pb
	r.count++
	// Uniform spacing: pa = pb / (1 - count*pb).
	pa := pb / (1 - float64(r.count)*pb)
	if pa < 0 || pa >= 1 || r.rng.Float64() < pa {
		r.count = 0
		return r.signal(p)
	}
	return Accept
}

func (r *RED) signal(p *packet.Packet) Verdict {
	if r.cfg.ECN && p.ECN.ECNCapable() {
		return Mark
	}
	return Drop
}

// Dequeue implements AQM; it tracks idle onset for the average decay.
func (r *RED) Dequeue(_ *packet.Packet, q QueueInfo, now time.Duration) {
	if q.BacklogBytes() == 0 {
		r.idle = true
		r.idleSince = now
	}
}

// UpdateInterval implements AQM.
func (r *RED) UpdateInterval() time.Duration { return 0 }

// Update implements AQM.
func (r *RED) Update(QueueInfo, time.Duration) {}
