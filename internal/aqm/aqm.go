// Package aqm implements the Active Queue Management algorithms evaluated in
// the paper: Linux-style PIE (with every heuristic individually switchable),
// bare-PIE, the plain PI controller, PI2, and the RED / CoDel / tail-drop
// baselines. The coupled PI²+PI single-queue AQM — the paper's headline
// contribution — builds on this package and lives in internal/core.
//
// An AQM is attached to exactly one queue (see internal/link). The queue
// calls Enqueue for a verdict before admitting each packet, Dequeue as each
// packet leaves, and Update on the AQM's periodic timer.
package aqm

import (
	"time"

	"pi2/internal/packet"
)

// Verdict is an AQM's per-packet decision at enqueue time.
type Verdict int

const (
	// Accept admits the packet unchanged.
	Accept Verdict = iota
	// Mark admits the packet after rewriting its ECN field to CE.
	Mark
	// Drop discards the packet.
	Drop
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Accept:
		return "accept"
	case Mark:
		return "mark"
	case Drop:
		return "drop"
	}
	return "invalid"
}

// QueueInfo is the read-only view of queue state an AQM may consult.
type QueueInfo interface {
	// BacklogBytes is the queued byte count (not counting the packet
	// currently being serialized).
	BacklogBytes() int
	// BacklogPackets is the queued packet count.
	BacklogPackets() int
	// HeadSojourn returns how long the packet at the head of the queue has
	// been queued (0 when empty). CoDel-style direct delay measurement.
	HeadSojourn(now time.Duration) time.Duration
	// CapacityBps is the instantaneous link rate in bits/s, for AQMs that
	// convert backlog to delay directly.
	CapacityBps() float64
}

// AQM is a queue-management algorithm.
//
// Implementations are single-goroutine (the simulator is single-threaded)
// and must be deterministic given their RNG stream.
type AQM interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Enqueue decides the fate of p before it is queued.
	Enqueue(p *packet.Packet, q QueueInfo, now time.Duration) Verdict
	// Dequeue observes p leaving the queue (PIE's departure-rate estimator
	// hooks in here). Implementations may be no-ops.
	Dequeue(p *packet.Packet, q QueueInfo, now time.Duration)
	// UpdateInterval is the period of the AQM's timer (0 = no timer).
	UpdateInterval() time.Duration
	// Update runs one periodic control-law update.
	Update(q QueueInfo, now time.Duration)
}

// ProbabilityReporter is implemented by AQMs whose control variable is a
// drop/mark probability; the harness samples it for Figure 17.
type ProbabilityReporter interface {
	// DropProbability returns the probability currently applied to Classic
	// (Not-ECT / ECT(0)) packets.
	DropProbability() float64
}

// ScalableReporter is implemented by coupled AQMs that additionally apply a
// separate marking probability to Scalable (ECT(1)) packets.
type ScalableReporter interface {
	// ScalableProbability returns the probability currently applied to
	// Scalable packets.
	ScalableProbability() float64
}

// DelayEstimator selects how an AQM converts queue state to queuing delay.
type DelayEstimator int

const (
	// EstimateBySojourn (the zero value, hence the default) uses the head
	// packet's time in queue (CoDel-style timestamping, which the PI2
	// qdisc uses).
	EstimateBySojourn DelayEstimator = iota
	// EstimateByRate divides backlog by a measured departure rate
	// (Linux PIE's dq_rate estimator; see Figure 3 "rate estimation").
	// PIE defaults to this via DefaultPIEConfig.
	EstimateByRate
	// EstimateByCapacity divides backlog by the configured link capacity
	// (idealized; useful in tests).
	EstimateByCapacity
)

// String implements fmt.Stringer.
func (d DelayEstimator) String() string {
	switch d {
	case EstimateByRate:
		return "rate"
	case EstimateBySojourn:
		return "sojourn"
	case EstimateByCapacity:
		return "capacity"
	}
	return "invalid"
}

// TailDrop is the no-AQM control: every packet is accepted (the queue's
// buffer limit still tail-drops on overflow).
type TailDrop struct{}

// Name implements AQM.
func (TailDrop) Name() string { return "taildrop" }

// Enqueue implements AQM; it always accepts.
func (TailDrop) Enqueue(*packet.Packet, QueueInfo, time.Duration) Verdict { return Accept }

// Dequeue implements AQM.
func (TailDrop) Dequeue(*packet.Packet, QueueInfo, time.Duration) {}

// UpdateInterval implements AQM.
func (TailDrop) UpdateInterval() time.Duration { return 0 }

// Update implements AQM.
func (TailDrop) Update(QueueInfo, time.Duration) {}
