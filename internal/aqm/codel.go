package aqm

import (
	"time"

	"pi2/internal/packet"
)

// DequeueDropper is an optional AQM extension for algorithms that act at
// dequeue time (CoDel drops at the head of the queue). The link consults it
// for every departing packet and, on Drop, discards the packet and moves on
// to the next one.
type DequeueDropper interface {
	// DequeueVerdict decides the fate of the packet leaving the queue.
	DequeueVerdict(p *packet.Packet, q QueueInfo, now time.Duration) Verdict
}

// CoDelConfig parametrizes Controlled Delay (Nichols & Jacobson) — included
// as a baseline and because PIE borrowed its use of time units for queue
// measurement (Section 3).
type CoDelConfig struct {
	// Target sojourn time (default 5 ms).
	Target time.Duration
	// Interval is the sliding window for the minimum (default 100 ms).
	Interval time.Duration
	// ECN marks instead of dropping.
	ECN bool
}

// CoDel is the Controlled Delay AQM (head drop, inverse-sqrt control law).
type CoDel struct {
	cfg CoDelConfig

	firstAboveTime time.Duration
	dropNext       time.Duration
	count          int
	lastCount      int
	dropping       bool
	drops          int
	invSqrt        float64 // cached 1/sqrt(count), Newton-refined
}

// NewCoDel builds a CoDel instance.
func NewCoDel(cfg CoDelConfig) *CoDel {
	if cfg.Target == 0 {
		cfg.Target = 5 * time.Millisecond
	}
	if cfg.Interval == 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	return &CoDel{cfg: cfg}
}

// Name implements AQM.
func (c *CoDel) Name() string { return "codel" }

// Enqueue implements AQM; CoDel admits everything at enqueue.
func (c *CoDel) Enqueue(*packet.Packet, QueueInfo, time.Duration) Verdict { return Accept }

// Dequeue implements AQM.
func (c *CoDel) Dequeue(*packet.Packet, QueueInfo, time.Duration) {}

// UpdateInterval implements AQM.
func (c *CoDel) UpdateInterval() time.Duration { return 0 }

// Update implements AQM.
func (c *CoDel) Update(QueueInfo, time.Duration) {}

// controlLaw spaces drops at interval/sqrt(count), using the cached
// Newton-refined inverse square root instead of a per-dequeue math.Sqrt.
func (c *CoDel) controlLaw(t time.Duration) time.Duration {
	return t + time.Duration(float64(c.cfg.Interval)*c.invSqrt)
}

// setCount sets the drop count and refreshes the cached inverse square
// root incrementally, the way Linux sch_codel's codel_Newton_step does —
// warm-started from the previous estimate instead of recomputing sqrt on
// every state change. Unlike the kernel's single fixed-point step (up to
// ~29% error right after a count reset), the refinement iterates to
// convergence, so drop spacing tracks interval/sqrt(count) to float
// precision at any count; consecutive counts converge in a step or two.
func (c *CoDel) setCount(n int) {
	if n < 1 {
		n = 1
	}
	c.count = n
	x := float64(n)
	inv := c.invSqrt
	// Newton for 1/sqrt diverges from a guess at or above sqrt(3/x);
	// counts move by small steps so the warm start is always in the
	// basin, but restart from below on first use (or any stale state).
	if inv <= 0 || inv*inv*x >= 3 {
		inv = 1 / x
	}
	prev := 0.0
	for i := 0; i < 64; i++ {
		next := inv * (1.5 - 0.5*x*inv*inv)
		if next == inv || next == prev {
			break // converged, or 1-ulp two-cycle around the root
		}
		prev = inv
		inv = next
	}
	c.invSqrt = inv
}

// shouldDrop implements the "sojourn above target for a full interval" test.
func (c *CoDel) shouldDrop(sojourn time.Duration, q QueueInfo, now time.Duration) bool {
	if sojourn < c.cfg.Target || q.BacklogBytes() <= 2*packet.FullLen {
		c.firstAboveTime = 0
		return false
	}
	if c.firstAboveTime == 0 {
		c.firstAboveTime = now + c.cfg.Interval
		return false
	}
	return now >= c.firstAboveTime
}

// DequeueVerdict implements DequeueDropper: the CoDel state machine.
func (c *CoDel) DequeueVerdict(p *packet.Packet, q QueueInfo, now time.Duration) Verdict {
	sojourn := now - p.EnqueuedAt
	okToDrop := c.shouldDrop(sojourn, q, now)

	if c.dropping {
		switch {
		case !okToDrop:
			c.dropping = false
		case now >= c.dropNext:
			c.setCount(c.count + 1)
			c.dropNext = c.controlLaw(c.dropNext)
			return c.signal(p)
		}
		return Accept
	}
	if okToDrop {
		c.dropping = true
		// Resume at a higher rate if we were dropping recently.
		if c.count > 2 && now-c.dropNext < 8*c.cfg.Interval {
			c.setCount(c.count - 2)
		} else {
			c.setCount(1)
		}
		c.dropNext = c.controlLaw(now)
		return c.signal(p)
	}
	return Accept
}

func (c *CoDel) signal(p *packet.Packet) Verdict {
	c.drops++
	if c.cfg.ECN && p.ECN.ECNCapable() {
		return Mark
	}
	return Drop
}
