package aqm

import (
	"math"
	"time"

	"pi2/internal/packet"
)

// DequeueDropper is an optional AQM extension for algorithms that act at
// dequeue time (CoDel drops at the head of the queue). The link consults it
// for every departing packet and, on Drop, discards the packet and moves on
// to the next one.
type DequeueDropper interface {
	// DequeueVerdict decides the fate of the packet leaving the queue.
	DequeueVerdict(p *packet.Packet, q QueueInfo, now time.Duration) Verdict
}

// CoDelConfig parametrizes Controlled Delay (Nichols & Jacobson) — included
// as a baseline and because PIE borrowed its use of time units for queue
// measurement (Section 3).
type CoDelConfig struct {
	// Target sojourn time (default 5 ms).
	Target time.Duration
	// Interval is the sliding window for the minimum (default 100 ms).
	Interval time.Duration
	// ECN marks instead of dropping.
	ECN bool
}

// CoDel is the Controlled Delay AQM (head drop, inverse-sqrt control law).
type CoDel struct {
	cfg CoDelConfig

	firstAboveTime time.Duration
	dropNext       time.Duration
	count          int
	lastCount      int
	dropping       bool
	drops          int
}

// NewCoDel builds a CoDel instance.
func NewCoDel(cfg CoDelConfig) *CoDel {
	if cfg.Target == 0 {
		cfg.Target = 5 * time.Millisecond
	}
	if cfg.Interval == 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	return &CoDel{cfg: cfg}
}

// Name implements AQM.
func (c *CoDel) Name() string { return "codel" }

// Enqueue implements AQM; CoDel admits everything at enqueue.
func (c *CoDel) Enqueue(*packet.Packet, QueueInfo, time.Duration) Verdict { return Accept }

// Dequeue implements AQM.
func (c *CoDel) Dequeue(*packet.Packet, QueueInfo, time.Duration) {}

// UpdateInterval implements AQM.
func (c *CoDel) UpdateInterval() time.Duration { return 0 }

// Update implements AQM.
func (c *CoDel) Update(QueueInfo, time.Duration) {}

// controlLaw spaces drops at interval/sqrt(count).
func (c *CoDel) controlLaw(t time.Duration) time.Duration {
	return t + time.Duration(float64(c.cfg.Interval)/math.Sqrt(float64(c.count)))
}

// shouldDrop implements the "sojourn above target for a full interval" test.
func (c *CoDel) shouldDrop(sojourn time.Duration, q QueueInfo, now time.Duration) bool {
	if sojourn < c.cfg.Target || q.BacklogBytes() <= 2*packet.FullLen {
		c.firstAboveTime = 0
		return false
	}
	if c.firstAboveTime == 0 {
		c.firstAboveTime = now + c.cfg.Interval
		return false
	}
	return now >= c.firstAboveTime
}

// DequeueVerdict implements DequeueDropper: the CoDel state machine.
func (c *CoDel) DequeueVerdict(p *packet.Packet, q QueueInfo, now time.Duration) Verdict {
	sojourn := now - p.EnqueuedAt
	okToDrop := c.shouldDrop(sojourn, q, now)

	if c.dropping {
		switch {
		case !okToDrop:
			c.dropping = false
		case now >= c.dropNext:
			c.count++
			c.dropNext = c.controlLaw(c.dropNext)
			return c.signal(p)
		}
		return Accept
	}
	if okToDrop {
		c.dropping = true
		// Resume at a higher rate if we were dropping recently.
		if c.count > 2 && now-c.dropNext < 8*c.cfg.Interval {
			c.count = c.count - 2
		} else {
			c.count = 1
		}
		c.dropNext = c.controlLaw(now)
		return c.signal(p)
	}
	return Accept
}

func (c *CoDel) signal(p *packet.Packet) Verdict {
	c.drops++
	if c.cfg.ECN && p.ECN.ECNCapable() {
		return Mark
	}
	return Drop
}
