package aqm

import (
	"math"
	"testing"
	"time"
)

// spacing returns the drop spacing controlLaw would apply at the current
// cached inverse square root, as a float for relative-error comparison.
func (c *CoDel) spacing() float64 {
	return float64(time.Duration(float64(c.cfg.Interval) * c.invSqrt))
}

// TestCoDelControlLawMatchesClosedForm walks the count up one drop at a
// time — the way the dropping state machine does — and checks the cached
// Newton estimate keeps the drop spacing within 2% of the closed form
// interval/sqrt(count) all the way out to count = 10k. In practice the
// warm-started iteration converges to float precision, so the observed
// error is many orders of magnitude below the bound.
func TestCoDelControlLawMatchesClosedForm(t *testing.T) {
	c := NewCoDel(CoDelConfig{})
	interval := float64(c.cfg.Interval)
	for n := 1; n <= 10000; n++ {
		c.setCount(n)
		want := interval / math.Sqrt(float64(n))
		got := c.spacing()
		if rel := math.Abs(got-want) / want; rel > 0.02 {
			t.Fatalf("count=%d: spacing %.6g vs closed form %.6g (rel err %.3g)", n, got, want, rel)
		}
	}
}

// TestCoDelControlLawAfterReentry exercises the count-2 re-entry path: a
// dropping episode ends at a high count and restarts at count-2, so the
// cached estimate must jump from 1/sqrt(n) to 1/sqrt(n-2) (and to 1/sqrt(1)
// on a cold restart) without leaving the Newton basin.
func TestCoDelControlLawAfterReentry(t *testing.T) {
	c := NewCoDel(CoDelConfig{})
	interval := float64(c.cfg.Interval)
	check := func(n int) {
		t.Helper()
		want := interval / math.Sqrt(float64(n))
		got := c.spacing()
		if rel := math.Abs(got-want) / want; rel > 0.02 {
			t.Fatalf("count=%d: spacing %.6g vs closed form %.6g (rel err %.3g)", n, got, want, rel)
		}
	}
	for _, n := range []int{1, 2, 3, 400, 10000} {
		c.setCount(n)
		check(n)
		if n > 2 {
			c.setCount(n - 2) // warm re-entry
			check(n - 2)
		}
		c.setCount(1) // cold restart
		check(1)
		c.setCount(n) // jump back up from 1
		check(n)
	}
	// setCount clamps below 1 (count-2 with count <= 2).
	c.setCount(-1)
	check(1)
}
