package aqm

import (
	"math/rand"
	"testing"
	"time"

	"pi2/internal/packet"
)

// The fast-forward equivalence tests drive two same-seed twins of an AQM:
// one through the packet-mode interface (Enqueue with real packets and a
// QueueInfo, Update with a sojourn-mode estimator) and one through the
// FastForwarder interface (FFDecide/FFUpdate fed the synthetic equivalents).
// Equal verdict streams and probability trajectories prove the ff engine
// consumes exactly the RNG draws and control-law steps packet mode would.

func ecnPattern(i int) packet.ECN {
	switch i % 4 {
	case 0:
		return packet.NotECT
	case 1:
		return packet.ECT0
	case 2:
		return packet.ECT1
	default:
		return packet.CE
	}
}

// delayPattern is a deterministic qdelay walk around the 20 ms target,
// including idle (0) stretches to exercise decay/burst re-arm paths.
func delayPattern(step int) time.Duration {
	seq := []time.Duration{
		25 * time.Millisecond, 40 * time.Millisecond, 18 * time.Millisecond,
		5 * time.Millisecond, 0, 0, 30 * time.Millisecond, 300 * time.Millisecond,
		22 * time.Millisecond, 21 * time.Millisecond,
	}
	return seq[step%len(seq)]
}

func TestPIFastForwardTwinEquivalence(t *testing.T) {
	seed := int64(7)
	pkt := NewPI(PIConfig{ECN: true}, rand.New(rand.NewSource(seed)))
	ff := NewPI(PIConfig{ECN: true}, rand.New(rand.NewSource(seed)))
	q := &fakeQueue{}
	for step := 0; step < 200; step++ {
		qd := delayPattern(step)
		q.sojourn = qd
		pkt.Update(q, 0)
		ff.FFUpdate(qd)
		if pkt.DropProbability() != ff.DropProbability() {
			t.Fatalf("step %d: p diverged: %g vs %g", step, pkt.DropProbability(), ff.DropProbability())
		}
		for i := 0; i < 7; i++ {
			ecn := ecnPattern(i)
			vp := pkt.Enqueue(packet.NewData(1, 0, packet.MSS, ecn), q, 0)
			vf := ff.FFDecide(ecn, packet.MSS+packet.HeaderLen, 0)
			if vp != vf {
				t.Fatalf("step %d pkt %d: verdict diverged: %v vs %v", step, i, vp, vf)
			}
		}
	}
}

func TestPIEFastForwardTwinEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*PIEConfig)
	}{
		{"default-sojourn", func(c *PIEConfig) {}},
		{"ecn", func(c *PIEConfig) { c.ECN = true }},
		{"derandomize", func(c *PIEConfig) { c.Derandomize = true }},
		{"bytemode-reworked", func(c *PIEConfig) {
			c.Bytemode = true
			c.ECN = true
			c.ReworkedECN = true
		}},
		{"bare", func(c *PIEConfig) {
			bc := BarePIEConfig()
			bc.Estimator = EstimateBySojourn
			*c = bc
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mkCfg := func() PIEConfig {
				// Sojourn estimation so Update(q) sees exactly the delay
				// FFUpdate is fed; EstimateByRate would need a live queue.
				cfg := DefaultPIEConfig()
				cfg.Estimator = EstimateBySojourn
				tc.mut(&cfg)
				return cfg
			}
			seed := int64(11)
			pkt := NewPIE(mkCfg(), rand.New(rand.NewSource(seed)))
			ff := NewPIE(mkCfg(), rand.New(rand.NewSource(seed)))
			q := &fakeQueue{bytes: 60 * packet.FullLen}
			for step := 0; step < 300; step++ {
				qd := delayPattern(step)
				q.sojourn = qd
				pkt.Update(q, 0)
				ff.FFUpdate(qd)
				if pkt.DropProbability() != ff.DropProbability() {
					t.Fatalf("step %d: p diverged: %g vs %g",
						step, pkt.DropProbability(), ff.DropProbability())
				}
				if pkt.QDelay() != ff.QDelay() {
					t.Fatalf("step %d: qdelay state diverged", step)
				}
				for i := 0; i < 7; i++ {
					ecn := ecnPattern(i)
					vp := pkt.Enqueue(packet.NewData(1, 0, packet.MSS, ecn), q, 0)
					vf := ff.FFDecide(ecn, packet.MSS+packet.HeaderLen, q.bytes)
					if vp != vf {
						t.Fatalf("step %d pkt %d: verdict diverged: %v vs %v", step, i, vp, vf)
					}
				}
			}
		})
	}
}

// TestDepartRateFFShift checks a shift in the middle of a measurement cycle
// yields the same rate as an unshifted twin whose dequeues happened at the
// translated times: elapsed time within the cycle is preserved.
func TestDepartRateFFShift(t *testing.T) {
	const delta = 10 * time.Second
	var a, b DepartRateEstimator
	backlog := 4 * DefaultDQThreshold
	// Twin a: plain cycle. Twin b: identical, but the clock jumps by delta
	// mid-cycle and FFShift translates the cycle start.
	a.OnDequeue(packet.FullLen, backlog, 100*time.Millisecond)
	b.OnDequeue(packet.FullLen, backlog, 100*time.Millisecond)
	b.FFShift(delta)
	for now := 101 * time.Millisecond; ; now += time.Millisecond {
		a.OnDequeue(DefaultDQThreshold/4, backlog, now)
		b.OnDequeue(DefaultDQThreshold/4, backlog, now+delta)
		if ra, ok := a.RateBps(); ok {
			rb, okb := b.RateBps()
			if !okb || ra != rb {
				t.Fatalf("rates diverged: %g (ok) vs %g (%v)", ra, rb, okb)
			}
			return
		}
		if now > time.Second {
			t.Fatal("cycle never completed")
		}
	}
}

// TestFFShiftOutsideCycleIsNoop ensures a shift with no cycle in progress
// leaves the estimator untouched.
func TestFFShiftOutsideCycleIsNoop(t *testing.T) {
	var d DepartRateEstimator
	d.FFShift(5 * time.Second)
	if d.inCycle || d.start != 0 {
		t.Fatalf("mutated: %+v", d)
	}
}

func TestFFTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := NewPI(PIConfig{}, rng).FFTarget(); got != 20*time.Millisecond {
		t.Fatalf("PI target = %v", got)
	}
	if got := NewPIE(DefaultPIEConfig(), rng).FFTarget(); got != 20*time.Millisecond {
		t.Fatalf("PIE target = %v", got)
	}
}
