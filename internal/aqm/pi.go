package aqm

import (
	"math/rand"
	"time"

	"pi2/internal/packet"
)

// PICore is the classical Proportional Integral control law of equation (4):
//
//	p(t) = p(t−T) + α·(τ(t)−τ0) + β·(τ(t)−τ(t−T))
//
// with gains α, β in Hz and queuing delay τ in seconds. It is shared by the
// plain PI AQM, PIE (which adds auto-tuning and heuristics around it) and
// PI2 (which post-processes its output). The controlled variable is clamped
// to [0, pMax].
type PICore struct {
	// Alpha is the integral gain in Hz.
	Alpha float64
	// Beta is the proportional gain in Hz.
	Beta float64
	// Target is the queuing-delay reference τ0.
	Target time.Duration
	// PMax clamps the controlled variable (1 if zero).
	PMax float64

	p         float64
	prevDelay time.Duration
}

// P returns the current value of the controlled variable.
func (c *PICore) P() float64 { return c.p }

// SetP overrides the controlled variable (used by PIE's decay heuristic).
func (c *PICore) SetP(p float64) { c.p = c.clamp(p) }

// PrevDelay returns the queue delay observed at the previous update.
func (c *PICore) PrevDelay() time.Duration { return c.prevDelay }

// Delta returns the raw control adjustment for the given delay observation
// without applying it (PIE scales it first).
func (c *PICore) Delta(qdelay time.Duration) float64 {
	return c.Alpha*(qdelay-c.Target).Seconds() + c.Beta*(qdelay-c.prevDelay).Seconds()
}

// Apply adds delta to the controlled variable, records qdelay as the new
// reference for the proportional term, and returns the clamped result.
func (c *PICore) Apply(delta float64, qdelay time.Duration) float64 {
	c.p = c.clamp(c.p + delta)
	c.prevDelay = qdelay
	return c.p
}

// Update performs one unscaled PI update (Delta + Apply).
func (c *PICore) Update(qdelay time.Duration) float64 {
	return c.Apply(c.Delta(qdelay), qdelay)
}

func (c *PICore) clamp(p float64) float64 {
	max := c.PMax
	if max == 0 {
		max = 1
	}
	switch {
	case p < 0:
		return 0
	case p > max:
		return max
	}
	return p
}

// DepartRateEstimator reproduces Linux PIE's dq_rate measurement: while at
// least Threshold bytes are backlogged, it accumulates departed bytes and
// divides by elapsed time at the end of each measurement cycle.
type DepartRateEstimator struct {
	// Threshold in bytes for starting a measurement cycle (16 KB default).
	Threshold int

	inCycle bool
	count   int
	start   time.Duration
	rateBps float64
	hasRate bool
}

// DefaultDQThreshold is Linux PIE's measurement threshold (16 KiB).
const DefaultDQThreshold = 16 * 1024

// OnDequeue feeds one departure into the estimator.
func (d *DepartRateEstimator) OnDequeue(bytes int, backlog int, now time.Duration) {
	th := d.Threshold
	if th == 0 {
		th = DefaultDQThreshold
	}
	if !d.inCycle {
		if backlog >= th {
			d.inCycle = true
			d.count = 0
			d.start = now
		}
		return
	}
	d.count += bytes
	if d.count >= th {
		el := (now - d.start).Seconds()
		if el > 0 {
			r := float64(d.count) * 8 / el
			if d.hasRate {
				// EWMA 1/2, as in Linux.
				d.rateBps = (d.rateBps + r) / 2
			} else {
				d.rateBps = r
				d.hasRate = true
			}
		}
		d.inCycle = false
	}
}

// RateBps returns the measured departure rate and whether it is valid yet.
func (d *DepartRateEstimator) RateBps() (float64, bool) { return d.rateBps, d.hasRate }

// EstimateDelay converts queue state to queuing delay using the selected
// estimator. rateEst may be nil unless est == EstimateByRate.
func EstimateDelay(est DelayEstimator, q QueueInfo, rateEst *DepartRateEstimator, now time.Duration) time.Duration {
	switch est {
	case EstimateByCapacity:
		c := q.CapacityBps()
		if c <= 0 {
			return 0
		}
		return time.Duration(float64(q.BacklogBytes()*8) / c * float64(time.Second))
	case EstimateByRate:
		if rateEst != nil {
			if r, ok := rateEst.RateBps(); ok && r > 0 {
				return time.Duration(float64(q.BacklogBytes()*8) / r * float64(time.Second))
			}
		}
		return 0
	default: // EstimateBySojourn
		return q.HeadSojourn(now)
	}
}

// PIConfig parametrizes the plain (non-tuned, linear) PI AQM — the 'pi'
// curve in Figure 6: the classical controller applying its output directly
// as the drop/mark probability, with fixed gains.
type PIConfig struct {
	// Alpha, Beta are the PI gains in Hz (defaults 0.125 and 1.25,
	// the PIE base gains).
	Alpha, Beta float64
	// Target queuing delay (default 20 ms, Table 1).
	Target time.Duration
	// Tupdate is the control interval T (default 32 ms, figure captions).
	Tupdate time.Duration
	// Estimator selects delay measurement (default direct sojourn).
	Estimator DelayEstimator
	// ECN marks ECN-capable packets instead of dropping them.
	ECN bool
}

func (c *PIConfig) setDefaults() {
	if c.Alpha == 0 {
		c.Alpha = 0.125
	}
	if c.Beta == 0 {
		c.Beta = 1.25
	}
	if c.Target == 0 {
		c.Target = 20 * time.Millisecond
	}
	if c.Tupdate == 0 {
		c.Tupdate = 32 * time.Millisecond
	}
}

// PI is the plain linear PI AQM.
type PI struct {
	cfg  PIConfig
	core PICore
	rate DepartRateEstimator
	rng  *rand.Rand
}

// NewPI builds a plain PI AQM with the given RNG stream.
func NewPI(cfg PIConfig, rng *rand.Rand) *PI {
	cfg.setDefaults()
	return &PI{
		cfg:  cfg,
		core: PICore{Alpha: cfg.Alpha, Beta: cfg.Beta, Target: cfg.Target},
		rng:  rng,
	}
}

// Name implements AQM.
func (pi *PI) Name() string { return "pi" }

// DropProbability implements ProbabilityReporter.
func (pi *PI) DropProbability() float64 { return pi.core.P() }

// Enqueue implements AQM: drop (or mark) with probability p. The decision
// logic lives in FFDecide so packet mode and fast-forward mode share one
// RNG discipline.
func (pi *PI) Enqueue(p *packet.Packet, _ QueueInfo, _ time.Duration) Verdict {
	return pi.FFDecide(p.ECN, p.WireLen, 0)
}

// Dequeue implements AQM.
func (pi *PI) Dequeue(p *packet.Packet, q QueueInfo, now time.Duration) {
	if pi.cfg.Estimator == EstimateByRate {
		pi.rate.OnDequeue(p.WireLen, q.BacklogBytes(), now)
	}
}

// UpdateInterval implements AQM.
func (pi *PI) UpdateInterval() time.Duration { return pi.cfg.Tupdate }

// Update implements AQM.
func (pi *PI) Update(q QueueInfo, now time.Duration) {
	pi.FFUpdate(EstimateDelay(pi.cfg.Estimator, q, &pi.rate, now))
}
