package aqm

import (
	"math/rand"
	"testing"
	"time"

	"pi2/internal/packet"
)

func TestREDBelowMinThreshAccepts(t *testing.T) {
	r := NewRED(REDConfig{}, rand.New(rand.NewSource(1)))
	q := &fakeQueue{bytes: 0, rate: 10e6}
	for i := 0; i < 100; i++ {
		if v := r.Enqueue(packet.NewData(1, 0, packet.MSS, packet.NotECT), q, 0); v != Accept {
			t.Fatalf("verdict %v with empty queue", v)
		}
	}
	if r.DropProbability() != 0 {
		t.Errorf("pb = %v below min thresh", r.DropProbability())
	}
}

func TestREDDropsInRampRegion(t *testing.T) {
	r := NewRED(REDConfig{MinThresh: 10 * packet.FullLen, MaxThresh: 30 * packet.FullLen}, rand.New(rand.NewSource(1)))
	q := &fakeQueue{bytes: 20 * packet.FullLen, rate: 10e6}
	drops := 0
	for i := 0; i < 2000; i++ {
		if r.Enqueue(packet.NewData(1, 0, packet.MSS, packet.NotECT), q, 0) == Drop {
			drops++
		}
	}
	if drops == 0 {
		t.Error("no drops with avg queue mid-ramp")
	}
	if drops > 1000 {
		t.Errorf("drops = %d, far above maxP region", drops)
	}
}

func TestREDForcedDropAboveMax(t *testing.T) {
	r := NewRED(REDConfig{MinThresh: 10 * packet.FullLen, MaxThresh: 20 * packet.FullLen}, rand.New(rand.NewSource(1)))
	q := &fakeQueue{bytes: 400 * packet.FullLen, rate: 10e6}
	// Let the EWMA catch up to the huge instantaneous queue.
	for i := 0; i < 5000; i++ {
		r.Enqueue(packet.NewData(1, 0, packet.MSS, packet.NotECT), q, 0)
	}
	if v := r.Enqueue(packet.NewData(1, 0, packet.MSS, packet.NotECT), q, 0); v != Drop {
		t.Errorf("verdict %v with avg far above max thresh, want drop", v)
	}
}

func TestREDMarksECN(t *testing.T) {
	r := NewRED(REDConfig{MinThresh: 1, MaxThresh: 2, ECN: true}, rand.New(rand.NewSource(1)))
	q := &fakeQueue{bytes: 1000 * packet.FullLen, rate: 10e6}
	for i := 0; i < 5000; i++ {
		if r.Enqueue(packet.NewData(1, 0, packet.MSS, packet.ECT0), q, 0) == Drop {
			t.Fatal("RED dropped ECN-capable packet with ECN enabled")
		}
	}
}

func TestCoDelIdleQueuePasses(t *testing.T) {
	c := NewCoDel(CoDelConfig{})
	q := &fakeQueue{bytes: packet.FullLen}
	p := packet.NewData(1, 0, packet.MSS, packet.NotECT)
	p.EnqueuedAt = 0
	// Sojourn below target: never drop.
	if v := c.DequeueVerdict(p, q, 2*time.Millisecond); v != Accept {
		t.Errorf("verdict %v below target", v)
	}
}

func TestCoDelDropsAfterPersistentDelay(t *testing.T) {
	c := NewCoDel(CoDelConfig{Target: 5 * time.Millisecond, Interval: 100 * time.Millisecond})
	q := &fakeQueue{bytes: 100 * packet.FullLen}
	drops := 0
	now := time.Duration(0)
	for i := 0; i < 3000; i++ {
		p := packet.NewData(1, 0, packet.MSS, packet.NotECT)
		p.EnqueuedAt = now - 50*time.Millisecond // persistent 50 ms sojourn
		if c.DequeueVerdict(p, q, now) == Drop {
			drops++
		}
		now += time.Millisecond
	}
	if drops == 0 {
		t.Fatal("CoDel never dropped under persistent standing queue")
	}
	// The control law accelerates: expect clearly more than one drop
	// over 3 s of persistent excess delay.
	if drops < 10 {
		t.Errorf("drops = %d, want the accelerating schedule", drops)
	}
}

func TestCoDelRecoversWhenDelayFalls(t *testing.T) {
	c := NewCoDel(CoDelConfig{})
	q := &fakeQueue{bytes: 100 * packet.FullLen}
	now := time.Duration(0)
	for i := 0; i < 1000; i++ {
		p := packet.NewData(1, 0, packet.MSS, packet.NotECT)
		p.EnqueuedAt = now - 50*time.Millisecond
		c.DequeueVerdict(p, q, now)
		now += time.Millisecond
	}
	// Delay drops below target: the dropping state must end.
	for i := 0; i < 200; i++ {
		p := packet.NewData(1, 0, packet.MSS, packet.NotECT)
		p.EnqueuedAt = now - time.Millisecond
		if c.DequeueVerdict(p, q, now) == Drop {
			t.Fatal("CoDel dropped after the queue drained")
		}
		now += time.Millisecond
	}
}

func TestCoDelECNMarks(t *testing.T) {
	c := NewCoDel(CoDelConfig{ECN: true})
	q := &fakeQueue{bytes: 100 * packet.FullLen}
	now := time.Duration(0)
	marks := 0
	for i := 0; i < 2000; i++ {
		p := packet.NewData(1, 0, packet.MSS, packet.ECT0)
		p.EnqueuedAt = now - 50*time.Millisecond
		switch c.DequeueVerdict(p, q, now) {
		case Drop:
			t.Fatal("dropped ECN packet in ECN mode")
		case Mark:
			marks++
		}
		now += time.Millisecond
	}
	if marks == 0 {
		t.Error("no marks under persistent delay")
	}
}

func TestCoDelEnqueueAlwaysAccepts(t *testing.T) {
	c := NewCoDel(CoDelConfig{})
	if c.Enqueue(nil, nil, 0) != Accept {
		t.Error("CoDel must not act at enqueue")
	}
}
