package aqm

import (
	"math/rand"
	"time"

	"pi2/internal/packet"
)

// AutoTuneFactor returns PIE's stepped gain-scaling factor for the current
// drop probability, per the extended lookup table in the IETF specification
// (draft-ietf-aqm-pie-10 / RFC 8033), which Figure 5 compares against
// √(2p). The returned value multiplies the raw PI adjustment ∆p.
func AutoTuneFactor(dropProb float64) float64 {
	switch {
	case dropProb < 0.000001:
		return 1.0 / 2048
	case dropProb < 0.00001:
		return 1.0 / 512
	case dropProb < 0.0001:
		return 1.0 / 128
	case dropProb < 0.001:
		return 1.0 / 32
	case dropProb < 0.01:
		return 1.0 / 8
	case dropProb < 0.1:
		return 1.0 / 2
	default:
		return 1
	}
}

// PIEConfig parametrizes PIE. Every heuristic the paper enumerates in
// Section 5 ("Fewer Heuristics") sits behind its own switch so that
// bare-PIE is expressible as BarePIEConfig and each heuristic can be
// ablated independently.
type PIEConfig struct {
	// Alpha, Beta are the base PI gains in Hz (Table 1: 2/16 and 20/16).
	Alpha, Beta float64
	// Target queuing delay (default 20 ms).
	Target time.Duration
	// Tupdate is the control interval (default 32 ms per figure captions).
	Tupdate time.Duration
	// Estimator selects delay measurement. Linux PIE measures departure
	// rate; DefaultPIEConfig sets EstimateByRate.
	Estimator DelayEstimator

	// AutoTune applies the stepped gain-scaling lookup table.
	AutoTune bool
	// BurstAllowance enables the initial-burst exemption window.
	BurstAllowance time.Duration // 0 disables; default 100 ms
	// Suppress enables "no drops while p < 20% and delay < target/2".
	Suppress bool
	// DeltaCap enables "∆p limited to 2% when p > 10%".
	DeltaCap bool
	// BigDropCap enables "∆p set to 2% when queue delay > 250 ms".
	BigDropCap bool
	// Decay enables the 2%-per-update decay of p while the queue is idle.
	Decay bool
	// MinBacklog exempts tiny queues (Linux: no drops below 2 MSS bytes).
	MinBacklog int

	// ECN marks ECN-capable packets instead of dropping them, below
	// MarkECNThreshold (Linux: 10%); above it ECN packets are dropped.
	ECN bool
	// MarkECNThreshold is the probability above which ECN packets are
	// dropped anyway (default 0.1).
	MarkECNThreshold float64
	// ReworkedECN replaces the threshold rule with the paper's overload
	// strategy: never drop ECN-capable packets; instead cap p at
	// MaxProb (25%) and let tail-drop handle overload.
	ReworkedECN bool
	// MaxProb caps p when ReworkedECN is set (default 0.25).
	MaxProb float64
	// Derandomize enables RFC 8033 §5.1 drop derandomization: the
	// probability is accumulated per packet, a drop is suppressed while
	// the accumulator is below 0.85 and forced once it reaches 8.5,
	// which removes both drop clustering and long drop-free gaps.
	Derandomize bool
	// Bytemode scales the per-packet probability by packet size relative
	// to a full 1500 B frame (Linux PIE's optional bytemode): small
	// packets — ACKs, VoIP — are proportionally less likely to be hit.
	Bytemode bool
}

// DefaultPIEConfig returns the full Linux-style PIE used for the paper's
// PIE baseline (all heuristics on, departure-rate delay estimation).
func DefaultPIEConfig() PIEConfig {
	return PIEConfig{
		Alpha:            2.0 / 16,
		Beta:             20.0 / 16,
		Target:           20 * time.Millisecond,
		Tupdate:          32 * time.Millisecond,
		Estimator:        EstimateByRate,
		AutoTune:         true,
		BurstAllowance:   100 * time.Millisecond,
		Suppress:         true,
		DeltaCap:         true,
		BigDropCap:       true,
		Decay:            true,
		MinBacklog:       2 * packet.FullLen,
		MarkECNThreshold: 0.1,
	}
}

// BarePIEConfig returns PIE with every extra heuristic disabled but the
// auto-tune gain scaling retained — the paper's "bare-PIE", which it found
// indistinguishable from full PIE in all experiments.
func BarePIEConfig() PIEConfig {
	c := DefaultPIEConfig()
	c.BurstAllowance = 0
	c.Suppress = false
	c.DeltaCap = false
	c.BigDropCap = false
	c.Decay = false
	c.MinBacklog = 0
	return c
}

// PIE is the Proportional Integral controller Enhanced AQM (Pan et al.),
// as implemented in Linux and specified by the IETF, with each heuristic
// individually switchable.
type PIE struct {
	cfg      PIEConfig
	core     PICore
	rate     DepartRateEstimator
	rng      *rand.Rand
	burst    time.Duration
	name     string
	qdelay   time.Duration // last estimate, for Suppress and burst reset
	accuProb float64       // RFC 8033 derandomization accumulator
}

// NewPIE builds a PIE instance.
func NewPIE(cfg PIEConfig, rng *rand.Rand) *PIE {
	if cfg.Alpha == 0 {
		cfg.Alpha = 2.0 / 16
	}
	if cfg.Beta == 0 {
		cfg.Beta = 20.0 / 16
	}
	if cfg.Target == 0 {
		cfg.Target = 20 * time.Millisecond
	}
	if cfg.Tupdate == 0 {
		cfg.Tupdate = 32 * time.Millisecond
	}
	if cfg.MarkECNThreshold == 0 {
		cfg.MarkECNThreshold = 0.1
	}
	if cfg.MaxProb == 0 {
		cfg.MaxProb = 0.25
	}
	pmax := 1.0
	if cfg.ReworkedECN {
		pmax = cfg.MaxProb
	}
	name := "pie"
	if cfg.BurstAllowance == 0 && !cfg.Suppress && !cfg.DeltaCap &&
		!cfg.BigDropCap && !cfg.Decay && cfg.MinBacklog == 0 && cfg.AutoTune {
		name = "bare-pie"
	}
	return &PIE{
		cfg:   cfg,
		core:  PICore{Alpha: cfg.Alpha, Beta: cfg.Beta, Target: cfg.Target, PMax: pmax},
		rng:   rng,
		burst: cfg.BurstAllowance,
		name:  name,
	}
}

// Name implements AQM.
func (pe *PIE) Name() string { return pe.name }

// DropProbability implements ProbabilityReporter.
func (pe *PIE) DropProbability() float64 { return pe.core.P() }

// QDelay returns the AQM's own latest queue-delay estimate.
func (pe *PIE) QDelay() time.Duration { return pe.qdelay }

// Enqueue implements AQM: PIE's drop_early decision. The decision logic
// lives in FFDecide so packet mode and fast-forward mode share one RNG
// discipline.
func (pe *PIE) Enqueue(p *packet.Packet, q QueueInfo, now time.Duration) Verdict {
	return pe.FFDecide(p.ECN, p.WireLen, q.BacklogBytes())
}

// signal picks mark vs drop for a packet that lost the probability draw.
func (pe *PIE) signal(ecn packet.ECN) Verdict {
	if pe.cfg.ECN && ecn.ECNCapable() {
		if pe.cfg.ReworkedECN || pe.core.P() <= pe.cfg.MarkECNThreshold {
			return Mark
		}
	}
	return Drop
}

// Dequeue implements AQM; it feeds the departure-rate estimator.
func (pe *PIE) Dequeue(p *packet.Packet, q QueueInfo, now time.Duration) {
	if pe.cfg.Estimator == EstimateByRate {
		pe.rate.OnDequeue(p.WireLen, q.BacklogBytes(), now)
	}
}

// UpdateInterval implements AQM.
func (pe *PIE) UpdateInterval() time.Duration { return pe.cfg.Tupdate }

// Update implements AQM: one control-law step with PIE's scaling and caps
// (the pipeline itself lives in FFUpdate, fed by the configured estimator).
func (pe *PIE) Update(q QueueInfo, now time.Duration) {
	pe.FFUpdate(EstimateDelay(pe.cfg.Estimator, q, &pe.rate, now))
}
