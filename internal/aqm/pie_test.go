package aqm

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"pi2/internal/packet"
)

func newTestPIE(cfg PIEConfig) *PIE {
	return NewPIE(cfg, rand.New(rand.NewSource(1)))
}

func TestAutoTuneFactorTable(t *testing.T) {
	// The RFC 8033 lookup table, extended down to 0.0001 % (Figure 5).
	cases := []struct {
		p    float64
		want float64
	}{
		{1e-7, 1.0 / 2048},
		{5e-6, 1.0 / 512},
		{5e-5, 1.0 / 128},
		{5e-4, 1.0 / 32},
		{5e-3, 1.0 / 8},
		{5e-2, 1.0 / 2},
		{0.5, 1},
		{1, 1},
	}
	for _, c := range cases {
		if got := AutoTuneFactor(c.p); got != c.want {
			t.Errorf("AutoTuneFactor(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestAutoTuneTracksSqrtLaw(t *testing.T) {
	// Section 3: the steps broadly fit √(2p). Verify each step midpoint is
	// within a factor of 4 of the law over the designed range.
	for _, p := range []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.05} {
		tune := AutoTuneFactor(p)
		law := math.Sqrt(2 * p)
		ratio := tune / law
		if ratio < 0.25 || ratio > 4 {
			t.Errorf("p=%v: tune=%v vs sqrt(2p)=%v (ratio %.2f)", p, tune, law, ratio)
		}
	}
}

func TestPIEBurstAllowanceSuppressesEarlyDrops(t *testing.T) {
	cfg := DefaultPIEConfig()
	pe := newTestPIE(cfg)
	q := &fakeQueue{bytes: 100000, sojourn: 200 * time.Millisecond, rate: 10e6}
	// Even with a crazy p, the burst allowance must pass packets through.
	pe.core.SetP(1)
	for i := 0; i < 100; i++ {
		if v := pe.Enqueue(packet.NewData(1, 0, packet.MSS, packet.NotECT), q, 0); v != Accept {
			t.Fatalf("verdict %v during burst allowance, want accept", v)
		}
	}
}

func TestPIEBurstAllowanceExpires(t *testing.T) {
	cfg := DefaultPIEConfig()
	cfg.Estimator = EstimateBySojourn
	pe := newTestPIE(cfg)
	q := &fakeQueue{bytes: 100000, sojourn: 300 * time.Millisecond, rate: 10e6}
	// Burn through the 100 ms allowance (updates every 32 ms) and build p.
	for i := 0; i < 300; i++ {
		pe.Update(q, time.Duration(i)*32*time.Millisecond)
	}
	drops := 0
	for i := 0; i < 1000; i++ {
		if pe.Enqueue(packet.NewData(1, 0, packet.MSS, packet.NotECT), q, 0) == Drop {
			drops++
		}
	}
	if drops == 0 {
		t.Error("no drops after burst allowance expired under heavy queue")
	}
}

func TestPIESuppressRule(t *testing.T) {
	cfg := BarePIEConfig()
	cfg.Suppress = true
	pe := newTestPIE(cfg)
	pe.core.SetP(0.19) // below the 20 % threshold
	pe.qdelay = 5 * time.Millisecond
	q := &fakeQueue{bytes: 100000}
	for i := 0; i < 200; i++ {
		if v := pe.Enqueue(packet.NewData(1, 0, packet.MSS, packet.NotECT), q, 0); v != Accept {
			t.Fatalf("suppress rule violated: %v", v)
		}
	}
	// Above 20 % the rule no longer applies.
	pe.core.SetP(0.99)
	drops := 0
	for i := 0; i < 200; i++ {
		if pe.Enqueue(packet.NewData(1, 0, packet.MSS, packet.NotECT), q, 0) == Drop {
			drops++
		}
	}
	if drops == 0 {
		t.Error("no drops above the suppression threshold")
	}
}

func TestPIEMinBacklogExemption(t *testing.T) {
	cfg := BarePIEConfig()
	cfg.MinBacklog = 2 * packet.FullLen
	pe := newTestPIE(cfg)
	pe.core.SetP(1)
	q := &fakeQueue{bytes: packet.FullLen} // one packet queued
	if v := pe.Enqueue(packet.NewData(1, 0, packet.MSS, packet.NotECT), q, 0); v != Accept {
		t.Errorf("tiny queue not exempt: %v", v)
	}
}

func TestPIEECNMarkBelowThresholdDropAbove(t *testing.T) {
	cfg := BarePIEConfig()
	cfg.ECN = true
	pe := newTestPIE(cfg)
	q := &fakeQueue{bytes: 1 << 20}

	pe.core.SetP(0.05) // below the 10 % ECN threshold
	marked, dropped := 0, 0
	for i := 0; i < 5000; i++ {
		switch pe.Enqueue(packet.NewData(1, 0, packet.MSS, packet.ECT0), q, 0) {
		case Mark:
			marked++
		case Drop:
			dropped++
		}
	}
	if dropped > 0 || marked == 0 {
		t.Errorf("below threshold: marked=%d dropped=%d, want marks only", marked, dropped)
	}

	pe.core.SetP(0.5) // above the threshold: ECN packets are dropped
	marked, dropped = 0, 0
	for i := 0; i < 5000; i++ {
		switch pe.Enqueue(packet.NewData(1, 0, packet.MSS, packet.ECT0), q, 0) {
		case Mark:
			marked++
		case Drop:
			dropped++
		}
	}
	if marked > 0 || dropped == 0 {
		t.Errorf("above threshold: marked=%d dropped=%d, want drops only", marked, dropped)
	}
}

func TestPIEReworkedECNNeverDrops(t *testing.T) {
	cfg := BarePIEConfig()
	cfg.ECN = true
	cfg.ReworkedECN = true
	pe := newTestPIE(cfg)
	q := &fakeQueue{bytes: 1 << 20, sojourn: time.Second}
	// Saturate the controller; p must cap at MaxProb = 25 %.
	for i := 0; i < 1000; i++ {
		pe.Update(q, time.Duration(i)*32*time.Millisecond)
	}
	if p := pe.DropProbability(); p > 0.25+1e-9 {
		t.Errorf("p = %v, want capped at 0.25", p)
	}
	for i := 0; i < 2000; i++ {
		if pe.Enqueue(packet.NewData(1, 0, packet.MSS, packet.ECT1), q, 0) == Drop {
			t.Fatal("reworked overload rule dropped an ECN packet")
		}
	}
}

func TestPIEDeltaCap(t *testing.T) {
	cfg := BarePIEConfig()
	cfg.DeltaCap = true
	cfg.AutoTune = false
	cfg.Estimator = EstimateBySojourn
	pe := newTestPIE(cfg)
	pe.core.SetP(0.15)
	q := &fakeQueue{sojourn: 10 * time.Second} // raw Δp would be enormous
	before := pe.DropProbability()
	pe.Update(q, 0)
	if got := pe.DropProbability() - before; got > 0.02+1e-9 {
		t.Errorf("Δp = %v, want capped at 0.02", got)
	}
}

func TestPIEDecayWhenIdle(t *testing.T) {
	cfg := BarePIEConfig()
	cfg.Decay = true
	cfg.Estimator = EstimateBySojourn
	pe := newTestPIE(cfg)
	pe.core.SetP(0.5)
	q := &fakeQueue{} // empty queue
	pe.Update(q, 0)   // records qdelay 0 (prev also 0 ⇒ decay applies)
	p1 := pe.DropProbability()
	if p1 >= 0.5 {
		t.Fatalf("decay did not shrink p: %v", p1)
	}
	// Repeated idle updates decay toward 0. The PI integral term also
	// subtracts; either way p must approach 0.
	for i := 0; i < 2000; i++ {
		pe.Update(q, time.Duration(i)*32*time.Millisecond)
	}
	if pe.DropProbability() > 1e-3 {
		t.Errorf("p = %v after long idle, want ~0", pe.DropProbability())
	}
}

func TestBarePIEDisablesHeuristics(t *testing.T) {
	cfg := BarePIEConfig()
	if cfg.BurstAllowance != 0 || cfg.Suppress || cfg.DeltaCap || cfg.BigDropCap || cfg.Decay || cfg.MinBacklog != 0 {
		t.Errorf("bare-PIE has heuristics enabled: %+v", cfg)
	}
	if !cfg.AutoTune {
		t.Error("bare-PIE must keep auto-tune (it is PIE's defining scaling)")
	}
	if newTestPIE(cfg).Name() != "bare-pie" {
		t.Error("bare-PIE name")
	}
	if newTestPIE(DefaultPIEConfig()).Name() != "pie" {
		t.Error("PIE name")
	}
}

func TestPIEConvergesToTargetDelayInput(t *testing.T) {
	// Feed the controller a queue that tracks p: a crude closed loop
	// emulating W ∝ 1/√p Reno load. The controller must settle with the
	// delay near target rather than oscillating unboundedly.
	cfg := DefaultPIEConfig()
	cfg.Estimator = EstimateBySojourn
	pe := newTestPIE(cfg)
	q := &fakeQueue{bytes: 1 << 20}
	delay := 100 * time.Millisecond
	for i := 0; i < 3000; i++ {
		q.sojourn = delay
		pe.Update(q, time.Duration(i)*32*time.Millisecond)
		p := pe.DropProbability()
		// Load model: queue shrinks when p is above the equilibrium
		// 0.01 and grows when below.
		adj := time.Duration((0.01 - p) * 3e9 * 0.032)
		delay += adj
		if delay < 0 {
			delay = 0
		}
	}
	if d := delay; d < 5*time.Millisecond || d > 80*time.Millisecond {
		t.Errorf("loop settled at %v, want near 20 ms target", d)
	}
}

func TestPIEBytemodeScalesBySize(t *testing.T) {
	cfg := BarePIEConfig()
	cfg.Bytemode = true
	pe := newTestPIE(cfg)
	pe.core.SetP(0.2)
	q := &fakeQueue{bytes: 1 << 20}
	count := func(wireLen int) int {
		drops := 0
		for i := 0; i < 20000; i++ {
			p := packet.NewData(1, 0, wireLen-packet.HeaderLen, packet.NotECT)
			if pe.Enqueue(p, q, 0) == Drop {
				drops++
			}
		}
		return drops
	}
	full := count(packet.FullLen)
	small := count(packet.FullLen / 4)
	if small >= full/2 {
		t.Errorf("bytemode: small-packet drops %d not well below full-size %d", small, full)
	}
	// Full-size packets see the unscaled probability.
	if got := float64(full) / 20000; math.Abs(got-0.2) > 0.02 {
		t.Errorf("full-size drop rate %.3f, want ~0.2", got)
	}
}
