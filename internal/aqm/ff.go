package aqm

import (
	"time"

	"pi2/internal/packet"
)

// FastForwarder is implemented by AQMs that support analytic fast-forward:
// during a quiescent epoch the ff engine feeds them synthetic per-packet
// decisions and control-law updates instead of real enqueue samples.
//
// The contract is exact equivalence with the packet path: FFDecide must make
// the same RNG draws (same count, same order, same thresholds) Enqueue would
// make for a packet with the given ECN codepoint, and FFUpdate must step the
// control law exactly as Update would for the given queue-delay observation.
// The implementations in this repository guarantee this structurally —
// Enqueue and Update are thin wrappers over FFDecide and FFUpdate — so an
// epoch's mark/drop counts are drawn from the same stream packet mode would
// have used, and exiting fast-forward re-enters packet mode with a
// byte-reproducible RNG state.
type FastForwarder interface {
	// FFDecide renders the per-packet verdict for a synthetic arrival with
	// the given ECN codepoint, wire length and current backlog, consuming
	// exactly the draws Enqueue would.
	FFDecide(ecn packet.ECN, wireLen, backlogBytes int) Verdict
	// FFUpdate steps the control law with a synthetic queue-delay
	// observation (no QueueInfo: during an epoch the queue is fluid).
	FFUpdate(qdelay time.Duration)
	// FFShift translates any internal absolute timestamps by delta when the
	// simulator clock jumps over an epoch (e.g. a departure-rate
	// measurement cycle in progress).
	FFShift(delta time.Duration)
	// FFTarget exposes the controller's queue-delay reference, which the ff
	// engine uses for its entry/stay band around the operating point.
	FFTarget() time.Duration
}

// FFShift translates an in-progress measurement cycle's start time; called
// when the simulation clock jumps over a fast-forwarded epoch so the cycle's
// elapsed time stays what it was at entry.
func (d *DepartRateEstimator) FFShift(delta time.Duration) {
	if d.inCycle {
		d.start += delta
	}
}

// --- PI ---

var _ FastForwarder = (*PI)(nil)

// FFDecide implements FastForwarder; Enqueue delegates here.
func (pi *PI) FFDecide(ecn packet.ECN, _, _ int) Verdict {
	if pi.rng.Float64() >= pi.core.P() {
		return Accept
	}
	if pi.cfg.ECN && ecn.ECNCapable() {
		return Mark
	}
	return Drop
}

// FFUpdate implements FastForwarder; Update delegates here after estimating
// the delay from live queue state.
func (pi *PI) FFUpdate(qdelay time.Duration) { pi.core.Update(qdelay) }

// FFShift implements FastForwarder.
func (pi *PI) FFShift(delta time.Duration) { pi.rate.FFShift(delta) }

// FFTarget implements FastForwarder.
func (pi *PI) FFTarget() time.Duration { return pi.cfg.Target }

// --- PIE ---

var _ FastForwarder = (*PIE)(nil)

// FFDecide implements FastForwarder: PIE's drop_early decision with every
// heuristic gate, fed synthetic arrival parameters. Enqueue delegates here.
func (pe *PIE) FFDecide(ecn packet.ECN, wireLen, backlogBytes int) Verdict {
	prob := pe.core.P()
	if pe.cfg.Bytemode {
		prob *= float64(wireLen) / float64(packet.FullLen)
	}
	if pe.burst > 0 {
		return Accept
	}
	if pe.cfg.Suppress && pe.qdelay < pe.cfg.Target/2 && prob < 0.2 {
		return Accept
	}
	if pe.cfg.MinBacklog > 0 && backlogBytes <= pe.cfg.MinBacklog {
		return Accept
	}
	if pe.cfg.Derandomize {
		pe.accuProb += prob
		if pe.accuProb < 0.85 {
			return Accept
		}
		if pe.accuProb >= 8.5 {
			pe.accuProb = 0
			return pe.signal(ecn)
		}
	}
	if pe.rng.Float64() >= prob {
		return Accept
	}
	pe.accuProb = 0
	return pe.signal(ecn)
}

// FFUpdate implements FastForwarder: one control-law step with PIE's scaling
// and caps, fed a queue-delay observation directly. Update delegates here
// after running the configured delay estimator.
func (pe *PIE) FFUpdate(qdelay time.Duration) {
	prevDelay := pe.core.PrevDelay()
	prob := pe.core.P()

	delta := pe.core.Delta(qdelay)
	if pe.cfg.AutoTune {
		delta *= AutoTuneFactor(prob)
	}
	if pe.cfg.DeltaCap && prob >= 0.1 && delta > 0.02 {
		delta = 0.02
	}
	if pe.cfg.BigDropCap && qdelay > 250*time.Millisecond {
		delta = 0.02
	}
	prob = pe.core.Apply(delta, qdelay)

	if pe.cfg.Decay && qdelay == 0 && prevDelay == 0 {
		pe.core.SetP(prob * 0.98)
	}

	// Burst-allowance bookkeeping.
	if pe.burst > 0 {
		pe.burst -= pe.cfg.Tupdate
		if pe.burst < 0 {
			pe.burst = 0
		}
	} else if pe.cfg.BurstAllowance > 0 &&
		pe.core.P() == 0 && qdelay < pe.cfg.Target/2 && prevDelay < pe.cfg.Target/2 {
		pe.burst = pe.cfg.BurstAllowance
	}
	pe.qdelay = qdelay
}

// FFShift implements FastForwarder.
func (pe *PIE) FFShift(delta time.Duration) { pe.rate.FFShift(delta) }

// FFTarget implements FastForwarder.
func (pe *PIE) FFTarget() time.Duration { return pe.cfg.Target }
