package aqm

import (
	"math"
	"math/rand"
	"time"

	"pi2/internal/packet"
)

// CurvyREDConfig parametrizes Curvy RED — the example coupled AQM given in
// the DualQ Coupled draft the paper cites ([13]); PI2 was proposed as the
// better-behaved alternative. Curvy RED derives its probabilities directly
// from the instantaneous queuing delay with a convex ("curvy") ramp instead
// of running a controller:
//
//	ramp  = clamp((τ − MinTh) / (MaxTh − MinTh), 0, 1)
//	p_s   = ramp            (Scalable marking, linear)
//	p_c   = ramp^Curviness  (Classic drop/mark)
//
// With Curviness = 2 the Classic signal is the square of the Scalable one,
// the same coupling law as PI2 — but anchored to queue position like RED,
// so it pushes back with standing delay rather than holding a target.
type CurvyREDConfig struct {
	// MinTh and MaxTh bound the delay ramp (defaults 5 ms and 100 ms).
	MinTh, MaxTh time.Duration
	// Curviness is the Classic exponent U (default 2).
	Curviness float64
	// Smoothing is the EWMA weight applied to the delay estimate per
	// enqueue for the Classic signal (default 1/32; the Scalable signal
	// is unsmoothed, as the draft specifies for immediate L4S marking).
	Smoothing float64
	// Estimator selects delay measurement (default head sojourn).
	Estimator DelayEstimator
}

func (c *CurvyREDConfig) setDefaults() {
	if c.MinTh == 0 {
		c.MinTh = 5 * time.Millisecond
	}
	if c.MaxTh == 0 {
		c.MaxTh = 100 * time.Millisecond
	}
	if c.Curviness == 0 {
		c.Curviness = 2
	}
	if c.Smoothing == 0 {
		c.Smoothing = 1.0 / 32
	}
}

// CurvyRED is the coupled ramp AQM.
type CurvyRED struct {
	cfg      CurvyREDConfig
	rng      *rand.Rand
	avgDelay float64 // seconds, EWMA for the Classic signal
	lastPc   float64
	lastPs   float64
}

// NewCurvyRED builds a Curvy RED instance.
func NewCurvyRED(cfg CurvyREDConfig, rng *rand.Rand) *CurvyRED {
	cfg.setDefaults()
	return &CurvyRED{cfg: cfg, rng: rng}
}

// Name implements AQM.
func (c *CurvyRED) Name() string { return "curvy-red" }

// DropProbability implements ProbabilityReporter.
func (c *CurvyRED) DropProbability() float64 { return c.lastPc }

// ScalableProbability implements ScalableReporter.
func (c *CurvyRED) ScalableProbability() float64 { return c.lastPs }

func (c *CurvyRED) ramp(delay time.Duration) float64 {
	if delay <= c.cfg.MinTh {
		return 0
	}
	if delay >= c.cfg.MaxTh {
		return 1
	}
	return float64(delay-c.cfg.MinTh) / float64(c.cfg.MaxTh-c.cfg.MinTh)
}

// Enqueue implements AQM: instantaneous ramp for Scalable packets, smoothed
// curvy ramp for Classic packets.
func (c *CurvyRED) Enqueue(p *packet.Packet, q QueueInfo, now time.Duration) Verdict {
	delay := EstimateDelay(c.cfg.Estimator, q, nil, now)
	c.avgDelay += c.cfg.Smoothing * (delay.Seconds() - c.avgDelay)

	if p.ECN.Scalable() {
		ps := c.ramp(delay)
		c.lastPs = ps
		if c.rng.Float64() < ps {
			return Mark
		}
		return Accept
	}
	pc := math.Pow(c.ramp(time.Duration(c.avgDelay*float64(time.Second))), c.cfg.Curviness)
	c.lastPc = pc
	if c.rng.Float64() >= pc {
		return Accept
	}
	if p.ECN == packet.ECT0 {
		return Mark
	}
	return Drop
}

// Dequeue implements AQM.
func (c *CurvyRED) Dequeue(*packet.Packet, QueueInfo, time.Duration) {}

// UpdateInterval implements AQM (ramp AQMs need no timer).
func (c *CurvyRED) UpdateInterval() time.Duration { return 0 }

// Update implements AQM.
func (c *CurvyRED) Update(QueueInfo, time.Duration) {}

// StepMarkConfig parametrizes the step-threshold marker DCTCP was designed
// for: every ECN-capable packet is CE-marked while the queuing delay
// exceeds Threshold. Appendix A derives W = 2/p² for DCTCP under this
// on-off marking (equation (12)) versus W = 2/p under probabilistic
// marking (equation (11)) — the contrast that motivates driving Scalable
// traffic from the PI controller's evenly distributed marks.
type StepMarkConfig struct {
	// Threshold is the marking step (default 1 ms).
	Threshold time.Duration
	// Estimator selects delay measurement (default head sojourn).
	Estimator DelayEstimator
}

// StepMark is the step-threshold marking AQM.
type StepMark struct {
	cfg   StepMarkConfig
	marks int
}

// NewStepMark builds a step marker.
func NewStepMark(cfg StepMarkConfig) *StepMark {
	if cfg.Threshold == 0 {
		cfg.Threshold = time.Millisecond
	}
	return &StepMark{cfg: cfg}
}

// Name implements AQM.
func (s *StepMark) Name() string { return "step" }

// Enqueue implements AQM: mark ECN-capable packets above the step;
// Not-ECT packets are never dropped (rely on the buffer limit).
func (s *StepMark) Enqueue(p *packet.Packet, q QueueInfo, now time.Duration) Verdict {
	if !p.ECN.ECNCapable() {
		return Accept
	}
	if EstimateDelay(s.cfg.Estimator, q, nil, now) > s.cfg.Threshold {
		s.marks++
		return Mark
	}
	return Accept
}

// Marks returns the total marks applied.
func (s *StepMark) Marks() int { return s.marks }

// Dequeue implements AQM.
func (s *StepMark) Dequeue(*packet.Packet, QueueInfo, time.Duration) {}

// UpdateInterval implements AQM.
func (s *StepMark) UpdateInterval() time.Duration { return 0 }

// Update implements AQM.
func (s *StepMark) Update(QueueInfo, time.Duration) {}
