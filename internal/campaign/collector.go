package campaign

import (
	"encoding/json"
	"io"
	"sync"
)

// Collector accumulates every RunRecord produced across a CLI invocation in
// deterministic matrix order, regardless of the (parallelism-dependent)
// order cells complete in. Execute calls begin(n) at the start of each
// matrix and add once per record; records buffer only until their turn in
// (segment, index) order comes up, then flush — either into the retained
// slice (zero-value Collector, for golden capture and tests) or straight to
// a streaming sink (NewStreamingCollector, for -json), which retains
// nothing. The streaming mode is what keeps a fleet coordinator's heap
// proportional to the out-of-order window (bounded by worker count), not
// the grid.
type Collector struct {
	mu      sync.Mutex
	recs    []RunRecord       // flushed records (retained mode only)
	w       io.Writer         // streaming sink; nil = retained mode
	werr    error             // first sink write error
	wrote   int               // records written to w so far
	pending map[int]RunRecord // out-of-order buffer, keyed by in-segment index
	next    int               // next in-segment index to flush
	size    int               // current segment's cell count
}

// NewStreamingCollector returns a Collector that writes each record to w as
// one element of an indented JSON array, in matrix order, retaining nothing.
// Close terminates the array.
func NewStreamingCollector(w io.Writer) *Collector {
	return &Collector{w: w}
}

// begin opens a new segment of n cells. Execute waits for every cell before
// returning, so the previous segment is always fully flushed by the time
// the next experiment's matrix starts; any leftovers (a dispatcher bug)
// flush in index order rather than being dropped.
func (c *Collector) begin(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.pending) > 0 {
		c.flushLocked()
		if _, ok := c.pending[c.next]; !ok && len(c.pending) > 0 {
			c.next++ // skip holes so stragglers still drain deterministically
		}
	}
	c.next = 0
	c.size = n
}

func (c *Collector) add(r RunRecord) {
	c.mu.Lock()
	if c.pending == nil {
		c.pending = make(map[int]RunRecord)
	}
	c.pending[r.Index] = r
	c.flushLocked()
	c.mu.Unlock()
}

// flushLocked drains the pending buffer in index order as far as it goes.
func (c *Collector) flushLocked() {
	for {
		rec, ok := c.pending[c.next]
		if !ok {
			return
		}
		delete(c.pending, c.next)
		c.next++
		if c.w == nil {
			c.recs = append(c.recs, rec)
			continue
		}
		if c.werr != nil {
			continue
		}
		b, err := json.MarshalIndent(rec, "  ", "  ")
		if err == nil {
			head := ",\n  "
			if c.wrote == 0 {
				head = "[\n  "
			}
			_, err = io.WriteString(c.w, head+string(b))
		}
		if err != nil {
			c.werr = err
			continue
		}
		c.wrote++
	}
}

// Records returns a copy of everything collected so far, in matrix order.
// A streaming collector retains nothing and returns nil.
func (c *Collector) Records() []RunRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]RunRecord(nil), c.recs...)
}

// Pending reports how many records are buffered waiting for earlier matrix
// indices — the streaming mode's peak retention (tests assert it stays
// bounded by the in-flight window).
func (c *Collector) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Close terminates a streaming collector's JSON array and reports the first
// sink write error. On a retained collector it is a no-op.
func (c *Collector) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.w == nil {
		return nil
	}
	var err error
	if c.wrote == 0 {
		_, err = io.WriteString(c.w, "[]\n")
	} else {
		_, err = io.WriteString(c.w, "\n]\n")
	}
	if c.werr == nil {
		c.werr = err
	}
	return c.werr
}

// WriteJSON serializes the retained records as an indented JSON array (the
// pre-streaming -json format; golden capture and tests still use it).
func (c *Collector) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c.Records())
}
