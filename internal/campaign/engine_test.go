package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

type countedResult struct {
	Value  int
	events uint64
}

func (c countedResult) EventCount() uint64 { return c.events }

func squares(n int) []Task {
	tasks := make([]Task, n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = Task{
			Name:      fmt.Sprintf("sq/%d", i),
			SeedIndex: i,
			Params:    map[string]any{"i": i},
			Run: func(tc *TaskCtx) any {
				return countedResult{Value: i * i, events: uint64(100 + i)}
			},
		}
	}
	return tasks
}

func TestExecuteOrderIndependentOfJobs(t *testing.T) {
	tasks := squares(17)
	var prev []RunRecord
	for _, jobs := range []int{1, 2, 5, 32} {
		recs := Execute(tasks, ExecOptions{Jobs: jobs, BaseSeed: 42})
		if len(recs) != len(tasks) {
			t.Fatalf("jobs=%d: %d records", jobs, len(recs))
		}
		for i, r := range recs {
			if r.Index != i || r.Result.(countedResult).Value != i*i {
				t.Fatalf("jobs=%d: record %d out of order: %+v", jobs, i, r)
			}
			if r.Seed != DeriveSeed(42, i) {
				t.Fatalf("jobs=%d: record %d seed %d", jobs, i, r.Seed)
			}
			if r.Events != uint64(100+i) {
				t.Fatalf("jobs=%d: record %d events %d", jobs, i, r.Events)
			}
		}
		if prev != nil {
			for i := range recs {
				if recs[i].Seed != prev[i].Seed ||
					!reflect.DeepEqual(recs[i].Result, prev[i].Result) {
					t.Fatalf("jobs=%d: record %d differs from previous worker count", jobs, i)
				}
			}
		}
		prev = recs
	}
}

func TestDeriveSeedProperties(t *testing.T) {
	seen := map[int64]bool{}
	for _, base := range []int64{0, 1, 2, 77, -5} {
		for i := 0; i < 100; i++ {
			s := DeriveSeed(base, i)
			if s == 0 {
				t.Fatalf("DeriveSeed(%d,%d) = 0", base, i)
			}
			if s != DeriveSeed(base, i) {
				t.Fatalf("DeriveSeed(%d,%d) unstable", base, i)
			}
			if seen[s] {
				t.Fatalf("DeriveSeed collision at base=%d i=%d", base, i)
			}
			seen[s] = true
		}
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Error("different bases produced the same seed")
	}
}

func TestExecutePanicFailsOneCellOnly(t *testing.T) {
	tasks := squares(5)
	tasks[2].Run = func(tc *TaskCtx) any { panic("boom") }
	recs := Execute(tasks, ExecOptions{Jobs: 3, BaseSeed: 1})
	for i, r := range recs {
		if i == 2 {
			if r.Err == "" || !strings.Contains(r.Err, "boom") {
				t.Errorf("cell 2: want captured panic, got %q", r.Err)
			}
			if r.Result != nil {
				t.Errorf("cell 2: result should be nil, got %v", r.Result)
			}
			continue
		}
		if r.Err != "" {
			t.Errorf("cell %d: unexpected error %q", i, r.Err)
		}
		if r.Result.(countedResult).Value != i*i {
			t.Errorf("cell %d: wrong result", i)
		}
	}
}

func TestExecuteProgressAndCollector(t *testing.T) {
	var calls atomic.Int64
	col := &Collector{}
	tasks := squares(9)
	Execute(tasks, ExecOptions{
		Jobs:     4,
		BaseSeed: 7,
		Progress: func(done, total int, rec RunRecord) {
			if total != 9 || done < 1 || done > 9 {
				t.Errorf("progress done=%d total=%d", done, total)
			}
			calls.Add(1)
		},
		Collector: col,
	})
	if calls.Load() != 9 {
		t.Errorf("progress called %d times, want 9", calls.Load())
	}
	if got := len(col.Records()); got != 9 {
		t.Errorf("collector holds %d records, want 9", got)
	}

	var buf bytes.Buffer
	if err := col.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []RunRecord
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("collector JSON does not round-trip: %v", err)
	}
	if len(decoded) != 9 {
		t.Errorf("decoded %d records", len(decoded))
	}
}

func TestExecutePairedSeedIndex(t *testing.T) {
	// Two arms sharing a SeedIndex must receive the same seed (the PIE vs
	// PI2 paired-comparison pattern).
	tasks := []Task{
		{Name: "a", SeedIndex: 0, Run: func(tc *TaskCtx) any { return tc.Seed }},
		{Name: "b", SeedIndex: 0, Run: func(tc *TaskCtx) any { return tc.Seed }},
		{Name: "c", SeedIndex: 1, Run: func(tc *TaskCtx) any { return tc.Seed }},
	}
	recs := Execute(tasks, ExecOptions{Jobs: 2, BaseSeed: 5})
	if recs[0].Result != recs[1].Result {
		t.Error("paired arms got different seeds")
	}
	if recs[0].Result == recs[2].Result {
		t.Error("distinct seed indices got the same seed")
	}
}

func TestRegistry(t *testing.T) {
	run := func(ctx *Context, w io.Writer) error { return nil }
	Register(Experiment{Name: "test-exp-a", InAll: true, Run: run})
	Register(Experiment{Name: "test-exp-b", Run: run})

	if _, ok := Lookup("test-exp-a"); !ok {
		t.Fatal("registered experiment not found")
	}
	if _, ok := Lookup("no-such"); ok {
		t.Fatal("unknown name resolved")
	}
	names := Names()
	all := AllNames()
	has := func(xs []string, want string) bool {
		for _, x := range xs {
			if x == want {
				return true
			}
		}
		return false
	}
	if !has(names, "test-exp-a") || !has(names, "test-exp-b") {
		t.Error("Names missing registrations")
	}
	if !has(all, "test-exp-a") || has(all, "test-exp-b") {
		t.Errorf("AllNames wrong: %v", all)
	}

	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(Experiment{Name: "test-exp-a", Run: run})
}

func TestContextMemo(t *testing.T) {
	ctx := &Context{}
	n := 0
	for i := 0; i < 3; i++ {
		v := ctx.Memo("k", func() any { n++; return 42 })
		if v.(int) != 42 {
			t.Fatalf("memo value %v", v)
		}
	}
	if n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
}
