package campaign

import (
	"bytes"
	"encoding/gob"
	"time"
)

// The fleet protocol moves RunRecords between processes as gob blobs, not
// JSON: Result is an `any` holding driver-defined structs (gob carries the
// concrete type, JSON would flatten it), Params maps hold ints that JSON
// would round-trip into float64s (breaking `.(int)` assertions in
// aggregation), and gob preserves float64 bits exactly — which the
// byte-identity contract between -workers and -jobs depends on.

func init() {
	// Concrete types that travel inside `any` fields (Params values,
	// Result). Driver result types register themselves next to their
	// task sources; these are the engine-level ones.
	gob.Register(time.Duration(0))
	gob.Register(map[string]any{})
	gob.Register([]any{})
}

// RegisterWireType records a concrete type that may appear in a
// RunRecord's Result or Params when crossing the fleet protocol. Drivers
// call it at init next to RegisterSource.
func RegisterWireType(v any) { gob.Register(v) }

// EncodeRecord serializes one RunRecord for the fleet protocol.
func EncodeRecord(rec *RunRecord) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeRecord reverses EncodeRecord.
func DecodeRecord(data []byte) (RunRecord, error) {
	var rec RunRecord
	err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rec)
	return rec, err
}
