package campaign

import (
	"io"
	"sync"
	"time"
)

// Experiment is a named, self-printing experiment — one table or figure of
// the paper (or an extension). Drivers register themselves at init time;
// the CLIs dispatch by name.
type Experiment struct {
	// Name is the CLI-facing identifier, e.g. "fig15" or "sweep".
	Name string
	// Desc is a one-line description for usage listings.
	Desc string
	// InAll marks experiments that "all" should run. Redundant views of a
	// shared grid (fig15–fig18 are all printed by "sweep") leave it false.
	InAll bool
	// Run executes the experiment and writes its tables to w.
	Run func(ctx *Context, w io.Writer) error
}

var (
	regMu    sync.RWMutex
	registry = map[string]Experiment{}
	regOrder []string
)

// Register adds an experiment to the registry. It panics on duplicate or
// unnamed registrations — both are programming errors caught at init.
func Register(e Experiment) {
	if e.Name == "" || e.Run == nil {
		panic("campaign: Register requires a Name and a Run func")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[e.Name]; dup {
		panic("campaign: duplicate experiment " + e.Name)
	}
	registry[e.Name] = e
	regOrder = append(regOrder, e.Name)
}

// Lookup resolves an experiment by name.
func Lookup(name string) (Experiment, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// Names returns every registered name in registration order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), regOrder...)
}

// AllNames returns the registration-ordered names with InAll set — the
// expansion of the CLI's "all" argument.
func AllNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	var out []string
	for _, n := range regOrder {
		if registry[n].InAll {
			out = append(out, n)
		}
	}
	return out
}

// Context carries one invocation's knobs to every experiment it runs, plus
// a memo table so experiments sharing a grid (fig15–fig18 all consume the
// coexistence sweep) compute it once per invocation.
type Context struct {
	// Quick scales experiment durations down (~5x), as in the drivers.
	Quick bool
	// TimeDiv, when > 0, divides experiment durations by this factor
	// instead of Quick's fixed 5x — the golden-regression harness runs
	// every experiment at a deeper reduction (still deterministic).
	TimeDiv int
	// Seed is the campaign base seed; per-run seeds derive from it.
	Seed int64
	// Jobs is the worker-pool width passed to Execute.
	Jobs int
	// Shards is the per-cell simulation shard count passed through
	// ExecOptions to every TaskCtx (0/1 = classic single event loop).
	Shards int
	// FastForward passes the hybrid fluid/packet switch through
	// ExecOptions to every TaskCtx (the CLI's -ff flag).
	FastForward bool
	// Reps repeats each table cell with perturbed seeds and reports
	// cross-seed confidence bands; 0/1 keeps the single-run tables.
	Reps int
	// TargetMs overrides the AQM target delay (milliseconds) in the
	// experiments that default to the paper's 20 ms; 0 keeps the default.
	TargetMs int
	// Progress, if set, observes every completed run.
	Progress ProgressFunc
	// Collector, if set, accumulates every RunRecord for -json output.
	Collector *Collector
	// Watchdog bounds each cell's attempts (zero = unsupervised).
	Watchdog Watchdog
	// Retries re-runs failed cells with perturbed seeds; RetryBackoff is
	// the doubling wait between attempts.
	Retries      int
	RetryBackoff time.Duration
	// Dispatch, if set, routes every family with a registered task source
	// through a fleet of worker processes (the CLI's -workers flag).
	Dispatch Dispatcher
	// Journal, if set, records every fresh final RunRecord so a crashed
	// invocation can be resumed (the CLI's -journal flag).
	Journal JournalSink
	// Resume, if set, replays a previous journal's completed cells
	// instead of re-running them (the CLI's -resume flag).
	Resume ResumeSet

	mu   sync.Mutex
	memo map[string]any
}

// Memo returns the cached value for key, computing and caching it on first
// use. compute runs outside the lock; experiments within one invocation run
// sequentially, so a key is never computed twice.
func (c *Context) Memo(key string, compute func() any) any {
	c.mu.Lock()
	if v, ok := c.memo[key]; ok {
		c.mu.Unlock()
		return v
	}
	c.mu.Unlock()
	v := compute()
	c.mu.Lock()
	if c.memo == nil {
		c.memo = make(map[string]any)
	}
	c.memo[key] = v
	c.mu.Unlock()
	return v
}
