package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func collectorRec(i int) RunRecord {
	return RunRecord{Name: "cell", Index: i, Seed: int64(i)}
}

// TestCollectorOrdersConcurrentArrivals hammers the collector from many
// goroutines delivering a shuffled index permutation — the fleet's actual
// arrival pattern — and requires the retained records to come out in
// exact matrix order. Run under -race this is also the safety proof.
func TestCollectorOrdersConcurrentArrivals(t *testing.T) {
	const n, writers = 500, 8
	col := &Collector{}
	col.begin(n)
	idx := rand.New(rand.NewSource(1)).Perm(n)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := w; j < n; j += writers {
				col.add(collectorRec(idx[j]))
			}
		}()
	}
	wg.Wait()
	recs := col.Records()
	if len(recs) != n {
		t.Fatalf("got %d records, want %d", len(recs), n)
	}
	for i, rec := range recs {
		if rec.Index != i {
			t.Fatalf("record %d has index %d; collector broke matrix order", i, rec.Index)
		}
	}
	if p := col.Pending(); p != 0 {
		t.Errorf("%d records still pending after full delivery", p)
	}
}

// TestStreamingCollectorBoundedRetention feeds a streaming collector
// arrivals whose out-of-order distance is bounded by the in-flight window
// — the pattern W workers completing similar-duration cells produce — and
// asserts peak buffering never exceeds that window: the coordinator's
// heap is O(workers), not O(cells), while the sink still receives every
// record in matrix order.
func TestStreamingCollectorBoundedRetention(t *testing.T) {
	const n, window = 400, 4
	var buf bytes.Buffer
	col := NewStreamingCollector(&buf)
	col.begin(n)

	rng := rand.New(rand.NewSource(2))
	peak := 0
	for block := 0; block < n; block += window {
		order := rng.Perm(window)
		for _, k := range order {
			col.add(collectorRec(block + k))
			if p := col.Pending(); p > peak {
				peak = p
			}
		}
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	if peak > window {
		t.Errorf("peak retention %d records exceeds the %d-worker window", peak, window)
	}
	if col.Records() != nil {
		t.Error("streaming collector retained records")
	}
	var got []RunRecord
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("sink output is not a JSON array: %v", err)
	}
	if len(got) != n {
		t.Fatalf("sink got %d records, want %d", len(got), n)
	}
	for i, rec := range got {
		if rec.Index != i {
			t.Fatalf("sink record %d has index %d", i, rec.Index)
		}
	}
}

// TestStreamingCollectorThroughExecute exercises the real pipeline: a
// parallel Execute writing through a streaming collector must emit a
// valid JSON array in matrix order across consecutive segments.
func TestStreamingCollectorThroughExecute(t *testing.T) {
	var buf bytes.Buffer
	col := NewStreamingCollector(&buf)
	mkTasks := func(n int) []Task {
		tasks := make([]Task, n)
		for i := range tasks {
			i := i
			tasks[i] = Task{
				Name: "seg", SeedIndex: i,
				Run: func(tc *TaskCtx) any { return fmt.Sprintf("v%d", i) },
			}
		}
		return tasks
	}
	Execute(mkTasks(40), ExecOptions{Jobs: 8, BaseSeed: 1, Collector: col})
	Execute(mkTasks(15), ExecOptions{Jobs: 8, BaseSeed: 1, Collector: col})
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	var got []RunRecord
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("sink output is not a JSON array: %v", err)
	}
	if len(got) != 55 {
		t.Fatalf("sink got %d records, want 55", len(got))
	}
	for i, rec := range got {
		want := i
		if i >= 40 {
			want = i - 40
		}
		if rec.Index != want {
			t.Fatalf("record %d has index %d, want %d", i, rec.Index, want)
		}
	}
}
