package campaign

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSim stands in for *sim.Simulator in watchdog tests: a Canceler whose
// virtual clock the test controls. Spinning tasks poll canceled and unwind
// with a cancelPanic, mimicking sim.Step's cooperative-cancellation check.
type fakeSim struct {
	canceled atomic.Bool
	reason   atomic.Value // string
	now      atomic.Int64
}

func (f *fakeSim) Cancel(reason string) {
	f.reason.Store(reason)
	f.canceled.Store(true)
}

func (f *fakeSim) NowNanos() int64 { return f.now.Load() }

// cancelPanic mirrors sim.Canceled: the marker interface execAttempt
// classifies as a watchdog timeout.
type cancelPanic struct{ reason string }

func (c cancelPanic) CancelReason() string { return c.reason }

// spinUntilCanceled busy-loops like a wedged-but-cooperative simulation:
// virtual time may or may not advance, and the loop unwinds as soon as the
// watchdog cancels it.
func spinUntilCanceled(f *fakeSim, advance bool) {
	for !f.canceled.Load() {
		if advance {
			f.now.Add(int64(time.Millisecond))
		}
		time.Sleep(time.Millisecond)
	}
	panic(cancelPanic{reason: f.reason.Load().(string)})
}

// TestWatchdogTimeoutRetryPartialGrid is the headline robustness scenario:
// one cell hangs on its first attempt, is killed by the wall-clock watchdog,
// retried with a perturbed seed, and succeeds — while the rest of the grid
// completes untouched. The grid returns a full set of records either way.
func TestWatchdogTimeoutRetryPartialGrid(t *testing.T) {
	var seeds [2]int64
	tasks := []Task{
		{Name: "healthy", SeedIndex: 0, Run: func(tc *TaskCtx) any { return "ok" }},
		{Name: "hangs-once", SeedIndex: 1, Run: func(tc *TaskCtx) any {
			seeds[tc.Attempt] = tc.Seed
			if tc.Attempt == 0 {
				f := &fakeSim{}
				tc.Watch(f)
				spinUntilCanceled(f, true) // virtual clock advances: no stall, pure timeout
			}
			return "recovered"
		}},
		{Name: "healthy2", SeedIndex: 2, Run: func(tc *TaskCtx) any { return "ok" }},
	}
	recs := Execute(tasks, ExecOptions{
		Jobs: 2, BaseSeed: 7,
		Watchdog: Watchdog{Timeout: 100 * time.Millisecond, Poll: 5 * time.Millisecond},
		Retries:  1,
	})
	if len(recs) != 3 {
		t.Fatalf("%d records", len(recs))
	}
	for _, i := range []int{0, 2} {
		if recs[i].Err != "" || recs[i].Attempts != 1 {
			t.Errorf("healthy cell %d: err=%q attempts=%d", i, recs[i].Err, recs[i].Attempts)
		}
	}
	hung := recs[1]
	if hung.Err != "" {
		t.Fatalf("retried cell still failed: %q", hung.Err)
	}
	if hung.Attempts != 2 {
		t.Errorf("attempts %d, want 2", hung.Attempts)
	}
	if hung.Result != "recovered" {
		t.Errorf("result %v", hung.Result)
	}
	base := DeriveSeed(7, 1)
	if seeds[0] != base {
		t.Errorf("attempt 0 seed %d, want unperturbed %d", seeds[0], base)
	}
	if seeds[1] != PerturbSeed(base, 1) || seeds[1] == seeds[0] {
		t.Errorf("attempt 1 seed %d, want PerturbSeed(%d,1)=%d", seeds[1], base, PerturbSeed(base, 1))
	}
}

// TestWatchdogStallDetection: a cell whose watched virtual clock stops
// advancing is killed by stall detection even though wall time is within
// the (absent) timeout budget.
func TestWatchdogStallDetection(t *testing.T) {
	tasks := []Task{{Name: "stalled", Run: func(tc *TaskCtx) any {
		f := &fakeSim{}
		f.now.Store(int64(42 * time.Second)) // frozen forever
		tc.Watch(f)
		spinUntilCanceled(f, false)
		return nil
	}}}
	recs := Execute(tasks, ExecOptions{
		Jobs: 1, BaseSeed: 1,
		Watchdog: Watchdog{Stall: 60 * time.Millisecond, Poll: 5 * time.Millisecond},
	})
	rec := recs[0]
	if !rec.TimedOut {
		t.Fatalf("stalled cell not marked TimedOut: %+v", rec)
	}
	if !strings.Contains(rec.Err, "stall") {
		t.Errorf("error %q does not name the stall", rec.Err)
	}
	if rec.Attempts != 1 {
		t.Errorf("attempts %d", rec.Attempts)
	}
}

// TestWatchdogNoStallWithoutWatchers: a slow cell that registers nothing via
// Watch must not be killed by stall detection — with no virtual clock to
// observe, "stalled" cannot be told from "busy".
func TestWatchdogNoStallWithoutWatchers(t *testing.T) {
	tasks := []Task{{Name: "slow", Run: func(tc *TaskCtx) any {
		time.Sleep(120 * time.Millisecond)
		return "done"
	}}}
	recs := Execute(tasks, ExecOptions{
		Jobs: 1, BaseSeed: 1,
		Watchdog: Watchdog{Stall: 30 * time.Millisecond, Poll: 5 * time.Millisecond},
	})
	if recs[0].Err != "" || recs[0].Result != "done" {
		t.Errorf("unwatched slow cell killed: %+v", recs[0])
	}
}

// TestWatchdogAbandonsUnresponsive: a cell that ignores cooperative
// cancellation past the grace period is abandoned — recorded as timed out
// and, critically, never retried (its goroutine is still wedged).
func TestWatchdogAbandonsUnresponsive(t *testing.T) {
	var attempts atomic.Int32
	release := make(chan struct{})
	defer close(release) // unwedge the leaked goroutine at test end
	tasks := []Task{{Name: "wedged", Run: func(tc *TaskCtx) any {
		attempts.Add(1)
		<-release // ignores cancellation entirely
		return nil
	}}}
	recs := Execute(tasks, ExecOptions{
		Jobs: 1, BaseSeed: 1,
		Watchdog: Watchdog{
			Timeout: 40 * time.Millisecond,
			Poll:    5 * time.Millisecond,
			Grace:   50 * time.Millisecond,
		},
		Retries: 3,
	})
	rec := recs[0]
	if !rec.TimedOut || !strings.Contains(rec.Err, "unresponsive") {
		t.Fatalf("abandoned cell not reported: %+v", rec)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("abandoned cell ran %d attempts, want 1 (no retry of a wedged hang)", got)
	}
}

// TestRetryOnPanic: plain panics (not watchdog kills) are retried too, and
// a cell that keeps failing reports its last error after exhausting retries.
func TestRetryOnPanic(t *testing.T) {
	var runs atomic.Int32
	tasks := []Task{{Name: "flaky", Run: func(tc *TaskCtx) any {
		if runs.Add(1) < 3 {
			panic("transient")
		}
		return "third time lucky"
	}}}
	recs := Execute(tasks, ExecOptions{Jobs: 1, BaseSeed: 1, Retries: 2})
	if recs[0].Err != "" || recs[0].Result != "third time lucky" || recs[0].Attempts != 3 {
		t.Errorf("flaky cell: %+v", recs[0])
	}

	runs.Store(0)
	always := []Task{{Name: "doomed", Run: func(tc *TaskCtx) any {
		runs.Add(1)
		panic("permanent")
	}}}
	recs = Execute(always, ExecOptions{Jobs: 1, BaseSeed: 1, Retries: 2})
	if recs[0].Err == "" || !strings.Contains(recs[0].Err, "permanent") {
		t.Errorf("doomed cell err %q", recs[0].Err)
	}
	if recs[0].Attempts != 3 || runs.Load() != 3 {
		t.Errorf("doomed cell attempts=%d runs=%d, want 3", recs[0].Attempts, runs.Load())
	}
}

// TestPerturbSeedProperties: attempt 0 is the identity (first attempts are
// bit-identical to an unsupervised campaign); later attempts differ, are
// stable, and never produce the forbidden seed 0.
func TestPerturbSeedProperties(t *testing.T) {
	for _, seed := range []int64{1, 42, -7, 1 << 40} {
		if PerturbSeed(seed, 0) != seed {
			t.Errorf("PerturbSeed(%d, 0) != identity", seed)
		}
		seen := map[int64]bool{seed: true}
		for a := 1; a <= 5; a++ {
			s := PerturbSeed(seed, a)
			if s == 0 {
				t.Errorf("PerturbSeed(%d,%d) = 0", seed, a)
			}
			if s != PerturbSeed(seed, a) {
				t.Errorf("PerturbSeed(%d,%d) unstable", seed, a)
			}
			if seen[s] {
				t.Errorf("PerturbSeed(%d,%d) collides", seed, a)
			}
			seen[s] = true
		}
	}
}

// TestWatchCancelAfterVerdict: registering a Canceler after the cell was
// already canceled must cancel it immediately (the slow-construction race).
func TestWatchCancelAfterVerdict(t *testing.T) {
	tc := &TaskCtx{Seed: 1}
	tc.cancel("too late")
	f := &fakeSim{}
	tc.Watch(f)
	if !f.canceled.Load() {
		t.Fatal("late-registered canceler not canceled")
	}
	if got := f.reason.Load().(string); got != "too late" {
		t.Errorf("reason %q", got)
	}
}
