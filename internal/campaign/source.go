package campaign

import "sync"

// TaskSource rebuilds a task matrix from its serialized grid description.
// Closures cannot cross a process boundary, so the fleet protocol ships
// (family, spec) instead: the worker — the same binary — looks the family
// up here and reconstructs the identical []Task, closures included. The
// builder must be a pure function of spec: same bytes, same matrix, same
// order, or cell indices would name different work in different processes.
type TaskSource func(spec []byte) ([]Task, error)

var (
	srcMu  sync.RWMutex
	srcReg = map[string]TaskSource{}
)

// RegisterSource adds a task source under a family name. Like Register, it
// panics on duplicates — a programming error caught at init.
func RegisterSource(family string, src TaskSource) {
	if family == "" || src == nil {
		panic("campaign: RegisterSource requires a family and a source func")
	}
	srcMu.Lock()
	defer srcMu.Unlock()
	if _, dup := srcReg[family]; dup {
		panic("campaign: duplicate task source " + family)
	}
	srcReg[family] = src
}

// LookupSource resolves a task source by family name.
func LookupSource(family string) (TaskSource, bool) {
	srcMu.RLock()
	defer srcMu.RUnlock()
	s, ok := srcReg[family]
	return s, ok
}
