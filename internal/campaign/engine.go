// Package campaign turns the experiment layer into a declarative engine.
// Grid drivers describe their work as a matrix of independent Tasks; a
// bounded worker pool executes them and returns one RunRecord per task, in
// matrix order, regardless of how many workers ran or in what order cells
// finished. Named experiments register themselves (registry.go) so the CLIs
// dispatch from one table instead of a hand-written if-chain.
//
// Each task runs its own single-threaded sim.Simulator; only *runs* are
// concurrent, never the events inside one. Seeds derive from
// (base seed, seed index) alone, so a campaign's output is bit-identical at
// any worker count.
package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// Task is one independent run in a campaign matrix.
type Task struct {
	// Name identifies the experiment (and, after a slash, the cell's arm),
	// e.g. "sweep" or "fig12/pie".
	Name string
	// SeedIndex feeds seed derivation: the run executes with
	// DeriveSeed(base, SeedIndex). Matrices normally set it to the cell's
	// position; paired arms that must see identical traffic (PIE vs PI2 on
	// the same schedule) share one index.
	SeedIndex int
	// Params records the cell's coordinates for the serialized RunRecord.
	Params map[string]any
	// Run executes the cell with the derived seed and returns its result.
	// A panic fails this cell only; the rest of the grid completes.
	Run func(seed int64) any
}

// EventCounter lets Execute extract the simulated-event count from a run's
// result without depending on the experiments package.
type EventCounter interface{ EventCount() uint64 }

// MetricsReporter lets Execute reduce a run's result to a flat map of named
// scalar metrics — the statistical fingerprint the golden-regression harness
// compares against tolerance bands. Result types implement it next to
// EventCounter; Execute stores the metrics on the RunRecord so every -json
// dump and golden capture sees the same reduction.
type MetricsReporter interface{ Metrics() map[string]float64 }

// RunRecord is the structured outcome of one task: the cell's parameters,
// its result, and the execution metadata the scaling work keys on.
type RunRecord struct {
	Name   string         `json:"name"`
	Index  int            `json:"index"`
	Seed   int64          `json:"seed"`
	Params map[string]any `json:"params,omitempty"`
	// Result is the task's return value (nil if the task panicked).
	Result any `json:"result,omitempty"`
	// Err holds the recovered panic message for a failed cell.
	Err string `json:"error,omitempty"`
	// WallMs is the cell's wall-clock execution time in milliseconds.
	WallMs float64 `json:"wall_ms"`
	// Events and EventsPerSec report simulator throughput when the result
	// implements EventCounter.
	Events       uint64  `json:"events,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// Metrics is the run's scalar fingerprint when the result implements
	// MetricsReporter (the golden harness keys on it).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// ProgressFunc observes each completed run. done counts completions so far
// (1-based); calls are serialized but arrive in completion order, not matrix
// order.
type ProgressFunc func(done, total int, rec RunRecord)

// ExecOptions configure one Execute call.
type ExecOptions struct {
	// Jobs is the worker-pool width; <= 0 means runtime.GOMAXPROCS(0).
	Jobs int
	// BaseSeed is the campaign's base seed; each task runs with
	// DeriveSeed(BaseSeed, task.SeedIndex).
	BaseSeed int64
	// Progress, if set, is invoked after every completed run.
	Progress ProgressFunc
	// Collector, if set, additionally receives every RunRecord.
	Collector *Collector
}

// DeriveSeed maps (base, index) to a run's seed via a SplitMix64 step, so
// every cell of a matrix gets a distinct well-mixed stream. The mapping
// depends only on the pair — never on worker count or completion order —
// which keeps campaigns reproducible under any parallelism.
func DeriveSeed(base int64, index int) int64 {
	z := uint64(base) + uint64(int64(index)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	s := int64(z)
	if s == 0 {
		// Seed 0 means "use the default" elsewhere in the repo; avoid it.
		s = 1
	}
	return s
}

// Execute fans the tasks across a bounded worker pool and returns one
// RunRecord per task, in task order. It never shares RNG state between
// tasks: each task derives its own seed and builds its own simulator.
func Execute(tasks []Task, opt ExecOptions) []RunRecord {
	recs := make([]RunRecord, len(tasks))
	if len(tasks) == 0 {
		return recs
	}
	jobs := opt.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(tasks) {
		jobs = len(tasks)
	}

	var (
		mu   sync.Mutex
		done int
		wg   sync.WaitGroup
	)
	idx := make(chan int)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				rec := runTask(tasks[i], i, opt.BaseSeed)
				recs[i] = rec
				mu.Lock()
				done++
				if opt.Collector != nil {
					opt.Collector.add(rec)
				}
				if opt.Progress != nil {
					opt.Progress(done, len(tasks), rec)
				}
				mu.Unlock()
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return recs
}

// runTask executes one cell, capturing panics so a failing cell reports an
// error in its record instead of killing the whole grid.
func runTask(t Task, index int, base int64) (rec RunRecord) {
	rec = RunRecord{
		Name:   t.Name,
		Index:  index,
		Seed:   DeriveSeed(base, t.SeedIndex),
		Params: t.Params,
	}
	start := time.Now()
	defer func() {
		wall := time.Since(start)
		rec.WallMs = float64(wall.Nanoseconds()) / 1e6
		if p := recover(); p != nil {
			rec.Result = nil
			rec.Err = fmt.Sprintf("panic: %v", p)
			return
		}
		if ec, ok := rec.Result.(EventCounter); ok {
			rec.Events = ec.EventCount()
			if s := wall.Seconds(); s > 0 {
				rec.EventsPerSec = float64(rec.Events) / s
			}
		}
		if mr, ok := rec.Result.(MetricsReporter); ok {
			rec.Metrics = mr.Metrics()
		}
	}()
	rec.Result = t.Run(rec.Seed)
	return rec
}

// Collector accumulates every RunRecord produced across a CLI invocation so
// a -json flag can dump the whole campaign at exit.
type Collector struct {
	mu   sync.Mutex
	recs []RunRecord
}

func (c *Collector) add(r RunRecord) {
	c.mu.Lock()
	c.recs = append(c.recs, r)
	c.mu.Unlock()
}

// Records returns a copy of everything collected so far.
func (c *Collector) Records() []RunRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]RunRecord(nil), c.recs...)
}

// WriteJSON serializes the collected records as an indented JSON array.
func (c *Collector) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c.Records())
}
