// Package campaign turns the experiment layer into a declarative engine.
// Grid drivers describe their work as a matrix of independent Tasks; a
// bounded worker pool executes them and returns one RunRecord per task, in
// matrix order, regardless of how many workers ran or in what order cells
// finished. Named experiments register themselves (registry.go) so the CLIs
// dispatch from one table instead of a hand-written if-chain.
//
// Each task runs its own single-threaded sim.Simulator; only *runs* are
// concurrent, never the events inside one. Seeds derive from
// (base seed, seed index) alone, so a campaign's output is bit-identical at
// any worker count.
package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Task is one independent run in a campaign matrix.
type Task struct {
	// Name identifies the experiment (and, after a slash, the cell's arm),
	// e.g. "sweep" or "fig12/pie".
	Name string
	// SeedIndex feeds seed derivation: the run executes with
	// DeriveSeed(base, SeedIndex). Matrices normally set it to the cell's
	// position; paired arms that must see identical traffic (PIE vs PI2 on
	// the same schedule) share one index.
	SeedIndex int
	// Params records the cell's coordinates for the serialized RunRecord.
	Params map[string]any
	// Run executes the cell and returns its result. tc carries the derived
	// seed and the watchdog hookup (tc.Watch). A panic fails this cell
	// only; the rest of the grid completes.
	Run func(tc *TaskCtx) any
}

// Canceler is the cooperative-cancellation surface a cell registers with
// the watchdog: Cancel asks the component to stop at its next safe point
// (from another goroutine), and NowNanos exposes its virtual clock so the
// watchdog can tell "slow" from "stuck". *sim.Simulator satisfies it
// structurally; campaign never imports sim.
type Canceler interface {
	Cancel(reason string)
	NowNanos() int64
}

// TaskCtx is the per-attempt context a Task.Run receives: the attempt's
// seed, which retry this is, and the registration point for watchdog
// supervision. A fresh TaskCtx is built for every attempt, so a retried
// cell never sees stale cancellation state.
type TaskCtx struct {
	// Seed is the attempt's RNG seed: DeriveSeed(base, SeedIndex) on the
	// first attempt, perturbed by PerturbSeed on retries.
	Seed int64
	// Attempt counts retries, starting at 0.
	Attempt int
	// Shards is the campaign-wide simulation shard count (ExecOptions.
	// Shards); cells that build shardable scenarios run them on that many
	// event-loop domains. 0 or 1 means the classic single-loop path.
	Shards int
	// FastForward is the campaign-wide hybrid fluid/packet switch
	// (ExecOptions.FastForward): cells that build eligible scenarios skip
	// quiescent congestion-avoidance epochs analytically. Off keeps every
	// cell byte-identical to builds without the engine.
	FastForward bool

	mu       sync.Mutex
	watched  []Canceler
	canceled bool
	reason   string
}

// Watch registers a simulator (or any Canceler) for watchdog supervision.
// Registering after the cell was already canceled cancels the component
// immediately, closing the race between a slow construction and the
// monitor's verdict. Without a watchdog configured, Watch is a cheap no-op
// registration.
func (tc *TaskCtx) Watch(c Canceler) {
	tc.mu.Lock()
	if tc.canceled {
		reason := tc.reason
		tc.mu.Unlock()
		c.Cancel(reason)
		return
	}
	tc.watched = append(tc.watched, c)
	tc.mu.Unlock()
}

// cancel fans the verdict out to every watched component exactly once.
func (tc *TaskCtx) cancel(reason string) {
	tc.mu.Lock()
	if tc.canceled {
		tc.mu.Unlock()
		return
	}
	tc.canceled = true
	tc.reason = reason
	watched := append([]Canceler(nil), tc.watched...)
	tc.mu.Unlock()
	for _, c := range watched {
		c.Cancel(reason)
	}
}

// progress sums the watched components' virtual clocks (and reports how
// many there are): if the sum stops moving while wall time passes, the
// cell is stalled, not slow.
func (tc *TaskCtx) progress() (int64, int) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	var sum int64
	for _, c := range tc.watched {
		sum += c.NowNanos()
	}
	return sum, len(tc.watched)
}

// Watchdog bounds a cell's execution. The zero value disables supervision
// entirely, in which case tasks run on the worker's own goroutine exactly
// as before hardening.
type Watchdog struct {
	// Timeout is the hard wall-clock budget per attempt (0 = unlimited).
	Timeout time.Duration
	// Stall cancels an attempt whose watched simulators' virtual clocks
	// have not advanced for this much wall time (0 = no stall detection).
	// Cells that register nothing via Watch are exempt: with no virtual
	// clock to observe, "stalled" cannot be distinguished from "busy".
	Stall time.Duration
	// Poll is the monitor's sampling interval (default 20 ms).
	Poll time.Duration
	// Grace is how long a canceled attempt gets to unwind before its
	// goroutine is abandoned and the cell recorded as timed out
	// (default 1 s). Abandonment only happens when a callback ignores
	// cooperative cancellation (e.g. an infinite loop inside one event).
	Grace time.Duration
}

func (w Watchdog) enabled() bool { return w.Timeout > 0 || w.Stall > 0 }

func (w Watchdog) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 20 * time.Millisecond
}

func (w Watchdog) grace() time.Duration {
	if w.Grace > 0 {
		return w.Grace
	}
	return time.Second
}

// EventCounter lets Execute extract the simulated-event count from a run's
// result without depending on the experiments package.
type EventCounter interface{ EventCount() uint64 }

// MetricsReporter lets Execute reduce a run's result to a flat map of named
// scalar metrics — the statistical fingerprint the golden-regression harness
// compares against tolerance bands. Result types implement it next to
// EventCounter; Execute stores the metrics on the RunRecord so every -json
// dump and golden capture sees the same reduction.
type MetricsReporter interface{ Metrics() map[string]float64 }

// RunRecord is the structured outcome of one task: the cell's parameters,
// its result, and the execution metadata the scaling work keys on.
type RunRecord struct {
	Name   string         `json:"name"`
	Index  int            `json:"index"`
	Seed   int64          `json:"seed"`
	Params map[string]any `json:"params,omitempty"`
	// Result is the task's return value (nil if the task panicked).
	Result any `json:"result,omitempty"`
	// Err holds the recovered panic message for a failed cell.
	Err string `json:"error,omitempty"`
	// WallMs is the cell's wall-clock execution time in milliseconds.
	WallMs float64 `json:"wall_ms"`
	// Events and EventsPerSec report simulator throughput when the result
	// implements EventCounter.
	Events       uint64  `json:"events,omitempty"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	// Metrics is the run's scalar fingerprint when the result implements
	// MetricsReporter (the golden harness keys on it).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Attempts is how many attempts the cell took (1 = first try).
	Attempts int `json:"attempts,omitempty"`
	// TimedOut marks a cell the watchdog killed (wall-clock timeout or
	// sim-time stall); Err carries the watchdog's reason.
	TimedOut bool `json:"timed_out,omitempty"`
}

// ProgressFunc observes each completed run. done counts completions so far
// (1-based); calls are serialized but arrive in completion order, not matrix
// order.
type ProgressFunc func(done, total int, rec RunRecord)

// ExecOptions configure one Execute call.
type ExecOptions struct {
	// Jobs is the worker-pool width; <= 0 means runtime.GOMAXPROCS(0).
	Jobs int
	// Shards is the per-cell simulation shard count handed to every
	// TaskCtx; 0 or 1 selects the classic single-event-loop path. Note the
	// distinction from Jobs: Jobs parallelizes across cells, Shards
	// parallelizes inside one cell.
	Shards int
	// FastForward is handed to every TaskCtx: cells with eligible
	// scenarios run the hybrid fluid/packet main loop.
	FastForward bool
	// BaseSeed is the campaign's base seed; each task runs with
	// DeriveSeed(BaseSeed, task.SeedIndex).
	BaseSeed int64
	// Progress, if set, is invoked after every completed run.
	Progress ProgressFunc
	// Collector, if set, additionally receives every RunRecord.
	Collector *Collector
	// Watchdog bounds each attempt; the zero value disables supervision.
	Watchdog Watchdog
	// Retries is how many times a failed attempt is re-run (with a
	// perturbed seed) before the cell is recorded as failed. Abandoned
	// attempts — ones that ignored cooperative cancellation — are never
	// retried: their goroutines are still wedged, and piling more on a
	// deterministic hang would leak one goroutine per retry.
	Retries int
	// RetryBackoff is the wait before retry k (doubling each retry).
	RetryBackoff time.Duration
	// Family names the registered task source (RegisterSource) that can
	// rebuild this matrix from Spec in another process. Empty means the
	// matrix only exists as closures here, and dispatch stays in-process
	// even when a Dispatcher is configured.
	Family string
	// Spec is the serialized grid description handed to the Family's task
	// source; a worker process rebuilds the identical []Task from it.
	Spec []byte
	// Dispatch, when non-nil (and Family is set), routes cells to a fleet
	// of worker processes instead of the in-process pool. Records still
	// arrive through the same collector/progress/sink funnel.
	Dispatch Dispatcher
	// Journal, when non-nil (and Family is set), observes every fresh
	// final record so a crashed campaign can be resumed (-journal).
	Journal JournalSink
	// Resume, when non-nil (and Family is set), supplies final records
	// from a previous invocation's journal: cells with a hit are emitted
	// from the journal instead of re-running (-resume).
	Resume ResumeSet
	// SkipDone is set by ExecuteStream when Resume produced hits: the
	// indices whose records were already emitted. Dispatchers must not run
	// (or emit) these cells. Callers leave it nil.
	SkipDone map[int]bool
}

// Dispatcher executes a task matrix somewhere other than the in-process
// pool — typically a fleet of worker processes (internal/fleet). emit must
// be invoked exactly once per cell not in opt.SkipDone; calls may come
// from any goroutine and in any order (Execute serializes them). tasks
// carries the in-process closures so a dispatcher can degrade to local
// execution when every worker is gone. A returned error is a
// configuration or protocol bug (unknown family, matrix-size
// disagreement), not a cell failure — cell failures travel inside
// RunRecords.
type Dispatcher interface {
	Dispatch(tasks []Task, opt ExecOptions, emit func(RunRecord)) error
}

// JournalSink observes every final RunRecord of a matrix as it is emitted,
// preceded by one BeginSegment identifying the matrix — enough for a
// journal (internal/fleet) to replay a crashed campaign's completed cells.
// Both methods are called under ExecuteStream's emit lock, so records for
// one segment arrive serialized (in completion order, like every other
// sink). Records resumed from a previous journal are NOT re-journaled.
type JournalSink interface {
	BeginSegment(family string, spec []byte, cells int)
	Record(rec RunRecord)
}

// ResumeSet answers whether a cell already has a final record from a
// previous (crashed) invocation of the same campaign. A hit must identify
// the same matrix — implementations key on (family, spec) — and the
// returned record is emitted verbatim instead of re-running the cell.
type ResumeSet interface {
	Lookup(family string, spec []byte, index int) (RunRecord, bool)
}

// PerturbSeed maps an attempt's base seed to a retry seed: a SplitMix64
// step over (seed, attempt), so retries explore different randomness while
// remaining a pure function of the pair — a retried campaign is exactly as
// reproducible as a first-try one.
func PerturbSeed(seed int64, attempt int) int64 {
	if attempt == 0 {
		return seed
	}
	z := uint64(seed) ^ uint64(attempt)*0xD1B54A32D192ED03
	z += 0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	s := int64(z)
	if s == 0 {
		s = 1
	}
	return s
}

// DeriveSeed maps (base, index) to a run's seed via a SplitMix64 step, so
// every cell of a matrix gets a distinct well-mixed stream. The mapping
// depends only on the pair — never on worker count or completion order —
// which keeps campaigns reproducible under any parallelism.
func DeriveSeed(base int64, index int) int64 {
	z := uint64(base) + uint64(int64(index)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	s := int64(z)
	if s == 0 {
		// Seed 0 means "use the default" elsewhere in the repo; avoid it.
		s = 1
	}
	return s
}

// Execute fans the tasks across a bounded worker pool (or a fleet
// dispatcher, when configured) and returns one RunRecord per task, in task
// order. It never shares RNG state between tasks: each task derives its own
// seed and builds its own simulator.
func Execute(tasks []Task, opt ExecOptions) []RunRecord {
	recs := make([]RunRecord, len(tasks))
	ExecuteStream(tasks, opt, func(rec RunRecord) {
		recs[rec.Index] = rec
	})
	return recs
}

// ExecuteStream is Execute without the grid-sized result slice: sink
// observes each RunRecord exactly once, in completion order, serialized
// with the collector and progress callbacks. Drivers that fold records
// into aggregates as they arrive (heavy, sweep) use it to keep peak memory
// proportional to the in-flight window instead of the matrix.
func ExecuteStream(tasks []Task, opt ExecOptions, sink func(RunRecord)) {
	if len(tasks) == 0 {
		return
	}
	var (
		mu   sync.Mutex
		done int
	)
	if opt.Collector != nil {
		opt.Collector.begin(len(tasks))
	}
	journaling := opt.Journal != nil && opt.Family != ""
	if journaling {
		opt.Journal.BeginSegment(opt.Family, opt.Spec, len(tasks))
	}
	// fresh distinguishes records produced by this invocation (journaled)
	// from ones replayed out of a previous journal (already on disk).
	emitWith := func(rec RunRecord, fresh bool) {
		mu.Lock()
		done++
		if journaling && fresh {
			opt.Journal.Record(rec)
		}
		if opt.Collector != nil {
			opt.Collector.add(rec)
		}
		if opt.Progress != nil {
			opt.Progress(done, len(tasks), rec)
		}
		if sink != nil {
			sink(rec)
		}
		mu.Unlock()
	}
	emit := func(rec RunRecord) { emitWith(rec, true) }

	// Resume: cells with a journaled final record are emitted verbatim and
	// excluded from execution. The skip-set travels to dispatchers via
	// opt.SkipDone so a fleet never re-dispatches a completed cell.
	if opt.Resume != nil && opt.Family != "" {
		skip := make(map[int]bool)
		for i := range tasks {
			if rec, ok := opt.Resume.Lookup(opt.Family, opt.Spec, i); ok {
				rec.Index = i
				skip[i] = true
				emitWith(rec, false)
			}
		}
		if len(skip) == len(tasks) {
			return
		}
		if len(skip) > 0 {
			opt.SkipDone = skip
		}
	}

	if opt.Dispatch != nil && opt.Family != "" {
		if err := opt.Dispatch.Dispatch(tasks, opt, emit); err != nil {
			// Dispatcher errors are configuration/protocol bugs (the
			// dispatcher already degrades through crashed workers on its
			// own); surface them loudly rather than silently re-running.
			panic(fmt.Sprintf("campaign: fleet dispatch of %q failed: %v", opt.Family, err))
		}
		return
	}

	pending := len(tasks) - len(opt.SkipDone)
	jobs := opt.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > pending {
		jobs = pending
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				emit(runTask(tasks[i], i, opt))
			}
		}()
	}
	for i := range tasks {
		if !opt.SkipDone[i] {
			idx <- i
		}
	}
	close(idx)
	wg.Wait()
}

// RunOne executes a single cell of a matrix exactly as the in-process pool
// would: same seed derivation, retry/perturbation rules and watchdog
// machinery. Fleet workers call it per dispatched index, which is what
// makes fleet records bit-identical to in-process ones.
func RunOne(t Task, index int, opt ExecOptions) RunRecord {
	return runTask(t, index, opt)
}

// runTask executes one cell through the bounded retry loop: each failed
// attempt (panic or watchdog kill) is re-run with a perturbed seed up to
// opt.Retries times, with doubling backoff between attempts. An abandoned
// attempt — one the watchdog canceled but that never unwound — ends the
// cell immediately (see ExecOptions.Retries).
func runTask(t Task, index int, opt ExecOptions) RunRecord {
	base := DeriveSeed(opt.BaseSeed, t.SeedIndex)
	var rec RunRecord
	for attempt := 0; ; attempt++ {
		var abandoned bool
		rec, abandoned = runAttempt(t, index, PerturbSeed(base, attempt), attempt, opt)
		rec.Attempts = attempt + 1
		if rec.Err == "" || abandoned || attempt >= opt.Retries {
			return rec
		}
		if opt.RetryBackoff > 0 {
			time.Sleep(opt.RetryBackoff << attempt)
		}
	}
}

// runAttempt executes one attempt of one cell. Without a watchdog it runs
// on the caller's goroutine — the pre-hardening behavior, zero overhead.
// With one, the attempt runs on its own goroutine while this one monitors
// wall time and virtual-clock progress, cancels on a breach, and abandons
// the goroutine if the attempt ignores cancellation past the grace period
// (abandoned is then true and the record marked TimedOut).
func runAttempt(t Task, index int, seed int64, attempt int, opt ExecOptions) (RunRecord, bool) {
	wd := opt.Watchdog
	tc := &TaskCtx{Seed: seed, Attempt: attempt, Shards: opt.Shards,
		FastForward: opt.FastForward}
	if !wd.enabled() {
		return execAttempt(t, index, seed, attempt, tc), false
	}
	resCh := make(chan RunRecord, 1) // buffered: an abandoned attempt's send must not block
	go func() {
		resCh <- execAttempt(t, index, seed, attempt, tc)
	}()

	start := time.Now()
	ticker := time.NewTicker(wd.poll())
	defer ticker.Stop()
	lastProgress, lastChange := int64(-1), start
	for {
		select {
		case rec := <-resCh:
			return rec, false
		case <-ticker.C:
		}
		now := time.Now()
		var reason string
		if wd.Timeout > 0 && now.Sub(start) >= wd.Timeout {
			reason = fmt.Sprintf("wall-clock timeout after %v", wd.Timeout)
		} else if wd.Stall > 0 {
			if p, n := tc.progress(); n > 0 {
				if p != lastProgress {
					lastProgress, lastChange = p, now
				} else if now.Sub(lastChange) >= wd.Stall {
					reason = fmt.Sprintf("sim-time stall: virtual clock stuck at %v for %v",
						time.Duration(p), wd.Stall)
				}
			}
		}
		if reason == "" {
			continue
		}
		tc.cancel(reason)
		select {
		case rec := <-resCh:
			// The attempt unwound cooperatively; its own recover already
			// classified the cancellation panic as a timeout.
			return rec, false
		case <-time.After(wd.grace()):
			rec := RunRecord{
				Name: t.Name, Index: index, Seed: seed, Params: t.Params,
				TimedOut: true,
				Err:      "watchdog: " + reason + " (attempt unresponsive, goroutine abandoned)",
				WallMs:   float64(time.Since(start).Nanoseconds()) / 1e6,
			}
			return rec, true
		}
	}
}

// execAttempt runs Task.Run once, capturing panics so a failing cell
// reports an error in its record instead of killing the whole grid. A
// panic carrying a CancelReason (the simulator's cooperative-cancellation
// unwind) marks the record TimedOut rather than failed-with-a-bug.
func execAttempt(t Task, index int, seed int64, attempt int, tc *TaskCtx) (rec RunRecord) {
	rec = RunRecord{
		Name:   t.Name,
		Index:  index,
		Seed:   seed,
		Params: t.Params,
	}
	if tc == nil {
		tc = &TaskCtx{Seed: seed, Attempt: attempt}
	}
	start := time.Now()
	defer func() {
		wall := time.Since(start)
		rec.WallMs = float64(wall.Nanoseconds()) / 1e6
		if p := recover(); p != nil {
			rec.Result = nil
			if cr, ok := p.(interface{ CancelReason() string }); ok {
				rec.TimedOut = true
				rec.Err = "watchdog: " + cr.CancelReason()
			} else {
				rec.Err = fmt.Sprintf("panic: %v", p)
			}
			return
		}
		if ec, ok := rec.Result.(EventCounter); ok {
			rec.Events = ec.EventCount()
			if s := wall.Seconds(); s > 0 {
				rec.EventsPerSec = float64(rec.Events) / s
			}
		}
		if mr, ok := rec.Result.(MetricsReporter); ok {
			rec.Metrics = mr.Metrics()
		}
	}()
	rec.Result = t.Run(tc)
	return rec
}
