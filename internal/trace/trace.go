// Package trace records per-packet events from a simulation run for
// offline analysis: enqueue/dequeue/drop/mark at the bottleneck and
// deliveries to endpoints. Events stream to an io.Writer as TSV and can be
// filtered by flow or kind; Analyze computes derived distributions such as
// inter-drop gaps (used to validate PIE's derandomization claims) and
// per-flow sojourn breakdowns.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"time"

	"pi2/internal/link"
	"pi2/internal/packet"
)

// Kind classifies a trace event.
type Kind uint8

const (
	// Enqueue: the packet was accepted into the bottleneck queue.
	Enqueue Kind = iota
	// Dequeue: the packet left the queue toward the transmitter.
	Dequeue
	// DropTail: the buffer was full.
	DropTail
	// DropAQM: the AQM discarded the packet.
	DropAQM
	// MarkCE: the AQM set Congestion Experienced.
	MarkCE
	// Deliver: the packet finished serialization.
	Deliver
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Enqueue:
		return "enq"
	case Dequeue:
		return "deq"
	case DropTail:
		return "drop-tail"
	case DropAQM:
		return "drop-aqm"
	case MarkCE:
		return "mark"
	case Deliver:
		return "deliver"
	}
	return "?"
}

// Event is one recorded occurrence.
type Event struct {
	At   time.Duration
	Kind Kind
	Flow int
	Seq  int64
	// Sojourn is filled on Dequeue/Deliver events (time spent queued).
	Sojourn time.Duration
}

// Filter selects which events a Recorder keeps. A nil Filter keeps all.
type Filter func(Event) bool

// FlowFilter keeps only events of the given flow ids.
func FlowFilter(ids ...int) Filter {
	set := make(map[int]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	return func(e Event) bool { return set[e.Flow] }
}

// KindFilter keeps only events of the given kinds.
func KindFilter(kinds ...Kind) Filter {
	var mask uint16
	for _, k := range kinds {
		mask |= 1 << k
	}
	return func(e Event) bool { return mask&(1<<e.Kind) != 0 }
}

// And combines filters conjunctively.
func And(fs ...Filter) Filter {
	return func(e Event) bool {
		for _, f := range fs {
			if f != nil && !f(e) {
				return false
			}
		}
		return true
	}
}

// Recorder accumulates (and optionally streams) events.
type Recorder struct {
	filter Filter
	events []Event
	w      *bufio.Writer
	// Cap bounds in-memory retention (0 = unlimited). When exceeded, the
	// oldest events are discarded (streaming output is unaffected).
	Cap int
}

// NewRecorder creates a recorder. w may be nil for in-memory-only capture.
func NewRecorder(w io.Writer, filter Filter) *Recorder {
	r := &Recorder{filter: filter}
	if w != nil {
		r.w = bufio.NewWriter(w)
	}
	return r
}

// Record adds one event.
func (r *Recorder) Record(e Event) {
	if r.filter != nil && !r.filter(e) {
		return
	}
	r.events = append(r.events, e)
	if r.Cap > 0 && len(r.events) > r.Cap {
		n := copy(r.events, r.events[len(r.events)-r.Cap:])
		r.events = r.events[:n]
	}
	if r.w != nil {
		fmt.Fprintf(r.w, "%.9f\t%s\t%d\t%d\t%.9f\n",
			e.At.Seconds(), e.Kind, e.Flow, e.Seq, e.Sojourn.Seconds())
	}
}

// Events returns the retained events (not a copy; do not mutate).
func (r *Recorder) Events() []Event { return r.events }

// Flush drains the stream writer.
func (r *Recorder) Flush() error {
	if r.w == nil {
		return nil
	}
	return r.w.Flush()
}

// Attach wires the recorder to a bottleneck link. It hooks the link's
// OnDrop callback and wraps the given delivery function; enqueue/dequeue
// are derived from the delivery/drop stream plus the link's counters, so
// Attach must be called before traffic starts.
//
// The returned deliver function must be used as the link's delivery
// callback target by the caller's dispatcher chain.
func (r *Recorder) Attach(l *link.Link, deliver func(*packet.Packet)) func(*packet.Packet) {
	l.OnDrop = func(p *packet.Packet, reason link.DropReason) {
		k := DropAQM
		if reason == link.DropOverflow {
			k = DropTail
		}
		r.Record(Event{Kind: k, Flow: p.FlowID, Seq: p.Seq})
	}
	return func(p *packet.Packet) {
		e := Event{Kind: Deliver, Flow: p.FlowID, Seq: p.Seq}
		if p.ECN == packet.CE {
			r.Record(Event{Kind: MarkCE, Flow: p.FlowID, Seq: p.Seq})
		}
		r.Record(e)
		deliver(p)
	}
}

// Analysis summarizes a recorded event stream.
type Analysis struct {
	// Count per kind.
	Counts map[Kind]int
	// InterDropGaps lists the packet counts between consecutive
	// AQM drops (derandomization analysis).
	InterDropGaps []int
	// PerFlowDelivered counts deliveries per flow.
	PerFlowDelivered map[int]int
}

// Analyze computes summary statistics over the retained events.
func Analyze(events []Event) Analysis {
	a := Analysis{
		Counts:           make(map[Kind]int),
		PerFlowDelivered: make(map[int]int),
	}
	sinceDrop := 0
	seenDrop := false
	for _, e := range events {
		a.Counts[e.Kind]++
		switch e.Kind {
		case Deliver:
			a.PerFlowDelivered[e.Flow]++
			sinceDrop++
		case DropAQM:
			if seenDrop {
				a.InterDropGaps = append(a.InterDropGaps, sinceDrop)
			}
			seenDrop = true
			sinceDrop = 0
		}
	}
	return a
}
