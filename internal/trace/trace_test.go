package trace

import (
	"strings"
	"testing"
	"time"

	"pi2/internal/aqm"
	"pi2/internal/core"
	"pi2/internal/link"
	"pi2/internal/packet"
	"pi2/internal/sim"
	"pi2/internal/tcp"
)

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Enqueue: "enq", Dequeue: "deq", DropTail: "drop-tail",
		DropAQM: "drop-aqm", MarkCE: "mark", Deliver: "deliver", Kind(99): "?",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestFilters(t *testing.T) {
	e1 := Event{Kind: Deliver, Flow: 1}
	e2 := Event{Kind: DropAQM, Flow: 2}
	if !FlowFilter(1)(e1) || FlowFilter(1)(e2) {
		t.Error("FlowFilter")
	}
	if !KindFilter(Deliver)(e1) || KindFilter(Deliver)(e2) {
		t.Error("KindFilter")
	}
	both := And(FlowFilter(1), KindFilter(Deliver))
	if !both(e1) || both(e2) {
		t.Error("And")
	}
	if !And(nil, nil)(e2) {
		t.Error("And with nils must pass")
	}
}

func TestRecorderCapRetention(t *testing.T) {
	r := NewRecorder(nil, nil)
	r.Cap = 3
	for i := 0; i < 10; i++ {
		r.Record(Event{Seq: int64(i)})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	if evs[0].Seq != 7 || evs[2].Seq != 9 {
		t.Errorf("wrong tail retained: %+v", evs)
	}
}

func TestRecorderStreamsTSV(t *testing.T) {
	var sb strings.Builder
	r := NewRecorder(&sb, nil)
	r.Record(Event{At: time.Second, Kind: Deliver, Flow: 3, Seq: 7})
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	line := sb.String()
	for _, want := range []string{"1.000000000", "deliver", "3", "7"} {
		if !strings.Contains(line, want) {
			t.Errorf("stream line %q missing %q", line, want)
		}
	}
}

func TestAttachEndToEnd(t *testing.T) {
	s := sim.New(1)
	d := link.NewDispatcher()
	rec := NewRecorder(nil, nil)
	// The link needs its delivery callback at construction and the
	// recorder needs the link: indirect through a closure variable.
	var deliver func(*packet.Packet)
	l := link.New(s, link.Config{
		RateBps: 10e6,
		AQM:     core.New(core.Config{}, s.RNG()),
	}, func(p *packet.Packet) { deliver(p) })
	deliver = rec.Attach(l, d.Deliver)

	ep := tcp.New(s, l, tcp.Config{ID: 1, CC: tcp.Reno{}, BaseRTT: 50 * time.Millisecond})
	d.Register(1, ep.DeliverData)
	ep.Start()
	s.RunUntil(20 * time.Second)

	a := Analyze(rec.Events())
	if a.Counts[Deliver] == 0 {
		t.Fatal("no deliveries recorded")
	}
	if a.Counts[DropAQM] == 0 {
		t.Error("no AQM drops recorded for a saturating Reno flow")
	}
	if a.PerFlowDelivered[1] != a.Counts[Deliver] {
		t.Error("per-flow accounting mismatch")
	}
	if len(a.InterDropGaps) == 0 {
		t.Error("no inter-drop gaps computed")
	}
}

func TestAnalyzeInterDropGaps(t *testing.T) {
	events := []Event{
		{Kind: Deliver}, {Kind: Deliver}, {Kind: DropAQM},
		{Kind: Deliver}, {Kind: Deliver}, {Kind: Deliver}, {Kind: DropAQM},
		{Kind: DropAQM},
	}
	a := Analyze(events)
	if len(a.InterDropGaps) != 2 || a.InterDropGaps[0] != 3 || a.InterDropGaps[1] != 0 {
		t.Errorf("gaps = %v, want [3 0]", a.InterDropGaps)
	}
	if a.Counts[DropAQM] != 3 || a.Counts[Deliver] != 5 {
		t.Errorf("counts = %v", a.Counts)
	}
}

// TestDerandomizationTightensGaps uses the tracer to confirm RFC 8033
// derandomization narrows the inter-drop gap distribution end to end.
func TestDerandomizationTightensGaps(t *testing.T) {
	run := func(derand bool) []int {
		s := sim.New(4)
		d := link.NewDispatcher()
		rec := NewRecorder(nil, KindFilter(DropAQM, Deliver))
		cfg := aqm.BarePIEConfig()
		cfg.Derandomize = derand
		var deliver func(*packet.Packet)
		l := link.New(s, link.Config{
			RateBps: 10e6,
			AQM:     aqm.NewPIE(cfg, s.RNG()),
		}, func(p *packet.Packet) { deliver(p) })
		deliver = rec.Attach(l, d.Deliver)
		for id := 1; id <= 5; id++ {
			ep := tcp.New(s, l, tcp.Config{ID: id, CC: tcp.Reno{}, BaseRTT: 100 * time.Millisecond})
			d.Register(id, ep.DeliverData)
			ep.Start()
		}
		s.RunUntil(60 * time.Second)
		return Analyze(rec.Events()).InterDropGaps
	}
	cv := func(gaps []int) float64 {
		if len(gaps) < 2 {
			return 0
		}
		var sum float64
		for _, g := range gaps {
			sum += float64(g)
		}
		mean := sum / float64(len(gaps))
		var ss float64
		for _, g := range gaps {
			ss += (float64(g) - mean) * (float64(g) - mean)
		}
		return (ss / float64(len(gaps))) / (mean * mean) // squared CV
	}
	plain := cv(run(false))
	derand := cv(run(true))
	t.Logf("squared CV of inter-drop gaps: plain=%.2f derand=%.2f", plain, derand)
	if derand >= plain {
		t.Errorf("derandomization did not tighten gap variability (%.2f vs %.2f)", derand, plain)
	}
}
