package link

import (
	"fmt"
	"time"
)

// WireAuditor is the third conservation ledger armed in sharded runs: it
// audits the cross-domain mailbox fabric ("wires") the same way Auditor
// audits the bottleneck queue. The coordinator reports, at every window
// barrier, the cumulative sent/delivered counters plus the structurally
// counted in-flight backlog (messages parked in arrival heaps); the
// auditor asserts that nothing was created, duplicated or lost in transit:
//
//   - packet and byte conservation: sent = delivered + in-flight,
//     continuously at every barrier
//   - non-negative in-flight occupancy
//   - monotone barrier clock
//
// It implements sim.WireAudit. Like the link auditor, violations are
// recorded rather than panicked so a failing run reports every broken
// identity with its virtual timestamp; the scenario runner checks Err
// after the run and fails the cell with the full report.
type WireAuditor struct {
	// SentPackets/Bytes and DeliveredPackets/Bytes mirror the coordinator's
	// cumulative ledger as of the last barrier.
	SentPackets      uint64
	SentBytes        int64
	DeliveredPackets uint64
	DeliveredBytes   int64
	// InFlightPackets/Bytes are the last barrier's structural backlog.
	InFlightPackets int
	InFlightBytes   int64
	// Windows counts audited barriers.
	Windows int

	lastBarrier time.Duration
	violations  []string
	dropped     int
}

// WireWindow implements sim.WireAudit: one barrier observation.
func (a *WireAuditor) WireWindow(now time.Duration, sentPkts, firedPkts uint64,
	sentBytes, firedBytes int64, inFlightPkts int, inFlightBytes int64) {

	a.Windows++
	if a.Windows > 1 && now < a.lastBarrier {
		a.violate(now, "monotone clock: barrier at %v before previous %v", now, a.lastBarrier)
	}
	a.lastBarrier = now
	a.SentPackets, a.SentBytes = sentPkts, sentBytes
	a.DeliveredPackets, a.DeliveredBytes = firedPkts, firedBytes
	a.InFlightPackets, a.InFlightBytes = inFlightPkts, inFlightBytes

	if inFlightPkts < 0 || inFlightBytes < 0 {
		a.violate(now, "negative occupancy: in-flight %d packets / %d bytes",
			inFlightPkts, inFlightBytes)
	}
	if firedPkts > sentPkts {
		a.violate(now, "conservation: delivered %d packets but only %d sent",
			firedPkts, sentPkts)
	}
	if sentPkts != firedPkts+uint64(inFlightPkts) {
		a.violate(now, "packet conservation: sent %d != delivered %d + in-flight %d",
			sentPkts, firedPkts, inFlightPkts)
	}
	if sentBytes != firedBytes+inFlightBytes {
		a.violate(now, "byte conservation: sent %d != delivered %d + in-flight %d",
			sentBytes, firedBytes, inFlightBytes)
	}
}

func (a *WireAuditor) violate(now time.Duration, format string, args ...any) {
	if len(a.violations) >= maxViolations {
		a.dropped++
		return
	}
	a.violations = append(a.violations,
		fmt.Sprintf("t=%v: %s", now, fmt.Sprintf(format, args...)))
}

// Violations returns the recorded invariant failures (nil when clean).
func (a *WireAuditor) Violations() []string {
	if len(a.violations) == 0 {
		return nil
	}
	out := append([]string(nil), a.violations...)
	if a.dropped > 0 {
		out = append(out, fmt.Sprintf("... and %d further violations", a.dropped))
	}
	return out
}

// Err formats the violations as a single error-report string, prefixed by
// the component name; it returns "" when every identity held.
func (a *WireAuditor) Err(component string) string {
	v := a.Violations()
	if len(v) == 0 {
		return ""
	}
	s := fmt.Sprintf("%s: %d invariant violation(s):", component, len(v))
	for _, line := range v {
		s += "\n  " + line
	}
	return s
}
