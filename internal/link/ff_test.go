package link

import (
	"math/rand"
	"testing"
	"time"

	"pi2/internal/aqm"
	"pi2/internal/packet"
	"pi2/internal/sim"
	"pi2/internal/stats"
)

// TestLinkFFApplyCountersAndIdentity: virtual traffic lands in the link
// counters while preserving enqueues = dequeues + drops + backlog, and the
// histogram absorbs the bulk sojourn insert.
func TestLinkFFApplyCountersAndIdentity(t *testing.T) {
	s := sim.New(1)
	l := New(s, Config{
		RateBps: 1e7,
		AQM:     aqm.NewPI(aqm.PIConfig{}, rand.New(rand.NewSource(1))),
		Sojourn: stats.NewDelayHistogram(),
	}, func(p *packet.Packet) { s.PacketPool().Release(p) })

	// One real packet stays in the backlog across the patch.
	l.Enqueue(s.PacketPool().NewData(1, 0, packet.MSS, packet.NotECT))
	l.Enqueue(s.PacketPool().NewData(1, 1, packet.MSS, packet.NotECT))

	l.FFApply(1000, 30, 5, 21*time.Millisecond)

	if got := l.Enqueues() - l.Dequeues() - l.TotalDrops() - l.BacklogPackets(); got != 0 {
		t.Fatalf("conservation broken by %d (enq=%d deq=%d drops=%d backlog=%d)",
			got, l.Enqueues(), l.Dequeues(), l.TotalDrops(), l.BacklogPackets())
	}
	if l.Marks() != 30 || l.Drops(DropAQM) != 5 {
		t.Fatalf("marks=%d drops=%d", l.Marks(), l.Drops(DropAQM))
	}
	if got := l.Delivered.Bytes(); got != int64(1000*packet.FullLen) {
		t.Fatalf("delivered bytes = %d", got)
	}
	if l.Sojourn.N() != 1001 { // 1000 virtual + 1 real dequeue
		t.Fatalf("sojourn samples = %d", l.Sojourn.N())
	}
	if v := l.Audit().Violations(); v != nil {
		t.Fatalf("auditor disturbed: %v", v)
	}
}

// TestLinkFFShift: queued packets' enqueue timestamps translate so post-jump
// sojourns stay correct, and the AQM's measurement cycle shifts with them.
func TestLinkFFShift(t *testing.T) {
	s := sim.New(1)
	pe := aqm.NewPIE(aqm.DefaultPIEConfig(), rand.New(rand.NewSource(1)))
	l := New(s, Config{RateBps: 1e6, AQM: pe},
		func(p *packet.Packet) { s.PacketPool().Release(p) })
	for i := 0; i < 5; i++ {
		l.Enqueue(s.PacketPool().NewData(1, int64(i), packet.MSS, packet.NotECT))
	}
	head := l.queue[l.head].EnqueuedAt
	soj := l.HeadSojourn(s.Now())

	const delta = 3 * time.Second
	s.ShiftPending(delta)
	l.FFShift(delta)

	if got := l.queue[l.head].EnqueuedAt; got != head+delta {
		t.Fatalf("head EnqueuedAt = %v, want %v", got, head+delta)
	}
	if got := l.HeadSojourn(s.Now()); got != soj {
		t.Fatalf("head sojourn changed across shift: %v vs %v", got, soj)
	}
	// Draining the backlog after the shift must not report inflated
	// sojourns or violate any auditor invariant. (Bounded run: the AQM's
	// recurring update keeps the schedule non-empty forever.)
	s.RunUntil(delta + time.Second)
	if v := l.Audit().Violations(); v != nil {
		t.Fatalf("violations after shifted drain: %v", v)
	}
	if got := l.Sojourn.Max(); got > 1.0 {
		t.Fatalf("post-shift sojourn inflated: %gs", got)
	}
}

func TestLinkFFAQM(t *testing.T) {
	s := sim.New(1)
	withPI := New(s, Config{RateBps: 1e6, AQM: aqm.NewPI(aqm.PIConfig{}, rand.New(rand.NewSource(1)))},
		func(p *packet.Packet) { s.PacketPool().Release(p) })
	if _, ok := withPI.FFAQM(); !ok {
		t.Fatal("PI must expose a FastForwarder")
	}
	tail := New(s, Config{RateBps: 1e6}, func(p *packet.Packet) { s.PacketPool().Release(p) })
	if _, ok := tail.FFAQM(); ok {
		t.Fatal("tail-drop must not expose a FastForwarder")
	}
}
