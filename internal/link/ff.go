package link

import (
	"time"

	"pi2/internal/aqm"
	"pi2/internal/packet"
	"pi2/internal/stats"
)

// Fast-forward support. During an epoch the real queue is frozen — the ff
// engine evolves a fluid twin of the backlog — and the virtual traffic's
// statistics are patched in here. The always-on auditor deliberately stays
// untouched: its conservation identities cover the packet world only, and
// virtual packets never exist. The link-counter identity
// enqueues = dequeues + drops + backlog is preserved by accounting every
// virtually accepted packet as also virtually drained within the epoch (the
// fluid backlog excursion lives only inside the engine).

// FFShift translates the queued packets' enqueue timestamps and the AQM's
// internal clocks by delta when the simulator jumps over an epoch, so
// post-epoch sojourn measurements are not inflated by the jump. The busy
// accounting is intentionally NOT shifted: the stay-in-epoch band guarantees
// a backlogged link, so the epoch counts as busy time — the in-flight
// packet's (shifted) completion absorbs delta into busyTotal.
func (l *Link) FFShift(delta time.Duration) {
	if delta <= 0 {
		return
	}
	for i := l.head; i < len(l.queue); i++ {
		l.queue[i].EnqueuedAt += delta
	}
	if ffa, ok := l.aqm.(aqm.FastForwarder); ok {
		ffa.FFShift(delta)
	}
}

// FFApply patches one fast-forward period's virtual traffic into the link
// statistics: accepted packets drained at queuing delay qdelay (marked of
// them CE-marked), dropped packets rejected by the AQM. The sojourn
// collector absorbs the period in O(1) when it supports bulk insertion.
func (l *Link) FFApply(accepted, marked, dropped int, qdelay time.Duration) {
	l.enqueues += accepted + dropped
	l.dequeues += accepted
	l.marks += marked
	if dropped > 0 {
		l.drops[DropAQM] += dropped
	}
	l.Delivered.Add(accepted * packet.FullLen)
	sec := qdelay.Seconds()
	if ba, ok := l.Sojourn.(stats.BulkAdder); ok {
		ba.AddN(sec, int64(accepted))
	} else {
		for i := 0; i < accepted; i++ {
			l.Sojourn.Add(sec)
		}
	}
}

// FFAQM returns the attached AQM's fast-forward interface, if it has one.
func (l *Link) FFAQM() (aqm.FastForwarder, bool) {
	ffa, ok := l.aqm.(aqm.FastForwarder)
	return ffa, ok
}

// Busy reports whether the transmitter is serializing a packet.
func (l *Link) Busy() bool { return l.busy }

// BufferPackets returns the queue's packet capacity.
func (l *Link) BufferPackets() int { return l.cfg.BufferPackets }
