package link

import (
	"time"

	"pi2/internal/packet"
	"pi2/internal/sim"
)

// Chain wires several bottleneck links in series (a "parking lot" path):
// a packet enqueued at the first hop is re-enqueued at the next hop as it
// finishes serializing, optionally after a per-hop propagation delay, and
// only the final hop's output reaches the chain's delivery callback.
//
// Every hop runs its own AQM, so a chain exercises multi-bottleneck
// behaviour — e.g. whether two PI2 queues in series still hold their
// targets and how the congestion signals compose (a flow crossing two
// 20 ms-target queues sees up to 40 ms of AQM-controlled delay and the
// product of survival probabilities).
type Chain struct {
	links []*Link
}

// HopSpec describes one hop of a chain.
type HopSpec struct {
	// Config is the hop's link configuration (rate, buffer, AQM).
	Config Config
	// PropDelay is added between this hop's output and the next hop's
	// input (one-way). The final hop's PropDelay is applied before the
	// chain's delivery callback.
	PropDelay time.Duration
}

// NewChain builds the chain; deliver receives packets leaving the last hop.
func NewChain(s *sim.Simulator, hops []HopSpec, deliver func(*packet.Packet)) *Chain {
	if len(hops) == 0 {
		panic("link: chain needs at least one hop")
	}
	c := &Chain{links: make([]*Link, len(hops))}
	// Build from the last hop backwards so each hop's delivery target
	// exists when the hop is constructed.
	next := deliver
	for i := len(hops) - 1; i >= 0; i-- {
		hop := hops[i]
		forward := next
		var out func(*packet.Packet)
		if hop.PropDelay > 0 {
			delay := hop.PropDelay
			out = func(p *packet.Packet) {
				s.After(delay, func() { forward(p) })
			}
		} else {
			out = forward
		}
		c.links[i] = New(s, hop.Config, out)
		ingress := c.links[i]
		next = ingress.Enqueue
	}
	return c
}

// Enqueue submits a packet at the head of the chain.
func (c *Chain) Enqueue(p *packet.Packet) { c.links[0].Enqueue(p) }

// Hop returns the i-th link for statistics access.
func (c *Chain) Hop(i int) *Link { return c.links[i] }

// Len returns the number of hops.
func (c *Chain) Len() int { return len(c.links) }
