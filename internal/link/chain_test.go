// Chain tests live in an external test package: they drive the chain with
// real TCP endpoints, and package tcp itself imports link.
package link_test

import (
	"math/rand"
	"testing"
	"time"

	"pi2/internal/aqm"
	"pi2/internal/link"
	"pi2/internal/packet"
	"pi2/internal/sim"
	"pi2/internal/tcp"
)

func mkData(flow int, seq int64) *packet.Packet {
	return packet.NewData(flow, seq, packet.MSS, packet.NotECT)
}

func TestChainSerialDelivery(t *testing.T) {
	s := sim.New(1)
	var at []time.Duration
	c := link.NewChain(s, []link.HopSpec{
		{Config: link.Config{RateBps: 12e6}},                                   // 1 ms/pkt
		{Config: link.Config{RateBps: 12e6}, PropDelay: 10 * time.Millisecond}, // +1 ms +10 ms
	}, func(p *packet.Packet) { at = append(at, s.Now()) })
	c.Enqueue(mkData(1, 0))
	s.Run()
	if len(at) != 1 {
		t.Fatalf("delivered %d", len(at))
	}
	// 1 ms (hop 1) + 1 ms (hop 2) + 10 ms propagation.
	if want := 12 * time.Millisecond; at[0] != want {
		t.Errorf("delivered at %v, want %v", at[0], want)
	}
	if c.Len() != 2 || c.Hop(0).Dequeues() != 1 || c.Hop(1).Dequeues() != 1 {
		t.Error("hop accounting")
	}
}

func TestChainSlowestHopBottlenecks(t *testing.T) {
	s := sim.New(1)
	n := 0
	c := link.NewChain(s, []link.HopSpec{
		{Config: link.Config{RateBps: 100e6}},
		{Config: link.Config{RateBps: 10e6}}, // the bottleneck
		{Config: link.Config{RateBps: 100e6}},
	}, func(*packet.Packet) { n++ })
	for i := int64(0); i < 100; i++ {
		c.Enqueue(mkData(1, i))
	}
	s.Run()
	if n != 100 {
		t.Fatalf("delivered %d", n)
	}
	// The middle hop must have accumulated the standing queue.
	if c.Hop(1).Sojourn.Max() < c.Hop(0).Sojourn.Max() {
		t.Error("bottleneck hop did not dominate queuing")
	}
}

func TestChainEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty chain did not panic")
		}
	}()
	link.NewChain(sim.New(1), nil, func(*packet.Packet) {})
}

// TestChainTwoPI2Bottlenecks runs a flow through two PI2-managed hops of
// equal rate: both controllers hold their own 20 ms target and the flow
// survives the composed signal (the multi-bottleneck sanity case).
func TestChainTwoPI2Bottlenecks(t *testing.T) {
	s := sim.New(3)
	d := link.NewDispatcher()
	mkAQM := func() aqm.AQM {
		return aqm.NewPI(aqm.PIConfig{Alpha: 0.3125, Beta: 3.125, Target: 20 * time.Millisecond}, rand.New(rand.NewSource(s.RNG().Int63())))
	}
	c := link.NewChain(s, []link.HopSpec{
		{Config: link.Config{RateBps: 10e6, AQM: mkAQM()}},
		{Config: link.Config{RateBps: 10e6, AQM: mkAQM()}, PropDelay: 0},
	}, d.Deliver)
	for id := 1; id <= 5; id++ {
		ep := tcp.NewWithEnqueuer(s, c.Enqueue, tcp.Config{
			ID: id, CC: tcp.Reno{}, BaseRTT: 50 * time.Millisecond,
		})
		d.Register(id, ep.DeliverData)
		ep.Start()
	}
	s.RunUntil(60 * time.Second)

	// With equal rates the first hop is the bottleneck (it smooths the
	// arrivals for the second), but both AQMs must keep their queue under
	// control and no hop's delay may run away.
	for i := 0; i < 2; i++ {
		mean := c.Hop(i).Sojourn.Mean()
		if mean > 0.06 {
			t.Errorf("hop %d mean sojourn %.1f ms, want controlled", i, mean*1e3)
		}
	}
	if u := c.Hop(0).Utilization(); u < 0.85 {
		t.Errorf("hop 0 utilization %.3f", u)
	}
}
