package link

import (
	"fmt"

	"pi2/internal/packet"
)

// Dispatcher routes packets leaving the bottleneck to per-flow handlers.
// It is the delivery callback experiments hand to New.
type Dispatcher struct {
	handlers map[int]func(*packet.Packet)
}

// NewDispatcher returns an empty dispatcher.
func NewDispatcher() *Dispatcher {
	return &Dispatcher{handlers: make(map[int]func(*packet.Packet))}
}

// Register installs the handler for a flow id, replacing any previous one.
func (d *Dispatcher) Register(flowID int, h func(*packet.Packet)) {
	d.handlers[flowID] = h
}

// Unregister retires a flow: packets still in flight for it are silently
// discarded rather than treated as a wiring bug.
func (d *Dispatcher) Unregister(flowID int) {
	d.handlers[flowID] = func(*packet.Packet) {}
}

// Deliver routes one packet. Packets for unknown flows panic: in this
// simulator that is always a wiring bug, never a runtime condition.
func (d *Dispatcher) Deliver(p *packet.Packet) {
	h, ok := d.handlers[p.FlowID]
	if !ok {
		panic(fmt.Sprintf("link: no handler for flow %d", p.FlowID))
	}
	h(p)
}
