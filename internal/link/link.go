// Package link models the bottleneck: a FIFO buffer managed by an AQM,
// drained by a serializing transmitter at a configurable bit rate.
//
// The topology in this repository mirrors the paper's dumbbell: senders
// enqueue into one bottleneck; dequeued packets are handed to a delivery
// callback (the transport endpoint adds the flow's base RTT). The reverse
// (ACK) path is uncongested, as in the testbed.
package link

import (
	"time"

	"pi2/internal/aqm"
	"pi2/internal/packet"
	"pi2/internal/sim"
	"pi2/internal/stats"
)

// DropReason distinguishes AQM drops from buffer overflow in statistics.
type DropReason int

const (
	// DropAQM is a drop decided by the AQM control law.
	DropAQM DropReason = iota
	// DropOverflow is a tail-drop because the buffer was full.
	DropOverflow
	// DropFault is a loss injected by the impairment layer (internal/faults)
	// after the packet left the bottleneck — channel loss, not queue policy.
	// The link itself never drops with this reason; it exists so OnDrop
	// observers and loss statistics can tell injected faults apart.
	DropFault
)

// Config describes a bottleneck link.
type Config struct {
	// RateBps is the serialization rate in bits/s.
	RateBps float64
	// BufferPackets bounds the queue length (tail-drop beyond it).
	// The paper's Table 1 uses 40000 packets.
	BufferPackets int
	// AQM manages the queue; nil means pure tail-drop.
	AQM aqm.AQM
	// Sojourn, if set, collects the per-packet queuing delay; nil uses the
	// exact stats.Sample. The heavy many-flow tier passes a constant-memory
	// stats.LogHistogram so metrics memory stays bounded at any run length.
	Sojourn stats.Quantiler
}

// Link is the bottleneck queue + transmitter.
type Link struct {
	sim  *sim.Simulator
	cfg  Config
	aqm  aqm.AQM
	rate float64 // current bits/s

	queue []*packet.Packet
	head  int // index of the queue head; avoids O(n) dequeue copies
	bytes int
	busy  bool

	deliver func(*packet.Packet)

	// txPkt is the packet currently being serialized and txDoneFn the
	// pre-bound completion callback; the transmitter serializes one packet
	// at a time, so a single slot (instead of a per-packet closure) keeps
	// the serialize→deliver path allocation-free.
	txPkt    *packet.Packet
	txDoneFn sim.Event

	// pool recycles dropped packets (delivered ones are released by their
	// terminal consumer, which may sit behind further hops — see Chain).
	pool *packet.Pool

	// Statistics.
	Sojourn    stats.Quantiler // per-packet queuing delay, seconds
	Delivered  stats.RateMeter
	drops      map[DropReason]int
	marks      int
	enqueues   int
	dequeues   int
	busySince  time.Duration
	busyTotal  time.Duration
	statsSince time.Duration

	// OnDrop, if set, is invoked for every dropped packet (AQM or
	// overflow) so transports can count losses without owning the queue.
	OnDrop func(*packet.Packet, DropReason)

	// aud is the always-on invariant auditor (see audit.go). Unlike the
	// statistics above it is never reset: its conservation identities
	// cover the link's whole lifetime.
	aud Auditor
}

// New creates a link attached to the simulator and wires the AQM's periodic
// timer. deliver receives every packet that completes serialization.
func New(s *sim.Simulator, cfg Config, deliver func(*packet.Packet)) *Link {
	if cfg.BufferPackets <= 0 {
		cfg.BufferPackets = 40000 // Table 1 default
	}
	a := cfg.AQM
	if a == nil {
		a = aqm.TailDrop{}
	}
	soj := cfg.Sojourn
	if soj == nil {
		soj = &stats.Sample{}
	}
	l := &Link{
		sim:     s,
		cfg:     cfg,
		aqm:     a,
		rate:    cfg.RateBps,
		deliver: deliver,
		drops:   make(map[DropReason]int),
		pool:    s.PacketPool(),
		Sojourn: soj,
	}
	l.txDoneFn = l.txDone
	if iv := a.UpdateInterval(); iv > 0 {
		s.Every(iv, func() { a.Update(l, s.Now()) })
	}
	return l
}

// --- aqm.QueueInfo ---

// BacklogBytes implements aqm.QueueInfo.
func (l *Link) BacklogBytes() int { return l.bytes }

// BacklogPackets implements aqm.QueueInfo.
func (l *Link) BacklogPackets() int { return len(l.queue) - l.head }

// HeadSojourn implements aqm.QueueInfo.
func (l *Link) HeadSojourn(now time.Duration) time.Duration {
	if l.head == len(l.queue) {
		return 0
	}
	return now - l.queue[l.head].EnqueuedAt
}

// CapacityBps implements aqm.QueueInfo.
func (l *Link) CapacityBps() float64 { return l.rate }

// --- data path ---

// Enqueue submits a packet to the bottleneck. The AQM and buffer limit are
// applied here; accepted packets are serialized in FIFO order.
func (l *Link) Enqueue(p *packet.Packet) {
	if p.Released() {
		panic("link: enqueued a packet that was already released to the pool")
	}
	now := l.sim.Now()
	l.enqueues++
	l.aud.Offered(p, now)
	if len(l.queue)-l.head >= l.cfg.BufferPackets {
		l.drop(p, DropOverflow, false)
		return
	}
	switch l.aqm.Enqueue(p, l, now) {
	case aqm.Drop:
		l.drop(p, DropAQM, false)
		return
	case aqm.Mark:
		l.aud.Marked(p, now)
		p.ECN = packet.CE
		l.marks++
	}
	p.EnqueuedAt = now
	l.queue = append(l.queue, p)
	l.bytes += p.WireLen
	l.aud.Accepted(p, now)
	l.aud.Conserve(now, len(l.queue)-l.head, l.bytes)
	if !l.busy {
		l.startTx()
	}
}

// drop records a dropped packet; fromQueue marks a head drop of an
// already-accepted packet (the auditor's conservation split needs it).
func (l *Link) drop(p *packet.Packet, r DropReason, fromQueue bool) {
	now := l.sim.Now()
	l.aud.DroppedPkt(p, now, fromQueue)
	l.drops[r]++
	if l.OnDrop != nil {
		l.OnDrop(p, r)
	} else {
		// The link is the dropped packet's terminal owner; with no OnDrop
		// observer the packet can be recycled immediately. (Observers keep
		// ownership because tests retain dropped packets for inspection.)
		l.pool.Release(p)
	}
	l.aud.Conserve(now, len(l.queue)-l.head, l.bytes)
}

// startTx pops the head of the queue and begins serializing it. Dequeue-time
// AQMs (CoDel) may head-drop; in that case the next packet is tried. The
// caller guarantees l.busy is false and at least one packet is queued.
func (l *Link) startTx() {
	now := l.sim.Now()
	var p *packet.Packet
	for {
		p = l.queue[l.head]
		l.queue[l.head] = nil
		l.head++
		if l.head > 1024 && l.head*2 >= len(l.queue) {
			n := copy(l.queue, l.queue[l.head:])
			clear(l.queue[n:])
			l.queue = l.queue[:n]
			l.head = 0
		}
		l.bytes -= p.WireLen
		if dd, ok := l.aqm.(aqm.DequeueDropper); ok {
			v := dd.DequeueVerdict(p, l, now)
			if v == aqm.Drop {
				// Head drop: the packet neither departs nor counts
				// as a dequeue, so enqueues = dequeues + drops +
				// backlog stays exact.
				l.drop(p, DropAQM, true)
				if len(l.queue)-l.head == 0 {
					return // dropped the whole backlog; link stays idle
				}
				continue
			}
			if v == aqm.Mark {
				l.aud.Marked(p, now)
				p.ECN = packet.CE
				l.marks++
			}
		}
		l.dequeues++
		l.aud.Dequeued(p, now)
		l.aud.Conserve(now, len(l.queue)-l.head, l.bytes)
		l.aqm.Dequeue(p, l, now)
		break
	}
	l.Sojourn.Add((now - p.EnqueuedAt).Seconds())

	l.busy = true
	l.busySince = now
	l.txPkt = p
	txTime := time.Duration(float64(p.WireLen*8) / l.rate * float64(time.Second))
	l.sim.After(txTime, l.txDoneFn)
}

// txDone completes the in-flight packet's serialization and hands it to the
// delivery callback. It is pre-bound once in New so serializing a packet
// schedules a plain method value, not a fresh closure.
func (l *Link) txDone() {
	p := l.txPkt
	l.txPkt = nil
	l.busyTotal += l.sim.Now() - l.busySince
	l.Delivered.Add(p.WireLen)
	l.aud.Delivered(p, l.sim.Now())
	l.deliver(p)
	l.busy = false
	if len(l.queue)-l.head > 0 {
		l.startTx()
	}
}

// SetRateBps changes the link capacity (Figure 12's varying-capacity test).
// A packet already being serialized completes at the old rate.
func (l *Link) SetRateBps(r float64) { l.rate = r }

// RateBps returns the current capacity in bits/s.
func (l *Link) RateBps() float64 { return l.rate }

// QueueDelayNow estimates the instantaneous queuing delay as backlog
// divided by capacity; the harness samples this for the delay time series.
func (l *Link) QueueDelayNow() time.Duration {
	if l.rate <= 0 {
		return 0
	}
	return time.Duration(float64(l.bytes*8) / l.rate * float64(time.Second))
}

// --- statistics ---

// Drops returns the packet count dropped for the given reason.
func (l *Link) Drops(r DropReason) int { return l.drops[r] }

// TotalDrops returns all drops regardless of reason.
func (l *Link) TotalDrops() int { return l.drops[DropAQM] + l.drops[DropOverflow] }

// Marks returns how many packets were CE-marked.
func (l *Link) Marks() int { return l.marks }

// Enqueues returns how many packets were offered to the queue.
func (l *Link) Enqueues() int { return l.enqueues }

// Dequeues returns how many packets left the queue.
func (l *Link) Dequeues() int { return l.dequeues }

// Utilization returns the fraction of time the transmitter was busy since
// the last ResetStats (or since start).
func (l *Link) Utilization() float64 {
	now := l.sim.Now()
	busy := l.busyTotal
	if l.busy {
		busy += now - l.busySince
	}
	total := now - l.statsSince
	if total <= 0 {
		return 0
	}
	return float64(busy) / float64(total)
}

// ResetStats starts a fresh measurement window at the current time.
// Experiments call it after warm-up so start-up transients are excluded
// from steady-state statistics (they still appear in time series).
func (l *Link) ResetStats() {
	now := l.sim.Now()
	l.Sojourn.Reset()
	l.Delivered.Reset(now)
	l.drops = make(map[DropReason]int)
	l.marks = 0
	l.enqueues = 0
	l.dequeues = 0
	l.busyTotal = 0
	l.statsSince = now
	if l.busy {
		l.busySince = now
	}
}

// AQM returns the attached queue manager.
func (l *Link) AQM() aqm.AQM { return l.aqm }
