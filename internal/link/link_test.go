package link

import (
	"testing"
	"time"

	"pi2/internal/aqm"
	"pi2/internal/packet"
	"pi2/internal/sim"
)

// dropNth is a test AQM that drops the nth offered packet (1-based).
type dropNth struct {
	n     int
	seen  int
	onDeq func(*packet.Packet)
}

func (d *dropNth) Name() string { return "dropNth" }
func (d *dropNth) Enqueue(p *packet.Packet, _ aqm.QueueInfo, _ time.Duration) aqm.Verdict {
	d.seen++
	if d.seen == d.n {
		return aqm.Drop
	}
	return aqm.Accept
}
func (d *dropNth) Dequeue(p *packet.Packet, _ aqm.QueueInfo, _ time.Duration) {
	if d.onDeq != nil {
		d.onDeq(p)
	}
}
func (d *dropNth) UpdateInterval() time.Duration       { return 0 }
func (d *dropNth) Update(aqm.QueueInfo, time.Duration) {}

func mkData(flow int, seq int64) *packet.Packet {
	return packet.NewData(flow, seq, packet.MSS, packet.NotECT)
}

func TestSerializationTimingExact(t *testing.T) {
	s := sim.New(1)
	var deliveredAt []time.Duration
	l := New(s, Config{RateBps: 12e6}, func(p *packet.Packet) {
		deliveredAt = append(deliveredAt, s.Now())
	})
	// 1500 B at 12 Mb/s = exactly 1 ms per packet.
	l.Enqueue(mkData(1, 0))
	l.Enqueue(mkData(1, 1))
	l.Enqueue(mkData(1, 2))
	s.Run()
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond}
	if len(deliveredAt) != 3 {
		t.Fatalf("delivered %d", len(deliveredAt))
	}
	for i := range want {
		if deliveredAt[i] != want[i] {
			t.Errorf("packet %d delivered at %v, want %v", i, deliveredAt[i], want[i])
		}
	}
}

func TestFIFOOrder(t *testing.T) {
	s := sim.New(1)
	var seqs []int64
	l := New(s, Config{RateBps: 1e9}, func(p *packet.Packet) { seqs = append(seqs, p.Seq) })
	for i := int64(0); i < 50; i++ {
		l.Enqueue(mkData(1, i))
	}
	s.Run()
	for i, q := range seqs {
		if q != int64(i) {
			t.Fatalf("out of order at %d: %v", i, seqs)
		}
	}
}

func TestBufferTailDrop(t *testing.T) {
	s := sim.New(1)
	n := 0
	l := New(s, Config{RateBps: 1e6, BufferPackets: 5}, func(*packet.Packet) { n++ })
	var droppedPkts []*packet.Packet
	l.OnDrop = func(p *packet.Packet, r DropReason) {
		if r != DropOverflow {
			t.Errorf("reason %v, want overflow", r)
		}
		droppedPkts = append(droppedPkts, p)
	}
	// One goes straight to the transmitter, 5 queue, the rest drop.
	for i := int64(0); i < 10; i++ {
		l.Enqueue(mkData(1, i))
	}
	if got := l.Drops(DropOverflow); got != 4 {
		t.Errorf("overflow drops = %d, want 4", got)
	}
	s.Run()
	if n != 6 {
		t.Errorf("delivered %d, want 6", n)
	}
	if l.TotalDrops() != 4 || len(droppedPkts) != 4 {
		t.Errorf("TotalDrops=%d callback=%d", l.TotalDrops(), len(droppedPkts))
	}
}

func TestAQMDropCounted(t *testing.T) {
	s := sim.New(1)
	l := New(s, Config{RateBps: 1e9, AQM: &dropNth{n: 2}}, func(*packet.Packet) {})
	l.Enqueue(mkData(1, 0))
	l.Enqueue(mkData(1, 1)) // dropped by AQM
	l.Enqueue(mkData(1, 2))
	s.Run()
	if l.Drops(DropAQM) != 1 {
		t.Errorf("AQM drops = %d, want 1", l.Drops(DropAQM))
	}
	if l.Enqueues() != 3 || l.Dequeues() != 2 {
		t.Errorf("enq=%d deq=%d", l.Enqueues(), l.Dequeues())
	}
}

// markAll marks every packet.
type markAll struct{ dropNth }

func (m *markAll) Enqueue(p *packet.Packet, _ aqm.QueueInfo, _ time.Duration) aqm.Verdict {
	return aqm.Mark
}

func TestAQMMarkSetsCE(t *testing.T) {
	s := sim.New(1)
	var got packet.ECN
	l := New(s, Config{RateBps: 1e9, AQM: &markAll{}}, func(p *packet.Packet) { got = p.ECN })
	l.Enqueue(packet.NewData(1, 0, packet.MSS, packet.ECT0))
	s.Run()
	if got != packet.CE {
		t.Errorf("delivered ECN %v, want CE", got)
	}
	if l.Marks() != 1 {
		t.Errorf("marks = %d", l.Marks())
	}
}

func TestHeadSojournAndBacklog(t *testing.T) {
	s := sim.New(1)
	l := New(s, Config{RateBps: 1e6}, func(*packet.Packet) {})
	if l.HeadSojourn(s.Now()) != 0 {
		t.Error("empty queue has sojourn")
	}
	l.Enqueue(mkData(1, 0)) // goes to transmitter
	l.Enqueue(mkData(1, 1)) // queues
	if l.BacklogPackets() != 1 {
		t.Errorf("backlog = %d, want 1", l.BacklogPackets())
	}
	if l.BacklogBytes() != packet.FullLen {
		t.Errorf("backlog bytes = %d", l.BacklogBytes())
	}
	s.RunUntil(5 * time.Millisecond)
	if got := l.HeadSojourn(s.Now()); got != 5*time.Millisecond {
		t.Errorf("head sojourn = %v, want 5ms", got)
	}
}

func TestQueueDelayNow(t *testing.T) {
	s := sim.New(1)
	l := New(s, Config{RateBps: 12e6}, func(*packet.Packet) {})
	l.Enqueue(mkData(1, 0))
	l.Enqueue(mkData(1, 1)) // 1500 B backlog at 12 Mb/s = 1 ms
	if got := l.QueueDelayNow(); got != time.Millisecond {
		t.Errorf("QueueDelayNow = %v, want 1ms", got)
	}
	s.Run()
}

func TestSetRateBps(t *testing.T) {
	s := sim.New(1)
	var at []time.Duration
	l := New(s, Config{RateBps: 12e6}, func(*packet.Packet) { at = append(at, s.Now()) })
	l.Enqueue(mkData(1, 0))
	l.SetRateBps(1.2e6) // the queued packet (not yet started) uses the new rate
	l.Enqueue(mkData(1, 1))
	s.Run()
	// First packet started at old rate: 1 ms. Second at new rate: 10 ms.
	if at[0] != time.Millisecond || at[1] != 11*time.Millisecond {
		t.Errorf("delivery times %v, want [1ms 11ms]", at)
	}
	if l.RateBps() != 1.2e6 {
		t.Error("RateBps getter")
	}
}

func TestUtilizationFull(t *testing.T) {
	s := sim.New(1)
	l := New(s, Config{RateBps: 12e6}, func(*packet.Packet) {})
	for i := int64(0); i < 10; i++ {
		l.Enqueue(mkData(1, i))
	}
	s.Run() // ends exactly when the last packet finishes
	if u := l.Utilization(); u < 0.999 {
		t.Errorf("utilization = %v, want 1", u)
	}
}

func TestUtilizationHalf(t *testing.T) {
	s := sim.New(1)
	l := New(s, Config{RateBps: 12e6}, func(*packet.Packet) {})
	l.Enqueue(mkData(1, 0)) // 1 ms of work
	s.RunUntil(2 * time.Millisecond)
	if u := l.Utilization(); u < 0.49 || u > 0.51 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
}

func TestResetStats(t *testing.T) {
	s := sim.New(1)
	l := New(s, Config{RateBps: 12e6, BufferPackets: 1}, func(*packet.Packet) {})
	l.Enqueue(mkData(1, 0))
	l.Enqueue(mkData(1, 1))
	l.Enqueue(mkData(1, 2)) // overflow
	s.RunUntil(500 * time.Microsecond)
	l.ResetStats()
	if l.TotalDrops() != 0 || l.Enqueues() != 0 || l.Sojourn.N() != 0 {
		t.Error("ResetStats did not clear counters")
	}
	// Utilization window restarts mid-transmission: the link is busy
	// from the reset point on.
	s.RunUntil(time.Millisecond)
	if u := l.Utilization(); u < 0.99 {
		t.Errorf("utilization after mid-busy reset = %v, want ~1", u)
	}
}

func TestSojournRecorded(t *testing.T) {
	s := sim.New(1)
	l := New(s, Config{RateBps: 12e6}, func(*packet.Packet) {})
	l.Enqueue(mkData(1, 0))
	l.Enqueue(mkData(1, 1)) // waits 1 ms before serializing
	s.Run()
	if n := l.Sojourn.N(); n != 2 {
		t.Fatalf("sojourn samples = %d", n)
	}
	if got := l.Sojourn.Max(); got < 0.0009 || got > 0.0011 {
		t.Errorf("max sojourn = %v s, want ~1ms", got)
	}
}

// headDropper drops every packet at dequeue (DequeueDropper).
type headDropper struct{ dropNth }

func (h *headDropper) DequeueVerdict(p *packet.Packet, _ aqm.QueueInfo, _ time.Duration) aqm.Verdict {
	return aqm.Drop
}

func TestDequeueDropperDrainsQueue(t *testing.T) {
	s := sim.New(1)
	n := 0
	l := New(s, Config{RateBps: 1e6, AQM: &headDropper{}}, func(*packet.Packet) { n++ })
	for i := int64(0); i < 5; i++ {
		l.Enqueue(mkData(1, i))
	}
	s.Run()
	if n != 0 {
		t.Errorf("delivered %d with head-drop-everything AQM", n)
	}
	if l.Drops(DropAQM) != 5 {
		t.Errorf("AQM drops = %d, want 5", l.Drops(DropAQM))
	}
	// The link must be idle and reusable afterwards.
	l2 := &dropNth{}
	_ = l2
	if l.BacklogPackets() != 0 {
		t.Error("backlog left behind")
	}
}

func TestDispatcherRoutes(t *testing.T) {
	d := NewDispatcher()
	got := map[int]int{}
	d.Register(1, func(*packet.Packet) { got[1]++ })
	d.Register(2, func(*packet.Packet) { got[2]++ })
	d.Deliver(mkData(1, 0))
	d.Deliver(mkData(2, 0))
	d.Deliver(mkData(2, 1))
	if got[1] != 1 || got[2] != 2 {
		t.Errorf("routing wrong: %v", got)
	}
}

func TestDispatcherUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown flow did not panic")
		}
	}()
	NewDispatcher().Deliver(mkData(9, 0))
}

func TestDispatcherUnregisterDiscards(t *testing.T) {
	d := NewDispatcher()
	d.Register(1, func(*packet.Packet) { t.Fatal("handler called after unregister") })
	d.Unregister(1)
	d.Deliver(mkData(1, 0)) // must not panic, must not call old handler
}

func TestAQMTimerWired(t *testing.T) {
	s := sim.New(1)
	ticker := &countingAQM{interval: 10 * time.Millisecond}
	New(s, Config{RateBps: 1e6, AQM: ticker}, func(*packet.Packet) {})
	s.RunUntil(105 * time.Millisecond)
	if ticker.updates != 10 {
		t.Errorf("updates = %d, want 10", ticker.updates)
	}
}

type countingAQM struct {
	dropNth
	interval time.Duration
	updates  int
}

func (c *countingAQM) UpdateInterval() time.Duration       { return c.interval }
func (c *countingAQM) Update(aqm.QueueInfo, time.Duration) { c.updates++ }

// TestEnqueueAfterReleasePanics: handing the link a packet that already went
// back to the pool is a lifecycle bug and must fail loudly.
func TestEnqueueAfterReleasePanics(t *testing.T) {
	s := sim.New(1)
	l := New(s, Config{RateBps: 1e9}, func(*packet.Packet) {})
	p := s.PacketPool().NewData(1, 0, packet.MSS, packet.NotECT)
	s.PacketPool().Release(p)
	defer func() {
		if recover() == nil {
			t.Fatal("enqueue of a released packet did not panic")
		}
	}()
	l.Enqueue(p)
}

// TestDroppedPacketsRecycled: without an OnDrop observer the link is a
// dropped packet's terminal owner and must return it to the pool.
func TestDroppedPacketsRecycled(t *testing.T) {
	s := sim.New(1)
	l := New(s, Config{RateBps: 1e6, BufferPackets: 1}, func(p *packet.Packet) {
		s.PacketPool().Release(p)
	})
	pool := s.PacketPool()
	for i := int64(0); i < 10; i++ {
		l.Enqueue(pool.NewData(1, i, packet.MSS, packet.NotECT))
	}
	s.Run()
	st := pool.Stats()
	// 1 in transmitter + 1 queued + 8 overflow-dropped; the first drop
	// seeds the free list, so every later emission reuses its slot and at
	// most 3 fresh packets are ever allocated.
	if st.Released != 10 {
		t.Errorf("released = %d, want 10", st.Released)
	}
	if st.Allocated > 3 {
		t.Errorf("allocated %d fresh packets, want ≤ 3", st.Allocated)
	}
}

// TestOnDropObserverKeepsOwnership: with OnDrop set the observer owns the
// dropped packet (tests retain them), so the link must not recycle it.
func TestOnDropObserverKeepsOwnership(t *testing.T) {
	s := sim.New(1)
	l := New(s, Config{RateBps: 1e6, BufferPackets: 1}, func(p *packet.Packet) {})
	var dropped []*packet.Packet
	l.OnDrop = func(p *packet.Packet, _ DropReason) { dropped = append(dropped, p) }
	pool := s.PacketPool()
	for i := int64(0); i < 5; i++ {
		l.Enqueue(pool.NewData(1, i, packet.MSS, packet.NotECT))
	}
	s.Run()
	for _, p := range dropped {
		if p.Released() {
			t.Fatal("link recycled a packet owned by the OnDrop observer")
		}
	}
	if len(dropped) != 3 {
		t.Errorf("dropped %d, want 3", len(dropped))
	}
}

func TestRingCompaction(t *testing.T) {
	// Push/pop enough packets to force the head-index compaction path.
	s := sim.New(1)
	n := 0
	l := New(s, Config{RateBps: 1e9}, func(*packet.Packet) { n++ })
	for i := int64(0); i < 5000; i++ {
		l.Enqueue(mkData(1, i))
		if i%3 == 0 {
			s.RunUntil(s.Now() + 100*time.Microsecond)
		}
	}
	s.Run()
	if n != 5000 {
		t.Errorf("delivered %d, want 5000", n)
	}
}
