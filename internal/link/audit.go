package link

import (
	"fmt"
	"time"

	"pi2/internal/packet"
)

// Auditor is the always-on invariant checker wired into the link's hot
// path. Every Link owns one; it observes each packet event (offer, drop,
// mark, dequeue, delivery) and asserts the structural invariants that must
// hold for any AQM and any traffic mix:
//
//   - packet and byte conservation: offered = accepted + dropped, and
//     accepted − dequeued = backlog, continuously after every event
//   - non-negative queue occupancy (packets and bytes)
//   - ECN sanity: CE marks land only on ECN-capable (ECT) packets, and
//     marks + drops never exceed arrivals
//   - monotone clock: link events never observe time running backwards
//
// Violations are recorded (not panicked) so a failing run can report every
// broken invariant with its virtual timestamp; the experiment harness
// checks Violations() after each run and fails the run with the full
// report. The counters double as the byte-level accounting used by the
// conservation tests.
type Auditor struct {
	// Offered/accepted/dropped cover the enqueue side; dequeued/delivered
	// the drain side. A dequeued packet that is still serializing is in
	// neither the backlog nor delivered.
	OfferedPackets   int
	OfferedBytes     int64
	AcceptedPackets  int
	AcceptedBytes    int64
	DroppedPackets   int
	DroppedBytes     int64
	DequeuedPackets  int
	DequeuedBytes    int64
	DeliveredPackets int
	DeliveredBytes   int64
	MarkedPackets    int
	// ECTOffered counts offered packets that were ECN-capable on arrival.
	ECTOffered int

	// marksByFlow ledgers CE marks per flow ID, allocated lazily on the
	// first mark (an unmarked run pays nothing). Map writes to existing
	// keys don't allocate, so the mark path stays on its zero-allocs/op
	// budget; the per-flow counts are what the accurate-ECN conformance
	// tests reconcile against each sender's CE-acked ledger.
	marksByFlow map[int]int

	// Drops split by where the packet was when it died: before admission
	// (AQM enqueue verdict, buffer overflow) or out of the backlog
	// (CoDel-style head drop). The split is what makes the conservation
	// identities exact.
	droppedPrePkts   int
	droppedPreBytes  int64
	droppedPostPkts  int
	droppedPostBytes int64

	lastEvent  time.Duration
	violations []string
	dropped    int // violations beyond the cap
}

// maxViolations caps the stored report; one broken invariant usually
// repeats for every subsequent packet.
const maxViolations = 16

func (a *Auditor) violate(now time.Duration, format string, args ...any) {
	if len(a.violations) >= maxViolations {
		a.dropped++
		return
	}
	a.violations = append(a.violations,
		fmt.Sprintf("t=%v: %s", now, fmt.Sprintf(format, args...)))
}

// clock asserts the monotone-clock invariant for link events.
func (a *Auditor) clock(now time.Duration) {
	if now < a.lastEvent {
		a.violate(now, "monotone clock: event time %v before previous event %v", now, a.lastEvent)
		return
	}
	a.lastEvent = now
}

// Conserve asserts the continuous conservation identities against the
// queue's live occupancy. The observation methods below are exported so
// other bottleneck implementations (core.DualLink) can wire the same
// auditor into their data paths; within a single simulation they are only
// ever called from that simulation's goroutine.
func (a *Auditor) Conserve(now time.Duration, backlogPackets, backlogBytes int) {
	if backlogPackets < 0 || backlogBytes < 0 {
		a.violate(now, "negative occupancy: backlog %d packets / %d bytes",
			backlogPackets, backlogBytes)
	}
	if a.OfferedPackets != a.AcceptedPackets+a.droppedPrePkts {
		a.violate(now, "packet conservation: offered %d != accepted %d + dropped-at-enqueue %d",
			a.OfferedPackets, a.AcceptedPackets, a.droppedPrePkts)
	}
	if a.OfferedBytes != a.AcceptedBytes+a.droppedPreBytes {
		a.violate(now, "byte conservation: offered %d != accepted %d + dropped-at-enqueue %d",
			a.OfferedBytes, a.AcceptedBytes, a.droppedPreBytes)
	}
	if got := a.AcceptedPackets - a.DequeuedPackets - a.droppedPostPkts; got != backlogPackets {
		a.violate(now, "packet conservation: accepted-dequeued-headdropped %d != backlog %d",
			got, backlogPackets)
	}
	if got := a.AcceptedBytes - a.DequeuedBytes - a.droppedPostBytes; got != int64(backlogBytes) {
		a.violate(now, "byte conservation: accepted-dequeued-headdropped %d != backlog %d",
			got, backlogBytes)
	}
	if a.MarkedPackets+a.DroppedPackets > a.OfferedPackets {
		a.violate(now, "ECN accounting: marks %d + drops %d exceed arrivals %d",
			a.MarkedPackets, a.DroppedPackets, a.OfferedPackets)
	}
}

// Offered observes a packet arriving at the queue, before any verdict.
func (a *Auditor) Offered(p *packet.Packet, now time.Duration) {
	a.clock(now)
	a.OfferedPackets++
	a.OfferedBytes += int64(p.WireLen)
	if p.ECN.ECNCapable() {
		a.ECTOffered++
	}
}

// DroppedPkt observes a drop. fromQueue distinguishes a head drop (the
// packet was already accepted into the backlog) from an enqueue-time drop.
func (a *Auditor) DroppedPkt(p *packet.Packet, now time.Duration, fromQueue bool) {
	a.DroppedPackets++
	a.DroppedBytes += int64(p.WireLen)
	if fromQueue {
		a.droppedPostPkts++
		a.droppedPostBytes += int64(p.WireLen)
	} else {
		a.droppedPrePkts++
		a.droppedPreBytes += int64(p.WireLen)
	}
}

// Marked observes a CE mark; p still carries its pre-mark codepoint.
func (a *Auditor) Marked(p *packet.Packet, now time.Duration) {
	a.MarkedPackets++
	if a.marksByFlow == nil {
		a.marksByFlow = make(map[int]int, 8)
	}
	a.marksByFlow[p.FlowID]++
	if !p.ECN.ECNCapable() {
		a.violate(now, "ECN sanity: CE mark on %v packet (flow %d seq %d)",
			p.ECN, p.FlowID, p.Seq)
	}
}

// MarksForFlow returns the CE marks this bottleneck applied to one flow's
// packets — the AQM side of the accurate-ECN conservation identity (the
// sender side is tcp.Endpoint.CEAcked).
func (a *Auditor) MarksForFlow(flowID int) int { return a.marksByFlow[flowID] }

// Accepted observes a packet entering the backlog.
func (a *Auditor) Accepted(p *packet.Packet, now time.Duration) {
	a.AcceptedPackets++
	a.AcceptedBytes += int64(p.WireLen)
}

// Dequeued observes a packet leaving the backlog for the transmitter.
func (a *Auditor) Dequeued(p *packet.Packet, now time.Duration) {
	a.clock(now)
	a.DequeuedPackets++
	a.DequeuedBytes += int64(p.WireLen)
}

// Delivered observes a packet completing serialization.
func (a *Auditor) Delivered(p *packet.Packet, now time.Duration) {
	a.clock(now)
	a.DeliveredPackets++
	a.DeliveredBytes += int64(p.WireLen)
	if a.DeliveredPackets > a.DequeuedPackets {
		a.violate(now, "conservation: delivered %d packets but only %d dequeued",
			a.DeliveredPackets, a.DequeuedPackets)
	}
}

// Violations returns the recorded invariant failures (nil when clean).
func (a *Auditor) Violations() []string {
	if len(a.violations) == 0 {
		return nil
	}
	out := append([]string(nil), a.violations...)
	if a.dropped > 0 {
		out = append(out, fmt.Sprintf("... and %d further violations", a.dropped))
	}
	return out
}

// Err formats the violations as a single error-report string, prefixed by
// the component name; it returns "" when every invariant held.
func (a *Auditor) Err(component string) string {
	v := a.Violations()
	if len(v) == 0 {
		return ""
	}
	s := fmt.Sprintf("%s: %d invariant violation(s):", component, len(v))
	for _, line := range v {
		s += "\n  " + line
	}
	return s
}

// Audit returns the link's always-on invariant auditor.
func (l *Link) Audit() *Auditor { return &l.aud }
