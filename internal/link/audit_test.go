package link

import (
	"strings"
	"testing"
	"time"

	"pi2/internal/aqm"
	"pi2/internal/packet"
	"pi2/internal/sim"
)

// TestAuditCleanRun drives a link through overflow drops, AQM drops and a
// CoDel-style head drop; the always-on auditor must see zero violations and
// its byte/packet ledgers must balance exactly.
func TestAuditCleanRun(t *testing.T) {
	s := sim.New(1)
	drops := &dropNth{n: 3}
	var delivered int
	l := New(s, Config{RateBps: 12e6, BufferPackets: 4, AQM: drops},
		func(p *packet.Packet) { delivered++ })
	for i := 0; i < 10; i++ {
		l.Enqueue(mkData(1, int64(i))) // forces overflow past 4 queued
	}
	s.Run()

	a := l.Audit()
	if v := a.Violations(); v != nil {
		t.Fatalf("clean run reported violations: %v", v)
	}
	if a.OfferedPackets != 10 {
		t.Errorf("offered %d, want 10", a.OfferedPackets)
	}
	if a.AcceptedPackets+a.DroppedPackets != a.OfferedPackets {
		t.Errorf("accepted %d + dropped %d != offered %d",
			a.AcceptedPackets, a.DroppedPackets, a.OfferedPackets)
	}
	if a.DeliveredPackets != delivered {
		t.Errorf("auditor delivered %d, callback saw %d", a.DeliveredPackets, delivered)
	}
	if a.DeliveredBytes != a.AcceptedBytes {
		t.Errorf("run drained: delivered %d B != accepted %d B", a.DeliveredBytes, a.AcceptedBytes)
	}
}

// TestAuditHeadDropConservation exercises the dequeue-time drop path: CoDel
// head drops leave the backlog without a dequeue, and the auditor's split
// accounting must keep every identity exact.
func TestAuditHeadDropConservation(t *testing.T) {
	s := sim.New(2)
	// CoDel at an absurdly low target so it head-drops aggressively.
	cd := aqm.NewCoDel(aqm.CoDelConfig{Target: time.Microsecond, Interval: time.Millisecond})
	l := New(s, Config{RateBps: 1e6, BufferPackets: 1000, AQM: cd},
		func(p *packet.Packet) {})
	for i := 0; i < 200; i++ {
		at := time.Duration(i) * 100 * time.Microsecond // 10x overload
		seq := int64(i)
		s.At(at, func() { l.Enqueue(mkData(1, seq)) })
	}
	s.Run()
	a := l.Audit()
	if v := a.Violations(); v != nil {
		t.Fatalf("head-drop run reported violations: %v", v)
	}
	if l.TotalDrops() == 0 {
		t.Fatal("test did not exercise drops")
	}
	if a.DroppedPackets != l.TotalDrops() {
		t.Errorf("auditor drops %d != link drops %d", a.DroppedPackets, l.TotalDrops())
	}
}

// TestAuditFlagsBadMark proves the ECN-sanity check fires: an AQM that
// CE-marks Not-ECT traffic is a protocol violation the auditor must report.
func TestAuditFlagsBadMark(t *testing.T) {
	s := sim.New(3)
	l := New(s, Config{RateBps: 12e6, AQM: &markAll{}}, func(p *packet.Packet) {})
	l.Enqueue(mkData(1, 0)) // Not-ECT
	s.Run()
	v := l.Audit().Violations()
	if len(v) == 0 {
		t.Fatal("marking Not-ECT traffic went unreported")
	}
	if !strings.Contains(v[0], "ECN sanity") {
		t.Errorf("violation %q does not name the ECN invariant", v[0])
	}
	if msg := l.Audit().Err("link"); !strings.Contains(msg, "invariant violation") {
		t.Errorf("Err() report malformed: %q", msg)
	}

	// The same AQM marking ECT traffic is legitimate and must stay clean.
	s2 := sim.New(3)
	l2 := New(s2, Config{RateBps: 12e6, AQM: &markAll{}}, func(p *packet.Packet) {})
	l2.Enqueue(packet.NewData(1, 0, packet.MSS, packet.ECT0))
	s2.Run()
	if v := l2.Audit().Violations(); v != nil {
		t.Errorf("marking ECT(0) flagged: %v", v)
	}
}

// TestAuditViolationCap: a persistently broken invariant must not grow the
// report without bound.
func TestAuditViolationCap(t *testing.T) {
	var a Auditor
	p := packet.NewData(1, 0, packet.MSS, packet.NotECT)
	for i := 0; i < 100; i++ {
		a.Marked(p, time.Duration(i))
	}
	v := a.Violations()
	if len(v) > maxViolations+1 {
		t.Fatalf("report has %d entries, cap is %d", len(v), maxViolations)
	}
	if !strings.Contains(v[len(v)-1], "further violations") {
		t.Errorf("overflow summary missing: %v", v[len(v)-1])
	}
}

// TestAuditClockMonotone: the auditor flags a link event that observes time
// running backwards (fed directly; the simulator itself refuses to produce
// one — see sim.Step's monotone-clock panic).
func TestAuditClockMonotone(t *testing.T) {
	var a Auditor
	p := packet.NewData(1, 0, packet.MSS, packet.ECT0)
	a.Offered(p, 5*time.Millisecond)
	a.Offered(p, 3*time.Millisecond)
	v := a.Violations()
	if len(v) != 1 || !strings.Contains(v[0], "monotone clock") {
		t.Fatalf("backwards clock not flagged: %v", v)
	}
}
