package fleet_test

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"pi2/internal/campaign"
	"pi2/internal/fleet"
)

// startTCPHost runs an in-process TCP worker host on a kernel-assigned
// port and returns its address. The listener lives for the remainder of
// the test process (ServeTCP has no stop knob by design — worker hosts are
// killed, not shut down), which is cheap: a handful of parked accepts.
func startTCPHost(t *testing.T) string {
	t.Helper()
	pr, pw := io.Pipe()
	go fleet.ServeTCP("127.0.0.1:0", pw, io.Discard)
	line, err := bufio.NewReader(pr).ReadString('\n')
	if err != nil {
		t.Fatalf("reading host announcement: %v", err)
	}
	addr := strings.TrimSpace(strings.TrimPrefix(line, "fleet: listening on "))
	if addr == "" || addr == strings.TrimSpace(line) {
		t.Fatalf("unexpected host announcement %q", line)
	}
	return addr
}

// syncBuf is a goroutine-safe stderr sink for asserting on fleet logs.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestFleetTCPMatchesInProcess extends the byte-identity contract across
// the TCP transport: a -hosts style fleet (one host, two connections)
// produces exactly the in-process records.
func TestFleetTCPMatchesInProcess(t *testing.T) {
	tasks, opt := buildGrid(t, testSpec{N: 9})
	want := stripTiming(campaign.Execute(tasks, opt))

	hosts, err := fleet.ParseHosts(strings.NewReader(startTCPHost(t) + " workers=2\n"))
	if err != nil {
		t.Fatal(err)
	}
	pool := fleet.NewPool(fleet.Config{Hosts: hosts, Stderr: io.Discard})
	t.Cleanup(pool.Close)
	opt.Dispatch = pool
	got := stripTiming(campaign.Execute(tasks, opt))
	sameRecords(t, want, got, false)
}

// TestFleetTCPChaosByteIdentity drives TCP fleets through seeded
// connection chaos — severed links, truncated frames, stalls long enough
// to trip the heartbeat deadline — and requires the records to stay
// byte-identical to the clean in-process run. The chaos exercises the
// whole fault surface at once: requeue, reconnect with backoff, and (via
// stalls) the liveness machinery.
func TestFleetTCPChaosByteIdentity(t *testing.T) {
	tasks, opt := buildGrid(t, testSpec{N: 10})
	want := stripTiming(campaign.Execute(tasks, opt))
	addr := startTCPHost(t)

	for _, seed := range []int64{1, 7, 42} {
		hosts, err := fleet.ParseHosts(strings.NewReader(addr + " workers=2\n"))
		if err != nil {
			t.Fatal(err)
		}
		pool := fleet.NewPool(fleet.Config{
			Hosts:         hosts,
			Stderr:        io.Discard,
			ChaosSeed:     seed,
			Chaos:         fleet.ChaosProfile{FailEvery: 20, Stall: 400 * time.Millisecond},
			Heartbeat:     50 * time.Millisecond,
			ReconnectBase: 10 * time.Millisecond,
		})
		opt := opt
		opt.Dispatch = pool
		got := stripTiming(campaign.Execute(tasks, opt))
		pool.Close()
		sameRecords(t, want, got, true) // Attempts counts injected crashes
	}
}

// TestFleetChaosStdioByteIdentity runs the same property over the process
// transport, where a severed link cannot redial: slots die, survivors and
// the in-process fallback absorb the queue, records stay identical.
func TestFleetChaosStdioByteIdentity(t *testing.T) {
	tasks, opt := buildGrid(t, testSpec{N: 10})
	want := stripTiming(campaign.Execute(tasks, opt))

	for _, seed := range []int64{3, 11} {
		pool := newChaosPool(t, 2, seed)
		opt := opt
		opt.Dispatch = pool
		got := stripTiming(campaign.Execute(tasks, opt))
		sameRecords(t, want, got, true)
	}
}

// TestFleetDetectsWedgedWorker SIGSTOPs a worker mid-cell: the process is
// alive — its pipes open, its heartbeats silent — so only the read
// deadline can tell. The coordinator must declare it dead within the
// heartbeat budget and re-dispatch its cell through the normal crash path,
// finishing the grid with records identical to in-process.
func TestFleetDetectsWedgedWorker(t *testing.T) {
	tasks, opt := buildGrid(t, testSpec{N: 6, SleepMs: 100})
	want := stripTiming(campaign.Execute(tasks, opt))

	var errlog syncBuf
	pids := make(chan int, 2)
	pool := newPoolWith(t, fleet.Config{
		Workers:   2,
		Heartbeat: 50 * time.Millisecond, // wedge detected within 200 ms
		Stderr:    &errlog,
		OnSpawn:   func(pid int) { pids <- pid },
	})
	opt.Dispatch = pool

	done := make(chan []campaign.RunRecord, 1)
	go func() { done <- stripTiming(campaign.Execute(tasks, opt)) }()

	victim := <-pids
	time.Sleep(120 * time.Millisecond) // mid-cell for both workers
	if err := syscall.Kill(victim, syscall.SIGSTOP); err != nil {
		t.Fatalf("SIGSTOP worker %d: %v", victim, err)
	}
	// The coordinator's disconnect path SIGKILLs the stopped process, so no
	// SIGCONT cleanup is needed — but guard against a hung test anyway.
	var got []campaign.RunRecord
	select {
	case got = <-done:
	case <-time.After(30 * time.Second):
		syscall.Kill(victim, syscall.SIGKILL)
		t.Fatal("campaign did not finish after worker wedge")
	}

	sameRecords(t, want, got, true) // the re-dispatched cell carries extra Attempts
	redispatched := 0
	for _, rec := range got {
		if rec.Err != "" {
			t.Errorf("cell %d failed: %s", rec.Index, rec.Err)
		}
		if rec.Attempts > 1 {
			redispatched++
		}
	}
	if redispatched == 0 {
		t.Error("no record carries Attempts > 1 after the wedge")
	}
	if log := errlog.String(); !strings.Contains(log, "liveness") {
		t.Errorf("stderr lacks a liveness verdict for the wedged worker:\n%s", log)
	}
}

// newPoolWith builds a pool over this test binary's worker mode with an
// arbitrary config (Command/Env filled in unless Hosts is set).
func newPoolWith(t *testing.T, cfg fleet.Config) *fleet.Pool {
	t.Helper()
	if len(cfg.Hosts) == 0 && len(cfg.Command) == 0 {
		exe, err := os.Executable()
		if err != nil {
			t.Fatal(err)
		}
		cfg.Command = []string{exe}
		cfg.Env = []string{workerEnv + "=1"}
	}
	pool := fleet.NewPool(cfg)
	t.Cleanup(pool.Close)
	return pool
}

func newChaosPool(t *testing.T, workers int, seed int64) *fleet.Pool {
	t.Helper()
	return newPoolWith(t, fleet.Config{
		Workers:   workers,
		Stderr:    io.Discard,
		ChaosSeed: seed,
		Chaos:     fleet.ChaosProfile{FailEvery: 25},
	})
}
