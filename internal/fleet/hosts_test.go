package fleet_test

import (
	"strings"
	"testing"

	"pi2/internal/fleet"
)

func TestParseHosts(t *testing.T) {
	inv := `
# production fleet
10.0.0.7:9000  workers=8 shards=4
10.0.0.9:9000  workers=2 ff=true   # trailing comment
10.0.0.11:9000
`
	hosts, err := fleet.ParseHosts(strings.NewReader(inv))
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 3 {
		t.Fatalf("parsed %d hosts, want 3", len(hosts))
	}
	h := hosts[0]
	if h.Addr != "10.0.0.7:9000" || h.Workers != 8 || !h.Over.ShardsSet || h.Over.Shards != 4 || h.Over.FFSet {
		t.Errorf("host 0 = %+v", h)
	}
	h = hosts[1]
	if h.Addr != "10.0.0.9:9000" || h.Workers != 2 || !h.Over.FFSet || !h.Over.FF || h.Over.ShardsSet {
		t.Errorf("host 1 = %+v", h)
	}
	h = hosts[2]
	if h.Addr != "10.0.0.11:9000" || h.Workers != 1 || h.Over.ShardsSet || h.Over.FFSet {
		t.Errorf("host 2 = %+v (workers should default to 1, no overrides)", h)
	}
}

func TestParseHostsErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "# only comments\n\n",
		"bad pair":    "h:1 workers\n",
		"bad workers": "h:1 workers=0\n",
		"bad shards":  "h:1 shards=-2\n",
		"bad ff":      "h:1 ff=maybe\n",
		"unknown key": "h:1 retries=3\n",
	}
	for name, inv := range cases {
		if _, err := fleet.ParseHosts(strings.NewReader(inv)); err == nil {
			t.Errorf("%s: inventory %q parsed without error", name, inv)
		}
	}
}
