package fleet_test

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"pi2/internal/campaign"
	"pi2/internal/fleet"
)

// workerEnv re-executes this test binary as a fleet worker: TestMain sees
// the variable and serves the protocol instead of running tests.
const workerEnv = "PI2_FLEET_WORKER"

func TestMain(m *testing.M) {
	if os.Getenv(workerEnv) == "1" {
		if err := fleet.Serve(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "fleet test worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// fleetRes is the test cells' result payload.
type fleetRes struct {
	Index int
	Value float64
}

// testSpec parameterizes the registered test grid. Poison marks a cell
// that hard-exits the worker process mid-run (only in worker mode — the
// coordinator's in-process fallback must survive running it).
type testSpec struct {
	N       int `json:"n"`
	SleepMs int `json:"sleep_ms"`
	Poison  int `json:"poison"`
}

func init() {
	campaign.RegisterWireType(fleetRes{})
	campaign.RegisterSource("fleettest", func(raw []byte) ([]campaign.Task, error) {
		var sp testSpec
		if err := json.Unmarshal(raw, &sp); err != nil {
			return nil, err
		}
		tasks := make([]campaign.Task, sp.N)
		for i := range tasks {
			i := i
			tasks[i] = campaign.Task{
				Name:      "fleettest",
				SeedIndex: i,
				Params:    map[string]any{"i": i},
				Run: func(tc *campaign.TaskCtx) any {
					if sp.SleepMs > 0 {
						time.Sleep(time.Duration(sp.SleepMs) * time.Millisecond)
					}
					if i == sp.Poison-1 && os.Getenv(workerEnv) == "1" {
						os.Exit(3) // simulated OOM-kill, worker mode only
					}
					return fleetRes{Index: i, Value: float64(tc.Seed%1009) + float64(i)/7}
				},
			}
		}
		return tasks, nil
	})
}

// buildGrid resolves the registered source exactly as a worker would.
func buildGrid(t *testing.T, sp testSpec) ([]campaign.Task, campaign.ExecOptions) {
	t.Helper()
	raw, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	src, ok := campaign.LookupSource("fleettest")
	if !ok {
		t.Fatal("fleettest source not registered")
	}
	tasks, err := src(raw)
	if err != nil {
		t.Fatal(err)
	}
	return tasks, campaign.ExecOptions{
		Jobs: 2, BaseSeed: 1, Family: "fleettest", Spec: raw,
	}
}

func newTestPool(t *testing.T, workers int, onSpawn func(int)) *fleet.Pool {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	pool := fleet.NewPool(fleet.Config{
		Workers: workers,
		Command: []string{exe},
		Env:     []string{workerEnv + "=1"},
		OnSpawn: onSpawn,
	})
	t.Cleanup(pool.Close)
	return pool
}

// stripTiming drops the host-dependent fields so records can be compared
// exactly across execution paths.
func stripTiming(recs []campaign.RunRecord) []campaign.RunRecord {
	out := append([]campaign.RunRecord(nil), recs...)
	for i := range out {
		out[i].WallMs = 0
		out[i].EventsPerSec = 0
	}
	return out
}

func sameRecords(t *testing.T, want, got []campaign.RunRecord, ignoreAttempts bool) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("record count: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if ignoreAttempts {
			g.Attempts = w.Attempts
		}
		if w.Name != g.Name || w.Index != g.Index || w.Seed != g.Seed ||
			w.Err != g.Err || w.Attempts != g.Attempts ||
			fmt.Sprint(w.Params) != fmt.Sprint(g.Params) ||
			fmt.Sprint(w.Result) != fmt.Sprint(g.Result) {
			t.Errorf("record %d differs:\nwant %+v\ngot  %+v", i, w, g)
		}
	}
}

// TestFleetMatchesInProcess pins the determinism contract at the record
// level: the same grid through 1-worker and 3-worker fleets produces
// exactly the records the in-process pool produces.
func TestFleetMatchesInProcess(t *testing.T) {
	tasks, opt := buildGrid(t, testSpec{N: 9})
	want := stripTiming(campaign.Execute(tasks, opt))

	for _, workers := range []int{1, 3} {
		opt := opt
		opt.Dispatch = newTestPool(t, workers, nil)
		got := stripTiming(campaign.Execute(tasks, opt))
		sameRecords(t, want, got, false)
	}
}

// TestFleetSurvivesSIGKILL kills one worker process mid-campaign and
// verifies the grid still completes with the exact in-process records;
// the re-dispatched in-flight cell surfaces the crash in Attempts.
func TestFleetSurvivesSIGKILL(t *testing.T) {
	tasks, opt := buildGrid(t, testSpec{N: 6, SleepMs: 200})
	want := stripTiming(campaign.Execute(tasks, opt))

	pids := make(chan int, 2)
	opt.Dispatch = newTestPool(t, 2, func(pid int) { pids <- pid })

	done := make(chan []campaign.RunRecord, 1)
	go func() { done <- stripTiming(campaign.Execute(tasks, opt)) }()

	victim := <-pids
	// Both workers hold a 200 ms cell from t=0 (and again from t=200);
	// killing at t=300 lands mid-cell.
	time.Sleep(300 * time.Millisecond)
	if err := syscall.Kill(victim, syscall.SIGKILL); err != nil {
		t.Fatalf("kill worker %d: %v", victim, err)
	}

	got := <-done
	sameRecords(t, want, got, true) // Attempts differs on the re-dispatched cell
	redispatched := 0
	for _, rec := range got {
		if rec.Err != "" {
			t.Errorf("cell %d failed: %s", rec.Index, rec.Err)
		}
		if rec.Attempts > 1 {
			redispatched++
		}
	}
	if redispatched == 0 {
		t.Error("no record carries Attempts > 1 after a worker SIGKILL")
	}
}

// TestFleetCrashBudget aims a poison cell (hard process exit) at the
// fleet: it kills every worker it is dispatched to, exhausts the crash
// budget (Retries+1 re-dispatches), and gets an error record — while
// every other cell completes via re-dispatch or the in-process fallback.
func TestFleetCrashBudget(t *testing.T) {
	const poisonIdx = 2
	tasks, opt := buildGrid(t, testSpec{N: 5, Poison: poisonIdx + 1})
	opt.Dispatch = newTestPool(t, 2, nil)

	recs := stripTiming(campaign.Execute(tasks, opt))
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	for _, rec := range recs {
		if rec.Index == poisonIdx {
			if !strings.Contains(rec.Err, "crash budget") {
				t.Errorf("poison cell: Err = %q, want crash-budget failure", rec.Err)
			}
			if rec.Attempts != 2 {
				t.Errorf("poison cell: Attempts = %d, want 2 (one per killed worker)", rec.Attempts)
			}
			continue
		}
		if rec.Err != "" {
			t.Errorf("cell %d: unexpected error %q", rec.Index, rec.Err)
		}
		if _, ok := rec.Result.(fleetRes); !ok {
			t.Errorf("cell %d: result %T, want fleetRes", rec.Index, rec.Result)
		}
	}
}

// TestFleetCrashBudgetWithRetries raises Retries so the poison cell falls
// through to the in-process fallback after killing both workers, where it
// completes (the coordinator is not a worker, so the poison is inert).
func TestFleetCrashBudgetWithRetries(t *testing.T) {
	const poisonIdx = 1
	tasks, opt := buildGrid(t, testSpec{N: 4, Poison: poisonIdx + 1})
	opt.Retries = 2 // crash budget 3 > the 2 workers available
	opt.Dispatch = newTestPool(t, 2, nil)

	recs := stripTiming(campaign.Execute(tasks, opt))
	for _, rec := range recs {
		if rec.Err != "" {
			t.Errorf("cell %d: unexpected error %q (fallback should have completed it)", rec.Index, rec.Err)
		}
	}
	if recs[poisonIdx].Attempts <= 1 {
		t.Errorf("poison cell: Attempts = %d, want > 1 (crashes recorded)", recs[poisonIdx].Attempts)
	}
}
