package fleet_test

import (
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"pi2/internal/campaign"
	"pi2/internal/fleet"
)

// TestJournalRoundTrip writes a segment through the sink API and replays
// it: clean records resume, failed records and absent cells don't, and a
// different grid spec — same family — misses entirely.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	spec := []byte(`{"n":5}`)

	j, err := fleet.OpenJournal(path, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	j.BeginSegment("fleettest", spec, 5)
	for i := 0; i < 3; i++ {
		j.Record(campaign.RunRecord{
			Name: "fleettest", Index: i, Seed: int64(100 + i),
			Result: fleetRes{Index: i, Value: float64(i)},
		})
	}
	j.Record(campaign.RunRecord{Name: "fleettest", Index: 3, Err: "watchdog: killed"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	rs, stats, err := fleet.LoadResume(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Segments != 1 || stats.Records != 4 || stats.Truncated != 0 {
		t.Fatalf("stats = %+v, want 1 segment, 4 records, 0 truncated", stats)
	}
	for i := 0; i < 3; i++ {
		rec, ok := rs.Lookup("fleettest", spec, i)
		if !ok {
			t.Fatalf("cell %d did not resume", i)
		}
		if rec.Seed != int64(100+i) {
			t.Errorf("cell %d: seed %d, want %d", i, rec.Seed, 100+i)
		}
		if res, _ := rec.Result.(fleetRes); res.Index != i {
			t.Errorf("cell %d: result %+v", i, rec.Result)
		}
	}
	if _, ok := rs.Lookup("fleettest", spec, 3); ok {
		t.Error("failed cell resumed; it must re-run")
	}
	if _, ok := rs.Lookup("fleettest", spec, 4); ok {
		t.Error("never-journaled cell resumed")
	}
	if _, ok := rs.Lookup("fleettest", []byte(`{"n":6}`), 0); ok {
		t.Error("lookup with a different spec hit the wrong segment")
	}
	if _, ok := rs.Lookup("other", spec, 0); ok {
		t.Error("lookup with a different family hit the wrong segment")
	}
}

// TestJournalTornTail simulates a coordinator dying mid-append: garbage
// past the last whole frame must be truncated on replay — in the file, not
// just in memory — so the next append starts at a frame boundary.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	spec := []byte("spec")

	j, err := fleet.OpenJournal(path, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	j.BeginSegment("fleettest", spec, 2)
	j.Record(campaign.RunRecord{Name: "fleettest", Index: 0, Result: fleetRes{}})
	j.Record(campaign.RunRecord{Name: "fleettest", Index: 1, Result: fleetRes{Index: 1}})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("torn half-frame"))
	f.Close()

	rs, stats, err := fleet.LoadResume(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Truncated == 0 {
		t.Fatal("torn tail not detected")
	}
	if rs.Len() != 2 {
		t.Fatalf("resumed %d cells, want 2", rs.Len())
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != clean.Size() {
		t.Fatalf("file is %d bytes after truncation, want %d", after.Size(), clean.Size())
	}
	// A second replay of the repaired file is clean.
	if _, stats, err = fleet.LoadResume(path); err != nil || stats.Truncated != 0 {
		t.Fatalf("repaired journal still torn: stats=%+v err=%v", stats, err)
	}
}

// TestResumeSkipsCompletedCells closes the loop through the campaign
// engine: a journaled run, then a resumed run of the same grid, must
// re-execute only the unjournaled cells and still emit all of them.
func TestResumeSkipsCompletedCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	spec := []byte("resume-grid")

	var runs atomic.Int32
	tasks := make([]campaign.Task, 5)
	for i := range tasks {
		i := i
		tasks[i] = campaign.Task{
			Name: "resumetest", SeedIndex: i,
			Run: func(tc *campaign.TaskCtx) any {
				runs.Add(1)
				return fleetRes{Index: i, Value: float64(tc.Seed % 97)}
			},
		}
	}
	opt := campaign.ExecOptions{Jobs: 2, BaseSeed: 1, Family: "resumetest", Spec: spec}

	j, err := fleet.OpenJournal(path, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	opt.Journal = j
	first := stripTiming(campaign.Execute(tasks, opt))
	j.Close()
	if got := runs.Load(); got != 5 {
		t.Fatalf("first run executed %d cells, want 5", got)
	}

	// Kill the journal for cells 1 and 3 by rewriting it without them,
	// simulating a coordinator killed before they finished.
	rs, _, err := fleet.LoadResume(path)
	if err != nil {
		t.Fatal(err)
	}
	partial := filepath.Join(t.TempDir(), "partial.journal")
	pj, err := fleet.OpenJournal(partial, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	pj.BeginSegment("resumetest", spec, 5)
	for _, i := range []int{0, 2, 4} {
		rec, ok := rs.Lookup("resumetest", spec, i)
		if !ok {
			t.Fatalf("cell %d missing from full journal", i)
		}
		pj.Record(rec)
	}
	pj.Close()

	prs, _, err := fleet.LoadResume(partial)
	if err != nil {
		t.Fatal(err)
	}
	runs.Store(0)
	opt.Journal = nil
	opt.Resume = prs
	second := stripTiming(campaign.Execute(tasks, opt))
	if got := runs.Load(); got != 2 {
		t.Fatalf("resumed run executed %d cells, want 2 (cells 1 and 3)", got)
	}
	sameRecords(t, first, second, true)
}
