package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"

	"pi2/internal/campaign"
)

// Config describes a worker fleet.
type Config struct {
	// Workers is the number of local worker processes (min 1). Ignored
	// when Hosts is set.
	Workers int
	// Command is the argv spawning one local worker; it must speak the
	// fleet protocol on stdin/stdout. Default: the running binary with
	// -worker appended, i.e. []string{os.Executable(), "-worker"}.
	Command []string
	// Env is appended to the parent environment for each local worker.
	Env []string
	// Hosts, when non-empty, replaces local workers with TCP connections
	// to `pi2bench -serve` hosts: each Host contributes Host.Workers
	// slots, with its composition overrides applied to their init.
	Hosts []Host
	// Stderr receives the workers' stderr, each line prefixed [w<pid>]
	// (default os.Stderr): cell panics are caught inside the worker, so
	// anything here is diagnostic.
	Stderr io.Writer
	// OnSpawn, if set, observes each worker process ID as its connection
	// handshakes — the crash-recovery tests use it to aim their signals.
	OnSpawn func(pid int)

	// Heartbeat is the interval workers emit liveness envelopes at while
	// a cell runs; the coordinator declares a worker dead after
	// hbReadFactor silent intervals (default 1s, so detection within 4s).
	Heartbeat time.Duration
	// HandshakeTimeout bounds the hello and ready reads (default 10s).
	HandshakeTimeout time.Duration
	// ReconnectAttempts is how many times a broken redialable link is
	// re-established before its slot is abandoned (default 6).
	ReconnectAttempts int
	// ReconnectBase and ReconnectCap shape the exponential backoff
	// between attempts: base<<attempt, capped, ±50% jitter (defaults
	// 100ms and 3s).
	ReconnectBase, ReconnectCap time.Duration

	// ChaosSeed, when non-zero, wraps every dialed connection in a seeded
	// flakyConn (drops, stalls, partial writes, truncated frames) to
	// prove records survive connection chaos byte-identically. The crash
	// budget is raised to chaosCrashBudget so injected faults don't
	// exhaust a real campaign's Retries+1.
	ChaosSeed int64
	// Chaos tunes the injected fault mix (zero value = defaults).
	Chaos ChaosProfile
}

func (c Config) heartbeat() time.Duration {
	if c.Heartbeat > 0 {
		return c.Heartbeat
	}
	return defaultHeartbeat
}

func (c Config) handshakeTimeout() time.Duration {
	if c.HandshakeTimeout > 0 {
		return c.HandshakeTimeout
	}
	return 10 * time.Second
}

func (c Config) reconnectAttempts() int {
	if c.ReconnectAttempts > 0 {
		return c.ReconnectAttempts
	}
	return 6
}

// chaosCrashBudget replaces Retries+1 as the per-cell crash budget under
// -fleet-chaos: injected connection faults charge the same ledger as real
// worker deaths, and the default budget would starve real campaigns' cells
// long before the chaos proves anything.
const chaosCrashBudget = 63

// deadlineMargin pads the coordinator's total-cell deadline past the
// worker-side watchdog budget (Timeout+Grace): the worker's own watchdog
// must get every fair chance to return a TimedOut record before the
// coordinator declares the worker itself wedged.
const deadlineMargin = 10 * time.Second

// Pool is a fleet coordinator: it implements campaign.Dispatcher over a
// set of persistent worker links — spawned child processes (stdio) or
// remote `pi2bench -serve` hosts (TCP). Links are established lazily on
// the first Dispatch and re-initialized (not re-dialed) for each
// subsequent matrix, so a multi-experiment invocation pays connection
// setup once.
type Pool struct {
	cfg Config

	mu      sync.Mutex
	workers []*worker
	spawned bool
}

// worker is one coordinator-side slot. Its connection fields are owned by
// the goroutine driving it during a Dispatch; dead transitions once.
type worker struct {
	tr   Transport
	over Overrides
	slot int

	conn  Conn
	enc   *json.Encoder
	dec   *json.Decoder
	pid   int
	dials int
	dead  bool
}

// NewPool builds a pool; no connections open until the first Dispatch.
func NewPool(cfg Config) *Pool {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Stderr == nil {
		cfg.Stderr = os.Stderr
	}
	return &Pool{cfg: cfg}
}

// Close severs every link. For local workers, closing stdin asks for a
// clean exit and Kill covers the ones that don't (procConn.Close); remote
// hosts just see the connection drop and keep serving other coordinators.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, w := range p.workers {
		if w.conn != nil {
			w.conn.Close()
			w.conn = nil
		}
	}
	p.workers = nil
	p.spawned = false
}

// buildSlotsLocked materializes the worker slots (without dialing).
func (p *Pool) buildSlotsLocked() {
	if p.spawned {
		return
	}
	p.spawned = true
	if len(p.cfg.Hosts) > 0 {
		slot := 0
		for _, h := range p.cfg.Hosts {
			for i := 0; i < h.Workers; i++ {
				p.workers = append(p.workers, &worker{
					tr: &tcpTransport{addr: h.Addr}, over: h.Over, slot: slot,
				})
				slot++
			}
		}
		return
	}
	argv := p.cfg.Command
	if len(argv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintf(p.cfg.Stderr, "fleet: cannot locate own binary (%v); campaign runs in-process\n", err)
			return
		}
		argv = []string{exe, "-worker"}
	}
	for i := 0; i < p.cfg.Workers; i++ {
		p.workers = append(p.workers, &worker{
			tr:   &procTransport{argv: argv, env: p.cfg.Env, stderr: p.cfg.Stderr},
			slot: i,
		})
	}
}

// permErr marks a failure that redialing cannot fix: protocol or binary
// drift, an unknown task family, a matrix-size disagreement. Slots failing
// permanently are dismissed without burning reconnect attempts.
type permErr struct{ error }

func permanent(err error) bool {
	var p permErr
	return errors.As(err, &p)
}

// establish dials the slot's transport and performs the connection
// handshake: the worker speaks first with hello{proto, fingerprint, pid},
// and a drifted binary is rejected here — explicitly, before any matrix
// state — rather than surfacing as a matrix-size heuristic later.
func (p *Pool) establish(w *worker) error {
	conn, err := w.tr.Dial()
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	w.dials++
	if p.cfg.ChaosSeed != 0 {
		seed := p.cfg.ChaosSeed ^ int64(uint64(w.slot)*0x9E3779B97F4A7C15) ^ int64(w.dials)<<32
		conn = newFlakyConn(conn, seed, p.cfg.Chaos)
	}
	dec := json.NewDecoder(conn)
	conn.SetReadDeadline(time.Now().Add(p.cfg.handshakeTimeout()))
	var hello envelope
	if err := dec.Decode(&hello); err != nil {
		conn.Close()
		return fmt.Errorf("read hello: %w", err)
	}
	conn.SetReadDeadline(time.Time{})
	if hello.Type != "hello" {
		conn.Close()
		return permErr{fmt.Errorf("handshake: got %q, want hello (pre-handshake worker?)", hello.Type)}
	}
	if hello.Proto != ProtoVersion {
		conn.Close()
		return permErr{fmt.Errorf("protocol drift: worker speaks v%d, coordinator v%d — rebuild and redeploy one binary",
			hello.Proto, ProtoVersion)}
	}
	if hello.FP != Fingerprint() {
		conn.Close()
		return permErr{fmt.Errorf("binary drift: worker fingerprint %.12s… != coordinator %.12s… — deploy the same build everywhere",
			hello.FP, Fingerprint())}
	}
	w.conn, w.dec, w.enc, w.pid = conn, dec, json.NewEncoder(conn), hello.Pid
	if p.cfg.OnSpawn != nil {
		p.cfg.OnSpawn(hello.Pid)
	}
	return nil
}

// tryInit (re)establishes the link if needed and initializes the worker
// for this matrix, applying the slot's composition overrides.
func (p *Pool) tryInit(w *worker, tasks []campaign.Task, opt campaign.ExecOptions) error {
	if w.conn == nil {
		if err := p.establish(w); err != nil {
			return err
		}
	}
	init := initEnvelope(opt, w.over, p.cfg.heartbeat().Nanoseconds())
	if err := w.enc.Encode(init); err != nil {
		return fmt.Errorf("init write: %w", err)
	}
	// Matrix building is cheap (a registered source decoding a small
	// spec); a generous multiple of the handshake budget bounds it.
	w.conn.SetReadDeadline(time.Now().Add(3 * p.cfg.handshakeTimeout()))
	var ready envelope
	if err := w.dec.Decode(&ready); err != nil {
		return fmt.Errorf("init read: %w", err)
	}
	w.conn.SetReadDeadline(time.Time{})
	switch {
	case ready.Type != "ready":
		return permErr{fmt.Errorf("protocol: got %q, want ready", ready.Type)}
	case ready.Err != "":
		return permErr{errors.New(ready.Err)}
	case ready.Tasks != len(tasks):
		return permErr{fmt.Errorf("matrix size mismatch: worker built %d tasks, coordinator has %d",
			ready.Tasks, len(tasks))}
	}
	return nil
}

// backoff returns the wait before reconnect attempt k: capped exponential
// with ±50% jitter, so a rebooting host isn't hammered in lockstep by
// every slot that lost a connection to it.
func (p *Pool) backoff(attempt int) time.Duration {
	base := p.cfg.ReconnectBase
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := p.cfg.ReconnectCap
	if max <= 0 {
		max = 3 * time.Second
	}
	d := base << attempt
	if d <= 0 || d > max {
		d = max
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// initWorker brings one slot to a ready state for this matrix, redialing
// through backoff when the transport supports it. Returns false when the
// slot should sit the campaign out.
func (p *Pool) initWorker(w *worker, tasks []campaign.Task, opt campaign.ExecOptions) bool {
	for attempt := 0; ; attempt++ {
		err := p.tryInit(w, tasks, opt)
		if err == nil {
			return true
		}
		p.disconnect(w, fmt.Sprintf("init: %v", err))
		if permanent(err) || !w.tr.Redial() || attempt >= p.cfg.reconnectAttempts() {
			return false
		}
		time.Sleep(p.backoff(attempt))
	}
}

// dispatchState is the shared cell ledger for one Dispatch call.
type dispatchState struct {
	mu          sync.Mutex
	cond        *sync.Cond
	queue       []int // cells not currently running, FIFO (re-dispatches at front)
	outstanding int   // cells without a final record
	crashes     map[int]int
	done        chan struct{} // closed when outstanding hits 0
}

// newDispatchState builds the ledger for n cells, excluding the skip set
// (cells a resumed campaign already has final records for).
func newDispatchState(n int, skip map[int]bool) *dispatchState {
	st := &dispatchState{
		crashes: make(map[int]int),
		done:    make(chan struct{}),
	}
	st.cond = sync.NewCond(&st.mu)
	for i := 0; i < n; i++ {
		if !skip[i] {
			st.queue = append(st.queue, i)
			st.outstanding++
		}
	}
	if st.outstanding == 0 {
		close(st.done)
	}
	return st
}

// take pops the next cell. An empty queue with cells still in flight
// elsewhere blocks rather than returning: a sibling worker may die and
// requeue its cell, and an idle worker must be there to steal it. take
// only reports false once every cell has a final record (or the caller's
// worker is the last one standing and dies — then nobody waits).
func (s *dispatchState) take() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && s.outstanding > 0 {
		s.cond.Wait()
	}
	if len(s.queue) == 0 {
		return 0, false
	}
	i := s.queue[0]
	s.queue = s.queue[1:]
	return i, true
}

// finish records that cell i's final record was emitted.
func (s *dispatchState) finish() {
	s.mu.Lock()
	s.outstanding--
	if s.outstanding == 0 {
		s.cond.Broadcast()
		close(s.done)
	}
	s.mu.Unlock()
}

// drained reports whether every cell has its final record.
func (s *dispatchState) drained() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// crashCount reports how many worker deaths cell i has survived.
func (s *dispatchState) crashCount(i int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashes[i]
}

// crashed records a worker death while cell i was in flight and decides
// its fate: requeue at the front (true) while the crash budget lasts, or
// give up (false). The budget is budget+1 re-dispatches: a process death
// says nothing deterministic about the cell (the usual cause is memory
// pressure), so even a no-retries campaign gets one more try on a
// surviving worker. The dying worker's driver may exit after this call,
// so wake an idle sibling to steal the requeued cell.
func (s *dispatchState) crashed(i, budget int) (requeue bool, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashes[i]++
	n = s.crashes[i]
	if n <= budget+1 {
		s.queue = append([]int{i}, s.queue...)
		s.cond.Broadcast()
		return true, n
	}
	return false, n
}

// remaining returns the unfinished cells in index order (only non-empty
// when every worker died) and unblocks any future waiters.
func (s *dispatchState) remaining() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.queue...)
}

// Dispatch implements campaign.Dispatcher: init every live worker with the
// (family, spec) matrix identity, then pull-dispatch cells until the grid
// drains. One Dispatch runs at a time per pool (experiments within an
// invocation are sequential; the lock makes it explicit).
func (p *Pool) Dispatch(tasks []campaign.Task, opt campaign.ExecOptions, emit func(campaign.RunRecord)) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.buildSlotsLocked()

	live := p.initWorkers(tasks, opt)

	st := newDispatchState(len(tasks), opt.SkipDone)

	var wg sync.WaitGroup
	for _, w := range live {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			p.drive(w, tasks, opt, st, emit)
		}(w)
	}
	wg.Wait()

	// Every worker is gone but cells remain: degrade to in-process
	// execution — the coordinator still holds the real closures, and
	// RunOne keeps the records identical to what a worker would have
	// produced.
	if rem := st.remaining(); len(rem) > 0 {
		fmt.Fprintf(p.cfg.Stderr, "fleet: all %d workers gone with %d cells left; finishing in-process\n",
			len(live), len(rem))
		for _, i := range rem {
			rec := campaign.RunOne(tasks[i], i, opt)
			rec.Attempts += st.crashes[i]
			emit(rec)
		}
	}
	return nil
}

// initWorkers (re)initializes every slot for this matrix and returns the
// usable ones. A slot that fails init permanently (binary drift, unknown
// family, matrix-size disagreement) or exhausts its reconnect budget is
// marked dead and sits out the campaign.
func (p *Pool) initWorkers(tasks []campaign.Task, opt campaign.ExecOptions) []*worker {
	var live []*worker
	for _, w := range p.workers {
		if w.dead {
			continue
		}
		if p.initWorker(w, tasks, opt) {
			live = append(live, w)
		} else {
			p.killSlot(w)
		}
	}
	return live
}

// drive runs one worker's request/response loop until the queue drains or
// the worker dies. A connection failure requeues the in-flight cell (or —
// past the crash budget — records it failed), then the link is re-dialed
// with backoff when the transport supports it; only when reconnection is
// impossible or exhausted does the driver exit and the slot die.
func (p *Pool) drive(w *worker, tasks []campaign.Task, opt campaign.ExecOptions,
	st *dispatchState, emit func(campaign.RunRecord)) {
	budget := opt.Retries
	if p.cfg.ChaosSeed != 0 && budget < chaosCrashBudget {
		budget = chaosCrashBudget
	}
	for {
		i, ok := st.take()
		if !ok {
			return
		}
		rec, err := p.runCell(w, i, opt)
		if err == nil {
			// Crash count is execution metadata: re-dispatched cells
			// surface how many process deaths they survived without
			// perturbing the record's deterministic payload.
			rec.Attempts += st.crashCount(i)
			emit(rec)
			st.finish()
			continue
		}
		p.disconnect(w, fmt.Sprintf("cell %d: %v", i, err))
		requeue, n := st.crashed(i, budget)
		if !requeue {
			t := tasks[i]
			emit(campaign.RunRecord{
				Name: t.Name, Index: i,
				Seed:     campaign.DeriveSeed(opt.BaseSeed, t.SeedIndex),
				Params:   t.Params,
				Err:      fmt.Sprintf("fleet: cell killed %d worker link(s); crash budget exhausted", n),
				Attempts: n,
			})
			st.finish()
		}
		if !p.reestablish(w, tasks, opt, st) {
			p.killSlot(w)
			return
		}
	}
}

// reestablish re-dials a broken link mid-campaign with capped backoff +
// jitter, re-handshakes and re-inits so the slot rejoins the steal pool.
// It gives up — reporting false — when the transport cannot redial, the
// failure is permanent (drift), the attempts are exhausted, or the grid
// drains while waiting (nothing left to rejoin for).
func (p *Pool) reestablish(w *worker, tasks []campaign.Task, opt campaign.ExecOptions,
	st *dispatchState) bool {
	if !w.tr.Redial() {
		return false
	}
	for attempt := 0; attempt < p.cfg.reconnectAttempts(); attempt++ {
		select {
		case <-st.done:
			return false
		case <-time.After(p.backoff(attempt)):
		}
		err := p.tryInit(w, tasks, opt)
		if err == nil {
			fmt.Fprintf(p.cfg.Stderr, "fleet: worker %d (%s) reconnected after %d attempt(s)\n",
				w.pid, w.tr, attempt+1)
			return true
		}
		p.disconnect(w, fmt.Sprintf("reconnect %d/%d: %v", attempt+1, p.cfg.reconnectAttempts(), err))
		if permanent(err) {
			return false
		}
	}
	return false
}

// runCell sends one run request and reads heartbeats until the record
// arrives. Every read is bounded: by the heartbeat deadline (hbReadFactor
// silent intervals means the worker process is wedged — SIGSTOP, livelock
// — even if its host is reachable), and by the cell's total budget when a
// watchdog is armed (Timeout+Grace+margin: a worker still heartbeating
// past the point its own watchdog must have fired is wedged in grace
// handling). Any error means the worker can no longer be trusted — the
// protocol is strictly serial, so a partial read has no recovery point.
func (p *Pool) runCell(w *worker, i int, opt campaign.ExecOptions) (campaign.RunRecord, error) {
	var rec campaign.RunRecord
	if err := w.enc.Encode(envelope{Type: "run", Index: i}); err != nil {
		return rec, fmt.Errorf("write: %w", err)
	}
	var total time.Time
	if t := opt.Watchdog.Timeout; t > 0 {
		grace := opt.Watchdog.Grace
		if grace <= 0 {
			grace = time.Second
		}
		total = time.Now().Add(t + grace + deadlineMargin)
	}
	deadlines := true
	for {
		if deadlines {
			d := time.Now().Add(hbReadFactor * p.cfg.heartbeat())
			if !total.IsZero() && total.Before(d) {
				d = total
			}
			if err := w.conn.SetReadDeadline(d); err != nil {
				deadlines = false // transport can't enforce them; fall back to blocking reads
			}
		}
		var env envelope
		if err := w.dec.Decode(&env); err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				return rec, fmt.Errorf("liveness: no heartbeat within %v (worker wedged, not slow)",
					hbReadFactor*p.cfg.heartbeat())
			}
			return rec, fmt.Errorf("read: %w", err)
		}
		switch env.Type {
		case "hb":
			if env.Index != i {
				return rec, fmt.Errorf("protocol: heartbeat for cell %d while running %d", env.Index, i)
			}
		case "record":
			if deadlines {
				w.conn.SetReadDeadline(time.Time{})
			}
			if env.Index != i {
				return rec, fmt.Errorf("protocol: record for index %d, want %d", env.Index, i)
			}
			if env.Err != "" {
				return rec, fmt.Errorf("worker: %s", env.Err)
			}
			return campaign.DecodeRecord(env.Rec)
		default:
			return rec, fmt.Errorf("protocol: got %q for index %d, want record", env.Type, env.Index)
		}
	}
}

// disconnect tears down a slot's current link (killing and reaping the
// child for the process transport) without declaring the slot dead — the
// redial path may bring it back.
func (p *Pool) disconnect(w *worker, why string) {
	if w.conn == nil {
		return
	}
	fmt.Fprintf(p.cfg.Stderr, "fleet: worker %d (%s) link lost (%s)\n", w.pid, w.tr, why)
	w.conn.Close()
	w.conn, w.enc, w.dec = nil, nil, nil
}

// killSlot marks a slot permanently dead for this pool.
func (p *Pool) killSlot(w *worker) {
	if w.dead {
		return
	}
	w.dead = true
	if w.conn != nil {
		w.conn.Close()
		w.conn, w.enc, w.dec = nil, nil, nil
	}
	fmt.Fprintf(p.cfg.Stderr, "fleet: worker slot %d (%s) dismissed\n", w.slot, w.tr)
}
