package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"

	"pi2/internal/campaign"
)

// Config describes a worker pool.
type Config struct {
	// Workers is the number of worker processes (min 1).
	Workers int
	// Command is the argv spawning one worker; it must speak the fleet
	// protocol on stdin/stdout. Default: the running binary with -worker
	// appended, i.e. []string{os.Executable(), "-worker"}.
	Command []string
	// Env is appended to the parent environment for each worker.
	Env []string
	// Stderr receives the workers' stderr (default os.Stderr): cell
	// panics are caught inside the worker, so anything here is diagnostic.
	Stderr io.Writer
	// OnSpawn, if set, observes each worker process ID as it starts —
	// the crash-recovery tests use it to aim their SIGKILLs.
	OnSpawn func(pid int)
}

// Pool is a fleet coordinator: it implements campaign.Dispatcher over a
// set of persistent worker processes. Workers are spawned lazily on the
// first Dispatch and re-initialized (not re-spawned) for each subsequent
// matrix, so a multi-experiment invocation pays process startup once.
type Pool struct {
	cfg Config

	mu      sync.Mutex
	workers []*worker
	spawned bool
}

// worker is one coordinator-side process handle. Its fields are owned by
// the goroutine driving it during a Dispatch; dead transitions once.
type worker struct {
	cmd  *exec.Cmd
	in   io.WriteCloser
	enc  *json.Encoder
	dec  *json.Decoder
	pid  int
	dead bool
}

// NewPool builds a pool; no processes start until the first Dispatch.
func NewPool(cfg Config) *Pool {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Stderr == nil {
		cfg.Stderr = os.Stderr
	}
	return &Pool{cfg: cfg}
}

// Close terminates every worker. Closing stdin asks for a clean exit (the
// worker's read loop returns on EOF); Kill covers the ones that don't.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, w := range p.workers {
		if w.in != nil {
			w.in.Close()
		}
		if w.cmd.Process != nil {
			w.cmd.Process.Kill()
		}
		w.cmd.Wait()
	}
	p.workers = nil
	p.spawned = false
}

func (p *Pool) spawnLocked() {
	if p.spawned {
		return
	}
	p.spawned = true
	argv := p.cfg.Command
	if len(argv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintf(p.cfg.Stderr, "fleet: cannot locate own binary (%v); campaign runs in-process\n", err)
			return
		}
		argv = []string{exe, "-worker"}
	}
	for i := 0; i < p.cfg.Workers; i++ {
		w, err := spawnWorker(argv, p.cfg.Env, p.cfg.Stderr)
		if err != nil {
			fmt.Fprintf(p.cfg.Stderr, "fleet: spawn worker %d: %v\n", i, err)
			continue
		}
		if p.cfg.OnSpawn != nil {
			p.cfg.OnSpawn(w.pid)
		}
		p.workers = append(p.workers, w)
	}
}

func spawnWorker(argv, env []string, stderr io.Writer) (*worker, error) {
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), env...)
	cmd.Stderr = stderr
	in, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &worker{
		cmd: cmd, in: in,
		enc: json.NewEncoder(in),
		dec: json.NewDecoder(out),
		pid: cmd.Process.Pid,
	}, nil
}

// dispatchState is the shared cell ledger for one Dispatch call.
type dispatchState struct {
	mu          sync.Mutex
	cond        *sync.Cond
	queue       []int // cells not currently running, FIFO (re-dispatches at front)
	outstanding int   // cells without a final record
	crashes     map[int]int
}

func newDispatchState(n int) *dispatchState {
	st := &dispatchState{
		queue:       make([]int, n),
		outstanding: n,
		crashes:     make(map[int]int),
	}
	st.cond = sync.NewCond(&st.mu)
	for i := range st.queue {
		st.queue[i] = i
	}
	return st
}

// take pops the next cell. An empty queue with cells still in flight
// elsewhere blocks rather than returning: a sibling worker may die and
// requeue its cell, and an idle worker must be there to steal it. take
// only reports false once every cell has a final record (or the caller's
// worker is the last one standing and dies — then nobody waits).
func (s *dispatchState) take() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && s.outstanding > 0 {
		s.cond.Wait()
	}
	if len(s.queue) == 0 {
		return 0, false
	}
	i := s.queue[0]
	s.queue = s.queue[1:]
	return i, true
}

// finish records that cell i's final record was emitted.
func (s *dispatchState) finish() {
	s.mu.Lock()
	s.outstanding--
	if s.outstanding == 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// crashCount reports how many worker deaths cell i has survived.
func (s *dispatchState) crashCount(i int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashes[i]
}

// crashed records a worker death while cell i was in flight and decides
// its fate: requeue at the front (true) while the crash budget lasts, or
// give up (false). The budget is Retries+1 re-dispatches: a process death
// says nothing deterministic about the cell (the usual cause is memory
// pressure), so even a no-retries campaign gets one more try on a
// surviving worker. The dying worker's driver exits after this call, so
// wake an idle sibling to steal the requeued cell.
func (s *dispatchState) crashed(i, retries int) (requeue bool, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashes[i]++
	n = s.crashes[i]
	if n <= retries+1 {
		s.queue = append([]int{i}, s.queue...)
		s.cond.Broadcast()
		return true, n
	}
	return false, n
}

// remaining returns the unfinished cells in index order (only non-empty
// when every worker died) and unblocks any future waiters.
func (s *dispatchState) remaining() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.queue...)
}

// Dispatch implements campaign.Dispatcher: init every live worker with the
// (family, spec) matrix identity, then pull-dispatch cells until the grid
// drains. One Dispatch runs at a time per pool (experiments within an
// invocation are sequential; the lock makes it explicit).
func (p *Pool) Dispatch(tasks []campaign.Task, opt campaign.ExecOptions, emit func(campaign.RunRecord)) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.spawnLocked()

	live := p.initWorkers(tasks, opt)

	st := newDispatchState(len(tasks))

	var wg sync.WaitGroup
	for _, w := range live {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			p.drive(w, tasks, opt, st, emit)
		}(w)
	}
	wg.Wait()

	// Every worker is gone but cells remain: degrade to in-process
	// execution — the coordinator still holds the real closures, and
	// RunOne keeps the records identical to what a worker would have
	// produced.
	if rem := st.remaining(); len(rem) > 0 {
		fmt.Fprintf(p.cfg.Stderr, "fleet: all %d workers gone with %d cells left; finishing in-process\n",
			len(live), len(rem))
		for _, i := range rem {
			rec := campaign.RunOne(tasks[i], i, opt)
			rec.Attempts += st.crashes[i]
			emit(rec)
		}
	}
	return nil
}

// initWorkers (re)initializes every worker for this matrix and returns the
// usable ones. A worker that fails init (pipe error, unknown family, or a
// matrix-size disagreement — the latter two mean the worker binary drifted
// from the coordinator) is marked dead and sits out the campaign.
func (p *Pool) initWorkers(tasks []campaign.Task, opt campaign.ExecOptions) []*worker {
	var live []*worker
	init := initEnvelope(opt)
	for _, w := range p.workers {
		if w.dead {
			continue
		}
		if err := w.enc.Encode(init); err != nil {
			p.kill(w, fmt.Sprintf("init write: %v", err))
			continue
		}
		var hello envelope
		if err := w.dec.Decode(&hello); err != nil {
			p.kill(w, fmt.Sprintf("init read: %v", err))
			continue
		}
		switch {
		case hello.Err != "":
			p.kill(w, hello.Err)
		case hello.Tasks != len(tasks):
			p.kill(w, fmt.Sprintf("matrix size mismatch: worker built %d tasks, coordinator has %d",
				hello.Tasks, len(tasks)))
		default:
			live = append(live, w)
		}
	}
	return live
}

// drive runs one worker's request/response loop until the queue drains or
// the worker dies (any pipe error), in which case its in-flight cell is
// requeued or — past the crash budget — recorded as failed.
func (p *Pool) drive(w *worker, tasks []campaign.Task, opt campaign.ExecOptions,
	st *dispatchState, emit func(campaign.RunRecord)) {
	for {
		i, ok := st.take()
		if !ok {
			return
		}
		rec, err := p.runCell(w, i)
		if err != nil {
			p.kill(w, fmt.Sprintf("cell %d: %v", i, err))
			requeue, n := st.crashed(i, opt.Retries)
			if !requeue {
				t := tasks[i]
				emit(campaign.RunRecord{
					Name: t.Name, Index: i,
					Seed:     campaign.DeriveSeed(opt.BaseSeed, t.SeedIndex),
					Params:   t.Params,
					Err:      fmt.Sprintf("fleet: cell killed %d worker process(es); crash budget exhausted", n),
					Attempts: n,
				})
				st.finish()
			}
			return
		}
		// Crash count is execution metadata: re-dispatched cells surface
		// how many process deaths they survived without perturbing the
		// record's deterministic payload.
		rec.Attempts += st.crashCount(i)
		emit(rec)
		st.finish()
	}
}

// runCell sends one run request and reads the record back. Any error means
// the worker can no longer be trusted (the protocol is strictly serial, so
// a partial read has no recovery point).
func (p *Pool) runCell(w *worker, i int) (campaign.RunRecord, error) {
	var rec campaign.RunRecord
	if err := w.enc.Encode(envelope{Type: "run", Index: i}); err != nil {
		return rec, fmt.Errorf("write: %w", err)
	}
	var env envelope
	if err := w.dec.Decode(&env); err != nil {
		return rec, fmt.Errorf("read: %w", err)
	}
	if env.Type != "record" || env.Index != i {
		return rec, fmt.Errorf("protocol: got %q for index %d, want record for %d", env.Type, env.Index, i)
	}
	if env.Err != "" {
		return rec, fmt.Errorf("worker: %s", env.Err)
	}
	return campaign.DecodeRecord(env.Rec)
}

// kill marks a worker dead and reaps its process.
func (p *Pool) kill(w *worker, why string) {
	if w.dead {
		return
	}
	w.dead = true
	fmt.Fprintf(p.cfg.Stderr, "fleet: worker %d lost (%s)\n", w.pid, why)
	if w.in != nil {
		w.in.Close()
	}
	if w.cmd.Process != nil {
		w.cmd.Process.Kill()
	}
	w.cmd.Wait()
}
