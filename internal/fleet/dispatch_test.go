package fleet

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDispatchStateLastWorkerDeath pins the edge the cond-var queue makes
// easy to get wrong: the last live worker dies holding a cell while the
// queue is non-empty. Nobody is left to take() — the requeued cell must be
// at the front of remaining() so the in-process fallback runs it first,
// and remaining() must hold every unfinished cell exactly once.
func TestDispatchStateLastWorkerDeath(t *testing.T) {
	st := newDispatchState(4, nil)
	i, ok := st.take()
	if !ok || i != 0 {
		t.Fatalf("take = %d,%v; want 0,true", i, ok)
	}
	// The only worker dies mid-cell; budget allows a re-dispatch.
	requeue, n := st.crashed(i, 1)
	if !requeue || n != 1 {
		t.Fatalf("crashed = %v,%d; want true,1", requeue, n)
	}
	rem := st.remaining()
	if len(rem) != 4 || rem[0] != 0 || rem[1] != 1 || rem[2] != 2 || rem[3] != 3 {
		t.Fatalf("remaining = %v; want [0 1 2 3] (crashed cell re-dispatched first)", rem)
	}
	if st.drained() {
		t.Fatal("drained with 4 cells outstanding")
	}
}

// TestDispatchStateBudgetExhaustionRace races four driver loops over one
// cell whose every dispatch "crashes" with a zero retry budget: exactly
// two dispatches may happen (initial + one re-dispatch), the exhausting
// driver must finish the cell, and every other driver must unblock from
// take() with false instead of deadlocking on the empty-but-outstanding
// queue.
func TestDispatchStateBudgetExhaustionRace(t *testing.T) {
	st := newDispatchState(1, nil)

	var wg sync.WaitGroup
	var dispatches atomic.Int32
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := st.take()
				if !ok {
					return
				}
				dispatches.Add(1)
				if requeue, _ := st.crashed(i, 0); !requeue {
					st.finish() // the error record's emit happens here in a real driver
				}
			}
		}()
	}

	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("drivers deadlocked after crash-budget exhaustion")
	}

	if n := dispatches.Load(); n != 2 {
		t.Errorf("cell dispatched %d times, want 2 (initial + one re-dispatch)", n)
	}
	if n := st.crashCount(0); n != 2 {
		t.Errorf("crashCount = %d, want 2", n)
	}
	if !st.drained() {
		t.Error("done channel not closed after the budget-exhausted finish")
	}
	if rem := st.remaining(); len(rem) != 0 {
		t.Errorf("remaining = %v after drain, want empty", rem)
	}
}

// TestDispatchStateRemainingOrdering checks remaining() preserves
// dispatch order: untaken cells in index order, with requeued crashers at
// the front (they were in flight, so they are the most urgent to finish).
func TestDispatchStateRemainingOrdering(t *testing.T) {
	st := newDispatchState(5, nil)
	if i, _ := st.take(); i != 0 {
		t.Fatalf("first take = %d, want 0", i)
	}
	if i, _ := st.take(); i != 1 {
		t.Fatalf("second take = %d, want 1", i)
	}
	st.crashed(1, 5) // requeued at front
	rem := st.remaining()
	want := []int{1, 2, 3, 4}
	if len(rem) != len(want) {
		t.Fatalf("remaining = %v, want %v", rem, want)
	}
	for k := range want {
		if rem[k] != want[k] {
			t.Fatalf("remaining = %v, want %v", rem, want)
		}
	}
}

// TestDispatchStateSkipDone pins the resume contract: skipped cells never
// enter the queue, and a fully resumed grid is born drained.
func TestDispatchStateSkipDone(t *testing.T) {
	st := newDispatchState(4, map[int]bool{0: true, 2: true})
	if i, ok := st.take(); !ok || i != 1 {
		t.Fatalf("take = %d,%v; want 1,true", i, ok)
	}
	if i, ok := st.take(); !ok || i != 3 {
		t.Fatalf("take = %d,%v; want 3,true", i, ok)
	}
	st.finish()
	st.finish()
	if !st.drained() {
		t.Fatal("not drained after finishing both unskipped cells")
	}

	all := newDispatchState(3, map[int]bool{0: true, 1: true, 2: true})
	if !all.drained() {
		t.Fatal("fully skipped grid should be drained at birth")
	}
	if _, ok := all.take(); ok {
		t.Fatal("take succeeded on a fully skipped grid")
	}
}
