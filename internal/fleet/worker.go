package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"pi2/internal/campaign"
)

func durationNs(ns int64) time.Duration { return time.Duration(ns) }

// defaultHeartbeat is the heartbeat interval used when the coordinator's
// init doesn't choose one (and the coordinator-side default in Config).
const defaultHeartbeat = time.Second

// Serve runs the worker side of the fleet protocol until the coordinator
// closes our stdin (clean shutdown) or the pipe breaks. pi2bench calls it
// from the -worker flag; test binaries call it from TestMain behind an env
// gate.
func Serve(r io.Reader, w io.Writer) error {
	return serveConn(struct {
		io.Reader
		io.Writer
	}{r, w})
}

// ServeTCP runs a worker host: it listens on addr and serves the fleet
// protocol to every coordinator connection concurrently — a -hosts line
// with workers=N dials N connections, so N cells run in parallel here.
// The actual listen address is announced on out ("fleet: listening on …"),
// which is how scripts recover the port from addr ":0". Runs until the
// listener breaks; per-connection errors are logged to errw and do not
// stop the host (the coordinator re-dials through its backoff path).
func ServeTCP(addr string, out, errw io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("fleet: listen %s: %w", addr, err)
	}
	fmt.Fprintf(out, "fleet: listening on %s\n", ln.Addr())
	for {
		nc, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("fleet: accept: %w", err)
		}
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
			tc.SetKeepAlive(true)
			tc.SetKeepAlivePeriod(30 * time.Second)
		}
		go func(c net.Conn) {
			defer c.Close()
			fmt.Fprintf(errw, "fleet: coordinator %s connected\n", c.RemoteAddr())
			if err := serveConn(c); err != nil {
				fmt.Fprintf(errw, "fleet: coordinator %s: %v\n", c.RemoteAddr(), err)
				return
			}
			fmt.Fprintf(errw, "fleet: coordinator %s disconnected\n", c.RemoteAddr())
		}(nc)
	}
}

// serveConn speaks one connection's worth of protocol: hello first (the
// worker always speaks first so both transports handshake identically),
// then init/run cycles until EOF. The message loop is strictly serial from
// the coordinator's point of view — one cell at a time, the record sent
// before the next message is read — but while a cell runs on its own
// goroutine the loop emits heartbeat envelopes, which is what lets the
// coordinator's read deadlines tell a wedged worker from a slow cell.
func serveConn(conn io.ReadWriter) error {
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	if err := enc.Encode(envelope{
		Type: "hello", Proto: ProtoVersion, FP: Fingerprint(), Pid: os.Getpid(),
	}); err != nil {
		return fmt.Errorf("fleet worker: write hello: %w", err)
	}
	var tasks []campaign.Task
	var opt campaign.ExecOptions
	hb := defaultHeartbeat
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("fleet worker: read: %w", err)
		}
		switch env.Type {
		case "init":
			tasks, opt = nil, env.execOptions()
			if env.HbNs > 0 {
				hb = durationNs(env.HbNs)
			}
			reply := envelope{Type: "ready"}
			if env.Proto != ProtoVersion {
				reply.Err = fmt.Sprintf("protocol drift: coordinator speaks v%d, worker v%d — rebuild and redeploy one binary",
					env.Proto, ProtoVersion)
			} else if env.FP != Fingerprint() {
				reply.Err = fmt.Sprintf("binary drift: coordinator fingerprint %.12s… != worker %.12s… — deploy the same build everywhere",
					env.FP, Fingerprint())
			} else if src, ok := campaign.LookupSource(env.Family); !ok {
				reply.Err = fmt.Sprintf("unknown task source %q", env.Family)
			} else if built, err := src(env.Spec); err != nil {
				reply.Err = fmt.Sprintf("task source %q: %v", env.Family, err)
			} else {
				tasks = built
				reply.Tasks = len(built)
			}
			if err := enc.Encode(reply); err != nil {
				return fmt.Errorf("fleet worker: write ready: %w", err)
			}
		case "run":
			if err := runWithHeartbeats(enc, tasks, opt, env.Index, hb); err != nil {
				return err
			}
		default:
			// Ignore unknown message types: a newer coordinator may probe
			// capabilities; silence is the compatible answer.
		}
	}
}

// runWithHeartbeats executes one cell on its own goroutine while the
// connection goroutine ticks hb envelopes, then sends the record. A write
// error on either means the coordinator is gone; the cell goroutine is
// left to finish into a buffered channel (its result is discarded — the
// coordinator has already requeued the cell elsewhere).
func runWithHeartbeats(enc *json.Encoder, tasks []campaign.Task,
	opt campaign.ExecOptions, index int, hb time.Duration) error {
	done := make(chan envelope, 1)
	go func() { done <- runEnvelope(tasks, opt, index) }()
	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	for {
		select {
		case reply := <-done:
			if err := enc.Encode(reply); err != nil {
				return fmt.Errorf("fleet worker: write record: %w", err)
			}
			return nil
		case <-ticker.C:
			if err := enc.Encode(envelope{Type: "hb", Index: index}); err != nil {
				return fmt.Errorf("fleet worker: write heartbeat: %w", err)
			}
		}
	}
}

// runEnvelope runs one dispatched cell and packages its record.
func runEnvelope(tasks []campaign.Task, opt campaign.ExecOptions, index int) envelope {
	reply := envelope{Type: "record", Index: index}
	if index < 0 || index >= len(tasks) {
		reply.Err = fmt.Sprintf("index %d outside matrix of %d", index, len(tasks))
		return reply
	}
	rec := campaign.RunOne(tasks[index], index, opt)
	b, err := campaign.EncodeRecord(&rec)
	if err != nil {
		// An unregistered result type can't cross the wire; strip it and
		// surface the failure in the record so the table prints FAILED
		// instead of the campaign wedging.
		rec.Result = nil
		rec.Err = fmt.Sprintf("fleet: result not wire-encodable: %v", err)
		b, err = campaign.EncodeRecord(&rec)
	}
	if err != nil {
		reply.Err = fmt.Sprintf("encode record %d: %v", index, err)
	} else {
		reply.Rec = b
	}
	return reply
}
