package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"pi2/internal/campaign"
)

func durationNs(ns int64) time.Duration { return time.Duration(ns) }

// Serve runs the worker side of the fleet protocol until the coordinator
// closes our stdin (clean shutdown) or the pipe breaks. The loop is
// strictly serial — one cell at a time, replying before reading the next
// message — which is what lets the coordinator treat any pipe error as
// "this worker is gone" without a timeout protocol. pi2bench calls it from
// the -worker flag; test binaries call it from TestMain behind an env
// gate.
func Serve(r io.Reader, w io.Writer) error {
	dec := json.NewDecoder(r)
	enc := json.NewEncoder(w)
	var tasks []campaign.Task
	var opt campaign.ExecOptions
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("fleet worker: read: %w", err)
		}
		switch env.Type {
		case "init":
			tasks, opt = nil, env.execOptions()
			reply := envelope{Type: "hello", Pid: os.Getpid()}
			if src, ok := campaign.LookupSource(env.Family); !ok {
				reply.Err = fmt.Sprintf("unknown task source %q", env.Family)
			} else if built, err := src(env.Spec); err != nil {
				reply.Err = fmt.Sprintf("task source %q: %v", env.Family, err)
			} else {
				tasks = built
				reply.Tasks = len(built)
			}
			if err := enc.Encode(reply); err != nil {
				return fmt.Errorf("fleet worker: write hello: %w", err)
			}
		case "run":
			reply := envelope{Type: "record", Index: env.Index}
			if env.Index < 0 || env.Index >= len(tasks) {
				reply.Err = fmt.Sprintf("index %d outside matrix of %d", env.Index, len(tasks))
			} else {
				rec := campaign.RunOne(tasks[env.Index], env.Index, opt)
				b, err := campaign.EncodeRecord(&rec)
				if err != nil {
					// An unregistered result type can't cross the wire;
					// strip it and surface the failure in the record so the
					// table prints FAILED instead of the campaign wedging.
					rec.Result = nil
					rec.Err = fmt.Sprintf("fleet: result not wire-encodable: %v", err)
					b, err = campaign.EncodeRecord(&rec)
				}
				if err != nil {
					reply.Err = fmt.Sprintf("encode record %d: %v", env.Index, err)
				} else {
					reply.Rec = b
				}
			}
			if err := enc.Encode(reply); err != nil {
				return fmt.Errorf("fleet worker: write record: %w", err)
			}
		default:
			// Ignore unknown message types: a newer coordinator may probe
			// capabilities; silence is the compatible answer.
		}
	}
}
