package fleet

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Overrides are the per-host composition knobs a -hosts inventory line may
// set. They override the coordinator's campaign-wide -shards/-ff for cells
// dispatched to that host — a 64-core host can shard deeper than a 4-core
// one — at a cost the operator must opt into knowingly: shard count and
// fast-forward change a cell's (deterministic but distinct) event
// interleaving, so a fleet with overrides is no longer byte-identical to
// `-jobs 1`. Inventories without overrides keep the identity contract.
type Overrides struct {
	Shards    int
	ShardsSet bool
	FF        bool
	FFSet     bool
}

// Host is one line of a -hosts inventory: a worker host (started with
// `pi2bench -serve`) plus how many connections to open to it and its
// composition overrides.
type Host struct {
	// Addr is the host's listen address (host:port).
	Addr string
	// Workers is how many coordinator connections to dial — each is an
	// independent worker slot running one cell at a time, so it is the
	// host's cell-level parallelism. Default 1.
	Workers int
	// Overrides are the host's composition knobs.
	Over Overrides
}

// ParseHosts reads a host inventory: one host per line,
//
//	addr [workers=N] [shards=K] [ff=true|false]
//
// with '#' comments and blank lines ignored. Example:
//
//	# big box takes 8 cells at a time, 4-way sharded each
//	10.0.0.7:9000  workers=8 shards=4
//	10.0.0.9:9000  workers=2
func ParseHosts(r io.Reader) ([]Host, error) {
	var hosts []Host
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		h := Host{Addr: fields[0], Workers: 1}
		for _, f := range fields[1:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fmt.Errorf("hosts line %d: %q is not key=value", line, f)
			}
			switch k {
			case "workers":
				n, err := strconv.Atoi(v)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("hosts line %d: workers=%q (want a positive integer)", line, v)
				}
				h.Workers = n
			case "shards":
				n, err := strconv.Atoi(v)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("hosts line %d: shards=%q (want a positive integer)", line, v)
				}
				h.Over.Shards, h.Over.ShardsSet = n, true
			case "ff":
				b, err := strconv.ParseBool(v)
				if err != nil {
					return nil, fmt.Errorf("hosts line %d: ff=%q (want a bool)", line, v)
				}
				h.Over.FF, h.Over.FFSet = b, true
			default:
				return nil, fmt.Errorf("hosts line %d: unknown key %q (want workers, shards or ff)", line, k)
			}
		}
		hosts = append(hosts, h)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("hosts inventory is empty")
	}
	return hosts, nil
}
