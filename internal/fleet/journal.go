package fleet

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"pi2/internal/campaign"
)

// The journal makes a coordinator crash cost at most one in-flight cell
// per worker: every final RunRecord is appended as a length-prefixed,
// CRC-framed gob record and fsynced, and -resume replays the valid prefix
// (truncating a torn tail — a frame half-written when the process died),
// skips the journaled cells, and finishes only the remainder.
//
// Frame layout: u32le payload length | u32le CRC-32C of payload | payload.
// The payload is a gob journalEntry: either a segment header — naming the
// (family, SHA-256(spec), cell count) of the matrix whose records follow —
// or one cell's record. Keying segments on the spec hash (not invocation
// order) means a resumed run matches cells by matrix identity: a resume
// with different flags simply misses and re-runs everything, it never
// replays a record into the wrong grid.

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxFrame bounds a frame read during replay so a corrupt length prefix
// (garbage tail) fails fast instead of attempting a GiB allocation.
const maxFrame = 1 << 28

type journalEntry struct {
	// Segment header fields; Family != "" marks a header.
	Family  string
	SpecSHA [sha256.Size]byte
	Cells   int
	// Record fields.
	Index int
	Rec   []byte // campaign.EncodeRecord bytes
}

// Journal appends campaign records to a file, implementing
// campaign.JournalSink. Append errors are reported once to errw and
// disable further writes — a broken journal must not take the campaign
// down with it, but it must not fail silently either.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	errw   io.Writer
	broken bool
	cur    journalEntry // current segment header (Family == "" before the first)
}

// OpenJournal opens (creating or appending to) a journal at path.
func OpenJournal(path string, errw io.Writer) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fleet: open journal: %w", err)
	}
	return &Journal{f: f, errw: errw}, nil
}

// BeginSegment implements campaign.JournalSink. The header is written
// lazily with the segment's first record: a fully resumed segment emits no
// fresh records and appending its (duplicate) header would bloat repeated
// resumes for nothing.
func (j *Journal) BeginSegment(family string, spec []byte, cells int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cur = journalEntry{Family: family, SpecSHA: sha256.Sum256(spec), Cells: cells}
}

// Record implements campaign.JournalSink: one frame per fresh final
// record, fsynced so the record survives a coordinator kill -9.
func (j *Journal) Record(rec campaign.RunRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken {
		return
	}
	if j.cur.Family != "" {
		if err := j.appendLocked(j.cur); err != nil {
			j.fail(err)
			return
		}
		j.cur = journalEntry{}
	}
	b, err := campaign.EncodeRecord(&rec)
	if err != nil {
		j.fail(fmt.Errorf("encode record %d: %w", rec.Index, err))
		return
	}
	if err := j.appendLocked(journalEntry{Index: rec.Index, Rec: b}); err != nil {
		j.fail(err)
	}
}

func (j *Journal) fail(err error) {
	j.broken = true
	if j.errw != nil {
		fmt.Fprintf(j.errw, "fleet: journal disabled: %v\n", err)
	}
}

func (j *Journal) appendLocked(e journalEntry) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&e); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload.Bytes(), crcTable))
	if _, err := j.f.Write(append(hdr[:], payload.Bytes()...)); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// ResumeSet is a replayed journal, implementing campaign.ResumeSet.
type ResumeSet struct {
	segs map[string]map[int][]byte
}

// ReplayStats summarizes a LoadResume for operator output.
type ReplayStats struct {
	// Segments and Records count the valid frames replayed.
	Segments, Records int
	// Truncated is how many torn-tail bytes were cut from the file.
	Truncated int64
}

// LoadResume replays the journal at path: it reads the valid frame prefix,
// truncates any torn tail in place (so the next append starts at a frame
// boundary), and returns the completed-cell set. A missing file is an
// empty resume, not an error — a campaign that crashed before its first
// record resumes from scratch.
func LoadResume(path string) (*ResumeSet, ReplayStats, error) {
	rs := &ResumeSet{segs: make(map[string]map[int][]byte)}
	var stats ReplayStats
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return rs, stats, nil
	}
	if err != nil {
		return nil, stats, fmt.Errorf("fleet: open journal: %w", err)
	}
	defer f.Close()

	br := bufio.NewReader(f)
	var (
		valid int64 // offset past the last whole valid frame
		seg   string
		torn  bool
	)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			torn = err != io.EOF
			break
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if n > maxFrame {
			torn = true
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			torn = true
			break
		}
		if crc32.Checksum(payload, crcTable) != crc {
			torn = true
			break
		}
		var e journalEntry
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
			torn = true
			break
		}
		valid += 8 + int64(n)
		if e.Family != "" {
			seg = segKey(e.Family, e.SpecSHA)
			if rs.segs[seg] == nil {
				rs.segs[seg] = make(map[int][]byte)
			}
			stats.Segments++
			continue
		}
		if seg == "" {
			// A record before any header is a journal from a different
			// layout; treat it as tail damage.
			torn = true
			valid -= 8 + int64(n)
			break
		}
		rs.segs[seg][e.Index] = e.Rec
		stats.Records++
	}
	if torn {
		end, err := f.Seek(0, io.SeekEnd)
		if err == nil {
			stats.Truncated = end - valid
		}
		if err := f.Truncate(valid); err != nil {
			return nil, stats, fmt.Errorf("fleet: truncate torn journal tail: %w", err)
		}
	}
	return rs, stats, nil
}

func segKey(family string, sha [sha256.Size]byte) string {
	return family + "\x00" + string(sha[:])
}

// Lookup implements campaign.ResumeSet. Only clean records resume: a cell
// that failed (crash budget, watchdog, panic) re-runs — deterministic
// failures reproduce identically, environmental ones get another chance.
func (rs *ResumeSet) Lookup(family string, spec []byte, index int) (campaign.RunRecord, bool) {
	m := rs.segs[segKey(family, sha256.Sum256(spec))]
	b, ok := m[index]
	if !ok {
		return campaign.RunRecord{}, false
	}
	rec, err := campaign.DecodeRecord(b)
	if err != nil || rec.Err != "" {
		return campaign.RunRecord{}, false
	}
	return rec, true
}

// Len reports how many completed cells the set holds (for tests and logs).
func (rs *ResumeSet) Len() int {
	n := 0
	for _, m := range rs.segs {
		n += len(m)
	}
	return n
}
