package fleet

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"time"
)

// Conn is one byte-stream link to a worker. Both implementations — a child
// process's stdio pipes and a TCP socket — support read deadlines, which is
// what lets the coordinator bound every read by the heartbeat contract and
// declare a silent worker dead instead of blocking forever.
type Conn interface {
	io.ReadWriteCloser
	// SetReadDeadline bounds subsequent Reads; the zero time clears it.
	// Implementations that cannot enforce deadlines return an error and
	// the coordinator falls back to deadline-free reads.
	SetReadDeadline(t time.Time) error
}

// Transport produces connections to one worker endpoint. Dial is called
// once at campaign start and again after a connection-level failure when
// Redial reports true — a worker host that dropped mid-campaign
// re-handshakes and rejoins the steal pool through the same path.
type Transport interface {
	// Dial establishes a fresh link. The worker side speaks first: a
	// hello envelope must be readable from the returned Conn.
	Dial() (Conn, error)
	// Redial reports whether a broken link is worth re-establishing. The
	// process transport answers false — its endpoint died with the
	// connection — while TCP answers true: the worker host outlives any
	// one connection.
	Redial() bool
	// String names the endpoint for diagnostics.
	String() string
}

// procTransport spawns a fresh worker process per Dial and speaks over its
// stdio pipes. The process dies with the connection (Close kills and
// reaps), so Redial is false: respawning on a pipe error would mask crash
// loops that the crash-budget path is supposed to bound.
type procTransport struct {
	argv   []string
	env    []string
	stderr io.Writer
}

func (t *procTransport) Redial() bool   { return false }
func (t *procTransport) String() string { return fmt.Sprintf("proc %s", t.argv[0]) }

func (t *procTransport) Dial() (Conn, error) {
	cmd := exec.Command(t.argv[0], t.argv[1:]...)
	cmd.Env = append(os.Environ(), t.env...)
	in, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		in.Close()
		return nil, err
	}
	errPipe, err := cmd.StderrPipe()
	if err != nil {
		in.Close()
		out.Close()
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		in.Close()
		out.Close()
		errPipe.Close()
		return nil, err
	}
	// Tee the worker's stderr line by line, each line prefixed with the
	// worker pid, so multi-worker crash diagnostics are attributable
	// instead of interleaving raw streams.
	go teeStderr(errPipe, t.stderr, cmd.Process.Pid)
	return &procConn{cmd: cmd, in: in, out: out}, nil
}

// teeStderr copies r to w one line at a time, prefixing each with
// "[w<pid>] ". Each line is a single Write, so concurrent workers
// interleave at line granularity. Oversized lines (past the 1 MiB scanner
// cap) degrade to an unprefixed raw copy rather than being dropped.
func teeStderr(r io.Reader, w io.Writer, pid int) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	for sc.Scan() {
		fmt.Fprintf(w, "[w%d] %s\n", pid, sc.Text())
	}
	if sc.Err() != nil {
		io.Copy(w, r)
	}
}

// procConn adapts a child process's stdio pipes to Conn. Close is the
// process's terminator: stdin close requests a clean exit, Kill covers a
// wedged one, Wait reaps.
type procConn struct {
	cmd *exec.Cmd
	in  io.WriteCloser
	out io.ReadCloser
}

func (c *procConn) Read(p []byte) (int, error)  { return c.out.Read(p) }
func (c *procConn) Write(p []byte) (int, error) { return c.in.Write(p) }

func (c *procConn) SetReadDeadline(t time.Time) error {
	// exec.Cmd.StdoutPipe is an *os.File pipe; on Linux the runtime poller
	// enforces deadlines on it. The assertion guards against a future
	// stdlib change, degrading to deadline-free reads.
	if f, ok := c.out.(*os.File); ok {
		return f.SetReadDeadline(t)
	}
	return fmt.Errorf("fleet: stdout pipe %T does not support deadlines", c.out)
}

func (c *procConn) Close() error {
	c.in.Close()
	if c.cmd.Process != nil {
		c.cmd.Process.Kill()
	}
	c.cmd.Wait()
	return nil
}

// Pid reports the child's process ID (for OnSpawn and kill-aiming tests).
func (c *procConn) Pid() int { return c.cmd.Process.Pid }

// tcpTransport dials a worker host started with `pi2bench -serve`.
type tcpTransport struct {
	addr string
}

func (t *tcpTransport) Redial() bool   { return true }
func (t *tcpTransport) String() string { return "tcp " + t.addr }

func (t *tcpTransport) Dial() (Conn, error) {
	nc, err := net.DialTimeout("tcp", t.addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		// Cells are latency-insensitive but envelope-per-cell small;
		// disable Nagle so run/record round trips don't stack delayed
		// ACKs, and arm keep-alive so a vanished peer (host power-off, no
		// FIN) eventually errors instead of wedging the link forever.
		tc.SetNoDelay(true)
		tc.SetKeepAlive(true)
		tc.SetKeepAlivePeriod(30 * time.Second)
	}
	return nc.(Conn), nil
}
