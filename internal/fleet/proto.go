// Package fleet shards a campaign across OS worker processes. The
// coordinator (Pool) spawns N copies of the running binary in worker mode,
// speaks a newline-delimited JSON protocol over their stdin/stdout, and
// pull-dispatches cells one at a time — a worker asks for work implicitly
// by finishing its previous cell, so slow cells never straggle a whole
// worker's queue (work-stealing degenerates to "steal everything not yet
// started"). Records stream back to the engine's emit funnel as they
// arrive; nothing grid-sized accumulates here.
//
// Determinism: a worker rebuilds the identical task matrix from the
// (family, spec) pair via campaign.RegisterSource and runs each dispatched
// cell through campaign.RunOne — the same DeriveSeed/PerturbSeed/watchdog
// machinery as the in-process pool. Which process runs a cell therefore
// cannot affect its record, so `-workers N` output is byte-identical to
// `-jobs M` for every N and M.
//
// Crash tolerance: a worker that dies (OOM kill, SIGKILL, panic outside
// the cell sandbox) surfaces as an encoder/decoder error on its pipes. Its
// in-flight cell is re-dispatched to a surviving worker at the same seed —
// a process death says nothing about the cell, so the retry is attempt 0
// again, keeping records identical — with a bounded crash budget
// (Retries+1) before the cell is recorded as failed. If every worker dies,
// the remaining cells run in-process: the coordinator still holds the real
// task closures.
package fleet

import "pi2/internal/campaign"

// envelope is one protocol message. Type discriminates; unused fields stay
// at their zero values and are omitted from the wire.
type envelope struct {
	Type string `json:"t"`

	// init (coordinator → worker): identifies the matrix and carries the
	// execution knobs that must match the in-process pool for records to
	// be bit-identical.
	Family         string `json:"family,omitempty"`
	Spec           []byte `json:"spec,omitempty"`
	BaseSeed       int64  `json:"base_seed,omitempty"`
	Shards         int    `json:"shards,omitempty"`
	FastForward    bool   `json:"ff,omitempty"`
	Retries        int    `json:"retries,omitempty"`
	RetryBackoffNs int64  `json:"retry_backoff_ns,omitempty"`
	WDTimeoutNs    int64  `json:"wd_timeout_ns,omitempty"`
	WDStallNs      int64  `json:"wd_stall_ns,omitempty"`
	WDPollNs       int64  `json:"wd_poll_ns,omitempty"`
	WDGraceNs      int64  `json:"wd_grace_ns,omitempty"`

	// hello (worker → coordinator): init acknowledgement. Tasks echoes the
	// rebuilt matrix size so a source drift between binaries is caught
	// before any cell runs; Err reports a worker-side init failure.
	Pid   int    `json:"pid,omitempty"`
	Tasks int    `json:"tasks,omitempty"`
	Err   string `json:"err,omitempty"`

	// run (coordinator → worker) and record (worker → coordinator).
	Index int `json:"index"`
	// Rec is the gob-encoded RunRecord (campaign.EncodeRecord); JSON
	// base64s it. Gob, not JSON, because Result/Params hold typed values
	// that must round-trip exactly (see internal/campaign/wire.go).
	Rec []byte `json:"rec,omitempty"`
}

// initEnvelope builds the init message for one Dispatch call.
func initEnvelope(opt campaign.ExecOptions) envelope {
	return envelope{
		Type:           "init",
		Family:         opt.Family,
		Spec:           opt.Spec,
		BaseSeed:       opt.BaseSeed,
		Shards:         opt.Shards,
		FastForward:    opt.FastForward,
		Retries:        opt.Retries,
		RetryBackoffNs: opt.RetryBackoff.Nanoseconds(),
		WDTimeoutNs:    opt.Watchdog.Timeout.Nanoseconds(),
		WDStallNs:      opt.Watchdog.Stall.Nanoseconds(),
		WDPollNs:       opt.Watchdog.Poll.Nanoseconds(),
		WDGraceNs:      opt.Watchdog.Grace.Nanoseconds(),
	}
}

// execOptions reverses initEnvelope on the worker side. Progress,
// Collector and Dispatch stay nil: a worker is a leaf.
func (e envelope) execOptions() campaign.ExecOptions {
	return campaign.ExecOptions{
		BaseSeed:     e.BaseSeed,
		Shards:       e.Shards,
		FastForward:  e.FastForward,
		Retries:      e.Retries,
		RetryBackoff: durationNs(e.RetryBackoffNs),
		Watchdog: campaign.Watchdog{
			Timeout: durationNs(e.WDTimeoutNs),
			Stall:   durationNs(e.WDStallNs),
			Poll:    durationNs(e.WDPollNs),
			Grace:   durationNs(e.WDGraceNs),
		},
	}
}
