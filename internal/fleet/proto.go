// Package fleet shards a campaign across worker processes — local children
// or remote hosts. The coordinator (Pool) speaks a newline-delimited JSON
// protocol over a Transport (stdio pipes to a spawned `pi2bench -worker`,
// or TCP to a `pi2bench -serve` host) and pull-dispatches cells one at a
// time — a worker asks for work implicitly by finishing its previous cell,
// so slow cells never straggle a whole worker's queue (work-stealing
// degenerates to "steal everything not yet started"). Records stream back
// to the engine's emit funnel as they arrive; nothing grid-sized
// accumulates here.
//
// Determinism: a worker rebuilds the identical task matrix from the
// (family, spec) pair via campaign.RegisterSource and runs each dispatched
// cell through campaign.RunOne — the same DeriveSeed/PerturbSeed/watchdog
// machinery as the in-process pool. Which process runs a cell therefore
// cannot affect its record, so `-workers N` (or any `-hosts` fleet) output
// is byte-identical to `-jobs M`.
//
// Fault model, built fault-first: every connection starts with a version +
// build-fingerprint handshake (drifted binaries are rejected explicitly,
// not discovered via wrong numbers); a worker running a cell heartbeats,
// and the coordinator bounds every read by the heartbeat deadline — so a
// hung-but-alive worker (SIGSTOP, livelock) is distinguished from a slow
// cell and killed through the same crash-budget path as a dead one. A
// dropped connection re-dials with capped exponential backoff + jitter
// when the transport supports it (TCP); its in-flight cell re-dispatches
// to a sibling at the same seed. If every worker is gone the remaining
// cells run in-process: the coordinator still holds the real closures.
package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"os"
	"sync"

	"pi2/internal/campaign"
)

// ProtoVersion is the fleet wire-protocol generation. A coordinator and
// worker disagreeing on it are rejected at handshake, before any cell
// runs. v1 was the PR 9 stdio protocol (init/hello, no handshake, no
// heartbeats); v2 added hello-first handshake with build fingerprints,
// heartbeat envelopes, and per-slot composition overrides.
const ProtoVersion = 2

// envelope is one protocol message. Type discriminates; unused fields stay
// at their zero values and are omitted from the wire.
type envelope struct {
	Type string `json:"t"`

	// hello (worker → coordinator, once per connection, worker speaks
	// first) and init (coordinator → worker): Proto and FP carry each
	// side's protocol version and build fingerprint; either side rejects
	// a mismatch explicitly instead of trusting matrix-size luck.
	Proto int    `json:"proto,omitempty"`
	FP    string `json:"fp,omitempty"`
	Pid   int    `json:"pid,omitempty"`

	// init (coordinator → worker): identifies the matrix and carries the
	// execution knobs that must match the in-process pool for records to
	// be bit-identical. Shards/FastForward may be overridden per host by
	// a -hosts inventory line (see Host).
	Family         string `json:"family,omitempty"`
	Spec           []byte `json:"spec,omitempty"`
	BaseSeed       int64  `json:"base_seed,omitempty"`
	Shards         int    `json:"shards,omitempty"`
	FastForward    bool   `json:"ff,omitempty"`
	Retries        int    `json:"retries,omitempty"`
	RetryBackoffNs int64  `json:"retry_backoff_ns,omitempty"`
	WDTimeoutNs    int64  `json:"wd_timeout_ns,omitempty"`
	WDStallNs      int64  `json:"wd_stall_ns,omitempty"`
	WDPollNs       int64  `json:"wd_poll_ns,omitempty"`
	WDGraceNs      int64  `json:"wd_grace_ns,omitempty"`
	// HbNs is the coordinator-chosen heartbeat interval: while a cell
	// runs, the worker emits one hb envelope per interval and the
	// coordinator treats hbReadFactor missed intervals as a dead worker.
	HbNs int64 `json:"hb_ns,omitempty"`

	// ready (worker → coordinator): init acknowledgement. Tasks echoes
	// the rebuilt matrix size — with fingerprints equal a mismatch should
	// be impossible, but it stays as a belt-and-braces spec-drift check;
	// Err reports a worker-side init failure.
	Tasks int    `json:"tasks,omitempty"`
	Err   string `json:"err,omitempty"`

	// run (coordinator → worker), hb and record (worker → coordinator).
	Index int `json:"index"`
	// Rec is the gob-encoded RunRecord (campaign.EncodeRecord); JSON
	// base64s it. Gob, not JSON, because Result/Params hold typed values
	// that must round-trip exactly (see internal/campaign/wire.go).
	Rec []byte `json:"rec,omitempty"`
}

// hbReadFactor is how many heartbeat intervals of silence the coordinator
// tolerates before declaring a worker dead. >1 absorbs scheduler jitter
// between the worker's ticker and the coordinator's read deadline.
const hbReadFactor = 4

// fingerprint identifies this build: the SHA-256 of the executable file
// itself. Two binaries built from drifted sources cannot share it, and a
// binary copied to another host keeps it — exactly the equality the
// multi-host fleet needs. Computed once; errors degrade to a sentinel
// that only matches itself on the same failure mode.
var (
	fpOnce sync.Once
	fpVal  string
)

// Fingerprint returns this process's build fingerprint.
func Fingerprint() string {
	fpOnce.Do(func() {
		fpVal = "unknown"
		exe, err := os.Executable()
		if err != nil {
			return
		}
		f, err := os.Open(exe)
		if err != nil {
			return
		}
		defer f.Close()
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			return
		}
		fpVal = hex.EncodeToString(h.Sum(nil))
	})
	return fpVal
}

// initEnvelope builds the init message for one Dispatch call, with the
// slot's per-host composition overrides applied.
func initEnvelope(opt campaign.ExecOptions, over Overrides, hbNs int64) envelope {
	shards, ff := opt.Shards, opt.FastForward
	if over.ShardsSet {
		shards = over.Shards
	}
	if over.FFSet {
		ff = over.FF
	}
	return envelope{
		Type:           "init",
		Proto:          ProtoVersion,
		FP:             Fingerprint(),
		Family:         opt.Family,
		Spec:           opt.Spec,
		BaseSeed:       opt.BaseSeed,
		Shards:         shards,
		FastForward:    ff,
		Retries:        opt.Retries,
		RetryBackoffNs: opt.RetryBackoff.Nanoseconds(),
		WDTimeoutNs:    opt.Watchdog.Timeout.Nanoseconds(),
		WDStallNs:      opt.Watchdog.Stall.Nanoseconds(),
		WDPollNs:       opt.Watchdog.Poll.Nanoseconds(),
		WDGraceNs:      opt.Watchdog.Grace.Nanoseconds(),
		HbNs:           hbNs,
	}
}

// execOptions reverses initEnvelope on the worker side. Progress,
// Collector and Dispatch stay nil: a worker is a leaf.
func (e envelope) execOptions() campaign.ExecOptions {
	return campaign.ExecOptions{
		BaseSeed:     e.BaseSeed,
		Shards:       e.Shards,
		FastForward:  e.FastForward,
		Retries:      e.Retries,
		RetryBackoff: durationNs(e.RetryBackoffNs),
		Watchdog: campaign.Watchdog{
			Timeout: durationNs(e.WDTimeoutNs),
			Stall:   durationNs(e.WDStallNs),
			Poll:    durationNs(e.WDPollNs),
			Grace:   durationNs(e.WDGraceNs),
		},
	}
}
