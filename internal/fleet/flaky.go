package fleet

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// flakyConn injects connection chaos between the coordinator and a worker:
// seeded, per-operation draws decide whether a read or write proceeds,
// stalls, truncates, or severs the link. It exists to prove the fault
// paths, not to model a network — every injected failure must be absorbed
// by the handshake/requeue/redial machinery with records byte-identical to
// `-jobs 1`, which is exactly what the chaos tests and the -fleet-chaos
// golden run assert.
//
// Failure modes drawn per operation:
//   - severed read/write: the underlying conn is closed mid-protocol, so
//     the peer sees a mid-frame truncation (a partial JSON line) — the
//     torn-frame case;
//   - partial write: a prefix of the buffer is written before the sever,
//     so the peer parses a syntactically broken envelope — the corrupted-
//     frame case;
//   - stall: the operation sleeps past the heartbeat deadline, so the
//     coordinator's liveness machinery (not an error) must catch it.
type flakyConn struct {
	Conn
	mu  sync.Mutex
	rng *rand.Rand

	pFail    float64       // per-op probability of severing the link
	pPartial float64       // given a write failure, chance of a partial write first
	pStall   float64       // per-op probability of stalling instead
	stallFor time.Duration // stall duration (0 disables stalls)

	severed bool
}

// ChaosProfile tunes flakyConn. The zero value is replaced by defaults
// gentle enough that campaigns converge under the default crash budgets.
type ChaosProfile struct {
	// FailEvery is the expected number of operations between severed
	// connections (default 40).
	FailEvery int
	// Stall is how long a stalled operation sleeps; 0 disables stall
	// injection. Pair it with a Config.Heartbeat below Stall/hbReadFactor
	// to exercise the liveness deadline.
	Stall time.Duration
}

// newFlakyConn wraps c with seeded chaos. Each connection gets its own
// rand stream so re-dials misbehave independently but reproducibly.
func newFlakyConn(c Conn, seed int64, prof ChaosProfile) *flakyConn {
	failEvery := prof.FailEvery
	if failEvery <= 0 {
		failEvery = 40
	}
	f := &flakyConn{
		Conn:     c,
		rng:      rand.New(rand.NewSource(seed)),
		pFail:    1 / float64(failEvery),
		pPartial: 0.5,
		stallFor: prof.Stall,
	}
	if prof.Stall > 0 {
		f.pStall = f.pFail / 2
	}
	return f
}

// draw rolls the per-operation dice under the lock (Read and Write run on
// different goroutines in the coordinator).
func (f *flakyConn) draw() (sever, partial, stall bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.severed {
		return false, false, false // underlying conn already errors
	}
	switch r := f.rng.Float64(); {
	case r < f.pFail:
		return true, f.rng.Float64() < f.pPartial, false
	case r < f.pFail+f.pStall:
		return false, false, true
	}
	return false, false, false
}

func (f *flakyConn) sever() {
	f.mu.Lock()
	f.severed = true
	f.mu.Unlock()
	f.Conn.Close()
}

func (f *flakyConn) Read(p []byte) (int, error) {
	sever, _, stall := f.draw()
	if stall {
		time.Sleep(f.stallFor)
	}
	if sever {
		f.sever()
		return 0, fmt.Errorf("fleet chaos: injected read failure")
	}
	return f.Conn.Read(p)
}

func (f *flakyConn) Write(p []byte) (int, error) {
	sever, partial, stall := f.draw()
	if stall {
		time.Sleep(f.stallFor)
	}
	if sever {
		n := 0
		if partial && len(p) > 1 {
			f.mu.Lock()
			cut := 1 + f.rng.Intn(len(p)-1)
			f.mu.Unlock()
			n, _ = f.Conn.Write(p[:cut])
		}
		f.sever()
		return n, fmt.Errorf("fleet chaos: injected write failure")
	}
	return f.Conn.Write(p)
}
