package packet

import (
	"reflect"
	"strings"
	"testing"
)

func TestPoolRecyclesReleasedPackets(t *testing.T) {
	var pl Pool
	p1 := pl.NewData(1, 0, MSS, ECT0)
	pl.Release(p1)
	p2 := pl.NewAck(2, 7)
	if p1 != p2 {
		t.Error("pool did not recycle the released packet")
	}
	if p2.Released() {
		t.Error("packet handed out by Get still marked released")
	}
	st := pl.Stats()
	if st.Allocated != 1 || st.Reused != 1 || st.Released != 1 {
		t.Errorf("stats = %+v, want {1 1 1}", st)
	}
}

// TestPoolGetReturnsZeroedPacket: recycled slots must not leak the previous
// tenant's fields — a stale SACK block or ECE flag would corrupt a flow.
func TestPoolGetReturnsZeroedPacket(t *testing.T) {
	var pl Pool
	p := pl.NewData(9, 42, MSS, ECT1)
	p.Flags = FlagACK | FlagECE
	p.SACK = [][2]int64{{1, 2}}
	p.AckedCE = true
	p.Retransmit = true
	pl.Release(p)
	q := pl.Get()
	if !reflect.DeepEqual(*q, Packet{}) {
		t.Errorf("recycled packet not zeroed: %+v", q)
	}
}

func TestPoolDoubleReleasePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double release did not panic")
		}
		if !strings.Contains(r.(string), "double release") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	var pl Pool
	p := pl.NewAck(1, 1)
	pl.Release(p)
	pl.Release(p)
}

// TestPoolAdoptsForeignPackets: packets built with the plain constructors
// (tests, hand-wired topologies) can be released into any pool.
func TestPoolAdoptsForeignPackets(t *testing.T) {
	var pl Pool
	p := NewData(1, 0, MSS, NotECT)
	pl.Release(p)
	if got := pl.Get(); got != p {
		t.Error("adopted packet was not recycled")
	}
}

// TestPoolConstructorsMatchPlainConstructors: the pooled NewData/NewAck must
// produce field-identical packets, or pooling would change simulations.
func TestPoolConstructorsMatchPlainConstructors(t *testing.T) {
	var pl Pool
	if d1, d2 := NewData(3, 5, MSS, ECT1), pl.NewData(3, 5, MSS, ECT1); !reflect.DeepEqual(*d1, *d2) {
		t.Errorf("NewData mismatch: %+v vs %+v", d1, d2)
	}
	if a1, a2 := NewAck(4, 9), pl.NewAck(4, 9); !reflect.DeepEqual(*a1, *a2) {
		t.Errorf("NewAck mismatch: %+v vs %+v", a1, a2)
	}
}

func TestPoisonScramblesReleasedPacket(t *testing.T) {
	pl := Pool{Poison: true}
	p := pl.NewData(1, 10, MSS, ECT0)
	pl.Release(p)
	if p.WireLen >= 0 {
		t.Error("poisoned packet kept a plausible WireLen")
	}
	if p.Seq != poisonSeq || p.Ack != poisonSeq {
		t.Error("poisoned packet kept plausible seq/ack")
	}
	if p.FlowID >= 0 {
		t.Error("poisoned packet kept a plausible FlowID")
	}
	// A poisoned slot must still be recycled clean.
	if q := pl.Get(); q != p || !reflect.DeepEqual(*q, Packet{}) {
		t.Error("poisoned slot not recycled zeroed")
	}
}
