// Package packet defines the packet model shared by the simulator's links,
// AQMs and transport endpoints.
//
// A Packet is a single IP datagram. TCP data segments carry one MSS of
// payload; pure ACKs carry none. The ECN field follows RFC 3168 codepoints,
// with ECT(1) reinterpreted as the identifier for Scalable congestion
// controls, as the paper proposes (and as later standardized for L4S).
package packet

import (
	"fmt"
	"time"
)

// ECN is the two-bit ECN codepoint in the IP header.
type ECN uint8

const (
	// NotECT marks a packet from a transport that does not support ECN.
	// Congestion is signalled to it by dropping.
	NotECT ECN = iota
	// ECT0 marks an ECN-capable packet from a Classic transport
	// (RFC 3168 semantics: a CE mark means the same as a drop).
	ECT0
	// ECT1 marks an ECN-capable packet from a Scalable transport
	// (DCTCP-style semantics; the paper's classifier key).
	ECT1
	// CE is Congestion Experienced: the AQM marked this packet.
	CE
)

// String implements fmt.Stringer.
func (e ECN) String() string {
	switch e {
	case NotECT:
		return "Not-ECT"
	case ECT0:
		return "ECT(0)"
	case ECT1:
		return "ECT(1)"
	case CE:
		return "CE"
	}
	return fmt.Sprintf("ECN(%d)", uint8(e))
}

// ECNCapable reports whether the packet may be CE-marked instead of dropped.
func (e ECN) ECNCapable() bool { return e == ECT0 || e == ECT1 || e == CE }

// Scalable reports whether the codepoint identifies Scalable-CC traffic
// per the paper's classifier (ECT(1) or CE → scalable treatment).
//
// Note CE is grouped with scalable, matching Figure 9: once marked, a packet
// cannot be distinguished, and treating CE as scalable never marks it again.
func (e ECN) Scalable() bool { return e == ECT1 || e == CE }

// Flags are TCP header flags used by the simulator.
type Flags uint8

const (
	// FlagACK marks a segment carrying a cumulative acknowledgment.
	FlagACK Flags = 1 << iota
	// FlagECE is the TCP ECN-Echo flag (receiver → sender).
	FlagECE
	// FlagCWR is the TCP Congestion Window Reduced flag (sender → receiver).
	FlagCWR
	// FlagFIN marks the last segment of a finite flow.
	FlagFIN
)

// Has reports whether all bits in f2 are set in f.
func (f Flags) Has(f2 Flags) bool { return f&f2 == f2 }

// Packet is one simulated IP datagram.
//
// Packets are passed by pointer and owned by exactly one component at a
// time (sender → queue → link → receiver); they are never aliased, so no
// locking is needed (the simulator is single-threaded anyway). The terminal
// owner — the receiver for delivered packets, the link for dropped ones —
// returns the packet to the simulation's Pool for recycling.
type Packet struct {
	// FlowID identifies the transport connection.
	FlowID int
	// Seq is the sequence number of the first payload byte (data segments)
	// and is unused on pure ACKs.
	Seq int64
	// Ack is the cumulative acknowledgment (next expected byte);
	// meaningful when FlagACK is set.
	Ack int64
	// PayloadLen is the TCP payload in bytes (0 for pure ACKs).
	PayloadLen int
	// WireLen is the size on the wire, headers included. The bottleneck
	// serializes WireLen bytes.
	WireLen int
	// ECN is the current IP ECN codepoint; the AQM may rewrite it to CE.
	ECN ECN
	// Flags carries TCP flags.
	Flags Flags
	// AckedCE reports, on an ACK, whether the data segment being
	// acknowledged arrived CE-marked. This models DCTCP-style accurate
	// per-packet feedback (the simulator does not use delayed ACKs).
	AckedCE bool
	// SACK carries up to four selective-acknowledgment ranges
	// [start, end) in segment numbers, lowest first (nil when the flow
	// does not use SACK or nothing is out of order).
	SACK [][2]int64
	// SentAt is the time the sender transmitted the packet (for RTT
	// sampling); EnqueuedAt is stamped by the queue for sojourn time.
	SentAt     time.Duration
	EnqueuedAt time.Duration
	// Retransmit marks retransmitted data segments (diagnostics only).
	Retransmit bool

	// released is set while the packet sits in a Pool's free list; the
	// data path asserts it is false to catch use-after-release.
	released bool
}

// Common wire sizes. MSS is the data payload per segment; HeaderLen covers
// IP+TCP headers; ACKLen is the wire size of a pure ACK.
const (
	MSS       = 1448 // bytes of payload per full segment
	HeaderLen = 52   // IPv4 + TCP + timestamps option
	ACKLen    = 52   // pure ACK wire size
	// FullLen is a full-sized data segment on the wire (1500 B total).
	FullLen = MSS + HeaderLen
)

// NewData returns a data segment of payload bytes for the given flow.
func NewData(flowID int, seq int64, payload int, ecn ECN) *Packet {
	return &Packet{
		FlowID:     flowID,
		Seq:        seq,
		PayloadLen: payload,
		WireLen:    payload + HeaderLen,
		ECN:        ecn,
	}
}

// NewAck returns a pure ACK for the given flow.
func NewAck(flowID int, ack int64) *Packet {
	return &Packet{
		FlowID:  flowID,
		Ack:     ack,
		WireLen: ACKLen,
		Flags:   FlagACK,
	}
}

// String implements fmt.Stringer; it is used in test failure messages.
func (p *Packet) String() string {
	if p.Flags.Has(FlagACK) && p.PayloadLen == 0 {
		return fmt.Sprintf("ack{flow=%d ack=%d ece=%v}", p.FlowID, p.Ack, p.Flags.Has(FlagECE))
	}
	return fmt.Sprintf("data{flow=%d seq=%d len=%d %v}", p.FlowID, p.Seq, p.PayloadLen, p.ECN)
}
