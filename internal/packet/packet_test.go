package packet

import (
	"testing"
	"time"
)

func TestECNString(t *testing.T) {
	cases := map[ECN]string{
		NotECT: "Not-ECT",
		ECT0:   "ECT(0)",
		ECT1:   "ECT(1)",
		CE:     "CE",
		ECN(9): "ECN(9)",
	}
	for e, want := range cases {
		if got := e.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", e, got, want)
		}
	}
}

func TestECNCapable(t *testing.T) {
	for e, want := range map[ECN]bool{
		NotECT: false, ECT0: true, ECT1: true, CE: true,
	} {
		if got := e.ECNCapable(); got != want {
			t.Errorf("%v.ECNCapable() = %v, want %v", e, got, want)
		}
	}
}

func TestScalableClassifier(t *testing.T) {
	// The Figure 9 classifier: ECT(1) and CE take the Scalable path,
	// ECT(0) and Not-ECT the Classic path.
	for e, want := range map[ECN]bool{
		NotECT: false, ECT0: false, ECT1: true, CE: true,
	} {
		if got := e.Scalable(); got != want {
			t.Errorf("%v.Scalable() = %v, want %v", e, got, want)
		}
	}
}

func TestFlagsHas(t *testing.T) {
	f := FlagACK | FlagECE
	if !f.Has(FlagACK) || !f.Has(FlagECE) || !f.Has(FlagACK|FlagECE) {
		t.Error("Has failed for set flags")
	}
	if f.Has(FlagCWR) || f.Has(FlagACK|FlagCWR) {
		t.Error("Has true for unset flags")
	}
}

func TestNewData(t *testing.T) {
	p := NewData(3, 17, MSS, ECT1)
	if p.FlowID != 3 || p.Seq != 17 || p.PayloadLen != MSS || p.ECN != ECT1 {
		t.Errorf("NewData fields wrong: %+v", p)
	}
	if p.WireLen != MSS+HeaderLen {
		t.Errorf("WireLen = %d, want %d", p.WireLen, MSS+HeaderLen)
	}
	if p.Flags.Has(FlagACK) {
		t.Error("data segment has ACK flag")
	}
}

func TestNewAck(t *testing.T) {
	p := NewAck(4, 99)
	if p.FlowID != 4 || p.Ack != 99 {
		t.Errorf("NewAck fields wrong: %+v", p)
	}
	if !p.Flags.Has(FlagACK) {
		t.Error("ACK missing ACK flag")
	}
	if p.WireLen != ACKLen {
		t.Errorf("WireLen = %d, want %d", p.WireLen, ACKLen)
	}
	if p.PayloadLen != 0 {
		t.Error("pure ACK has payload")
	}
}

func TestWireSizes(t *testing.T) {
	if FullLen != 1500 {
		t.Errorf("FullLen = %d, want 1500 (standard Ethernet MTU)", FullLen)
	}
}

func TestStringFormats(t *testing.T) {
	d := NewData(1, 2, MSS, ECT0)
	if got := d.String(); got != "data{flow=1 seq=2 len=1448 ECT(0)}" {
		t.Errorf("data String = %q", got)
	}
	a := NewAck(1, 5)
	a.Flags |= FlagECE
	if got := a.String(); got != "ack{flow=1 ack=5 ece=true}" {
		t.Errorf("ack String = %q", got)
	}
}

func TestTimestampsZeroByDefault(t *testing.T) {
	p := NewData(1, 0, MSS, NotECT)
	if p.SentAt != 0 || p.EnqueuedAt != time.Duration(0) {
		t.Error("fresh packet carries timestamps")
	}
}
