package packet

// Pool is a per-simulator free list of Packets.
//
// The packet lifecycle is single-owner (sender → queue → link → receiver),
// so a packet can be recycled the moment its terminal owner is done with it:
// receivers release packets after consuming them, links release packets they
// drop, and NewData/NewAck hand the slot out again. Each simulation owns
// exactly one pool (via sim.Simulator.PacketPool), so pools need no locking
// and parallel campaign runs never share one.
//
// The zero value is ready to use. Releasing a packet that was allocated
// outside the pool simply adopts it.
type Pool struct {
	// Poison scrambles every released packet's fields so any component
	// still holding the pointer fails loudly (negative wire lengths break
	// the link auditor's conservation identities; the bogus flow id breaks
	// the dispatcher). Enable it via the pi2bench -tagfree flag or
	// PoisonFreed; it exists to catch use-after-release bugs in tests and
	// is off in normal runs.
	Poison bool

	free []*Packet

	news     uint64
	reuses   uint64
	releases uint64
}

// PoisonFreed is the default Poison setting adopted by every pool created
// after it is set (sim.New copies it). Set it once at process start (the
// pi2bench -tagfree flag does); it is read concurrently by parallel runs.
var PoisonFreed bool

// PoolStats reports a pool's traffic for diagnostics and tests.
type PoolStats struct {
	// Allocated counts packets that had to come from the heap.
	Allocated uint64
	// Reused counts packets served from the free list.
	Reused uint64
	// Released counts packets returned to the pool.
	Released uint64
}

// Stats returns the pool's counters.
func (pl *Pool) Stats() PoolStats {
	return PoolStats{Allocated: pl.news, Reused: pl.reuses, Released: pl.releases}
}

// Get returns a zeroed packet, recycling a released one when possible.
func (pl *Pool) Get() *Packet {
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		pl.reuses++
		*p = Packet{}
		return p
	}
	pl.news++
	return &Packet{}
}

// Release returns a packet to the pool. Only the packet's terminal owner may
// call it; releasing the same packet twice panics, because a double release
// would let two components share one recycled slot.
func (pl *Pool) Release(p *Packet) {
	if p == nil {
		return
	}
	if p.released {
		panic("packet: double release (packet already returned to the pool)")
	}
	p.released = true
	if pl.Poison {
		p.poisonFields()
	}
	pl.releases++
	pl.free = append(pl.free, p)
}

// NewData is the pool-backed equivalent of NewData.
func (pl *Pool) NewData(flowID int, seq int64, payload int, ecn ECN) *Packet {
	p := pl.Get()
	p.FlowID = flowID
	p.Seq = seq
	p.PayloadLen = payload
	p.WireLen = payload + HeaderLen
	p.ECN = ecn
	return p
}

// NewAck is the pool-backed equivalent of NewAck.
func (pl *Pool) NewAck(flowID int, ack int64) *Packet {
	p := pl.Get()
	p.FlowID = flowID
	p.Ack = ack
	p.WireLen = ACKLen
	p.Flags = FlagACK
	return p
}

// Released reports whether the packet is currently sitting in a pool's free
// list. Components on the packet's data path assert it is false.
func (p *Packet) Released() bool { return p.released }

// poisonSeq is a recognizable marker in panic output and traces.
const poisonSeq = -0x7ea9_f4ee

// poisonFields scrambles a released packet: the negative wire length breaks
// the link auditor's byte conservation and makes any serialization attempt
// panic (negative tx delay), and the flow id has no registered handler.
func (p *Packet) poisonFields() {
	p.FlowID = -1 << 30
	p.Seq = poisonSeq
	p.Ack = poisonSeq
	p.PayloadLen = -1
	p.WireLen = -1 << 30
	p.ECN = ECN(0xff)
	p.Flags = 0
	p.SACK = nil
}
