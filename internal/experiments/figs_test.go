package experiments

import (
	"strings"
	"testing"
	"time"

	"pi2/internal/campaign"
)

var quick = Options{Quick: true}

func TestFig6PIOvershootsMoreThanPI2(t *testing.T) {
	r := Fig6(quick)
	// The figure's message: fixed-gain linear PI misbehaves at low load
	// (under-utilization, oscillating queue), while PI2 with the same
	// structure plus squaring holds the queue near target. Compare the
	// upward queue excursions after start-up.
	piMax := r.PI.DelaySeries.MaxAfter(5 * time.Second)
	pi2Max := r.PI2.DelaySeries.MaxAfter(5 * time.Second)
	t.Logf("pi max=%.1fms pi2 max=%.1fms", piMax*1e3, pi2Max*1e3)
	if pi2Max > 0.200 {
		t.Errorf("pi2 queue excursion %.0f ms, want bounded", pi2Max*1e3)
	}
	// PI2 must keep the mean near the 20 ms target.
	if m := r.PI2.Sojourn.Mean(); m < 0.004 || m > 0.045 {
		t.Errorf("pi2 mean queue delay %.1f ms, want near 20 ms", m*1e3)
	}
	if r.PI2.Utilization < 0.85 {
		t.Errorf("pi2 utilization %.3f", r.PI2.Utilization)
	}
}

func TestFig11AllLoadsControlled(t *testing.T) {
	r := Fig11(quick)
	for _, load := range r.Loads {
		pi2 := r.Runs[load]["pi2"]
		pie := r.Runs[load]["pie"]
		if pi2.Sojourn.Mean() > 0.080 {
			t.Errorf("%s: pi2 mean queue %.1f ms, want controlled", load, pi2.Sojourn.Mean()*1e3)
		}
		if pie.Sojourn.Mean() > 0.080 {
			t.Errorf("%s: pie mean queue %.1f ms, want controlled", load, pie.Sojourn.Mean()*1e3)
		}
		// TCP-only loads must keep the link busy.
		if load != "5 TCP + 2 UDP" && pi2.Utilization < 0.8 {
			t.Errorf("%s: pi2 utilization %.3f", load, pi2.Utilization)
		}
	}
	// The overload case must be dominated by (dropped) UDP: heavy AQM
	// dropping, and the queue still controlled.
	ov := r.Runs["5 TCP + 2 UDP"]["pi2"]
	if ov.DropsAQM == 0 {
		t.Error("UDP overload produced no AQM drops")
	}
}

func TestFig12PI2PeakBelowPIE(t *testing.T) {
	r := Fig12(quick)
	t.Logf("peaks after capacity drop: pie=%.0fms pi2=%.0fms", r.PeakPIEms, r.PeakPI2ms)
	if r.PeakPI2ms >= r.PeakPIEms {
		t.Errorf("pi2 peak %.0f ms not below pie peak %.0f ms (paper: 250 vs 510)",
			r.PeakPI2ms, r.PeakPIEms)
	}
	// Both controllers must eventually re-settle near target in the
	// final stage.
	lastPI2 := r.PI2.DelaySeries.MeanAfter(r.PI2.DelaySeries.Times[r.PI2.DelaySeries.Len()-1] * 4 / 5)
	if lastPI2 > 0.060 {
		t.Errorf("pi2 did not re-settle: %.1f ms", lastPI2*1e3)
	}
}

func TestFig13Controlled(t *testing.T) {
	r := Fig13(quick)
	if m := r.PI2.Sojourn.Mean(); m > 0.060 {
		t.Errorf("pi2 mean queue %.1f ms", m*1e3)
	}
	if r.PI2.Utilization < 0.85 {
		t.Errorf("pi2 utilization %.3f", r.PI2.Utilization)
	}
}

func TestFig14TargetsRespected(t *testing.T) {
	r := Fig14(quick)
	if len(r.Cases) != 4 {
		t.Fatalf("cases = %d", len(r.Cases))
	}
	for _, c := range r.Cases {
		// Median per-packet delay should track the configured target
		// within a loose factor (smaller target ⇒ smaller delay).
		med := c.PI2.Sojourn.Percentile(50)
		if med > 4*c.Target.Seconds()+0.010 {
			t.Errorf("target %v load %s: pi2 median %.1f ms", c.Target, c.Load, med*1e3)
		}
	}
	// The 5 ms target must actually produce a lower median than 20 ms.
	var m5, m20 float64
	for _, c := range r.Cases {
		if c.Load == "20 TCP" {
			if c.Target == 5*time.Millisecond {
				m5 = c.PI2.Sojourn.Percentile(50)
			} else {
				m20 = c.PI2.Sojourn.Percentile(50)
			}
		}
	}
	if m5 >= m20 {
		t.Errorf("5 ms target median %.1f ms >= 20 ms target median %.1f ms", m5*1e3, m20*1e3)
	}
}

func TestCoexistenceHeadline(t *testing.T) {
	// The paper's core coexistence claim at the 40 Mb/s / 10 ms center of
	// the grid: under PIE, DCTCP starves Cubic (ratio ~0.1); under PI2
	// the ratio is near 1. Run at full length for fidelity.
	o := Options{}
	pie := runSweepPoint(o, &campaign.TaskCtx{Seed: o.seed()}, 40, 10*time.Millisecond, "pie", "dctcp")
	pi2 := runSweepPoint(o, &campaign.TaskCtx{Seed: o.seed()}, 40, 10*time.Millisecond, "pi2", "dctcp")
	t.Logf("pie ratio=%.3f pi2 ratio=%.3f", pie.Ratio, pi2.Ratio)
	if pie.Ratio > 0.3 {
		t.Errorf("PIE ratio %.3f: DCTCP should starve Cubic", pie.Ratio)
	}
	if pi2.Ratio < 0.4 || pi2.Ratio > 2.5 {
		t.Errorf("PI2 ratio %.3f, want near 1", pi2.Ratio)
	}
	if pi2.Ratio < pie.Ratio*3 {
		t.Errorf("PI2 (%.3f) did not materially improve on PIE (%.3f)", pi2.Ratio, pie.Ratio)
	}
}

func TestCoexistenceControlPair(t *testing.T) {
	// Control case: Cubic vs ECN-Cubic behaves similarly under both AQMs
	// (Figure 15's black series).
	o := Options{Quick: true}
	pie := runSweepPoint(o, &campaign.TaskCtx{Seed: o.seed()}, 40, 10*time.Millisecond, "pie", "ecn-cubic")
	pi2 := runSweepPoint(o, &campaign.TaskCtx{Seed: o.seed()}, 40, 10*time.Millisecond, "pi2", "ecn-cubic")
	t.Logf("pie=%.3f pi2=%.3f", pie.Ratio, pi2.Ratio)
	for _, p := range []SweepPoint{pie, pi2} {
		if p.Ratio < 0.3 || p.Ratio > 3 {
			t.Errorf("%s ecn-cubic ratio %.3f, want same ballpark as 1", p.AQM, p.Ratio)
		}
	}
}

func TestSweepProbabilityCoupling(t *testing.T) {
	// Under PI2, the scalable marking probability must exceed the classic
	// probability (ps = 2·√pc > pc), visible in the Figure 17 data.
	o := Options{Quick: true}
	pt := runSweepPoint(o, &campaign.TaskCtx{Seed: o.seed()}, 40, 10*time.Millisecond, "pi2", "dctcp")
	if pt.ProbB.Mean <= pt.ProbA.Mean {
		t.Errorf("scalable prob %.4f <= classic prob %.4f", pt.ProbB.Mean, pt.ProbA.Mean)
	}
	if pt.ProbA.Mean <= 0 {
		t.Error("classic probability never rose")
	}
}

func TestFlowCombosBalanced(t *testing.T) {
	pts := FlowCombos(Options{Quick: true}, nil)
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for _, p := range pts {
		if p.AQM != "pi2" || p.Pair != "dctcp" || p.NA == 0 || p.NB == 0 {
			continue
		}
		if p.RatioPerFlow < 0.2 || p.RatioPerFlow > 5 {
			t.Errorf("pi2 A%d-B%d per-flow ratio %.3f, wildly unbalanced", p.NA, p.NB, p.RatioPerFlow)
		}
	}
}

func TestTable1Printed(t *testing.T) {
	var b strings.Builder
	PrintTable1(&b)
	out := b.String()
	for _, want := range []string{"pi2", "pie", "0.3125", "20ms", "40000"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q", want)
		}
	}
}

func TestPrintersProduceRows(t *testing.T) {
	pts := []SweepPoint{{LinkMbps: 40, RTT: 10 * time.Millisecond, AQM: "pi2", Pair: "dctcp", Ratio: 1}}
	for name, fn := range map[string]func(*strings.Builder){
		"fig15": func(b *strings.Builder) { PrintFig15(b, pts) },
		"fig16": func(b *strings.Builder) { PrintFig16(b, pts) },
		"fig17": func(b *strings.Builder) { PrintFig17(b, pts) },
		"fig18": func(b *strings.Builder) { PrintFig18(b, pts) },
	} {
		var b strings.Builder
		fn(&b)
		if !strings.Contains(b.String(), "dctcp\tpi2\t40") {
			t.Errorf("%s: missing data row:\n%s", name, b.String())
		}
	}
	var b strings.Builder
	cp := []ComboPoint{{NA: 2, NB: 8, AQM: "pi2", Pair: "dctcp", RatioPerFlow: 1.1}}
	PrintFig19(&b, cp)
	PrintFig20(&b, cp)
	if !strings.Contains(b.String(), "A2-B8") {
		t.Error("combo printers missing row")
	}
}

func TestFactoryByName(t *testing.T) {
	for _, name := range []string{"pi2", "pie", "bare-pie", "pi", "red", "codel", "taildrop"} {
		if _, ok := FactoryByName(name, 20*time.Millisecond); !ok {
			t.Errorf("FactoryByName(%q) failed", name)
		}
	}
	if _, ok := FactoryByName("fq-codel", 0); ok {
		t.Error("unknown AQM resolved")
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() float64 {
		r := Fig13(Options{Quick: true, Seed: 77})
		return r.PI2.Sojourn.Mean()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
}

func TestRunDifferentSeedsDiffer(t *testing.T) {
	a := Fig13(Options{Quick: true, Seed: 1}).PI2.Sojourn.Mean()
	b := Fig13(Options{Quick: true, Seed: 2}).PI2.Sojourn.Mean()
	if a == b {
		t.Error("different seeds produced identical results (suspicious)")
	}
}
