package experiments

import (
	"strings"
	"testing"
	"time"
)

const sampleJSON = `{
  "seed": 7,
  "link_mbps": 10,
  "aqm": "pi2",
  "duration": "20s",
  "warmup": "5s",
  "sack": true,
  "flows": [
    {"cc": "reno", "count": 3, "rtt": "100ms", "label": "bulk"}
  ],
  "udp": [{"rate_mbps": 2, "start": "5s", "stop": "15s"}],
  "rate_changes": [{"at": "10s", "rate_mbps": 5}]
}`

func TestLoadScenarioRoundTrip(t *testing.T) {
	sc, err := LoadScenario(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seed != 7 || sc.LinkRateBps != 10e6 || sc.Duration != 20*time.Second {
		t.Errorf("basics wrong: %+v", sc)
	}
	if !sc.SACK || len(sc.Bulk) != 1 || sc.Bulk[0].Count != 3 || sc.Bulk[0].RTT != 100*time.Millisecond {
		t.Errorf("flows wrong: %+v", sc.Bulk)
	}
	if len(sc.UDP) != 1 || sc.UDP[0].RateBps != 2e6 || sc.UDP[0].StopAt != 15*time.Second {
		t.Errorf("udp wrong: %+v", sc.UDP)
	}
	if len(sc.RateChanges) != 1 || sc.RateChanges[0].RateBps != 5e6 {
		t.Errorf("rate changes wrong: %+v", sc.RateChanges)
	}
	// And it actually runs.
	res := Run(sc)
	if res.Utilization <= 0 {
		t.Error("loaded scenario produced nothing")
	}
}

func TestLoadScenarioErrors(t *testing.T) {
	cases := []struct {
		name, js, want string
	}{
		{"bad json", `{`, "scenario"},
		{"unknown field", `{"link_mbps":10,"duration":"1s","nope":1,"flows":[{"cc":"reno","count":1,"rtt":"1ms"}]}`, "nope"},
		{"no link", `{"duration":"1s","flows":[{"cc":"reno","count":1,"rtt":"1ms"}]}`, "link_mbps"},
		{"no traffic", `{"link_mbps":10,"duration":"1s"}`, "no traffic"},
		{"bad aqm", `{"link_mbps":10,"aqm":"fifo2","duration":"1s","flows":[{"cc":"reno","count":1,"rtt":"1ms"}]}`, "unknown aqm"},
		{"no duration", `{"link_mbps":10,"flows":[{"cc":"reno","count":1,"rtt":"1ms"}]}`, "duration is required"},
		{"bad rtt", `{"link_mbps":10,"duration":"1s","flows":[{"cc":"reno","count":1,"rtt":"fast"}]}`, "rtt"},
		{"zero count", `{"link_mbps":10,"duration":"1s","flows":[{"cc":"reno","count":0,"rtt":"1ms"}]}`, "count"},
		{"negative time", `{"link_mbps":10,"duration":"-1s","flows":[{"cc":"reno","count":1,"rtt":"1ms"}]}`, "non-negative"},
	}
	for _, c := range cases {
		_, err := LoadScenario(strings.NewReader(c.js))
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.want)
		}
	}
}

func TestLoadScenarioDefaults(t *testing.T) {
	sc, err := LoadScenario(strings.NewReader(
		`{"link_mbps":10,"duration":"1s","flows":[{"cc":"reno","count":1,"rtt":"1ms"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seed != 1 {
		t.Errorf("default seed = %d", sc.Seed)
	}
	if sc.NewAQM == nil {
		t.Error("default AQM not set")
	}
}
