package experiments

import (
	"testing"
	"time"

	"pi2/internal/traffic"
)

// TestFig6SuppressionSignature checks the reproducible core of the paper's
// Figure 6 observation. On the Linux testbed, non-auto-tuned linear PI
// "immediately suppressed any onset of congestion very aggressively
// (p becomes too high, because β is too high)" at low load, oscillating the
// queue. In this per-segment simulator flow desynchronization damps the
// full limit cycle (no TSO bursts or ACK compression — see EXPERIMENTS.md),
// but the over-suppression signature survives: linear PI holds the queue
// measurably below target, while PI2 — with 2.5× higher gains — pins it at
// the target.
func TestFig6SuppressionSignature(t *testing.T) {
	run := func(f AQMFactory) *Result {
		return Run(Scenario{
			Seed:        1,
			LinkRateBps: 100e6,
			NewAQM:      f,
			Bulk: []traffic.BulkFlowSpec{
				{CC: "reno", Count: 10, RTT: 10 * time.Millisecond},
			},
			Duration: 50 * time.Second,
			WarmUp:   10 * time.Second,
		})
	}
	pi := run(PIFactory(20 * time.Millisecond))
	pi2 := run(PI2Factory(20 * time.Millisecond))
	t.Logf("pi meanQ=%.1fms pi2 meanQ=%.1fms", pi.Sojourn.Mean()*1e3, pi2.Sojourn.Mean()*1e3)
	if pi.Sojourn.Mean() >= pi2.Sojourn.Mean() {
		t.Errorf("linear PI (%.1f ms) should over-suppress below PI2 (%.1f ms)",
			pi.Sojourn.Mean()*1e3, pi2.Sojourn.Mean()*1e3)
	}
	// PI2 holds the target despite 2.5x the gain.
	if m := pi2.Sojourn.Mean(); m < 0.014 || m > 0.03 {
		t.Errorf("pi2 mean %.1f ms, want pinned near the 20 ms target", m*1e3)
	}
	// Both keep the link busy at this load either way.
	if pi.Utilization < 0.95 || pi2.Utilization < 0.95 {
		t.Errorf("utilization pi=%.3f pi2=%.3f", pi.Utilization, pi2.Utilization)
	}
}
