package experiments

import (
	"errors"
	"fmt"
	"io"
	"time"

	"pi2/internal/campaign"
	"pi2/internal/core"
	"pi2/internal/faults"
	"pi2/internal/link"
	"pi2/internal/sim"
	"pi2/internal/stats"
	"pi2/internal/tcp"
	"pi2/internal/traffic"
)

// The chaos family is the robustness tier: the paper's coexistence traffic
// (Classic vs Scalable through one bottleneck) subjected to the channel
// faults real deployments see — bursty loss, capacity flaps, reordering and
// duplication — comparing how PIE, PI2 and DualPI2 hold their delay target
// and fairness when the environment misbehaves. Arms of one scenario share
// a seed index, so each AQM faces the identical fault schedule.
const (
	chaosLinkBps = 40e6
	chaosRTT     = 10 * time.Millisecond
)

// ChaosScenarios is the impairment axis of the chaos grid.
var ChaosScenarios = []string{"burst-loss", "flap", "chaos"}

// ChaosAQMs are the disciplines compared under each impairment.
var ChaosAQMs = []string{"pie", "pi2", "dualpi2"}

// chaosImpair builds a fresh fault configuration for one cell. A fresh
// value per cell matters: loss models are stateful (the Gilbert–Elliott
// chain remembers its state), so sharing one across parallel cells would
// leak fault state between runs.
func chaosImpair(scenario string, o Options) *faults.Config {
	// ~0.8% stationary loss in bursts of mean length 4 packets.
	ge := func() *faults.GilbertElliott {
		return &faults.GilbertElliott{PGB: 0.002, PBG: 0.25, LossBad: 1}
	}
	flap := func() faults.RateSchedule {
		return faults.Square{
			HighBps: chaosLinkBps,
			LowBps:  chaosLinkBps * 3 / 8, // 40 -> 15 Mb/s
			Period:  o.scale(20 * time.Second),
		}
	}
	switch scenario {
	case "burst-loss":
		return &faults.Config{Loss: ge()}
	case "flap":
		return &faults.Config{Rate: flap()}
	case "chaos":
		return &faults.Config{
			Loss:          ge(),
			Rate:          flap(),
			ReorderProb:   0.01,
			ReorderDelay:  2 * time.Millisecond,
			ReorderJitter: time.Millisecond,
			DupProb:       0.002,
		}
	default:
		panic("unknown chaos scenario " + scenario)
	}
}

// ChaosPoint is one cell of the chaos grid: one AQM under one impairment
// scenario with the standard 4 Cubic + 4 DCTCP coexistence mix.
type ChaosPoint struct {
	Scenario string
	AQM      string

	// Jain is Jain's fairness index over all per-flow rates.
	Jain float64
	// QMeanMs / QP99Ms summarize per-packet queuing delay.
	QMeanMs, QP99Ms float64
	// Util is the bottleneck's busy fraction.
	Util float64
	// FaultDrops counts channel losses the impairment layer injected.
	FaultDrops int

	Events uint64
}

// EventCount satisfies campaign.EventCounter for per-run events/sec records.
func (p ChaosPoint) EventCount() uint64 { return p.Events }

// Metrics implements campaign.MetricsReporter — the fingerprint the golden
// harness tracks for each chaos cell.
func (p ChaosPoint) Metrics() map[string]float64 {
	return map[string]float64{
		"jain":        p.Jain,
		"q_mean_ms":   p.QMeanMs,
		"q_p99_ms":    p.QP99Ms,
		"util":        p.Util,
		"fault_drops": float64(p.FaultDrops),
		"events":      float64(p.Events),
	}
}

// Chaos runs the impairment grid: every scenario × AQM cell across o.Jobs
// workers. AQM arms of one scenario share a seed index so they face the
// identical traffic and fault randomness — the comparison is paired. A
// non-nil error names every failed cell (CI smoke exits nonzero) while the
// returned points still cover the cells that completed; failed cells appear
// with Failed-style zero metrics in the table via PrintChaos.
func Chaos(o Options) ([]ChaosPoint, []string, error) {
	tasks := chaosTasks(o)
	out := make([]ChaosPoint, len(tasks))
	bad := make([]bool, len(tasks))
	// Records stream and fold by index as they arrive; the failure list is
	// assembled in matrix order afterwards so tables and errors stay
	// deterministic under any completion order.
	campaign.ExecuteStream(tasks, o.execFor("chaos", gridSpec{}), func(rec campaign.RunRecord) {
		scn, _ := rec.Params["scenario"].(string)
		aqmName, _ := rec.Params["aqm"].(string)
		p, ok := rec.Result.(ChaosPoint)
		if rec.Err != "" || !ok {
			bad[rec.Index] = true
			out[rec.Index] = ChaosPoint{Scenario: scn, AQM: aqmName}
			return
		}
		out[rec.Index] = p
	})
	var failed []string
	for i, b := range bad {
		if b {
			failed = append(failed, fmt.Sprintf("%s/%s", out[i].Scenario, out[i].AQM))
		}
	}
	if len(failed) > 0 {
		return out, failed, errors.New("chaos cells failed: " + fmt.Sprint(failed))
	}
	return out, nil, nil
}

// chaosTasks builds the scenario × AQM matrix; AQM arms of one scenario
// share a seed index so they face identical traffic and fault randomness.
func chaosTasks(o Options) []campaign.Task {
	var tasks []campaign.Task
	for si, scn := range ChaosScenarios {
		for _, aqmName := range ChaosAQMs {
			scn, aqmName := scn, aqmName
			tasks = append(tasks, campaign.Task{
				Name:      "chaos",
				SeedIndex: si, // paired across AQMs within one scenario
				Params:    map[string]any{"scenario": scn, "aqm": aqmName},
				Run: func(tc *campaign.TaskCtx) any {
					if aqmName == "dualpi2" {
						return runChaosDual(o, tc, scn)
					}
					return runChaosCell(o, tc, scn, aqmName)
				},
			})
		}
	}
	return tasks
}

func chaosDuration(o Options) time.Duration {
	return o.scale(60 * time.Second)
}

// runChaosCell is a single-queue cell (PIE or PI2) through the scenario
// runner with the cell's own impairment config.
func runChaosCell(o Options, tc *campaign.TaskCtx, scenario, aqmName string) ChaosPoint {
	target := o.target()
	factory, ok := FactoryByName(aqmName, target)
	if !ok {
		panic("unknown AQM " + aqmName)
	}
	dur := chaosDuration(o)
	sc := Scenario{
		Seed:        tc.Seed,
		Watch:       tc.Watch,
		Shards:      tc.Shards,
		LinkRateBps: chaosLinkBps,
		NewAQM:      factory,
		Impair:      chaosImpair(scenario, o),
		Bulk: []traffic.BulkFlowSpec{
			{CC: "cubic", Count: 4, RTT: chaosRTT, Label: "cubic"},
			{CC: "dctcp", Count: 4, RTT: chaosRTT, Label: "dctcp"},
		},
		Duration: dur,
		WarmUp:   dur / 4,
	}
	r := Run(sc)
	return ChaosPoint{
		Scenario:   scenario,
		AQM:        aqmName,
		Jain:       jainOf(r),
		QMeanMs:    r.Sojourn.Mean() * 1e3,
		QP99Ms:     r.Sojourn.Percentile(99) * 1e3,
		Util:       r.Utilization,
		FaultDrops: r.FaultDrops,
		Events:     r.Events,
	}
}

// runChaosDual is the DualPI2 cell, hand-wired around core.DualLink with the
// same impairment placement as the scenario runner: the injector wraps the
// delivery callback after the bottleneck, and the rate schedule drives the
// dual link's capacity.
func runChaosDual(o Options, tc *campaign.TaskCtx, scenario string) ChaosPoint {
	dur := chaosDuration(o)
	warm := dur / 4

	s := sim.New(tc.Seed)
	tc.Watch(s)
	d := link.NewDispatcher()
	cfg := chaosImpair(scenario, o)
	deliver := d.Deliver
	var inj *faults.Injector
	if cfg.Active() {
		inj = faults.NewInjector(s, *cfg, d.Deliver)
		deliver = inj.Deliver
	}
	dual := core.NewDualLink(s, chaosLinkBps, core.DualConfig{}, deliver)
	if cfg.Rate != nil {
		cfg.Rate.Apply(s, dual)
	}
	soj := &stats.Sample{}
	dual.LSojourn = soj
	dual.CSojourn = soj

	var flows []*tcp.Endpoint
	id := 1
	mk := func(cc tcp.CongestionControl, mode tcp.ECNMode) {
		ep := tcp.NewWithEnqueuer(s, dual.Enqueue, tcp.Config{
			ID: id, CC: cc, ECN: mode, BaseRTT: chaosRTT,
		})
		d.Register(id, ep.DeliverData)
		ep.Start()
		id++
		flows = append(flows, ep)
	}
	for i := 0; i < 4; i++ {
		mk(&tcp.Cubic{}, tcp.ECNOff)
	}
	for i := 0; i < 4; i++ {
		mk(&tcp.DCTCP{}, tcp.ECNScalable)
	}
	s.At(warm, func() {
		now := s.Now()
		for _, ep := range flows {
			ep.Goodput.Reset(now)
		}
		soj.Reset()
	})
	s.RunUntil(dur)
	if msg := dual.Audit().Err("duallink"); msg != "" {
		panic(msg)
	}
	now := s.Now()
	rates := make([]float64, 0, len(flows))
	for _, ep := range flows {
		rates = append(rates, ep.Goodput.RateBps(now))
	}
	pt := ChaosPoint{
		Scenario: scenario,
		AQM:      "dualpi2",
		Jain:     stats.JainIndex(rates),
		QMeanMs:  soj.Mean() * 1e3,
		QP99Ms:   soj.Percentile(99) * 1e3,
		Util:     dual.Utilization(),
		Events:   s.Processed(),
	}
	if inj != nil {
		pt.FaultDrops = inj.Dropped
	}
	return pt
}

// PrintChaos writes the robustness table. Failed cells (named in failed)
// render as FAILED rows so a partially-degraded grid still reports every
// cell it completed.
func PrintChaos(w io.Writer, pts []ChaosPoint, failed []string) {
	fmt.Fprintln(w, "# Chaos tier: 4 cubic + 4 dctcp at 40 Mb/s, RTT 10 ms, under channel faults")
	fmt.Fprintln(w, "# burst-loss: Gilbert-Elliott bursts (~0.8% loss, mean burst 4 pkts);")
	fmt.Fprintln(w, "# flap: capacity square wave 40<->15 Mb/s; chaos: both + reorder + dup")
	fmt.Fprintln(w, "scenario\taqm\tjain\tq_mean_ms\tq_p99_ms\tutil\tfault_drops")
	bad := make(map[string]bool, len(failed))
	for _, f := range failed {
		bad[f] = true
	}
	for _, p := range pts {
		if bad[p.Scenario+"/"+p.AQM] {
			fmt.Fprintf(w, "%s\t%s\tFAILED\tFAILED\tFAILED\tFAILED\tFAILED\n", p.Scenario, p.AQM)
			continue
		}
		fmt.Fprintf(w, "%s\t%s\t%.3f\t%.2f\t%.2f\t%.3f\t%d\n",
			p.Scenario, p.AQM, p.Jain, p.QMeanMs, p.QP99Ms, p.Util, p.FaultDrops)
	}
}
