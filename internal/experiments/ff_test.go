package experiments

import (
	"math"
	"testing"
	"time"

	"pi2/internal/traffic"
)

// ffTwinScenario is a small fast-forward-eligible cell: a reno/cubic/dctcp
// mix through PI2 at 2 Mb/s fair share, long enough past warm-up for
// quiescent epochs to fire. WarmUp is deliberately not aligned to the 100 ms
// or 1 s sampler grids, so the warm-up reset is the only event whose
// scheduling differs between the packet and hybrid main loops.
func ffTwinScenario(ff bool) Scenario {
	factory, _ := FactoryByName("pi2", 0)
	return Scenario{
		Seed:           7,
		FastForward:    ff,
		LinkRateBps:    2e6 * 9,
		NewAQM:         factory,
		CompactMetrics: true,
		Bulk: []traffic.BulkFlowSpec{
			{CC: "reno", Count: 3, RTT: 10 * time.Millisecond, Label: "reno"},
			{CC: "cubic", Count: 3, RTT: 10 * time.Millisecond, Label: "cubic"},
			{CC: "dctcp", Count: 3, RTT: 10 * time.Millisecond, Label: "dctcp"},
		},
		Duration: 4 * time.Second,
		WarmUp:   1550 * time.Millisecond,
	}
}

// TestFFForceZeroByteIdentity is the zero-length-epoch property test: with
// the engine detecting epochs but committing zero periods (ffForceZero), a
// -ff run must reproduce the -ff-off run exactly — same event count modulo
// the warm-up reset (an event in the packet loop, a direct call in the
// hybrid loop), and bit-equal statistics everywhere. Any state the predicate
// or the zero-length path mutated — RNG draws, AQM clocks, flow windows —
// would show up as a divergence downstream.
func TestFFForceZeroByteIdentity(t *testing.T) {
	base := Run(ffTwinScenario(false))

	ffForceZero = true
	defer func() { ffForceZero = false }()
	zero := Run(ffTwinScenario(true))

	if zero.FFZeroEpochs == 0 {
		t.Fatal("no zero-length epochs detected; the property is vacuous")
	}
	if zero.FFEpochs != 0 || zero.FFTime != 0 || zero.FFVirtualPkts != 0 {
		t.Fatalf("ForceZero committed work: epochs=%d time=%v pkts=%d",
			zero.FFEpochs, zero.FFTime, zero.FFVirtualPkts)
	}
	// The packet loop processes the warm-up reset as one scheduled event;
	// the hybrid loop invokes it directly. Everything else must match.
	if base.Events != zero.Events+1 {
		t.Errorf("events: packet=%d hybrid=%d (want packet = hybrid+1)",
			base.Events, zero.Events)
	}
	if base.Marks != zero.Marks || base.DropsAQM != zero.DropsAQM ||
		base.DropsOverflow != zero.DropsOverflow {
		t.Errorf("link counters diverge: marks %d/%d dropsAQM %d/%d overflow %d/%d",
			base.Marks, zero.Marks, base.DropsAQM, zero.DropsAQM,
			base.DropsOverflow, zero.DropsOverflow)
	}
	if base.Utilization != zero.Utilization {
		t.Errorf("utilization: %v vs %v", base.Utilization, zero.Utilization)
	}
	if base.Sojourn.Mean() != zero.Sojourn.Mean() ||
		base.Sojourn.Percentile(99) != zero.Sojourn.Percentile(99) {
		t.Errorf("sojourn stats diverge: mean %v/%v p99 %v/%v",
			base.Sojourn.Mean(), zero.Sojourn.Mean(),
			base.Sojourn.Percentile(99), zero.Sojourn.Percentile(99))
	}
	if len(base.Groups) != len(zero.Groups) {
		t.Fatalf("group count: %d vs %d", len(base.Groups), len(zero.Groups))
	}
	for i := range base.Groups {
		b, z := base.Groups[i], zero.Groups[i]
		if b.Marks != z.Marks || b.CongestionEvents != z.CongestionEvents ||
			b.Retransmissions != z.Retransmissions {
			t.Errorf("group %s counters diverge: marks %d/%d events %d/%d retx %d/%d",
				b.Label, b.Marks, z.Marks, b.CongestionEvents, z.CongestionEvents,
				b.Retransmissions, z.Retransmissions)
		}
		for j := range b.FlowRates {
			if b.FlowRates[j] != z.FlowRates[j] {
				t.Errorf("group %s flow %d rate: %v vs %v",
					b.Label, j, b.FlowRates[j], z.FlowRates[j])
			}
		}
	}
}

// TestFFTwinFidelity validates real fast-forward epochs against the
// packet-mode twin of the same cell: aggregate goodput within a few percent,
// Jain's index within a band, and the queue parked near the same operating
// point. The tolerances are behavioral (the fluid trajectory is a model, not
// a replay), but tight enough to catch any systematic bias — the regressions
// this PR debugged (unresponsive frozen-recovery flows, a shifted warm-up
// reset) each moved these numbers by 2-10x the allowed band.
func TestFFTwinFidelity(t *testing.T) {
	pkt := Run(ffTwinScenario(false))
	ff := Run(ffTwinScenario(true))

	if ff.FFEpochs == 0 || ff.FFTime < time.Second {
		t.Fatalf("fast-forward barely engaged: epochs=%d time=%v",
			ff.FFEpochs, ff.FFTime)
	}
	var pktTotal, ffTotal float64
	for i := range pkt.Groups {
		pktTotal += pkt.Groups[i].Total()
		ffTotal += ff.Groups[i].Total()
	}
	if rel := math.Abs(ffTotal-pktTotal) / pktTotal; rel > 0.05 {
		t.Errorf("aggregate goodput diverges %.1f%%: packet=%.3g ff=%.3g",
			rel*100, pktTotal, ffTotal)
	}
	jain := func(r *Result) float64 {
		var sum, sq float64
		var n int
		for _, g := range r.Groups {
			for _, rate := range g.FlowRates {
				sum += rate
				sq += rate * rate
				n++
			}
		}
		return sum * sum / (float64(n) * sq)
	}
	jp, jf := jain(pkt), jain(ff)
	// The fluid model suppresses short-run stochastic unfairness, so the
	// hybrid run may only be fairer, never markedly less fair.
	if jf < jp-0.02 {
		t.Errorf("fairness collapsed under fast-forward: jain packet=%.3f ff=%.3f", jp, jf)
	}
	qp, qf := pkt.Sojourn.Mean(), ff.Sojourn.Mean()
	if rel := math.Abs(qf-qp) / qp; rel > 0.25 {
		t.Errorf("mean queue delay diverges %.0f%%: packet=%.1fms ff=%.1fms",
			rel*100, qp*1e3, qf*1e3)
	}
	if ff.Utilization < 0.95 {
		t.Errorf("utilization under fast-forward = %.3f, want >= 0.95", ff.Utilization)
	}
	t.Logf("packet: jain=%.3f q=%.1fms | ff: jain=%.3f q=%.1fms epochs=%d ffTime=%v virtual=%d",
		jp, qp*1e3, jf, qf*1e3, ff.FFEpochs, ff.FFTime, ff.FFVirtualPkts)
}
