package experiments

import "testing"

// TestDualQBeatsSingleQueueOnLatency is the extension's headline: the L
// queue's delay must be at least an order of magnitude below the shared
// single-queue delay, with rate balance and utilization preserved.
func TestDualQBeatsSingleQueueOnLatency(t *testing.T) {
	r := DualQ(Options{Quick: true}, 1, 1)
	t.Logf("single: ratio=%.2f L=%.2fms | dual: ratio=%.2f L=%.3fms C=%.2fms util=%.3f",
		r.SingleRatio, r.SingleLDelayMs.Mean, r.DualRatio, r.DualLDelayMs.Mean, r.DualCDelayMs.Mean, r.DualUtil)
	if r.DualLDelayMs.Mean > r.SingleLDelayMs.Mean/10 {
		t.Errorf("dual L delay %.3f ms, want <= single/10 (%.3f ms)",
			r.DualLDelayMs.Mean, r.SingleLDelayMs.Mean/10)
	}
	if r.DualRatio < 0.2 || r.DualRatio > 5 {
		t.Errorf("dual rate ratio %.3f: coupling broken across queues", r.DualRatio)
	}
	if r.DualUtil < 0.9 {
		t.Errorf("dual utilization %.3f", r.DualUtil)
	}
	if r.JainDual < 0.7 {
		t.Errorf("dual Jain index %.3f", r.JainDual)
	}
}

// TestArrangementsComparison pins the qualitative three-way outcome:
//   - single-pi2: balanced rates, shared ~20 ms delay for everyone
//   - dualpi2:    sub-ms Scalable delay; Classic keeps its target; the
//     rate ratio shifts toward DCTCP because its effective RTT
//     (base only) is now ~3x shorter than Cubic's (base + C queue) —
//     the RTT dependence RFC 9332 discusses
//   - fq-codel:   perfect isolation and low delay for both, bought with
//     per-flow state the paper's designs avoid
func TestArrangementsComparison(t *testing.T) {
	o := Options{Quick: true}
	dq := DualQ(o, 1, 1)
	fqr := FQArrangement(o, 1, 1)

	if dq.SingleRatio < 0.5 || dq.SingleRatio > 2 {
		t.Errorf("single-queue ratio %.3f", dq.SingleRatio)
	}
	if fqr.Ratio < 0.8 || fqr.Ratio > 1.25 {
		t.Errorf("fq ratio %.3f, want scheduler-enforced ~1", fqr.Ratio)
	}
	if fqr.Jain < 0.95 {
		t.Errorf("fq jain %.3f", fqr.Jain)
	}
	// Delay ordering: dual L << fq <= single shared queue.
	if !(dq.DualLDelayMs.Mean < fqr.DelayMs.Mean && fqr.DelayMs.Mean < dq.SingleLDelayMs.Mean) {
		t.Errorf("delay ordering violated: dualL=%.2f fq=%.2f single=%.2f",
			dq.DualLDelayMs.Mean, fqr.DelayMs.Mean, dq.SingleLDelayMs.Mean)
	}
	if fqr.Util < 0.9 {
		t.Errorf("fq util %.3f", fqr.Util)
	}
}

// TestRTTFairSweepShape: the equal-RTT diagonal stays near balance; when
// the Classic flow has the much longer RTT it loses ground but must not be
// starved outright.
func TestRTTFairSweepShape(t *testing.T) {
	pts := RTTFairSweep(Options{Quick: true})
	for _, p := range pts {
		if p.RTTA == p.RTTB && (p.Ratio < 0.3 || p.Ratio > 3) {
			t.Errorf("equal-RTT cell %v: ratio %.3f, want near 1", p.RTTA, p.Ratio)
		}
		if p.Ratio <= 0.01 {
			t.Errorf("cell A=%v B=%v: cubic starved (ratio %.4f)", p.RTTA, p.RTTB, p.Ratio)
		}
	}
}
