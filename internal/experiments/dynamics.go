package experiments

import (
	"fmt"
	"io"
	"time"

	"pi2/internal/campaign"
	"pi2/internal/traffic"
)

// Options tune how the figure drivers run.
type Options struct {
	// Quick scales durations down (for benchmarks and CI).
	Quick bool
	// TimeDiv, when > 0, divides durations by this factor instead of
	// Quick's fixed 5x. The golden harness captures fingerprints with
	// Quick grids and a deeper TimeDiv so the whole registry stays cheap.
	TimeDiv int
	// Seed is the campaign base seed (default 1); each run in a grid
	// executes with campaign.DeriveSeed(Seed, its seed index).
	Seed int64
	// Jobs is the worker-pool width for grid drivers. 0 or 1 runs
	// serially; either way the output is bit-identical, because per-run
	// seeds depend only on the run's index in the matrix.
	Jobs int
	// Progress, if set, observes every completed run.
	Progress campaign.ProgressFunc
	// Collect, if set, receives every RunRecord (the CLIs' -json sink).
	Collect *campaign.Collector
	// Watchdog bounds each cell's attempts (zero = unsupervised).
	Watchdog campaign.Watchdog
	// Retries re-runs failed cells with perturbed seeds; RetryBackoff is
	// the doubling wait between attempts.
	Retries      int
	RetryBackoff time.Duration
	// Shards partitions each cell's simulation across this many event-loop
	// domains (conservative PDES); 0/1 keeps the classic single loop.
	// Scenarios that cannot shard (too few flows, no propagation delay)
	// ignore it.
	Shards int
	// FastForward turns on the hybrid fluid/packet engine for eligible
	// cells (steady bulk population, FastForwarder AQM); ineligible cells
	// silently run per-packet. It also extends the heavy tier with the
	// 10000- and 50000-flow cells that are only tractable analytically.
	FastForward bool
	// Reps repeats each heavy/sweep cell with perturbed seeds and reports
	// cross-seed confidence bands; 0/1 keeps the single-run tables
	// (byte-identical to builds without the knob).
	Reps int
	// Target overrides the AQM target delay in the drivers that default
	// to the paper's 20 ms (heavy, sweep, chaos). 0 keeps 20 ms. Briscoe's
	// "PI2 Parameters" follow-up recommends 15 ms for the Linux dualpi2
	// default; goldens pin 20 ms, so overrides never regress them.
	Target time.Duration
	// Dispatch, if set, routes every grid with a registered task source
	// through a fleet of worker processes (the CLI's -workers flag);
	// records and tables stay byte-identical to in-process runs.
	Dispatch campaign.Dispatcher
	// Journal, if set, receives every final record of every grid with a
	// registered task source (the CLI's -journal flag); Resume replays a
	// previous journal, skipping already-completed cells (-resume). Both
	// key on the same (family, spec) identity the dispatcher uses.
	Journal campaign.JournalSink
	Resume  campaign.ResumeSet
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// reps returns the effective repetition count (at least 1).
func (o Options) reps() int {
	if o.Reps < 1 {
		return 1
	}
	return o.Reps
}

// target returns the effective AQM target delay: the paper's 20 ms unless
// overridden.
func (o Options) target() time.Duration {
	if o.Target > 0 {
		return o.Target
	}
	return 20 * time.Millisecond
}

// exec assembles the campaign executor options for a grid driver.
func (o Options) exec() campaign.ExecOptions {
	jobs := o.Jobs
	if jobs <= 0 {
		jobs = 1
	}
	return campaign.ExecOptions{
		Jobs:         jobs,
		Shards:       o.Shards,
		FastForward:  o.FastForward,
		BaseSeed:     o.seed(),
		Progress:     o.Progress,
		Collector:    o.Collect,
		Watchdog:     o.Watchdog,
		Retries:      o.Retries,
		RetryBackoff: o.RetryBackoff,
		Journal:      o.Journal,
		Resume:       o.Resume,
	}
}

// scale shortens a duration in quick mode (or by an explicit TimeDiv).
func (o Options) scale(d time.Duration) time.Duration {
	if o.TimeDiv > 0 {
		return d / time.Duration(o.TimeDiv)
	}
	if o.Quick {
		return d / 5
	}
	return d
}

// resultOf extracts a run's *Result, mapping a failed (panicked) cell to an
// empty Result so one bad cell cannot take down a whole table.
func resultOf(rec campaign.RunRecord) *Result {
	if r, ok := rec.Result.(*Result); ok && r != nil {
		return r
	}
	return emptyResult()
}

// Fig6Result holds the Figure 6 comparison: plain PI vs PI2 queue delay
// under the varying-intensity schedule at 100 Mb/s, 10 ms RTT.
type Fig6Result struct {
	PI, PI2 *Result
	Stages  []int
}

// fig6Counts is the staged flow schedule shared by Fig6 and Fig13.
var fig6Counts = []int{10, 30, 50, 30, 10}

// fig6Tasks builds the Figure 6 matrix: both arms share seed index 0 so
// they see identical traffic schedules — the comparison is paired, exactly
// as on a testbed.
func fig6Tasks(o Options) []campaign.Task {
	stageLen := o.scale(50 * time.Second)
	base := Scenario{
		LinkRateBps: 100e6,
		Staged: &StagedSpec{
			CC:       "reno",
			RTT:      10 * time.Millisecond,
			Counts:   fig6Counts,
			StageLen: stageLen,
		},
		Duration: time.Duration(len(fig6Counts)) * stageLen,
		WarmUp:   stageLen / 2,
	}
	target := 20 * time.Millisecond
	return []campaign.Task{
		variantTask("fig6/pi", 0, base, PIFactory(target)),
		variantTask("fig6/pi2", 0, base, PI2Factory(target)),
	}
}

// Fig6 runs the Figure 6 experiment: 10:30:50:30:10 Reno flows over 50 s
// stages, link 100 Mb/s, RTT 10 ms, α_PI = 0.125, β_PI = 1.25,
// α_PI2 = 0.3125, β_PI2 = 3.125, T = 32 ms, target 20 ms.
func Fig6(o Options) *Fig6Result {
	recs := campaign.Execute(fig6Tasks(o), o.execFor("fig6", gridSpec{}))
	return &Fig6Result{PI: resultOf(recs[0]), PI2: resultOf(recs[1]), Stages: fig6Counts}
}

// variantTask builds the common paired-arm task: the base scenario with one
// AQM swapped in, run under the seed derived for seedIndex.
func variantTask(name string, seedIndex int, base Scenario, factory AQMFactory) campaign.Task {
	return campaign.Task{
		Name:      name,
		SeedIndex: seedIndex,
		Run: func(tc *campaign.TaskCtx) any {
			sc := base
			sc.Seed = tc.Seed
			sc.NewAQM = factory
			sc.Watch = tc.Watch
			return Run(sc)
		},
	}
}

// Print writes the queue-delay time series side by side, as in the figure.
func (r *Fig6Result) Print(w io.Writer) {
	fmt.Fprintln(w, "# Figure 6: queue delay under varying traffic intensity (100 Mb/s, RTT 10 ms)")
	fmt.Fprintln(w, "# flows 10:30:50:30:10; 'pi' = fixed-gain linear PI, 'pi2' = squared output")
	fmt.Fprintln(w, "time_s\tpi_qdelay_ms\tpi2_qdelay_ms")
	printSeriesPair(w, r.PI, r.PI2)
	fmt.Fprintf(w, "# summary: pi max=%.1f ms mean=%.1f ms | pi2 max=%.1f ms mean=%.1f ms\n",
		r.PI.DelaySeries.Max()*1e3, r.PI.Sojourn.Mean()*1e3,
		r.PI2.DelaySeries.Max()*1e3, r.PI2.Sojourn.Mean()*1e3)
}

// Fig11Result holds the three traffic-load comparisons of Figure 11.
type Fig11Result struct {
	// Loads are "5 TCP", "50 TCP", "5 TCP + 2 UDP"; each maps variant
	// ("pie"/"pi2") to its run.
	Loads []string
	Runs  map[string]map[string]*Result // load → variant → result
}

// fig11Case is one traffic load of Figure 11.
type fig11Case struct {
	load string
	sc   Scenario
}

func fig11Cases(o Options) []fig11Case {
	dur := o.scale(100 * time.Second)
	warm := dur / 4
	mkBase := func(tcpFlows int, udp bool) Scenario {
		sc := Scenario{
			LinkRateBps: 10e6,
			Bulk: []traffic.BulkFlowSpec{
				{CC: "reno", Count: tcpFlows, RTT: 100 * time.Millisecond},
			},
			Duration: dur,
			WarmUp:   warm,
		}
		if udp {
			sc.UDP = []traffic.UDPSpec{
				{RateBps: 6e6}, {RateBps: 6e6},
			}
		}
		return sc
	}
	return []fig11Case{
		{"5 TCP", mkBase(5, false)},
		{"50 TCP", mkBase(50, false)},
		{"5 TCP + 2 UDP", mkBase(5, true)},
	}
}

// fig11Tasks builds the load × variant matrix; the two variants of one
// load share a seed index (paired comparison on identical traffic).
func fig11Tasks(o Options) []campaign.Task {
	target := 20 * time.Millisecond
	var tasks []campaign.Task
	for i, c := range fig11Cases(o) {
		tasks = append(tasks,
			variantTask("fig11/pie/"+c.load, i, c.sc, PIEFactory(target)),
			variantTask("fig11/pi2/"+c.load, i, c.sc, PI2Factory(target)))
	}
	return tasks
}

// Fig11 runs Figure 11: queuing latency and total throughput for
// a) 5 TCP, b) 50 TCP, c) 5 TCP + 2×6 Mb/s UDP; link 10 Mb/s, RTT 100 ms.
func Fig11(o Options) *Fig11Result {
	cases := fig11Cases(o)
	res := &Fig11Result{
		Loads: []string{"5 TCP", "50 TCP", "5 TCP + 2 UDP"},
		Runs:  make(map[string]map[string]*Result),
	}
	recs := campaign.Execute(fig11Tasks(o), o.execFor("fig11", gridSpec{}))
	for i, c := range cases {
		res.Runs[c.load] = map[string]*Result{
			"pie": resultOf(recs[2*i]),
			"pi2": resultOf(recs[2*i+1]),
		}
	}
	return res
}

// Print writes per-load delay/throughput series and summaries.
func (r *Fig11Result) Print(w io.Writer) {
	fmt.Fprintln(w, "# Figure 11: queuing latency and throughput under various traffic loads")
	fmt.Fprintln(w, "# link 10 Mb/s, RTT 100 ms, target 20 ms")
	for _, load := range r.Loads {
		pie, pi2 := r.Runs[load]["pie"], r.Runs[load]["pi2"]
		fmt.Fprintf(w, "\n## load: %s\n", load)
		fmt.Fprintln(w, "time_s\tpie_qdelay_ms\tpi2_qdelay_ms\tpie_thru_mbps\tpi2_thru_mbps")
		n := min(pie.DelaySeries.Len(), pi2.DelaySeries.Len())
		for i := 0; i < n; i++ {
			fmt.Fprintf(w, "%.0f\t%.2f\t%.2f\t%.3f\t%.3f\n",
				pie.DelaySeries.Times[i].Seconds(),
				pie.DelaySeries.Values[i]*1e3, pi2.DelaySeries.Values[i]*1e3,
				pie.GoodputSeries.Values[i]/1e6, pi2.GoodputSeries.Values[i]/1e6)
		}
		fmt.Fprintf(w, "# %s: pie meanQ=%.1fms p99Q=%.1fms util=%.3f | pi2 meanQ=%.1fms p99Q=%.1fms util=%.3f\n",
			load,
			pie.Sojourn.Mean()*1e3, pie.Sojourn.Percentile(99)*1e3, pie.Utilization,
			pi2.Sojourn.Mean()*1e3, pi2.Sojourn.Percentile(99)*1e3, pi2.Utilization)
		for i := range pi2.UDP {
			fmt.Fprintf(w, "# %s: udp[%d] %s: pie delivered=%.2f Mb/s loss=%.1f%% | pi2 delivered=%.2f Mb/s loss=%.1f%%\n",
				load, i, fmtMbps(pi2.UDP[i].RateBps),
				pie.UDP[i].DeliveredBps/1e6, pie.UDP[i].LossRatio*100,
				pi2.UDP[i].DeliveredBps/1e6, pi2.UDP[i].LossRatio*100)
		}
	}
}

func fmtMbps(bps float64) string { return fmt.Sprintf("%.0f Mb/s offered", bps/1e6) }

// Fig12Result holds the varying-link-capacity comparison.
type Fig12Result struct {
	PIE, PI2 *Result
	// PeakPIEms / PeakPI2ms are the peak 100 ms-sampled queue delays just
	// after the capacity drop (the paper reports 510 ms vs 250 ms).
	PeakPIEms, PeakPI2ms float64
}

// Fig12 runs Figure 12: link capacity 100:20:100 Mb/s over 50 s stages,
// 20 Reno flows, RTT 100 ms. The capacity drop at 50 s forces the queue to
// spike; PI2's higher gain drains it faster with less oscillation.
func fig12Tasks(o Options) []campaign.Task {
	stage := o.scale(50 * time.Second)
	target := 20 * time.Millisecond
	base := Scenario{
		LinkRateBps: 100e6,
		Bulk: []traffic.BulkFlowSpec{
			{CC: "reno", Count: 20, RTT: 100 * time.Millisecond},
		},
		RateChanges: []RateChange{
			{At: stage, RateBps: 20e6},
			{At: 2 * stage, RateBps: 100e6},
		},
		Duration: 3 * stage,
		WarmUp:   stage / 2,
	}
	return []campaign.Task{
		variantTask("fig12/pie", 0, base, PIEFactory(target)),
		variantTask("fig12/pi2", 0, base, PI2Factory(target)),
	}
}

func Fig12(o Options) *Fig12Result {
	stage := o.scale(50 * time.Second)
	recs := campaign.Execute(fig12Tasks(o), o.execFor("fig12", gridSpec{}))
	r := &Fig12Result{PIE: resultOf(recs[0]), PI2: resultOf(recs[1])}
	// Peak in the window following the capacity drop.
	r.PeakPIEms = peakBetween(r.PIE, stage, stage+stage/2) * 1e3
	r.PeakPI2ms = peakBetween(r.PI2, stage, stage+stage/2) * 1e3
	return r
}

func peakBetween(res *Result, from, to time.Duration) float64 {
	peak := 0.0
	for i, v := range res.DelayFine.Values {
		t := res.DelayFine.Times[i]
		if t >= from && t <= to && v > peak {
			peak = v
		}
	}
	return peak
}

// Print writes the delay series and the post-drop peaks.
func (r *Fig12Result) Print(w io.Writer) {
	fmt.Fprintln(w, "# Figure 12: queue delay under varying link capacity (100:20:100 Mb/s)")
	fmt.Fprintln(w, "time_s\tpie_qdelay_ms\tpi2_qdelay_ms")
	printSeriesPair(w, r.PIE, r.PI2)
	fmt.Fprintf(w, "# peak qdelay after capacity drop (100 ms sampling): pie=%.0f ms pi2=%.0f ms (paper: 510 vs 250)\n",
		r.PeakPIEms, r.PeakPI2ms)
}

// Fig13Result holds the low-rate varying-intensity comparison.
type Fig13Result struct {
	PIE, PI2 *Result
}

// Fig13 runs Figure 13: the 10:30:50:30:10 staged schedule at 10 Mb/s,
// RTT 100 ms, comparing PIE and PI2.
func fig13Tasks(o Options) []campaign.Task {
	stageLen := o.scale(50 * time.Second)
	target := 20 * time.Millisecond
	base := Scenario{
		LinkRateBps: 10e6,
		Staged: &StagedSpec{
			CC:       "reno",
			RTT:      100 * time.Millisecond,
			Counts:   fig6Counts,
			StageLen: stageLen,
		},
		Duration: time.Duration(len(fig6Counts)) * stageLen,
		WarmUp:   stageLen / 2,
	}
	return []campaign.Task{
		variantTask("fig13/pie", 0, base, PIEFactory(target)),
		variantTask("fig13/pi2", 0, base, PI2Factory(target)),
	}
}

func Fig13(o Options) *Fig13Result {
	recs := campaign.Execute(fig13Tasks(o), o.execFor("fig13", gridSpec{}))
	return &Fig13Result{PIE: resultOf(recs[0]), PI2: resultOf(recs[1])}
}

// Print writes the queue-delay series.
func (r *Fig13Result) Print(w io.Writer) {
	fmt.Fprintln(w, "# Figure 13: queue delay under varying traffic intensity (10 Mb/s, RTT 100 ms)")
	fmt.Fprintln(w, "time_s\tpie_qdelay_ms\tpi2_qdelay_ms")
	printSeriesPair(w, r.PIE, r.PI2)
	fmt.Fprintf(w, "# summary: pie max=%.1f ms | pi2 max=%.1f ms\n",
		r.PIE.DelaySeries.Max()*1e3, r.PI2.DelaySeries.Max()*1e3)
}

// Fig14Case is one (target, load) cell of Figure 14.
type Fig14Case struct {
	Target time.Duration
	Load   string
	PIE    *Result
	PI2    *Result
}

// Fig14Result holds the queuing-delay CDF comparison.
type Fig14Result struct {
	Cases []Fig14Case
}

// Fig14 runs Figure 14: per-packet queuing-delay CDFs for target delays of
// 5 ms and 20 ms under a) 20 TCP flows and b) 5 TCP + 2 UDP flows
// (10 Mb/s, RTT 100 ms).
// fig14Cases enumerates the (target, load) grid in matrix order.
func fig14Cases() []Fig14Case {
	var cases []Fig14Case
	for _, target := range []time.Duration{5 * time.Millisecond, 20 * time.Millisecond} {
		for _, load := range []string{"20 TCP", "5 TCP + 2 UDP"} {
			cases = append(cases, Fig14Case{Target: target, Load: load})
		}
	}
	return cases
}

func fig14Tasks(o Options) []campaign.Task {
	dur := o.scale(100 * time.Second)
	warm := dur / 4
	var tasks []campaign.Task
	for cell, c := range fig14Cases() {
		sc := Scenario{
			LinkRateBps: 10e6,
			Duration:    dur,
			WarmUp:      warm,
		}
		if c.Load == "20 TCP" {
			sc.Bulk = []traffic.BulkFlowSpec{{CC: "reno", Count: 20, RTT: 100 * time.Millisecond}}
		} else {
			sc.Bulk = []traffic.BulkFlowSpec{{CC: "reno", Count: 5, RTT: 100 * time.Millisecond}}
			sc.UDP = []traffic.UDPSpec{{RateBps: 6e6}, {RateBps: 6e6}}
		}
		// The PIE and PI2 arms of one (target, load) cell pair up on the
		// cell's seed index.
		name := fmt.Sprintf("fig14/%v/%s", c.Target, c.Load)
		tasks = append(tasks,
			variantTask(name+"/pie", cell, sc, PIEFactory(c.Target)),
			variantTask(name+"/pi2", cell, sc, PI2Factory(c.Target)))
	}
	return tasks
}

func Fig14(o Options) *Fig14Result {
	res := &Fig14Result{Cases: fig14Cases()}
	recs := campaign.Execute(fig14Tasks(o), o.execFor("fig14", gridSpec{}))
	for i := range res.Cases {
		res.Cases[i].PIE = resultOf(recs[2*i])
		res.Cases[i].PI2 = resultOf(recs[2*i+1])
	}
	return res
}

// Print writes each case's CDF as paired columns.
func (r *Fig14Result) Print(w io.Writer) {
	fmt.Fprintln(w, "# Figure 14: queuing-delay CDFs (10 Mb/s, RTT 100 ms)")
	for _, c := range r.Cases {
		fmt.Fprintf(w, "\n## target %v, load %s\n", c.Target, c.Load)
		fmt.Fprintln(w, "percentile\tpie_qdelay_ms\tpi2_qdelay_ms")
		qs := []float64{1, 5, 10, 25, 50, 75, 90, 95, 99, 99.9}
		pie := c.PIE.Sojourn.Percentiles(qs...)
		pi2 := c.PI2.Sojourn.Percentiles(qs...)
		for i, q := range qs {
			fmt.Fprintf(w, "%.1f\t%.2f\t%.2f\n", q, pie[i]*1e3, pi2[i]*1e3)
		}
	}
}

// printSeriesPair prints two delay series with a shared time column.
func printSeriesPair(w io.Writer, a, b *Result) {
	n := min(a.DelaySeries.Len(), b.DelaySeries.Len())
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%.0f\t%.2f\t%.2f\n",
			a.DelaySeries.Times[i].Seconds(),
			a.DelaySeries.Values[i]*1e3, b.DelaySeries.Values[i]*1e3)
	}
}
