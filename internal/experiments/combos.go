package experiments

import (
	"fmt"
	"io"
	"time"

	"pi2/internal/campaign"
	"pi2/internal/stats"
	"pi2/internal/traffic"
)

// ComboPoint is one flow-count combination of Figures 19 and 20:
// NA Cubic flows (A) against NB ECN-capable flows (B) at 40 Mb/s, 10 ms RTT.
type ComboPoint struct {
	NA, NB int
	AQM    string
	Pair   string

	// RatioPerFlow is (mean per-flow rate of A)/(mean per-flow rate of B).
	RatioPerFlow float64
	// NormA / NormB summarize per-flow rates normalized by the fair share
	// capacity/(NA+NB) — Figure 20's P1/mean/P99.
	NormA, NormB Quantiles
	// Jain is Jain's fairness index over all individual flow rates.
	Jain float64
	// Events is the cell's simulator-event count (run-record metric).
	Events uint64
}

// EventCount satisfies campaign.EventCounter for per-run events/sec records.
func (p ComboPoint) EventCount() uint64 { return p.Events }

// DefaultCombos is the flow-count series of Figures 19–20: all splits of
// ten flows plus the balanced 1:1 case.
func DefaultCombos() [][2]int {
	out := [][2]int{{1, 1}}
	for a := 0; a <= 10; a++ {
		out = append(out, [2]int{a, 10 - a})
	}
	return out
}

// FlowCombos runs the Figures 19–20 experiment: the given (NA, NB) splits
// for each pair (Cubic vs DCTCP, Cubic vs ECN-Cubic) and AQM (PIE, PI2) at
// 40 Mb/s, 10 ms RTT.
func FlowCombos(o Options, combos [][2]int) []ComboPoint {
	tasks := combosTasks(o, combos)
	recs := campaign.Execute(tasks, o.execFor("combos", gridSpec{Combos: combos}))
	out := make([]ComboPoint, len(recs))
	for i, rec := range recs {
		if p, ok := rec.Result.(ComboPoint); ok {
			out[i] = p
		}
	}
	return out
}

// combosTasks builds the pair × AQM × combo matrix. A nil combo list
// selects the defaults; both that resolution and the quick override run
// inside the builder so coordinator and worker derive the same matrix
// from the same spec.
func combosTasks(o Options, combos [][2]int) []campaign.Task {
	if combos == nil {
		combos = DefaultCombos()
	}
	if o.Quick {
		combos = [][2]int{{1, 1}, {1, 9}, {5, 5}, {9, 1}}
	}
	var tasks []campaign.Task
	for _, pair := range []string{"dctcp", "ecn-cubic"} {
		for _, aqmName := range []string{"pie", "pi2"} {
			for _, c := range combos {
				pair, aqmName, na, nb := pair, aqmName, c[0], c[1]
				tasks = append(tasks, campaign.Task{
					Name:      "combos",
					SeedIndex: len(tasks),
					Params: map[string]any{
						"pair": pair, "aqm": aqmName, "na": na, "nb": nb,
					},
					Run: func(tc *campaign.TaskCtx) any {
						return runCombo(o, tc, na, nb, aqmName, pair)
					},
				})
			}
		}
	}
	return tasks
}

func runCombo(o Options, tc *campaign.TaskCtx, na, nb int, aqmName, pair string) ComboPoint {
	target := 20 * time.Millisecond
	factory, _ := FactoryByName(aqmName, target)
	dur := o.scale(60 * time.Second)
	const (
		linkBps = 40e6
		rtt     = 10 * time.Millisecond
	)
	sc := Scenario{
		Seed:        tc.Seed,
		Watch:       tc.Watch,
		LinkRateBps: linkBps,
		NewAQM:      factory,
		Duration:    dur,
		WarmUp:      dur * 2 / 5,
	}
	if na > 0 {
		sc.Bulk = append(sc.Bulk, traffic.BulkFlowSpec{CC: "cubic", Count: na, RTT: rtt, Label: "A"})
	}
	if nb > 0 {
		sc.Bulk = append(sc.Bulk, traffic.BulkFlowSpec{CC: pair, Count: nb, RTT: rtt, Label: "B"})
	}
	res := Run(sc)

	pt := ComboPoint{NA: na, NB: nb, AQM: aqmName, Pair: pair, Events: res.Events}
	fair := linkBps / float64(na+nb)
	var aRates, bRates []float64
	for _, g := range res.Groups {
		switch g.Label {
		case "A":
			aRates = g.FlowRates
		case "B":
			bRates = g.FlowRates
		}
	}
	meanOf := func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mb := meanOf(bRates); mb > 0 && na > 0 {
		pt.RatioPerFlow = meanOf(aRates) / mb
	}
	pt.NormA = normQuantiles(aRates, fair)
	pt.NormB = normQuantiles(bRates, fair)
	pt.Jain = stats.JainIndex(append(append([]float64{}, aRates...), bRates...))
	return pt
}

func normQuantiles(rates []float64, fair float64) Quantiles {
	if len(rates) == 0 || fair <= 0 {
		return Quantiles{}
	}
	var s sampleLike
	for _, r := range rates {
		s.Add(r / fair)
	}
	return quantiles(&s)
}

// sampleLike is a tiny local percentile helper over a handful of values.
type sampleLike struct{ xs []float64 }

func (s *sampleLike) Add(x float64) { s.xs = append(s.xs, x) }

func (s *sampleLike) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Percentiles satisfies the quantiles() helper with one sort for the whole
// family. Insertion sort: the slices here hold at most ten flows.
func (s *sampleLike) Percentiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(s.xs) == 0 {
		return out
	}
	xs := append([]float64(nil), s.xs...)
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
	for i, q := range qs {
		pos := q / 100 * float64(len(xs)-1)
		lo := int(pos)
		if lo >= len(xs)-1 {
			out[i] = xs[len(xs)-1]
			continue
		}
		frac := pos - float64(lo)
		out[i] = xs[lo]*(1-frac) + xs[lo+1]*frac
	}
	return out
}

// PrintFig19 writes the per-flow rate-ratio table (Figure 19).
func PrintFig19(w io.Writer, pts []ComboPoint) {
	fmt.Fprintln(w, "# Figure 19: per-flow throughput ratio for flow-count combinations (40 Mb/s, RTT 10 ms)")
	fmt.Fprintln(w, "pair\taqm\tcombo\tratio_per_flow")
	for _, p := range pts {
		if p.NA == 0 || p.NB == 0 {
			continue // ratio undefined
		}
		fmt.Fprintf(w, "%s\t%s\tA%d-B%d\t%.3f\n", p.Pair, p.AQM, p.NA, p.NB, p.RatioPerFlow)
	}
}

// PrintFig20 writes the normalized-rate table (Figure 20).
func PrintFig20(w io.Writer, pts []ComboPoint) {
	fmt.Fprintln(w, "# Figure 20: normalized per-flow rate (rate / fair share), P1/mean/P99; jain = fairness index")
	fmt.Fprintln(w, "pair\taqm\tcombo\tA_p1\tA_mean\tA_p99\tB_p1\tB_mean\tB_p99\tjain")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%s\tA%d-B%d\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.3f\n",
			p.Pair, p.AQM, p.NA, p.NB,
			p.NormA.P1, p.NormA.Mean, p.NormA.P99,
			p.NormB.P1, p.NormB.Mean, p.NormB.P99, p.Jain)
	}
}
