package experiments

import (
	"reflect"
	"testing"
	"time"
)

// quickInterop runs the whole conformance matrix at smoke scale.
func quickInterop(t *testing.T, o Options) []InteropPoint {
	t.Helper()
	o.Quick = true
	if o.TimeDiv == 0 {
		o.TimeDiv = 40
	}
	pts, failed, err := Interop(o)
	if err != nil || len(failed) > 0 {
		t.Fatalf("interop failed: err=%v failed=%v", err, failed)
	}
	return pts
}

// TestInteropIdenticalAcrossJobs: conformance fingerprints must not depend
// on worker-pool scheduling — per-cell seeds are a pure function of the
// cell's grid index.
func TestInteropIdenticalAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in -short mode")
	}
	serial := quickInterop(t, Options{Jobs: 1})
	wide := quickInterop(t, Options{Jobs: 8})
	if !reflect.DeepEqual(serial, wide) {
		t.Fatal("interop points differ between jobs=1 and jobs=8")
	}
}

// TestInteropIdenticalAcrossShards pins the contract that interop cells
// always run on the single-simulator path: the sharded engine is
// deterministic per shard count but NOT bit-identical across counts, so a
// conformance cell that honored -shards would break golden fingerprints.
// Interop must therefore produce identical bytes at any -shards setting.
func TestInteropIdenticalAcrossShards(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in -short mode")
	}
	one := quickInterop(t, Options{Jobs: 4, Shards: 1})
	four := quickInterop(t, Options{Jobs: 4, Shards: 4})
	if !reflect.DeepEqual(one, four) {
		t.Fatal("interop points differ between shards=1 and shards=4")
	}
}

// TestInteropPragueCubicFairness asserts the tentpole invariant: TCP Prague
// through DualPI2 takes the same rate as loss-based Cubic at equal RTT —
// the coupled AQM's design goal and the reason the aiFactor exponent was
// calibrated (see tcp.Prague). Each seed must land near parity and the
// seed-mean must sit within [0.9, 1.1] at the paper's default 20 ms target.
func TestInteropPragueCubicFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("long-horizon cells in -short mode")
	}
	o := Options{TimeDiv: 2} // 30 s horizon: long enough for the coupled equilibrium
	var sum float64
	for _, seed := range []int64{1, 2, 3} {
		p := InteropCell(o, seed, nil, "prague", "accurate", "dualpi2")
		t.Logf("seed %d: prague/cubic rate ratio %.3f (share %.3f, q_mean %.2f ms)",
			seed, p.RateRatio, p.TestShare, p.QMeanMs)
		if p.RateRatio < 0.8 || p.RateRatio > 1.2 {
			t.Errorf("seed %d: rate ratio %.3f outside [0.8, 1.2]", seed, p.RateRatio)
		}
		sum += p.RateRatio
	}
	if mean := sum / 3; mean < 0.9 || mean > 1.1 {
		t.Errorf("mean prague/cubic rate ratio %.3f outside the [0.9, 1.1] invariant", mean)
	}
}

// TestInteropCellMetricsComplete: every fingerprinted metric must be present
// and finite so the golden harness never diffs against a silent zero.
func TestInteropCellMetricsComplete(t *testing.T) {
	o := Options{Quick: true, TimeDiv: 40, Target: 20 * time.Millisecond}
	p := InteropCell(o, 7, nil, "dctcp", "accurate", "pi2")
	m := p.Metrics()
	for _, k := range []string{"test_share", "rate_ratio", "marks", "drops_total",
		"q_mean_ms", "q_p99_ms", "util", "jain", "events"} {
		if _, ok := m[k]; !ok {
			t.Errorf("metric %q missing from fingerprint", k)
		}
	}
	if p.TestShare <= 0 || p.Util <= 0 || p.Events == 0 {
		t.Errorf("degenerate cell: share=%v util=%v events=%v", p.TestShare, p.Util, p.Events)
	}
}
