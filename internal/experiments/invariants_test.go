package experiments

import (
	"math/rand"
	"testing"
	"time"

	"pi2/internal/aqm"
	"pi2/internal/core"
	"pi2/internal/link"
	"pi2/internal/packet"
	"pi2/internal/sim"
	"pi2/internal/tcp"
	"pi2/internal/traffic"
)

// TestRandomScenarioInvariants is the failure-injection sweep: it generates
// random small scenarios (random AQM, congestion-control mix, rates, RTTs,
// buffer sizes, UDP load) and asserts the structural invariants that must
// hold for any of them:
//
//  1. packet conservation at the bottleneck: enqueues = dequeues + drops + backlog
//  2. goodput never exceeds capacity
//  3. per-packet sojourn times are non-negative and bounded by
//     buffer/capacity
//  4. utilization ∈ [0, 1]
//  5. no flow ends below its minimum window
//  6. determinism: the same seed reproduces the same drop count
func TestRandomScenarioInvariants(t *testing.T) {
	aqmNames := []string{"pi2", "pie", "bare-pie", "pi", "red", "codel", "taildrop"}
	ccNames := []string{"reno", "cubic", "ecn-cubic", "dctcp", "scalable"}
	meta := rand.New(rand.NewSource(2024))

	for trial := 0; trial < 25; trial++ {
		seed := meta.Int63()
		aqmName := aqmNames[meta.Intn(len(aqmNames))]
		linkMbps := []float64{2, 8, 25, 60}[meta.Intn(4)]
		rtt := []time.Duration{2, 10, 40, 120}[meta.Intn(4)] * time.Millisecond
		buffer := []int{20, 200, 2000}[meta.Intn(3)]
		nFlows := 1 + meta.Intn(6)
		cc := ccNames[meta.Intn(len(ccNames))]
		udp := meta.Float64() < 0.3
		sackOn := make([]bool, nFlows)
		for i := range sackOn {
			sackOn[i] = meta.Intn(2) == 0
		}

		t.Run("", func(t *testing.T) {
			runOne := func() (*link.Link, []*tcp.Endpoint, time.Duration) {
				s := sim.New(seed)
				d := link.NewDispatcher()
				factory, _ := FactoryByName(aqmName, 20*time.Millisecond)
				l := link.New(s, link.Config{
					RateBps:       linkMbps * 1e6,
					BufferPackets: buffer,
					AQM:           factory(s.RNG()),
				}, d.Deliver)
				var eps []*tcp.Endpoint
				for id := 1; id <= nFlows; id++ {
					ccImpl, mode, err := tcp.NewCC(cc)
					if err != nil {
						t.Fatal(err)
					}
					ep := tcp.New(s, l, tcp.Config{
						ID: id, CC: ccImpl, ECN: mode, BaseRTT: rtt,
						SACK: sackOn[id-1],
					})
					d.Register(id, ep.DeliverData)
					ep.Start()
					eps = append(eps, ep)
				}
				if udp {
					traffic.StartUDP(s, l, d, 1000, traffic.UDPSpec{RateBps: linkMbps * 1e6 / 3})
				}
				dur := 5 * time.Second
				s.RunUntil(dur)
				return l, eps, dur
			}
			l, eps, dur := runOne()

			// 1. Conservation.
			total := l.Dequeues() + l.TotalDrops() + l.BacklogPackets()
			if l.Enqueues() != total {
				t.Errorf("[%s %gMbps %v buf=%d %s] conservation: enq=%d deq+drop+backlog=%d",
					aqmName, linkMbps, rtt, buffer, cc, l.Enqueues(), total)
			}
			// 2. Goodput bound (5%% slack for the measurement window edge).
			var goodput float64
			for _, ep := range eps {
				goodput += float64(ep.Goodput.Bytes()) * 8 / dur.Seconds()
			}
			if goodput > linkMbps*1e6*1.05 {
				t.Errorf("goodput %.0f exceeds capacity %.0f", goodput, linkMbps*1e6)
			}
			// 3. Sojourn bounds.
			if l.Sojourn.N() > 0 {
				if l.Sojourn.Min() < 0 {
					t.Error("negative sojourn")
				}
				maxSojourn := float64(buffer) * float64(packet.FullLen) * 8 / (linkMbps * 1e6)
				if l.Sojourn.Max() > maxSojourn*1.05 {
					t.Errorf("sojourn %.3fs exceeds buffer bound %.3fs", l.Sojourn.Max(), maxSojourn)
				}
			}
			// 4. Utilization range.
			if u := l.Utilization(); u < 0 || u > 1.0001 {
				t.Errorf("utilization %v out of range", u)
			}
			// 5. Window floor.
			for _, ep := range eps {
				if ep.State().Cwnd < 1 {
					t.Errorf("cwnd %v below 1", ep.State().Cwnd)
				}
			}
			// 6. Determinism.
			l2, _, _ := runOne()
			if l2.TotalDrops() != l.TotalDrops() || l2.Dequeues() != l.Dequeues() {
				t.Errorf("same seed diverged: drops %d vs %d", l.TotalDrops(), l2.TotalDrops())
			}
		})
	}
}

// TestOverloadCap verifies the paper's Section 5 overload strategy: with
// unresponsive traffic exceeding capacity, PI2 caps the Classic probability
// at 25 % and lets the queue grow to the tail-drop limit instead of
// starving drop-based traffic.
func TestOverloadCap(t *testing.T) {
	s := sim.New(3)
	d := link.NewDispatcher()
	q2 := core.New(core.Config{}, s.RNG())
	l := link.New(s, link.Config{
		RateBps:       10e6,
		BufferPackets: 300,
		AQM:           q2,
	}, d.Deliver)
	d.Register(1000, func(*packet.Packet) {})
	traffic.StartUDP(s, l, d, 1000, traffic.UDPSpec{RateBps: 20e6}) // 2x overload
	s.RunUntil(30 * time.Second)

	if p := q2.DropProbability(); p > 0.25+1e-9 {
		t.Errorf("classic prob %v exceeded the 25%% cap under overload", p)
	}
	if pp := q2.PPrime(); pp < 0.499 {
		t.Errorf("p' = %v, want saturated at 0.5 under 2x overload", pp)
	}
	// The AQM alone cannot shed 50% with a 25% cap: tail drop must be
	// engaged and the queue pinned at the buffer limit.
	if l.Drops(link.DropOverflow) == 0 {
		t.Error("no tail drops despite the capped AQM being insufficient")
	}
	if l.BacklogPackets() < 250 {
		t.Errorf("backlog %d, want pinned near the 300-packet buffer", l.BacklogPackets())
	}
	// The link itself must remain fully used (work conservation).
	if u := l.Utilization(); u < 0.99 {
		t.Errorf("utilization %v under overload", u)
	}
}

// TestRTTHeterogeneousCoexistence extends Figure 15 beyond the paper's
// equal-RTT setup: a Cubic flow at 40 ms against a DCTCP flow at 10 ms.
// Classic RTT unfairness is expected (the shorter-RTT flow wins), but the
// coupled AQM must still prevent outright starvation in either direction.
func TestRTTHeterogeneousCoexistence(t *testing.T) {
	res := Run(Scenario{
		Seed:        5,
		LinkRateBps: 40e6,
		NewAQM:      PI2Factory(20 * time.Millisecond),
		Bulk: []traffic.BulkFlowSpec{
			{CC: "cubic", Count: 1, RTT: 40 * time.Millisecond, Label: "cubic-40ms"},
			{CC: "dctcp", Count: 1, RTT: 10 * time.Millisecond, Label: "dctcp-10ms"},
		},
		Duration: 60 * time.Second,
		WarmUp:   20 * time.Second,
	})
	cubic := res.Groups[0].MeanPerFlow()
	dctcp := res.Groups[1].MeanPerFlow()
	t.Logf("cubic(40ms)=%.2f Mb/s dctcp(10ms)=%.2f Mb/s", cubic/1e6, dctcp/1e6)
	if cubic < 0.05*40e6/2 {
		t.Errorf("cubic starved at %.2f Mb/s despite the coupling", cubic/1e6)
	}
	if dctcp < 0.05*40e6/2 {
		t.Errorf("dctcp starved at %.2f Mb/s", dctcp/1e6)
	}
}

// TestCurvyREDCoexistence runs the draft's example AQM on the headline
// cell: it couples too, but with a standing-delay push-back instead of a
// held target, so it should balance rates at a higher delay than PI2.
func TestCurvyREDCoexistence(t *testing.T) {
	res := Run(Scenario{
		Seed:        6,
		LinkRateBps: 40e6,
		NewAQM: func(rng *rand.Rand) aqm.AQM {
			return aqm.NewCurvyRED(aqm.CurvyREDConfig{}, rng)
		},
		Bulk: []traffic.BulkFlowSpec{
			{CC: "cubic", Count: 1, RTT: 10 * time.Millisecond},
			{CC: "dctcp", Count: 1, RTT: 10 * time.Millisecond},
		},
		Duration: 60 * time.Second,
		WarmUp:   20 * time.Second,
	})
	cubic := res.Groups[0].MeanPerFlow()
	dctcp := res.Groups[1].MeanPerFlow()
	ratio := cubic / dctcp
	t.Logf("curvy-red: ratio=%.3f meanQ=%.1fms", ratio, res.Sojourn.Mean()*1e3)
	if ratio < 0.15 || ratio > 6 {
		t.Errorf("curvy-red ratio %.3f: coupling broken", ratio)
	}
	if res.Utilization < 0.9 {
		t.Errorf("utilization %.3f", res.Utilization)
	}
}

// TestStepMarkingVsProbabilistic reproduces the Appendix A contrast behind
// equations (11) and (12): DCTCP under a step threshold receives marks in
// on-off RTT-length trains, so for the same average marking fraction it
// runs a *larger* window than under evenly distributed probabilistic
// marking — the reason the paper drives Scalable traffic from the PI
// controller's random marks.
func TestStepMarkingVsProbabilistic(t *testing.T) {
	// Step threshold: measure W and mark fraction together.
	s := sim.New(8)
	d := link.NewDispatcher()
	step := aqm.NewStepMark(aqm.StepMarkConfig{Threshold: 2 * time.Millisecond})
	l := link.New(s, link.Config{RateBps: 40e6, AQM: step}, d.Deliver)
	cc := &tcp.DCTCP{}
	ep := tcp.New(s, l, tcp.Config{ID: 1, CC: cc, ECN: tcp.ECNScalable, BaseRTT: 10 * time.Millisecond})
	d.Register(1, ep.DeliverData)
	ep.Start()

	var wSum float64
	var wN int
	s.Every(10*time.Millisecond, func() {
		if s.Now() > 10*time.Second {
			wSum += ep.State().Cwnd
			wN++
		}
	})
	s.RunUntil(40 * time.Second)

	wStep := wSum / float64(wN)
	pStep := float64(ep.MarksSeen()) / float64(l.Dequeues())
	// Equation (11) would predict W = 2/p for evenly spread marks; the
	// on-off trains of a step threshold deliver the same total marks in
	// clumps, and each clump costs at most one window reduction, so the
	// realized window exceeds the probabilistic prediction.
	predicted := 2 / pStep
	t.Logf("step marking: W=%.1f p=%.4f 2/p=%.1f", wStep, pStep, predicted)
	if wStep <= predicted {
		t.Errorf("W=%.1f under step marking not above the probabilistic 2/p=%.1f (eq 11 vs 12)",
			wStep, predicted)
	}
	// Sanity: DCTCP must still hold the queue near the step threshold.
	if q := l.Sojourn.Mean(); q > 0.012 {
		t.Errorf("mean queue %.1f ms, want near the 2 ms step", q*1e3)
	}
}

// TestAuditedByteAndECNConservation drives traffic mixes through the link's
// always-on invariant auditor and asserts the byte-level ledger and ECN
// accounting that the packet-count checks above cannot see:
//
//   - offered bytes = dequeued + dropped + backlog bytes (exact, no slack)
//   - delivered never exceeds dequeued
//   - CE marks only ever land on ECT traffic, and marks + drops never
//     exceed arrivals
//   - a mix with no ECT traffic sees zero marks
//
// The auditor itself re-checks conservation after every event inside the
// run; Err() == "" certifies the whole trajectory, not just the end state.
func TestAuditedByteAndECNConservation(t *testing.T) {
	cases := []struct {
		name    string
		aqmName string
		ccs     []string
		udp     bool
		buffer  int
	}{
		// Coupled AQM, Classic + Scalable + unresponsive NotECT load.
		{name: "pi2-mixed", aqmName: "pi2", ccs: []string{"cubic", "dctcp"}, udp: true, buffer: 200},
		// Head-dropping AQM (CoDel dequeues then drops) with ECN flows.
		{name: "codel-ecn", aqmName: "codel", ccs: []string{"ecn-cubic", "ecn-cubic"}, buffer: 200},
		// Pure loss-based: tiny buffer forces overflow; no ECT at all.
		{name: "taildrop-reno", aqmName: "taildrop", ccs: []string{"reno", "reno", "reno"}, buffer: 25},
		// RED marking with Scalable traffic.
		{name: "red-dctcp", aqmName: "red", ccs: []string{"dctcp"}, udp: true, buffer: 200},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s := sim.New(11)
			d := link.NewDispatcher()
			factory, ok := FactoryByName(tc.aqmName, 20*time.Millisecond)
			if !ok {
				t.Fatalf("unknown AQM %q", tc.aqmName)
			}
			l := link.New(s, link.Config{
				RateBps:       20e6,
				BufferPackets: tc.buffer,
				AQM:           factory(s.RNG()),
			}, d.Deliver)
			ect := false
			for i, cc := range tc.ccs {
				ccImpl, mode, err := tcp.NewCC(cc)
				if err != nil {
					t.Fatal(err)
				}
				if mode != tcp.ECNOff {
					ect = true
				}
				ep := tcp.New(s, l, tcp.Config{
					ID: i + 1, CC: ccImpl, ECN: mode, BaseRTT: 10 * time.Millisecond,
				})
				d.Register(i+1, ep.DeliverData)
				ep.Start()
			}
			if tc.udp {
				traffic.StartUDP(s, l, d, 1000, traffic.UDPSpec{RateBps: 8e6})
			}
			s.RunUntil(12 * time.Second)

			aud := l.Audit()
			if msg := aud.Err(tc.name); msg != "" {
				t.Fatalf("auditor violations:\n%s", msg)
			}
			// Byte ledger. offered = accepted + preDrops and
			// accepted = dequeued + postDrops + backlog combine into one
			// exported identity: offered = dequeued + drops + backlog.
			wantBytes := aud.DequeuedBytes + aud.DroppedBytes + int64(l.BacklogBytes())
			if aud.OfferedBytes != wantBytes {
				t.Errorf("byte conservation: offered %d != dequeued+dropped+backlog %d",
					aud.OfferedBytes, wantBytes)
			}
			wantPkts := aud.DequeuedPackets + aud.DroppedPackets + l.BacklogPackets()
			if aud.OfferedPackets != wantPkts {
				t.Errorf("packet conservation: offered %d != dequeued+dropped+backlog %d",
					aud.OfferedPackets, wantPkts)
			}
			if aud.DeliveredPackets > aud.DequeuedPackets {
				t.Errorf("delivered %d > dequeued %d", aud.DeliveredPackets, aud.DequeuedPackets)
			}
			// ECN accounting.
			if aud.MarkedPackets > aud.ECTOffered {
				t.Errorf("%d CE marks on only %d ECT arrivals", aud.MarkedPackets, aud.ECTOffered)
			}
			if aud.MarkedPackets+aud.DroppedPackets > aud.OfferedPackets {
				t.Errorf("marks %d + drops %d exceed arrivals %d",
					aud.MarkedPackets, aud.DroppedPackets, aud.OfferedPackets)
			}
			if aud.MarkedPackets != l.Marks() {
				t.Errorf("auditor marks %d != link marks %d", aud.MarkedPackets, l.Marks())
			}
			if !ect && aud.MarkedPackets != 0 {
				t.Errorf("%d CE marks in an all-NotECT mix", aud.MarkedPackets)
			}
			if !ect && aud.ECTOffered != 0 {
				t.Errorf("%d ECT arrivals in an all-NotECT mix", aud.ECTOffered)
			}
		})
	}
}
