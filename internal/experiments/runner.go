// Package experiments contains one driver per table/figure of the paper's
// evaluation (Section 6), plus the generic scenario runner they share.
// Each driver builds the paper's topology, runs it on the discrete-event
// simulator and emits the same rows/series the paper reports.
package experiments

import (
	"math/rand"
	"time"

	"pi2/internal/aqm"
	"pi2/internal/campaign"
	"pi2/internal/faults"
	"pi2/internal/link"
	"pi2/internal/sim"
	"pi2/internal/stats"
	"pi2/internal/tcp"
	"pi2/internal/traffic"
)

// AQMFactory builds a fresh AQM instance for one run.
type AQMFactory func(rng *rand.Rand) aqm.AQM

// StagedSpec describes the varying-intensity flow schedule (Figures 6, 13).
type StagedSpec struct {
	// CC is the congestion control for every staged flow.
	CC string
	// RTT is the base round-trip time.
	RTT time.Duration
	// Counts is the number of active flows per stage.
	Counts []int
	// StageLen is each stage's duration.
	StageLen time.Duration
}

// RateChange switches the link capacity at a point in time (Figure 12).
type RateChange struct {
	At      time.Duration
	RateBps float64
}

// Scenario is a complete single-bottleneck experiment description.
type Scenario struct {
	// Seed drives all randomness; runs are reproducible bit-for-bit.
	Seed int64
	// LinkRateBps is the initial bottleneck capacity.
	LinkRateBps float64
	// BufferPackets bounds the queue (default 40000, Table 1).
	BufferPackets int
	// NewAQM builds the queue manager.
	NewAQM AQMFactory
	// Bulk, Staged, UDP and Web describe the offered load.
	Bulk   []traffic.BulkFlowSpec
	Staged *StagedSpec
	UDP    []traffic.UDPSpec
	Web    []traffic.WebSpec
	// RateChanges vary the capacity during the run.
	RateChanges []RateChange
	// Duration is the simulated run length.
	Duration time.Duration
	// WarmUp excludes start-up transients from steady-state statistics
	// (time series still cover the whole run).
	WarmUp time.Duration
	// SampleEvery sets the coarse time-series interval (default 1 s,
	// matching the paper's plots).
	SampleEvery time.Duration
	// SACK enables selective acknowledgments on every bulk flow.
	SACK bool
	// AckEvery sets the delayed/stretch-ACK factor on every bulk flow
	// (0/1 = acknowledge each segment).
	AckEvery int
	// Impair, if non-nil, applies the fault layer to the run: per-packet
	// channel impairments (loss, reordering, duplication) wrap the
	// bottleneck's delivery callback, and a rate schedule drives the
	// link's capacity. Nil leaves the delivery path — and every RNG
	// stream, and therefore every golden fingerprint — exactly as before.
	Impair *faults.Config
	// Watch, if set, receives the run's simulator right after it is
	// built. Drivers set it to the campaign TaskCtx's Watch so the
	// watchdog can cancel the run and observe its virtual clock.
	Watch func(campaign.Canceler)
	// FastForward enables the hybrid fluid/packet engine: quiescent
	// congestion-avoidance epochs are advanced analytically from one AQM
	// update to the next instead of packet by packet (see internal/ff and
	// DESIGN.md). Only scenarios with a steady bulk population and a
	// FastForwarder AQM actually engage it — everything else (staged, UDP,
	// web, rate changes, impairments, SACK) silently runs the classic
	// per-packet loop. Off (the default) keeps the run byte-identical to
	// builds without the engine.
	FastForward bool
	// Shards, when ≥ 2, runs the scenario on the conservative-PDES
	// coordinator: bulk flows are partitioned across Shards-1 endpoint
	// domains and the bottleneck link+AQM owns the last domain, all
	// advancing in lock-step lookahead windows (see internal/sim/shard.go).
	// One-way propagation moves onto the cross-domain wires, so sharded
	// results are deterministic for a fixed shard count but not
	// byte-identical to the single-domain schedule. 0 or 1 — and any
	// scenario without partitionable bulk flows — uses the classic
	// single-simulator path, byte-identical to before sharding existed.
	Shards int
	// CompactMetrics switches every distribution collector in the Result
	// (queue sojourn, probability and utilization samples, web FCT) from
	// the exact per-observation stats.Sample to the constant-memory
	// stats.LogHistogram. The exact collector stores one float64 per
	// forwarded packet, so memory grows with sim-time × flow-count; the
	// histogram is fixed-size (~2% percentile error) and makes multi-minute
	// runs with thousands of flows feasible. Existing experiments leave it
	// off so golden fingerprints stay byte-identical.
	CompactMetrics bool
}

// GroupResult summarizes one bulk-flow group after the run.
type GroupResult struct {
	// Label is the group's tag (defaults to the CC name).
	Label string
	// CC is the congestion-control name.
	CC string
	// FlowRates holds each flow's goodput in bits/s over the
	// measurement window (after WarmUp).
	FlowRates []float64
	// Marks is the total CE marks seen by the group's receivers.
	Marks int
	// CongestionEvents is the total multiplicative decreases.
	CongestionEvents int
	// Retransmissions is the total retransmitted segments.
	Retransmissions int
}

// Total returns the group's aggregate goodput in bits/s.
func (g GroupResult) Total() float64 {
	var sum float64
	for _, r := range g.FlowRates {
		sum += r
	}
	return sum
}

// MeanPerFlow returns the mean per-flow goodput in bits/s.
func (g GroupResult) MeanPerFlow() float64 {
	if len(g.FlowRates) == 0 {
		return 0
	}
	return g.Total() / float64(len(g.FlowRates))
}

// UDPResult reports one unresponsive source's fate over the measurement
// window — the loss numbers Figure 12-style overload experiments need.
type UDPResult struct {
	// RateBps is the configured send rate in bits/s.
	RateBps float64
	// SentBytes and DeliveredBytes count the window's traffic; LostBytes
	// is their difference (packets still queued at the end count as lost,
	// which over a multi-second window is negligible).
	SentBytes, DeliveredBytes, LostBytes int64
	// DeliveredBps is the delivered goodput in bits/s over the window.
	DeliveredBps float64
	// LossRatio is LostBytes/SentBytes (0 when nothing was sent).
	LossRatio float64
}

// Result is everything an experiment driver needs to print its figure.
type Result struct {
	// DelaySeries is the queue delay (seconds) sampled at SampleEvery.
	DelaySeries stats.TimeSeries
	// DelayFine is the queue delay sampled every 100 ms (Figure 12 peaks).
	DelayFine stats.TimeSeries
	// GoodputSeries is total TCP goodput (bits/s) at SampleEvery.
	GoodputSeries stats.TimeSeries
	// Sojourn is the per-packet queuing delay (seconds) over the
	// measurement window — the paper's Figure 14/16 metric. This and the
	// other Quantiler fields hold exact stats.Sample collectors by
	// default, or constant-memory histograms under CompactMetrics.
	Sojourn stats.Quantiler
	// ClassicProb and ScalableProb sample the AQM's probabilities every
	// 100 ms over the measurement window (Figure 17).
	ClassicProb, ScalableProb stats.Quantiler
	// UtilSeries samples link utilization per SampleEvery interval over
	// the measurement window (Figure 18's P1/mean/P99).
	UtilSeries stats.Quantiler
	// Utilization is the mean over the measurement window.
	Utilization float64
	// Groups reports per-group flow rates in Scenario order (staged and
	// web groups excluded).
	Groups []GroupResult
	// DropsAQM, DropsOverflow, Marks count the whole-run totals.
	DropsAQM, DropsOverflow, Marks int
	// WebFCT aggregates web-workload flow completion times (seconds).
	WebFCT stats.Quantiler
	// UDP reports per-source delivered/lost bytes in Scenario order.
	UDP []UDPResult
	// FaultDrops, FaultDups and FaultReorders count the impairment
	// layer's interventions (all zero without Scenario.Impair).
	FaultDrops, FaultDups, FaultReorders int
	// Events is the number of simulator events processed (bench metric).
	// Virtual fast-forward traffic is deliberately excluded: this counts
	// real packet-mode work only.
	Events uint64
	// FFEpochs, FFZeroEpochs, FFVirtualPkts and FFTime are the fast-forward
	// engine's telemetry: committed epochs, detected-but-empty epochs (test
	// hook), virtual packets decided, and total virtual time skipped. All
	// zero when Scenario.FastForward is off or never engaged.
	FFEpochs, FFZeroEpochs int
	FFVirtualPkts          uint64
	FFTime                 time.Duration
}

// EventCount reports the processed-event total; it satisfies
// campaign.EventCounter so the engine can attribute events/sec to each run.
func (r *Result) EventCount() uint64 { return r.Events }

// newQuantiler picks the collector family for one Result distribution.
func newQuantiler(compact bool) stats.Quantiler {
	if compact {
		return stats.NewDelayHistogram()
	}
	return &stats.Sample{}
}

// emptyResult returns a Result whose collectors are empty exact samples, so
// consumers of a failed (panicked) cell print zeros instead of hitting nil
// Quantiler interfaces.
func emptyResult() *Result {
	return &Result{
		Sojourn:      &stats.Sample{},
		ClassicProb:  &stats.Sample{},
		ScalableProb: &stats.Sample{},
		UtilSeries:   &stats.Sample{},
		WebFCT:       &stats.Sample{},
	}
}

// Run executes a scenario to completion.
func Run(sc Scenario) *Result {
	if sc.SampleEvery == 0 {
		sc.SampleEvery = time.Second
	}
	if shardable(sc) {
		return runSharded(sc)
	}
	s := sim.New(sc.Seed)
	if sc.Watch != nil {
		sc.Watch(s)
	}
	d := link.NewDispatcher()
	// The impairment layer wraps the delivery callback *after* the link,
	// so the link auditor's conservation identities hold unchanged with
	// faults active. It is only constructed when impairments are
	// configured: an unimpaired run draws no extra RNG stream.
	deliver := d.Deliver
	var inj *faults.Injector
	if sc.Impair != nil && sc.Impair.Active() {
		inj = faults.NewInjector(s, *sc.Impair, d.Deliver)
		deliver = inj.Deliver
	}
	l := link.New(s, link.Config{
		RateBps:       sc.LinkRateBps,
		BufferPackets: sc.BufferPackets,
		AQM:           sc.NewAQM(s.RNG()),
		Sojourn:       newQuantiler(sc.CompactMetrics),
	}, deliver)
	if sc.Impair != nil && sc.Impair.Rate != nil {
		sc.Impair.Rate.Apply(s, l)
	}

	res := &Result{
		DelaySeries:   stats.TimeSeries{Interval: sc.SampleEvery},
		DelayFine:     stats.TimeSeries{Interval: 100 * time.Millisecond},
		GoodputSeries: stats.TimeSeries{Interval: sc.SampleEvery},
		ClassicProb:   newQuantiler(sc.CompactMetrics),
		ScalableProb:  newQuantiler(sc.CompactMetrics),
		UtilSeries:    newQuantiler(sc.CompactMetrics),
		WebFCT:        newQuantiler(sc.CompactMetrics),
	}

	nextID := 1
	var groups []*traffic.BulkGroup
	for _, spec := range sc.Bulk {
		if sc.SACK {
			spec.SACK = true
		}
		if spec.AckEvery == 0 {
			spec.AckEvery = sc.AckEvery
		}
		g, id := traffic.StartBulk(s, l, d, nextID, spec)
		groups = append(groups, g)
		nextID = id
	}
	var staged []*tcp.Endpoint
	if sc.Staged != nil {
		staged, nextID = traffic.StagedCounts(s, l, d, nextID,
			sc.Staged.CC, sc.Staged.RTT, sc.Staged.Counts, sc.Staged.StageLen)
	}
	var udps []*traffic.UDPSource
	for _, spec := range sc.UDP {
		udps = append(udps, traffic.StartUDP(s, l, d, nextID, spec))
		nextID++
	}
	var webs []*traffic.WebWorkload
	for _, spec := range sc.Web {
		w := traffic.StartWeb(s, l, d, &nextID, spec)
		if sc.CompactMetrics {
			// Short flows complete directly into the shared histogram;
			// no per-flow sample storage, no merge at collection time.
			w.FCT = res.WebFCT
		}
		webs = append(webs, w)
	}
	for _, rc := range sc.RateChanges {
		rate := rc.RateBps
		s.At(rc.At, func() { l.SetRateBps(rate) })
	}

	// Every long-lived flow, flattened once: the samplers below run every
	// SampleEvery tick, and rebuilding this slice per tick was an
	// O(flows) allocation that dominated at thousand-flow scale.
	nFlows := len(staged)
	for _, g := range groups {
		nFlows += len(g.Flows)
	}
	flows := make([]*tcp.Endpoint, 0, nFlows)
	for _, g := range groups {
		flows = append(flows, g.Flows...)
	}
	flows = append(flows, staged...)

	// Warm-up boundary: restart every steady-state statistic. In
	// fast-forward mode the hybrid loop invokes the reset at the exact
	// boundary instead of scheduling it: ShiftPending translates every
	// pending event when an epoch commits — right for frozen packet
	// processes, wrong for an absolute-calendar event like this one.
	warmReset := func() {
		l.ResetStats()
		now := s.Now()
		for _, f := range flows {
			f.Goodput.Reset(now)
		}
		for _, u := range udps {
			u.ResetStats(now)
		}
	}
	eng := newFFEngine(sc, s, l, flows)
	if eng == nil {
		s.At(sc.WarmUp, warmReset)
	}

	// Coarse sampler: queue delay, total goodput, per-interval utilization.
	var lastGoodput, lastDelivered int64
	s.Every(sc.SampleEvery, func() {
		now := s.Now()
		res.DelaySeries.Record(now, l.QueueDelayNow().Seconds())
		var total int64
		for _, f := range flows {
			total += f.Goodput.Bytes()
		}
		rate := float64(total-lastGoodput) * 8 / sc.SampleEvery.Seconds()
		lastGoodput = total
		res.GoodputSeries.Record(now, rate)
		delivered := l.Delivered.Bytes()
		// The meter is reset at the warm-up boundary; skip the sample
		// whose interval straddles the reset.
		if now > sc.WarmUp && delivered >= lastDelivered {
			util := float64(delivered-lastDelivered) * 8 /
				(sc.SampleEvery.Seconds() * l.RateBps())
			if util > 1 {
				util = 1
			}
			res.UtilSeries.Add(util)
		}
		lastDelivered = delivered
	})

	// Fine sampler: 100 ms queue delay + probability samples.
	s.Every(100*time.Millisecond, func() {
		now := s.Now()
		res.DelayFine.Record(now, l.QueueDelayNow().Seconds())
		if now <= sc.WarmUp {
			return
		}
		if pr, ok := l.AQM().(aqm.ProbabilityReporter); ok {
			res.ClassicProb.Add(pr.DropProbability())
		}
		if sr, ok := l.AQM().(aqm.ScalableReporter); ok {
			res.ScalableProb.Add(sr.ScalableProbability())
		}
	})

	if eng != nil {
		runFastForward(eng, s.Now, s.RunUntil, sc, warmReset)
		ffCollect(res, eng)
	} else {
		s.RunUntil(sc.Duration)
	}

	// Collect.
	now := s.Now()
	res.Sojourn = l.Sojourn
	res.Utilization = l.Utilization()
	res.DropsAQM = l.Drops(link.DropAQM)
	res.DropsOverflow = l.Drops(link.DropOverflow)
	res.Marks = l.Marks()
	res.Events = s.Processed()
	for _, g := range groups {
		label := g.Spec.Label
		if label == "" {
			label = g.Spec.CC
		}
		gr := GroupResult{Label: label, CC: g.Spec.CC,
			FlowRates: make([]float64, 0, len(g.Flows))}
		for _, f := range g.Flows {
			gr.FlowRates = append(gr.FlowRates, f.Goodput.RateBps(now))
			gr.Marks += f.MarksSeen()
			gr.CongestionEvents += f.CongestionEvents()
			gr.Retransmissions += f.Retransmissions()
		}
		res.Groups = append(res.Groups, gr)
	}
	if !sc.CompactMetrics {
		// Exact path: workloads collected separately; merge in Scenario
		// order so the Add sequence — and golden fingerprints — are stable.
		for _, w := range webs {
			res.WebFCT.(*stats.Sample).Merge(w.FCT.(*stats.Sample))
		}
	}
	for _, u := range udps {
		ur := UDPResult{
			RateBps:        u.Spec.RateBps,
			SentBytes:      u.Sent.Bytes(),
			DeliveredBytes: u.Received.Bytes(),
			DeliveredBps:   u.Received.RateBps(now),
		}
		ur.LostBytes = ur.SentBytes - ur.DeliveredBytes
		if ur.LostBytes < 0 {
			ur.LostBytes = 0
		}
		if ur.SentBytes > 0 {
			ur.LossRatio = float64(ur.LostBytes) / float64(ur.SentBytes)
		}
		res.UDP = append(res.UDP, ur)
	}
	if inj != nil {
		res.FaultDrops = inj.Dropped
		res.FaultDups = inj.Duplicated
		res.FaultReorders = inj.Reordered
	}
	if msg := l.Audit().Err("bottleneck link"); msg != "" {
		// A violated invariant means the run's numbers cannot be trusted;
		// panic so the campaign engine fails this cell with the full report
		// (which invariant, where) instead of recording bogus metrics.
		panic(msg)
	}
	return res
}
