package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"pi2/internal/traffic"
)

// ScenarioJSON is the file format `pi2sim -config` accepts: a declarative
// scenario description with durations as Go strings ("100ms") and the AQM
// by name, so whole experiments can be versioned as small JSON documents.
type ScenarioJSON struct {
	Seed          int64          `json:"seed"`
	LinkMbps      float64        `json:"link_mbps"`
	BufferPackets int            `json:"buffer_packets,omitempty"`
	AQM           string         `json:"aqm"`
	TargetMs      float64        `json:"target_ms,omitempty"`
	Duration      string         `json:"duration"`
	WarmUp        string         `json:"warmup,omitempty"`
	SACK          bool           `json:"sack,omitempty"`
	AckEvery      int            `json:"ack_every,omitempty"`
	Flows         []FlowJSON     `json:"flows"`
	UDP           []UDPJSON      `json:"udp,omitempty"`
	RateChanges   []RateChngJSON `json:"rate_changes,omitempty"`
}

// FlowJSON describes one bulk-flow group.
type FlowJSON struct {
	CC    string `json:"cc"`
	Count int    `json:"count"`
	RTT   string `json:"rtt"`
	Label string `json:"label,omitempty"`
}

// UDPJSON describes one CBR source.
type UDPJSON struct {
	RateMbps float64 `json:"rate_mbps"`
	Start    string  `json:"start,omitempty"`
	Stop     string  `json:"stop,omitempty"`
}

// RateChngJSON switches the link capacity mid-run.
type RateChngJSON struct {
	At       string  `json:"at"`
	RateMbps float64 `json:"rate_mbps"`
}

// LoadScenario decodes and validates a JSON scenario into a runnable one.
func LoadScenario(r io.Reader) (Scenario, error) {
	var j ScenarioJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&j); err != nil {
		return Scenario{}, fmt.Errorf("scenario: %w", err)
	}
	return j.Build()
}

// Build converts the JSON form into a Scenario.
func (j ScenarioJSON) Build() (Scenario, error) {
	if j.LinkMbps <= 0 {
		return Scenario{}, fmt.Errorf("scenario: link_mbps must be positive, got %v", j.LinkMbps)
	}
	if len(j.Flows) == 0 && len(j.UDP) == 0 {
		return Scenario{}, fmt.Errorf("scenario: no traffic defined")
	}
	target := 20 * time.Millisecond
	if j.TargetMs > 0 {
		target = time.Duration(j.TargetMs * float64(time.Millisecond))
	}
	aqmName := j.AQM
	if aqmName == "" {
		aqmName = "pi2"
	}
	factory, ok := FactoryByName(aqmName, target)
	if !ok {
		return Scenario{}, fmt.Errorf("scenario: unknown aqm %q", aqmName)
	}
	dur, err := parseDur("duration", j.Duration, true)
	if err != nil {
		return Scenario{}, err
	}
	warm, err := parseDur("warmup", j.WarmUp, false)
	if err != nil {
		return Scenario{}, err
	}
	sc := Scenario{
		Seed:          j.Seed,
		LinkRateBps:   j.LinkMbps * 1e6,
		BufferPackets: j.BufferPackets,
		NewAQM:        factory,
		Duration:      dur,
		WarmUp:        warm,
		SACK:          j.SACK,
		AckEvery:      j.AckEvery,
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	for i, f := range j.Flows {
		rtt, err := parseDur(fmt.Sprintf("flows[%d].rtt", i), f.RTT, true)
		if err != nil {
			return Scenario{}, err
		}
		if f.Count <= 0 {
			return Scenario{}, fmt.Errorf("scenario: flows[%d].count must be positive", i)
		}
		sc.Bulk = append(sc.Bulk, traffic.BulkFlowSpec{
			CC: f.CC, Count: f.Count, RTT: rtt, Label: f.Label,
		})
	}
	for i, u := range j.UDP {
		start, err := parseDur(fmt.Sprintf("udp[%d].start", i), u.Start, false)
		if err != nil {
			return Scenario{}, err
		}
		stop, err := parseDur(fmt.Sprintf("udp[%d].stop", i), u.Stop, false)
		if err != nil {
			return Scenario{}, err
		}
		sc.UDP = append(sc.UDP, traffic.UDPSpec{
			RateBps: u.RateMbps * 1e6, StartAt: start, StopAt: stop,
		})
	}
	for i, rc := range j.RateChanges {
		at, err := parseDur(fmt.Sprintf("rate_changes[%d].at", i), rc.At, true)
		if err != nil {
			return Scenario{}, err
		}
		sc.RateChanges = append(sc.RateChanges, RateChange{At: at, RateBps: rc.RateMbps * 1e6})
	}
	return sc, nil
}

func parseDur(field, s string, required bool) (time.Duration, error) {
	if s == "" {
		if required {
			return 0, fmt.Errorf("scenario: %s is required", field)
		}
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("scenario: %s: %w", field, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("scenario: %s must be non-negative", field)
	}
	return d, nil
}
