package experiments

import (
	"fmt"
	"io"
	"os"
	"time"

	"pi2/internal/campaign"
	"pi2/internal/fluid"
)

// opts translates one campaign invocation's knobs into driver Options.
func opts(ctx *campaign.Context) Options {
	return Options{
		Quick:        ctx.Quick,
		TimeDiv:      ctx.TimeDiv,
		Seed:         ctx.Seed,
		Jobs:         ctx.Jobs,
		Progress:     ctx.Progress,
		Collect:      ctx.Collector,
		Watchdog:     ctx.Watchdog,
		Retries:      ctx.Retries,
		RetryBackoff: ctx.RetryBackoff,
		Shards:       ctx.Shards,
		FastForward:  ctx.FastForward,
		Reps:         ctx.Reps,
		Target:       time.Duration(ctx.TargetMs) * time.Millisecond,
		Dispatch:     ctx.Dispatch,
		Journal:      ctx.Journal,
		Resume:       ctx.Resume,
	}
}

// memoSweep computes the coexistence grid once per invocation; fig15–fig18
// and "sweep" all print from the same points.
func memoSweep(ctx *campaign.Context) []SweepPoint {
	return ctx.Memo("sweep", func() any {
		return CoexistenceSweep(opts(ctx))
	}).([]SweepPoint)
}

func memoCombos(ctx *campaign.Context) []ComboPoint {
	return ctx.Memo("combos", func() any {
		return FlowCombos(opts(ctx), nil)
	}).([]ComboPoint)
}

func memoDualQ(ctx *campaign.Context) *DualQResult {
	return ctx.Memo("dualq", func() any {
		return DualQ(opts(ctx), 1, 1)
	}).(*DualQResult)
}

// printer adapts a figure whose driver returns a self-printing result.
func printer(run func(ctx *campaign.Context, w io.Writer)) func(*campaign.Context, io.Writer) error {
	return func(ctx *campaign.Context, w io.Writer) error {
		run(ctx, w)
		fmt.Fprintln(w)
		return nil
	}
}

func init() {
	campaign.Register(campaign.Experiment{
		Name: "table1", Desc: "default AQM parameters (Table 1)", InAll: true,
		Run: printer(func(ctx *campaign.Context, w io.Writer) { PrintTable1(w) }),
	})
	campaign.Register(campaign.Experiment{
		Name: "fig4", Desc: "Bode margins, Reno + PI on p (analytic)", InAll: true,
		Run: printer(func(ctx *campaign.Context, w io.Writer) { printFig4(w, ctx.Quick) }),
	})
	campaign.Register(campaign.Experiment{
		Name: "fig5", Desc: "PIE 'tune' steps vs sqrt(2p) (analytic)", InAll: true,
		Run: printer(func(ctx *campaign.Context, w io.Writer) { printFig5(w, ctx.Quick) }),
	})
	campaign.Register(campaign.Experiment{
		Name: "fig6", Desc: "queue delay under varying intensity: PI vs PI2", InAll: true,
		Run: printer(func(ctx *campaign.Context, w io.Writer) { Fig6(opts(ctx)).Print(w) }),
	})
	campaign.Register(campaign.Experiment{
		Name: "fig7", Desc: "Bode margins: reno pie / reno pi2 / scal pi (analytic)", InAll: true,
		Run: printer(func(ctx *campaign.Context, w io.Writer) { printFig7(w, ctx.Quick) }),
	})
	campaign.Register(campaign.Experiment{
		Name: "fig11", Desc: "PIE vs PI2 queue delay under three load mixes", InAll: true,
		Run: printer(func(ctx *campaign.Context, w io.Writer) { Fig11(opts(ctx)).Print(w) }),
	})
	campaign.Register(campaign.Experiment{
		Name: "fig12", Desc: "queue delay across link-rate changes", InAll: true,
		Run: printer(func(ctx *campaign.Context, w io.Writer) { Fig12(opts(ctx)).Print(w) }),
	})
	campaign.Register(campaign.Experiment{
		Name: "fig13", Desc: "DCTCP on PI2 under varying intensity", InAll: true,
		Run: printer(func(ctx *campaign.Context, w io.Writer) { Fig13(opts(ctx)).Print(w) }),
	})
	campaign.Register(campaign.Experiment{
		Name: "fig14", Desc: "delay quantiles per target, PIE vs PI2", InAll: true,
		Run: printer(func(ctx *campaign.Context, w io.Writer) { Fig14(opts(ctx)).Print(w) }),
	})
	campaign.Register(campaign.Experiment{
		Name: "fig15", Desc: "coexistence sweep: throughput balance",
		Run: printer(func(ctx *campaign.Context, w io.Writer) { PrintFig15(w, memoSweep(ctx)) }),
	})
	campaign.Register(campaign.Experiment{
		Name: "fig16", Desc: "coexistence sweep: queuing delay",
		Run: printer(func(ctx *campaign.Context, w io.Writer) { PrintFig16(w, memoSweep(ctx)) }),
	})
	campaign.Register(campaign.Experiment{
		Name: "fig17", Desc: "coexistence sweep: mark/drop probability",
		Run: printer(func(ctx *campaign.Context, w io.Writer) { PrintFig17(w, memoSweep(ctx)) }),
	})
	campaign.Register(campaign.Experiment{
		Name: "fig18", Desc: "coexistence sweep: link utilisation",
		Run: printer(func(ctx *campaign.Context, w io.Writer) { PrintFig18(w, memoSweep(ctx)) }),
	})
	campaign.Register(campaign.Experiment{
		Name: "sweep", Desc: "full coexistence grid (figures 15-18)", InAll: true,
		Run: printer(func(ctx *campaign.Context, w io.Writer) {
			pts := memoSweep(ctx)
			PrintFig15(w, pts)
			fmt.Fprintln(w)
			PrintFig16(w, pts)
			fmt.Fprintln(w)
			PrintFig17(w, pts)
			fmt.Fprintln(w)
			PrintFig18(w, pts)
		}),
	})
	campaign.Register(campaign.Experiment{
		Name: "fig19", Desc: "flow-count combos: per-flow rate ratio",
		Run: printer(func(ctx *campaign.Context, w io.Writer) { PrintFig19(w, memoCombos(ctx)) }),
	})
	campaign.Register(campaign.Experiment{
		Name: "fig20", Desc: "flow-count combos: normalized rates + fairness",
		Run: printer(func(ctx *campaign.Context, w io.Writer) { PrintFig20(w, memoCombos(ctx)) }),
	})
	campaign.Register(campaign.Experiment{
		Name: "combos", Desc: "flow-count combinations (figures 19-20)", InAll: true,
		Run: printer(func(ctx *campaign.Context, w io.Writer) {
			pts := memoCombos(ctx)
			PrintFig19(w, pts)
			fmt.Fprintln(w)
			PrintFig20(w, pts)
		}),
	})
	campaign.Register(campaign.Experiment{
		Name: "fct", Desc: "short-flow completion times across AQMs", InAll: true,
		Run: printer(func(ctx *campaign.Context, w io.Writer) { FigFCT(opts(ctx)).Print(w) }),
	})
	campaign.Register(campaign.Experiment{
		Name: "rttfair", Desc: "RTT-heterogeneity sweep (extension)", InAll: true,
		Run: printer(func(ctx *campaign.Context, w io.Writer) { PrintRTTFair(w, RTTFairSweep(opts(ctx))) }),
	})
	campaign.Register(campaign.Experiment{
		Name: "dualq", Desc: "single coupled queue vs DualPI2", InAll: true,
		Run: printer(func(ctx *campaign.Context, w io.Writer) { memoDualQ(ctx).Print(w) }),
	})
	campaign.Register(campaign.Experiment{
		Name: "arrangements", Desc: "queue arrangements: single-PI2 / DualPI2 / FQ-CoDel", InAll: true,
		Run: printer(func(ctx *campaign.Context, w io.Writer) {
			PrintArrangements(w, memoDualQ(ctx), FQArrangement(opts(ctx), 1, 1))
		}),
	})
	campaign.Register(campaign.Experiment{
		Name: "chaos", Desc: "robustness tier: PIE/PI2/DualPI2 under bursty loss, rate flaps, reordering", InAll: true,
		Run: func(ctx *campaign.Context, w io.Writer) error {
			pts, failed, err := Chaos(opts(ctx))
			PrintChaos(w, pts, failed)
			fmt.Fprintln(w)
			return err
		},
	})
	campaign.Register(campaign.Experiment{
		Name: "interop", Desc: "L4S conformance matrix: {prague,dctcp,cubic,reno} x {classic,accurate ECN} x {pie,pi2,dualpi2}", InAll: true,
		Run: func(ctx *campaign.Context, w io.Writer) error {
			pts, failed, err := Interop(opts(ctx))
			PrintInterop(w, pts, failed)
			fmt.Fprintln(w)
			return err
		},
	})
	// The heavy tier stays out of "all" (and hence the golden set): its big
	// cells take minutes. The table on stdout is seed-deterministic like every
	// other experiment; host-dependent throughput figures go to stderr.
	campaign.Register(campaign.Experiment{
		Name: "heavy", Desc: "flow-count scaling tier: 10-5000 flows, PIE/PI2/DualPI2 (extension)",
		Run: func(ctx *campaign.Context, w io.Writer) error {
			pts, err := Heavy(opts(ctx))
			PrintHeavy(w, pts)
			fmt.Fprintln(w)
			PrintHeavyPerf(os.Stderr, pts)
			return err
		},
	})
}

// bodePoints picks the analytic figures' sample density.
func bodePoints(quick bool) int {
	if quick {
		return 13
	}
	return 49
}

func printFig4(w io.Writer, quick bool) {
	fmt.Fprintln(w, "# Figure 4: Bode margins, Reno + PI on p (R0=100ms, alpha=0.125*tune, beta=1.25*tune, T=32ms)")
	fmt.Fprintln(w, "p\tline\tgain_margin_db\tphase_margin_deg")
	for _, mp := range fluid.Figure4(bodePoints(quick)) {
		for _, line := range []string{"tune=auto", "tune=1", "tune=1/2", "tune=1/8"} {
			m := mp.ByLine[line]
			fmt.Fprintf(w, "%.3g\t%s\t%.2f\t%.2f\n", mp.P, line, m.GainMarginDB, m.PhaseMarginDeg)
		}
	}
}

func printFig5(w io.Writer, quick bool) {
	fmt.Fprintln(w, "# Figure 5: PIE 'tune' steps vs sqrt(2p)")
	fmt.Fprintln(w, "p\ttune\tsqrt_2p")
	for _, tp := range fluid.Figure5(bodePoints(quick)) {
		fmt.Fprintf(w, "%.3g\t%.6g\t%.6g\n", tp.P, tp.Tune, tp.SqrtTwoP)
	}
}

func printFig7(w io.Writer, quick bool) {
	fmt.Fprintln(w, "# Figure 7: Bode margins (R0=100ms, T=32ms): reno pie / reno pi2 / scal pi")
	fmt.Fprintln(w, "p_prime\tline\tgain_margin_db\tphase_margin_deg")
	for _, mp := range fluid.Figure7(bodePoints(quick)) {
		for _, line := range []string{"reno pie", "reno pi2", "scal pi"} {
			m := mp.ByLine[line]
			fmt.Fprintf(w, "%.3g\t%s\t%.2f\t%.2f\n", mp.P, line, m.GainMarginDB, m.PhaseMarginDeg)
		}
	}
}
