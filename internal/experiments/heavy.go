package experiments

import (
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"pi2/internal/campaign"
	"pi2/internal/core"
	"pi2/internal/link"
	"pi2/internal/packet"
	"pi2/internal/sim"
	"pi2/internal/stats"
	"pi2/internal/tcp"
	"pi2/internal/traffic"
)

// The heavy tier stresses flow-count scaling rather than the paper's grid:
// the per-flow regime is held constant (fair share and RTT fixed) while the
// flow population grows by orders of magnitude, so the sweep isolates how
// the AQMs — and the simulator itself — behave as state scales. All cells
// run with CompactMetrics (constant-memory histogram collectors): at 5k
// flows an exact per-packet sample would grow without bound.
const (
	heavyPerFlowBps = 2e6
	heavyRTT        = 10 * time.Millisecond
)

// HeavyFlowCounts is the flow-count axis of the heavy scaling tier.
var HeavyFlowCounts = []int{10, 100, 1000, 5000}

// HeavyFFFlowCounts extends the axis under -ff: flow populations whose
// steady state is only tractable with the fast-forward engine. They run on
// the single-queue AQMs only — DualPI2's coupled dual queue stays in packet
// mode (see internal/ff), so those cells would be pure packet slog.
var HeavyFFFlowCounts = []int{10000, 50000}

// HeavyAQMs are the bottleneck disciplines compared at each flow count.
var HeavyAQMs = []string{"pie", "pi2", "dualpi2"}

// HeavyPoint is one cell of the flow-count scaling sweep: N flows (even
// reno/cubic/dctcp thirds) through one AQM at a link sized to keep the fair
// share at heavyPerFlowBps.
type HeavyPoint struct {
	Flows int
	AQM   string

	// Jain is Jain's fairness index over all per-flow rates.
	Jain float64
	// QMeanMs / QP99Ms summarize per-packet queuing delay (histogram).
	QMeanMs, QP99Ms float64
	// Util is the bottleneck's busy fraction.
	Util float64

	// Simulator-throughput metrics for the scaling story. Events counts
	// packet-mode simulator events only; fast-forwarded virtual traffic is
	// reported separately so event throughput and wall speedup stay
	// distinguishable.
	Events       uint64
	WallMs       float64
	EventsPerSec float64
	// SimSecPerWallSec is simulated seconds per wall-clock second.
	SimSecPerWallSec float64
	// FFEpochs / FFVirtualPkts / FFTimeS are the fast-forward engine's
	// telemetry (all zero without -ff): committed epochs, virtual packets
	// decided analytically, and simulated seconds skipped.
	FFEpochs      int
	FFVirtualPkts uint64
	FFTimeS       float64

	// Reps > 1 marks a cross-seed aggregate: the cell ran Reps times with
	// perturbed seeds, the point estimates above are cross-seed means (with
	// sojourn quantiles from the reps' pooled histograms), each *HW is the
	// 95% confidence half-width (1.96·s/√n), and RateCoV is the pooled
	// per-flow-rate coefficient of variation. Reps <= 1 is a single run
	// with all of these zero.
	Reps                            int
	JainHW, QMeanHW, QP99HW, UtilHW float64
	RateCoV                         float64

	// Soj and RateW are this rep's sojourn histogram and per-flow-rate
	// moments (pooled across reps via Merge). Exported so they survive the
	// fleet wire (gob drops unexported fields); excluded from -json, which
	// never carried them.
	Soj   *stats.LogHistogram `json:"-"`
	RateW stats.Welford       `json:"-"`
}

// EventCount satisfies campaign.EventCounter for per-run events/sec records.
func (p HeavyPoint) EventCount() uint64 { return p.Events }

// Metrics implements campaign.MetricsReporter for one heavy cell. Wall-time
// metrics (WallMs, EventsPerSec, SimSecPerWallSec) are reported in the
// printed table only: they depend on the host, not the simulation.
func (p HeavyPoint) Metrics() map[string]float64 {
	return map[string]float64{
		"flows":     float64(p.Flows),
		"jain":      p.Jain,
		"q_mean_ms": p.QMeanMs,
		"q_p99_ms":  p.QP99Ms,
		"util":      p.Util,
		"events":    float64(p.Events),
	}
}

// heavyMix splits n flows into near-even reno/cubic/dctcp thirds.
func heavyMix(n int) (reno, cubic, dctcp int) {
	reno = n / 3
	cubic = n / 3
	dctcp = n - reno - cubic
	return
}

// heavyTasks builds the AQM × flow-count (× rep) matrix. The rep loop is
// innermost with SeedIndex = len(tasks), so at reps=1 the cell→seed
// mapping is exactly the historical one and the table stays byte-identical.
func heavyTasks(o Options) []campaign.Task {
	counts := HeavyFlowCounts
	if o.Quick {
		counts = []int{10, 100}
	}
	reps := o.reps()
	var tasks []campaign.Task
	for _, aqmName := range HeavyAQMs {
		cs := counts
		if o.FastForward && !o.Quick && aqmName != "dualpi2" {
			cs = append(append([]int{}, counts...), HeavyFFFlowCounts...)
		}
		for _, n := range cs {
			for rep := 0; rep < reps; rep++ {
				aqmName, n := aqmName, n
				tasks = append(tasks, campaign.Task{
					Name:      "heavy",
					SeedIndex: len(tasks),
					Params:    map[string]any{"aqm": aqmName, "flows": n, "rep": rep},
					Run: func(tc *campaign.TaskCtx) any {
						if aqmName == "dualpi2" {
							return runHeavyDual(o, tc, n)
						}
						return runHeavyCell(o, tc, n, aqmName)
					},
				})
			}
		}
	}
	return tasks
}

// Heavy runs the flow-count scaling sweep: each count in HeavyFlowCounts
// through PIE, PI2 and DualPI2. Cells fan out across o.Jobs workers (or a
// worker-process fleet); a non-nil error names every failed cell (so a CI
// smoke run exits nonzero) while the returned points still cover the cells
// that completed. Records stream: each cell's reps aggregate the moment
// the group completes — full RunRecords are dropped on the spot, so peak
// memory holds one aggregated point per group plus the in-flight window,
// not the whole grid.
func Heavy(o Options) ([]HeavyPoint, error) {
	tasks := heavyTasks(o)
	reps := o.reps()
	nGroups := len(tasks) / reps
	type heavyGroup struct {
		ok bool
		pt HeavyPoint
	}
	groups := make([]heavyGroup, nGroups)
	groupFails := make([][]string, nGroups)
	groupFold(tasks, o.execFor("heavy", gridSpec{}), reps, func(group int, recs []campaign.RunRecord) {
		var pts []HeavyPoint
		var wallMs float64
		var events uint64
		for _, rec := range recs {
			if rec.Err != "" {
				groupFails[group] = append(groupFails[group], fmt.Sprintf("%s/%v flows=%v rep=%v: %s",
					rec.Name, rec.Params["aqm"], rec.Params["flows"], rec.Params["rep"], rec.Err))
				continue
			}
			p, ok := rec.Result.(HeavyPoint)
			if !ok {
				groupFails[group] = append(groupFails[group], fmt.Sprintf("%s/%v flows=%v rep=%v: no result",
					rec.Name, rec.Params["aqm"], rec.Params["flows"], rec.Params["rep"]))
				continue
			}
			wallMs += rec.WallMs
			events += p.Events
			pts = append(pts, p)
		}
		if len(pts) == 0 {
			return
		}
		p := aggregateHeavy(pts)
		p.WallMs = wallMs
		if wallMs > 0 {
			p.EventsPerSec = float64(events) / (wallMs / 1e3)
			p.SimSecPerWallSec = heavyDuration(o).Seconds() * float64(len(pts)) / (wallMs / 1e3)
		}
		groups[group] = heavyGroup{ok: true, pt: p}
	})
	// Assemble in matrix order regardless of completion order.
	var out []HeavyPoint
	var failed []string
	for g := range groups {
		if groups[g].ok {
			out = append(out, groups[g].pt)
		}
		failed = append(failed, groupFails[g]...)
	}
	if len(failed) > 0 {
		return out, errors.New("heavy cells failed: " + fmt.Sprint(failed))
	}
	return out, nil
}

// aggregateHeavy folds one cell's repetitions into a banded point: scalar
// metrics via per-rep Welford accumulators (cross-seed mean ± 95% CI),
// sojourn quantiles via LogHistogram.Merge over the reps' pooled histograms,
// and per-flow-rate spread via Welford.Merge of the per-rep accumulators.
// One rep passes through untouched, keeping single-run tables byte-stable.
func aggregateHeavy(pts []HeavyPoint) HeavyPoint {
	if len(pts) == 1 {
		return pts[0]
	}
	agg := pts[0]
	var jain, qmean, qp99, util stats.Welford
	pooled := stats.NewDelayHistogram()
	var rates stats.Welford
	var events, ffPkts uint64
	var ffEpochs int
	var ffTime float64
	for _, p := range pts {
		jain.Add(p.Jain)
		ffEpochs += p.FFEpochs
		ffPkts += p.FFVirtualPkts
		ffTime += p.FFTimeS
		qmean.Add(p.QMeanMs)
		qp99.Add(p.QP99Ms)
		util.Add(p.Util)
		if p.Soj != nil {
			pooled.Merge(p.Soj)
		}
		rates.Merge(p.RateW)
		events += p.Events
	}
	agg.Reps = len(pts)
	agg.Jain, agg.JainHW = jain.Mean(), ci95(jain)
	agg.Util, agg.UtilHW = util.Mean(), ci95(util)
	agg.QMeanHW, agg.QP99HW = ci95(qmean), ci95(qp99)
	if pooled.N() > 0 {
		agg.QMeanMs = pooled.Mean() * 1e3
		agg.QP99Ms = pooled.Percentile(99) * 1e3
	} else {
		agg.QMeanMs, agg.QP99Ms = qmean.Mean(), qp99.Mean()
	}
	if m := rates.Mean(); m > 0 {
		agg.RateCoV = rates.Stddev() / m
	}
	agg.Events = events / uint64(len(pts))
	agg.FFEpochs = ffEpochs / len(pts)
	agg.FFVirtualPkts = ffPkts / uint64(len(pts))
	agg.FFTimeS = ffTime / float64(len(pts))
	agg.Soj, agg.RateW = pooled, rates
	return agg
}

// ci95 is the normal-approximation 95% confidence half-width of the mean.
func ci95(w stats.Welford) float64 {
	if w.N() < 2 {
		return 0
	}
	return 1.96 * w.Stddev() / math.Sqrt(float64(w.N()))
}

func heavyDuration(o Options) time.Duration {
	return o.scale(20 * time.Second)
}

// runHeavyCell is a single-queue cell (PIE or PI2) through the standard
// scenario runner with compact collectors.
func runHeavyCell(o Options, tc *campaign.TaskCtx, n int, aqmName string) HeavyPoint {
	target := o.target()
	factory, ok := FactoryByName(aqmName, target)
	if !ok {
		panic("unknown AQM " + aqmName)
	}
	dur := heavyDuration(o)
	reno, cubic, dctcp := heavyMix(n)
	rate := heavyPerFlowBps * float64(n)
	// The fast-forward extension cells (10k/50k flows) outgrow the Table 1
	// buffer: 40000 packets is under 5 ms of queue at 100 Gb/s, below the
	// AQM operating point, so the queue could never park near target. Those
	// cells get a 100 ms buffer instead; the standard axis keeps the paper
	// default (and its golden fingerprints).
	buf := 0
	for _, ffn := range HeavyFFFlowCounts {
		if n == ffn {
			if b := int(rate * 0.1 / 8 / packet.FullLen); b > 40000 {
				buf = b
			}
		}
	}
	sc := Scenario{
		Seed:           tc.Seed,
		Watch:          tc.Watch,
		Shards:         tc.Shards,
		FastForward:    o.FastForward,
		LinkRateBps:    rate,
		BufferPackets:  buf,
		NewAQM:         factory,
		CompactMetrics: true,
		Bulk: []traffic.BulkFlowSpec{
			{CC: "reno", Count: reno, RTT: heavyRTT, Label: "reno"},
			{CC: "cubic", Count: cubic, RTT: heavyRTT, Label: "cubic"},
			{CC: "dctcp", Count: dctcp, RTT: heavyRTT, Label: "dctcp"},
		},
		Duration: dur,
		WarmUp:   dur * 2 / 5,
	}
	r := Run(sc)
	p := HeavyPoint{
		Flows:         n,
		AQM:           aqmName,
		Jain:          jainOf(r),
		QMeanMs:       r.Sojourn.Mean() * 1e3,
		QP99Ms:        r.Sojourn.Percentile(99) * 1e3,
		Util:          r.Utilization,
		Events:        r.Events,
		FFEpochs:      r.FFEpochs,
		FFVirtualPkts: r.FFVirtualPkts,
		FFTimeS:       r.FFTime.Seconds(),
	}
	p.Soj, _ = r.Sojourn.(*stats.LogHistogram)
	for _, g := range r.Groups {
		for _, rate := range g.FlowRates {
			p.RateW.Add(rate)
		}
	}
	return p
}

// runHeavyDual is the DualPI2 cell: hand-wired around core.DualLink (the
// scenario runner drives single-queue links only), with both per-queue
// sojourn collectors pointed at one shared histogram so the cell reports a
// combined queue-delay distribution in constant memory.
func runHeavyDual(o Options, tc *campaign.TaskCtx, n int) HeavyPoint {
	dur := heavyDuration(o)
	warm := dur * 2 / 5
	reno, cubic, dctcp := heavyMix(n)

	s := sim.New(tc.Seed)
	tc.Watch(s)
	d := link.NewDispatcher()
	dual := core.NewDualLink(s, heavyPerFlowBps*float64(n), core.DualConfig{}, d.Deliver)
	soj := stats.NewDelayHistogram()
	dual.LSojourn = soj
	dual.CSojourn = soj

	flows := make([]*tcp.Endpoint, 0, n)
	id := 1
	mk := func(cc tcp.CongestionControl, mode tcp.ECNMode) {
		ep := tcp.NewWithEnqueuer(s, dual.Enqueue, tcp.Config{
			ID: id, CC: cc, ECN: mode, BaseRTT: heavyRTT,
		})
		d.Register(id, ep.DeliverData)
		ep.Start()
		id++
		flows = append(flows, ep)
	}
	for i := 0; i < reno; i++ {
		mk(&tcp.Reno{}, tcp.ECNOff)
	}
	for i := 0; i < cubic; i++ {
		mk(&tcp.Cubic{}, tcp.ECNOff)
	}
	for i := 0; i < dctcp; i++ {
		mk(&tcp.DCTCP{}, tcp.ECNScalable)
	}
	s.At(warm, func() {
		now := s.Now()
		for _, ep := range flows {
			ep.Goodput.Reset(now)
		}
		soj.Reset()
	})
	s.RunUntil(dur)
	if msg := dual.Audit().Err("duallink"); msg != "" {
		panic(msg)
	}
	now := s.Now()
	rates := make([]float64, 0, len(flows))
	for _, ep := range flows {
		rates = append(rates, ep.Goodput.RateBps(now))
	}
	p := HeavyPoint{
		Flows:   n,
		AQM:     "dualpi2",
		Jain:    stats.JainIndex(rates),
		QMeanMs: soj.Mean() * 1e3,
		QP99Ms:  soj.Percentile(99) * 1e3,
		Util:    dual.Utilization(),
		Events:  s.Processed(),
		Soj:     soj,
	}
	for _, r := range rates {
		p.RateW.Add(r)
	}
	return p
}

// PrintHeavy writes the scaling table. Only simulation-derived columns
// appear here: experiment stdout must stay byte-identical for any -jobs
// value, so host-dependent wall-clock figures go to PrintHeavyPerf instead.
func PrintHeavy(w io.Writer, pts []HeavyPoint) {
	fmt.Fprintln(w, "# Heavy tier: flow-count scaling, even reno/cubic/dctcp mix,")
	fmt.Fprintf(w, "# fair share %.0f Mb/s per flow, RTT %d ms; compact (histogram) collectors\n",
		heavyPerFlowBps/1e6, heavyRTT.Milliseconds())
	if len(pts) > 0 && pts[0].Reps > 1 {
		fmt.Fprintf(w, "# %d reps per cell with perturbed seeds: cross-seed mean, ± = 95%% CI,\n", pts[0].Reps)
		fmt.Fprintln(w, "# sojourn quantiles over the reps' pooled histograms, rate_cov = pooled per-flow-rate CoV")
		fmt.Fprintln(w, "aqm\tflows\tjain\tjain_ci\tq_mean_ms\tq_mean_ci\tq_p99_ms\tq_p99_ci\tutil\tutil_ci\trate_cov\tevents")
		for _, p := range pts {
			fmt.Fprintf(w, "%s\t%d\t%.3f\t±%.3f\t%.2f\t±%.2f\t%.2f\t±%.2f\t%.3f\t±%.3f\t%.3f\t%d\n",
				p.AQM, p.Flows, p.Jain, p.JainHW, p.QMeanMs, p.QMeanHW,
				p.QP99Ms, p.QP99HW, p.Util, p.UtilHW, p.RateCoV, p.Events)
		}
		return
	}
	fmt.Fprintln(w, "aqm\tflows\tjain\tq_mean_ms\tq_p99_ms\tutil\tevents")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%d\t%.3f\t%.2f\t%.2f\t%.3f\t%d\n",
			p.AQM, p.Flows, p.Jain, p.QMeanMs, p.QP99Ms, p.Util, p.Events)
	}
}

// PrintHeavyPerf writes the simulator-throughput block (per-cell wall time
// and events/sec) plus a process-heap footer from runtime.ReadMemStats.
// These depend on the host and GC timing, not the simulation, so they are
// kept off experiment stdout (the registry sends them to stderr) and out of
// Metrics(). Event throughput and wall speedup are separate columns on
// purpose: pkt_events_per_sec is real packet-mode event processing only,
// while sim_s_per_wall_s is the end-to-end speedup — under -ff the two
// diverge, and the ff_* columns say how much simulated time was covered
// analytically instead.
func PrintHeavyPerf(w io.Writer, pts []HeavyPoint) {
	fmt.Fprintln(w, "# simulator throughput (host-dependent, informational)")
	fmt.Fprintln(w, "aqm\tflows\twall_s\tpkt_events_per_sec\tsim_s_per_wall_s\tff_epochs\tff_sim_s\tff_virtual_pkts")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.3g\t%.3g\t%d\t%.1f\t%d\n",
			p.AQM, p.Flows, p.WallMs/1e3, p.EventsPerSec, p.SimSecPerWallSec,
			p.FFEpochs, p.FFTimeS, p.FFVirtualPkts)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# heap: alloc=%.1f MiB sys=%.1f MiB (process-wide)\n",
		float64(ms.HeapAlloc)/(1<<20), float64(ms.Sys)/(1<<20))
}
