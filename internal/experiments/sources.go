package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"pi2/internal/campaign"
	"pi2/internal/stats"
)

// gridSpec is the wire form of the Options fields a task builder depends
// on. A fleet worker receives (family, gridSpec) and rebuilds the exact
// task matrix the coordinator built — closures cannot cross a process
// boundary, but the recipe for them can. Only knobs that change the
// matrix or the cells' behavior belong here; execution-side knobs (jobs,
// seeds, watchdog, shards) travel in the fleet init envelope instead.
type gridSpec struct {
	Quick    bool     `json:"quick,omitempty"`
	TimeDiv  int      `json:"timediv,omitempty"`
	FF       bool     `json:"ff,omitempty"`
	Reps     int      `json:"reps,omitempty"`
	TargetNs int64    `json:"target_ns,omitempty"`
	NA       int      `json:"na,omitempty"`
	NB       int      `json:"nb,omitempty"`
	Combos   [][2]int `json:"combos,omitempty"`
}

// options reconstructs the Options a builder needs on the worker side.
func (g gridSpec) options() Options {
	return Options{
		Quick:       g.Quick,
		TimeDiv:     g.TimeDiv,
		FastForward: g.FF,
		Reps:        g.Reps,
		Target:      time.Duration(g.TargetNs),
	}
}

// execFor assembles executor options for one grid family. The (family,
// spec) identity is attached whenever anything needs it: a dispatcher
// (worker processes rebuild the matrix from it), a journal (records are
// keyed by it) or a resume set (completed cells are looked up by it).
// Plain in-process runs skip the spec marshalling entirely.
func (o Options) execFor(family string, spec gridSpec) campaign.ExecOptions {
	e := o.exec()
	if o.Dispatch == nil && o.Journal == nil && o.Resume == nil {
		return e
	}
	spec.Quick = o.Quick
	spec.TimeDiv = o.TimeDiv
	spec.FF = o.FastForward
	spec.Reps = o.Reps
	spec.TargetNs = int64(o.Target)
	b, err := json.Marshal(spec)
	if err != nil {
		panic(fmt.Sprintf("experiments: marshal %s grid spec: %v", family, err))
	}
	e.Family = family
	e.Spec = b
	e.Dispatch = o.Dispatch
	return e
}

// groupFold streams a campaign whose matrix is organized as consecutive
// rep groups (indices [g*reps, (g+1)*reps) belong to group g) and calls
// finalize once per group, with that group's records in rep order, as
// soon as the group completes. Folding per group in rep order — not in
// arrival order — keeps float aggregation byte-identical at any
// parallelism, while retaining at most O(workers) complete groups.
func groupFold(tasks []campaign.Task, opt campaign.ExecOptions, reps int, finalize func(group int, recs []campaign.RunRecord)) {
	pending := make(map[int][]campaign.RunRecord)
	got := make(map[int]int)
	campaign.ExecuteStream(tasks, opt, func(rec campaign.RunRecord) {
		g := rec.Index / reps
		buf := pending[g]
		if buf == nil {
			buf = make([]campaign.RunRecord, reps)
			pending[g] = buf
		}
		buf[rec.Index%reps] = rec
		got[g]++
		if got[g] == reps {
			delete(pending, g)
			delete(got, g)
			finalize(g, buf)
		}
	})
}

// gridSource adapts a builder over gridSpec into a campaign.TaskSource.
func gridSource(build func(gridSpec) []campaign.Task) campaign.TaskSource {
	return func(spec []byte) ([]campaign.Task, error) {
		var g gridSpec
		if len(spec) > 0 {
			if err := json.Unmarshal(spec, &g); err != nil {
				return nil, fmt.Errorf("experiments: grid spec: %w", err)
			}
		}
		return build(g), nil
	}
}

func init() {
	campaign.RegisterSource("fig6", gridSource(func(g gridSpec) []campaign.Task { return fig6Tasks(g.options()) }))
	campaign.RegisterSource("fig11", gridSource(func(g gridSpec) []campaign.Task { return fig11Tasks(g.options()) }))
	campaign.RegisterSource("fig12", gridSource(func(g gridSpec) []campaign.Task { return fig12Tasks(g.options()) }))
	campaign.RegisterSource("fig13", gridSource(func(g gridSpec) []campaign.Task { return fig13Tasks(g.options()) }))
	campaign.RegisterSource("fig14", gridSource(func(g gridSpec) []campaign.Task { return fig14Tasks(g.options()) }))
	campaign.RegisterSource("fct", gridSource(func(g gridSpec) []campaign.Task { return fctTasks(g.options()) }))
	campaign.RegisterSource("sweep", gridSource(func(g gridSpec) []campaign.Task { return sweepTasks(g.options()) }))
	campaign.RegisterSource("combos", gridSource(func(g gridSpec) []campaign.Task { return combosTasks(g.options(), g.Combos) }))
	campaign.RegisterSource("rttfair", gridSource(func(g gridSpec) []campaign.Task { return rttfairTasks(g.options()) }))
	campaign.RegisterSource("dualq", gridSource(func(g gridSpec) []campaign.Task { return dualqTasks(g.options(), g.NA, g.NB) }))
	campaign.RegisterSource("dualq-fq", gridSource(func(g gridSpec) []campaign.Task { return fqTasks(g.options(), g.NA, g.NB) }))
	campaign.RegisterSource("chaos", gridSource(func(g gridSpec) []campaign.Task { return chaosTasks(g.options()) }))
	campaign.RegisterSource("interop", gridSource(func(g gridSpec) []campaign.Task { return interopTasks(g.options()) }))
	campaign.RegisterSource("heavy", gridSource(func(g gridSpec) []campaign.Task { return heavyTasks(g.options()) }))

	// Concrete result types that cross the coordinator/worker pipe inside
	// RunRecord.Result (an interface) — gob needs them registered on both
	// sides, and coordinator and worker share this binary and this init.
	campaign.RegisterWireType(&Result{})
	campaign.RegisterWireType(HeavyPoint{})
	campaign.RegisterWireType(SweepPoint{})
	campaign.RegisterWireType(ComboPoint{})
	campaign.RegisterWireType(ChaosPoint{})
	campaign.RegisterWireType(InteropPoint{})
	campaign.RegisterWireType(RTTFairPoint{})
	campaign.RegisterWireType(dualArm{})
	campaign.RegisterWireType(FQRow{})
	// Quantiler implementations carried inside Result.
	campaign.RegisterWireType(&stats.Sample{})
	campaign.RegisterWireType(&stats.LogHistogram{})
}
