package experiments

import (
	"math/rand"
	"testing"
	"time"

	"pi2/internal/aqm"
	"pi2/internal/core"
	"pi2/internal/traffic"
)

// TestSmokePI2Reno runs 5 Reno flows through PI2 at 10 Mb/s, 100 ms RTT
// (the Figure 11a setup) and checks the basics: near-full utilization and a
// queue held near the 20 ms target.
func TestSmokePI2Reno(t *testing.T) {
	res := Run(Scenario{
		Seed:        1,
		LinkRateBps: 10e6,
		NewAQM:      func(rng *rand.Rand) aqm.AQM { return core.New(core.Config{}, rng) },
		Bulk: []traffic.BulkFlowSpec{
			{CC: "reno", Count: 5, RTT: 100 * time.Millisecond},
		},
		Duration: 60 * time.Second,
		WarmUp:   20 * time.Second,
	})
	util := res.Utilization
	if util < 0.85 {
		t.Errorf("utilization = %.3f, want >= 0.85", util)
	}
	mean := res.Sojourn.Mean()
	if mean < 0.005 || mean > 0.060 {
		t.Errorf("mean queue delay = %.1f ms, want near the 20 ms target", mean*1e3)
	}
	if res.DropsOverflow != 0 {
		t.Errorf("unexpected overflow drops: %d", res.DropsOverflow)
	}
	t.Logf("util=%.3f meanQ=%.1fms p99Q=%.1fms dropsAQM=%d prob(mean)=%.4f",
		util, mean*1e3, res.Sojourn.Percentile(99)*1e3, res.DropsAQM, res.ClassicProb.Mean())
}

// TestSmokePIEReno runs the same load through full Linux-style PIE.
func TestSmokePIEReno(t *testing.T) {
	res := Run(Scenario{
		Seed:        1,
		LinkRateBps: 10e6,
		NewAQM: func(rng *rand.Rand) aqm.AQM {
			return aqm.NewPIE(aqm.DefaultPIEConfig(), rng)
		},
		Bulk: []traffic.BulkFlowSpec{
			{CC: "reno", Count: 5, RTT: 100 * time.Millisecond},
		},
		Duration: 60 * time.Second,
		WarmUp:   20 * time.Second,
	})
	if res.Utilization < 0.85 {
		t.Errorf("utilization = %.3f, want >= 0.85", res.Utilization)
	}
	mean := res.Sojourn.Mean()
	if mean < 0.005 || mean > 0.060 {
		t.Errorf("mean queue delay = %.1f ms, want near the 20 ms target", mean*1e3)
	}
	t.Logf("util=%.3f meanQ=%.1fms p99Q=%.1fms dropsAQM=%d prob(mean)=%.4f",
		res.Utilization, mean*1e3, res.Sojourn.Percentile(99)*1e3, res.DropsAQM, res.ClassicProb.Mean())
}

// TestSmokeCoexistence runs 1 Cubic + 1 DCTCP through the coupled PI2 AQM
// at 40 Mb/s, 10 ms RTT and checks the rate balance lands near 1 — the
// paper's headline coexistence result (Figure 15).
func TestSmokeCoexistence(t *testing.T) {
	res := Run(Scenario{
		Seed:        1,
		LinkRateBps: 40e6,
		NewAQM:      func(rng *rand.Rand) aqm.AQM { return core.New(core.Config{}, rng) },
		Bulk: []traffic.BulkFlowSpec{
			{CC: "cubic", Count: 1, RTT: 10 * time.Millisecond},
			{CC: "dctcp", Count: 1, RTT: 10 * time.Millisecond},
		},
		Duration: 60 * time.Second,
		WarmUp:   20 * time.Second,
	})
	cubic := res.Groups[0].MeanPerFlow()
	dctcp := res.Groups[1].MeanPerFlow()
	if dctcp == 0 {
		t.Fatal("dctcp rate is zero")
	}
	ratio := cubic / dctcp
	t.Logf("cubic=%.2f Mb/s dctcp=%.2f Mb/s ratio=%.2f util=%.3f",
		cubic/1e6, dctcp/1e6, ratio, res.Utilization)
	if ratio < 0.33 || ratio > 3 {
		t.Errorf("cubic/dctcp ratio = %.2f, want within [1/3, 3]", ratio)
	}
}
