package experiments

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"pi2/internal/campaign"
	"pi2/internal/packet"
	"pi2/internal/traffic"
)

// shardedScenario is a small but genuinely partitionable cell: several bulk
// flows across two RTT classes plus a UDP source kept in the link domain.
func shardedScenario(seed int64, shards int) Scenario {
	sc := Scenario{
		Seed:        seed,
		LinkRateBps: 20e6,
		NewAQM:      PI2Factory(20 * time.Millisecond),
		Bulk: []traffic.BulkFlowSpec{
			{CC: "cubic", Count: 3, RTT: 10 * time.Millisecond, Label: "classic"},
			{CC: "dctcp", Count: 3, RTT: 20 * time.Millisecond, Label: "scalable"},
		},
		UDP:      []traffic.UDPSpec{{RateBps: 1e6}},
		Duration: 5 * time.Second,
		WarmUp:   2 * time.Second,
		Shards:   shards,
	}
	return sc
}

// TestShardableGate pins the fallback predicate: sharding needs an explicit
// count, at least two bulk flows and a positive one-way delay everywhere.
func TestShardableGate(t *testing.T) {
	sc := shardedScenario(1, 4)
	if !shardable(sc) {
		t.Fatal("canonical sharded scenario not shardable")
	}
	sc.Shards = 1
	if shardable(sc) {
		t.Error("shards=1 must use the classic path")
	}
	sc = shardedScenario(1, 4)
	sc.Bulk = []traffic.BulkFlowSpec{{CC: "cubic", Count: 1, RTT: 10 * time.Millisecond}}
	if shardable(sc) {
		t.Error("a single bulk flow cannot be partitioned")
	}
	sc = shardedScenario(1, 4)
	sc.Bulk[0].RTT = 0
	if shardable(sc) {
		t.Error("zero-RTT flow leaves no lookahead; must fall back")
	}
	if w := shardLookahead(shardedScenario(1, 4)); w != 5*time.Millisecond {
		t.Errorf("lookahead = %v, want 5ms (min RTT/2)", w)
	}
}

// TestShardedDeterministicAcrossRuns: for a fixed shard count the coordinator
// must be a deterministic machine — repeated runs are deep-equal, including
// event counts, despite real goroutine parallelism inside each window.
func TestShardedDeterministicAcrossRuns(t *testing.T) {
	a := Run(shardedScenario(42, 4))
	b := Run(shardedScenario(42, 4))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sharded runs with identical scenarios differ")
	}
	if a.Events == 0 || len(a.Groups) != 2 {
		t.Fatalf("implausible sharded result: %d events, %d groups", a.Events, len(a.Groups))
	}
}

// TestShardedPhysicsMatchesUnsharded: sharding redistributes where propagation
// is modeled but not how much of it there is, so aggregate physics — link
// utilization and total goodput — must land close to the classic path.
// (Bitwise equality is explicitly NOT required across shard counts.)
func TestShardedPhysicsMatchesUnsharded(t *testing.T) {
	classic := Run(shardedScenario(7, 0))
	shard := Run(shardedScenario(7, 4))
	if d := shard.Utilization - classic.Utilization; d > 0.1 || d < -0.1 {
		t.Errorf("utilization drifted: classic %.3f vs sharded %.3f",
			classic.Utilization, shard.Utilization)
	}
	sum := func(r *Result) (tot float64) {
		for _, g := range r.Groups {
			for _, rate := range g.FlowRates {
				tot += rate
			}
		}
		return
	}
	sc, ss := sum(classic), sum(shard)
	if ss < sc*0.8 || ss > sc*1.2 {
		t.Errorf("aggregate goodput drifted: classic %.0f vs sharded %.0f", sc, ss)
	}
	if shard.Sojourn.N() == 0 {
		t.Error("sharded run recorded no sojourn samples")
	}
}

// TestShardedFallbackIsByteIdentical: a scenario the gate rejects must take
// the classic path and reproduce the unsharded result exactly, so setting
// -shards on a non-partitionable grid is a no-op rather than a behavior fork.
func TestShardedFallbackIsByteIdentical(t *testing.T) {
	single := testScenario(42)
	forced := testScenario(42)
	forced.Bulk = forced.Bulk[:1] // one flow: not partitionable
	single.Bulk = single.Bulk[:1]
	forced.Shards = 8
	a, b := Run(single), Run(forced)
	// Shards is scenario metadata, not a result field, so full DeepEqual holds.
	if !reflect.DeepEqual(a, b) {
		t.Fatal("non-shardable scenario with Shards set diverged from classic run")
	}
}

// TestShardedGridInvariantAcrossJobs drives the full campaign plumbing:
// the chaos grid at -shards 4 must produce identical points whether cells
// run serially or on a wide worker pool — TaskCtx carries the shard count,
// and within a fixed count each sharded cell is deterministic.
func TestShardedGridInvariantAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in -short mode")
	}
	run := func(jobs int) []ChaosPoint {
		pts, failed, err := Chaos(Options{Quick: true, TimeDiv: 40, Shards: 4, Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v (%v)", jobs, err, failed)
		}
		return pts
	}
	serial := run(1)
	wide := run(8)
	if !reflect.DeepEqual(serial, wide) {
		t.Fatal("sharded chaos points differ between jobs=1 and jobs=8")
	}
	if reflect.DeepEqual(serial, run(1)) != true {
		t.Fatal("sharded chaos grid not repeatable")
	}
}

// TestTargetOverrideChangesControl: the -target knob must reach the AQM —
// a much tighter target yields a different (lower-delay) operating point on
// the same seed.
func TestTargetOverrideChangesControl(t *testing.T) {
	cell := func(target time.Duration) HeavyPoint {
		o := Options{Quick: true, TimeDiv: 20, Target: target}
		return runHeavyCell(o, &campaign.TaskCtx{Seed: 1}, 10, "pi2")
	}
	def := cell(0) // the paper's 20 ms
	tight := cell(2 * time.Millisecond)
	if def.QMeanMs == tight.QMeanMs {
		t.Fatal("target override had no effect on queue delay")
	}
	if tight.QMeanMs >= def.QMeanMs {
		t.Errorf("2 ms target mean delay %.2f ms not below 20 ms target's %.2f ms",
			tight.QMeanMs, def.QMeanMs)
	}
}

// TestShardedWireAuditCatchesLoss injects a mailbox fault — one cross-domain
// message swallowed at a barrier merge — and requires the wire auditor to
// fail the run with a conservation report.
func TestShardedWireAuditCatchesLoss(t *testing.T) {
	dropped := false
	shardDropCross = func(dst int, p *packet.Packet) bool {
		if !dropped && dst == 0 {
			dropped = true
			return true
		}
		return false
	}
	defer func() {
		shardDropCross = nil
		r := recover()
		if r == nil {
			t.Fatal("lost cross-domain packet did not fail the run")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "cross-domain wires") {
			t.Fatalf("unexpected panic: %v", r)
		}
		if !strings.Contains(msg, "conservation") {
			t.Errorf("violation report does not name conservation: %q", msg)
		}
		if !dropped {
			t.Error("drop hook never fired")
		}
	}()
	Run(shardedScenario(3, 4))
}
