package experiments

import (
	"strconv"
	"testing"
)

// TestHeavyQuickSmoke runs the quick heavy grid (10 and 100 flows) at a deep
// time division and sanity-checks every cell: full coverage of the
// AQM × count matrix, sane fairness/utilization/delay, and nonzero
// simulator-throughput records.
func TestHeavyQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy grid in -short mode")
	}
	pts, err := Heavy(Options{Quick: true, TimeDiv: 10})
	if err != nil {
		t.Fatalf("Heavy: %v", err)
	}
	if want := len(HeavyAQMs) * 2; len(pts) != want {
		t.Fatalf("got %d cells, want %d", len(pts), want)
	}
	seen := map[string]bool{}
	for _, p := range pts {
		seen[p.AQM] = true
		label := p.AQM + "/" + strconv.Itoa(p.Flows)
		if p.Flows != 10 && p.Flows != 100 {
			t.Errorf("%s: unexpected flow count", label)
		}
		if p.Jain <= 0 || p.Jain > 1.0000001 {
			t.Errorf("%s: jain = %g out of (0, 1]", label, p.Jain)
		}
		if p.Util <= 0.1 || p.Util > 1.0000001 {
			t.Errorf("%s: util = %g", label, p.Util)
		}
		if p.QMeanMs <= 0 || p.QMeanMs > 1e3 {
			t.Errorf("%s: q_mean = %g ms", label, p.QMeanMs)
		}
		if p.QP99Ms < p.QMeanMs {
			t.Errorf("%s: p99 %g ms below mean %g ms", label, p.QP99Ms, p.QMeanMs)
		}
		if p.Events == 0 || p.EventsPerSec <= 0 || p.SimSecPerWallSec <= 0 {
			t.Errorf("%s: throughput record empty: events=%d eps=%g sspws=%g",
				label, p.Events, p.EventsPerSec, p.SimSecPerWallSec)
		}
	}
	for _, a := range HeavyAQMs {
		if !seen[a] {
			t.Errorf("no cells for AQM %q", a)
		}
	}
}
