package experiments

import (
	"fmt"
	"io"
	"time"

	"pi2/internal/campaign"
	"pi2/internal/traffic"
)

// SweepLinksMbps and SweepRTTs are the paper's coexistence grid
// (Figures 15–18): every combination of link rate and base RTT.
var (
	SweepLinksMbps = []float64{4, 12, 40, 120, 200}
	SweepRTTs      = []time.Duration{
		5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond,
		50 * time.Millisecond, 100 * time.Millisecond,
	}
)

// SweepPoint is one cell of the coexistence sweep: one Cubic flow (A,
// non-ECN) against one ECN-capable flow (B: DCTCP or ECN-Cubic), through
// one AQM.
type SweepPoint struct {
	LinkMbps float64
	RTT      time.Duration
	AQM      string // "pie" or "pi2"
	Pair     string // "dctcp" or "ecn-cubic"

	// RateA and RateB are the two flows' goodputs in bits/s; Ratio is
	// A/B (non-ECN over ECN-capable), the paper's rate-balance metric.
	RateA, RateB float64
	Ratio        float64

	// Queue delay per packet over the measurement window (seconds).
	QMean, QP99 float64
	// Probability samples: Classic drop/mark prob for A, Scalable mark
	// prob for B (B falls back to the classic probability under PIE,
	// which applies one probability to everything).
	ProbA, ProbB Quantiles
	// Link utilization per sampling interval.
	Util Quantiles
	// Events is the cell's simulator-event count (run-record metric).
	Events uint64
}

// EventCount satisfies campaign.EventCounter for per-run events/sec records.
func (p SweepPoint) EventCount() uint64 { return p.Events }

// Quantiles summarizes a sample with the percentiles the figures plot.
type Quantiles struct {
	P1, P25, Mean, P99 float64
}

// CoexistenceSweep runs the full Figures 15–18 grid: for each link × RTT,
// each pair (Cubic vs DCTCP, Cubic vs ECN-Cubic) and each AQM (PIE, PI2).
// One call produces the data for all four figures. The grid's cells are
// independent single-bottleneck runs, so they fan out across o.Jobs workers;
// output order and values depend only on the matrix, never on scheduling.
func CoexistenceSweep(o Options) []SweepPoint {
	links := SweepLinksMbps
	rtts := SweepRTTs
	if o.Quick {
		links = []float64{4, 40, 200}
		rtts = []time.Duration{10 * time.Millisecond, 100 * time.Millisecond}
	}
	var tasks []campaign.Task
	for _, pair := range []string{"dctcp", "ecn-cubic"} {
		for _, aqmName := range []string{"pie", "pi2"} {
			for _, linkMbps := range links {
				for _, rtt := range rtts {
					pair, aqmName, linkMbps, rtt := pair, aqmName, linkMbps, rtt
					tasks = append(tasks, campaign.Task{
						Name:      "sweep",
						SeedIndex: len(tasks),
						Params: map[string]any{
							"pair": pair, "aqm": aqmName,
							"link_mbps": linkMbps, "rtt_ms": rtt.Seconds() * 1e3,
						},
						Run: func(tc *campaign.TaskCtx) any {
							return runSweepPoint(o, tc, linkMbps, rtt, aqmName, pair)
						},
					})
				}
			}
		}
	}
	recs := campaign.Execute(tasks, o.exec())
	out := make([]SweepPoint, len(recs))
	for i, rec := range recs {
		if p, ok := rec.Result.(SweepPoint); ok {
			out[i] = p
		}
	}
	return out
}

func runSweepPoint(o Options, tc *campaign.TaskCtx, linkMbps float64, rtt time.Duration, aqmName, pair string) SweepPoint {
	target := 20 * time.Millisecond
	factory, ok := FactoryByName(aqmName, target)
	if !ok {
		panic("unknown AQM " + aqmName)
	}
	// Converge for longer on big-BDP cells; measure over the second part.
	dur := o.scale(100 * time.Second)
	sc := Scenario{
		Seed:        tc.Seed,
		Watch:       tc.Watch,
		LinkRateBps: linkMbps * 1e6,
		NewAQM:      factory,
		Bulk: []traffic.BulkFlowSpec{
			{CC: "cubic", Count: 1, RTT: rtt, Label: "A"},
			{CC: pair, Count: 1, RTT: rtt, Label: "B"},
		},
		Duration: dur,
		WarmUp:   dur * 2 / 5,
	}
	res := Run(sc)
	pt := SweepPoint{
		LinkMbps: linkMbps, RTT: rtt, AQM: aqmName, Pair: pair,
		RateA:  res.Groups[0].MeanPerFlow(),
		RateB:  res.Groups[1].MeanPerFlow(),
		QMean:  res.Sojourn.Mean(),
		QP99:   res.Sojourn.Percentile(99),
		Events: res.Events,
	}
	if pt.RateB > 0 {
		pt.Ratio = pt.RateA / pt.RateB
	}
	pt.ProbA = quantiles(res.ClassicProb)
	if res.ScalableProb.N() > 0 {
		pt.ProbB = quantiles(res.ScalableProb)
	} else {
		pt.ProbB = pt.ProbA
	}
	pt.Util = quantiles(res.UtilSeries)
	return pt
}

// quantiles summarizes a collector into the figures' P1/P25/mean/P99 shape.
// Percentiles evaluates the whole family in one pass (a single sort for the
// exact Sample), instead of one copy-and-sort per quantile.
func quantiles(s interface {
	Percentiles(qs ...float64) []float64
	Mean() float64
}) Quantiles {
	v := s.Percentiles(1, 25, 99)
	return Quantiles{P1: v[0], P25: v[1], Mean: s.Mean(), P99: v[2]}
}

// PrintFig15 writes the rate-balance table (Figure 15).
func PrintFig15(w io.Writer, pts []SweepPoint) {
	fmt.Fprintln(w, "# Figure 15: throughput balance, one flow per congestion control")
	fmt.Fprintln(w, "# ratio = Cubic / {DCTCP|ECN-Cubic}; 1.0 = perfect coexistence")
	fmt.Fprintln(w, "pair\taqm\tlink_mbps\trtt_ms\trate_cubic_mbps\trate_other_mbps\tratio")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%s\t%.0f\t%.0f\t%.3f\t%.3f\t%.3f\n",
			p.Pair, p.AQM, p.LinkMbps, float64(p.RTT.Milliseconds()),
			p.RateA/1e6, p.RateB/1e6, p.Ratio)
	}
}

// PrintFig16 writes the queue-delay table (Figure 16).
func PrintFig16(w io.Writer, pts []SweepPoint) {
	fmt.Fprintln(w, "# Figure 16: queuing delay (mean, P99) per packet")
	fmt.Fprintln(w, "pair\taqm\tlink_mbps\trtt_ms\tqdelay_mean_ms\tqdelay_p99_ms")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%s\t%.0f\t%.0f\t%.2f\t%.2f\n",
			p.Pair, p.AQM, p.LinkMbps, float64(p.RTT.Milliseconds()),
			p.QMean*1e3, p.QP99*1e3)
	}
}

// PrintFig17 writes the mark/drop-probability table (Figure 17).
func PrintFig17(w io.Writer, pts []SweepPoint) {
	fmt.Fprintln(w, "# Figure 17: marking/dropping probability (%), P25/mean/P99")
	fmt.Fprintln(w, "pair\taqm\tlink_mbps\trtt_ms\tclassic_p25\tclassic_mean\tclassic_p99\tscal_p25\tscal_mean\tscal_p99")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%s\t%.0f\t%.0f\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\n",
			p.Pair, p.AQM, p.LinkMbps, float64(p.RTT.Milliseconds()),
			p.ProbA.P25*100, p.ProbA.Mean*100, p.ProbA.P99*100,
			p.ProbB.P25*100, p.ProbB.Mean*100, p.ProbB.P99*100)
	}
}

// PrintFig18 writes the utilization table (Figure 18).
func PrintFig18(w io.Writer, pts []SweepPoint) {
	fmt.Fprintln(w, "# Figure 18: link utilisation (%), P1/mean/P99 per 1 s interval")
	fmt.Fprintln(w, "pair\taqm\tlink_mbps\trtt_ms\tutil_p1\tutil_mean\tutil_p99")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%s\t%.0f\t%.0f\t%.1f\t%.1f\t%.1f\n",
			p.Pair, p.AQM, p.LinkMbps, float64(p.RTT.Milliseconds()),
			p.Util.P1*100, p.Util.Mean*100, p.Util.P99*100)
	}
}
