package experiments

import (
	"fmt"
	"io"
	"time"

	"pi2/internal/campaign"
	"pi2/internal/stats"
	"pi2/internal/traffic"
)

// SweepLinksMbps and SweepRTTs are the paper's coexistence grid
// (Figures 15–18): every combination of link rate and base RTT.
var (
	SweepLinksMbps = []float64{4, 12, 40, 120, 200}
	SweepRTTs      = []time.Duration{
		5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond,
		50 * time.Millisecond, 100 * time.Millisecond,
	}
)

// SweepPoint is one cell of the coexistence sweep: one Cubic flow (A,
// non-ECN) against one ECN-capable flow (B: DCTCP or ECN-Cubic), through
// one AQM.
type SweepPoint struct {
	LinkMbps float64
	RTT      time.Duration
	AQM      string // "pie" or "pi2"
	Pair     string // "dctcp" or "ecn-cubic"

	// RateA and RateB are the two flows' goodputs in bits/s; Ratio is
	// A/B (non-ECN over ECN-capable), the paper's rate-balance metric.
	RateA, RateB float64
	Ratio        float64

	// Queue delay per packet over the measurement window (seconds).
	QMean, QP99 float64
	// Probability samples: Classic drop/mark prob for A, Scalable mark
	// prob for B (B falls back to the classic probability under PIE,
	// which applies one probability to everything).
	ProbA, ProbB Quantiles
	// Link utilization per sampling interval.
	Util Quantiles
	// Events is the cell's simulator-event count (run-record metric).
	Events uint64

	// Reps > 1 marks a cross-seed aggregate (-reps N): rates and
	// probability/utilization quantiles are cross-seed means, queue-delay
	// quantiles come from the reps' pooled sojourn samples (Sample.Merge),
	// and the *HW fields are 95% confidence half-widths. Reps <= 1 is a
	// single run with all of these zero.
	Reps                     int
	RatioHW, QMeanHW, QP99HW float64

	// Soj is this rep's exact sojourn sample (pooled across reps via
	// Merge). Exported so it survives the fleet wire (gob drops unexported
	// fields); excluded from -json, which never carried it.
	Soj *stats.Sample `json:"-"`
}

// EventCount satisfies campaign.EventCounter for per-run events/sec records.
func (p SweepPoint) EventCount() uint64 { return p.Events }

// Quantiles summarizes a sample with the percentiles the figures plot.
type Quantiles struct {
	P1, P25, Mean, P99 float64
}

// sweepTasks builds the pair × AQM × link × RTT (× rep) matrix. The
// innermost rep loop keeps SeedIndex = len(tasks): at reps=1 the cell→seed
// mapping is exactly the historical one, so the golden sweep tables stay
// byte-identical.
func sweepTasks(o Options) []campaign.Task {
	links := SweepLinksMbps
	rtts := SweepRTTs
	if o.Quick {
		links = []float64{4, 40, 200}
		rtts = []time.Duration{10 * time.Millisecond, 100 * time.Millisecond}
	}
	reps := o.reps()
	var tasks []campaign.Task
	for _, pair := range []string{"dctcp", "ecn-cubic"} {
		for _, aqmName := range []string{"pie", "pi2"} {
			for _, linkMbps := range links {
				for _, rtt := range rtts {
					for rep := 0; rep < reps; rep++ {
						pair, aqmName, linkMbps, rtt := pair, aqmName, linkMbps, rtt
						tasks = append(tasks, campaign.Task{
							Name:      "sweep",
							SeedIndex: len(tasks),
							Params: map[string]any{
								"pair": pair, "aqm": aqmName,
								"link_mbps": linkMbps, "rtt_ms": rtt.Seconds() * 1e3,
								"rep": rep,
							},
							Run: func(tc *campaign.TaskCtx) any {
								return runSweepPoint(o, tc, linkMbps, rtt, aqmName, pair)
							},
						})
					}
				}
			}
		}
	}
	return tasks
}

// CoexistenceSweep runs the full Figures 15–18 grid: for each link × RTT,
// each pair (Cubic vs DCTCP, Cubic vs ECN-Cubic) and each AQM (PIE, PI2).
// One call produces the data for all four figures. The grid's cells are
// independent single-bottleneck runs, so they fan out across o.Jobs workers
// (or a worker-process fleet); output order and values depend only on the
// matrix, never on scheduling. Records stream: each cell's reps aggregate
// as soon as the group completes and the full records are dropped, so peak
// memory holds per-group points, not the grid.
func CoexistenceSweep(o Options) []SweepPoint {
	tasks := sweepTasks(o)
	reps := o.reps()
	out := make([]SweepPoint, len(tasks)/reps)
	groupFold(tasks, o.execFor("sweep", gridSpec{}), reps, func(group int, recs []campaign.RunRecord) {
		var pts []SweepPoint
		for _, rec := range recs {
			if p, ok := rec.Result.(SweepPoint); ok {
				pts = append(pts, p)
			}
		}
		if len(pts) == 0 {
			out[group] = SweepPoint{}
			return
		}
		out[group] = aggregateSweep(pts)
	})
	return out
}

// aggregateSweep folds one cell's repetitions into a banded point: rates and
// the probability/utilization quantiles become cross-seed means, queue-delay
// quantiles are recomputed over the reps' pooled sojourn samples
// (Sample.Merge), and the ratio/queue-delay half-widths are 95% CIs over the
// per-rep values. One rep passes through untouched (golden-stable).
func aggregateSweep(pts []SweepPoint) SweepPoint {
	if len(pts) == 1 {
		return pts[0]
	}
	agg := pts[0]
	var rateA, rateB, ratio, qmean, qp99 stats.Welford
	pooled := &stats.Sample{}
	var probA, probB, util quantilesWelford
	var events uint64
	for _, p := range pts {
		rateA.Add(p.RateA)
		rateB.Add(p.RateB)
		ratio.Add(p.Ratio)
		qmean.Add(p.QMean)
		qp99.Add(p.QP99)
		if p.Soj != nil {
			pooled.Merge(p.Soj)
		}
		probA.add(p.ProbA)
		probB.add(p.ProbB)
		util.add(p.Util)
		events += p.Events
	}
	agg.Reps = len(pts)
	agg.RateA, agg.RateB = rateA.Mean(), rateB.Mean()
	agg.Ratio, agg.RatioHW = ratio.Mean(), ci95(ratio)
	agg.QMeanHW, agg.QP99HW = ci95(qmean), ci95(qp99)
	if pooled.N() > 0 {
		agg.QMean = pooled.Mean()
		agg.QP99 = pooled.Percentile(99)
	} else {
		agg.QMean, agg.QP99 = qmean.Mean(), qp99.Mean()
	}
	agg.ProbA, agg.ProbB, agg.Util = probA.mean(), probB.mean(), util.mean()
	agg.Events = events / uint64(len(pts))
	agg.Soj = pooled
	return agg
}

// quantilesWelford accumulates Quantiles element-wise across repetitions.
type quantilesWelford struct {
	p1, p25, mid, p99 stats.Welford
}

func (q *quantilesWelford) add(v Quantiles) {
	q.p1.Add(v.P1)
	q.p25.Add(v.P25)
	q.mid.Add(v.Mean)
	q.p99.Add(v.P99)
}

func (q *quantilesWelford) mean() Quantiles {
	return Quantiles{P1: q.p1.Mean(), P25: q.p25.Mean(), Mean: q.mid.Mean(), P99: q.p99.Mean()}
}

func runSweepPoint(o Options, tc *campaign.TaskCtx, linkMbps float64, rtt time.Duration, aqmName, pair string) SweepPoint {
	target := o.target()
	factory, ok := FactoryByName(aqmName, target)
	if !ok {
		panic("unknown AQM " + aqmName)
	}
	// Converge for longer on big-BDP cells; measure over the second part.
	dur := o.scale(100 * time.Second)
	sc := Scenario{
		Seed:        tc.Seed,
		Watch:       tc.Watch,
		Shards:      tc.Shards,
		LinkRateBps: linkMbps * 1e6,
		NewAQM:      factory,
		Bulk: []traffic.BulkFlowSpec{
			{CC: "cubic", Count: 1, RTT: rtt, Label: "A"},
			{CC: pair, Count: 1, RTT: rtt, Label: "B"},
		},
		Duration: dur,
		WarmUp:   dur * 2 / 5,
	}
	res := Run(sc)
	pt := SweepPoint{
		LinkMbps: linkMbps, RTT: rtt, AQM: aqmName, Pair: pair,
		RateA:  res.Groups[0].MeanPerFlow(),
		RateB:  res.Groups[1].MeanPerFlow(),
		QMean:  res.Sojourn.Mean(),
		QP99:   res.Sojourn.Percentile(99),
		Events: res.Events,
	}
	if pt.RateB > 0 {
		pt.Ratio = pt.RateA / pt.RateB
	}
	pt.Soj, _ = res.Sojourn.(*stats.Sample)
	pt.ProbA = quantiles(res.ClassicProb)
	if res.ScalableProb.N() > 0 {
		pt.ProbB = quantiles(res.ScalableProb)
	} else {
		pt.ProbB = pt.ProbA
	}
	pt.Util = quantiles(res.UtilSeries)
	return pt
}

// quantiles summarizes a collector into the figures' P1/P25/mean/P99 shape.
// Percentiles evaluates the whole family in one pass (a single sort for the
// exact Sample), instead of one copy-and-sort per quantile.
func quantiles(s interface {
	Percentiles(qs ...float64) []float64
	Mean() float64
}) Quantiles {
	v := s.Percentiles(1, 25, 99)
	return Quantiles{P1: v[0], P25: v[1], Mean: s.Mean(), P99: v[2]}
}

// PrintFig15 writes the rate-balance table (Figure 15).
func PrintFig15(w io.Writer, pts []SweepPoint) {
	fmt.Fprintln(w, "# Figure 15: throughput balance, one flow per congestion control")
	fmt.Fprintln(w, "# ratio = Cubic / {DCTCP|ECN-Cubic}; 1.0 = perfect coexistence")
	if len(pts) > 0 && pts[0].Reps > 1 {
		fmt.Fprintf(w, "# %d reps per cell with perturbed seeds: cross-seed means, ± = 95%% CI\n", pts[0].Reps)
		fmt.Fprintln(w, "pair\taqm\tlink_mbps\trtt_ms\trate_cubic_mbps\trate_other_mbps\tratio\tratio_ci")
		for _, p := range pts {
			fmt.Fprintf(w, "%s\t%s\t%.0f\t%.0f\t%.3f\t%.3f\t%.3f\t±%.3f\n",
				p.Pair, p.AQM, p.LinkMbps, float64(p.RTT.Milliseconds()),
				p.RateA/1e6, p.RateB/1e6, p.Ratio, p.RatioHW)
		}
		return
	}
	fmt.Fprintln(w, "pair\taqm\tlink_mbps\trtt_ms\trate_cubic_mbps\trate_other_mbps\tratio")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%s\t%.0f\t%.0f\t%.3f\t%.3f\t%.3f\n",
			p.Pair, p.AQM, p.LinkMbps, float64(p.RTT.Milliseconds()),
			p.RateA/1e6, p.RateB/1e6, p.Ratio)
	}
}

// PrintFig16 writes the queue-delay table (Figure 16).
func PrintFig16(w io.Writer, pts []SweepPoint) {
	fmt.Fprintln(w, "# Figure 16: queuing delay (mean, P99) per packet")
	if len(pts) > 0 && pts[0].Reps > 1 {
		fmt.Fprintf(w, "# %d reps per cell: pooled-sample quantiles, ± = 95%% CI over per-rep values\n", pts[0].Reps)
		fmt.Fprintln(w, "pair\taqm\tlink_mbps\trtt_ms\tqdelay_mean_ms\tqdelay_mean_ci\tqdelay_p99_ms\tqdelay_p99_ci")
		for _, p := range pts {
			fmt.Fprintf(w, "%s\t%s\t%.0f\t%.0f\t%.2f\t±%.2f\t%.2f\t±%.2f\n",
				p.Pair, p.AQM, p.LinkMbps, float64(p.RTT.Milliseconds()),
				p.QMean*1e3, p.QMeanHW*1e3, p.QP99*1e3, p.QP99HW*1e3)
		}
		return
	}
	fmt.Fprintln(w, "pair\taqm\tlink_mbps\trtt_ms\tqdelay_mean_ms\tqdelay_p99_ms")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%s\t%.0f\t%.0f\t%.2f\t%.2f\n",
			p.Pair, p.AQM, p.LinkMbps, float64(p.RTT.Milliseconds()),
			p.QMean*1e3, p.QP99*1e3)
	}
}

// PrintFig17 writes the mark/drop-probability table (Figure 17).
func PrintFig17(w io.Writer, pts []SweepPoint) {
	fmt.Fprintln(w, "# Figure 17: marking/dropping probability (%), P25/mean/P99")
	fmt.Fprintln(w, "pair\taqm\tlink_mbps\trtt_ms\tclassic_p25\tclassic_mean\tclassic_p99\tscal_p25\tscal_mean\tscal_p99")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%s\t%.0f\t%.0f\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\n",
			p.Pair, p.AQM, p.LinkMbps, float64(p.RTT.Milliseconds()),
			p.ProbA.P25*100, p.ProbA.Mean*100, p.ProbA.P99*100,
			p.ProbB.P25*100, p.ProbB.Mean*100, p.ProbB.P99*100)
	}
}

// PrintFig18 writes the utilization table (Figure 18).
func PrintFig18(w io.Writer, pts []SweepPoint) {
	fmt.Fprintln(w, "# Figure 18: link utilisation (%), P1/mean/P99 per 1 s interval")
	fmt.Fprintln(w, "pair\taqm\tlink_mbps\trtt_ms\tutil_p1\tutil_mean\tutil_p99")
	for _, p := range pts {
		fmt.Fprintf(w, "%s\t%s\t%.0f\t%.0f\t%.1f\t%.1f\t%.1f\n",
			p.Pair, p.AQM, p.LinkMbps, float64(p.RTT.Milliseconds()),
			p.Util.P1*100, p.Util.Mean*100, p.Util.P99*100)
	}
}
