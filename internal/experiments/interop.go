package experiments

import (
	"errors"
	"fmt"
	"io"
	"time"

	"pi2/internal/campaign"
	"pi2/internal/core"
	"pi2/internal/link"
	"pi2/internal/sim"
	"pi2/internal/stats"
	"pi2/internal/tcp"
	"pi2/internal/traffic"
)

// The interop family is the L4S conformance tier: every congestion control
// crossed with every ECN-feedback negotiation outcome, through each AQM —
// including deliberately broken combinations (a Classic control negotiating
// accurate ECN sends ECT(1) but ignores per-ACK CE, the sender RFC 9331
// forbids). Each cell runs two flows of the control under test against two
// loss-based Cubic reference flows at equal RTT and reports how capacity,
// marks, drops and queue delay split between them. The headline invariant is
// the Prague/Cubic rate ratio through DualPI2: the coupling is designed to
// make it ~1 at equal RTT.
const (
	interopLinkBps = 40e6
	interopRTT     = 10 * time.Millisecond
	// interopBuffer bounds the queue for the non-conformant arms: an
	// ECT(1) sender that ignores CE only backs off at overflow, so the
	// buffer (not the AQM) is what limits its standing queue. 2500 full
	// packets ≈ 750 ms at 40 Mb/s — enough to make the failure mode
	// visible in q_p99 without letting the queue grow unboundedly.
	interopBuffer = 2500
)

// InteropCCs is the congestion-control axis of the conformance matrix.
var InteropCCs = []string{"prague", "dctcp", "cubic", "reno"}

// InteropFeedbacks is the ECN-negotiation axis (see tcp.NewCCFeedback).
var InteropFeedbacks = []string{"classic", "accurate"}

// InteropAQMs are the disciplines each (cc, feedback) arm traverses.
var InteropAQMs = []string{"pie", "pi2", "dualpi2"}

// InteropPoint is one cell of the conformance matrix: one control under one
// negotiated feedback mode through one AQM, sharing the bottleneck with the
// Cubic reference flows.
type InteropPoint struct {
	CC       string
	Feedback string
	AQM      string

	// TestShare is the test group's fraction of total TCP goodput
	// (0.5 = perfect sharing with the reference group).
	TestShare float64
	// RateRatio is test-group goodput over reference-group goodput
	// (groups have equal flow counts, so this is also the per-flow ratio).
	RateRatio float64
	// Marks and Drops are whole-run bottleneck totals.
	Marks, Drops int
	// QMeanMs / QP99Ms summarize per-packet queuing delay.
	QMeanMs, QP99Ms float64
	// Util is the bottleneck's busy fraction; Jain is fairness over all
	// four flows.
	Util, Jain float64

	Events uint64
}

// EventCount satisfies campaign.EventCounter for per-run events/sec records.
func (p InteropPoint) EventCount() uint64 { return p.Events }

// Metrics implements campaign.MetricsReporter — the fingerprint the golden
// harness tracks for each conformance cell.
func (p InteropPoint) Metrics() map[string]float64 {
	return map[string]float64{
		"test_share":  p.TestShare,
		"rate_ratio":  p.RateRatio,
		"marks":       float64(p.Marks),
		"drops_total": float64(p.Drops),
		"q_mean_ms":   p.QMeanMs,
		"q_p99_ms":    p.QP99Ms,
		"util":        p.Util,
		"jain":        p.Jain,
		"events":      float64(p.Events),
	}
}

// Interop runs the conformance matrix: every cc × feedback × AQM cell across
// o.Jobs workers. The three AQM arms of one (cc, feedback) pair share a seed
// index so the comparison across disciplines is paired. Cells always run on
// the classic single-simulator path (never sharded): conformance
// fingerprints are byte-stable across every harness parallelism knob, which
// the determinism tests pin (-jobs and -shards must not move a single bit).
func Interop(o Options) ([]InteropPoint, []string, error) {
	tasks := interopTasks(o)
	out := make([]InteropPoint, len(tasks))
	bad := make([]bool, len(tasks))
	// Records fold by index as they stream in; failures are listed in
	// matrix order afterwards (deterministic under any completion order).
	campaign.ExecuteStream(tasks, o.execFor("interop", gridSpec{}), func(rec campaign.RunRecord) {
		cc, _ := rec.Params["cc"].(string)
		fb, _ := rec.Params["fb"].(string)
		aqmName, _ := rec.Params["aqm"].(string)
		p, ok := rec.Result.(InteropPoint)
		if rec.Err != "" || !ok {
			bad[rec.Index] = true
			out[rec.Index] = InteropPoint{CC: cc, Feedback: fb, AQM: aqmName}
			return
		}
		out[rec.Index] = p
	})
	var failed []string
	for i, b := range bad {
		if b {
			failed = append(failed, fmt.Sprintf("%s/%s/%s", out[i].CC, out[i].Feedback, out[i].AQM))
		}
	}
	if len(failed) > 0 {
		return out, failed, errors.New("interop cells failed: " + fmt.Sprint(failed))
	}
	return out, nil, nil
}

// interopTasks builds the cc × feedback × AQM matrix; the AQM arms of one
// (cc, feedback) pair share a seed index.
func interopTasks(o Options) []campaign.Task {
	var tasks []campaign.Task
	for ci, cc := range InteropCCs {
		for fi, fb := range InteropFeedbacks {
			for _, aqmName := range InteropAQMs {
				cc, fb, aqmName := cc, fb, aqmName
				tasks = append(tasks, campaign.Task{
					Name:      "interop",
					SeedIndex: ci*len(InteropFeedbacks) + fi, // paired across AQMs
					Params:    map[string]any{"cc": cc, "fb": fb, "aqm": aqmName},
					Run: func(tc *campaign.TaskCtx) any {
						return InteropCell(o, tc.Seed, tc.Watch, cc, fb, aqmName)
					},
				})
			}
		}
	}
	return tasks
}

func interopDuration(o Options) time.Duration {
	return o.scale(60 * time.Second)
}

// InteropCell runs one conformance cell: two flows of cc under the given
// feedback arm vs two loss-based Cubic reference flows at equal RTT. It is
// exported so the fairness-invariant tests can run a single cell (at a
// longer horizon) without paying for the whole matrix.
func InteropCell(o Options, seed int64, watch func(campaign.Canceler), cc, fb, aqmName string) InteropPoint {
	if aqmName == "dualpi2" {
		return runInteropDual(o, seed, watch, cc, fb)
	}
	target := o.target()
	factory, ok := FactoryByName(aqmName, target)
	if !ok {
		panic("unknown AQM " + aqmName)
	}
	dur := interopDuration(o)
	sc := Scenario{
		Seed:          seed,
		Watch:         watch,
		LinkRateBps:   interopLinkBps,
		BufferPackets: interopBuffer,
		NewAQM:        factory,
		// Shards deliberately unset: see Interop.
		Bulk: []traffic.BulkFlowSpec{
			{CC: cc, Feedback: fb, Count: 2, RTT: interopRTT, Label: "test"},
			{CC: "cubic", Count: 2, RTT: interopRTT, Label: "ref"},
		},
		Duration: dur,
		WarmUp:   dur / 4,
	}
	r := Run(sc)
	test, ref := r.Groups[0], r.Groups[1]
	p := InteropPoint{
		CC:       cc,
		Feedback: fb,
		AQM:      aqmName,
		Marks:    r.Marks,
		Drops:    r.DropsAQM + r.DropsOverflow,
		QMeanMs:  r.Sojourn.Mean() * 1e3,
		QP99Ms:   r.Sojourn.Percentile(99) * 1e3,
		Util:     r.Utilization,
		Jain:     jainOf(r),
		Events:   r.Events,
	}
	if tot := test.Total() + ref.Total(); tot > 0 {
		p.TestShare = test.Total() / tot
	}
	if ref.Total() > 0 {
		p.RateRatio = test.Total() / ref.Total()
	}
	return p
}

// runInteropDual is the DualPI2 cell, hand-wired around core.DualLink (the
// scenario runner drives single-queue AQMs only), mirroring runChaosDual's
// placement of warm-up resets and audits.
func runInteropDual(o Options, seed int64, watch func(campaign.Canceler), cc, fb string) InteropPoint {
	dur := interopDuration(o)
	warm := dur / 4

	s := sim.New(seed)
	if watch != nil {
		watch(s)
	}
	d := link.NewDispatcher()
	dual := core.NewDualLink(s, interopLinkBps, core.DualConfig{
		Config:        core.Config{Target: o.target()},
		BufferPackets: interopBuffer,
	}, d.Deliver)
	soj := &stats.Sample{}
	dual.LSojourn = soj
	dual.CSojourn = soj

	var test, ref []*tcp.Endpoint
	id := 1
	mk := func(ccImpl tcp.CongestionControl, mode tcp.ECNMode) *tcp.Endpoint {
		ep := tcp.NewWithEnqueuer(s, dual.Enqueue, tcp.Config{
			ID: id, CC: ccImpl, ECN: mode, BaseRTT: interopRTT,
		})
		d.Register(id, ep.DeliverData)
		ep.Start()
		id++
		return ep
	}
	for i := 0; i < 2; i++ {
		ccImpl, mode, err := tcp.NewCCFeedback(cc, fb)
		if err != nil {
			panic(err)
		}
		test = append(test, mk(ccImpl, mode))
	}
	for i := 0; i < 2; i++ {
		ref = append(ref, mk(&tcp.Cubic{}, tcp.ECNOff))
	}
	// Marks/drops baselines taken at the warm boundary: the scenario runner
	// resets the link counters there, and the paired pi2/dualpi2 columns
	// must count over the same measurement window to be comparable.
	var lMarks0, cMarks0, drops0 int
	s.At(warm, func() {
		now := s.Now()
		for _, ep := range test {
			ep.Goodput.Reset(now)
		}
		for _, ep := range ref {
			ep.Goodput.Reset(now)
		}
		soj.Reset()
		lMarks0, cMarks0 = dual.Marks()
		drops0 = dual.Drops()
	})
	s.RunUntil(dur)
	if msg := dual.Audit().Err("duallink"); msg != "" {
		panic(msg)
	}
	now := s.Now()
	sum := func(eps []*tcp.Endpoint) (tot float64, rates []float64) {
		for _, ep := range eps {
			r := ep.Goodput.RateBps(now)
			tot += r
			rates = append(rates, r)
		}
		return
	}
	testTot, testRates := sum(test)
	refTot, refRates := sum(ref)
	lMarks, cMarks := dual.Marks()
	p := InteropPoint{
		CC:       cc,
		Feedback: fb,
		AQM:      "dualpi2",
		Marks:    lMarks + cMarks - lMarks0 - cMarks0,
		Drops:    dual.Drops() - drops0,
		QMeanMs:  soj.Mean() * 1e3,
		QP99Ms:   soj.Percentile(99) * 1e3,
		Util:     dual.Utilization(),
		Jain:     stats.JainIndex(append(testRates, refRates...)),
		Events:   s.Processed(),
	}
	if tot := testTot + refTot; tot > 0 {
		p.TestShare = testTot / tot
	}
	if refTot > 0 {
		p.RateRatio = testTot / refTot
	}
	return p
}

// PrintInterop writes the conformance table. Failed cells (named in failed)
// render as FAILED rows so a partially-degraded matrix still reports every
// cell it completed.
func PrintInterop(w io.Writer, pts []InteropPoint, failed []string) {
	fmt.Fprintln(w, "# Interop tier: 2 flows under test + 2 cubic (loss-based) refs, 40 Mb/s, RTT 10 ms")
	fmt.Fprintln(w, "# feedback arms: classic = RFC 3168 ECE/CWR on ECT(0); accurate = per-ACK CE on ECT(1)")
	fmt.Fprintln(w, "# (cubic/reno + accurate is the deliberately NON-CONFORMANT ECT(1)-but-ignores-CE sender)")
	fmt.Fprintln(w, "cc\tfeedback\taqm\ttest_share\trate_ratio\tmarks\tdrops\tq_mean_ms\tq_p99_ms\tutil\tjain")
	bad := make(map[string]bool, len(failed))
	for _, f := range failed {
		bad[f] = true
	}
	for _, p := range pts {
		if bad[p.CC+"/"+p.Feedback+"/"+p.AQM] {
			fmt.Fprintf(w, "%s\t%s\t%s\tFAILED\tFAILED\tFAILED\tFAILED\tFAILED\tFAILED\tFAILED\tFAILED\n",
				p.CC, p.Feedback, p.AQM)
			continue
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%.3f\t%.3f\t%d\t%d\t%.2f\t%.2f\t%.3f\t%.3f\n",
			p.CC, p.Feedback, p.AQM, p.TestShare, p.RateRatio, p.Marks, p.Drops,
			p.QMeanMs, p.QP99Ms, p.Util, p.Jain)
	}
}
