package experiments

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"pi2/internal/campaign"
	"pi2/internal/traffic"
)

func testScenario(seed int64) Scenario {
	return Scenario{
		Seed:        seed,
		LinkRateBps: 10e6,
		NewAQM:      PI2Factory(20 * time.Millisecond),
		Bulk: []traffic.BulkFlowSpec{
			{CC: "cubic", Count: 1, RTT: 10 * time.Millisecond, Label: "A"},
			{CC: "dctcp", Count: 1, RTT: 10 * time.Millisecond, Label: "B"},
		},
		UDP:      []traffic.UDPSpec{{RateBps: 2e6}},
		Duration: 5 * time.Second,
		WarmUp:   2 * time.Second,
	}
}

// TestConcurrentRunsBitIdentical runs the same Scenario on several goroutines
// at once: each run owns its Simulator and RNG, so concurrency must not leak
// into the results. Any shared mutable state (a global rand, a package-level
// counter feeding the simulation) would break this — and trip -race.
func TestConcurrentRunsBitIdentical(t *testing.T) {
	const n = 4
	results := make([]*Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = Run(testScenario(42))
		}()
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("concurrent run %d differs from run 0", i)
		}
	}
}

// TestSweepIdenticalAcrossJobs: the quick coexistence grid must produce the
// same points whether it runs serially or on a wide pool — per-cell seeds
// depend only on the cell's index, never on scheduling.
func TestSweepIdenticalAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in -short mode")
	}
	serial := CoexistenceSweep(Options{Quick: true, Jobs: 1})
	wide := CoexistenceSweep(Options{Quick: true, Jobs: 8})
	if !reflect.DeepEqual(serial, wide) {
		t.Fatal("sweep points differ between jobs=1 and jobs=8")
	}
}

// TestGridSeedsAreIndexStable: every grid cell's derived seed is a pure
// function of (base seed, cell index) — recorded seeds must match the
// derivation regardless of how many workers ran the grid.
func TestGridSeedsAreIndexStable(t *testing.T) {
	var tasks []campaign.Task
	for i := 0; i < 12; i++ {
		tasks = append(tasks, campaign.Task{
			Name:      "seedcheck",
			SeedIndex: i,
			Run:       func(seed int64) any { return seed },
		})
	}
	for _, jobs := range []int{1, 3, 8} {
		recs := campaign.Execute(tasks, campaign.ExecOptions{Jobs: jobs, BaseSeed: 7})
		for i, rec := range recs {
			want := campaign.DeriveSeed(7, i)
			if rec.Seed != want || rec.Result.(int64) != want {
				t.Fatalf("jobs=%d cell %d: seed %d, want %d", jobs, i, rec.Seed, want)
			}
		}
	}
}

// TestUDPStatsAccounted pins satellite coverage for the per-source UDP
// accounting: an overloaded bottleneck must report sent, delivered and lost
// bytes that add up, with a strictly positive loss ratio.
func TestUDPStatsAccounted(t *testing.T) {
	sc := testScenario(1)
	sc.UDP = []traffic.UDPSpec{{RateBps: 20e6}} // 2x the 10 Mb/s link: forced loss
	res := Run(sc)
	if len(res.UDP) != 1 {
		t.Fatalf("got %d UDP results, want 1", len(res.UDP))
	}
	u := res.UDP[0]
	if u.SentBytes <= 0 || u.DeliveredBytes <= 0 {
		t.Fatalf("empty UDP accounting: %+v", u)
	}
	if u.LostBytes != u.SentBytes-u.DeliveredBytes {
		t.Errorf("lost %d != sent %d - delivered %d", u.LostBytes, u.SentBytes, u.DeliveredBytes)
	}
	if u.LossRatio < 0.2 {
		t.Errorf("loss ratio %.3f under 2x overload, want substantial", u.LossRatio)
	}
	if u.DeliveredBps <= 0 || u.DeliveredBps > sc.LinkRateBps*1.05 {
		t.Errorf("delivered rate %.0f bps implausible for a %.0f bps link", u.DeliveredBps, sc.LinkRateBps)
	}
}
