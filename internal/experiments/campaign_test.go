package experiments

import (
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"pi2/internal/campaign"
	"pi2/internal/sim"
	"pi2/internal/traffic"
)

func testScenario(seed int64) Scenario {
	return Scenario{
		Seed:        seed,
		LinkRateBps: 10e6,
		NewAQM:      PI2Factory(20 * time.Millisecond),
		Bulk: []traffic.BulkFlowSpec{
			{CC: "cubic", Count: 1, RTT: 10 * time.Millisecond, Label: "A"},
			{CC: "dctcp", Count: 1, RTT: 10 * time.Millisecond, Label: "B"},
		},
		UDP:      []traffic.UDPSpec{{RateBps: 2e6}},
		Duration: 5 * time.Second,
		WarmUp:   2 * time.Second,
	}
}

// TestConcurrentRunsBitIdentical runs the same Scenario on several goroutines
// at once: each run owns its Simulator and RNG, so concurrency must not leak
// into the results. Any shared mutable state (a global rand, a package-level
// counter feeding the simulation) would break this — and trip -race.
func TestConcurrentRunsBitIdentical(t *testing.T) {
	const n = 4
	results := make([]*Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = Run(testScenario(42))
		}()
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("concurrent run %d differs from run 0", i)
		}
	}
}

// TestSweepIdenticalAcrossJobs: the quick coexistence grid must produce the
// same points whether it runs serially or on a wide pool — per-cell seeds
// depend only on the cell's index, never on scheduling.
func TestSweepIdenticalAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in -short mode")
	}
	serial := CoexistenceSweep(Options{Quick: true, Jobs: 1})
	wide := CoexistenceSweep(Options{Quick: true, Jobs: 8})
	if !reflect.DeepEqual(serial, wide) {
		t.Fatal("sweep points differ between jobs=1 and jobs=8")
	}
}

// TestGridSeedsAreIndexStable: every grid cell's derived seed is a pure
// function of (base seed, cell index) — recorded seeds must match the
// derivation regardless of how many workers ran the grid.
func TestGridSeedsAreIndexStable(t *testing.T) {
	var tasks []campaign.Task
	for i := 0; i < 12; i++ {
		tasks = append(tasks, campaign.Task{
			Name:      "seedcheck",
			SeedIndex: i,
			Run:       func(tc *campaign.TaskCtx) any { return tc.Seed },
		})
	}
	for _, jobs := range []int{1, 3, 8} {
		recs := campaign.Execute(tasks, campaign.ExecOptions{Jobs: jobs, BaseSeed: 7})
		for i, rec := range recs {
			want := campaign.DeriveSeed(7, i)
			if rec.Seed != want || rec.Result.(int64) != want {
				t.Fatalf("jobs=%d cell %d: seed %d, want %d", jobs, i, rec.Seed, want)
			}
		}
	}
}

// TestRunRecordsIdenticalAcrossJobs runs a registered experiment through the
// campaign engine at jobs=1 and jobs=8 and compares the full run records —
// seeds, simulated event counts and scalar metrics. With per-simulation
// packet pools and the slab scheduler this doubles as the pooling-safety
// determinism check: any cross-run sharing of recycled packets or scheduler
// slots would perturb event counts or metrics between worker widths.
func TestRunRecordsIdenticalAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in -short mode")
	}
	capture := func(jobs int) []campaign.RunRecord {
		exp, ok := campaign.Lookup("fig12")
		if !ok {
			t.Fatal("fig12 not registered")
		}
		col := &campaign.Collector{}
		ctx := &campaign.Context{Quick: true, TimeDiv: 20, Seed: 1, Jobs: jobs, Collector: col}
		if err := exp.Run(ctx, discard{}); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		recs := col.Records()
		sort.Slice(recs, func(i, j int) bool {
			if recs[i].Name != recs[j].Name {
				return recs[i].Name < recs[j].Name
			}
			return recs[i].Index < recs[j].Index
		})
		return recs
	}
	serial := capture(1)
	wide := capture(8)
	if len(serial) == 0 || len(serial) != len(wide) {
		t.Fatalf("record counts differ: %d vs %d", len(serial), len(wide))
	}
	for i := range serial {
		a, b := serial[i], wide[i]
		if a.Name != b.Name || a.Index != b.Index || a.Seed != b.Seed {
			t.Fatalf("cell %d identity differs: %s[%d]/%d vs %s[%d]/%d",
				i, a.Name, a.Index, a.Seed, b.Name, b.Index, b.Seed)
		}
		if a.Events != b.Events {
			t.Errorf("%s[%d]: events %d (jobs=1) vs %d (jobs=8)", a.Name, a.Index, a.Events, b.Events)
		}
		if !reflect.DeepEqual(a.Metrics, b.Metrics) {
			t.Errorf("%s[%d]: metrics differ between jobs=1 and jobs=8", a.Name, a.Index)
		}
		if a.Err != "" || b.Err != "" {
			t.Errorf("%s[%d]: cell failed: %q / %q", a.Name, a.Index, a.Err, b.Err)
		}
	}
}

// discard is an io.Writer that swallows the experiment's printed output.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestUDPStatsAccounted pins satellite coverage for the per-source UDP
// accounting: an overloaded bottleneck must report sent, delivered and lost
// bytes that add up, with a strictly positive loss ratio.
func TestUDPStatsAccounted(t *testing.T) {
	sc := testScenario(1)
	sc.UDP = []traffic.UDPSpec{{RateBps: 20e6}} // 2x the 10 Mb/s link: forced loss
	res := Run(sc)
	if len(res.UDP) != 1 {
		t.Fatalf("got %d UDP results, want 1", len(res.UDP))
	}
	u := res.UDP[0]
	if u.SentBytes <= 0 || u.DeliveredBytes <= 0 {
		t.Fatalf("empty UDP accounting: %+v", u)
	}
	if u.LostBytes != u.SentBytes-u.DeliveredBytes {
		t.Errorf("lost %d != sent %d - delivered %d", u.LostBytes, u.SentBytes, u.DeliveredBytes)
	}
	if u.LossRatio < 0.2 {
		t.Errorf("loss ratio %.3f under 2x overload, want substantial", u.LossRatio)
	}
	if u.DeliveredBps <= 0 || u.DeliveredBps > sc.LinkRateBps*1.05 {
		t.Errorf("delivered rate %.0f bps implausible for a %.0f bps link", u.DeliveredBps, sc.LinkRateBps)
	}
}

// TestWatchdogKillsHungSimCell is the end-to-end robustness check with a
// real simulator: a cell whose event loop never reaches its horizon is
// cooperatively canceled by the wall-clock watchdog, the grid still returns
// a record for every cell, and healthy cells are untouched.
func TestWatchdogKillsHungSimCell(t *testing.T) {
	tasks := []campaign.Task{
		{Name: "healthy", SeedIndex: 0, Run: func(tc *campaign.TaskCtx) any {
			return Run(testScenario(tc.Seed))
		}},
		{Name: "hung", SeedIndex: 1, Run: func(tc *campaign.TaskCtx) any {
			s := sim.New(tc.Seed)
			tc.Watch(s)
			s.Every(time.Nanosecond, func() {}) // event storm: horizon never reached
			s.RunUntil(time.Hour)
			return "unreachable"
		}},
	}
	recs := campaign.Execute(tasks, campaign.ExecOptions{
		Jobs: 2, BaseSeed: 3,
		Watchdog: campaign.Watchdog{Timeout: 150 * time.Millisecond, Poll: 10 * time.Millisecond},
	})
	if recs[0].Err != "" {
		t.Errorf("healthy cell failed: %q", recs[0].Err)
	}
	if _, ok := recs[0].Result.(*Result); !ok {
		t.Error("healthy cell lost its result")
	}
	hung := recs[1]
	if !hung.TimedOut {
		t.Fatalf("hung sim cell not marked TimedOut: %+v", hung)
	}
	if !strings.Contains(hung.Err, "watchdog") {
		t.Errorf("error %q does not name the watchdog", hung.Err)
	}
	if hung.Result != nil {
		t.Errorf("hung cell has a result: %v", hung.Result)
	}
}

// TestChaosDeterministicAcrossJobs: the chaos grid — impairments, retries
// machinery and all — must produce identical points at any worker count.
func TestChaosDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in -short mode")
	}
	o := Options{Quick: true, TimeDiv: 40}
	serial, failedS, errS := Chaos(Options{Quick: o.Quick, TimeDiv: o.TimeDiv, Jobs: 1})
	wide, failedW, errW := Chaos(Options{Quick: o.Quick, TimeDiv: o.TimeDiv, Jobs: 8})
	if errS != nil || errW != nil {
		t.Fatalf("chaos cells failed: %v / %v (%v %v)", errS, errW, failedS, failedW)
	}
	if !reflect.DeepEqual(serial, wide) {
		t.Fatal("chaos points differ between jobs=1 and jobs=8")
	}
	// Faults must actually fire in the loss scenarios.
	for _, p := range serial {
		if (p.Scenario == "burst-loss" || p.Scenario == "chaos") && p.FaultDrops == 0 {
			t.Errorf("%s/%s: no injected losses", p.Scenario, p.AQM)
		}
	}
}
