package experiments

import "fmt"

// This file reduces every experiment result type to a flat map of named
// scalar metrics (campaign.MetricsReporter). The maps are the statistical
// fingerprints the golden-regression harness (internal/golden) stores and
// compares against tolerance bands; they also appear verbatim in the CLIs'
// -json run records. Metric names are stable API: renaming one invalidates
// every checked-in golden.

// Metrics implements campaign.MetricsReporter for the generic scenario
// result: queue-delay distribution, drop/mark totals, utilization, per-group
// goodput shares, UDP loss and web FCT — the shapes the paper's claims are
// made of.
func (r *Result) Metrics() map[string]float64 {
	m := map[string]float64{
		"sojourn_mean_ms": r.Sojourn.Mean() * 1e3,
		"sojourn_p99_ms":  r.Sojourn.Percentile(99) * 1e3,
		"utilization":     r.Utilization,
		"drops_aqm":       float64(r.DropsAQM),
		"drops_overflow":  float64(r.DropsOverflow),
		"marks":           float64(r.Marks),
		"events":          float64(r.Events),
	}
	var total float64
	for _, g := range r.Groups {
		total += g.Total()
	}
	for i, g := range r.Groups {
		key := fmt.Sprintf("g%d_%s", i, g.Label)
		m[key+"_mbps"] = g.MeanPerFlow() / 1e6
		if total > 0 {
			m[key+"_share"] = g.Total() / total
		}
		m[key+"_retx"] = float64(g.Retransmissions)
	}
	for i, u := range r.UDP {
		m[fmt.Sprintf("udp%d_loss_ratio", i)] = u.LossRatio
		m[fmt.Sprintf("udp%d_delivered_mbps", i)] = u.DeliveredBps / 1e6
	}
	if r.WebFCT.N() > 0 {
		m["fct_n"] = float64(r.WebFCT.N())
		m["fct_mean_ms"] = r.WebFCT.Mean() * 1e3
		m["fct_p99_ms"] = r.WebFCT.Percentile(99) * 1e3
	}
	if r.ClassicProb.N() > 0 {
		m["prob_classic_mean"] = r.ClassicProb.Mean()
	}
	if r.ScalableProb.N() > 0 {
		m["prob_scalable_mean"] = r.ScalableProb.Mean()
	}
	return m
}

// Metrics implements campaign.MetricsReporter for a coexistence-sweep cell.
func (p SweepPoint) Metrics() map[string]float64 {
	return map[string]float64{
		"ratio":       p.Ratio,
		"rate_a_mbps": p.RateA / 1e6,
		"rate_b_mbps": p.RateB / 1e6,
		"q_mean_ms":   p.QMean * 1e3,
		"q_p99_ms":    p.QP99 * 1e3,
		"prob_a_mean": p.ProbA.Mean,
		"prob_b_mean": p.ProbB.Mean,
		"util_mean":   p.Util.Mean,
		"events":      float64(p.Events),
	}
}

// Metrics implements campaign.MetricsReporter for a flow-count combo cell.
func (p ComboPoint) Metrics() map[string]float64 {
	return map[string]float64{
		"ratio_per_flow": p.RatioPerFlow,
		"jain":           p.Jain,
		"norm_a_mean":    p.NormA.Mean,
		"norm_a_p99":     p.NormA.P99,
		"norm_b_mean":    p.NormB.Mean,
		"norm_b_p99":     p.NormB.P99,
		"events":         float64(p.Events),
	}
}

// Metrics implements campaign.MetricsReporter for an RTT-heterogeneity cell.
func (p RTTFairPoint) Metrics() map[string]float64 {
	return map[string]float64{
		"ratio":     p.Ratio,
		"q_mean_ms": p.QMeanMs,
		"events":    float64(p.Events),
	}
}

// Metrics implements campaign.MetricsReporter for one queue-arrangement arm
// (single coupled queue or DualPI2).
func (a dualArm) Metrics() map[string]float64 {
	return map[string]float64{
		"ratio":           a.Ratio,
		"jain":            a.Jain,
		"l_delay_mean_ms": a.LDelayMs.Mean,
		"l_delay_p99_ms":  a.LDelayMs.P99,
		"c_delay_mean_ms": a.CDelayMs.Mean,
		"c_delay_p99_ms":  a.CDelayMs.P99,
		"util":            a.Util,
	}
}

// Metrics implements campaign.MetricsReporter for the FQ-CoDel arrangement.
func (r FQRow) Metrics() map[string]float64 {
	return map[string]float64{
		"ratio":         r.Ratio,
		"jain":          r.Jain,
		"delay_mean_ms": r.DelayMs.Mean,
		"delay_p99_ms":  r.DelayMs.P99,
		"util":          r.Util,
	}
}
