package experiments

import (
	"reflect"
	"strings"
	"testing"

	"pi2/internal/stats"
)

// TestAggregateHeavyBands: synthetic three-rep cell — the aggregate must
// report the cross-seed mean with a positive CI half-width, pool the sojourn
// histograms, and merge the per-flow-rate accumulators.
func TestAggregateHeavyBands(t *testing.T) {
	mk := func(jain, qmeanSec float64, rates ...float64) HeavyPoint {
		p := HeavyPoint{Flows: 10, AQM: "pi2", Jain: jain, Util: 1,
			QMeanMs: qmeanSec * 1e3, QP99Ms: qmeanSec * 1e3, Events: 100}
		p.Soj = stats.NewDelayHistogram()
		p.Soj.Add(qmeanSec)
		for _, r := range rates {
			p.RateW.Add(r)
		}
		return p
	}
	pts := []HeavyPoint{
		mk(0.90, 0.010, 1e6, 2e6),
		mk(0.94, 0.020, 1.5e6, 1.5e6),
		mk(0.92, 0.030, 2e6, 1e6),
	}
	agg := aggregateHeavy(pts)
	if agg.Reps != 3 {
		t.Fatalf("Reps = %d, want 3", agg.Reps)
	}
	if agg.Jain < 0.9199 || agg.Jain > 0.9201 {
		t.Errorf("Jain mean = %.4f, want 0.92", agg.Jain)
	}
	if agg.JainHW <= 0 {
		t.Error("JainHW not positive for spread reps")
	}
	if agg.Soj.N() != 3 {
		t.Errorf("pooled sojourn holds %d samples, want 3", agg.Soj.N())
	}
	if agg.RateW.N() != 6 {
		t.Errorf("merged rate accumulator holds %d flows, want 6", agg.RateW.N())
	}
	if agg.RateCoV <= 0 {
		t.Error("RateCoV not positive for uneven rates")
	}
	// Single rep must pass through untouched — the reps=1 tables' byte
	// stability rides on this.
	if !reflect.DeepEqual(aggregateHeavy(pts[:1]), pts[0]) {
		t.Error("single-rep aggregation is not the identity")
	}
}

// TestSweepRepsBands runs a real (tiny) sweep at reps=2 and checks the
// aggregate plumbing end to end: every point carries Reps=2, a pooled
// sojourn sample and finite bands, and the banded printers emit ± columns.
func TestSweepRepsBands(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in -short mode")
	}
	pts := CoexistenceSweep(Options{Quick: true, TimeDiv: 40, Reps: 2, Jobs: 4})
	if len(pts) == 0 {
		t.Fatal("no sweep points")
	}
	for _, p := range pts {
		if p.Reps != 2 {
			t.Fatalf("point %s/%s Reps = %d, want 2", p.Pair, p.AQM, p.Reps)
		}
		if p.Soj == nil || p.Soj.N() == 0 {
			t.Fatalf("point %s/%s has no pooled sojourn sample", p.Pair, p.AQM)
		}
		if p.RatioHW < 0 || p.QMeanHW < 0 {
			t.Fatalf("negative half-width on %s/%s", p.Pair, p.AQM)
		}
	}
	var b15, b16 strings.Builder
	PrintFig15(&b15, pts)
	PrintFig16(&b16, pts)
	if !strings.Contains(b15.String(), "ratio_ci") || !strings.Contains(b15.String(), "±") {
		t.Error("PrintFig15 did not switch to the banded layout")
	}
	if !strings.Contains(b16.String(), "qdelay_p99_ci") {
		t.Error("PrintFig16 did not switch to the banded layout")
	}
	// And at reps=1 the printers keep the historical header exactly.
	single := CoexistenceSweep(Options{Quick: true, TimeDiv: 40, Jobs: 4})
	var s15 strings.Builder
	PrintFig15(&s15, single)
	if strings.Contains(s15.String(), "ratio_ci") {
		t.Error("reps=1 output grew a band column; goldens would break")
	}
}

// TestHeavyRepsBands: the heavy driver at reps=2 aggregates each cell and
// the banded table prints; reps=1 keeps the historical header.
func TestHeavyRepsBands(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run in -short mode")
	}
	pts, err := Heavy(Options{Quick: true, TimeDiv: 40, Reps: 2, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 { // 3 AQMs x {10, 100} flows, one aggregate per cell
		t.Fatalf("got %d aggregated points, want 6", len(pts))
	}
	for _, p := range pts {
		if p.Reps != 2 {
			t.Fatalf("%s/%d Reps = %d, want 2", p.AQM, p.Flows, p.Reps)
		}
		if p.Soj == nil || p.Soj.N() == 0 {
			t.Fatalf("%s/%d has no pooled sojourn histogram", p.AQM, p.Flows)
		}
	}
	var banded strings.Builder
	PrintHeavy(&banded, pts)
	if !strings.Contains(banded.String(), "rate_cov") {
		t.Error("PrintHeavy did not switch to the banded layout")
	}
}
