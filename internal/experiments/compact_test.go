package experiments

import (
	"math"
	"sort"
	"testing"
	"time"

	"pi2/internal/stats"
	"pi2/internal/traffic"
)

// TestCompactMetricsDoesNotPerturbSimulation runs the same scenario twice,
// once with exact collectors and once with constant-memory histograms. The
// collectors are pure observers: the event count and every simulation-side
// outcome (rates, drops, marks) must be bit-identical, and the summarized
// distributions must agree within the histogram's bin resolution.
func TestCompactMetricsDoesNotPerturbSimulation(t *testing.T) {
	base := Scenario{
		Seed:        99,
		LinkRateBps: 20e6,
		NewAQM:      PI2Factory(20 * time.Millisecond),
		Bulk: []traffic.BulkFlowSpec{
			{CC: "cubic", Count: 2, RTT: 10 * time.Millisecond, Label: "A"},
			{CC: "dctcp", Count: 2, RTT: 10 * time.Millisecond, Label: "B"},
		},
		Web:      []traffic.WebSpec{{ArrivalRate: 5, CC: "reno", RTT: 10 * time.Millisecond}},
		Duration: 8 * time.Second,
		WarmUp:   3 * time.Second,
	}
	exact := Run(base)

	compact := base
	compact.CompactMetrics = true
	approx := Run(compact)

	if exact.Events != approx.Events {
		t.Fatalf("event counts diverge: exact %d vs compact %d — collectors perturbed the simulation", exact.Events, approx.Events)
	}
	if exact.DropsAQM != approx.DropsAQM || exact.Marks != approx.Marks {
		t.Errorf("drops/marks diverge: %d/%d vs %d/%d", exact.DropsAQM, exact.Marks, approx.DropsAQM, approx.Marks)
	}
	for i := range exact.Groups {
		if exact.Groups[i].MeanPerFlow() != approx.Groups[i].MeanPerFlow() {
			t.Errorf("group %s rate diverges: %g vs %g",
				exact.Groups[i].Label, exact.Groups[i].MeanPerFlow(), approx.Groups[i].MeanPerFlow())
		}
	}
	if _, ok := approx.Sojourn.(*stats.LogHistogram); !ok {
		t.Fatalf("CompactMetrics Sojourn is %T, want *stats.LogHistogram", approx.Sojourn)
	}

	check := func(name string, a, b stats.Quantiler) {
		t.Helper()
		if a.N() != b.N() {
			t.Errorf("%s: sample counts diverge: %d vs %d", name, a.N(), b.N())
			return
		}
		n := a.N()
		if n == 0 {
			return
		}
		xs := a.(*stats.Sample).Values()
		sort.Float64s(xs)
		for _, q := range []float64{50, 99} {
			h := b.Percentile(q)
			// The two collectors interpolate ranks differently, which at
			// small N moves the reference by a whole order statistic. The
			// histogram's own contract is its bin width: its value must be
			// within 2% (+1 µs underflow floor) of one of the exact order
			// statistics bracketing the target rank.
			lo := int(q/100*float64(n-1)) - 1
			hi := int(math.Ceil(q/100*float64(n))) + 1
			ok := false
			for r := max(lo, 0); r <= min(hi, n-1); r++ {
				if math.Abs(h-xs[r]) <= 0.02*math.Abs(xs[r])+1e-6 {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("%s p%.0f: compact %g not within 2%% of exact order statistics %v",
					name, q, h, xs[max(lo, 0):min(hi, n-1)+1])
			}
		}
		if e, h := a.Mean(), b.Mean(); math.Abs(h-e) > 1e-9*math.Abs(e)+1e-12 {
			t.Errorf("%s mean: exact %g vs compact %g (mean is tracked exactly)", name, e, h)
		}
	}
	check("sojourn", exact.Sojourn, approx.Sojourn)
	check("classic_prob", exact.ClassicProb, approx.ClassicProb)
	check("scalable_prob", exact.ScalableProb, approx.ScalableProb)
	check("util", exact.UtilSeries, approx.UtilSeries)
	check("web_fct", exact.WebFCT, approx.WebFCT)
}
