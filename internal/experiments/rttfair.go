package experiments

import (
	"fmt"
	"io"
	"time"

	"pi2/internal/campaign"
	"pi2/internal/traffic"
)

// RTTFairPoint is one cell of the RTT-heterogeneity sweep: a Cubic flow at
// rttA against a DCTCP flow at rttB through the coupled PI2 queue.
type RTTFairPoint struct {
	RTTA, RTTB time.Duration
	Ratio      float64 // cubic / dctcp goodput
	QMeanMs    float64
	// Events is the cell's simulator-event count (run-record metric).
	Events uint64
}

// EventCount satisfies campaign.EventCounter for per-run events/sec records.
func (p RTTFairPoint) EventCount() uint64 { return p.Events }

// RTTFairSweep extends Figure 15 beyond the paper's equal-RTT setting:
// it crosses Classic and Scalable base RTTs and reports the rate balance.
// Equation (14) assumes equal RTTs; this sweep shows how far coexistence
// stretches when they differ (classic TCP RTT-unfairness compounds with
// the coupling).
func RTTFairSweep(o Options) []RTTFairPoint {
	tasks := rttfairTasks(o)
	recs := campaign.Execute(tasks, o.execFor("rttfair", gridSpec{}))
	out := make([]RTTFairPoint, len(recs))
	for i, rec := range recs {
		if p, ok := rec.Result.(RTTFairPoint); ok {
			out[i] = p
		}
	}
	return out
}

// rttfairTasks builds the RTT-cross matrix.
func rttfairTasks(o Options) []campaign.Task {
	rtts := []time.Duration{5 * time.Millisecond, 20 * time.Millisecond, 80 * time.Millisecond}
	if o.Quick {
		rtts = []time.Duration{5 * time.Millisecond, 80 * time.Millisecond}
	}
	var tasks []campaign.Task
	for _, ra := range rtts {
		for _, rb := range rtts {
			ra, rb := ra, rb
			tasks = append(tasks, campaign.Task{
				Name:      "rttfair",
				SeedIndex: len(tasks),
				Params: map[string]any{
					"rtt_a_ms": ra.Seconds() * 1e3, "rtt_b_ms": rb.Seconds() * 1e3,
				},
				Run: func(tc *campaign.TaskCtx) any {
					dur := o.scale(100 * time.Second)
					res := Run(Scenario{
						Seed:        tc.Seed,
						Watch:       tc.Watch,
						LinkRateBps: 40e6,
						NewAQM:      PI2Factory(20 * time.Millisecond),
						Bulk: []traffic.BulkFlowSpec{
							{CC: "cubic", Count: 1, RTT: ra, Label: "A"},
							{CC: "dctcp", Count: 1, RTT: rb, Label: "B"},
						},
						Duration: dur,
						WarmUp:   dur * 2 / 5,
					})
					return RTTFairPoint{
						RTTA: ra, RTTB: rb,
						Ratio:   perFlowRatio(res),
						QMeanMs: res.Sojourn.Mean() * 1e3,
						Events:  res.Events,
					}
				},
			})
		}
	}
	return tasks
}

// PrintRTTFair writes the sweep as a table.
func PrintRTTFair(w io.Writer, pts []RTTFairPoint) {
	fmt.Fprintln(w, "# RTT-heterogeneity sweep: 1 Cubic (RTT A) vs 1 DCTCP (RTT B), PI2, 40 Mb/s")
	fmt.Fprintln(w, "# equation (14)'s equal-rate coupling assumes RTT A = RTT B; off-diagonal cells")
	fmt.Fprintln(w, "# show classic RTT unfairness compounding with the coupling")
	fmt.Fprintln(w, "rttA_ms\trttB_ms\tcubic/dctcp\tqdelay_mean_ms")
	for _, p := range pts {
		fmt.Fprintf(w, "%.0f\t%.0f\t%.3f\t%.2f\n",
			float64(p.RTTA.Milliseconds()), float64(p.RTTB.Milliseconds()), p.Ratio, p.QMeanMs)
	}
}
