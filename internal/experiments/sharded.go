package experiments

import (
	"time"

	"pi2/internal/aqm"
	"pi2/internal/faults"
	"pi2/internal/link"
	"pi2/internal/packet"
	"pi2/internal/sim"
	"pi2/internal/stats"
	"pi2/internal/tcp"
	"pi2/internal/traffic"
)

// This file is the sharded twin of Run (runner.go): the same scenario
// semantics executed on the conservative-PDES coordinator. Domain 0 owns
// the bottleneck link, its AQM, the impairment layer and every co-located
// workload (staged, UDP, web — their handoffs stay direct calls exactly as
// in the single-simulator path); bulk flows are partitioned round-robin
// across domains 1..N-1. Propagation splits onto the wires: the
// sender→link mailbox edge carries RTT/2, the link→receiver edge carries
// the remaining RTT−RTT/2, and the endpoint's internal ACK path becomes
// zero-delay (tcp.Config.SplitPropagation), so the sender still observes
// BaseRTT + queuing + serialization. The lookahead window is the minimum
// one-way delay over all partitioned flows.

// shardDropCross is a test-only hook that swallows cross-domain messages
// at the barrier merge, modeling a lossy mailbox fabric; the wire auditor
// must then flag the conservation violation and fail the run.
var shardDropCross func(dst int, p *packet.Packet) bool

// shardable reports whether a scenario can (and should) run on the
// coordinator: an explicit shard count, at least two bulk flows to
// partition, and a positive one-way propagation delay on every bulk flow
// to serve as lookahead. Everything else falls back to the classic
// single-simulator path, byte-identical to an unsharded build.
func shardable(sc Scenario) bool {
	if sc.Shards < 2 {
		return false
	}
	n := 0
	for _, b := range sc.Bulk {
		if b.Count <= 0 {
			continue
		}
		if b.RTT/2 <= 0 {
			return false
		}
		n += b.Count
	}
	return n >= 2
}

// shardLookahead is the coordinator window: the minimum one-way (RTT/2)
// propagation delay across the partitioned bulk flows.
func shardLookahead(sc Scenario) time.Duration {
	var w time.Duration
	for _, b := range sc.Bulk {
		if b.Count <= 0 {
			continue
		}
		if half := b.RTT / 2; w == 0 || half < w {
			w = half
		}
	}
	return w
}

// shardRouting maps bulk flow IDs to their owning domain and the
// link→receiver wire parameters. Flow IDs are assigned sequentially, so
// plain slices (not maps) keep the delivery hot path allocation- and
// hash-free. IDs beyond the table (staged, UDP, web) are link-local and
// fall through to the dispatcher.
type shardRouting struct {
	owner []int32
	dlv   []time.Duration
	hand  []func(*packet.Packet)
}

func (rt *shardRouting) add(id int, dom int32, dlv time.Duration, hand func(*packet.Packet)) {
	for len(rt.owner) <= id {
		rt.owner = append(rt.owner, 0)
		rt.dlv = append(rt.dlv, 0)
		rt.hand = append(rt.hand, nil)
	}
	rt.owner[id] = dom
	rt.dlv[id] = dlv
	rt.hand[id] = hand
}

// runSharded executes a shardable scenario on the coordinator. The caller
// (Run) has already defaulted SampleEvery.
func runSharded(sc Scenario) *Result {
	totalBulk := 0
	for _, b := range sc.Bulk {
		totalBulk += b.Count
	}
	// Every endpoint domain must own at least one flow; cap the shard
	// count rather than spin up empty domains.
	nE := sc.Shards - 1
	if nE > totalBulk {
		nE = totalBulk
	}
	nDom := nE + 1

	co := sim.NewCoordinator(sc.Seed, nDom, shardLookahead(sc))
	co.DropCrossHook = shardDropCross
	if sc.Watch != nil {
		sc.Watch(co)
	}
	linkDom := co.Domain(0)
	ls := linkDom.Sim()
	d := link.NewDispatcher()
	wireAud := &link.WireAuditor{}
	co.SetWireAudit(wireAud)

	// route is the link's delivery callback: partitioned flows leave on
	// their link→receiver wire; everything else (staged, UDP, web) is a
	// direct dispatcher call, exactly as in the single-simulator path.
	rt := &shardRouting{}
	route := func(p *packet.Packet) {
		if id := p.FlowID; id < len(rt.owner) && rt.owner[id] != 0 {
			linkDom.Send(int(rt.owner[id]), rt.dlv[id], p, rt.hand[id])
			return
		}
		d.Deliver(p)
	}
	// The impairment layer wraps delivery after the link, before the wire:
	// injected loss/reordering applies at the bottleneck egress as in the
	// unsharded runner (reorder delays only push arrivals later, so the
	// lookahead bound is untouched).
	deliver := route
	var inj *faults.Injector
	if sc.Impair != nil && sc.Impair.Active() {
		inj = faults.NewInjector(ls, *sc.Impair, route)
		deliver = inj.Deliver
	}
	l := link.New(ls, link.Config{
		RateBps:       sc.LinkRateBps,
		BufferPackets: sc.BufferPackets,
		AQM:           sc.NewAQM(ls.RNG()),
		Sojourn:       newQuantiler(sc.CompactMetrics),
	}, deliver)
	if sc.Impair != nil && sc.Impair.Rate != nil {
		sc.Impair.Rate.Apply(ls, l)
	}
	// Hoisted once: writing l.Enqueue at a Send call site would materialize
	// a fresh method value per packet on the hot path.
	linkEnq := l.Enqueue

	res := &Result{
		DelaySeries:   stats.TimeSeries{Interval: sc.SampleEvery},
		DelayFine:     stats.TimeSeries{Interval: 100 * time.Millisecond},
		GoodputSeries: stats.TimeSeries{Interval: sc.SampleEvery},
		ClassicProb:   newQuantiler(sc.CompactMetrics),
		ScalableProb:  newQuantiler(sc.CompactMetrics),
		UtilSeries:    newQuantiler(sc.CompactMetrics),
		WebFCT:        newQuantiler(sc.CompactMetrics),
	}

	// Bulk flows, round-robin over endpoint domains in creation order so
	// the partition is a pure function of the scenario.
	nextID := 1
	fIdx := 0
	var groups []*traffic.BulkGroup
	var allBulk []*tcp.Endpoint
	domFlows := make([][]*tcp.Endpoint, nDom)
	for _, spec := range sc.Bulk {
		if sc.SACK {
			spec.SACK = true
		}
		if spec.AckEvery == 0 {
			spec.AckEvery = sc.AckEvery
		}
		g := &traffic.BulkGroup{Spec: spec, Flows: make([]*tcp.Endpoint, 0, spec.Count)}
		for i := 0; i < spec.Count; i++ {
			domID := int32(1 + fIdx%nE)
			dom := co.Domain(int(domID))
			es := dom.Sim()
			cc, mode, err := tcp.NewCCFeedback(spec.CC, spec.Feedback)
			if err != nil {
				panic(err)
			}
			id := nextID
			nextID++
			fwd := spec.RTT / 2          // sender→link wire
			dlv := spec.RTT - spec.RTT/2 // link→receiver wire
			enq := func(p *packet.Packet) { dom.Send(0, fwd, p, linkEnq) }
			ep := tcp.NewWithEnqueuer(es, enq, tcp.Config{
				ID:               id,
				CC:               cc,
				ECN:              mode,
				BaseRTT:          spec.RTT,
				SACK:             spec.SACK,
				AckEvery:         spec.AckEvery,
				SplitPropagation: true,
			})
			rt.add(id, domID, dlv, ep.DeliverData)
			es.At(spec.StartAt, ep.Start)
			if spec.StopAt > spec.StartAt {
				es.At(spec.StopAt, ep.Stop)
			}
			g.Flows = append(g.Flows, ep)
			allBulk = append(allBulk, ep)
			domFlows[domID] = append(domFlows[domID], ep)
			fIdx++
		}
		groups = append(groups, g)
	}

	// Co-located workloads live in the link domain with direct wiring —
	// their semantics (and RNG draws) match the single-simulator runner.
	var staged []*tcp.Endpoint
	if sc.Staged != nil {
		staged, nextID = traffic.StagedCounts(ls, l, d, nextID,
			sc.Staged.CC, sc.Staged.RTT, sc.Staged.Counts, sc.Staged.StageLen)
	}
	domFlows[0] = append(domFlows[0], staged...)
	var udps []*traffic.UDPSource
	for _, spec := range sc.UDP {
		udps = append(udps, traffic.StartUDP(ls, l, d, nextID, spec))
		nextID++
	}
	var webs []*traffic.WebWorkload
	for _, spec := range sc.Web {
		w := traffic.StartWeb(ls, l, d, &nextID, spec)
		if sc.CompactMetrics {
			w.FCT = res.WebFCT
		}
		webs = append(webs, w)
	}
	for _, rc := range sc.RateChanges {
		rate := rc.RateBps
		ls.At(rc.At, func() { l.SetRateBps(rate) })
	}

	// Warm-up boundary: each domain resets its own flows' meters; the link
	// domain also resets the link and UDP meters. Per-domain scheduling
	// keeps the reset on the goroutine that owns the state. In fast-forward
	// mode the hybrid loop (running on this coordinator thread while every
	// domain is parked at the window edge) performs the reset for all
	// domains at the exact boundary instead — ShiftPending would carry a
	// scheduled reset along with the frozen packet processes.
	warmReset := func() {
		l.ResetStats()
		now := ls.Now()
		for i := 0; i < nDom; i++ {
			for _, f := range domFlows[i] {
				f.Goodput.Reset(now)
			}
		}
		for _, u := range udps {
			u.ResetStats(now)
		}
	}
	eng := newFFEngine(sc, co, l, allBulk)
	if eng == nil {
		ls.At(sc.WarmUp, func() {
			l.ResetStats()
			now := ls.Now()
			for _, f := range domFlows[0] {
				f.Goodput.Reset(now)
			}
			for _, u := range udps {
				u.ResetStats(now)
			}
		})
		for i := 1; i < nDom; i++ {
			es := co.Domain(i).Sim()
			fl := domFlows[i]
			es.At(sc.WarmUp, func() {
				now := es.Now()
				for _, f := range fl {
					f.Goodput.Reset(now)
				}
			})
		}
	}

	// Goodput is sampled per domain (each domain reads only its own flows)
	// and the per-domain series are summed after the run; link-local series
	// (queue delay, utilization, probabilities) stay in the link domain.
	perDom := make([]stats.TimeSeries, nDom)
	for i := range perDom {
		perDom[i].Interval = sc.SampleEvery
	}
	var lastGoodput0, lastDelivered int64
	ls.Every(sc.SampleEvery, func() {
		now := ls.Now()
		res.DelaySeries.Record(now, l.QueueDelayNow().Seconds())
		var total int64
		for _, f := range domFlows[0] {
			total += f.Goodput.Bytes()
		}
		rate := float64(total-lastGoodput0) * 8 / sc.SampleEvery.Seconds()
		lastGoodput0 = total
		perDom[0].Record(now, rate)
		delivered := l.Delivered.Bytes()
		if now > sc.WarmUp && delivered >= lastDelivered {
			util := float64(delivered-lastDelivered) * 8 /
				(sc.SampleEvery.Seconds() * l.RateBps())
			if util > 1 {
				util = 1
			}
			res.UtilSeries.Add(util)
		}
		lastDelivered = delivered
	})
	for i := 1; i < nDom; i++ {
		i := i
		es := co.Domain(i).Sim()
		fl := domFlows[i]
		var last int64
		es.Every(sc.SampleEvery, func() {
			var total int64
			for _, f := range fl {
				total += f.Goodput.Bytes()
			}
			rate := float64(total-last) * 8 / sc.SampleEvery.Seconds()
			last = total
			perDom[i].Record(es.Now(), rate)
		})
	}

	// Fine sampler: link-domain state only.
	ls.Every(100*time.Millisecond, func() {
		now := ls.Now()
		res.DelayFine.Record(now, l.QueueDelayNow().Seconds())
		if now <= sc.WarmUp {
			return
		}
		if pr, ok := l.AQM().(aqm.ProbabilityReporter); ok {
			res.ClassicProb.Add(pr.DropProbability())
		}
		if sr, ok := l.AQM().(aqm.ScalableReporter); ok {
			res.ScalableProb.Add(sr.ScalableProbability())
		}
	})

	// The fast-forward engine runs on this (coordinator) thread between
	// barrier windows, when every domain goroutine is parked at the window
	// edge — flow and link state is safe to read and mutate, and
	// Coordinator.ShiftPending translates all domain clocks and in-flight
	// wire traffic together. Flow order is creation order, so the RNG draw
	// sequence matches the unsharded engine exactly.
	if eng != nil {
		runFastForward(eng, co.Now, co.RunUntil, sc, warmReset)
		ffCollect(res, eng)
	} else {
		co.RunUntil(sc.Duration)
	}

	// Collect — same reductions as the single-simulator path. All domain
	// clocks sit at sc.Duration after RunUntil.
	now := sc.Duration
	res.Sojourn = l.Sojourn
	res.Utilization = l.Utilization()
	res.DropsAQM = l.Drops(link.DropAQM)
	res.DropsOverflow = l.Drops(link.DropOverflow)
	res.Marks = l.Marks()
	res.Events = co.Processed()
	for _, g := range groups {
		label := g.Spec.Label
		if label == "" {
			label = g.Spec.CC
		}
		gr := GroupResult{Label: label, CC: g.Spec.CC,
			FlowRates: make([]float64, 0, len(g.Flows))}
		for _, f := range g.Flows {
			gr.FlowRates = append(gr.FlowRates, f.Goodput.RateBps(now))
			gr.Marks += f.MarksSeen()
			gr.CongestionEvents += f.CongestionEvents()
			gr.Retransmissions += f.Retransmissions()
		}
		res.Groups = append(res.Groups, gr)
	}
	// Sum the per-domain goodput series index-wise; every domain ticks at
	// the same instants, so the series align (defensively truncated to the
	// shortest).
	n := len(perDom[0].Times)
	for i := 1; i < nDom; i++ {
		if len(perDom[i].Times) < n {
			n = len(perDom[i].Times)
		}
	}
	for k := 0; k < n; k++ {
		var sum float64
		for i := 0; i < nDom; i++ {
			sum += perDom[i].Values[k]
		}
		res.GoodputSeries.Record(perDom[0].Times[k], sum)
	}
	if !sc.CompactMetrics {
		for _, w := range webs {
			res.WebFCT.(*stats.Sample).Merge(w.FCT.(*stats.Sample))
		}
	}
	for _, u := range udps {
		ur := UDPResult{
			RateBps:        u.Spec.RateBps,
			SentBytes:      u.Sent.Bytes(),
			DeliveredBytes: u.Received.Bytes(),
			DeliveredBps:   u.Received.RateBps(now),
		}
		ur.LostBytes = ur.SentBytes - ur.DeliveredBytes
		if ur.LostBytes < 0 {
			ur.LostBytes = 0
		}
		if ur.SentBytes > 0 {
			ur.LossRatio = float64(ur.LostBytes) / float64(ur.SentBytes)
		}
		res.UDP = append(res.UDP, ur)
	}
	if inj != nil {
		res.FaultDrops = inj.Dropped
		res.FaultDups = inj.Duplicated
		res.FaultReorders = inj.Reordered
	}
	if msg := l.Audit().Err("bottleneck link"); msg != "" {
		panic(msg)
	}
	if msg := wireAud.Err("cross-domain wires"); msg != "" {
		// The mailbox fabric lost, duplicated or invented traffic: the
		// run's numbers cannot be trusted, so fail the cell loudly.
		panic(msg)
	}
	return res
}
