package experiments

import (
	"fmt"
	"io"
	"time"

	"pi2/internal/campaign"
	"pi2/internal/traffic"
)

// PrintTable1 writes the default AQM parameters (Table 1) as the harness
// actually configures them, so the mapping paper → code is auditable.
func PrintTable1(w io.Writer) {
	fmt.Fprintln(w, "# Table 1: default parameters for the different AQMs")
	fmt.Fprintln(w, "aqm\ttarget\ttupdate\talpha_hz\tbeta_hz\tburst\tbuffer_pkts\tnotes")
	fmt.Fprintln(w, "pie\t20ms\t32ms\t0.1250\t1.2500\t100ms\t40000\tall Linux heuristics, reworked ECN overload (cap 25%)")
	fmt.Fprintln(w, "bare-pie\t20ms\t32ms\t0.1250\t1.2500\t-\t40000\tauto-tune only, extra heuristics off")
	fmt.Fprintln(w, "pi\t20ms\t32ms\t0.1250\t1.2500\t-\t40000\tfixed gains, linear output (Fig 6 'pi')")
	fmt.Fprintln(w, "pi2\t20ms\t32ms\t0.3125\t3.1250\t-\t40000\tgains on p'; classic prob = p'^2, cap 25%")
	fmt.Fprintln(w, "pi2(scalable)\t20ms\t32ms\t0.6250\t6.2500\t-\t40000\teffective gains on p_s = k*p', k = 2 (Table 1 DCTCP row)")
}

// FCTResult compares short-flow completion times across AQMs — the paper's
// Section 6 claim that mixed short-flow completion times are essentially
// the same for PIE, bare-PIE and PI2 in a single queue.
type FCTResult struct {
	// ByAQM maps AQM name → FCT quantiles in seconds.
	ByAQM map[string]Quantiles
	// Flows counts completed flows per AQM.
	Flows map[string]int
}

// fctAQMs is the comparison set, in print order.
var fctAQMs = []string{"pie", "bare-pie", "pi2"}

// FigFCT runs a web-like workload (Poisson arrivals, bounded-Pareto sizes)
// over each AQM at 40 Mb/s, 20 ms RTT and reports flow-completion-time
// quantiles. All three AQMs share SeedIndex 0: same arrival process, same
// flow sizes — the comparison varies only the queue.
func FigFCT(o Options) *FCTResult {
	recs := campaign.Execute(fctTasks(o), o.execFor("fct", gridSpec{}))
	res := &FCTResult{ByAQM: make(map[string]Quantiles), Flows: make(map[string]int)}
	for i, name := range fctAQMs {
		r := resultOf(recs[i])
		res.ByAQM[name] = quantiles(r.WebFCT)
		res.Flows[name] = r.WebFCT.N()
	}
	return res
}

// fctTasks builds the AQM comparison arms; all share SeedIndex 0.
func fctTasks(o Options) []campaign.Task {
	dur := o.scale(120 * time.Second)
	var tasks []campaign.Task
	for _, name := range fctAQMs {
		name := name
		tasks = append(tasks, campaign.Task{
			Name: "fct/" + name, SeedIndex: 0,
			Params: map[string]any{"aqm": name},
			Run: func(tc *campaign.TaskCtx) any {
				factory, _ := FactoryByName(name, 20*time.Millisecond)
				sc := Scenario{
					Seed:        tc.Seed,
					Watch:       tc.Watch,
					LinkRateBps: 40e6,
					NewAQM:      factory,
					// Long-running background load plus the short flows.
					Bulk: []traffic.BulkFlowSpec{
						{CC: "reno", Count: 2, RTT: 20 * time.Millisecond},
					},
					Web: []traffic.WebSpec{{
						ArrivalRate: 20,
						CC:          "reno",
						RTT:         20 * time.Millisecond,
						StopAt:      dur - dur/10,
					}},
					Duration: dur,
					WarmUp:   dur / 10,
				}
				return Run(sc)
			},
		})
	}
	return tasks
}

// Print writes the FCT comparison.
func (r *FCTResult) Print(w io.Writer) {
	fmt.Fprintln(w, "# Short flow completion times (web-like workload, 40 Mb/s, RTT 20 ms)")
	fmt.Fprintln(w, "aqm\tflows\tfct_p25_ms\tfct_mean_ms\tfct_p99_ms")
	for _, name := range []string{"pie", "bare-pie", "pi2"} {
		q := r.ByAQM[name]
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.1f\t%.1f\n",
			name, r.Flows[name], q.P25*1e3, q.Mean*1e3, q.P99*1e3)
	}
	fmt.Fprintln(w, "# paper: completion times with PIE, bare-PIE and PI2 were essentially the same")
}
