package experiments

import (
	"fmt"
	"io"
	"time"

	"pi2/internal/campaign"
	"pi2/internal/core"
	"pi2/internal/fq"
	"pi2/internal/link"
	"pi2/internal/sim"
	"pi2/internal/stats"
	"pi2/internal/tcp"
	"pi2/internal/traffic"
)

// DualQResult compares the paper's single-queue coupled AQM against the
// DualPI2 dual-queue extension it points toward (Section 7): same traffic,
// same coupling — the dual queue removes the Classic queuing delay from the
// Scalable flow's path.
type DualQResult struct {
	// Single is the single-queue run; LDelay/CDelay there are the same
	// shared queue measured per traffic class.
	SingleRatio                float64
	SingleLDelayMs             Quantiles
	SingleCDelayMs             Quantiles
	SingleUtil                 float64
	DualRatio                  float64
	DualLDelayMs, DualCDelayMs Quantiles
	DualUtil                   float64
	// JainSingle/JainDual summarize rate fairness across all flows.
	JainSingle, JainDual float64
}

// dualArm holds one arrangement's metrics — the shared shape of the
// single-queue, dual-queue and FQ arms.
type dualArm struct {
	Ratio              float64
	Jain               float64
	LDelayMs, CDelayMs Quantiles
	Util               float64
}

// DualQ runs NA Cubic + NB DCTCP flows through (a) the single-queue coupled
// PI2 and (b) DualPI2, at 40 Mb/s and 10 ms RTT. Both arms share one seed
// (SeedIndex 0) so they see identical traffic randomness; they run as two
// engine tasks and so in parallel when o.Jobs > 1.
func DualQ(o Options, na, nb int) *DualQResult {
	recs := campaign.Execute(dualqTasks(o, na, nb), o.execFor("dualq", gridSpec{NA: na, NB: nb}))
	res := &DualQResult{}
	if a, ok := recs[0].Result.(dualArm); ok {
		res.SingleRatio = a.Ratio
		res.SingleLDelayMs = a.LDelayMs
		res.SingleCDelayMs = a.CDelayMs
		res.SingleUtil = a.Util
		res.JainSingle = a.Jain
	}
	if a, ok := recs[1].Result.(dualArm); ok {
		res.DualRatio = a.Ratio
		res.DualLDelayMs = a.LDelayMs
		res.DualCDelayMs = a.CDelayMs
		res.DualUtil = a.Util
		res.JainDual = a.Jain
	}
	return res
}

// dualqTasks builds the paired single-queue/dual-queue arms.
func dualqTasks(o Options, na, nb int) []campaign.Task {
	return []campaign.Task{
		{
			Name: "dualq/single", SeedIndex: 0,
			Params: map[string]any{"na": na, "nb": nb},
			Run:    func(tc *campaign.TaskCtx) any { return dualQSingleArm(o, tc, na, nb) },
		},
		{
			Name: "dualq/dual", SeedIndex: 0,
			Params: map[string]any{"na": na, "nb": nb},
			Run:    func(tc *campaign.TaskCtx) any { return dualQDualArm(o, tc, na, nb) },
		},
	}
}

// dualQSingleArm is the single shared queue: per-class delay comes from the
// per-packet sample split by ECN — approximate with the shared-queue sample
// for both classes (that is the point: in a single queue they are identical).
func dualQSingleArm(o Options, tc *campaign.TaskCtx, na, nb int) dualArm {
	const (
		rate = 40e6
		rtt  = 10 * time.Millisecond
	)
	dur := o.scale(100 * time.Second)
	sc := Scenario{
		Seed:        tc.Seed,
		Watch:       tc.Watch,
		LinkRateBps: rate,
		NewAQM:      PI2Factory(20 * time.Millisecond),
		Duration:    dur,
		WarmUp:      dur * 2 / 5,
	}
	sc.Bulk = append(sc.Bulk, bulkPair(na, nb, rtt)...)
	r := Run(sc)
	q := scaleQ(quantiles(r.Sojourn), 1e3)
	return dualArm{
		Ratio:    perFlowRatio(r),
		Jain:     jainOf(r),
		LDelayMs: q,
		CDelayMs: q,
		Util:     r.Utilization,
	}
}

// dualQDualArm is the DualPI2 arrangement: custom wiring around core.DualLink.
func dualQDualArm(o Options, tc *campaign.TaskCtx, na, nb int) dualArm {
	const (
		rate = 40e6
		rtt  = 10 * time.Millisecond
	)
	dur := o.scale(100 * time.Second)
	warm := dur * 2 / 5

	s := sim.New(tc.Seed)
	tc.Watch(s)
	d := link.NewDispatcher()
	dual := core.NewDualLink(s, rate, core.DualConfig{}, d.Deliver)
	var cubics, dctcps []*tcp.Endpoint
	id := 1
	mk := func(cc tcp.CongestionControl, mode tcp.ECNMode) *tcp.Endpoint {
		ep := tcp.NewWithEnqueuer(s, dual.Enqueue, tcp.Config{
			ID: id, CC: cc, ECN: mode, BaseRTT: rtt,
		})
		d.Register(id, ep.DeliverData)
		ep.Start()
		id++
		return ep
	}
	for i := 0; i < na; i++ {
		cubics = append(cubics, mk(&tcp.Cubic{}, tcp.ECNOff))
	}
	for i := 0; i < nb; i++ {
		dctcps = append(dctcps, mk(&tcp.DCTCP{}, tcp.ECNScalable))
	}
	s.At(warm, func() {
		now := s.Now()
		for _, ep := range append(append([]*tcp.Endpoint{}, cubics...), dctcps...) {
			ep.Goodput.Reset(now)
		}
		dual.LSojourn.Reset()
		dual.CSojourn.Reset()
	})
	s.RunUntil(dur)
	if msg := dual.Audit().Err("duallink"); msg != "" {
		panic(msg)
	}
	now := s.Now()
	mean := func(eps []*tcp.Endpoint) float64 {
		if len(eps) == 0 {
			return 0
		}
		var sum float64
		for _, ep := range eps {
			sum += ep.Goodput.RateBps(now)
		}
		return sum / float64(len(eps))
	}
	arm := dualArm{
		LDelayMs: scaleQ(quantiles(dual.LSojourn), 1e3),
		CDelayMs: scaleQ(quantiles(dual.CSojourn), 1e3),
		Util:     dual.Utilization(),
	}
	if d := mean(dctcps); d > 0 {
		arm.Ratio = mean(cubics) / d
	}
	var rates []float64
	for _, ep := range append(append([]*tcp.Endpoint{}, cubics...), dctcps...) {
		rates = append(rates, ep.Goodput.RateBps(now))
	}
	arm.Jain = stats.JainIndex(rates)
	return arm
}

func bulkPair(na, nb int, rtt time.Duration) []traffic.BulkFlowSpec {
	var out []traffic.BulkFlowSpec
	if na > 0 {
		out = append(out, traffic.BulkFlowSpec{CC: "cubic", Count: na, RTT: rtt, Label: "A"})
	}
	if nb > 0 {
		out = append(out, traffic.BulkFlowSpec{CC: "dctcp", Count: nb, RTT: rtt, Label: "B"})
	}
	return out
}

func perFlowRatio(r *Result) float64 {
	var a, b float64
	for _, g := range r.Groups {
		switch g.Label {
		case "A":
			a = g.MeanPerFlow()
		case "B":
			b = g.MeanPerFlow()
		}
	}
	if b == 0 {
		return 0
	}
	return a / b
}

func jainOf(r *Result) float64 {
	var rates []float64
	for _, g := range r.Groups {
		rates = append(rates, g.FlowRates...)
	}
	return stats.JainIndex(rates)
}

func scaleQ(q Quantiles, f float64) Quantiles {
	q.P1 *= f
	q.P25 *= f
	q.Mean *= f
	q.P99 *= f
	return q
}

// FQRow holds the FQ-CoDel arrangement's results for the same traffic.
type FQRow struct {
	Ratio   float64
	Jain    float64
	DelayMs Quantiles
	Util    float64
}

// FQArrangement runs the same NA Cubic + NB DCTCP traffic through an
// FQ-CoDel bottleneck — the per-flow-queuing alternative the paper's
// introduction weighs against single-queue designs. Isolation gives both
// flows their fair share with low delay, at the cost of per-flow state
// and transport-header inspection in the network. It runs as one engine
// task with SeedIndex 0, so it sees the same traffic seed as DualQ's arms.
func FQArrangement(o Options, na, nb int) FQRow {
	recs := campaign.Execute(fqTasks(o, na, nb), o.execFor("dualq-fq", gridSpec{NA: na, NB: nb}))
	row, _ := recs[0].Result.(FQRow)
	return row
}

// fqTasks builds the FQ-CoDel arrangement's single-cell matrix.
func fqTasks(o Options, na, nb int) []campaign.Task {
	return []campaign.Task{{
		Name: "dualq/fq-codel", SeedIndex: 0,
		Params: map[string]any{"na": na, "nb": nb},
		Run:    func(tc *campaign.TaskCtx) any { return fqArrangementArm(o, tc, na, nb) },
	}}
}

func fqArrangementArm(o Options, tc *campaign.TaskCtx, na, nb int) FQRow {
	const (
		rate = 40e6
		rtt  = 10 * time.Millisecond
	)
	dur := o.scale(100 * time.Second)
	warm := dur * 2 / 5

	s := sim.New(tc.Seed)
	tc.Watch(s)
	d := link.NewDispatcher()
	l := fq.New(s, fq.Config{RateBps: rate}, d.Deliver)
	var cubics, dctcps []*tcp.Endpoint
	id := 1
	mk := func(cc tcp.CongestionControl, mode tcp.ECNMode) *tcp.Endpoint {
		ep := tcp.NewWithEnqueuer(s, l.Enqueue, tcp.Config{
			ID: id, CC: cc, ECN: mode, BaseRTT: rtt,
		})
		d.Register(id, ep.DeliverData)
		ep.Start()
		id++
		return ep
	}
	for i := 0; i < na; i++ {
		cubics = append(cubics, mk(&tcp.Cubic{}, tcp.ECNOff))
	}
	for i := 0; i < nb; i++ {
		dctcps = append(dctcps, mk(&tcp.DCTCP{}, tcp.ECNScalable))
	}
	s.At(warm, func() {
		now := s.Now()
		for _, ep := range append(append([]*tcp.Endpoint{}, cubics...), dctcps...) {
			ep.Goodput.Reset(now)
		}
		l.Sojourn = stats.Sample{}
	})
	s.RunUntil(dur)
	now := s.Now()
	mean := func(eps []*tcp.Endpoint) float64 {
		if len(eps) == 0 {
			return 0
		}
		var sum float64
		for _, ep := range eps {
			sum += ep.Goodput.RateBps(now)
		}
		return sum / float64(len(eps))
	}
	row := FQRow{Util: l.Utilization()}
	if d := mean(dctcps); d > 0 {
		row.Ratio = mean(cubics) / d
	}
	row.DelayMs = scaleQ(quantiles(&l.Sojourn), 1e3)
	var rates []float64
	for _, ep := range append(append([]*tcp.Endpoint{}, cubics...), dctcps...) {
		rates = append(rates, ep.Goodput.RateBps(now))
	}
	row.Jain = stats.JainIndex(rates)
	return row
}

// PrintArrangements writes the three-way comparison: coupled single queue,
// DualPI2 dual queue, and FQ-CoDel per-flow queues.
func PrintArrangements(w io.Writer, dq *DualQResult, fqr FQRow) {
	fmt.Fprintln(w, "# Queue arrangements under 1 Cubic + 1 DCTCP (40 Mb/s, RTT 10 ms)")
	fmt.Fprintln(w, "arrangement\tratio\tjain\tscalable_delay_ms\tclassic_delay_ms\tutil\tnetwork-needs")
	fmt.Fprintf(w, "single-pi2\t%.3f\t%.3f\t%.2f\t%.2f\t%.3f\tECN classifier only\n",
		dq.SingleRatio, dq.JainSingle, dq.SingleLDelayMs.Mean, dq.SingleCDelayMs.Mean, dq.SingleUtil)
	fmt.Fprintf(w, "dualpi2\t%.3f\t%.3f\t%.2f\t%.2f\t%.3f\tECN classifier + 2 queues\n",
		dq.DualRatio, dq.JainDual, dq.DualLDelayMs.Mean, dq.DualCDelayMs.Mean, dq.DualUtil)
	fmt.Fprintf(w, "fq-codel\t%.3f\t%.3f\t%.2f\t%.2f\t%.3f\tper-flow state + 5-tuple inspection\n",
		fqr.Ratio, fqr.Jain, fqr.DelayMs.Mean, fqr.DelayMs.Mean, fqr.Util)
}

// Print writes the comparison table.
func (r *DualQResult) Print(w io.Writer) {
	fmt.Fprintln(w, "# DualPI2 extension: single coupled queue vs dual queue (40 Mb/s, RTT 10 ms)")
	fmt.Fprintln(w, "arrangement\tratio\tjain\tL_mean_ms\tL_p99_ms\tC_mean_ms\tC_p99_ms\tutil")
	fmt.Fprintf(w, "single-queue\t%.3f\t%.3f\t%.2f\t%.2f\t%.2f\t%.2f\t%.3f\n",
		r.SingleRatio, r.JainSingle,
		r.SingleLDelayMs.Mean, r.SingleLDelayMs.P99,
		r.SingleCDelayMs.Mean, r.SingleCDelayMs.P99, r.SingleUtil)
	fmt.Fprintf(w, "dualpi2\t%.3f\t%.3f\t%.2f\t%.2f\t%.2f\t%.2f\t%.3f\n",
		r.DualRatio, r.JainDual,
		r.DualLDelayMs.Mean, r.DualLDelayMs.P99,
		r.DualCDelayMs.Mean, r.DualCDelayMs.P99, r.DualUtil)
	fmt.Fprintln(w, "# the dual queue holds Scalable (L) delay near zero while the Classic (C)")
	fmt.Fprintln(w, "# queue keeps its 20 ms target — the step the paper's conclusion points to")
}
