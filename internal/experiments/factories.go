package experiments

import (
	"math/rand"
	"time"

	"pi2/internal/aqm"
	"pi2/internal/core"
)

// PI2Factory builds the paper's PI2 AQM (Table 1 defaults scaled to the
// given target; gains α = 5/16, β = 50/16, T = 32 ms, k = 2).
func PI2Factory(target time.Duration) AQMFactory {
	return func(rng *rand.Rand) aqm.AQM {
		return core.New(core.Config{Target: target}, rng)
	}
}

// PIEFactory builds the full Linux-style PIE baseline with the paper's
// reworked ECN overload rule (never drop ECN-capable packets; cap p at 25 %)
// so coexistence results have no discontinuity, exactly as in Section 5.
func PIEFactory(target time.Duration) AQMFactory {
	return func(rng *rand.Rand) aqm.AQM {
		cfg := aqm.DefaultPIEConfig()
		cfg.Target = target
		cfg.ECN = true
		cfg.ReworkedECN = true
		return aqm.NewPIE(cfg, rng)
	}
}

// BarePIEFactory builds PIE with every extra heuristic disabled (the
// paper's bare-PIE control).
func BarePIEFactory(target time.Duration) AQMFactory {
	return func(rng *rand.Rand) aqm.AQM {
		cfg := aqm.BarePIEConfig()
		cfg.Target = target
		cfg.ECN = true
		cfg.ReworkedECN = true
		return aqm.NewPIE(cfg, rng)
	}
}

// PIFactory builds the plain non-tuned PI AQM — the 'pi' curve of Figure 6
// (PIE base gains applied directly, no scaling, no squaring).
func PIFactory(target time.Duration) AQMFactory {
	return func(rng *rand.Rand) aqm.AQM {
		return aqm.NewPI(aqm.PIConfig{Alpha: 0.125, Beta: 1.25, Target: target}, rng)
	}
}

// FactoryByName resolves an AQM name used on CLI flags and sweep labels.
// Recognized: pi2, pie, bare-pie, pi, red, codel, taildrop.
func FactoryByName(name string, target time.Duration) (AQMFactory, bool) {
	switch name {
	case "pi2":
		return PI2Factory(target), true
	case "pie":
		return PIEFactory(target), true
	case "bare-pie":
		return BarePIEFactory(target), true
	case "pi":
		return PIFactory(target), true
	case "red":
		return func(rng *rand.Rand) aqm.AQM {
			return aqm.NewRED(aqm.REDConfig{ECN: true}, rng)
		}, true
	case "codel":
		return func(rng *rand.Rand) aqm.AQM {
			return aqm.NewCoDel(aqm.CoDelConfig{ECN: true})
		}, true
	case "taildrop":
		return func(rng *rand.Rand) aqm.AQM { return aqm.TailDrop{} }, true
	}
	return nil, false
}
