package experiments

import (
	"time"

	"pi2/internal/ff"
	"pi2/internal/link"
	"pi2/internal/tcp"
)

// Fast-forward integration: the scenario runner's main loop alternates
// between packet mode and analytic epochs when Scenario.FastForward is on
// and the scenario is structurally eligible. Eligibility is decided once,
// up front: the engine only models a fixed population of always-on bulk
// flows through one FastForwarder AQM, so any scheduled discontinuity —
// staged arrivals, UDP or web workloads, capacity changes, impairments —
// or SACK recovery keeps the classic per-packet loop. The warm-up reset is
// the one discontinuity eligible scenarios do have; it is handled as an
// epoch barrier rather than an exclusion.

// ffForceZero is a test hook: the engine detects epochs but commits zero
// periods, so a -ff run must stay byte-identical to a -ff-off run (the
// zero-length-epoch property test).
var ffForceZero bool

// ffEligible reports whether the scenario's structure admits fast-forward.
func ffEligible(sc Scenario) bool {
	if !sc.FastForward || sc.SACK || sc.Staged != nil ||
		len(sc.UDP) > 0 || len(sc.Web) > 0 || len(sc.RateChanges) > 0 {
		return false
	}
	if sc.Impair != nil && sc.Impair.Active() {
		return false
	}
	if len(sc.Bulk) == 0 {
		return false
	}
	for _, b := range sc.Bulk {
		if b.StartAt != 0 || b.StopAt != 0 || b.SACK {
			return false
		}
	}
	return true
}

// newFFEngine builds the engine for an eligible scenario, or nil when the
// scenario or the AQM does not support fast-forward.
func newFFEngine(sc Scenario, clock ff.Clock, l *link.Link, flows []*tcp.Endpoint) *ff.Engine {
	if !ffEligible(sc) {
		return nil
	}
	eng, ok := ff.New(clock, l, flows)
	if !ok {
		return nil
	}
	eng.ForceZero = ffForceZero
	return eng
}

// runFastForward is the hybrid main loop: attempt an analytic epoch, then
// run packet mode for a few AQM update periods (re-sampling the entry
// predicate at packet fidelity), until the run ends. Epochs never cross the
// warm-up reset or the end of the run — those are the barriers — and the
// loop invokes warmReset itself the moment the clock reaches the boundary
// (the runner does not schedule it as an event in fast-forward mode, since
// ShiftPending would translate it along with the frozen packet processes).
func runFastForward(eng *ff.Engine, now func() time.Duration,
	runUntil func(time.Duration), sc Scenario, warmReset func()) {
	chunk := 4 * eng.Tupdate()
	warmed := false
	for {
		t := now()
		if !warmed && t >= sc.WarmUp {
			warmReset()
			warmed = true
		}
		if t >= sc.Duration {
			return
		}
		barrier := sc.Duration
		if !warmed && sc.WarmUp < barrier {
			barrier = sc.WarmUp
		}
		eng.TryAdvance(barrier)
		if !warmed && now() >= sc.WarmUp {
			warmReset()
			warmed = true
		}
		next := now() + chunk
		if !warmed && next > sc.WarmUp {
			next = sc.WarmUp
		}
		if next > sc.Duration {
			next = sc.Duration
		}
		runUntil(next)
	}
}

// ffCollect copies the engine's telemetry into the result.
func ffCollect(res *Result, eng *ff.Engine) {
	if eng == nil {
		return
	}
	res.FFEpochs = eng.Epochs
	res.FFZeroEpochs = eng.ZeroEpochs
	res.FFVirtualPkts = eng.VirtualPkts
	res.FFTime = eng.FFTime
}
