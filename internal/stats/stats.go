// Package stats provides the measurement primitives the experiment harness
// uses: streaming mean/variance, exact percentile collectors, CDFs,
// fixed-interval time-series samplers and byte-rate meters.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Welford accumulates a streaming mean and variance.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the sample variance (0 for fewer than two observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Var()) }

// Merge folds another accumulator into w using the parallel-variance
// combination (Chan et al.): the merged moments are exactly those of the
// concatenated observation streams, up to floating-point rounding.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n1, n2 := float64(w.n), float64(o.n)
	n := n1 + n2
	d := o.mean - w.mean
	w.mean += d * n2 / n
	w.m2 += o.m2 + d*d*n1*n2/n
	w.n += o.n
}

// Sample collects raw observations for exact percentiles.
// The zero value is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
	w      Welford
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
	s.w.Add(x)
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the mean of all observations (0 if empty).
func (s *Sample) Mean() float64 { return s.w.Mean() }

// Stddev returns the sample standard deviation.
func (s *Sample) Stddev() float64 { return s.w.Stddev() }

// Percentile returns the q-th percentile (q in [0,100]) using linear
// interpolation between closest ranks. It returns 0 for an empty sample.
func (s *Sample) Percentile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 100 {
		return s.xs[len(s.xs)-1]
	}
	pos := q / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Percentiles evaluates many percentiles with a single sort (Percentile
// alone also sorts lazily, but grouping the quantile family documents and
// guarantees the one-sort cost for reporting helpers).
func (s *Sample) Percentiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(s.xs) == 0 {
		return out
	}
	s.sort()
	for i, q := range qs {
		out[i] = s.Percentile(q)
	}
	return out
}

// Reset discards every observation but keeps the backing array, so
// warm-up boundaries don't reallocate collectors mid-run.
func (s *Sample) Reset() {
	s.xs = s.xs[:0]
	s.sorted = false
	s.w = Welford{}
}

// Min returns the smallest observation (0 if empty).
func (s *Sample) Min() float64 { return s.Percentile(0) }

// Max returns the largest observation (0 if empty).
func (s *Sample) Max() float64 { return s.Percentile(100) }

// Merge incorporates every observation of other into s.
func (s *Sample) Merge(other *Sample) {
	for _, x := range other.xs {
		s.Add(x)
	}
}

// Values returns a copy of the raw observations in insertion-or-sorted
// order (unspecified); callers must not rely on ordering.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// CDF returns up to points (x, F(x)) pairs describing the empirical CDF.
func (s *Sample) CDF(points int) []CDFPoint {
	if len(s.xs) == 0 || points <= 0 {
		return nil
	}
	s.sort()
	if points > len(s.xs) {
		points = len(s.xs)
	}
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		idx := (i + 1) * len(s.xs) / points
		if idx > len(s.xs) {
			idx = len(s.xs)
		}
		out = append(out, CDFPoint{X: s.xs[idx-1], F: float64(idx) / float64(len(s.xs))})
	}
	return out
}

// CDFPoint is one point of an empirical CDF: F = P[value <= X].
type CDFPoint struct {
	X float64
	F float64
}

// Summary formats n, mean and the common percentiles; used in reports.
func (s *Sample) Summary() string {
	return fmt.Sprintf("n=%d mean=%.4g p25=%.4g p50=%.4g p99=%.4g",
		s.N(), s.Mean(), s.Percentile(25), s.Percentile(50), s.Percentile(99))
}

// TimeSeries samples a value at fixed intervals of virtual time.
// The experiment drivers use 1 s sampling to match the paper's plots.
type TimeSeries struct {
	Interval time.Duration
	Times    []time.Duration
	Values   []float64
}

// Record appends one (t, v) sample.
func (ts *TimeSeries) Record(t time.Duration, v float64) {
	ts.Times = append(ts.Times, t)
	ts.Values = append(ts.Values, v)
}

// Len returns the number of samples.
func (ts *TimeSeries) Len() int { return len(ts.Values) }

// Max returns the largest recorded value (0 if empty).
func (ts *TimeSeries) Max() float64 {
	m := 0.0
	for _, v := range ts.Values {
		if v > m {
			m = v
		}
	}
	return m
}

// MaxAfter returns the largest value recorded at or after t.
func (ts *TimeSeries) MaxAfter(t time.Duration) float64 {
	m := 0.0
	for i, v := range ts.Values {
		if ts.Times[i] >= t && v > m {
			m = v
		}
	}
	return m
}

// MeanAfter returns the mean of values recorded at or after t.
func (ts *TimeSeries) MeanAfter(t time.Duration) float64 {
	var sum float64
	var n int
	for i, v := range ts.Values {
		if ts.Times[i] >= t {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RateMeter integrates bytes over virtual time to yield bit rates.
type RateMeter struct {
	bytes     int64
	lastReset time.Duration
}

// Add accounts for n bytes delivered.
func (r *RateMeter) Add(n int) { r.bytes += int64(n) }

// Bytes returns the byte count since the last reset.
func (r *RateMeter) Bytes() int64 { return r.bytes }

// RateBps returns the average rate in bits/s between the last reset and now.
func (r *RateMeter) RateBps(now time.Duration) float64 {
	dt := (now - r.lastReset).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64(r.bytes) * 8 / dt
}

// Reset zeroes the meter and starts a new measurement window at now.
func (r *RateMeter) Reset(now time.Duration) {
	r.bytes = 0
	r.lastReset = now
}

// JainIndex computes Jain's fairness index (Σx)²/(n·Σx²) over allocations:
// 1 for perfectly equal shares, 1/n when one participant takes everything.
// Used by the coexistence experiments to summarize per-flow rates.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}
