package stats

import (
	"bytes"
	"encoding/gob"
)

// Gob support for the collectors whose state lives in unexported fields.
// The fleet protocol (internal/fleet) ships driver results between worker
// and coordinator processes as gob blobs; gob silently drops unexported
// fields, so without these methods a Welford, Sample or LogHistogram would
// arrive empty and cross-rep aggregation under -workers would diverge from
// in-process runs. Every float64 crosses bit-exactly (gob preserves the
// bits), and Sample keeps its observation order, so merged moments are
// identical to the in-process fold.

type welfordWire struct {
	N        int64
	Mean, M2 float64
}

// GobEncode implements gob.GobEncoder (value receiver: Welford is embedded
// by value in result structs).
func (w Welford) GobEncode() ([]byte, error) {
	return gobBytes(welfordWire{N: w.n, Mean: w.mean, M2: w.m2})
}

// GobDecode implements gob.GobDecoder.
func (w *Welford) GobDecode(data []byte) error {
	var v welfordWire
	if err := gobValue(data, &v); err != nil {
		return err
	}
	w.n, w.mean, w.m2 = v.N, v.Mean, v.M2
	return nil
}

type sampleWire struct {
	Xs     []float64
	Sorted bool
	W      Welford
}

// GobEncode implements gob.GobEncoder. Observation order is preserved so a
// post-transfer Merge accumulates in the same order as in-process.
func (s Sample) GobEncode() ([]byte, error) {
	return gobBytes(sampleWire{Xs: s.xs, Sorted: s.sorted, W: s.w})
}

// GobDecode implements gob.GobDecoder.
func (s *Sample) GobDecode(data []byte) error {
	var v sampleWire
	if err := gobValue(data, &v); err != nil {
		return err
	}
	s.xs, s.sorted, s.w = v.Xs, v.Sorted, v.W
	return nil
}

type logHistWire struct {
	Floor, LogFloor, LogWidth, InvWidth float64
	Bins                                []int64
	N                                   int64
	Min, Max                            float64
	W                                   Welford
}

// GobEncode implements gob.GobEncoder.
func (h LogHistogram) GobEncode() ([]byte, error) {
	return gobBytes(logHistWire{
		Floor: h.floor, LogFloor: h.logFloor, LogWidth: h.logWidth,
		InvWidth: h.invWidth, Bins: h.bins, N: h.n, Min: h.min, Max: h.max,
		W: h.w,
	})
}

// GobDecode implements gob.GobDecoder.
func (h *LogHistogram) GobDecode(data []byte) error {
	var v logHistWire
	if err := gobValue(data, &v); err != nil {
		return err
	}
	h.floor, h.logFloor, h.logWidth, h.invWidth = v.Floor, v.LogFloor, v.LogWidth, v.InvWidth
	h.bins, h.n, h.min, h.max, h.w = v.Bins, v.N, v.Min, v.Max, v.W
	return nil
}

func gobBytes(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobValue(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
