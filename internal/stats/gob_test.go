package stats

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"
)

func gobRoundTrip(t *testing.T, in, out any) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

func TestWelfordGobRoundTrip(t *testing.T) {
	var w Welford
	for i := 0; i < 1000; i++ {
		w.Add(math.Sin(float64(i)) * 1e3)
	}
	var got Welford
	gobRoundTrip(t, &w, &got)
	if got != w {
		t.Fatalf("round trip changed state: got %+v want %+v", got, w)
	}
}

func TestSampleGobRoundTrip(t *testing.T) {
	var s Sample
	for i := 0; i < 500; i++ {
		s.Add(math.Cos(float64(i)) * 10)
	}
	s.Percentile(99) // sort in place: order must survive the trip
	var got Sample
	gobRoundTrip(t, &s, &got)
	if got.N() != s.N() || got.Mean() != s.Mean() || got.Stddev() != s.Stddev() {
		t.Fatalf("moments changed: got (%d %v %v) want (%d %v %v)",
			got.N(), got.Mean(), got.Stddev(), s.N(), s.Mean(), s.Stddev())
	}
	gx, sx := got.Values(), s.Values()
	for i := range sx {
		if gx[i] != sx[i] {
			t.Fatalf("observation %d changed: %v != %v", i, gx[i], sx[i])
		}
	}
	// Merging the decoded sample must accumulate bit-identically to
	// merging the original — the fleet aggregation contract.
	var a, b Sample
	a.Merge(&s)
	b.Merge(&got)
	if a.Mean() != b.Mean() || a.Stddev() != b.Stddev() {
		t.Fatalf("merge diverged: %v/%v vs %v/%v", a.Mean(), a.Stddev(), b.Mean(), b.Stddev())
	}
}

func TestLogHistogramGobRoundTrip(t *testing.T) {
	h := NewDelayHistogram()
	for i := 0; i < 2000; i++ {
		h.Add(math.Abs(math.Sin(float64(i))) * 0.2)
	}
	var got LogHistogram
	gobRoundTrip(t, h, &got)
	if got.N() != h.N() || got.Mean() != h.Mean() || got.Min() != h.Min() || got.Max() != h.Max() {
		t.Fatalf("summary changed after round trip")
	}
	hp := h.Percentiles(1, 25, 50, 99)
	gp := got.Percentiles(1, 25, 50, 99)
	for i := range hp {
		if hp[i] != gp[i] {
			t.Fatalf("percentile %d changed: %v != %v", i, hp[i], gp[i])
		}
	}
	// Geometry must survive so Merge with a sibling histogram still works.
	sib := NewDelayHistogram()
	sib.Add(0.01)
	sib.Merge(&got)
	if sib.N() != h.N()+1 {
		t.Fatalf("merge after decode: n=%d want %d", sib.N(), h.N()+1)
	}
}
