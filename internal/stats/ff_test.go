package stats

import (
	"math"
	"testing"
)

// TestWelfordAddNMatchesLoop checks the O(1) bulk insert against n repeated
// Adds: identical moments up to floating-point rounding.
func TestWelfordAddNMatchesLoop(t *testing.T) {
	var bulk, loop Welford
	for _, step := range []struct {
		x float64
		n int64
	}{{0.02, 1000}, {0.5, 1}, {0.021, 40000}, {1e-6, 3}} {
		bulk.AddN(step.x, step.n)
		for i := int64(0); i < step.n; i++ {
			loop.Add(step.x)
		}
	}
	if bulk.N() != loop.N() {
		t.Fatalf("n: %d vs %d", bulk.N(), loop.N())
	}
	if math.Abs(bulk.Mean()-loop.Mean()) > 1e-12 {
		t.Fatalf("mean: %g vs %g", bulk.Mean(), loop.Mean())
	}
	if math.Abs(bulk.Stddev()-loop.Stddev()) > 1e-9 {
		t.Fatalf("stddev: %g vs %g", bulk.Stddev(), loop.Stddev())
	}
}

func TestWelfordAddNZeroIsNoop(t *testing.T) {
	var w Welford
	w.Add(1)
	w.AddN(5, 0)
	w.AddN(5, -3)
	if w.N() != 1 || w.Mean() != 1 {
		t.Fatalf("mutated: n=%d mean=%g", w.N(), w.Mean())
	}
}

// TestLogHistogramAddNMatchesLoop checks bulk inserts land in the same bins
// with the same moments as the equivalent Add loop, including the underflow
// bin and values interleaved with single Adds.
func TestLogHistogramAddNMatchesLoop(t *testing.T) {
	bulk := NewDelayHistogram()
	loop := NewDelayHistogram()
	steps := []struct {
		x float64
		n int64
	}{{0.020, 5000}, {1e-9, 10}, {0.5, 200}, {2e-6, 1}}
	for _, st := range steps {
		bulk.AddN(st.x, st.n)
		for i := int64(0); i < st.n; i++ {
			loop.Add(st.x)
		}
		bulk.Add(0.033)
		loop.Add(0.033)
	}
	if bulk.N() != loop.N() {
		t.Fatalf("n: %d vs %d", bulk.N(), loop.N())
	}
	if bulk.Min() != loop.Min() || bulk.Max() != loop.Max() {
		t.Fatalf("extremes: [%g,%g] vs [%g,%g]", bulk.Min(), bulk.Max(), loop.Min(), loop.Max())
	}
	if math.Abs(bulk.Mean()-loop.Mean()) > 1e-12 {
		t.Fatalf("mean: %g vs %g", bulk.Mean(), loop.Mean())
	}
	for _, q := range []float64{1, 25, 50, 90, 99, 99.9} {
		if b, l := bulk.Percentile(q), loop.Percentile(q); b != l {
			t.Fatalf("p%g: %g vs %g", q, b, l)
		}
	}
}

// TestSampleAddN checks the exact collector's bulk insert appends the right
// count with exact moments.
func TestSampleAddN(t *testing.T) {
	var s Sample
	s.AddN(0.25, 4)
	s.Add(0.75)
	if s.N() != 5 {
		t.Fatalf("n = %d", s.N())
	}
	if got := s.Mean(); math.Abs(got-0.35) > 1e-12 {
		t.Fatalf("mean = %g", got)
	}
	if got := s.Percentile(50); got != 0.25 {
		t.Fatalf("median = %g", got)
	}
}
