package stats

import "math"

// Quantiler is the shared interface of the distribution collectors: the
// exact Sample (stores every observation, exact percentiles) and the
// constant-memory LogHistogram (fixed bins, ~relative-width percentile
// error). Experiment drivers program against this interface so the heavy
// many-flow tier can swap collectors without touching the reporting code.
type Quantiler interface {
	// Add records one observation.
	Add(x float64)
	// N returns the number of observations.
	N() int
	// Mean returns the exact running mean (0 if empty).
	Mean() float64
	// Stddev returns the exact sample standard deviation.
	Stddev() float64
	// Min and Max return the exact extremes (0 if empty).
	Min() float64
	Max() float64
	// Percentile returns the q-th percentile (q in [0,100]).
	Percentile(q float64) float64
	// Percentiles evaluates many percentiles in one pass: one sort for
	// Sample, one cumulative bin walk per quantile for LogHistogram.
	Percentiles(qs ...float64) []float64
	// Reset discards every observation but keeps internal capacity, so a
	// warm-up boundary does not reallocate.
	Reset()
}

// Compile-time interface checks.
var (
	_ Quantiler = (*Sample)(nil)
	_ Quantiler = (*LogHistogram)(nil)
)

// LogHistogram is a constant-memory streaming quantile collector:
// observations land in geometrically-spaced bins, so the relative width of
// every bin — and therefore the worst-case relative percentile error — is
// fixed at construction. Mean, standard deviation, min and max stay exact
// (Welford accumulator and scalar extremes). After construction it never
// allocates: the bin array is fixed regardless of how many observations
// arrive, which is what makes multi-minute many-thousand-flow simulations
// feasible (the exact Sample stores one float64 per forwarded packet).
//
// Values below the floor (including zero — an empty queue has zero sojourn)
// are counted in a dedicated underflow bin and reported as the exact
// minimum, so their absolute error is bounded by the floor itself.
type LogHistogram struct {
	floor    float64 // lower edge of the first log bin
	logFloor float64 // ln(floor)
	logWidth float64 // ln(1 + relWidth): bin width in log space
	invWidth float64 // 1/logWidth

	// bins[0] is the underflow bin (x < floor); bins[i] (i >= 1) covers
	// [floor·g^(i-1), floor·g^i) with g = 1+relWidth. The last bin also
	// absorbs overflow.
	bins []int64

	n        int64
	min, max float64
	w        Welford
}

// NewLogHistogram builds a histogram covering [floor, ceil] with bins of
// the given relative width (e.g. 0.02 for ~2% percentile resolution).
// It panics on a non-positive floor, a ceil not above floor, or a
// non-positive relative width — all construction-time programming errors.
func NewLogHistogram(floor, ceil, relWidth float64) *LogHistogram {
	if floor <= 0 || ceil <= floor || relWidth <= 0 {
		panic("stats: NewLogHistogram requires 0 < floor < ceil and relWidth > 0")
	}
	logWidth := math.Log1p(relWidth)
	nBins := int(math.Ceil(math.Log(ceil/floor)/logWidth)) + 1
	return &LogHistogram{
		floor:    floor,
		logFloor: math.Log(floor),
		logWidth: logWidth,
		invWidth: 1 / logWidth,
		bins:     make([]int64, 1+nBins),
	}
}

// NewDelayHistogram builds the collector the heavy-traffic tier uses for
// queue-delay, FCT, probability and utilization distributions: 1 µs floor,
// 10⁴ s ceiling, ~2% relative bin width (≈1200 bins, ~10 KB — constant).
func NewDelayHistogram() *LogHistogram {
	return NewLogHistogram(1e-6, 1e4, 0.02)
}

// Add records one observation. It never allocates.
func (h *LogHistogram) Add(x float64) {
	if h.n == 0 || x < h.min {
		h.min = x
	}
	if h.n == 0 || x > h.max {
		h.max = x
	}
	h.n++
	h.w.Add(x)
	idx := 0
	if x >= h.floor {
		idx = 1 + int((math.Log(x)-h.logFloor)*h.invWidth)
		if idx >= len(h.bins) {
			idx = len(h.bins) - 1
		}
	}
	h.bins[idx]++
}

// N returns the number of observations.
func (h *LogHistogram) N() int { return int(h.n) }

// Mean returns the exact mean (0 if empty).
func (h *LogHistogram) Mean() float64 { return h.w.Mean() }

// Stddev returns the exact sample standard deviation.
func (h *LogHistogram) Stddev() float64 { return h.w.Stddev() }

// Min returns the exact smallest observation (0 if empty).
func (h *LogHistogram) Min() float64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest observation (0 if empty).
func (h *LogHistogram) Max() float64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Percentile returns the q-th percentile (q in [0,100]) with geometric
// interpolation inside the containing bin, clamped to the exact [min, max].
// The relative error is bounded by the construction-time bin width.
func (h *LogHistogram) Percentile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 100 {
		return h.max
	}
	target := q / 100 * float64(h.n)
	var cum float64
	for i, c := range h.bins {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= target {
			if i == 0 {
				// Underflow bin: everything here sits in [min, floor),
				// so min is within floor of the truth.
				return h.min
			}
			frac := (target - cum) / float64(c)
			v := math.Exp(h.logFloor + (float64(i-1)+frac)*h.logWidth)
			return h.clamp(v)
		}
		cum += float64(c)
	}
	return h.max
}

// Percentiles evaluates many percentiles; each costs one bin walk.
func (h *LogHistogram) Percentiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = h.Percentile(q)
	}
	return out
}

// Merge folds another histogram into h: bin counts add, the Welford
// moments combine exactly (Chan et al.), and min/max stay exact. Both
// histograms must share bin geometry (same floor, relative width and bin
// count — e.g. two NewDelayHistogram instances); merging mismatched
// geometries would silently misfile counts, so it panics instead.
func (h *LogHistogram) Merge(other *LogHistogram) {
	if other.floor != h.floor || other.logWidth != h.logWidth || len(other.bins) != len(h.bins) {
		panic("stats: LogHistogram.Merge requires identical bin geometry")
	}
	if other.n == 0 {
		return
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.n == 0 || other.max > h.max {
		h.max = other.max
	}
	for i, c := range other.bins {
		h.bins[i] += c
	}
	h.n += other.n
	h.w.Merge(other.w)
}

// Reset discards all observations; the bin array is kept and zeroed.
func (h *LogHistogram) Reset() {
	clear(h.bins)
	h.n = 0
	h.min = 0
	h.max = 0
	h.w = Welford{}
}

func (h *LogHistogram) clamp(v float64) float64 {
	if v < h.min {
		return h.min
	}
	if v > h.max {
		return h.max
	}
	return v
}
