package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestWelfordMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var w Welford
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		w.Add(xs[i])
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	variance := ss / float64(len(xs)-1)
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Errorf("mean = %v, want %v", w.Mean(), mean)
	}
	if math.Abs(w.Var()-variance) > 1e-6 {
		t.Errorf("var = %v, want %v", w.Var(), variance)
	}
	if w.N() != 1000 {
		t.Errorf("N = %d", w.N())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Stddev() != 0 {
		t.Error("empty Welford not zero")
	}
	w.Add(5)
	if w.Mean() != 5 || w.Var() != 0 {
		t.Error("single-value Welford wrong")
	}
}

func TestPercentileExact(t *testing.T) {
	var s Sample
	for _, v := range []float64{10, 20, 30, 40, 50} {
		s.Add(v)
	}
	cases := []struct{ q, want float64 }{
		{0, 10}, {25, 20}, {50, 30}, {75, 40}, {100, 50},
		{-1, 10}, {101, 50},
		{12.5, 15}, // interpolation midway between 10 and 20
	}
	for _, c := range cases {
		if got := s.Percentile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%v = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	var s Sample
	if s.Percentile(50) != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty sample should return zeros")
	}
}

func TestSampleAddAfterPercentile(t *testing.T) {
	var s Sample
	s.Add(2)
	if s.Percentile(50) != 2 {
		t.Fatal("median of {2}")
	}
	s.Add(1) // must re-sort lazily
	if got := s.Percentile(0); got != 1 {
		t.Errorf("min after late Add = %v, want 1", got)
	}
}

func TestCDFMonotonic(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			s.Add(x)
		}
		pts := s.CDF(10)
		for i := 1; i < len(pts); i++ {
			if pts[i].X < pts[i-1].X || pts[i].F < pts[i-1].F {
				return false
			}
		}
		if n := len(pts); n > 0 && math.Abs(pts[n-1].F-1) > 1e-12 {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertyPercentileBounds: any percentile lies within [min, max].
func TestPropertyPercentileBounds(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		var s Sample
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			s.Add(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		if s.N() == 0 {
			return s.Percentile(q) == 0
		}
		p := s.Percentile(math.Mod(math.Abs(q), 101))
		return p >= lo && p <= hi
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMerge(t *testing.T) {
	var a, b Sample
	a.Add(1)
	a.Add(2)
	b.Add(3)
	a.Merge(&b)
	if a.N() != 3 || a.Max() != 3 {
		t.Errorf("merge failed: n=%d max=%v", a.N(), a.Max())
	}
}

func TestValuesIsACopy(t *testing.T) {
	var s Sample
	s.Add(1)
	v := s.Values()
	v[0] = 99
	if s.Percentile(50) != 1 {
		t.Error("Values leaked internal storage")
	}
}

func TestTimeSeries(t *testing.T) {
	ts := TimeSeries{Interval: time.Second}
	ts.Record(1*time.Second, 5)
	ts.Record(2*time.Second, 9)
	ts.Record(3*time.Second, 2)
	if ts.Len() != 3 {
		t.Fatalf("Len = %d", ts.Len())
	}
	if ts.Max() != 9 {
		t.Errorf("Max = %v", ts.Max())
	}
	if ts.MaxAfter(3*time.Second) != 2 {
		t.Errorf("MaxAfter(3s) = %v", ts.MaxAfter(3*time.Second))
	}
	if got := ts.MeanAfter(2 * time.Second); math.Abs(got-5.5) > 1e-9 {
		t.Errorf("MeanAfter(2s) = %v, want 5.5", got)
	}
	if ts.MeanAfter(10*time.Second) != 0 {
		t.Error("MeanAfter past end should be 0")
	}
}

func TestRateMeter(t *testing.T) {
	var r RateMeter
	r.Reset(0)
	r.Add(1000) // 1000 bytes over 1 s = 8000 bit/s
	if got := r.RateBps(time.Second); math.Abs(got-8000) > 1e-9 {
		t.Errorf("RateBps = %v, want 8000", got)
	}
	if r.RateBps(0) != 0 {
		t.Error("zero interval should give 0")
	}
	r.Reset(time.Second)
	if r.Bytes() != 0 {
		t.Error("Reset did not clear bytes")
	}
	r.Add(500)
	if got := r.RateBps(2 * time.Second); math.Abs(got-4000) > 1e-9 {
		t.Errorf("RateBps after reset = %v, want 4000", got)
	}
}

func TestSampleSummary(t *testing.T) {
	var s Sample
	s.Add(1)
	if got := s.Summary(); got == "" {
		t.Error("empty summary")
	}
}

func TestCDFPointsCap(t *testing.T) {
	var s Sample
	for i := 0; i < 5; i++ {
		s.Add(float64(i))
	}
	if got := len(s.CDF(100)); got != 5 {
		t.Errorf("CDF points = %d, want 5 (capped at N)", got)
	}
	if s.CDF(0) != nil {
		t.Error("CDF(0) should be nil")
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal shares: %v, want 1", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("monopoly: %v, want 1/n", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Errorf("empty: %v", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 0 {
		t.Errorf("all zero: %v", got)
	}
	// Scale invariance.
	a := JainIndex([]float64{1, 2, 3})
	b := JainIndex([]float64{10, 20, 30})
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("not scale invariant: %v vs %v", a, b)
	}
}
