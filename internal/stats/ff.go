package stats

import "math"

// This file holds the bulk-insert fast paths the fast-forward engine uses:
// an analytically advanced epoch contributes thousands of equal-valued
// observations (e.g. "the queue delay held at 21 ms while 40k packets
// drained"), and inserting them one Add at a time would erase much of the
// epoch's speedup. AddN incorporates n copies of one value in O(1).

// BulkAdder is implemented by collectors that can absorb n equal
// observations in one call. Both Quantiler implementations satisfy it.
type BulkAdder interface {
	AddN(x float64, n int64)
}

var (
	_ BulkAdder = (*Sample)(nil)
	_ BulkAdder = (*LogHistogram)(nil)
)

// AddN incorporates n observations of the same value x in O(1): n copies of
// x form a sub-stream with mean x and zero variance, so the parallel-moment
// combination (Chan et al.) applies with m2 = 0. Exactly equivalent to
// calling Add(x) n times, up to floating-point rounding.
func (w *Welford) AddN(x float64, n int64) {
	if n <= 0 {
		return
	}
	w.Merge(Welford{n: n, mean: x})
}

// AddN records n observations of x. The histogram stays allocation-free:
// one bin increment, one Welford merge, one min/max update.
func (h *LogHistogram) AddN(x float64, n int64) {
	if n <= 0 {
		return
	}
	if h.n == 0 || x < h.min {
		h.min = x
	}
	if h.n == 0 || x > h.max {
		h.max = x
	}
	h.n += n
	h.w.AddN(x, n)
	idx := 0
	if x >= h.floor {
		idx = 1 + int((math.Log(x)-h.logFloor)*h.invWidth)
		if idx >= len(h.bins) {
			idx = len(h.bins) - 1
		}
	}
	h.bins[idx] += n
}

// AddN records n observations of x on the exact collector. Unlike the
// histogram this appends n entries (the Sample's contract is to hold every
// observation); non-compact fast-forward runs accept that memory cost.
func (s *Sample) AddN(x float64, n int64) {
	for ; n > 0; n-- {
		s.Add(x)
	}
}
