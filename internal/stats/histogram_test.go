package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestLogHistogramConstructorPanics(t *testing.T) {
	for _, tc := range []struct {
		name             string
		floor, ceil, rel float64
	}{
		{"zero floor", 0, 1, 0.02},
		{"negative floor", -1, 1, 0.02},
		{"ceil below floor", 1, 0.5, 0.02},
		{"zero width", 1e-6, 1, 0},
		{"negative width", 1e-6, 1, -0.1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewLogHistogram(%g, %g, %g) did not panic", tc.floor, tc.ceil, tc.rel)
				}
			}()
			NewLogHistogram(tc.floor, tc.ceil, tc.rel)
		})
	}
}

func TestLogHistogramEmpty(t *testing.T) {
	h := NewDelayHistogram()
	if h.N() != 0 || h.Mean() != 0 || h.Stddev() != 0 || h.Percentile(50) != 0 {
		t.Fatalf("empty histogram not zero-valued: n=%d mean=%g", h.N(), h.Mean())
	}
}

func TestLogHistogramExactScalars(t *testing.T) {
	// Mean, stddev, min, max, and N are tracked exactly (Welford + scalars),
	// so they must agree with the exact Sample to float precision, not just
	// within the bin width.
	h := NewDelayHistogram()
	s := &Sample{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		x := math.Exp(rng.NormFloat64()*2 - 8) // log-normal around ~0.3 ms
		h.Add(x)
		s.Add(x)
	}
	if h.N() != s.N() {
		t.Fatalf("N: %d vs %d", h.N(), s.N())
	}
	if math.Abs(h.Mean()-s.Mean()) > 1e-12*math.Abs(s.Mean()) {
		t.Errorf("mean: %g vs %g", h.Mean(), s.Mean())
	}
	if math.Abs(h.Stddev()-s.Stddev()) > 1e-9*s.Stddev() {
		t.Errorf("stddev: %g vs %g", h.Stddev(), s.Stddev())
	}
	if h.Min() != s.Min() || h.Max() != s.Max() {
		t.Errorf("min/max: %g/%g vs %g/%g", h.Min(), h.Max(), s.Min(), s.Max())
	}
}

func TestLogHistogramPercentilesVsExact(t *testing.T) {
	// Percentiles come from the binned counts, so the contract is the bin's
	// relative width (2%), checked against the exact collector across
	// distributions with very different shapes.
	dists := map[string]func(*rand.Rand) float64{
		"uniform":   func(r *rand.Rand) float64 { return 1e-4 + r.Float64()*0.1 },
		"lognormal": func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64()*1.5 - 6) },
		"exp":       func(r *rand.Rand) float64 { return r.ExpFloat64() * 0.02 },
		"bimodal": func(r *rand.Rand) float64 {
			if r.Intn(2) == 0 {
				return 1e-3 + r.Float64()*1e-4
			}
			return 0.5 + r.Float64()*0.05
		},
	}
	for name, gen := range dists {
		t.Run(name, func(t *testing.T) {
			h := NewDelayHistogram()
			s := &Sample{}
			rng := rand.New(rand.NewSource(42))
			// Enough samples that even at p99.9 the gap between adjacent
			// order statistics is below the bin width — otherwise the two
			// collectors' different interpolation rules dominate the error.
			for i := 0; i < 200000; i++ {
				x := gen(rng)
				h.Add(x)
				s.Add(x)
			}
			for _, q := range []float64{1, 5, 25, 50, 75, 90, 95, 99, 99.9} {
				exact := s.Percentile(q)
				approx := h.Percentile(q)
				if exact <= 0 {
					continue
				}
				// One bin of relative error plus interpolation slack against
				// the exact collector's own between-sample interpolation.
				if rel := math.Abs(approx-exact) / exact; rel > 0.021 {
					t.Errorf("p%.1f: histogram %g vs exact %g (rel err %.4f)", q, approx, exact, rel)
				}
			}
			// Percentiles must agree with one-at-a-time Percentile calls.
			qs := []float64{50, 99}
			got := h.Percentiles(qs...)
			for i, q := range qs {
				if got[i] != h.Percentile(q) {
					t.Errorf("Percentiles(%v)[%d] = %g != Percentile(%g) = %g", qs, i, got[i], q, h.Percentile(q))
				}
			}
		})
	}
}

func TestLogHistogramUnderflow(t *testing.T) {
	// Values below the floor (including zero) land in the underflow bin and
	// report the exact minimum, bounding absolute error by the floor itself.
	h := NewLogHistogram(1e-6, 1, 0.02)
	h.Add(0)
	h.Add(2e-7)
	h.Add(5e-7)
	if h.N() != 3 {
		t.Fatalf("N = %d", h.N())
	}
	if got := h.Percentile(50); got != 0 {
		t.Errorf("p50 of all-underflow = %g, want exact min 0", got)
	}
	if h.Min() != 0 || h.Max() != 5e-7 {
		t.Errorf("min/max = %g/%g", h.Min(), h.Max())
	}
}

func TestLogHistogramClamp(t *testing.T) {
	// Values beyond the ceiling go in the last bin, and reported quantiles
	// never escape the observed [min, max] range.
	h := NewLogHistogram(1e-6, 1, 0.02)
	h.Add(50) // above ceil
	h.Add(2e-6)
	if got := h.Percentile(100); got != 50 {
		t.Errorf("p100 = %g, want clamp to max 50", got)
	}
	if got := h.Percentile(0); got < 2e-6*0.98 || got > 2e-6*1.02 {
		t.Errorf("p0 = %g, want ~2e-6", got)
	}
}

func TestLogHistogramReset(t *testing.T) {
	h := NewDelayHistogram()
	for i := 0; i < 100; i++ {
		h.Add(float64(i+1) * 1e-4)
	}
	h.Reset()
	if h.N() != 0 || h.Mean() != 0 || h.Percentile(99) != 0 {
		t.Fatalf("Reset left state behind: n=%d mean=%g", h.N(), h.Mean())
	}
	h.Add(0.5)
	if got := h.Percentile(50); math.Abs(got-0.5)/0.5 > 0.02 {
		t.Fatalf("post-Reset p50 = %g, want ~0.5", got)
	}
}

func TestLogHistogramAddDoesNotAllocate(t *testing.T) {
	h := NewDelayHistogram()
	x := 1e-3
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Add(x)
		x *= 1.000001
	}); allocs != 0 {
		t.Fatalf("Add allocates %.1f times per call, want 0", allocs)
	}
}

func TestQuantilerInterfaceParity(t *testing.T) {
	// Both implementations must satisfy the shared interface and agree on
	// the trivial single-value case.
	for _, q := range []Quantiler{&Sample{}, NewDelayHistogram()} {
		q.Add(0.25)
		if q.N() != 1 {
			t.Fatalf("%T: N = %d", q, q.N())
		}
		if got := q.Percentile(50); math.Abs(got-0.25)/0.25 > 0.02 {
			t.Fatalf("%T: p50 = %g", q, got)
		}
		if got := q.Mean(); got != 0.25 {
			t.Fatalf("%T: mean = %g", q, got)
		}
	}
}

func TestWelfordMergeMatchesPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b, pooled Welford
	for i := 0; i < 1000; i++ {
		x := rng.ExpFloat64() * 3
		a.Add(x)
		pooled.Add(x)
	}
	for i := 0; i < 1700; i++ {
		x := rng.NormFloat64()*2 + 10
		b.Add(x)
		pooled.Add(x)
	}
	a.Merge(b)
	if a.N() != pooled.N() {
		t.Fatalf("merged n=%d, pooled n=%d", a.N(), pooled.N())
	}
	if d := math.Abs(a.Mean() - pooled.Mean()); d > 1e-9 {
		t.Errorf("merged mean %v vs pooled %v", a.Mean(), pooled.Mean())
	}
	if d := math.Abs(a.Var() - pooled.Var()); d > 1e-6*pooled.Var() {
		t.Errorf("merged var %v vs pooled %v", a.Var(), pooled.Var())
	}

	// Merging into or from an empty accumulator must be exact.
	var empty Welford
	empty.Merge(a)
	if empty.N() != a.N() || empty.Mean() != a.Mean() || empty.Var() != a.Var() {
		t.Error("merge into empty accumulator not identity")
	}
	before := a
	a.Merge(Welford{})
	if a != before {
		t.Error("merging an empty accumulator changed the receiver")
	}
}

func TestLogHistogramMergeMatchesPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ha := NewDelayHistogram()
	hb := NewDelayHistogram()
	pooledH := NewDelayHistogram()
	var exact Sample
	for i := 0; i < 4000; i++ {
		x := rng.ExpFloat64() * 0.02 // exponential delays around 20 ms
		ha.Add(x)
		pooledH.Add(x)
		exact.Add(x)
	}
	for i := 0; i < 2500; i++ {
		x := math.Abs(rng.NormFloat64())*0.001 + 1e-7 // some below the 1 µs floor
		hb.Add(x)
		pooledH.Add(x)
		exact.Add(x)
	}
	ha.Merge(hb)

	if ha.N() != pooledH.N() {
		t.Fatalf("merged n=%d, pooled n=%d", ha.N(), pooledH.N())
	}
	if ha.Min() != pooledH.Min() || ha.Max() != pooledH.Max() {
		t.Errorf("merged min/max %v/%v vs pooled %v/%v",
			ha.Min(), ha.Max(), pooledH.Min(), pooledH.Max())
	}
	if d := math.Abs(ha.Mean() - exact.Mean()); d > 1e-12+1e-9*exact.Mean() {
		t.Errorf("merged mean %v vs exact %v", ha.Mean(), exact.Mean())
	}
	if d := math.Abs(ha.Stddev() - exact.Stddev()); d > 1e-9*exact.Stddev() {
		t.Errorf("merged stddev %v vs exact %v", ha.Stddev(), exact.Stddev())
	}
	// Percentiles of the merged histogram must match a histogram that saw
	// the pooled stream bin-for-bin, and track the exact sample within the
	// construction-time relative width.
	for _, q := range []float64{1, 25, 50, 90, 99, 99.9} {
		m, p := ha.Percentile(q), pooledH.Percentile(q)
		if m != p {
			t.Errorf("p%g: merged %v != pooled-stream %v", q, m, p)
		}
		e := exact.Percentile(q)
		if e > 2e-6 { // skip sub-floor values: absolute error bounded by floor
			if rel := math.Abs(m-e) / e; rel > 0.03 {
				t.Errorf("p%g: merged %v vs exact %v (rel err %.3f)", q, m, e, rel)
			}
		}
	}
}

func TestLogHistogramMergeGeometryMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merging mismatched geometries did not panic")
		}
	}()
	NewLogHistogram(1e-6, 1e4, 0.02).Merge(NewLogHistogram(1e-6, 1e4, 0.05))
}
