package tcp

import "testing"

// sackRef is the reference model for the SACK scoreboard: plain bitmaps
// over absolute sequence numbers and full rescans instead of sackState's
// maps, incremental counters, loss cursor and FIFO queue. Because sacked
// bits are sticky, rescanning the whole [una, highest-3) range at every
// inference is equivalent to sackState's lossScan cursor — which is
// exactly the equivalence the fuzzer checks.
type sackRef struct {
	sacked  []bool
	lost    []bool
	retxed  []bool
	highest int64
}

func newSackRef(n int64) *sackRef {
	return &sackRef{
		sacked: make([]bool, n),
		lost:   make([]bool, n),
		retxed: make([]bool, n),
	}
}

func (r *sackRef) record(start, end, una int64) {
	for seq := start; seq < end; seq++ {
		if seq < una || r.sacked[seq] {
			continue
		}
		r.sacked[seq] = true
		r.lost[seq] = false
		if seq+1 > r.highest {
			r.highest = seq + 1
		}
	}
}

func (r *sackRef) infer(una int64) int {
	found := 0
	for seq := una; seq < r.highest-3; seq++ {
		if !r.sacked[seq] && !r.lost[seq] {
			r.lost[seq] = true
			found++
		}
	}
	return found
}

func (r *sackRef) counts(una, nxt int64) (sacked, lostUnretx int) {
	for seq := una; seq < nxt; seq++ {
		if r.sacked[seq] {
			sacked++
		}
		if r.lost[seq] && !r.retxed[seq] {
			lostUnretx++
		}
	}
	return sacked, lostUnretx
}

// FuzzSACKScoreboard feeds random operation sequences — new data, SACK
// blocks in any arrival order, cumulative ACKs, loss inference,
// retransmissions — to the production scoreboard and the bitmap reference
// in lockstep, comparing the full visible state after every step.
func FuzzSACKScoreboard(f *testing.F) {
	// A hole recovered in order; a multi-hole burst with out-of-order
	// blocks; an episode cut short by a cumulative ACK mid-recovery.
	f.Add([]byte("\x00\x0f\x00\x01\x04\x03\x03\x00\x00\x04\x00\x00\x02\x02\x00"))
	f.Add([]byte("\x00\x1f\x00\x01\x0a\x02\x01\x04\x01\x01\x10\x03\x03\x00\x00\x04\x00\x00\x04\x00\x00\x01\x02\x00\x03\x00\x00"))
	f.Add([]byte("\x00\x10\x00\x01\x06\x03\x03\x00\x00\x02\x08\x00\x00\x04\x00\x01\x03\x02\x03\x00\x00\x04\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		const maxSeq = 1 << 12
		ss := newSackState()
		ref := newSackRef(maxSeq)
		var una, nxt int64

		for i, ops := 0, 0; i+2 < len(data) && ops < 512; i, ops = i+3, ops+1 {
			op, a, b := data[i]%5, int64(data[i+1]), int64(data[i+2])
			switch op {
			case 0: // sender transmits new data
				nxt += 1 + a%16
				if nxt > maxSeq {
					nxt = maxSeq
				}
			case 1: // a SACK block arrives (any order, any overlap)
				if nxt == una {
					continue
				}
				start := una + a%(nxt-una)
				end := start + 1 + b%8
				if end > nxt {
					end = nxt
				}
				ss.record([][2]int64{{start, end}}, una)
				ref.record(start, end, una)
			case 2: // cumulative ACK advances
				if nxt == una {
					continue
				}
				to := una + 1 + a%(nxt-una)
				ss.advance(una, to)
				una = to
			case 3: // loss inference pass
				got := ss.inferLosses(una)
				want := ref.infer(una)
				if got != want {
					t.Fatalf("step %d: inferLosses found %d, reference %d", ops, got, want)
				}
			case 4: // retransmit the oldest inferred loss
				seq, ok := ss.nextRetx(una)
				if !ok {
					continue
				}
				if seq < una || !ref.lost[seq] || ref.retxed[seq] || ref.sacked[seq] {
					t.Fatalf("step %d: nextRetx returned %d: una=%d lost=%v retxed=%v sacked=%v",
						ops, seq, una, ref.lost[seq], ref.retxed[seq], ref.sacked[seq])
				}
				ss.markRetx(seq)
				ref.retxed[seq] = true
			}

			for seq := una; seq < nxt; seq++ {
				if ss.sacked[seq] != ref.sacked[seq] {
					t.Fatalf("step %d: sacked[%d] = %v, reference %v", ops, seq, ss.sacked[seq], ref.sacked[seq])
				}
				if ss.lost[seq] != ref.lost[seq] {
					t.Fatalf("step %d: lost[%d] = %v, reference %v", ops, seq, ss.lost[seq], ref.lost[seq])
				}
			}
			wantSacked, wantLostUnretx := ref.counts(una, nxt)
			if ss.cntSacked != wantSacked {
				t.Fatalf("step %d: cntSacked = %d, reference %d", ops, ss.cntSacked, wantSacked)
			}
			if ss.cntLostUnretx != wantLostUnretx {
				t.Fatalf("step %d: cntLostUnretx = %d, reference %d", ops, ss.cntLostUnretx, wantLostUnretx)
			}
			if ss.highest != ref.highest {
				t.Fatalf("step %d: highest = %d, reference %d", ops, ss.highest, ref.highest)
			}
			if wantPipe := int(nxt-una) - wantSacked - wantLostUnretx; ss.pipe(una, nxt) != wantPipe {
				t.Fatalf("step %d: pipe = %d, reference %d", ops, ss.pipe(una, nxt), wantPipe)
			}
		}
	})
}
