package tcp

import (
	"time"

	"pi2/internal/packet"
)

// Fast-forward support: during a quiescent epoch the ff engine advances each
// bulk flow analytically — congestion-avoidance window growth in per-window
// steps using the congestion control's own update rules, marks and drops
// applied through the same reaction paths packet mode uses — while the
// packet world (sequence numbers, in-flight segments, timers) stays frozen
// and is translated in time when the epoch commits.
//
// Two modeling deviations are deliberate and documented in DESIGN.md:
//
//   - Frozen recovery: a flow in fast recovery — including the receiver's
//     out-of-order buffer for the hole the loss left — is tolerated. Loss
//     recovery is pure sequence-space state, and sequence space is frozen
//     during an epoch: the retransmission in flight and the RTO timer shift
//     with the event heap and resolve when packet mode resumes. During the
//     epoch the flow grows as congestion avoidance from its current window
//     and absorbs further signals, exactly as packet mode ignores signals
//     in recovery. At the heavy cells' operating point a strict no-recovery
//     predicate would never admit an epoch: with thousands of flows, some
//     flow is always a round trip away from a loss.
//
//   - Slow start is stepped by the congestion controls' own OnAck rules
//     (which implement slow start with ABC and the exact threshold finish),
//     and ffSampleRTT mirrors the endpoint's HyStart delay-exit, so a flow
//     rejoining after an RTO accelerates through the epoch much as it would
//     packet by packet.

// ffSupportedCC reports whether the congestion control has an analytic
// stepping rule below.
func ffSupportedCC(cc CongestionControl) bool {
	switch cc.(type) {
	case Reno, *Cubic, *DCTCP, Scalable, *Prague:
		return true
	}
	return false
}

// FFEligible reports whether this flow can be analytically advanced right
// now: a started, unbounded bulk flow with no SACK scoreboard and a
// congestion control the analytic stepper supports. Fast recovery (with its
// frozen out-of-order receiver state) and slow start are both tolerated —
// see the package comment above.
func (e *Endpoint) FFEligible() bool {
	return e.started && !e.stopped && !e.completed &&
		e.cfg.FlowSegs == 0 && e.sack == nil &&
		ffSupportedCC(e.cc)
}

// DataECN returns the ECN codepoint this flow's data segments carry — the
// ff engine feeds it to the AQM's FFDecide exactly as Enqueue would see it.
func (e *Endpoint) DataECN() packet.ECN { return e.ecnCodepoint() }

// BaseRTT returns the flow's two-way propagation delay.
func (e *Endpoint) BaseRTT() time.Duration { return e.cfg.BaseRTT }

// FFCwnd returns the congestion window in segments — the ff engine's
// per-flow sending rate is Cwnd/RTT, the congestion-avoidance fluid model.
func (e *Endpoint) FFCwnd() float64 { return e.state.Cwnd }

// FFShift translates the endpoint's absolute-time state by delta after the
// simulator clock jumped over an epoch: per-segment send timestamps (so
// post-epoch RTT samples are not inflated by the jump) and a pending pacing
// credit. Scheduled timers (RTO, delayed-ACK, pacing) shift with the
// simulator's event heap; counters and rate-meter epochs deliberately do
// not (the epoch's virtual progress is patched in via FFApplyStats).
func (e *Endpoint) FFShift(delta time.Duration) {
	if delta <= 0 {
		return
	}
	oldNow := e.sim.Now() - delta
	for seq, m := range e.meta {
		m.sentAt += delta
		e.meta[seq] = m
	}
	if e.nextSend > oldNow {
		e.nextSend += delta
	}
}

// ffSampleRTT applies the RFC 6298 smoothing — and the HyStart delay-exit,
// mirroring sampleRTT — for one virtual round trip.
func (e *Endpoint) ffSampleRTT(rtt time.Duration) {
	s := &e.state
	if s.MinRTT == 0 || rtt < s.MinRTT {
		s.MinRTT = rtt
	}
	if e.hystart && s.InSlowStart() && s.Cwnd >= 16 {
		thresh := s.MinRTT + maxDur(4*time.Millisecond, s.MinRTT/8)
		if rtt > thresh {
			s.Ssthresh = s.Cwnd
		}
	}
	if s.SRTT == 0 {
		s.SRTT = rtt
		s.RTTVar = rtt / 2
		return
	}
	diff := s.SRTT - rtt
	if diff < 0 {
		diff = -diff
	}
	s.RTTVar = (3*s.RTTVar + diff) / 4
	s.SRTT = (7*s.SRTT + rtt) / 8
}

// ffChunk returns the next analytic stepping chunk: a quarter window, so
// the Euler step Cwnd += chunk/Cwnd stays within fractions of a percent of
// the per-ACK iteration it replaces (a full-window step overshoots ~1% per
// window on the Reno curve).
func (e *Endpoint) ffChunk(rem int) int {
	chunk := int(e.state.Cwnd / 4)
	if chunk < 1 {
		chunk = 1
	}
	if chunk > rem {
		chunk = rem
	}
	return chunk
}

// ffWindowTick tracks virtual round-trip boundaries across sub-window
// chunks: it accumulates acknowledged segments and, once a full window has
// been covered, advances the virtual clock one RTT and applies one smoothed
// RTT sample — the packet-mode cadence.
type ffWindowTick struct {
	acks float64
	now  time.Duration
}

func (w *ffWindowTick) add(e *Endpoint, chunk int, rtt time.Duration) {
	w.acks += float64(chunk)
	win := e.state.Cwnd
	if win < 1 {
		win = 1
	}
	if w.acks >= win {
		w.acks = 0
		w.now += rtt
		e.ffSampleRTT(rtt)
	}
}

// FFAdvance analytically applies acked cumulative virtual acknowledgments
// (of which marked were CE-marked) at round-trip time rtt, starting at
// virtual time now. Growth proceeds in window-sized chunks — one chunk per
// virtual RTT — through the congestion control's real update rules, so the
// trajectory matches packet mode's per-ACK iteration to within chunking
// error. Classic controls ignore marked here: their once-per-RTT reaction
// goes through FFSignal, mirroring the ECE/loss paths.
func (e *Endpoint) FFAdvance(acked, marked int, rtt, now time.Duration) {
	if acked <= 0 {
		return
	}
	s := &e.state
	tick := ffWindowTick{now: now}
	switch cc := e.cc.(type) {
	case Reno, *Cubic:
		for rem := acked; rem > 0; {
			chunk := e.ffChunk(rem)
			e.cc.OnAck(s, chunk, false, tick.now)
			tick.add(e, chunk, rtt)
			rem -= chunk
		}
	case *DCTCP:
		e.ffAlphaAdvance(acked, marked, rtt, &tick,
			&cc.ackedSegs, &cc.markedSegs, &cc.alpha, cc.G,
			func(chunk int) { renoIncrease(s, chunk) })
	case *Prague:
		e.ffAlphaAdvance(acked, marked, rtt, &tick,
			&cc.ackedSegs, &cc.markedSegs, &cc.alpha, cc.G,
			func(chunk int) { cc.increase(s, chunk) })
	case Scalable:
		// Equation (22): half a segment per CE mark, immediately; only
		// unmarked ACKs feed the Reno-like increase.
		if marked > 0 {
			s.Cwnd -= 0.5 * float64(marked)
			s.clampCwnd()
			if s.Ssthresh > s.Cwnd {
				s.Ssthresh = s.Cwnd
			}
		}
		for rem := acked - marked; rem > 0; {
			chunk := e.ffChunk(rem)
			renoIncrease(s, chunk)
			tick.add(e, chunk, rtt)
			rem -= chunk
		}
	}
}

// ffAlphaAdvance advances a DCTCP-cadence control (DCTCP, Prague): marks
// accumulate into the control's own observation-window counters, and a
// window closes — EWMA update, at most one α/2 reduction — each time a full
// congestion window of segments has been covered, which is what one round
// trip of sequence space amounts to. The counters are the control's real
// fields, so a partially filled window survives entry and exit and the
// packet-mode cadence resumes seamlessly.
func (e *Endpoint) ffAlphaAdvance(acked, marked int, rtt time.Duration,
	tick *ffWindowTick, accAcked, accMarked *int, alpha *float64, g float64,
	grow func(chunk int)) {
	s := &e.state
	rem, remM := acked, marked
	for rem > 0 {
		chunk := e.ffChunk(rem)
		mw := 0
		if remM > 0 {
			// Spread the marks proportionally over the remaining chunks.
			mw = (remM*chunk + rem - 1) / rem
			if mw > remM {
				mw = remM
			}
		}
		*accAcked += chunk
		*accMarked += mw
		if *accAcked >= int(s.Cwnd) {
			f := float64(*accMarked) / float64(*accAcked)
			*alpha = (1-g)**alpha + g*f
			if *accMarked > 0 {
				s.Cwnd *= 1 - *alpha/2
				s.clampCwnd()
				s.Ssthresh = s.Cwnd
			}
			*accAcked, *accMarked = 0, 0
		}
		grow(chunk)
		tick.add(e, chunk, rtt)
		rem -= chunk
		remM -= mw
	}
}

// FFSignal applies one classic congestion reaction (virtual drop, or CE on a
// classic-ECN flow) at virtual time now, mirroring the packet-mode ECE path:
// at most once per RTT — the ff engine gates calls in time, and the
// sequence-space gate (cwrEnd) is re-armed so the once-per-RTT rule holds
// across the epoch boundary too. A flow in frozen recovery absorbs the
// signal, exactly as packet mode ignores further signals during recovery.
// It reports whether a reduction was applied.
func (e *Endpoint) FFSignal(now time.Duration) bool {
	if e.state.InRecovery {
		return false
	}
	e.cc.OnCongestionEvent(&e.state, now)
	e.congestionEvents++
	e.cwrEnd = e.sndNxt
	if e.cfg.ECN == ECNClassic {
		e.cwrPend = true
	}
	return true
}

// FFInRecovery exposes the fast-recovery flag to the ff engine, which
// schedules the virtual recovery exit below.
func (e *Endpoint) FFInRecovery() bool { return e.state.InRecovery }

// FFExitRecovery mirrors the packet-mode full-ACK recovery exit
// (endpoint.onAck): recovery really lasts about one round trip — the
// retransmission's flight time — so a flow frozen in recovery leaves it one
// virtual RTT into the epoch instead of staying deaf to congestion signals
// for the whole epoch. The dupack counter is deliberately left above the
// fast-retransmit threshold: stale duplicate ACKs from the frozen flight
// must not re-trigger recovery when packet mode resumes (the counter only
// fires on exactly its third increment, and any cumulative advance resets
// it for genuinely new losses).
func (e *Endpoint) FFExitRecovery() {
	e.state.InRecovery = false
	e.inflation = 0
}

// FFApplyStats patches the epoch's virtual progress into the flow's
// observable statistics: goodput bytes, bulk RTT samples (one per virtual
// ACK, honouring stretch ACKs), and the ECN ledgers the conformance tests
// reconcile (marksSeen at the virtual receiver; ceAcked for accurate-ECN
// feedback on Scalable flows).
func (e *Endpoint) FFApplyStats(acked, marked int, rtt time.Duration) {
	if acked <= 0 {
		return
	}
	e.Goodput.Add(acked * packet.MSS)
	samples := acked / e.cfg.AckEvery
	if samples < 1 {
		samples = 1
	}
	e.RTTSamples.AddN(rtt.Seconds(), int64(samples))
	switch e.cfg.ECN {
	case ECNScalable:
		e.marksSeen += marked
		e.ceAcked += marked
	case ECNClassic:
		e.marksSeen += marked
	}
}
