package tcp

import (
	"math"
	"testing"
	"time"
)

// alphaEWMA is the congestion-control side of DCTCP/Prague observation
// windows that the closed-form tests exercise.
type alphaEWMA interface {
	CongestionControl
	Alpha() float64
}

// driveWindows pushes `windows` observation windows of `segs` segments each
// through cc, CE-marking the first `marked` ACKs of every window.
//
// sndNxt is advanced one window ahead of the ACK stream, exactly as a live
// endpoint keeps a window of data in flight. The control's lazy windowEnd
// init therefore spans the first TWO driven windows (both with the same mark
// fraction, so the EWMA input is unchanged), and every later driven window
// closes one observation window: `windows` driven windows produce exactly
// windows−1 α updates, each with f = marked/segs.
func driveWindows(cc alphaEWMA, s *State, windows, segs, marked int) {
	var una, nxt int64
	BindSeq(cc, &una, &nxt)
	nxt = int64(segs)
	for w := 0; w < windows; w++ {
		nxt += int64(segs)
		for i := 0; i < segs; i++ {
			una++
			cc.OnAck(s, 1, i < marked, time.Duration(w*segs+i)*time.Millisecond)
		}
	}
}

// closedFormAlpha is α after k EWMA updates with constant input F:
// α_k = F + (1−g)^k (α₀ − F), the geometric relaxation toward the fixed
// point F.
func closedFormAlpha(alpha0, g, f float64, k int) float64 {
	return f + math.Pow(1-g, float64(k))*(alpha0-f)
}

// TestPragueAlphaClosedForm drives a fixed CE-mark pattern and checks the
// EWMA against the analytic solution, per gain and marking fraction.
func TestPragueAlphaClosedForm(t *testing.T) {
	const segs, windows = 8, 9 // 9 driven windows → 8 α updates
	for _, g := range []float64{1.0 / 16, 1.0 / 8} {
		for _, marked := range []int{0, 2, 4, 8} {
			p := &Prague{G: g}
			s := newState(1000, 500)
			p.Init(s)
			driveWindows(p, s, windows, segs, marked)
			f := float64(marked) / segs
			want := closedFormAlpha(1, g, f, windows-1)
			if got := p.Alpha(); math.Abs(got-want) > 1e-9 {
				t.Errorf("g=%v F=%v: alpha = %.12f, want %.12f", g, f, got, want)
			}
		}
	}
}

// TestDCTCPAlphaClosedForm: identical machinery contract for DCTCP — the
// two controls must share the observation-window/EWMA semantics exactly.
func TestDCTCPAlphaClosedForm(t *testing.T) {
	const segs, windows = 8, 9
	for _, g := range []float64{1.0 / 16, 1.0 / 8} {
		for _, marked := range []int{0, 2, 4, 8} {
			d := &DCTCP{G: g}
			s := newState(1000, 500)
			d.Init(s)
			driveWindows(d, s, windows, segs, marked)
			f := float64(marked) / segs
			want := closedFormAlpha(1, g, f, windows-1)
			if got := d.Alpha(); math.Abs(got-want) > 1e-9 {
				t.Errorf("g=%v F=%v: alpha = %.12f, want %.12f", g, f, got, want)
			}
		}
	}
}

// TestPragueAlphaFixedPoint: with a constant marking fraction the EWMA must
// converge to it — 200 updates at g=1/16 leave (15/16)^200 ≈ 2.5e-6 of the
// initial offset.
func TestPragueAlphaFixedPoint(t *testing.T) {
	p := &Prague{}
	s := newState(1000, 500)
	p.Init(s)
	driveWindows(p, s, 201, 8, 2)
	if got := p.Alpha(); math.Abs(got-0.25) > 1e-5 {
		t.Errorf("alpha = %v, want fixed point 0.25", got)
	}
}

// TestPragueMarkedWindowCut checks the exact arithmetic of one marked
// observation-window close: EWMA update first, then cwnd ← cwnd·(1−α/2)
// with ssthresh pinned to the new window, then the additive increase.
func TestPragueMarkedWindowCut(t *testing.T) {
	p := &Prague{InitialAlpha: 0.5}
	s := newState(20, 10)
	p.Init(s)
	// una already at windowEnd: the very first ACK closes the window.
	var una, nxt int64 = 5, 5
	if !BindSeq(p, &una, &nxt) {
		t.Fatal("Prague must accept sequence binding")
	}
	p.OnAck(s, 1, true, 0)

	alpha1 := (1-1.0/16)*0.5 + 1.0/16 // f = 1
	if math.Abs(p.Alpha()-alpha1) > 1e-12 {
		t.Errorf("alpha = %v, want %v", p.Alpha(), alpha1)
	}
	cut := 20 * (1 - alpha1/2)
	want := cut + 1/cut // SRTT 0 → aiFactor 1; one ACK of CA growth
	if math.Abs(s.Cwnd-want) > 1e-12 {
		t.Errorf("cwnd = %v, want %v", s.Cwnd, want)
	}
	if s.Ssthresh != cut {
		t.Errorf("ssthresh = %v, want %v (pinned at the reduced window)", s.Ssthresh, cut)
	}
}

// TestPragueAiFactor: the RTT-independence damping must be
// (SRTT/VirtualRTT)^1.75 below the virtual RTT and exactly 1 at or above
// it (and always 1 when disabled or before any RTT sample).
func TestPragueAiFactor(t *testing.T) {
	cases := []struct {
		srtt     time.Duration
		disabled bool
		want     float64
	}{
		{0, false, 1}, // no sample yet
		{5 * time.Millisecond, false, math.Pow(0.2, 1.75)},
		{12500 * time.Microsecond, false, math.Pow(0.5, 1.75)},
		{25 * time.Millisecond, false, 1},
		{100 * time.Millisecond, false, 1},
		{5 * time.Millisecond, true, 1},
	}
	for _, c := range cases {
		p := &Prague{DisableRTTIndependence: c.disabled}
		s := newState(10, 5)
		p.Init(s)
		s.SRTT = c.srtt
		if got := p.aiFactor(s); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("aiFactor(srtt=%v, disabled=%v) = %v, want %v", c.srtt, c.disabled, got, c.want)
		}
	}
}

// TestPragueRTTIndependentGrowth: over unmarked windows a short-RTT flow
// must gain aiFactor segments per window instead of Reno's one.
func TestPragueRTTIndependentGrowth(t *testing.T) {
	const windows, segs = 7, 20
	p := &Prague{}
	s := newState(20, 10)
	p.Init(s)
	s.SRTT = 5 * time.Millisecond
	c0 := s.Cwnd
	driveWindows(p, s, windows, segs, 0)
	growth := s.Cwnd - c0
	// Each of the `windows` driven windows delivers segs≈cwnd ACKs, each
	// adding aiFactor/cwnd: ≈ aiFactor segments per window.
	want := float64(windows) * math.Pow(0.2, 1.75)
	if math.Abs(growth-want) > 0.05*want {
		t.Errorf("growth = %v over %d windows, want ≈ %v (aiFactor per window)", growth, windows, want)
	}
}

// TestPragueFractionalWindow: under saturation marking a short-RTT Prague
// flow must keep responding below one segment, never dropping under the
// PragueMinCwnd floor and never going non-finite.
func TestPragueFractionalWindow(t *testing.T) {
	p := &Prague{}
	s := newState(4, 2)
	p.Init(s)
	s.SRTT = 5 * time.Millisecond
	// una pinned at windowEnd: every marked ACK closes a marked window.
	var una, nxt int64 = 1 << 30, 1 << 30
	BindSeq(p, &una, &nxt)
	sawFractional := false
	for i := 0; i < 100; i++ {
		p.OnAck(s, 1, true, time.Duration(i)*time.Millisecond)
		if !(s.Cwnd >= PragueMinCwnd) || math.IsInf(s.Cwnd, 0) {
			t.Fatalf("cwnd = %v at step %d, must stay in [%v, ∞)", s.Cwnd, i, PragueMinCwnd)
		}
		if s.Cwnd < 1 {
			sawFractional = true
		}
	}
	if !sawFractional {
		t.Errorf("cwnd never went sub-packet under saturation marking (final %v)", s.Cwnd)
	}
}

// TestPragueSubUnityGrowthFloor: growth of a sub-packet window divides by a
// floor of one segment — one clean ACK at cwnd 0.5 adds exactly 1 segment
// (at aiFactor 1), not 1/0.5 = 2.
func TestPragueSubUnityGrowthFloor(t *testing.T) {
	p := &Prague{}
	s := newState(0.5, 0.25)
	p.Init(s)
	var una, nxt int64 = 0, 100 // window far from closing
	BindSeq(p, &una, &nxt)
	p.OnAck(s, 1, false, 0)
	if math.Abs(s.Cwnd-1.5) > 1e-12 {
		t.Errorf("cwnd = %v, want exactly 1.5", s.Cwnd)
	}
}

// TestPragueInitDefaults: Init must install the draft's constants and lower
// the endpoint's classic MinCwnd to the fractional floor.
func TestPragueInitDefaults(t *testing.T) {
	p := &Prague{}
	s := newState(10, 1e9) // newState sets the classic MinCwnd = 2
	p.Init(s)
	if p.G != 1.0/16 || p.VirtualRTT != 25*time.Millisecond || p.Alpha() != 1 {
		t.Errorf("defaults: G=%v VirtualRTT=%v alpha=%v", p.G, p.VirtualRTT, p.Alpha())
	}
	if s.MinCwnd != PragueMinCwnd {
		t.Errorf("MinCwnd = %v, want %v", s.MinCwnd, PragueMinCwnd)
	}
	if p.Name() != "prague" {
		t.Errorf("name = %q", p.Name())
	}
}

// TestPragueLossFallsBackToReno: classic congestion signals bypass the
// scalable response entirely — a loss halves like Reno.
func TestPragueLossFallsBackToReno(t *testing.T) {
	p := &Prague{}
	s := newState(40, 1e9)
	p.Init(s)
	p.OnCongestionEvent(s, 0)
	if s.Cwnd != 20 || s.Ssthresh != 20 {
		t.Errorf("cwnd=%v ssthresh=%v after loss, want 20/20 (Reno halving)", s.Cwnd, s.Ssthresh)
	}
}

// TestPragueRTOResetsObservationWindow: an RTO collapses the window like
// Reno and discards the in-progress observation window (the sequence space
// is about to be rewound under it).
func TestPragueRTOResetsObservationWindow(t *testing.T) {
	p := &Prague{}
	s := newState(40, 1e9)
	p.Init(s)
	var una, nxt int64 = 0, 100
	BindSeq(p, &una, &nxt)
	p.OnAck(s, 1, true, 0) // open a window with a pending mark
	p.OnRTO(s, 0)
	if s.Cwnd != 1 {
		t.Errorf("cwnd = %v after RTO, want 1", s.Cwnd)
	}
	if p.windowEnd != -1 || p.ackedSegs != 0 || p.markedSegs != 0 {
		t.Errorf("observation window not reset: end=%d acked=%d marked=%d",
			p.windowEnd, p.ackedSegs, p.markedSegs)
	}
}

// TestBindSeqOnlyForWindowedControls: BindSeq reports which controls track
// sequence-space observation windows.
func TestBindSeqOnlyForWindowedControls(t *testing.T) {
	var una, nxt int64
	if !BindSeq(&Prague{}, &una, &nxt) || !BindSeq(&DCTCP{}, &una, &nxt) {
		t.Error("Prague and DCTCP must accept sequence binding")
	}
	if BindSeq(Reno{}, &una, &nxt) || BindSeq(&Cubic{}, &una, &nxt) {
		t.Error("Reno/Cubic must not claim sequence binding")
	}
}
