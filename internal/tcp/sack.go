package tcp

// SACK-based loss recovery (in the spirit of RFC 6675, with FACK-style
// loss inference, which is exact here because the simulated bottleneck
// never reorders): the receiver reports its out-of-order blocks on every
// ACK; the sender keeps a scoreboard, declares a segment lost once three
// segments above it have been selectively acknowledged, and during
// recovery keeps the pipe full with retransmissions first, new data second.
//
// SACK is optional (Config.SACK); the default remains NewReno, matching
// the dupack-counting machinery in endpoint.go. The RTO path is the
// backstop for both and clears the scoreboard (go-back-N).

import "pi2/internal/packet"

// sackState is the sender-side scoreboard.
type sackState struct {
	sacked  map[int64]bool // selectively acked, above sndUna
	lost    map[int64]bool // inferred lost (FACK rule)
	retxed  map[int64]bool // lost segments already retransmitted
	highest int64          // highest sacked seq + 1 (exclusive)

	cntSacked     int     // |sacked|
	cntLostUnretx int     // lost and not yet retransmitted
	lossScan      int64   // cursor up to which loss inference has run
	retxQueue     []int64 // newly inferred losses, FIFO (ascending)
}

func newSackState() *sackState {
	return &sackState{
		sacked: make(map[int64]bool),
		lost:   make(map[int64]bool),
		retxed: make(map[int64]bool),
	}
}

// reset clears the scoreboard (used by the RTO go-back-N path).
func (ss *sackState) reset(sndUna int64) {
	ss.sacked = make(map[int64]bool)
	ss.lost = make(map[int64]bool)
	ss.retxed = make(map[int64]bool)
	ss.highest = 0
	ss.cntSacked = 0
	ss.cntLostUnretx = 0
	ss.lossScan = sndUna
	ss.retxQueue = ss.retxQueue[:0]
}

// advance drops scoreboard entries below the new cumulative ACK.
func (ss *sackState) advance(from, to int64) {
	for seq := from; seq < to; seq++ {
		if ss.sacked[seq] {
			ss.cntSacked--
			delete(ss.sacked, seq)
		}
		if ss.lost[seq] {
			if !ss.retxed[seq] {
				ss.cntLostUnretx--
			}
			delete(ss.lost, seq)
		}
		delete(ss.retxed, seq)
	}
	if ss.lossScan < to {
		ss.lossScan = to
	}
}

// record marks the receiver-reported blocks and returns whether anything
// new was learned.
func (ss *sackState) record(blocks [][2]int64, sndUna int64) bool {
	news := false
	for _, b := range blocks {
		for seq := b[0]; seq < b[1]; seq++ {
			if seq < sndUna || ss.sacked[seq] {
				continue
			}
			ss.sacked[seq] = true
			ss.cntSacked++
			news = true
			if ss.lost[seq] {
				// A presumed-lost segment arrived after all
				// (its retransmission, normally).
				if !ss.retxed[seq] {
					ss.cntLostUnretx--
				}
				delete(ss.lost, seq)
			}
			if seq+1 > ss.highest {
				ss.highest = seq + 1
			}
		}
	}
	return news
}

// inferLosses applies the FACK rule: any unsacked segment with three or
// more sacked segments above it is lost. On an in-order path this is
// equivalent to (and as safe as) the RFC 6675 DupThresh rule. Returns the
// number of newly detected losses.
func (ss *sackState) inferLosses(sndUna int64) int {
	const dupThresh = 3
	limit := ss.highest - dupThresh
	found := 0
	for seq := max64(ss.lossScan, sndUna); seq < limit; seq++ {
		if !ss.sacked[seq] && !ss.lost[seq] {
			ss.lost[seq] = true
			ss.cntLostUnretx++
			ss.retxQueue = append(ss.retxQueue, seq)
			found++
		}
	}
	if limit > ss.lossScan {
		ss.lossScan = limit
	}
	return found
}

// pipe estimates the number of segments still in flight.
func (ss *sackState) pipe(sndUna, sndNxt int64) int {
	return int(sndNxt-sndUna) - ss.cntSacked - ss.cntLostUnretx
}

// nextRetx pops the oldest still-relevant inferred loss, skipping entries
// that were cumulatively acked, selectively acked or already retransmitted
// in the meantime.
func (ss *sackState) nextRetx(sndUna int64) (int64, bool) {
	for len(ss.retxQueue) > 0 {
		seq := ss.retxQueue[0]
		if seq < sndUna || !ss.lost[seq] || ss.retxed[seq] {
			ss.retxQueue = ss.retxQueue[1:]
			continue
		}
		return seq, true
	}
	return 0, false
}

// markRetx records that a lost segment was retransmitted.
func (ss *sackState) markRetx(seq int64) {
	if ss.lost[seq] && !ss.retxed[seq] {
		ss.cntLostUnretx--
	}
	ss.retxed[seq] = true
	if len(ss.retxQueue) > 0 && ss.retxQueue[0] == seq {
		ss.retxQueue = ss.retxQueue[1:]
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// --- receiver side: building SACK blocks ---

// sackBlocks builds up to four SACK ranges [start, end) from the sorted
// out-of-order sequence list. As in real TCP (where option space limits
// the count), the block containing recentSeq — the segment whose arrival
// triggered this ACK — is reported first; without that rule a receiver
// with more than four holes would only ever report its lowest blocks and
// the sender's scoreboard could never complete (recovery would deadlock
// until the RTO). Pass recentSeq < 0 for timer-triggered ACKs.
func sackBlocks(sorted []int64, recentSeq int64) [][2]int64 {
	if len(sorted) == 0 {
		return nil
	}
	// Collect all runs.
	var runs [][2]int64
	start, prev := sorted[0], sorted[0]
	for _, s := range sorted[1:] {
		if s == prev+1 {
			prev = s
			continue
		}
		runs = append(runs, [2]int64{start, prev + 1})
		start, prev = s, s
	}
	runs = append(runs, [2]int64{start, prev + 1})

	// Rotate the run containing recentSeq to the front.
	first := 0
	if recentSeq >= 0 {
		for i, r := range runs {
			if recentSeq >= r[0] && recentSeq < r[1] {
				first = i
				break
			}
		}
	}
	n := len(runs)
	if n > 4 {
		n = 4
	}
	blocks := make([][2]int64, 0, n)
	for i := 0; i < n; i++ {
		blocks = append(blocks, runs[(first+i)%len(runs)])
	}
	return blocks
}

// --- endpoint integration ---

// processSACK ingests the blocks on an arriving ACK. It returns true if
// recovery should be (or remain) active, i.e. there are inferred losses.
func (e *Endpoint) processSACK(p *packet.Packet) {
	ss := e.sack
	ss.record(p.SACK, e.sndUna)
	ss.inferLosses(e.sndUna)
	if !e.state.InRecovery && ss.cntLostUnretx > 0 && e.sndUna >= e.rtoGuard {
		now := e.sim.Now()
		e.state.InRecovery = true
		e.recover = e.sndNxt
		e.cc.OnCongestionEvent(&e.state, now)
		e.congestionEvents++
	}
}

// sackSend keeps the pipe full during SACK operation: retransmissions of
// inferred losses take priority over new data.
func (e *Endpoint) sackSend() {
	ss := e.sack
	for ss.pipe(e.sndUna, e.sndNxt) < int(e.state.Cwnd) {
		if seq, ok := ss.nextRetx(e.sndUna); ok {
			e.sendSeg(seq, true)
			ss.markRetx(seq)
			continue
		}
		if !e.hasData(e.sndNxt) {
			return
		}
		if !e.paceGate() {
			return
		}
		e.sendSeg(e.sndNxt, false)
		e.sndNxt++
	}
}
