// Package tcp implements packet-level TCP endpoints for the simulator:
// sequence numbers, cumulative ACKs, duplicate-ACK fast retransmit, NewReno
// fast recovery, retransmission timeouts, classic-ECN (RFC 3168 ECE/CWR)
// and DCTCP-style accurate per-ACK ECN feedback — plus the congestion
// controls the paper evaluates: Reno, Cubic (with its CReno Reno-friendly
// region), DCTCP, and an idealized Scalable control.
//
// The congestion window is kept in segments (float64) as in the paper's
// window equations; every data segment carries one MSS.
package tcp

import "time"

// State is the congestion state shared between the endpoint machinery and
// the pluggable congestion-control module.
type State struct {
	// Cwnd is the congestion window in segments.
	Cwnd float64
	// Ssthresh is the slow-start threshold in segments.
	Ssthresh float64
	// MinCwnd floors Cwnd after any reduction (2 segments, like Linux).
	MinCwnd float64
	// SRTT and RTTVar are the smoothed RTT estimate (RFC 6298).
	SRTT   time.Duration
	RTTVar time.Duration
	// MinRTT is the smallest RTT sample observed.
	MinRTT time.Duration
	// InRecovery reports whether the endpoint is in fast recovery.
	InRecovery bool
}

// InSlowStart reports whether the window is below the slow-start threshold.
func (s *State) InSlowStart() bool { return s.Cwnd < s.Ssthresh }

// clampCwnd enforces the window floor.
func (s *State) clampCwnd() {
	if s.Cwnd < s.MinCwnd {
		s.Cwnd = s.MinCwnd
	}
}

// CongestionControl is a pluggable window-update policy.
//
// The endpoint calls OnAck for every ACK that advances the cumulative
// acknowledgment, OnCongestionEvent at most once per round trip when loss or
// a classic-ECN echo is detected, and OnRTO on retransmission timeout.
type CongestionControl interface {
	// Name identifies the algorithm ("reno", "cubic", "dctcp", ...).
	Name() string
	// Init prepares algorithm state for a new connection.
	Init(s *State)
	// OnAck processes a cumulative ACK covering acked new segments.
	// ackedCE reports whether the newly acknowledged segment was
	// CE-marked (accurate-ECN feedback; only Scalable controls use it).
	OnAck(s *State, acked int, ackedCE bool, now time.Duration)
	// OnCongestionEvent applies the multiplicative decrease for a Classic
	// congestion signal (loss or RFC 3168 ECE). Called once per RTT.
	OnCongestionEvent(s *State, now time.Duration)
	// OnRTO resets after a retransmission timeout.
	OnRTO(s *State, now time.Duration)
}

// renoIncrease performs the shared Reno window growth: slow start below
// ssthresh, then one segment per window. Slow-start growth is capped at one
// window per ACK event (Appropriate Byte Counting, as in Linux), so a huge
// cumulative ACK — e.g. after a retransmission fills an old hole — cannot
// trigger a line-rate burst of thousands of segments.
func renoIncrease(s *State, acked int) {
	// No legitimate ACK covers more than one window of data; anything
	// larger (a cumulative ACK after an RTO rewound sndNxt) must not
	// inflate the window as if it were new progress.
	if float64(acked) > s.Cwnd {
		acked = int(s.Cwnd)
	}
	if s.InSlowStart() {
		inc := float64(acked)
		if inc > s.Cwnd {
			inc = s.Cwnd
		}
		if s.Cwnd+inc > s.Ssthresh {
			// Finish slow start exactly at ssthresh; the remainder
			// of this ACK continues in congestion avoidance.
			inc = s.Ssthresh - s.Cwnd
		}
		s.Cwnd += inc
		acked -= int(inc)
		if acked <= 0 {
			return
		}
	}
	s.Cwnd += float64(acked) / s.Cwnd
}

// Reno is TCP Reno/NewReno: AIMD with increase 1 segment per RTT and
// multiplicative decrease 0.5 (B = 1/2 in the paper's taxonomy, W ≈ 1.22/√p).
type Reno struct{}

// Name implements CongestionControl.
func (Reno) Name() string { return "reno" }

// Init implements CongestionControl.
func (Reno) Init(s *State) {}

// OnAck implements CongestionControl.
func (Reno) OnAck(s *State, acked int, _ bool, _ time.Duration) { renoIncrease(s, acked) }

// OnCongestionEvent implements CongestionControl.
func (Reno) OnCongestionEvent(s *State, _ time.Duration) {
	s.Ssthresh = s.Cwnd / 2
	if s.Ssthresh < s.MinCwnd {
		s.Ssthresh = s.MinCwnd
	}
	s.Cwnd = s.Ssthresh
}

// OnRTO implements CongestionControl.
func (Reno) OnRTO(s *State, _ time.Duration) {
	s.Ssthresh = s.Cwnd / 2
	if s.Ssthresh < s.MinCwnd {
		s.Ssthresh = s.MinCwnd
	}
	s.Cwnd = 1
}
