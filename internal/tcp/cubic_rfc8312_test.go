package tcp

import (
	"math"
	"testing"
	"time"
)

// These tests validate the Cubic implementation against RFC 8312's closed
// forms by ACK-clocking the control directly: one OnAck batch of cwnd
// segments per simulated RTT, exactly the cadence a loss-free path yields.

// cubicRound delivers one RTT's worth of ACKs at virtual time now.
func cubicRound(c *Cubic, s *State, now time.Duration) {
	c.OnAck(s, int(s.Cwnd), false, now)
}

// TestCubicKMatchesRFC8312 pins K = cbrt(Wmax*(1-beta)/C) (RFC 8312 §4.1):
// after a congestion event at window W, the epoch's K must equal the
// closed-form time to regrow to Wmax.
func TestCubicKMatchesRFC8312(t *testing.T) {
	for _, tc := range []struct {
		w0      float64
		c, beta float64
	}{
		{w0: 20, c: 0.4, beta: 0.7},
		{w0: 50, c: 0.4, beta: 0.7},
		{w0: 100, c: 0.4, beta: 0.7},
		{w0: 250, c: 0.4, beta: 0.7},
		{w0: 1000, c: 0.4, beta: 0.7},
		{w0: 100, c: 0.2, beta: 0.5},
		{w0: 100, c: 0.8, beta: 0.8},
	} {
		cc := &Cubic{C: tc.c, Beta: tc.beta}
		s := &State{Cwnd: tc.w0, Ssthresh: 1, MinCwnd: 2, SRTT: 100 * time.Millisecond}
		cc.Init(s)
		cc.OnCongestionEvent(s, 0)

		if want := tc.beta * tc.w0; math.Abs(s.Cwnd-want) > 1e-9 {
			t.Errorf("W0=%v C=%v beta=%v: cwnd after event = %v, want beta*W0 = %v",
				tc.w0, tc.c, tc.beta, s.Cwnd, want)
		}
		if math.Abs(cc.wMax-tc.w0) > 1e-9 {
			t.Errorf("W0=%v: wMax = %v, want %v", tc.w0, cc.wMax, tc.w0)
		}
		wantK := math.Cbrt(tc.w0 * (1 - tc.beta) / tc.c)
		if math.Abs(cc.k-wantK) > 1e-9 {
			t.Errorf("W0=%v C=%v beta=%v: K = %v, want cbrt(Wmax*(1-beta)/C) = %v",
				tc.w0, tc.c, tc.beta, cc.k, wantK)
		}
	}
}

// TestCubicFastConvergenceClosedForm pins RFC 8312 §4.6 exactly (the
// existing TestCubicFastConvergence checks the direction only): a second
// reduction from a window still below the previous maximum must set
// Wmax = W*(1+beta)/2.
func TestCubicFastConvergenceClosedForm(t *testing.T) {
	cc := &Cubic{}
	s := &State{Cwnd: 100, Ssthresh: 1, MinCwnd: 2, SRTT: 100 * time.Millisecond}
	cc.Init(s)
	cc.OnCongestionEvent(s, 0) // cwnd 100 -> 70, wLastMax 100
	cc.OnCongestionEvent(s, time.Second)

	// Second event fired at cwnd 70 < wLastMax 100.
	if want := 70 * (1 + 0.7) / 2; math.Abs(cc.wMax-want) > 1e-9 {
		t.Errorf("fast convergence: wMax = %v, want W*(1+beta)/2 = %v", cc.wMax, want)
	}
	if want := 0.7 * 70.0; math.Abs(s.Cwnd-want) > 1e-9 {
		t.Errorf("fast convergence: cwnd = %v, want %v", s.Cwnd, want)
	}
}

// TestCubicWindowTracksClosedForm ACK-clocks the pure cubic region
// (friendly region off) through the concave phase, the plateau at Wmax and
// the convex phase, comparing cwnd each round against
// W(t) = C*(t-K)^3 + Wmax (RFC 8312 §4.1). The implementation targets the
// closed form one RTT ahead and converges on it geometrically, so after a
// few warm-up rounds the trajectory must sit within a few percent.
func TestCubicWindowTracksClosedForm(t *testing.T) {
	const (
		w0   = 100.0
		rtt  = 100 * time.Millisecond
		beta = 0.7
		C    = 0.4
	)
	cc := &Cubic{DisableFriendly: true}
	s := &State{Cwnd: w0, Ssthresh: 1, MinCwnd: 2, SRTT: rtt}
	cc.Init(s)
	cc.OnCongestionEvent(s, 0)
	k := math.Cbrt(w0 * (1 - beta) / C)

	for round := 0; round < 100; round++ {
		now := time.Duration(round) * rtt
		cubicRound(cc, s, now)
		if round < 3 {
			continue // convergence warm-up
		}
		// After the round at t, cwnd tracks the target W(t+RTT).
		tt := (now + rtt).Seconds()
		want := C*math.Pow(tt-k, 3) + w0
		if tol := 0.05*want + 1; math.Abs(s.Cwnd-want) > tol {
			t.Fatalf("round %d (t=%.1fs): cwnd = %.2f, want W(t)=C(t-K)^3+Wmax = %.2f ± %.2f",
				round, tt, s.Cwnd, want, tol)
		}
	}

	// Milestones: at t=K the window has regrown to Wmax; past K it exceeds it.
	if s.Cwnd <= w0 {
		t.Errorf("after 100 rounds (t >> K=%.2fs): cwnd = %.2f, want > Wmax = %v", k, s.Cwnd, w0)
	}
}

// TestCubicRenoFriendlyCrossover exercises RFC 8312 §4.2: with a small
// window the cubic term is flat for seconds, so growth must follow the
// Reno-friendly estimate at 3(1-beta)/(1+beta) segments per RTT; once
// C*(t-K)^3+Wmax overtakes W_est, the cubic region takes over and the
// trajectory rejoins the closed form.
func TestCubicRenoFriendlyCrossover(t *testing.T) {
	const (
		w0   = 10.0
		rtt  = 100 * time.Millisecond
		beta = 0.7
		C    = 0.4
	)
	run := func(disableFriendly bool, rounds int) float64 {
		cc := &Cubic{DisableFriendly: disableFriendly}
		s := &State{Cwnd: w0, Ssthresh: 1, MinCwnd: 2, SRTT: rtt}
		cc.Init(s)
		cc.OnCongestionEvent(s, 0)
		for round := 0; round < rounds; round++ {
			cubicRound(cc, s, time.Duration(round)*rtt)
		}
		return s.Cwnd
	}

	// Early phase (t up to 2s, well under the crossover): Reno-equivalent
	// slope. W_est adds 3(1-beta)/(1+beta) ≈ 0.529 segments per RTT.
	renoRate := 3 * (1 - beta) / (1 + beta)
	early := run(false, 20)
	wantEarly := beta*w0 + renoRate*20
	if math.Abs(early-wantEarly) > 0.2*wantEarly {
		t.Errorf("friendly region, 20 rounds: cwnd = %.2f, want ≈ beta*W0 + 20*3(1-beta)/(1+beta) = %.2f",
			early, wantEarly)
	}
	// Pure cubic over the same stretch stays nearly flat — the friendly
	// region is what carries Reno-compatible growth at small windows.
	if pure := run(true, 20); pure >= early-2 {
		t.Errorf("pure cubic after 20 rounds = %.2f, friendly = %.2f: want friendly clearly ahead", pure, early)
	}

	// Late phase (t = 12s >> K ≈ 1.96s): the cubic term dominates W_est
	// (W(12s) ≈ 415 vs W_est ≈ 70), so both variants must land on the
	// closed form regardless of the friendly region.
	k := math.Cbrt(w0 * (1 - beta) / C)
	tt := (time.Duration(120) * rtt).Seconds()
	wantLate := C*math.Pow(tt-k, 3) + w0
	for _, disable := range []bool{false, true} {
		got := run(disable, 120)
		if math.Abs(got-wantLate) > 0.10*wantLate {
			t.Errorf("disableFriendly=%v, 120 rounds: cwnd = %.2f, want cubic closed form %.2f ± 10%%",
				disable, got, wantLate)
		}
	}
}
