package tcp

import (
	"fmt"
	"time"

	"pi2/internal/packet"
	"pi2/internal/sim"
	"pi2/internal/stats"
)

// ECNMode selects how a flow uses ECN.
type ECNMode int

const (
	// ECNOff sends Not-ECT; congestion is signalled by loss.
	ECNOff ECNMode = iota
	// ECNClassic sends ECT(0) and responds to CE like a loss, once per RTT
	// (RFC 3168 ECE/CWR handshake) — the paper's "ECN-Cubic".
	ECNClassic
	// ECNScalable sends ECT(1) and consumes per-ACK accurate CE feedback
	// (DCTCP and the idealized Scalable control).
	ECNScalable
)

// String implements fmt.Stringer.
func (m ECNMode) String() string {
	switch m {
	case ECNOff:
		return "noecn"
	case ECNClassic:
		return "classic-ecn"
	case ECNScalable:
		return "scalable-ecn"
	}
	return "invalid"
}

// Config describes one TCP flow through the bottleneck.
type Config struct {
	// ID is the flow identifier (must be unique on the link).
	ID int
	// CC is the congestion control module. Required.
	CC CongestionControl
	// ECN selects the flow's ECN behaviour.
	ECN ECNMode
	// BaseRTT is the two-way propagation delay excluding queuing.
	BaseRTT time.Duration
	// InitialCwnd in segments (default 10, like modern Linux).
	InitialCwnd float64
	// FlowSegs bounds the flow length in segments (0 = unlimited bulk).
	FlowSegs int64
	// OnComplete fires when a finite flow has all data acknowledged.
	OnComplete func(now time.Duration)
	// SACK enables selective acknowledgments with RFC 6675-style
	// recovery instead of NewReno dupack counting.
	SACK bool
	// AckEvery enables delayed/stretch ACKs: the receiver acknowledges
	// every Nth in-order segment (default 1 = every segment). Out-of-
	// order arrivals, CE-state changes (for Scalable flows) and the
	// delayed-ACK timer force immediate ACKs, as in real stacks.
	AckEvery int
	// DelAckTimeout bounds how long an ACK may be withheld (default
	// 40 ms, the Linux quick-ack ballpark).
	DelAckTimeout time.Duration
	// Pacing spreads transmissions across the round trip instead of
	// bursting window openings back to back (like Linux fq pacing):
	// the send rate is cwnd/SRTT times a gain of 2 in slow start and
	// 1.25 in congestion avoidance.
	Pacing bool
	// SplitPropagation moves the whole BaseRTT out of the endpoint: the
	// sharded runner charges one-way propagation on each cross-domain wire
	// (sender→link and link→receiver), so the internal ACK path becomes
	// zero-delay. Total sender-observed RTT is unchanged — BaseRTT +
	// queuing + serialization — but the delay now lives on mailbox edges
	// where it provides conservative-PDES lookahead. Unsharded runs leave
	// this false and keep the classic all-on-the-ACK-path accounting.
	SplitPropagation bool
}

const (
	minRTO     = 200 * time.Millisecond // Linux lower bound
	maxRTO     = 60 * time.Second
	initialRTO = time.Second // RFC 6298 before the first RTT sample
)

// Endpoint is one TCP connection: the sender and its receiver, wired through
// the shared bottleneck. The receiver logically sits at the far end of the
// link; ACKs return to the sender after the flow's base RTT, so the RTT a
// sender observes is BaseRTT + queuing + serialization.
type Endpoint struct {
	cfg     Config
	sim     *sim.Simulator
	enqueue func(*packet.Packet)
	cc      CongestionControl
	state   State

	// Sender state (sequence numbers count whole segments).
	sndUna     int64
	sndNxt     int64
	meta       map[int64]segMeta
	dupacks    int
	recover    int64
	rtoGuard   int64 // RFC 6582: no fast retransmit for pre-RTO dupacks
	inflation  float64
	cwrEnd     int64 // classic-ECN: next ECE reaction allowed past this seq
	cwrPend    bool  // set CWR on the next new data segment
	rtoTimer   sim.Timer
	rtoBackoff int
	hystart    bool
	nextSend   time.Duration
	paceTimer  sim.Timer
	stopped    bool
	started    bool
	completed  bool

	// pool recycles this endpoint's packets; pre-bound method values below
	// keep the per-segment and per-ACK scheduling allocation-free (a fresh
	// closure per event was a top allocation site in profiles).
	pool         *packet.Pool
	onRTOFn      sim.Event
	paceFireFn   sim.Event
	delAckFireFn sim.Event
	ackArriveFn  sim.Event

	// ackQ holds in-flight ACKs (sent, not yet arrived at the sender) in
	// FIFO order. The reverse path is a fixed BaseRTT delay, so arrival
	// order equals send order and one pre-bound callback can pop the front
	// instead of each ACK capturing itself in a closure.
	ackQ    []*packet.Packet
	ackHead int

	// SACK scoreboard (nil unless Config.SACK).
	sack *sackState

	// Receiver state.
	rcvNxt       int64
	oooSorted    []int64 // out-of-order segments, ascending
	eceLatch     bool
	ackPending   int
	rcvLastCE    bool
	rcvRecentSeq int64 // segment whose arrival triggered the pending ACK
	delAck       sim.Timer

	// Statistics.
	Goodput    stats.RateMeter // in-order payload bytes delivered
	RTTSamples stats.Welford   // seconds; streaming — one Sample per
	// flow would grow by one float64 per ACK, O(flows · sim-time) at
	// thousand-flow scale (no consumer needed raw RTT percentiles)
	retransmissions  int
	congestionEvents int
	rtoCount         int
	marksSeen        int
	ceAcked          int
	startedAt        time.Duration
	completedAt      time.Duration
}

type segMeta struct {
	sentAt time.Duration
	retx   bool
}

// seqBinder is implemented by congestion controls that track observation
// windows over sequence space (DCTCP, Prague): the endpoint hands them
// pointers to its live cumulative-ACK and next-send sequence numbers.
type seqBinder interface {
	bindSeq(sndUna, sndNxt *int64)
}

// BindSeq connects a congestion control that tracks observation windows in
// sequence space to external sequence counters, returning whether the
// control needed one. Endpoints do this automatically; it is exported so
// benchmarks and closed-form tests can drive such a control standalone.
func BindSeq(cc CongestionControl, sndUna, sndNxt *int64) bool {
	sb, ok := cc.(seqBinder)
	if ok {
		sb.bindSeq(sndUna, sndNxt)
	}
	return ok
}

// Enqueuer is the bottleneck's ingress: it takes ownership of the packet.
// *link.Link's Enqueue method and *core.DualLink's Enqueue method both
// satisfy it.
type Enqueuer func(*packet.Packet)

// NewWithEnqueuer creates an endpoint that transmits through an arbitrary
// bottleneck ingress. Call Start to begin transmitting.
func NewWithEnqueuer(s *sim.Simulator, enqueue Enqueuer, cfg Config) *Endpoint {
	if cfg.CC == nil {
		panic("tcp: Config.CC is required")
	}
	if enqueue == nil {
		panic("tcp: enqueue is required")
	}
	if cfg.InitialCwnd <= 0 {
		cfg.InitialCwnd = 10
	}
	if cfg.AckEvery <= 0 {
		cfg.AckEvery = 1
	}
	if cfg.DelAckTimeout == 0 {
		cfg.DelAckTimeout = 40 * time.Millisecond
	}
	e := &Endpoint{
		cfg:     cfg,
		sim:     s,
		enqueue: enqueue,
		cc:      cfg.CC,
		meta:    make(map[int64]segMeta),
		pool:    s.PacketPool(),
	}
	e.onRTOFn = e.onRTO
	e.paceFireFn = e.paceFire
	e.delAckFireFn = e.delAckFire
	e.ackArriveFn = e.ackArrive
	if cfg.SACK {
		e.sack = newSackState()
	}
	e.state = State{
		Cwnd:     cfg.InitialCwnd,
		Ssthresh: 1 << 30,
		MinCwnd:  2,
	}
	e.cc.Init(&e.state)
	if sb, ok := e.cc.(seqBinder); ok {
		sb.bindSeq(&e.sndUna, &e.sndNxt)
	}
	if h, ok := e.cc.(interface{ UseHyStart() bool }); ok {
		e.hystart = h.UseHyStart()
	}
	return e
}

// ID returns the flow id.
func (e *Endpoint) ID() int { return e.cfg.ID }

// CCName returns the congestion control's name.
func (e *Endpoint) CCName() string { return e.cc.Name() }

// State exposes the congestion state (read-mostly; used by tests/monitors).
func (e *Endpoint) State() *State { return &e.state }

// Start begins transmission at the current simulation time.
func (e *Endpoint) Start() {
	if e.started {
		return
	}
	e.started = true
	e.startedAt = e.sim.Now()
	e.Goodput.Reset(e.sim.Now())
	e.trySend()
}

// Stop ceases sending new data; in-flight segments drain naturally.
// Used by the varying-intensity experiments to retire flows.
func (e *Endpoint) Stop() {
	e.stopped = true
	e.rtoTimer.Stop()
	e.rtoTimer = sim.Timer{}
}

// Stopped reports whether the flow has been stopped.
func (e *Endpoint) Stopped() bool { return e.stopped }

// Completed reports whether a finite flow has delivered all its data.
func (e *Endpoint) Completed() bool { return e.completed }

// FCT returns a completed flow's completion time (0 if not completed).
func (e *Endpoint) FCT() time.Duration {
	if !e.completed {
		return 0
	}
	return e.completedAt - e.startedAt
}

// Retransmissions returns the retransmitted-segment count.
func (e *Endpoint) Retransmissions() int { return e.retransmissions }

// CongestionEvents returns how many multiplicative decreases occurred.
func (e *Endpoint) CongestionEvents() int { return e.congestionEvents }

// MarksSeen returns how many CE-marked segments the receiver observed.
func (e *Endpoint) MarksSeen() int { return e.marksSeen }

// CEAcked returns how many CE-marked segments the sender has seen covered by
// accurate-ECN feedback (advancing ACKs with the CE bit, counted even during
// recovery). For a Scalable flow with no loss, reordering or duplication it
// must equal both MarksSeen and the AQM's per-flow mark count — the
// conformance identity the ECN-sanity tests assert.
func (e *Endpoint) CEAcked() int { return e.ceAcked }

// RTOCount returns how many retransmission timeouts fired.
func (e *Endpoint) RTOCount() int { return e.rtoCount }

// ecnCodepoint returns the codepoint for outgoing data.
func (e *Endpoint) ecnCodepoint() packet.ECN {
	switch e.cfg.ECN {
	case ECNClassic:
		return packet.ECT0
	case ECNScalable:
		return packet.ECT1
	default:
		return packet.NotECT
	}
}

// --- sender ---

func (e *Endpoint) window() float64 { return e.state.Cwnd + e.inflation }

func (e *Endpoint) hasData(seq int64) bool {
	if e.stopped {
		return false
	}
	return e.cfg.FlowSegs == 0 || seq < e.cfg.FlowSegs
}

func (e *Endpoint) trySend() {
	if e.sack != nil {
		e.sackSend()
		return
	}
	for float64(e.sndNxt-e.sndUna) < e.window() && e.hasData(e.sndNxt) {
		if !e.paceGate() {
			return
		}
		e.sendSeg(e.sndNxt, false)
		e.sndNxt++
	}
}

// paceGate enforces the pacing schedule: it reports whether a new data
// segment may be sent now and, if not, arms a timer that resumes trySend
// at the next credit. Retransmissions bypass pacing (they replace packets
// already accounted for in flight).
func (e *Endpoint) paceGate() bool {
	if !e.cfg.Pacing {
		return true
	}
	now := e.sim.Now()
	if now < e.nextSend {
		if !e.paceTimer.Active() {
			e.paceTimer = e.sim.At(e.nextSend, e.paceFireFn)
		}
		return false
	}
	srtt := e.state.SRTT
	if srtt == 0 {
		srtt = e.cfg.BaseRTT
	}
	if srtt <= 0 {
		srtt = 10 * time.Millisecond
	}
	gain := 1.25
	if e.state.InSlowStart() {
		gain = 2
	}
	interval := time.Duration(float64(srtt) / (e.state.Cwnd * gain))
	base := e.nextSend
	if now > base {
		base = now
	}
	e.nextSend = base + interval
	return true
}

// paceFire resumes sending when the pacing credit matures.
func (e *Endpoint) paceFire() {
	e.paceTimer = sim.Timer{}
	e.trySend()
}

func (e *Endpoint) sendSeg(seq int64, retx bool) {
	now := e.sim.Now()
	p := e.pool.NewData(e.cfg.ID, seq, packet.MSS, e.ecnCodepoint())
	p.SentAt = now
	p.Retransmit = retx
	if e.cwrPend && !retx {
		p.Flags |= packet.FlagCWR
		e.cwrPend = false
	}
	m := e.meta[seq]
	e.meta[seq] = segMeta{sentAt: now, retx: retx || m.retx}
	if retx {
		e.retransmissions++
	}
	e.enqueue(p)
	// Arm (but never restart) the retransmission timer: restarting on
	// every transmission would let a steady stream of new data postpone
	// the timeout indefinitely while the ACK point is stuck.
	if !e.rtoTimer.Active() {
		e.armRTO()
	}
}

// armRTO (re)starts the retransmission timer.
func (e *Endpoint) armRTO() {
	e.rtoTimer.Stop()
	d := e.rtoInterval()
	e.rtoTimer = e.sim.After(d, e.onRTOFn)
}

func (e *Endpoint) rtoInterval() time.Duration {
	var d time.Duration
	if e.state.SRTT == 0 {
		d = initialRTO
	} else {
		d = e.state.SRTT + 4*e.state.RTTVar
		if d < minRTO {
			d = minRTO
		}
	}
	d <<= e.rtoBackoff
	if d > maxRTO {
		d = maxRTO
	}
	return d
}

func (e *Endpoint) onRTO() {
	// Clear before anything else: the timer is firing, so Active() would
	// still report true for the executing slot, and sendSeg below must be
	// free to re-arm.
	e.rtoTimer = sim.Timer{}
	if e.sndNxt == e.sndUna || e.stopped {
		return
	}
	now := e.sim.Now()
	e.rtoCount++
	e.cc.OnRTO(&e.state, now)
	e.congestionEvents++
	e.state.InRecovery = false
	e.inflation = 0
	e.dupacks = 0
	e.rtoBackoff++
	if e.rtoBackoff > 8 {
		e.rtoBackoff = 8
	}
	// RFC 6582: dupacks for data sent before this timeout must not
	// trigger fast retransmit.
	if e.sndNxt > e.rtoGuard {
		e.rtoGuard = e.sndNxt
	}
	// Go-back-N: rewind and retransmit from the ACK point.
	if e.sack != nil {
		e.sack.reset(e.sndUna)
	}
	e.sndNxt = e.sndUna
	e.sendSeg(e.sndNxt, true)
	e.sndNxt++
}

// onAck processes an arriving cumulative acknowledgment.
func (e *Endpoint) onAck(p *packet.Packet) {
	if e.stopped && e.sndNxt == e.sndUna {
		return
	}
	now := e.sim.Now()

	// Classic-ECN echo: react at most once per RTT, like a loss but with
	// no retransmission; tell the receiver via CWR.
	if p.Flags.Has(packet.FlagECE) && e.cfg.ECN == ECNClassic {
		if p.Ack > e.cwrEnd && !e.state.InRecovery {
			e.cc.OnCongestionEvent(&e.state, now)
			e.congestionEvents++
			e.cwrEnd = e.sndNxt
			e.cwrPend = true
		}
	}

	switch {
	case p.Ack > e.sndUna:
		acked := int(p.Ack - e.sndUna)
		// Accurate-ECN feedback is only meaningful when negotiated: a
		// Scalable control wired with classic (or no) ECN must fall back
		// to the once-per-RTT ECE reaction above, not double-react to the
		// per-ACK CE bit the receiver happens to copy out.
		ackedCE := p.AckedCE && e.cfg.ECN == ECNScalable
		if ackedCE {
			// Count CE-marked segments even during recovery (when the
			// congestion control is not consulted): this is the sender's
			// ledger the ECN conformance tests reconcile against the
			// AQM's per-flow mark count.
			e.ceAcked += acked
		}
		e.sampleRTT(p.Ack-1, now)
		for s := e.sndUna; s < p.Ack; s++ {
			delete(e.meta, s)
		}
		if e.sack != nil {
			e.sack.advance(e.sndUna, p.Ack)
		}
		e.sndUna = p.Ack
		if e.sndNxt < e.sndUna {
			// A pre-timeout segment filled the hole past the
			// go-back-N point: resume sending from the ACK.
			e.sndNxt = e.sndUna
		}
		e.dupacks = 0
		e.rtoBackoff = 0
		if e.sack != nil {
			e.processSACK(p)
		}
		if e.state.InRecovery {
			if e.sndUna >= e.recover {
				// Full ACK: leave recovery.
				e.state.InRecovery = false
				e.inflation = 0
			} else if e.sack == nil {
				// NewReno partial ACK: retransmit the next hole,
				// deflate. (SACK recovery retransmits from its
				// scoreboard instead.)
				e.inflation -= float64(acked)
				if e.inflation < 0 {
					e.inflation = 0
				}
				e.sendSeg(e.sndUna, true)
			}
		} else {
			e.cc.OnAck(&e.state, acked, ackedCE, now)
		}
		if e.sndNxt > e.sndUna {
			e.armRTO()
		} else {
			e.rtoTimer.Stop()
			e.rtoTimer = sim.Timer{}
		}
		e.checkComplete(now)

	case p.Ack == e.sndUna && e.sndNxt > e.sndUna:
		if e.sack != nil {
			// SACK mode: the scoreboard, not dupack counting,
			// drives recovery and retransmission.
			e.processSACK(p)
			break
		}
		e.dupacks++
		if e.state.InRecovery {
			// Inflate to keep the ACK clock running, but never beyond
			// twice the window: recovery must not become an unbounded
			// source of new data while the retransmission is missing.
			if e.inflation < 2*e.state.Cwnd {
				e.inflation++
			}
		} else if e.dupacks == 3 && e.sndUna >= e.rtoGuard {
			e.enterRecovery(now)
		}
	}
	e.trySend()
}

func (e *Endpoint) enterRecovery(now time.Duration) {
	e.state.InRecovery = true
	e.recover = e.sndNxt
	e.cc.OnCongestionEvent(&e.state, now)
	e.congestionEvents++
	e.inflation = 3
	e.sendSeg(e.sndUna, true)
}

func (e *Endpoint) sampleRTT(seq int64, now time.Duration) {
	m, ok := e.meta[seq]
	if !ok || m.retx {
		return // Karn's algorithm: never sample retransmitted segments
	}
	rtt := now - m.sentAt
	e.RTTSamples.Add(rtt.Seconds())
	s := &e.state
	if s.MinRTT == 0 || rtt < s.MinRTT {
		s.MinRTT = rtt
	}
	// HyStart (delay-increase half, as in Linux Cubic): leave slow start
	// once queuing pushes the RTT measurably above the path minimum,
	// long before the overshoot-and-halve of classical slow start.
	if e.hystart && s.InSlowStart() && s.Cwnd >= 16 {
		thresh := s.MinRTT + maxDur(4*time.Millisecond, s.MinRTT/8)
		if rtt > thresh {
			s.Ssthresh = s.Cwnd
		}
	}
	if s.SRTT == 0 {
		s.SRTT = rtt
		s.RTTVar = rtt / 2
		return
	}
	diff := s.SRTT - rtt
	if diff < 0 {
		diff = -diff
	}
	s.RTTVar = (3*s.RTTVar + diff) / 4
	s.SRTT = (7*s.SRTT + rtt) / 8
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func (e *Endpoint) checkComplete(now time.Duration) {
	if e.completed || e.cfg.FlowSegs == 0 || e.sndUna < e.cfg.FlowSegs {
		return
	}
	e.completed = true
	e.completedAt = now
	e.rtoTimer.Stop()
	e.rtoTimer = sim.Timer{}
	if e.cfg.OnComplete != nil {
		e.cfg.OnComplete(now)
	}
}

// --- receiver ---

// DeliverData is the link-side entry point: the bottleneck hands over a data
// segment that finished serialization. The receiver acknowledges it —
// immediately by default, or per the delayed/stretch-ACK policy when
// Config.AckEvery > 1 — and the ACK arrives back at the sender after the
// flow's base RTT.
func (e *Endpoint) DeliverData(p *packet.Packet) {
	e.receiveData(p)
	// The receiver is the data packet's terminal owner: everything needed
	// from it has been copied out, so the slot can be recycled.
	e.pool.Release(p)
}

func (e *Endpoint) receiveData(p *packet.Packet) {
	ce := p.ECN == packet.CE
	if ce {
		e.marksSeen++
	}
	switch e.cfg.ECN {
	case ECNClassic:
		if ce {
			e.eceLatch = true
		}
		if p.Flags.Has(packet.FlagCWR) {
			e.eceLatch = false
		}
	case ECNScalable:
		// DCTCP's delayed-ACK rule: a change in CE state flushes the
		// pending ACK first, so every ACK reports a uniform CE state
		// (accurate feedback survives aggregation).
		if e.ackPending > 0 && ce != e.rcvLastCE {
			e.sendAckNow(e.rcvLastCE)
		}
	}

	inOrder := p.Seq == e.rcvNxt
	switch {
	case inOrder:
		e.rcvNxt++
		e.Goodput.Add(p.PayloadLen)
		// Consume the now-in-order prefix, then compact by copying down:
		// reslicing the front (oooSorted[1:]) would slide the capacity
		// window forward and force insertOOO to reallocate on every
		// recovery episode.
		k := 0
		for k < len(e.oooSorted) && e.oooSorted[k] == e.rcvNxt {
			k++
			e.rcvNxt++
			e.Goodput.Add(packet.MSS)
		}
		if k > 0 {
			n := copy(e.oooSorted, e.oooSorted[k:])
			e.oooSorted = e.oooSorted[:n]
		}
	case p.Seq > e.rcvNxt:
		e.insertOOO(p.Seq)
	}

	e.ackPending++
	e.rcvLastCE = ce
	e.rcvRecentSeq = p.Seq
	if !inOrder || len(e.oooSorted) > 0 || e.ackPending >= e.cfg.AckEvery {
		e.sendAckNow(ce)
		return
	}
	if !e.delAck.Active() {
		e.delAck = e.sim.After(e.cfg.DelAckTimeout, e.delAckFireFn)
	}
}

// delAckFire flushes a withheld ACK when the delayed-ACK timer expires.
func (e *Endpoint) delAckFire() {
	e.delAck = sim.Timer{}
	if e.ackPending > 0 {
		e.sendAckNow(e.rcvLastCE)
	}
}

// insertOOO adds seq to the sorted out-of-order list (idempotent).
func (e *Endpoint) insertOOO(seq int64) {
	lo, hi := 0, len(e.oooSorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.oooSorted[mid] < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(e.oooSorted) && e.oooSorted[lo] == seq {
		return // duplicate arrival
	}
	e.oooSorted = append(e.oooSorted, 0)
	copy(e.oooSorted[lo+1:], e.oooSorted[lo:])
	e.oooSorted[lo] = seq
}

// sendAckNow emits the cumulative ACK covering everything pending.
func (e *Endpoint) sendAckNow(ce bool) {
	e.delAck.Stop()
	e.delAck = sim.Timer{}
	e.ackPending = 0
	ack := e.pool.NewAck(e.cfg.ID, e.rcvNxt)
	ack.AckedCE = ce
	if e.eceLatch {
		ack.Flags |= packet.FlagECE
	}
	if e.cfg.SACK && len(e.oooSorted) > 0 {
		ack.SACK = sackBlocks(e.oooSorted, e.rcvRecentSeq)
	}
	// The reverse path is a constant delay, so ACKs arrive in send order:
	// push onto the FIFO ring and let the pre-bound arrival callback pop
	// the front, instead of allocating a closure per ACK. The delay is the
	// whole BaseRTT classically, or zero under SplitPropagation (both
	// one-way legs are then charged on the cross-domain wires).
	delay := e.cfg.BaseRTT
	if e.cfg.SplitPropagation {
		delay = 0
	}
	e.ackQ = append(e.ackQ, ack)
	e.sim.After(delay, e.ackArriveFn)
}

// ackArrive delivers the oldest in-flight ACK to the sender and recycles it.
func (e *Endpoint) ackArrive() {
	p := e.ackQ[e.ackHead]
	e.ackQ[e.ackHead] = nil
	e.ackHead++
	if e.ackHead > 64 && e.ackHead*2 >= len(e.ackQ) {
		n := copy(e.ackQ, e.ackQ[e.ackHead:])
		clear(e.ackQ[n:])
		e.ackQ = e.ackQ[:n]
		e.ackHead = 0
	}
	e.onAck(p)
	e.pool.Release(p)
}

// String implements fmt.Stringer for diagnostics.
func (e *Endpoint) String() string {
	return fmt.Sprintf("flow %d (%s, %v): cwnd=%.1f una=%d nxt=%d",
		e.cfg.ID, e.cc.Name(), e.cfg.ECN, e.state.Cwnd, e.sndUna, e.sndNxt)
}
