package tcp

import "fmt"

// NewCC builds a congestion control and its matching ECN mode by name.
// Recognized names:
//
//	reno       TCP Reno, loss-based (Not-ECT)
//	cubic      TCP Cubic, loss-based (Not-ECT)
//	ecn-reno   TCP Reno with classic ECN (ECT(0))
//	ecn-cubic  TCP Cubic with classic ECN (ECT(0)) — the paper's control
//	dctcp      DCTCP with accurate ECN feedback (ECT(1))
//	scalable   the idealized Scalable control of Appendix B (ECT(1))
func NewCC(name string) (CongestionControl, ECNMode, error) {
	switch name {
	case "reno":
		return Reno{}, ECNOff, nil
	case "cubic":
		return &Cubic{}, ECNOff, nil
	case "ecn-reno":
		return Reno{}, ECNClassic, nil
	case "ecn-cubic":
		return &Cubic{}, ECNClassic, nil
	case "dctcp":
		return &DCTCP{}, ECNScalable, nil
	case "scalable":
		return Scalable{}, ECNScalable, nil
	}
	return nil, ECNOff, fmt.Errorf("tcp: unknown congestion control %q", name)
}
