package tcp

import "fmt"

// NewCC builds a congestion control and its matching ECN mode by name.
// Recognized names:
//
//	reno       TCP Reno, loss-based (Not-ECT)
//	cubic      TCP Cubic, loss-based (Not-ECT)
//	ecn-reno   TCP Reno with classic ECN (ECT(0))
//	ecn-cubic  TCP Cubic with classic ECN (ECT(0)) — the paper's control
//	dctcp      DCTCP with accurate ECN feedback (ECT(1))
//	scalable   the idealized Scalable control of Appendix B (ECT(1))
//	prague     TCP Prague with accurate ECN feedback (ECT(1))
func NewCC(name string) (CongestionControl, ECNMode, error) {
	switch name {
	case "reno":
		return Reno{}, ECNOff, nil
	case "cubic":
		return &Cubic{}, ECNOff, nil
	case "ecn-reno":
		return Reno{}, ECNClassic, nil
	case "ecn-cubic":
		return &Cubic{}, ECNClassic, nil
	case "dctcp":
		return &DCTCP{}, ECNScalable, nil
	case "scalable":
		return Scalable{}, ECNScalable, nil
	case "prague":
		return &Prague{}, ECNScalable, nil
	}
	return nil, ECNOff, fmt.Errorf("tcp: unknown congestion control %q", name)
}

// NewCCFeedback builds a congestion control with an explicit ECN-feedback
// arm, for conformance matrices that cross algorithms with negotiation
// outcomes the algorithm would not pick for itself:
//
//	""          the algorithm's default wiring (same as NewCC)
//	"accurate"  per-ACK CE feedback on ECT(1) — the L4S identifier. For a
//	            Scalable control this is its native mode; for a Classic
//	            control (cubic, reno) it deliberately builds a
//	            NON-CONFORMANT sender: ECT(1) packets enter an L4S AQM's
//	            low-latency queue but the control ignores per-ACK CE, so
//	            it only backs off on loss — the failure mode RFC 9331
//	            forbids, kept measurable here.
//	"classic"   RFC 3168 ECE/CWR on ECT(0). A Scalable control falls back
//	            to the once-per-RTT classic reaction (the endpoint routes
//	            ECE through OnCongestionEvent and suppresses per-ACK CE),
//	            which is Prague's required behaviour when accurate ECN is
//	            not negotiated.
func NewCCFeedback(name, feedback string) (CongestionControl, ECNMode, error) {
	cc, mode, err := NewCC(name)
	if err != nil {
		return nil, ECNOff, err
	}
	switch feedback {
	case "":
		return cc, mode, nil
	case "accurate":
		return cc, ECNScalable, nil
	case "classic":
		return cc, ECNClassic, nil
	}
	return nil, ECNOff, fmt.Errorf("tcp: unknown ECN feedback arm %q", feedback)
}
