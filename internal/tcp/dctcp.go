package tcp

import "time"

// DCTCP implements Data Center TCP with accurate per-ACK ECN feedback.
//
// Each observation window (one round trip of sequence space) the fraction F
// of CE-marked segments updates the EWMA α ← (1−g)·α + g·F with g = 1/16,
// and if any segment was marked the window is reduced once by α/2:
// cwnd ← cwnd·(1−α/2). Under an AQM applying probabilistic (not step)
// marking this yields the steady-state window W = 2/p of the paper's
// equation (11), i.e. a Scalable control with B = 1.
//
// Loss is handled like Reno (the paper's testbed used unmodified Linux
// DCTCP, which falls back to a 0.5 reduction on loss).
type DCTCP struct {
	// G is the EWMA gain (1/16 by default, as in the DCTCP paper).
	G float64
	// InitialAlpha is α at connection start (1.0, conservative, like Linux).
	InitialAlpha float64

	alpha       float64
	ackedSegs   int
	markedSegs  int
	windowEnd   int64 // sequence (in segments) closing the observation window
	reduceAtEnd bool
	sndUnaRef   *int64 // set by the endpoint; current cumulative ACK point
	sndNxtRef   *int64
}

// Name implements CongestionControl.
func (d *DCTCP) Name() string { return "dctcp" }

// Init implements CongestionControl.
func (d *DCTCP) Init(s *State) {
	if d.G == 0 {
		d.G = 1.0 / 16
	}
	if d.InitialAlpha == 0 {
		d.InitialAlpha = 1
	}
	d.alpha = d.InitialAlpha
	d.windowEnd = -1
}

// Alpha exposes the current marking-fraction estimate (for tests/reports).
func (d *DCTCP) Alpha() float64 { return d.alpha }

// bindSeq lets the endpoint share its sequence state so the observation
// window can span exactly one round trip of sequence space.
func (d *DCTCP) bindSeq(sndUna, sndNxt *int64) {
	d.sndUnaRef = sndUna
	d.sndNxtRef = sndNxt
}

// OnAck implements CongestionControl.
func (d *DCTCP) OnAck(s *State, acked int, ackedCE bool, now time.Duration) {
	d.ackedSegs += acked
	if ackedCE {
		d.markedSegs += acked
	}
	if d.windowEnd < 0 && d.sndNxtRef != nil {
		d.windowEnd = *d.sndNxtRef
	}
	// Close the observation window when the ACK point passes it.
	if d.sndUnaRef != nil && *d.sndUnaRef >= d.windowEnd {
		f := 0.0
		if d.ackedSegs > 0 {
			f = float64(d.markedSegs) / float64(d.ackedSegs)
		}
		d.alpha = (1-d.G)*d.alpha + d.G*f
		if d.markedSegs > 0 {
			s.Cwnd *= 1 - d.alpha/2
			s.clampCwnd()
			s.Ssthresh = s.Cwnd
		}
		d.ackedSegs, d.markedSegs = 0, 0
		d.windowEnd = *d.sndNxtRef
	}
	// Growth is Reno-like: slow start, then 1 segment per RTT.
	renoIncrease(s, acked)
}

// OnCongestionEvent implements CongestionControl (loss → Reno halving).
func (d *DCTCP) OnCongestionEvent(s *State, now time.Duration) {
	Reno{}.OnCongestionEvent(s, now)
}

// OnRTO implements CongestionControl.
func (d *DCTCP) OnRTO(s *State, now time.Duration) {
	Reno{}.OnRTO(s, now)
	d.ackedSegs, d.markedSegs = 0, 0
	d.windowEnd = -1
}

// Scalable is the idealized scalable control of Appendix B equation (22):
// it reduces the window by half a segment per CE mark, immediately, with no
// smoothing, and increases by one segment per RTT. Its steady-state window
// is W = 2/p′ exactly; the paper uses it as the analytic stand-in for DCTCP.
type Scalable struct{}

// Name implements CongestionControl.
func (Scalable) Name() string { return "scalable" }

// Init implements CongestionControl.
func (Scalable) Init(s *State) {}

// OnAck implements CongestionControl.
func (Scalable) OnAck(s *State, acked int, ackedCE bool, _ time.Duration) {
	if ackedCE {
		s.Cwnd -= 0.5 * float64(acked)
		s.clampCwnd()
		if s.Ssthresh > s.Cwnd {
			s.Ssthresh = s.Cwnd // leave slow start on first mark
		}
		return
	}
	renoIncrease(s, acked)
}

// OnCongestionEvent implements CongestionControl.
func (Scalable) OnCongestionEvent(s *State, now time.Duration) {
	Reno{}.OnCongestionEvent(s, now)
}

// OnRTO implements CongestionControl.
func (Scalable) OnRTO(s *State, now time.Duration) { Reno{}.OnRTO(s, now) }
