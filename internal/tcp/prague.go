package tcp

import (
	"math"
	"time"
)

// Prague implements the TCP Prague congestion control — the L4S reference
// scalable sender (draft-briscoe-iccrg-prague-congestion-control) that the
// DualPI2 half of the paper is designed to carry.
//
// It keeps DCTCP's accurate-ECN machinery: each observation window (one
// round trip of sequence space) the fraction F of CE-marked segments drives
// the EWMA α ← (1−g)·α + g·F with g = 1/16, and a marked window reduces
// cwnd once by α/2. On top of that it adds the Prague requirements:
//
//   - RTT independence toward a virtual RTT of 25 ms: a flow with RTT below
//     VirtualRTT damps its additive increase by (SRTT/VirtualRTT)^1.75 so it
//     competes like a flow near VirtualRTT instead of outpacing longer-RTT
//     traffic; reductions stay per marked observation window (DCTCP's
//     cadence). The two textbook scalings bracket the fair point in the
//     DualPI2 coupled equilibrium but miss it: equalizing window growth per
//     unit time (exponent 2) leaves a 10 ms Prague flow ~15% below its
//     coupled fair share against equal-RTT Cubic, and equalizing rate
//     growth (exponent 1) ~50% above it, because CE marks arrive in bursts
//     that the once-per-window reduction partially absorbs. The 1.75
//     exponent is calibrated so that pairing lands within a few percent of
//     equal rate at the paper's default 20 ms target — the interop tier
//     asserts the resulting Prague/Cubic ratio as an invariant. For
//     SRTT ≥ VirtualRTT the factor is 1 and Prague degenerates to DCTCP.
//
//   - Fractional-cwnd marking response for sub-packet windows: the window
//     floor is PragueMinCwnd (⅛ segment) instead of the Classic 2 segments,
//     and the multiplicative machinery keeps operating below one segment
//     (the endpoint still clocks out one segment per round trip; the
//     fractional window models the reduced rate between transmissions).
//     Growth below one segment divides by a floor of 1 so a sub-packet
//     window recovers at ≤ scaled-1-segment-per-RTT, never explosively.
//
//   - Classic fallback on loss: a loss (or RTO) is handled exactly like
//     Reno — halve (or collapse) the window — so Prague remains safe when
//     it meets a non-L4S bottleneck that drops instead of marking.
type Prague struct {
	// G is the EWMA gain (1/16 by default, as in DCTCP).
	G float64
	// InitialAlpha is α at connection start (1.0, conservative).
	InitialAlpha float64
	// VirtualRTT is the RTT-independence target (25 ms by default).
	VirtualRTT time.Duration
	// DisableRTTIndependence turns Prague back into plain DCTCP-with-
	// fractional-cwnd (for ablations and closed-form tests).
	DisableRTTIndependence bool

	alpha      float64
	ackedSegs  int
	markedSegs int
	windowEnd  int64 // sequence (in segments) closing the observation window
	sndUnaRef  *int64
	sndNxtRef  *int64
}

// PragueMinCwnd is the fractional window floor in segments: Prague keeps
// responding to marks down to ⅛ of a segment instead of pinning at the
// Classic floor of 2, which is what keeps many sub-packet-window flows
// controllable by marking alone (RFC 9332's "fractional window" argument).
const PragueMinCwnd = 0.125

// pragueAIExponent shapes the RTT-independence damping of the additive
// increase (see the type comment for how it was calibrated against the
// DualPI2 coupled equilibrium).
const pragueAIExponent = 1.75

// Name implements CongestionControl.
func (p *Prague) Name() string { return "prague" }

// Init implements CongestionControl.
func (p *Prague) Init(s *State) {
	if p.G == 0 {
		p.G = 1.0 / 16
	}
	if p.InitialAlpha == 0 {
		p.InitialAlpha = 1
	}
	if p.VirtualRTT == 0 {
		p.VirtualRTT = 25 * time.Millisecond
	}
	p.alpha = p.InitialAlpha
	p.windowEnd = -1
	// The endpoint initializes MinCwnd to the Classic floor before Init;
	// Prague lowers it to the fractional floor.
	s.MinCwnd = PragueMinCwnd
}

// Alpha exposes the marking-fraction estimate (for tests/reports).
func (p *Prague) Alpha() float64 { return p.alpha }

// bindSeq lets the endpoint share its sequence state so the observation
// window can span exactly one round trip of sequence space (same contract
// as DCTCP's).
func (p *Prague) bindSeq(sndUna, sndNxt *int64) {
	p.sndUnaRef = sndUna
	p.sndNxtRef = sndNxt
}

// effRTT is the round-trip time the virtual clock runs on: the smoothed RTT
// estimate, as in the reference Prague implementation (the flow's own queue
// sojourn is part of the round it schedules against).
func (p *Prague) effRTT(s *State) time.Duration { return s.SRTT }

// aiFactor damps the additive increase for RTT independence. The exponent
// sits between window-growth equalization (2) and rate-growth equalization
// (1); see the type comment for the calibration.
func (p *Prague) aiFactor(s *State) float64 {
	if p.DisableRTTIndependence {
		return 1
	}
	rtt := p.effRTT(s)
	if rtt == 0 || rtt >= p.VirtualRTT {
		return 1
	}
	r := float64(rtt) / float64(p.VirtualRTT)
	return math.Pow(r, pragueAIExponent)
}

// OnAck implements CongestionControl.
func (p *Prague) OnAck(s *State, acked int, ackedCE bool, now time.Duration) {
	p.ackedSegs += acked
	if ackedCE {
		p.markedSegs += acked
	}
	if p.windowEnd < 0 && p.sndNxtRef != nil {
		p.windowEnd = *p.sndNxtRef
	}
	// Close the observation window when the ACK point passes it: DCTCP's
	// cadence — update α every round trip of sequence space and reduce
	// once if the window saw any mark. RTT independence lives entirely in
	// the increase; virtualizing the reduction cadence instead was tried
	// and absorbs mark bursts (several marked windows inside one virtual
	// RTT collapse into a single cut), overshooting the fair rate.
	if p.sndUnaRef != nil && *p.sndUnaRef >= p.windowEnd {
		f := 0.0
		if p.ackedSegs > 0 {
			f = float64(p.markedSegs) / float64(p.ackedSegs)
		}
		p.alpha = (1-p.G)*p.alpha + p.G*f
		if p.markedSegs > 0 {
			s.Cwnd *= 1 - p.alpha/2
			s.clampCwnd()
			s.Ssthresh = s.Cwnd
		}
		p.ackedSegs, p.markedSegs = 0, 0
		p.windowEnd = *p.sndNxtRef
	}
	p.increase(s, acked)
}

// increase grows the window: unscaled slow start (HyStart-free, exited by
// the first marked window setting ssthresh), then scaled Reno-style
// congestion avoidance that stays well-defined for fractional windows.
func (p *Prague) increase(s *State, acked int) {
	f := float64(acked)
	// Appropriate Byte Counting, in float so sub-segment windows don't
	// truncate the credit to zero: no ACK may count more than one window.
	if s.Cwnd >= 1 && f > s.Cwnd {
		f = s.Cwnd
	}
	if s.InSlowStart() {
		inc := f
		if inc > s.Cwnd {
			inc = s.Cwnd
		}
		if s.Cwnd+inc > s.Ssthresh {
			// Finish slow start exactly at ssthresh; the remainder of
			// this ACK continues in congestion avoidance.
			inc = s.Ssthresh - s.Cwnd
		}
		s.Cwnd += inc
		f -= inc
		if f <= 0 {
			return
		}
	}
	den := s.Cwnd
	if den < 1 {
		// A sub-packet window still receives at most one ACK per round
		// trip; dividing by the true window would grow it by >1 segment
		// per RTT. The floor caps recovery at the scaled Reno slope.
		den = 1
	}
	s.Cwnd += p.aiFactor(s) * f / den
}

// OnCongestionEvent implements CongestionControl: classic fallback — loss is
// answered with a Reno halving, so Prague is safe behind drop-based AQMs.
func (p *Prague) OnCongestionEvent(s *State, now time.Duration) {
	Reno{}.OnCongestionEvent(s, now)
}

// OnRTO implements CongestionControl.
func (p *Prague) OnRTO(s *State, now time.Duration) {
	Reno{}.OnRTO(s, now)
	p.ackedSegs, p.markedSegs = 0, 0
	p.windowEnd = -1
}
