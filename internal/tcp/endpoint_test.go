package tcp

import (
	"testing"
	"time"

	"pi2/internal/aqm"
	"pi2/internal/link"
	"pi2/internal/packet"
	"pi2/internal/sim"
)

// dropSet is a test AQM that drops specific (flow, seq) data segments the
// first time they are offered.
type dropSet struct {
	drop map[int64]bool
}

func (d *dropSet) Name() string { return "dropset" }
func (d *dropSet) Enqueue(p *packet.Packet, _ aqm.QueueInfo, _ time.Duration) aqm.Verdict {
	if d.drop[p.Seq] && !p.Retransmit {
		delete(d.drop, p.Seq)
		return aqm.Drop
	}
	return aqm.Accept
}
func (d *dropSet) Dequeue(*packet.Packet, aqm.QueueInfo, time.Duration) {}
func (d *dropSet) UpdateInterval() time.Duration                        { return 0 }
func (d *dropSet) Update(aqm.QueueInfo, time.Duration)                  {}

// markSet CE-marks specific sequence numbers.
type markSet struct {
	mark map[int64]bool
}

func (m *markSet) Name() string { return "markset" }
func (m *markSet) Enqueue(p *packet.Packet, _ aqm.QueueInfo, _ time.Duration) aqm.Verdict {
	if m.mark[p.Seq] {
		return aqm.Mark
	}
	return aqm.Accept
}
func (m *markSet) Dequeue(*packet.Packet, aqm.QueueInfo, time.Duration) {}
func (m *markSet) UpdateInterval() time.Duration                        { return 0 }
func (m *markSet) Update(aqm.QueueInfo, time.Duration)                  {}

// harness wires one endpoint through a fast link.
func harness(t *testing.T, a aqm.AQM, cfg Config) (*sim.Simulator, *Endpoint, *link.Link) {
	t.Helper()
	s := sim.New(1)
	d := link.NewDispatcher()
	l := link.New(s, link.Config{RateBps: 100e6, AQM: a}, d.Deliver)
	if cfg.BaseRTT == 0 {
		cfg.BaseRTT = 10 * time.Millisecond
	}
	if cfg.ID == 0 {
		cfg.ID = 1
	}
	ep := New(s, l, cfg)
	d.Register(cfg.ID, ep.DeliverData)
	return s, ep, l
}

func TestBulkTransferProgresses(t *testing.T) {
	s, ep, _ := harness(t, nil, Config{CC: Reno{}})
	ep.Start()
	s.RunUntil(2 * time.Second)
	if ep.Goodput.Bytes() == 0 {
		t.Fatal("no goodput")
	}
	if ep.Retransmissions() != 0 {
		t.Errorf("retransmissions on a loss-free path: %d", ep.Retransmissions())
	}
	if ep.State().MinRTT < 10*time.Millisecond {
		t.Errorf("MinRTT = %v, below base RTT", ep.State().MinRTT)
	}
}

func TestFiniteFlowCompletes(t *testing.T) {
	done := time.Duration(0)
	s, ep, _ := harness(t, nil, Config{
		CC:       Reno{},
		FlowSegs: 100,
		OnComplete: func(now time.Duration) {
			done = now
		},
	})
	ep.Start()
	s.RunUntil(5 * time.Second)
	if !ep.Completed() {
		t.Fatal("flow did not complete")
	}
	if done == 0 || ep.FCT() == 0 {
		t.Error("completion time not recorded")
	}
	// 100 segments over a 100 Mb/s link with 10 ms RTT in slow start
	// from IW10: roughly 4 round trips.
	if fct := ep.FCT(); fct > 200*time.Millisecond {
		t.Errorf("FCT = %v, unexpectedly slow", fct)
	}
	if got := ep.Goodput.Bytes(); got != 100*packet.MSS {
		t.Errorf("goodput bytes = %d, want %d", got, 100*packet.MSS)
	}
}

func TestFastRetransmitRecoversSingleLoss(t *testing.T) {
	s, ep, _ := harness(t, &dropSet{drop: map[int64]bool{30: true}}, Config{CC: Reno{}})
	ep.Start()
	s.RunUntil(2 * time.Second)
	if ep.Retransmissions() != 1 {
		t.Errorf("retransmissions = %d, want exactly 1", ep.Retransmissions())
	}
	if ep.RTOCount() != 0 {
		t.Errorf("RTO fired %d times; fast retransmit should have recovered", ep.RTOCount())
	}
	if ep.CongestionEvents() != 1 {
		t.Errorf("congestion events = %d, want 1", ep.CongestionEvents())
	}
	if ep.State().InRecovery {
		t.Error("still in recovery long after the loss")
	}
	if ep.Goodput.Bytes() == 0 {
		t.Error("transfer stalled")
	}
}

func TestMultipleLossesSameWindow(t *testing.T) {
	drops := map[int64]bool{40: true, 42: true, 44: true}
	s, ep, _ := harness(t, &dropSet{drop: drops}, Config{CC: Reno{}})
	ep.Start()
	s.RunUntil(3 * time.Second)
	if ep.Goodput.Bytes() == 0 {
		t.Fatal("stalled after burst loss")
	}
	// NewReno heals one hole per RTT: 3 retransmissions, one recovery
	// episode (possibly plus an RTO if the window was tiny).
	if ep.Retransmissions() < 3 {
		t.Errorf("retransmissions = %d, want >= 3", ep.Retransmissions())
	}
	if ep.State().InRecovery {
		t.Error("stuck in recovery")
	}
}

func TestRTORecoversLostRetransmit(t *testing.T) {
	// Drop seq 30 twice (original and the fast retransmit): only the
	// retransmission timer can recover.
	a := &stubbornDropper{seq: 30, times: 2}
	s, ep, _ := harness(t, a, Config{CC: Reno{}})
	ep.Start()
	s.RunUntil(5 * time.Second)
	if ep.RTOCount() == 0 {
		t.Error("RTO never fired despite a lost retransmission")
	}
	if ep.State().InRecovery {
		t.Error("stuck in recovery after RTO")
	}
	if ep.Goodput.RateBps(s.Now()) == 0 {
		t.Error("stalled")
	}
}

// stubbornDropper drops a given seq the first `times` times it appears,
// retransmission or not.
type stubbornDropper struct {
	seq   int64
	times int
}

func (d *stubbornDropper) Name() string { return "stubborn" }
func (d *stubbornDropper) Enqueue(p *packet.Packet, _ aqm.QueueInfo, _ time.Duration) aqm.Verdict {
	if p.Seq == d.seq && d.times > 0 && p.PayloadLen > 0 {
		d.times--
		return aqm.Drop
	}
	return aqm.Accept
}
func (d *stubbornDropper) Dequeue(*packet.Packet, aqm.QueueInfo, time.Duration) {}
func (d *stubbornDropper) UpdateInterval() time.Duration                        { return 0 }
func (d *stubbornDropper) Update(aqm.QueueInfo, time.Duration)                  {}

func TestClassicECNHandshake(t *testing.T) {
	// Mark one segment: an ECN-Classic flow must reduce once (no
	// retransmission) and clear the echo with CWR.
	s, ep, l := harness(t, &markSet{mark: map[int64]bool{25: true}},
		Config{CC: Reno{}, ECN: ECNClassic})
	ep.Start()
	s.RunUntil(2 * time.Second)
	if ep.MarksSeen() != 1 {
		t.Fatalf("marks seen = %d, want 1", ep.MarksSeen())
	}
	if ep.CongestionEvents() != 1 {
		t.Errorf("congestion events = %d, want exactly 1 (ECE latch must not re-trigger)", ep.CongestionEvents())
	}
	if ep.Retransmissions() != 0 {
		t.Errorf("retransmissions = %d; ECN must not retransmit", ep.Retransmissions())
	}
	if l.TotalDrops() != 0 {
		t.Errorf("drops = %d on a mark-only path", l.TotalDrops())
	}
}

func TestScalableAccurateFeedback(t *testing.T) {
	// Mark three scattered segments: the idealized Scalable control
	// reduces by exactly 0.5 segment per mark.
	marks := map[int64]bool{100: true, 101: true, 102: true}
	s, ep, _ := harness(t, &markSet{mark: marks}, Config{CC: Scalable{}, ECN: ECNScalable})
	ep.Start()
	// Run until well past slow start.
	s.RunUntil(2 * time.Second)
	if ep.MarksSeen() != 3 {
		t.Fatalf("marks seen = %d, want 3", ep.MarksSeen())
	}
	if ep.CongestionEvents() != 0 {
		t.Errorf("scalable flow logged %d Classic congestion events", ep.CongestionEvents())
	}
}

func TestStopDrainsInflight(t *testing.T) {
	s, ep, _ := harness(t, nil, Config{CC: Reno{}})
	ep.Start()
	s.RunUntil(500 * time.Millisecond)
	ep.Stop()
	if !ep.Stopped() {
		t.Fatal("not stopped")
	}
	before := ep.Goodput.Bytes()
	// Without an AQM the tail-drop queue is deep; give it ample time to
	// drain completely, then verify delivery has ceased for good.
	s.RunUntil(30 * time.Second)
	after := ep.Goodput.Bytes()
	s.RunUntil(35 * time.Second)
	if got := ep.Goodput.Bytes(); got != after {
		t.Errorf("goodput kept growing after drain: %d -> %d", after, got)
	}
	if after < before {
		t.Error("goodput went backwards")
	}
}

func TestRTTSampling(t *testing.T) {
	s, ep, _ := harness(t, nil, Config{CC: Reno{}, BaseRTT: 40 * time.Millisecond})
	ep.Start()
	// Stop before slow start exceeds the 345-packet BDP, so the tail-drop
	// queue stays empty and the measured RTT reflects the base path.
	s.RunUntil(200 * time.Millisecond)
	st := ep.State()
	if st.SRTT < 40*time.Millisecond || st.SRTT > 60*time.Millisecond {
		t.Errorf("SRTT = %v, want slightly above the 40 ms base", st.SRTT)
	}
	if st.MinRTT < 40*time.Millisecond || st.MinRTT > 42*time.Millisecond {
		t.Errorf("MinRTT = %v, want ~base + serialization", st.MinRTT)
	}
	if ep.RTTSamples.N() == 0 {
		t.Error("no RTT samples")
	}
}

func TestSlowStartThenCongestionAvoidance(t *testing.T) {
	s, ep, _ := harness(t, &dropSet{drop: map[int64]bool{200: true}}, Config{CC: Reno{}})
	ep.Start()
	s.RunUntil(3 * time.Second)
	st := ep.State()
	if st.InSlowStart() {
		t.Error("still in slow start after a congestion event")
	}
	if st.Ssthresh > 1e6 {
		t.Error("ssthresh never set")
	}
}

func TestECNCodepoints(t *testing.T) {
	cases := []struct {
		mode ECNMode
		want packet.ECN
	}{
		{ECNOff, packet.NotECT},
		{ECNClassic, packet.ECT0},
		{ECNScalable, packet.ECT1},
	}
	for _, c := range cases {
		s := sim.New(1)
		d := link.NewDispatcher()
		var seen packet.ECN
		l := link.New(s, link.Config{RateBps: 1e9}, func(p *packet.Packet) {
			seen = p.ECN
			d.Deliver(p)
		})
		ep := New(s, l, Config{ID: 1, CC: Reno{}, ECN: c.mode, BaseRTT: time.Millisecond})
		d.Register(1, ep.DeliverData)
		ep.Start()
		s.RunUntil(10 * time.Millisecond)
		if seen != c.want {
			t.Errorf("mode %v: codepoint %v, want %v", c.mode, seen, c.want)
		}
	}
}

func TestReorderingToleratedBelowDupThresh(t *testing.T) {
	// Two dupacks (reordering) must not trigger a congestion response.
	// Simulate by marking nothing and dropping nothing — covered — so
	// instead check the dupack counter logic directly: a dropped segment
	// recovered before the third dupack cannot happen with cumulative
	// ACKs; assert at least that no spurious events occur loss-free.
	s, ep, _ := harness(t, nil, Config{CC: Reno{}})
	ep.Start()
	s.RunUntil(time.Second)
	if ep.CongestionEvents() != 0 {
		t.Errorf("spurious congestion events: %d", ep.CongestionEvents())
	}
}

func TestNewCCFactory(t *testing.T) {
	for name, wantMode := range map[string]ECNMode{
		"reno": ECNOff, "cubic": ECNOff,
		"ecn-reno": ECNClassic, "ecn-cubic": ECNClassic,
		"dctcp": ECNScalable, "scalable": ECNScalable,
	} {
		cc, mode, err := NewCC(name)
		if err != nil {
			t.Fatalf("NewCC(%q): %v", name, err)
		}
		if cc == nil || mode != wantMode {
			t.Errorf("NewCC(%q) = %v/%v", name, cc, mode)
		}
	}
	if _, _, err := NewCC("bbr"); err == nil {
		t.Error("unknown CC did not error")
	}
}

func TestConfigValidation(t *testing.T) {
	s := sim.New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("nil CC did not panic")
		}
	}()
	NewWithEnqueuer(s, func(*packet.Packet) {}, Config{})
}

func TestStringer(t *testing.T) {
	s, ep, _ := harness(t, nil, Config{CC: Reno{}})
	_ = s
	if ep.String() == "" || ep.CCName() != "reno" || ep.ID() != 1 {
		t.Error("accessors")
	}
	if ECNMode(99).String() != "invalid" {
		t.Error("ECNMode stringer")
	}
}
