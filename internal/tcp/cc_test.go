package tcp

import (
	"math"
	"testing"
	"time"
)

func newState(cwnd, ssthresh float64) *State {
	return &State{Cwnd: cwnd, Ssthresh: ssthresh, MinCwnd: 2}
}

func TestRenoSlowStartDoubling(t *testing.T) {
	s := newState(10, 1e9)
	Reno{}.OnAck(s, 10, false, 0)
	if s.Cwnd != 20 {
		t.Errorf("cwnd = %v, want 20 (doubling per RTT)", s.Cwnd)
	}
}

func TestRenoSlowStartCapPerAck(t *testing.T) {
	// ABC: a single huge cumulative ACK cannot more than double cwnd.
	s := newState(10, 1e9)
	Reno{}.OnAck(s, 5000, false, 0)
	if s.Cwnd != 20 {
		t.Errorf("cwnd = %v after mega-ACK, want 20", s.Cwnd)
	}
}

func TestRenoSlowStartExitsAtSsthresh(t *testing.T) {
	s := newState(10, 12)
	Reno{}.OnAck(s, 10, false, 0)
	// 2 segments finish slow start (to 12), remaining 8 ACKs add
	// 8/12 in congestion avoidance.
	want := 12 + 8.0/12
	if math.Abs(s.Cwnd-want) > 1e-9 {
		t.Errorf("cwnd = %v, want %v", s.Cwnd, want)
	}
}

func TestRenoCongestionAvoidanceLinear(t *testing.T) {
	s := newState(10, 5) // past ssthresh
	for i := 0; i < 10; i++ {
		Reno{}.OnAck(s, 1, false, 0)
	}
	// Ten ACKs with cwnd ~10 add roughly one segment.
	if s.Cwnd < 10.9 || s.Cwnd > 11.1 {
		t.Errorf("cwnd = %v, want ~11 after one RTT", s.Cwnd)
	}
}

func TestRenoHalvesOnCongestion(t *testing.T) {
	s := newState(40, 1e9)
	Reno{}.OnCongestionEvent(s, 0)
	if s.Cwnd != 20 || s.Ssthresh != 20 {
		t.Errorf("cwnd=%v ssthresh=%v, want 20/20", s.Cwnd, s.Ssthresh)
	}
}

func TestRenoMinCwndFloor(t *testing.T) {
	s := newState(3, 1e9)
	Reno{}.OnCongestionEvent(s, 0)
	if s.Cwnd != 2 {
		t.Errorf("cwnd = %v, want floored at MinCwnd 2", s.Cwnd)
	}
}

func TestRenoRTO(t *testing.T) {
	s := newState(40, 1e9)
	Reno{}.OnRTO(s, 0)
	if s.Cwnd != 1 || s.Ssthresh != 20 {
		t.Errorf("cwnd=%v ssthresh=%v, want 1/20", s.Cwnd, s.Ssthresh)
	}
}

func TestCubicDecreaseFactor(t *testing.T) {
	c := &Cubic{}
	s := newState(100, 50)
	c.Init(s)
	c.OnCongestionEvent(s, 0)
	if math.Abs(s.Cwnd-70) > 1e-9 {
		t.Errorf("cwnd = %v, want 70 (beta = 0.7)", s.Cwnd)
	}
	if s.Ssthresh != s.Cwnd {
		t.Error("ssthresh must equal cwnd after reduction")
	}
}

func TestCubicFastConvergence(t *testing.T) {
	c := &Cubic{}
	s := newState(100, 50)
	c.Init(s)
	c.OnCongestionEvent(s, 0) // wLastMax = 100
	s.Cwnd = 80               // reduced again before regaining 100
	c.OnCongestionEvent(s, time.Second)
	// Fast convergence: wMax set below the current window's natural max.
	if c.wMax >= 80 {
		t.Errorf("wMax = %v, want < 80 under fast convergence", c.wMax)
	}
}

func TestCubicConcaveGrowthTowardWMax(t *testing.T) {
	// Disable the Reno-friendly region: at 10 ms RTT its linear growth
	// legitimately outpaces the concave cubic curve, which is not what
	// this test measures.
	c := &Cubic{DisableFriendly: true}
	s := newState(100, 50)
	c.Init(s)
	c.OnCongestionEvent(s, 0) // cwnd 70, wMax 100, K = cbrt(30/0.4) ~ 4.2 s
	s.SRTT = 10 * time.Millisecond

	// Simulate 3 virtual seconds of ACK clocking at ~cwnd ACKs per RTT.
	now := time.Duration(0)
	var prev float64
	growthShrinking := true
	lastGrowth := math.Inf(1)
	for i := 0; i < 300; i++ {
		now += 10 * time.Millisecond
		prev = s.Cwnd
		c.OnAck(s, int(s.Cwnd), false, now)
		g := s.Cwnd - prev
		if g > lastGrowth+0.5 {
			growthShrinking = false
		}
		lastGrowth = g
	}
	if !growthShrinking {
		t.Error("growth rate increased while approaching wMax (should be concave)")
	}
	if s.Cwnd < 85 || s.Cwnd > 115 {
		t.Errorf("cwnd = %v after 3 s, want approaching wMax 100", s.Cwnd)
	}
}

func TestCubicDefaultsApplied(t *testing.T) {
	c := &Cubic{}
	s := newState(10, 1e9)
	c.Init(s)
	if c.C != 0.4 || c.Beta != 0.7 {
		t.Errorf("defaults C=%v Beta=%v", c.C, c.Beta)
	}
}

func TestDCTCPReductionProportionalToAlpha(t *testing.T) {
	d := &DCTCP{}
	s := newState(100, 50)
	d.Init(s)
	var una, nxt int64 = 0, 10
	d.bindSeq(&una, &nxt)

	// First window: all ACKs marked. With initial alpha = 1 the window
	// should eventually halve on the window boundary.
	d.OnAck(s, 1, true, 0) // opens the observation window (end = 10)
	una = 10               // pass the boundary
	nxt = 20
	cwndBefore := s.Cwnd
	d.OnAck(s, 1, true, 0)
	if s.Cwnd >= cwndBefore {
		t.Errorf("no reduction at window boundary with marks: %v -> %v", cwndBefore, s.Cwnd)
	}
	// Reduction ≈ alpha/2 = 50 % (alpha still near 1).
	if s.Cwnd < cwndBefore*0.4 || s.Cwnd > cwndBefore*0.7 {
		t.Errorf("reduction factor off: %v -> %v", cwndBefore, s.Cwnd)
	}
}

func TestDCTCPNoMarksNoReduction(t *testing.T) {
	d := &DCTCP{}
	s := newState(100, 50)
	d.Init(s)
	var una, nxt int64 = 0, 10
	d.bindSeq(&una, &nxt)
	d.OnAck(s, 1, false, 0)
	una, nxt = 10, 20
	before := s.Cwnd
	d.OnAck(s, 1, false, 0)
	if s.Cwnd < before {
		t.Errorf("reduced without marks: %v -> %v", before, s.Cwnd)
	}
	// Alpha decays toward zero without marks.
	if d.Alpha() >= 1 {
		t.Errorf("alpha = %v, should decay", d.Alpha())
	}
}

func TestDCTCPAlphaEWMAGain(t *testing.T) {
	d := &DCTCP{}
	s := newState(100, 50)
	d.Init(s)
	var una, nxt int64 = 0, 10
	d.bindSeq(&una, &nxt)
	// One unmarked window: alpha ← (1−1/16)·1 = 0.9375.
	d.OnAck(s, 1, false, 0)
	una, nxt = 10, 20
	d.OnAck(s, 1, false, 0)
	if math.Abs(d.Alpha()-0.9375) > 1e-9 {
		t.Errorf("alpha = %v, want 0.9375 after one clean window", d.Alpha())
	}
}

func TestDCTCPLossFallsBackToReno(t *testing.T) {
	d := &DCTCP{}
	s := newState(100, 50)
	d.Init(s)
	d.OnCongestionEvent(s, 0)
	if s.Cwnd != 50 {
		t.Errorf("cwnd = %v after loss, want Reno halving", s.Cwnd)
	}
}

func TestScalableHalfSegmentPerMark(t *testing.T) {
	s := newState(50, 10) // out of slow start
	Scalable{}.OnAck(s, 1, true, 0)
	if math.Abs(s.Cwnd-49.5) > 1e-9 {
		t.Errorf("cwnd = %v, want 49.5 (-0.5 per mark)", s.Cwnd)
	}
	Scalable{}.OnAck(s, 1, false, 0)
	if s.Cwnd <= 49.5 {
		t.Error("no growth on clean ACK")
	}
}

func TestScalableMarkExitsSlowStart(t *testing.T) {
	s := newState(50, 1e9) // in slow start
	Scalable{}.OnAck(s, 1, true, 0)
	if s.InSlowStart() {
		t.Error("still in slow start after a mark")
	}
}

func TestCCNames(t *testing.T) {
	if (Reno{}).Name() != "reno" || (&Cubic{}).Name() != "cubic" ||
		(&DCTCP{}).Name() != "dctcp" || (Scalable{}).Name() != "scalable" {
		t.Error("names")
	}
}

func TestStateInSlowStart(t *testing.T) {
	s := newState(10, 20)
	if !s.InSlowStart() {
		t.Error("cwnd < ssthresh should be slow start")
	}
	s.Cwnd = 20
	if s.InSlowStart() {
		t.Error("cwnd == ssthresh should be congestion avoidance")
	}
}
