package tcp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"pi2/internal/aqm"
	"pi2/internal/link"
	"pi2/internal/packet"
	"pi2/internal/sim"
)

// bernoulli is a fixed-probability AQM: it drops (or marks) every packet
// independently with probability p — the idealized signal source the
// Appendix A steady-state window equations assume.
type bernoulli struct {
	p    float64
	mark bool
	rng  *rand.Rand
}

func (b *bernoulli) Name() string { return "bernoulli" }
func (b *bernoulli) Enqueue(p *packet.Packet, _ aqm.QueueInfo, _ time.Duration) aqm.Verdict {
	if b.rng.Float64() >= b.p {
		return aqm.Accept
	}
	if b.mark && p.ECN.ECNCapable() {
		return aqm.Mark
	}
	return aqm.Drop
}
func (b *bernoulli) Dequeue(*packet.Packet, aqm.QueueInfo, time.Duration) {}
func (b *bernoulli) UpdateInterval() time.Duration                        { return 0 }
func (b *bernoulli) Update(aqm.QueueInfo, time.Duration)                  {}

// meanWindow runs one flow against a fixed signal probability on a fat link
// (so queuing is negligible) and returns the time-average cwnd in segments
// after a warm-up.
func meanWindow(t *testing.T, cc CongestionControl, mode ECNMode, p float64, mark bool, dur time.Duration) float64 {
	return meanWindowAt(t, cc, mode, p, mark, dur, 20*time.Millisecond)
}

func meanWindowAt(t *testing.T, cc CongestionControl, mode ECNMode, p float64, mark bool, dur, rtt time.Duration) float64 {
	t.Helper()
	s := sim.New(123)
	d := link.NewDispatcher()
	l := link.New(s, link.Config{
		RateBps: 1e9,
		AQM:     &bernoulli{p: p, mark: mark, rng: s.RNG()},
	}, d.Deliver)
	ep := New(s, l, Config{ID: 1, CC: cc, ECN: mode, BaseRTT: rtt})
	d.Register(1, ep.DeliverData)
	ep.Start()

	warm := dur / 4
	var sum float64
	var n int
	s.Every(10*time.Millisecond, func() {
		if s.Now() > warm {
			sum += ep.State().Cwnd
			n++
		}
	})
	s.RunUntil(dur)
	if n == 0 {
		t.Fatal("no samples")
	}
	return sum / float64(n)
}

// TestRenoSteadyStateWindow checks equation (5): W_reno ≈ 1.22/√p.
func TestRenoSteadyStateWindow(t *testing.T) {
	for _, p := range []float64{0.005, 0.02} {
		got := meanWindow(t, Reno{}, ECNOff, p, false, 120*time.Second)
		want := 1.22 / math.Sqrt(p)
		if got < want*0.6 || got > want*1.5 {
			t.Errorf("p=%v: mean W = %.1f, want ~%.1f (1.22/sqrt(p))", p, got, want)
		}
	}
}

// TestDCTCPSteadyStateWindow checks equation (11): W_dctcp = 2/p under
// probabilistic marking — the linearity that lets PI drive DCTCP without
// squaring (B = 1, a Scalable control).
func TestDCTCPSteadyStateWindow(t *testing.T) {
	for _, p := range []float64{0.05, 0.1, 0.2} {
		got := meanWindow(t, &DCTCP{}, ECNScalable, p, true, 120*time.Second)
		want := 2 / p
		if got < want*0.6 || got > want*1.6 {
			t.Errorf("p=%v: mean W = %.1f, want ~%.1f (2/p)", p, got, want)
		}
	}
}

// TestScalableSteadyStateWindow checks the idealized Appendix B control:
// increase 1/RTT, decrease p·W/2 per RTT ⇒ W = √... actually the −½
// segment per mark control balances at exactly W = 2/p like DCTCP.
func TestScalableSteadyStateWindow(t *testing.T) {
	for _, p := range []float64{0.05, 0.2} {
		got := meanWindow(t, Scalable{}, ECNScalable, p, true, 120*time.Second)
		want := 2 / p
		if got < want*0.6 || got > want*1.6 {
			t.Errorf("p=%v: mean W = %.1f, want ~%.1f (2/p)", p, got, want)
		}
	}
}

// TestScalableIsScalable verifies the defining property of Section 2: the
// number of congestion signals per RTT (c = p·W) stays constant as the
// window scales for a Scalable control, but shrinks for Reno.
func TestScalableIsScalable(t *testing.T) {
	// DCTCP/Scalable: c = p·W = p·(2/p) = 2 regardless of p.
	for _, p := range []float64{0.05, 0.2} {
		w := meanWindow(t, Scalable{}, ECNScalable, p, true, 60*time.Second)
		c := p * w
		if c < 1 || c > 4 {
			t.Errorf("scalable signals/RTT at p=%v: %.2f, want ~2", p, c)
		}
	}
	// Reno: c = p·W = 1.22·√p — shrinks with smaller p (unscalable).
	cLow := 0.005 * meanWindow(t, Reno{}, ECNOff, 0.005, false, 120*time.Second)
	cHigh := 0.05 * meanWindow(t, Reno{}, ECNOff, 0.05, false, 120*time.Second)
	if cLow >= cHigh {
		t.Errorf("reno signals/RTT did not shrink with p: c(0.005)=%.3f c(0.05)=%.3f", cLow, cHigh)
	}
}

// TestDCTCPAlphaTracksMarkingFraction: the EWMA α must converge to the
// applied marking probability (F ≈ p for probabilistic marking).
func TestDCTCPAlphaTracksMarkingFraction(t *testing.T) {
	const p = 0.15
	s := sim.New(9)
	d := link.NewDispatcher()
	l := link.New(s, link.Config{
		RateBps: 1e9,
		AQM:     &bernoulli{p: p, mark: true, rng: s.RNG()},
	}, d.Deliver)
	cc := &DCTCP{}
	ep := New(s, l, Config{ID: 1, CC: cc, ECN: ECNScalable, BaseRTT: 20 * time.Millisecond})
	d.Register(1, ep.DeliverData)
	ep.Start()
	s.RunUntil(60 * time.Second)
	if a := cc.Alpha(); math.Abs(a-p) > 0.08 {
		t.Errorf("alpha = %.3f, want ~%.3f", a, p)
	}
}

// TestCubicBeatsRenoAtScale: at large windows (low p) pure Cubic must grow
// faster than Reno (that is its purpose); equation (6) vs (5). The
// operating point must satisfy the switch-over condition (8),
// W·R^{3/2} > 3.5, for the pure-cubic region to engage: at p = 1e-4 and
// R = 100 ms, W_reno = 122 and W·R^{3/2} ≈ 3.9.
func TestCubicBeatsRenoAtScale(t *testing.T) {
	const (
		p   = 0.0001
		rtt = 100 * time.Millisecond
	)
	reno := meanWindowAt(t, Reno{}, ECNOff, p, false, 400*time.Second, rtt)
	cubic := meanWindowAt(t, &Cubic{}, ECNOff, p, false, 400*time.Second, rtt)
	if cubic <= reno*1.1 {
		t.Errorf("cubic W=%.1f not above reno W=%.1f at p=%v, R=%v", cubic, reno, p, rtt)
	}
}

// TestCRenoMatchesRenoAtSmallWindows: in the TCP-friendly region Cubic
// falls back to Reno-equivalent rates (equation (7) territory).
func TestCRenoMatchesRenoAtSmallWindows(t *testing.T) {
	const p = 0.02 // W ~ 9: firmly in the friendly region
	reno := meanWindow(t, Reno{}, ECNOff, p, false, 120*time.Second)
	creno := meanWindow(t, &Cubic{}, ECNOff, p, false, 120*time.Second)
	ratio := creno / reno
	if ratio < 0.7 || ratio > 1.8 {
		t.Errorf("creno/reno = %.2f, want near parity", ratio)
	}
}

// TestCubicFriendlySwitchover: with the friendly region disabled, Cubic at
// small windows is slower than with it enabled (the region exists to fix
// exactly this).
func TestCubicFriendlySwitchover(t *testing.T) {
	const p = 0.02
	with := meanWindow(t, &Cubic{}, ECNOff, p, false, 120*time.Second)
	without := meanWindow(t, &Cubic{DisableFriendly: true}, ECNOff, p, false, 120*time.Second)
	if without >= with {
		t.Errorf("disabling the friendly region helped (with=%.1f without=%.1f)", with, without)
	}
}

// TestECNRenoEqualsDropReno: classic ECN marks must elicit the same window
// as drops (RFC 3168: a mark means what a drop means).
func TestECNRenoEqualsDropReno(t *testing.T) {
	const p = 0.02
	drop := meanWindow(t, Reno{}, ECNOff, p, false, 120*time.Second)
	mark := meanWindow(t, Reno{}, ECNClassic, p, true, 120*time.Second)
	ratio := mark / drop
	if ratio < 0.75 || ratio > 1.4 {
		t.Errorf("ecn/drop window ratio = %.2f, want ~1", ratio)
	}
}
