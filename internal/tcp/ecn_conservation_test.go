package tcp

import (
	"testing"
	"time"

	"pi2/internal/aqm"
	"pi2/internal/link"
	"pi2/internal/sim"
)

// TestAccurateECNConservation checks the accurate-ECN feedback identity end
// to end for the scalable senders: every CE mark the AQM applies is seen by
// exactly one receiver, echoed on exactly one ACK, and counted by exactly
// one OnAck — with no off-by-one across delayed-ACK boundaries (the
// CE-change flush rule is what keeps AckEvery > 1 exact).
//
// The flow is finite and the run outlives it, so there are no in-flight
// marks at the end and the counts must match exactly, not approximately:
//
//	link.Marks() == Audit().MarksForFlow(id) == ep.MarksSeen() == ep.CEAcked()
func TestAccurateECNConservation(t *testing.T) {
	ccs := []struct {
		name string
		cc   func() CongestionControl
	}{
		{"prague", func() CongestionControl { return &Prague{} }},
		{"dctcp", func() CongestionControl { return &DCTCP{} }},
	}
	for _, c := range ccs {
		for _, ackEvery := range []int{1, 2} {
			t.Run(c.name+"/ackevery"+string(rune('0'+ackEvery)), func(t *testing.T) {
				s := sim.New(42)
				d := link.NewDispatcher()
				l := link.New(s, link.Config{
					RateBps: 10e6,
					AQM:     aqm.NewStepMark(aqm.StepMarkConfig{Threshold: 2 * time.Millisecond}),
				}, d.Deliver)
				ep := New(s, l, Config{
					ID: 1, CC: c.cc(), ECN: ECNScalable,
					BaseRTT: 10 * time.Millisecond, AckEvery: ackEvery,
					FlowSegs: 5000,
				})
				d.Register(1, ep.DeliverData)
				ep.Start()
				s.RunUntil(60 * time.Second)

				if !ep.Completed() {
					t.Fatal("flow did not complete; conservation check needs a drained flow")
				}
				applied := l.Marks()
				perFlow := l.Audit().MarksForFlow(1)
				seen := ep.MarksSeen()
				echoed := ep.CEAcked()
				if applied < 50 {
					t.Fatalf("only %d marks applied; scenario not exercising the mark path", applied)
				}
				if perFlow != applied {
					t.Errorf("auditor per-flow marks = %d, link applied %d", perFlow, applied)
				}
				if seen != applied {
					t.Errorf("receiver saw %d CE marks, AQM applied %d", seen, applied)
				}
				if echoed != applied {
					t.Errorf("sender counted %d CE-acked segments, AQM applied %d", echoed, applied)
				}
			})
		}
	}
}
