package tcp

import (
	"reflect"
	"testing"
	"time"

	"pi2/internal/aqm"
	"pi2/internal/link"
	"pi2/internal/sim"
)

func TestSackBlocks(t *testing.T) {
	cases := []struct {
		in     []int64
		recent int64
		want   [][2]int64
	}{
		{nil, -1, nil},
		{[]int64{5}, -1, [][2]int64{{5, 6}}},
		{[]int64{5, 6, 7}, -1, [][2]int64{{5, 8}}},
		{[]int64{5, 7, 8, 12}, -1, [][2]int64{{5, 6}, {7, 9}, {12, 13}}},
		// More than four runs, no recent hint: lowest four.
		{[]int64{1, 3, 5, 7, 9, 11}, -1, [][2]int64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}},
		// The run containing the triggering segment comes first, then
		// wrap-around order, capped at four.
		{[]int64{1, 3, 5, 7, 9, 11}, 9, [][2]int64{{9, 10}, {11, 12}, {1, 2}, {3, 4}}},
		{[]int64{5, 7, 8, 12}, 8, [][2]int64{{7, 9}, {12, 13}, {5, 6}}},
	}
	for _, c := range cases {
		if got := sackBlocks(c.in, c.recent); !reflect.DeepEqual(got, c.want) {
			t.Errorf("sackBlocks(%v, %d) = %v, want %v", c.in, c.recent, got, c.want)
		}
	}
}

func TestScoreboardRecordAndPipe(t *testing.T) {
	ss := newSackState()
	ss.record([][2]int64{{5, 8}}, 0) // 5,6,7 sacked
	if ss.cntSacked != 3 || ss.highest != 8 {
		t.Fatalf("cntSacked=%d highest=%d", ss.cntSacked, ss.highest)
	}
	// FACK: 0..4 have 3 sacked above them once highest-3 >= 5.
	if n := ss.inferLosses(0); n != 5 {
		t.Errorf("inferred %d losses, want 5 (0..4)", n)
	}
	// pipe with sndNxt = 8: 8 outstanding − 3 sacked − 5 lost = 0.
	if p := ss.pipe(0, 8); p != 0 {
		t.Errorf("pipe = %d, want 0", p)
	}
	// Retransmitting one loss raises pipe by one.
	seq, ok := ss.nextRetx(0)
	if !ok || seq != 0 {
		t.Fatalf("nextRetx = %d,%v", seq, ok)
	}
	ss.markRetx(seq)
	if p := ss.pipe(0, 8); p != 1 {
		t.Errorf("pipe after retx = %d, want 1", p)
	}
}

func TestScoreboardAdvanceCleans(t *testing.T) {
	ss := newSackState()
	ss.record([][2]int64{{5, 8}}, 0)
	ss.inferLosses(0)
	ss.advance(0, 8)
	if ss.cntSacked != 0 || ss.cntLostUnretx != 0 {
		t.Errorf("counters after advance: sacked=%d lost=%d", ss.cntSacked, ss.cntLostUnretx)
	}
	if _, ok := ss.nextRetx(8); ok {
		t.Error("stale retransmission after advance")
	}
}

func TestScoreboardLateLossStillQueued(t *testing.T) {
	// Losses inferred after earlier ones were exhausted must still be
	// retransmitted (the bug class an exhausted cursor would cause).
	ss := newSackState()
	ss.record([][2]int64{{5, 8}}, 0)
	ss.inferLosses(0)
	for {
		seq, ok := ss.nextRetx(0)
		if !ok {
			break
		}
		ss.markRetx(seq)
	}
	ss.record([][2]int64{{10, 13}}, 0) // 8, 9 now have 3 above
	ss.inferLosses(0)
	seq, ok := ss.nextRetx(0)
	if !ok || seq != 8 {
		t.Errorf("late loss nextRetx = %d,%v, want 8", seq, ok)
	}
}

func TestSACKSingleLossNoRTO(t *testing.T) {
	s, ep, _ := harness(t, &dropSet{drop: map[int64]bool{30: true}},
		Config{CC: Reno{}, SACK: true})
	ep.Start()
	s.RunUntil(2 * time.Second)
	if ep.Retransmissions() != 1 {
		t.Errorf("retransmissions = %d, want 1", ep.Retransmissions())
	}
	if ep.RTOCount() != 0 {
		t.Errorf("RTO fired %d times", ep.RTOCount())
	}
	if ep.CongestionEvents() != 1 {
		t.Errorf("congestion events = %d, want 1", ep.CongestionEvents())
	}
	if ep.State().InRecovery {
		t.Error("stuck in recovery")
	}
}

func TestSACKBurstLossOneRTT(t *testing.T) {
	// Ten losses scattered in one window: SACK retransmits them all in
	// about one round trip with a single congestion event; NewReno would
	// need a partial-ACK round trip per hole.
	drops := map[int64]bool{}
	for i := int64(40); i < 60; i += 2 {
		drops[i] = true
	}
	sSack, epSack, _ := harness(t, &dropSet{drop: copyMap(drops)}, Config{CC: Reno{}, SACK: true})
	epSack.Start()
	sSack.RunUntil(3 * time.Second)

	sReno, epReno, _ := harness(t, &dropSet{drop: copyMap(drops)}, Config{CC: Reno{}})
	epReno.Start()
	sReno.RunUntil(3 * time.Second)

	if epSack.RTOCount() != 0 {
		t.Errorf("SACK needed %d RTOs for a recoverable burst", epSack.RTOCount())
	}
	if epSack.CongestionEvents() != 1 {
		t.Errorf("SACK congestion events = %d, want 1 for one loss window", epSack.CongestionEvents())
	}
	if epSack.Retransmissions() != 10 {
		t.Errorf("SACK retransmissions = %d, want exactly the 10 losses", epSack.Retransmissions())
	}
	// SACK must deliver at least as much as NewReno over the same time.
	if epSack.Goodput.Bytes() < epReno.Goodput.Bytes() {
		t.Errorf("SACK goodput %d < NewReno %d", epSack.Goodput.Bytes(), epReno.Goodput.Bytes())
	}
	t.Logf("goodput: sack=%d newreno=%d (bytes)", epSack.Goodput.Bytes(), epReno.Goodput.Bytes())
}

func copyMap(m map[int64]bool) map[int64]bool {
	out := make(map[int64]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func TestSACKLostRetransmitFallsBackToRTO(t *testing.T) {
	a := &stubbornDropper{seq: 30, times: 2}
	s, ep, _ := harness(t, a, Config{CC: Reno{}, SACK: true})
	ep.Start()
	s.RunUntil(5 * time.Second)
	if ep.RTOCount() == 0 {
		t.Error("RTO never fired for a twice-lost segment")
	}
	if ep.Goodput.RateBps(s.Now()) == 0 {
		t.Error("stalled")
	}
}

func TestSACKWithAQMEndToEnd(t *testing.T) {
	// SACK flows through a real AQM-managed bottleneck without
	// pathologies and keeps the link busy. bare-PIE is used because the
	// plain non-tuned PI drives p to ~0.7 during slow-start overshoot —
	// precisely the pathology the paper attributes to it — and under a
	// 70 % drop rate, tail-loss RTOs are correct TCP behaviour, not a
	// SACK defect. Statistics are taken after a 5 s warm-up.
	s := sim.New(1)
	d := link.NewDispatcher()
	l := link.New(s, link.Config{
		RateBps: 10e6,
		AQM:     aqm.NewPIE(aqm.BarePIEConfig(), s.RNG()),
	}, d.Deliver)
	ep := New(s, l, Config{ID: 1, CC: &Cubic{}, SACK: true, BaseRTT: 50 * time.Millisecond})
	d.Register(1, ep.DeliverData)
	ep.Start()
	s.RunUntil(5 * time.Second)
	ep.Goodput.Reset(s.Now())
	rtosBefore := ep.RTOCount()
	s.RunUntil(25 * time.Second)
	util := float64(ep.Goodput.Bytes()*8) / (10e6 * 20)
	if util < 0.8 {
		t.Errorf("goodput share %.3f, want near full", util)
	}
	if got := ep.RTOCount() - rtosBefore; got > 2 {
		t.Errorf("RTOs = %d in steady state under AQM drops with SACK", got)
	}
}

func TestDelayedAckStretch(t *testing.T) {
	// AckEvery = 2 halves the ACK count without stalling the transfer.
	s, ep, _ := harness(t, nil, Config{CC: Reno{}, AckEvery: 2, FlowSegs: 101})
	ep.Start()
	s.RunUntil(5 * time.Second)
	if !ep.Completed() {
		t.Fatal("flow with delayed ACKs did not complete (delayed-ACK timer broken?)")
	}
}

func TestDelayedAckTimerFlushesTail(t *testing.T) {
	// A flow whose last segment leaves ackPending = 1 must still finish,
	// via the delayed-ACK timeout.
	s, ep, _ := harness(t, nil, Config{CC: Reno{}, AckEvery: 4, FlowSegs: 9})
	ep.Start()
	s.RunUntil(5 * time.Second)
	if !ep.Completed() {
		t.Fatal("tail ACK never flushed")
	}
}

func TestDelayedAckReducesAckLoad(t *testing.T) {
	count := func(ackEvery int) int {
		s, ep, _ := harness(t, nil, Config{CC: Reno{}, AckEvery: ackEvery, FlowSegs: 200})
		acks := 0
		orig := ep.cfg.BaseRTT
		_ = orig
		// Count ACK arrivals by wrapping goodput? Simpler: count via
		// congestion module calls — use RTT samples as a proxy for
		// distinct ACKs that advanced the window.
		ep.Start()
		s.RunUntil(5 * time.Second)
		acks = int(ep.RTTSamples.N())
		return acks
	}
	every1 := count(1)
	every4 := count(4)
	if every4 >= every1 {
		t.Errorf("ACK-advance events: every4=%d not fewer than every1=%d", every4, every1)
	}
}

func TestDCTCPAccurateFeedbackSurvivesStretchAcks(t *testing.T) {
	// With AckEvery = 2 and the CE-change flush rule, DCTCP's alpha must
	// still converge near the marking probability.
	const p = 0.15
	s := sim.New(9)
	d := link.NewDispatcher()
	l := link.New(s, link.Config{
		RateBps: 1e9,
		AQM:     &bernoulli{p: p, mark: true, rng: s.RNG()},
	}, d.Deliver)
	cc := &DCTCP{}
	ep := New(s, l, Config{ID: 1, CC: cc, ECN: ECNScalable, BaseRTT: 20 * time.Millisecond, AckEvery: 2})
	d.Register(1, ep.DeliverData)
	ep.Start()
	s.RunUntil(60 * time.Second)
	if a := cc.Alpha(); a < p-0.1 || a > p+0.1 {
		t.Errorf("alpha = %.3f with stretch ACKs, want ~%.2f", a, p)
	}
}

func TestPacingSpreadsInitialWindow(t *testing.T) {
	// Without pacing the IW10 burst hits the queue back to back; with
	// pacing the segments are spread across the (base) RTT, so the
	// instantaneous backlog stays tiny.
	peak := func(pacing bool) int {
		s := sim.New(1)
		d := link.NewDispatcher()
		l := link.New(s, link.Config{RateBps: 5e6}, d.Deliver)
		ep := New(s, l, Config{ID: 1, CC: Reno{}, BaseRTT: 100 * time.Millisecond, Pacing: pacing})
		d.Register(1, ep.DeliverData)
		ep.Start()
		maxBacklog := 0
		probe := s.Every(100*time.Microsecond, func() {
			if b := l.BacklogPackets(); b > maxBacklog {
				maxBacklog = b
			}
		})
		s.RunUntil(90 * time.Millisecond) // within the first RTT
		probe.Stop()
		return maxBacklog
	}
	burst := peak(false)
	paced := peak(true)
	t.Logf("initial-window peak backlog: unpaced=%d paced=%d", burst, paced)
	if paced >= burst {
		t.Errorf("pacing did not reduce the burst (%d vs %d)", paced, burst)
	}
	if paced > 2 {
		t.Errorf("paced backlog %d, want <= 2", paced)
	}
}

func TestPacingDoesNotStallTransfer(t *testing.T) {
	s, ep, _ := harness(t, nil, Config{CC: Reno{}, Pacing: true, FlowSegs: 500})
	ep.Start()
	s.RunUntil(10 * time.Second)
	if !ep.Completed() {
		t.Fatal("paced flow did not complete")
	}
}

func TestPacingWithSACK(t *testing.T) {
	s, ep, _ := harness(t, &dropSet{drop: map[int64]bool{30: true}},
		Config{CC: Reno{}, Pacing: true, SACK: true})
	ep.Start()
	s.RunUntil(3 * time.Second)
	if ep.RTOCount() != 0 {
		t.Errorf("RTOs = %d with pacing+SACK", ep.RTOCount())
	}
	if ep.Goodput.Bytes() == 0 {
		t.Fatal("stalled")
	}
}
