package tcp

import (
	"math"
	"testing"
	"time"

	"pi2/internal/packet"
	"pi2/internal/sim"
)

func ffTestEndpoint(t *testing.T, cc CongestionControl, mode ECNMode) *Endpoint {
	t.Helper()
	s := sim.New(1)
	e := NewWithEnqueuer(s, func(p *packet.Packet) { s.PacketPool().Release(p) }, Config{
		ID:      1,
		CC:      cc,
		ECN:     mode,
		BaseRTT: 10 * time.Millisecond,
	})
	// Place the flow in steady congestion avoidance.
	e.started = true
	e.state.Cwnd = 10
	e.state.Ssthresh = 5
	e.state.SRTT = 12 * time.Millisecond
	e.state.RTTVar = time.Millisecond
	e.state.MinRTT = 10 * time.Millisecond
	return e
}

// TestFFAdvanceRenoMatchesClosedForm: continuous Reno CA obeys dW/dn = 1/W,
// so W(n) = sqrt(W0² + 2n). The chunked FFAdvance must track both that
// closed form and the per-ACK packet-mode iteration to sub-percent error.
func TestFFAdvanceRenoMatchesClosedForm(t *testing.T) {
	const n = 500
	e := ffTestEndpoint(t, Reno{}, ECNOff)
	w0 := e.state.Cwnd
	e.FFAdvance(n, 0, 10*time.Millisecond, 0)

	closed := math.Sqrt(w0*w0 + 2*n)
	if rel := math.Abs(e.state.Cwnd-closed) / closed; rel > 0.01 {
		t.Fatalf("cwnd %.4f vs closed form %.4f (rel %.4f)", e.state.Cwnd, closed, rel)
	}

	ref := State{Cwnd: w0, Ssthresh: 5, MinCwnd: 2}
	for i := 0; i < n; i++ {
		Reno{}.OnAck(&ref, 1, false, 0)
	}
	if rel := math.Abs(e.state.Cwnd-ref.Cwnd) / ref.Cwnd; rel > 0.01 {
		t.Fatalf("cwnd %.4f vs per-ack %.4f (rel %.4f)", e.state.Cwnd, ref.Cwnd, rel)
	}
}

// TestFFAdvanceCubicMatchesPerAck: the chunked advance through Cubic's real
// OnAck must track a per-ACK reference driven at the same virtual times,
// including the concave approach to wMax and the friendly region.
func TestFFAdvanceCubicMatchesPerAck(t *testing.T) {
	mk := func() (*Endpoint, *Cubic) {
		cc := &Cubic{}
		e := ffTestEndpoint(t, cc, ECNOff)
		// A realistic post-reduction epoch: wMax above the current window.
		cc.Init(&e.state)
		e.state.Cwnd = 10
		e.state.Ssthresh = 5
		cc.wMax = 14
		cc.wLastMax = 14
		cc.k = math.Cbrt((cc.wMax - e.state.Cwnd) / cc.C)
		cc.epochStart = 0
		cc.wEst = e.state.Cwnd
		cc.hasEpoch = true
		return e, cc
	}
	rtt := 10 * time.Millisecond

	eFF, _ := mk()
	const n = 400
	eFF.FFAdvance(n, 0, rtt, 0)

	eRef, ccRef := mk()
	now := time.Duration(0)
	acksInWin := 0
	for i := 0; i < n; i++ {
		ccRef.OnAck(&eRef.state, 1, false, now)
		acksInWin++
		if float64(acksInWin) >= eRef.state.Cwnd {
			now += rtt
			acksInWin = 0
		}
	}
	if rel := math.Abs(eFF.state.Cwnd-eRef.state.Cwnd) / eRef.state.Cwnd; rel > 0.02 {
		t.Fatalf("cwnd %.4f vs per-ack %.4f (rel %.4f)", eFF.state.Cwnd, eRef.state.Cwnd, rel)
	}
	if eFF.state.Cwnd <= 10 {
		t.Fatalf("no growth: %.4f", eFF.state.Cwnd)
	}
}

// TestFFAdvanceDCTCPAlphaRelaxation: under a constant mark probability p the
// DCTCP EWMA must relax toward α = p and the window must oscillate around
// the equation (11) equilibrium; the FF trajectory is compared against a
// faithful per-ACK packet-mode emulation with bound sequence counters.
func TestFFAdvanceDCTCPAlphaRelaxation(t *testing.T) {
	const p = 0.10
	rtt := 10 * time.Millisecond

	// FF trajectory.
	ccFF := &DCTCP{}
	eFF := ffTestEndpoint(t, ccFF, ECNScalable)
	ccFF.Init(&eFF.state)
	eFF.state.Cwnd = 20
	eFF.state.Ssthresh = 10
	ccFF.alpha = 0.5

	// Per-ACK reference with real sequence-space windows.
	ccRef := &DCTCP{}
	sRef := State{Cwnd: 20, Ssthresh: 10, MinCwnd: 2}
	ccRef.Init(&sRef)
	ccRef.alpha = 0.5
	var una, nxt int64
	ccRef.bindSeq(&una, &nxt)
	nxt = int64(sRef.Cwnd)

	// Deterministic mark pattern: every 10th segment CE.
	const total = 4000
	markedOf := func(i int) bool { return i%10 == 9 }

	ffMarked, ffAcked := 0, 0
	for i := 0; i < total; i++ {
		if markedOf(i) {
			ffMarked++
		}
		ffAcked++
		// Feed FF one virtual RTT at a time (about one window of ACKs).
		if ffAcked >= int(eFF.state.Cwnd) {
			eFF.FFAdvance(ffAcked, ffMarked, rtt, 0)
			ffAcked, ffMarked = 0, 0
		}
	}
	if ffAcked > 0 {
		eFF.FFAdvance(ffAcked, ffMarked, rtt, 0)
	}

	for i := 0; i < total; i++ {
		una++
		if nxt < una+int64(sRef.Cwnd) {
			nxt = una + int64(sRef.Cwnd)
		}
		ccRef.OnAck(&sRef, 1, markedOf(i), 0)
	}

	if math.Abs(ccFF.alpha-p) > 0.05 {
		t.Fatalf("alpha %.4f did not relax toward %.2f", ccFF.alpha, p)
	}
	if math.Abs(ccRef.alpha-p) > 0.05 {
		t.Fatalf("reference alpha %.4f did not relax toward %.2f", ccRef.alpha, p)
	}
	// Both trajectories must orbit the same equilibrium: compare windows
	// within the oscillation amplitude (~α/2 relative).
	if rel := math.Abs(eFF.state.Cwnd-sRef.Cwnd) / sRef.Cwnd; rel > 0.15 {
		t.Fatalf("cwnd %.4f vs reference %.4f (rel %.4f)", eFF.state.Cwnd, sRef.Cwnd, rel)
	}
}

// TestFFAdvanceScalableExact: equation (22) arithmetic is exact — half a
// segment per mark, unmarked ACKs feed renoIncrease in window chunks.
func TestFFAdvanceScalableExact(t *testing.T) {
	e := ffTestEndpoint(t, Scalable{}, ECNScalable)
	e.state.Cwnd = 10
	e.state.Ssthresh = 5

	ref := State{Cwnd: 10, Ssthresh: 5, MinCwnd: 2}
	ref.Cwnd -= 0.5 * 4
	ref.clampCwnd()
	if ref.Ssthresh > ref.Cwnd {
		ref.Ssthresh = ref.Cwnd
	}
	for rem := 16; rem > 0; {
		chunk := int(ref.Cwnd / 4) // mirror ffChunk's quarter-window step
		if chunk < 1 {
			chunk = 1
		}
		if chunk > rem {
			chunk = rem
		}
		renoIncrease(&ref, chunk)
		rem -= chunk
	}

	e.FFAdvance(20, 4, 10*time.Millisecond, 0)
	if e.state.Cwnd != ref.Cwnd {
		t.Fatalf("cwnd %.6f vs %.6f", e.state.Cwnd, ref.Cwnd)
	}
}

// TestFFAdvancePragueRTTIndependence: a short-RTT Prague flow grows slower
// than an equal DCTCP flow by the (SRTT/25ms)^1.75 damping.
func TestFFAdvancePragueRTTIndependence(t *testing.T) {
	grow := func(cc CongestionControl) float64 {
		e := ffTestEndpoint(t, cc, ECNScalable)
		if in, ok := cc.(interface{ Init(*State) }); ok {
			in.Init(&e.state)
		}
		e.state.Cwnd = 20
		e.state.Ssthresh = 10
		e.state.SRTT = 10 * time.Millisecond
		switch c := cc.(type) {
		case *Prague:
			c.alpha = 0
		case *DCTCP:
			c.alpha = 0
		}
		e.FFAdvance(200, 0, 10*time.Millisecond, 0)
		return e.state.Cwnd - 20
	}
	gPrague := grow(&Prague{})
	gDCTCP := grow(&DCTCP{})
	// Continuous CA with damping f obeys dW/dn = f/W, so after n ACKs
	// W = sqrt(W0² + 2·f·n): the two growth deltas have closed forms.
	f := math.Pow(10.0/25.0, 1.75)
	const w0, n = 20.0, 200.0
	wantPrague := math.Sqrt(w0*w0+2*f*n) - w0
	wantDCTCP := math.Sqrt(w0*w0+2*n) - w0
	if math.Abs(gPrague-wantPrague) > 0.05*wantPrague {
		t.Fatalf("prague growth %.4f, closed form %.4f", gPrague, wantPrague)
	}
	if math.Abs(gDCTCP-wantDCTCP) > 0.05*wantDCTCP {
		t.Fatalf("dctcp growth %.4f, closed form %.4f", gDCTCP, wantDCTCP)
	}
}

// TestFFSignal: one reaction per call, absorbed during (frozen) recovery,
// sequence gate re-armed, CWR pended only for classic ECN.
func TestFFSignal(t *testing.T) {
	e := ffTestEndpoint(t, Reno{}, ECNClassic)
	e.sndUna, e.sndNxt = 100, 110
	e.state.Cwnd = 10

	if !e.FFSignal(0) {
		t.Fatal("signal not applied")
	}
	if e.state.Cwnd != 5 {
		t.Fatalf("cwnd %.1f after halving", e.state.Cwnd)
	}
	if e.cwrEnd != 110 || !e.cwrPend {
		t.Fatalf("gate not re-armed: cwrEnd=%d cwrPend=%v", e.cwrEnd, e.cwrPend)
	}
	if e.CongestionEvents() != 1 {
		t.Fatalf("events = %d", e.CongestionEvents())
	}

	e.state.InRecovery = true
	if e.FFSignal(0) {
		t.Fatal("signal applied during frozen recovery")
	}
	if e.state.Cwnd != 5 || e.CongestionEvents() != 1 {
		t.Fatal("recovery flow mutated")
	}

	drop := ffTestEndpoint(t, Reno{}, ECNOff)
	drop.FFSignal(0)
	if drop.cwrPend {
		t.Fatal("CWR pended on a non-ECN flow")
	}
}

func TestFFEligible(t *testing.T) {
	e := ffTestEndpoint(t, Reno{}, ECNOff)
	if !e.FFEligible() {
		t.Fatal("steady CA bulk flow must be eligible")
	}
	e.state.InRecovery = true
	if !e.FFEligible() {
		t.Fatal("frozen recovery must be tolerated")
	}
	e.state.InRecovery = false

	e.state.Ssthresh = 100 // slow start: stepped by the CC's own OnAck rules
	if !e.FFEligible() {
		t.Fatal("slow start must be tolerated")
	}
	e.state.Ssthresh = 5

	e.oooSorted = append(e.oooSorted, 7) // frozen in-flight loss recovery
	if !e.FFEligible() {
		t.Fatal("receiver holes must be tolerated (frozen recovery)")
	}
	e.oooSorted = nil

	e.cfg.FlowSegs = 100
	if e.FFEligible() {
		t.Fatal("finite flows must be ineligible")
	}
	e.cfg.FlowSegs = 0

	e.stopped = true
	if e.FFEligible() {
		t.Fatal("stopped flows must be ineligible")
	}
}

// TestFFShift: send timestamps and a pending pacing credit translate; the
// flow-duration anchor does not.
func TestFFShift(t *testing.T) {
	s := sim.New(1)
	e := NewWithEnqueuer(s, func(p *packet.Packet) { s.PacketPool().Release(p) }, Config{
		ID: 1, CC: Reno{}, BaseRTT: 10 * time.Millisecond, Pacing: true,
	})
	e.started = true
	e.startedAt = 0
	e.meta[5] = segMeta{sentAt: 3 * time.Millisecond}
	e.meta[6] = segMeta{sentAt: 4 * time.Millisecond, retx: true}
	e.nextSend = 8 * time.Millisecond

	s.RunUntil(5 * time.Millisecond)
	const delta = 2 * time.Second
	s.ShiftPending(delta)
	e.FFShift(delta)

	if got := e.meta[5].sentAt; got != delta+3*time.Millisecond {
		t.Fatalf("sentAt = %v", got)
	}
	if !e.meta[6].retx || e.meta[6].sentAt != delta+4*time.Millisecond {
		t.Fatalf("retx meta mangled: %+v", e.meta[6])
	}
	if e.nextSend != delta+8*time.Millisecond {
		t.Fatalf("nextSend = %v", e.nextSend)
	}
	if e.startedAt != 0 {
		t.Fatalf("startedAt moved: %v", e.startedAt)
	}

	// A pacing credit already in the past must stay in the past.
	e2 := NewWithEnqueuer(s, func(p *packet.Packet) { s.PacketPool().Release(p) }, Config{
		ID: 2, CC: Reno{}, BaseRTT: 10 * time.Millisecond,
	})
	e2.nextSend = time.Millisecond // before the (already shifted) now
	e2.FFShift(delta)
	if e2.nextSend != time.Millisecond {
		t.Fatalf("past pacing credit moved: %v", e2.nextSend)
	}
}

// TestFFApplyStats: goodput bytes, RTT sample count, and the ECN ledgers.
func TestFFApplyStats(t *testing.T) {
	e := ffTestEndpoint(t, Scalable{}, ECNScalable)
	before := e.RTTSamples.N()
	e.FFApplyStats(100, 7, 12*time.Millisecond)
	if got := e.Goodput.Bytes(); got != int64(100*packet.MSS) {
		t.Fatalf("goodput bytes = %d", got)
	}
	if e.RTTSamples.N() != before+100 {
		t.Fatalf("rtt samples = %d", e.RTTSamples.N())
	}
	if e.MarksSeen() != 7 || e.CEAcked() != 7 {
		t.Fatalf("ledgers: seen=%d acked=%d", e.MarksSeen(), e.CEAcked())
	}

	classic := ffTestEndpoint(t, Reno{}, ECNClassic)
	classic.FFApplyStats(50, 3, 12*time.Millisecond)
	if classic.MarksSeen() != 3 || classic.CEAcked() != 0 {
		t.Fatalf("classic ledgers: seen=%d acked=%d", classic.MarksSeen(), classic.CEAcked())
	}
}
