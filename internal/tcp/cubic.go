package tcp

import (
	"math"
	"time"
)

// Cubic implements TCP Cubic per RFC 8312, including fast convergence and
// the TCP-friendly (Reno-equivalent) region. In the friendly region the
// effective multiplicative decrease factor is β=0.7, which is the paper's
// "CReno" mode with W ≈ 1.68/√p (equation (7)); in the pure cubic region
// B = 3/4 (equation (6)).
type Cubic struct {
	// C is the cubic scaling constant (0.4 by default).
	C float64
	// Beta is the multiplicative decrease factor (0.7 by default).
	Beta float64
	// DisableFriendly turns off the TCP-friendly region, forcing pure
	// cubic growth (for the Appendix A switch-over tests).
	DisableFriendly bool
	// DisableHyStart turns off the HyStart delay-increase heuristic.
	// Linux Cubic ships with HyStart on: slow start ends as soon as the
	// RTT rises measurably above the path minimum, avoiding the massive
	// overshoot of classical slow start into a deep buffer.
	DisableHyStart bool

	wMax       float64       // window before the last reduction
	wLastMax   float64       // for fast convergence
	k          float64       // time to regrow to wMax, seconds
	epochStart time.Duration // start of the current growth epoch
	ackCount   float64       // ACKs accumulated for the friendly estimate
	wEst       float64       // Reno-friendly window estimate
	hasEpoch   bool
}

// Name implements CongestionControl.
func (c *Cubic) Name() string { return "cubic" }

// UseHyStart reports whether the endpoint should apply the HyStart
// slow-start exit (see Endpoint.sampleRTT).
func (c *Cubic) UseHyStart() bool { return !c.DisableHyStart }

// Init implements CongestionControl.
func (c *Cubic) Init(s *State) {
	if c.C == 0 {
		c.C = 0.4
	}
	if c.Beta == 0 {
		c.Beta = 0.7
	}
	c.hasEpoch = false
	c.wMax = 0
	c.wLastMax = 0
}

// OnAck implements CongestionControl.
func (c *Cubic) OnAck(s *State, acked int, _ bool, now time.Duration) {
	if float64(acked) > s.Cwnd {
		acked = int(s.Cwnd) // see renoIncrease: cap spurious mega-ACKs
	}
	if s.InSlowStart() {
		inc := float64(acked)
		if inc > s.Cwnd {
			inc = s.Cwnd // at most doubling per RTT, like renoIncrease
		}
		s.Cwnd += inc
		return
	}
	if !c.hasEpoch {
		c.beginEpoch(s, now)
	}
	rtt := s.SRTT
	if rtt <= 0 {
		rtt = 100 * time.Millisecond
	}
	t := (now - c.epochStart).Seconds()
	for i := 0; i < acked; i++ {
		// Cubic growth toward (and past) wMax.
		target := c.wMax + c.C*math.Pow(t+rtt.Seconds()-c.k, 3)
		// Reno-friendly estimate (RFC 8312 §4.2).
		c.ackCount++
		c.wEst += 3 * (1 - c.Beta) / (1 + c.Beta) / s.Cwnd
		w := target
		if !c.DisableFriendly && c.wEst > w {
			w = c.wEst // CReno region
		}
		if w > s.Cwnd {
			s.Cwnd += (w - s.Cwnd) / s.Cwnd
		} else {
			s.Cwnd += 0.01 / s.Cwnd // minimal growth, per RFC 8312 §4.3
		}
	}
}

func (c *Cubic) beginEpoch(s *State, now time.Duration) {
	c.epochStart = now
	c.hasEpoch = true
	if c.wMax < s.Cwnd {
		c.wMax = s.Cwnd
	}
	c.k = math.Cbrt((c.wMax - s.Cwnd) / c.C)
	c.wEst = s.Cwnd
	c.ackCount = 0
}

// OnCongestionEvent implements CongestionControl.
func (c *Cubic) OnCongestionEvent(s *State, now time.Duration) {
	// Fast convergence: release bandwidth faster when the window is
	// still below the previous maximum.
	if s.Cwnd < c.wLastMax {
		c.wLastMax = s.Cwnd
		c.wMax = s.Cwnd * (1 + c.Beta) / 2
	} else {
		c.wLastMax = s.Cwnd
		c.wMax = s.Cwnd
	}
	s.Cwnd *= c.Beta
	s.clampCwnd()
	s.Ssthresh = s.Cwnd
	c.hasEpoch = false
	c.beginEpoch(s, now)
}

// OnRTO implements CongestionControl.
func (c *Cubic) OnRTO(s *State, now time.Duration) {
	c.wLastMax = s.Cwnd
	c.wMax = s.Cwnd
	s.Ssthresh = s.Cwnd * c.Beta
	if s.Ssthresh < s.MinCwnd {
		s.Ssthresh = s.MinCwnd
	}
	s.Cwnd = 1
	c.hasEpoch = false
}
