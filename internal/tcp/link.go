package tcp

import (
	"pi2/internal/link"
	"pi2/internal/sim"
)

// New creates an endpoint transmitting through a standard bottleneck link.
// It is the common constructor; NewWithEnqueuer generalizes it for other
// bottlenecks (e.g. the DualPI2 dual queue).
func New(s *sim.Simulator, l *link.Link, cfg Config) *Endpoint {
	return NewWithEnqueuer(s, l.Enqueue, cfg)
}
