package fluid

import (
	"math"
	"math/cmplx"
	"testing"
	"time"
)

var std = LoopParams{AlphaHz: 0.3125, BetaHz: 3.125, T: 32 * time.Millisecond, R0: 100 * time.Millisecond}

func TestAQMFactorValues(t *testing.T) {
	kA, zA, sA := std.aqmFactor()
	// κA = α·R0/T = 0.3125·0.1/0.032.
	if want := 0.3125 * 0.1 / 0.032; math.Abs(kA-want) > 1e-12 {
		t.Errorf("kA = %v, want %v", kA, want)
	}
	// zA = α/(T(β+α/2)).
	if want := 0.3125 / (0.032 * (3.125 + 0.15625)); math.Abs(zA-want) > 1e-12 {
		t.Errorf("zA = %v, want %v", zA, want)
	}
	if want := 10.0; math.Abs(sA-want) > 1e-12 {
		t.Errorf("sA = %v, want %v", sA, want)
	}
}

func TestLoopMagnitudeDecreasesFromDC(t *testing.T) {
	// All three loops contain 1/s: |L| must be huge at low ω and tiny at
	// high ω.
	for name, l := range map[string]Loop{
		"renopie": RenoPIE(std, 0.01),
		"renopi2": RenoPI2(std, 0.1),
		"scalpi":  ScalPI(std, 0.1),
	} {
		lo := cmplx.Abs(l(1e-4))
		hi := cmplx.Abs(l(1e4))
		if lo < 100 || hi > 0.01 {
			t.Errorf("%s: |L(1e-4)|=%g |L(1e4)|=%g, want integrator rolloff", name, lo, hi)
		}
	}
}

func TestMarginsFoundForTypicalPoints(t *testing.T) {
	m := ComputeMargins(RenoPI2(std, 0.1))
	if m.Omega180 == 0 || m.OmegaC == 0 {
		t.Fatalf("crossovers not found: %+v", m)
	}
	if m.OmegaC >= m.Omega180 {
		t.Errorf("gain crossover %.3g above phase crossover %.3g for a stable loop", m.OmegaC, m.Omega180)
	}
	if !m.Stable() {
		t.Errorf("reno pi2 at p'=0.1 should be stable: %+v", m)
	}
}

// TestPI2GainMarginFlat reproduces the paper's central analytic claim
// (Section 4, Figure 7): with fixed gains 2.5× PIE's, the PI2 loop's gain
// margin stays positive and roughly flat over the whole load range, only
// exceeding ~10 dB at very high p′.
func TestPI2GainMarginFlat(t *testing.T) {
	var margins []float64
	for _, pp := range []float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 0.6} {
		m := ComputeMargins(RenoPI2(std, pp))
		if m.GainMarginDB <= 0 {
			t.Errorf("p'=%v: gain margin %.2f dB <= 0 (unstable)", pp, m.GainMarginDB)
		}
		margins = append(margins, m.GainMarginDB)
	}
	// Flatness: min and max across the sweep within ~12 dB of each other
	// (the PIE fixed-gain loop spans > 40 dB over the same range).
	lo, hi := margins[0], margins[0]
	for _, g := range margins {
		lo = math.Min(lo, g)
		hi = math.Max(hi, g)
	}
	if hi-lo > 12 {
		t.Errorf("gain margin spread %.1f dB, want flat (< 12 dB)", hi-lo)
	}
	// Only at p' >= 0.6 slightly above 10 dB (the paper's observation).
	m06 := ComputeMargins(RenoPI2(std, 0.6))
	if m06.GainMarginDB < 8 || m06.GainMarginDB > 14 {
		t.Errorf("gain margin at p'=0.6 = %.1f dB, paper says slightly above 10", m06.GainMarginDB)
	}
}

// TestFixedGainPIDivergesAtLowP reproduces Figure 4's diagonal: the plain
// PI loop on p with tune=1 gains is unstable (negative gain margin) at low
// drop probabilities — the very problem PIE's scaling table and PI2's
// squaring both solve.
func TestFixedGainPIDivergesAtLowP(t *testing.T) {
	pie := LoopParams{AlphaHz: 0.125, BetaHz: 1.25, T: 32 * time.Millisecond, R0: 100 * time.Millisecond}
	low := ComputeMargins(RenoPIE(pie, 1e-5))
	if low.GainMarginDB >= 0 {
		t.Errorf("tune=1 at p=1e-5: gain margin %.1f dB, want negative (unstable)", low.GainMarginDB)
	}
	high := ComputeMargins(RenoPIE(pie, 0.05))
	if high.GainMarginDB <= 0 {
		t.Errorf("tune=1 at p=0.05: gain margin %.1f dB, want stable", high.GainMarginDB)
	}
}

// TestAutoTuneStabilizesLowP: with the lookup-table scaling, the PIE loop
// is stable at the same low p where fixed gains were not.
func TestAutoTuneStabilizesLowP(t *testing.T) {
	for _, p := range []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1} {
		mp := Figure4(1) // unused; direct computation below
		_ = mp
		tune := tuneAt(p)
		lp := LoopParams{AlphaHz: 0.125 * tune, BetaHz: 1.25 * tune,
			T: 32 * time.Millisecond, R0: 100 * time.Millisecond}
		m := ComputeMargins(RenoPIE(lp, p))
		if m.GainMarginDB <= 0 {
			t.Errorf("auto-tuned PIE unstable at p=%v: GM %.1f dB", p, m.GainMarginDB)
		}
	}
}

// tuneAt mirrors the production lookup (kept local so this test fails if
// the two tables ever drift apart via Figure5).
func tuneAt(p float64) float64 {
	for _, tp := range Figure5(200) {
		if tp.P >= p {
			return tp.Tune
		}
	}
	return 1
}

// TestScalPIStable: the Scalable-under-PI loop (37) with doubled gains is
// stable across the load range (Figure 7 'scal pi').
func TestScalPIStable(t *testing.T) {
	lp := LoopParams{AlphaHz: 0.625, BetaHz: 6.25, T: 32 * time.Millisecond, R0: 100 * time.Millisecond}
	for _, pp := range []float64{0.001, 0.01, 0.1, 0.5, 1} {
		m := ComputeMargins(ScalPI(lp, pp))
		if m.GainMarginDB <= 0 || m.PhaseMarginDeg <= 0 {
			t.Errorf("scal pi unstable at p'=%v: %+v", pp, m)
		}
	}
}

func TestFigure5TracksSqrtLaw(t *testing.T) {
	for _, tp := range Figure5(60) {
		if tp.P < 1e-6 || tp.P > 0.25 {
			continue // outside the table's designed range
		}
		ratio := tp.Tune / tp.SqrtTwoP
		if ratio < 0.2 || ratio > 5 {
			t.Errorf("p=%.3g: tune %.4g vs sqrt(2p) %.4g (ratio %.2f)", tp.P, tp.Tune, tp.SqrtTwoP, ratio)
		}
	}
}

func TestFigure4Lines(t *testing.T) {
	pts := Figure4(5)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, mp := range pts {
		for _, line := range []string{"tune=auto", "tune=1", "tune=1/2", "tune=1/8"} {
			if _, ok := mp.ByLine[line]; !ok {
				t.Fatalf("missing line %q", line)
			}
		}
	}
}

func TestFigure7Lines(t *testing.T) {
	pts := Figure7(4)
	for _, mp := range pts {
		for _, line := range []string{"reno pie", "reno pi2", "scal pi"} {
			if _, ok := mp.ByLine[line]; !ok {
				t.Fatalf("missing line %q", line)
			}
		}
		if mp.P < 1e-3-1e-12 || mp.P > 1+1e-12 {
			t.Errorf("p' out of range: %v", mp.P)
		}
	}
}

// TestGainRatioPI2vsPIE verifies the "3.5 times greater gain" arithmetic of
// Section 4: K_PI2/K_PIE = 2.5·√2 ≈ 3.5.
func TestGainRatioPI2vsPIE(t *testing.T) {
	if got := 2.5 * math.Sqrt2; math.Abs(got-3.5355) > 0.001 {
		t.Errorf("2.5*sqrt(2) = %v", got)
	}
	// And the configured gains embody the 2.5× factor exactly.
	if 0.3125/0.125 != 2.5 || 3.125/1.25 != 2.5 {
		t.Error("configured PI2 gains are not 2.5x the PIE base gains")
	}
}

func TestLogspace(t *testing.T) {
	xs := logspace(1e-3, 1, 4)
	if len(xs) != 4 {
		t.Fatal("len")
	}
	if math.Abs(xs[0]-1e-3) > 1e-15 || math.Abs(xs[3]-1) > 1e-12 {
		t.Errorf("endpoints: %v", xs)
	}
	if math.Abs(xs[1]-1e-2) > 1e-12 || math.Abs(xs[2]-1e-1) > 1e-12 {
		t.Errorf("log spacing: %v", xs)
	}
	if got := logspace(5, 10, 1); len(got) != 1 || got[0] != 5 {
		t.Errorf("degenerate logspace: %v", got)
	}
}

func TestBisect(t *testing.T) {
	root := bisect(0, 4, func(x float64) float64 { return x*x - 2 })
	if math.Abs(root-math.Sqrt2) > 1e-9 {
		t.Errorf("bisect sqrt(2) = %v", root)
	}
}

func TestUnwrap(t *testing.T) {
	if got := unwrap(170, -170); got != -190 {
		t.Errorf("unwrap(170, -170) = %v, want -190", got)
	}
	if got := unwrap(-170, 170); got != 190 {
		t.Errorf("unwrap(-170, 170) = %v, want 190", got)
	}
	if got := unwrap(10, 20); got != 10 {
		t.Errorf("unwrap(10, 20) = %v, want 10", got)
	}
}

// TestMaxStableGainScale quantifies the ×2.5 headroom claim: starting from
// the PIE base gains (0.125, 1.25), the squared-output loop must tolerate
// at least a 2.5× scale across the load range, and the direct-p loop must
// not (its diagonal margin kills low-p stability well below that).
func TestMaxStableGainScale(t *testing.T) {
	base := LoopParams{AlphaHz: 0.125, BetaHz: 1.25, T: 32 * time.Millisecond, R0: 100 * time.Millisecond}
	ps := []float64{0.001, 0.01, 0.1, 0.5, 1}
	mPI2 := MaxStableGainScale(base, RenoPI2, ps, 0.5, 32)
	if mPI2 < 2.5 {
		t.Errorf("PI2 max stable gain scale = %.2f, paper claims >= 2.5", mPI2)
	}
	// The same sweep through the direct-p loop (note ps here are p, so
	// the low end reaches the unstable diagonal region).
	pDirect := []float64{1e-5, 1e-4, 1e-3, 0.01, 0.1}
	mPIE := MaxStableGainScale(base, RenoPIE, pDirect, 0.01, 32)
	if mPIE >= 1 {
		t.Errorf("fixed-gain PI on p stable at scale %.2f over the full range; Figure 4 says it must not be", mPIE)
	}
	t.Logf("max stable gain scale: pi2=%.2f direct-p=%.2f", mPI2, mPIE)
}
