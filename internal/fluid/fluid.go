// Package fluid implements the Appendix B fluid-model stability analysis:
// the Laplace-domain loop transfer functions (35), (36) and (37) for
// TCP Reno under PIE, Reno under PI2, and a Scalable control under plain PI,
// and numeric Bode gain/phase-margin extraction. It regenerates Figures 4,
// 5 and 7 (the paper produced them with Octave scripts).
package fluid

import (
	"math"
	"math/cmplx"
	"time"
)

// LoopParams are the AQM-side parameters common to all three loops.
type LoopParams struct {
	// AlphaHz, BetaHz are the PI gains in Hz (already including any
	// tune scaling for the PIE case).
	AlphaHz, BetaHz float64
	// T is the control update interval.
	T time.Duration
	// R0 is the (maximum) round-trip time being designed for.
	R0 time.Duration
}

// aqmFactor returns κA, zA, sA of equation (31):
// κA = α·R0/T, zA = α/(T·(β+α/2)), sA = 1/R0.
func (lp LoopParams) aqmFactor() (kA, zA, sA float64) {
	t := lp.T.Seconds()
	r0 := lp.R0.Seconds()
	kA = lp.AlphaHz * r0 / t
	zA = lp.AlphaHz / (t * (lp.BetaHz + lp.AlphaHz/2))
	sA = 1 / r0
	return
}

// Loop is a loop transfer function evaluated on the imaginary axis.
type Loop func(omega float64) complex128

// common assembles κX·κA·(s/zA+1)·e^(−sR0) / (D(s)·(s/sA+1)·s) where D is
// the TCP-side denominator.
func (lp LoopParams) common(kX float64, denom func(s complex128) complex128) Loop {
	kA, zA, sA := lp.aqmFactor()
	r0 := lp.R0.Seconds()
	return func(omega float64) complex128 {
		s := complex(0, omega)
		num := complex(kX*kA, 0) * (s/complex(zA, 0) + 1) * cmplx.Exp(-s*complex(r0, 0))
		den := denom(s) * (s/complex(sA, 0) + 1) * s
		return num / den
	}
}

// RenoPIE returns L_renop (35): TCP Reno controlled by a PI law acting
// directly on the drop probability p, at operating point p0.
// κR = 1/(2·p0), s_R = √(2·p0)/R0, D(s) = s/s_R + (1+e^(−sR0))/2.
func RenoPIE(lp LoopParams, p0 float64) Loop {
	r0 := lp.R0.Seconds()
	kR := 1 / (2 * p0)
	sR := math.Sqrt(2*p0) / r0
	return lp.common(kR, func(s complex128) complex128 {
		return s/complex(sR, 0) + (1+cmplx.Exp(-s*complex(r0, 0)))/2
	})
}

// RenoPI2 returns L_renop′² (36): TCP Reno controlled through the squared
// output p = (p′)², at operating point p′0.
// κS = 1/p′0, s_R = √2·p′0/R0 (same denominator shape as (35)).
func RenoPI2(lp LoopParams, pPrime0 float64) Loop {
	r0 := lp.R0.Seconds()
	kS := 1 / pPrime0
	sR := math.Sqrt2 * pPrime0 / r0
	return lp.common(kS, func(s complex128) complex128 {
		return s/complex(sR, 0) + (1+cmplx.Exp(-s*complex(r0, 0)))/2
	})
}

// ScalPI returns L_scalp′ (37): a Scalable control (−½ packet per mark)
// under plain PI marking, at operating point p′0.
// κS = 1/p′0, s_S = p′0/(2·R0), D(s) = s/s_S + e^(−sR0).
func ScalPI(lp LoopParams, pPrime0 float64) Loop {
	r0 := lp.R0.Seconds()
	kS := 1 / pPrime0
	sS := pPrime0 / (2 * r0)
	return lp.common(kS, func(s complex128) complex128 {
		return s/complex(sS, 0) + cmplx.Exp(-s*complex(r0, 0))
	})
}

// Margins holds the Bode stability margins of a loop.
type Margins struct {
	// GainMarginDB is −20·log10|L(jω180)| at the phase-crossover
	// frequency ω180 (first ω where the unwrapped phase reaches −180°).
	GainMarginDB float64
	// PhaseMarginDeg is 180° + ∠L(jωc) at the gain-crossover frequency
	// ωc (first ω where |L| falls through 1).
	PhaseMarginDeg float64
	// Omega180 and OmegaC are the crossover frequencies in rad/s
	// (0 when not found in the search range).
	Omega180, OmegaC float64
}

// Stable reports whether both margins are positive.
func (m Margins) Stable() bool { return m.GainMarginDB > 0 && m.PhaseMarginDeg > 0 }

// ComputeMargins extracts Bode margins by sweeping ω logarithmically over
// [1e-4, 1e5] rad/s with phase unwrapping, then bisecting each crossing.
func ComputeMargins(l Loop) Margins {
	const (
		wMin   = 1e-4
		wMax   = 1e5
		points = 4000
	)
	var m Margins

	// Sweep with unwrapped phase.
	logMin, logMax := math.Log10(wMin), math.Log10(wMax)
	prevW := wMin
	prevVal := l(wMin)
	prevPhase := phaseDeg(prevVal)
	// The loops behave like 1/s² at low frequency: phase starts near
	// −180° from below? No: two integrator-like poles give −180°, but the
	// zero and κ structure keep it above −180° at wMin for stable
	// configurations. Unwrap relative to the first sample.
	foundGM := false
	foundPM := false
	prevMag := cmplx.Abs(prevVal)
	for i := 1; i <= points; i++ {
		w := math.Pow(10, logMin+(logMax-logMin)*float64(i)/points)
		v := l(w)
		ph := unwrap(phaseDeg(v), prevPhase)
		mag := cmplx.Abs(v)

		if !foundPM && prevMag >= 1 && mag < 1 {
			wc := bisect(prevW, w, func(x float64) float64 { return cmplx.Abs(l(x)) - 1 })
			m.OmegaC = wc
			m.PhaseMarginDeg = 180 + unwrappedPhaseAt(l, wMin, wc)
			foundPM = true
		}
		if !foundGM && prevPhase > -180 && ph <= -180 {
			w180 := bisect(prevW, w, func(x float64) float64 {
				return unwrappedPhaseAt(l, wMin, x) + 180
			})
			m.Omega180 = w180
			m.GainMarginDB = -20 * math.Log10(cmplx.Abs(l(w180)))
			foundGM = true
		}
		if foundGM && foundPM {
			break
		}
		prevW, prevPhase, prevMag = w, ph, mag
	}
	return m
}

// phaseDeg returns the principal phase in degrees.
func phaseDeg(v complex128) float64 { return cmplx.Phase(v) * 180 / math.Pi }

// unwrap shifts ph by multiples of 360° to be continuous with prev.
func unwrap(ph, prev float64) float64 {
	for ph-prev > 180 {
		ph -= 360
	}
	for ph-prev < -180 {
		ph += 360
	}
	return ph
}

// unwrappedPhaseAt walks from wStart to w accumulating continuous phase.
func unwrappedPhaseAt(l Loop, wStart, w float64) float64 {
	const steps = 400
	prev := phaseDeg(l(wStart))
	logA, logB := math.Log10(wStart), math.Log10(w)
	for i := 1; i <= steps; i++ {
		x := math.Pow(10, logA+(logB-logA)*float64(i)/steps)
		prev = unwrap(phaseDeg(l(x)), prev)
	}
	return prev
}

// bisect finds a zero of f in [a, b] (f must change sign there).
func bisect(a, b float64, f func(float64) float64) float64 {
	fa := f(a)
	for i := 0; i < 80; i++ {
		mid := (a + b) / 2
		fm := f(mid)
		if fm == 0 {
			return mid
		}
		if (fa < 0) == (fm < 0) {
			a, fa = mid, fm
		} else {
			b = mid
		}
	}
	return (a + b) / 2
}

// MaxStableGainScale finds the largest multiplier m (within [lo, hi]) such
// that scaling both PI gains by m keeps the Bode gain and phase margins of
// the given loop family positive at every operating point in ps. It
// quantifies the paper's Section 4 claim that PI2's flat gain margin
// leaves room to raise the gains ×2.5 over PIE's base without instability.
func MaxStableGainScale(base LoopParams, mk func(LoopParams, float64) Loop, ps []float64, lo, hi float64) float64 {
	stable := func(m float64) bool {
		lp := base
		lp.AlphaHz *= m
		lp.BetaHz *= m
		for _, p := range ps {
			if !ComputeMargins(mk(lp, p)).Stable() {
				return false
			}
		}
		return true
	}
	if !stable(lo) {
		return 0
	}
	for i := 0; i < 30; i++ {
		mid := (lo + hi) / 2
		if stable(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
