package fluid

import (
	"math"
	"time"

	"pi2/internal/aqm"
)

// MarginPoint is one x-position of a Bode-margin figure.
type MarginPoint struct {
	// P is the operating-point probability on the x axis (the Classic
	// drop probability p for Figure 4; the pseudo-probability p′ for
	// Figure 7).
	P float64
	// ByLine maps each figure line label to its margins at P.
	ByLine map[string]Margins
}

// Figure4 computes the Bode gain and phase margins of TCP Reno under a PI
// law on p, for PIE's auto-tuned gains and three fixed tune factors —
// reproducing Figure 4 (R0 = 100 ms, α = 0.125·tune, β = 1.25·tune,
// T = 32 ms, p swept over [1e-6, 1]).
func Figure4(points int) []MarginPoint {
	lines := map[string]func(p float64) float64{
		"tune=auto": aqm.AutoTuneFactor,
		"tune=1":    func(float64) float64 { return 1 },
		"tune=1/2":  func(float64) float64 { return 0.5 },
		"tune=1/8":  func(float64) float64 { return 0.125 },
	}
	out := make([]MarginPoint, 0, points)
	for _, p := range logspace(1e-6, 1, points) {
		mp := MarginPoint{P: p, ByLine: make(map[string]Margins)}
		for name, tune := range lines {
			lp := LoopParams{
				AlphaHz: 0.125 * tune(p),
				BetaHz:  1.25 * tune(p),
				T:       32 * time.Millisecond,
				R0:      100 * time.Millisecond,
			}
			mp.ByLine[name] = ComputeMargins(RenoPIE(lp, p))
		}
		out = append(out, mp)
	}
	return out
}

// TunePoint is one x-position of Figure 5.
type TunePoint struct {
	// P is the drop probability.
	P float64
	// Tune is PIE's stepped scaling factor at P.
	Tune float64
	// SqrtTwoP is √(2·P), the law the steps track.
	SqrtTwoP float64
}

// Figure5 tabulates PIE's stepped 'tune' factor against √(2p), reproducing
// Figure 5 (both on log scales in the paper).
func Figure5(points int) []TunePoint {
	out := make([]TunePoint, 0, points)
	for _, p := range logspace(1e-7, 1, points) {
		out = append(out, TunePoint{
			P:        p,
			Tune:     aqm.AutoTuneFactor(p),
			SqrtTwoP: math.Sqrt(2 * p),
		})
	}
	return out
}

// Figure7 computes the margins of the three loops the paper compares:
// 'reno pie' (auto-tuned PIE on p = p′²), 'reno pi2' (Reno through the
// squared output, α = 0.3125, β = 3.125) and 'scal pi' (Scalable under
// plain PI, α = 0.625, β = 6.25), over p′ in [1e-3, 1] at R0 = 100 ms,
// T = 32 ms.
func Figure7(points int) []MarginPoint {
	const (
		t  = 32 * time.Millisecond
		r0 = 100 * time.Millisecond
	)
	out := make([]MarginPoint, 0, points)
	for _, pp := range logspace(1e-3, 1, points) {
		p := pp * pp // Classic probability at this operating point
		mp := MarginPoint{P: pp, ByLine: make(map[string]Margins)}

		tune := aqm.AutoTuneFactor(p)
		mp.ByLine["reno pie"] = ComputeMargins(RenoPIE(LoopParams{
			AlphaHz: 0.125 * tune, BetaHz: 1.25 * tune, T: t, R0: r0,
		}, p))
		mp.ByLine["reno pi2"] = ComputeMargins(RenoPI2(LoopParams{
			AlphaHz: 0.3125, BetaHz: 3.125, T: t, R0: r0,
		}, pp))
		mp.ByLine["scal pi"] = ComputeMargins(ScalPI(LoopParams{
			AlphaHz: 0.625, BetaHz: 6.25, T: t, R0: r0,
		}, pp))
		out = append(out, mp)
	}
	return out
}

// logspace returns n log-spaced values over [lo, hi] inclusive.
func logspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	la, lb := math.Log10(lo), math.Log10(hi)
	for i := range out {
		out[i] = math.Pow(10, la+(lb-la)*float64(i)/float64(n-1))
	}
	return out
}
