// Package ff implements the hybrid fluid/packet fast-forward engine: when
// every bulk flow sits in congestion avoidance and the bottleneck queue is
// parked near the AQM's operating point, the packet world is frozen and the
// simulation advances analytically from one AQM update to the next —
// per-flow windows stepped in closed form by the congestion controls' own
// rules, the backlog evolved as a fluid (aggregate arrival minus drain), and
// mark/drop decisions drawn one virtual packet at a time from the very same
// RNG stream packet mode would use (aqm.FastForwarder delegates the real
// Enqueue/Update paths). When the epoch ends, pending events and
// timestamped state are translated by the skipped interval, so packet mode
// resumes from a consistent instant.
//
// The engine never rolls back: each AQM update period commits as it is
// simulated, and the epoch simply ends when the stay band breaks. Entry and
// exit predicates, the RNG discipline, and the deliberate modeling
// deviations are documented in DESIGN.md ("Hybrid fluid/packet
// architecture").
package ff

import (
	"time"

	"pi2/internal/aqm"
	"pi2/internal/link"
	"pi2/internal/packet"
	"pi2/internal/tcp"
)

// Clock is the simulation-clock surface the engine drives: reading the
// current virtual time and translating every pending event past a committed
// epoch. Both *sim.Simulator and *sim.Coordinator satisfy it, so the engine
// composes with -shards unchanged (it runs on the coordinator thread between
// barrier windows, when every domain is parked).
type Clock interface {
	Now() time.Duration
	ShiftPending(delta time.Duration)
}

// Engine fast-forwards one bottleneck scenario: a link with a FastForwarder
// AQM and a fixed population of bulk TCP flows.
type Engine struct {
	clock   Clock
	link    *link.Link
	fwd     aqm.FastForwarder
	flows   []*tcp.Endpoint
	tupdate time.Duration
	target  time.Duration

	// credit accumulates each flow's fractional virtual packets
	// (cwnd·dt/rtt per period); the integer part is sent. Deterministic —
	// no rounding RNG — and it carries across epochs so long-run rates are
	// exact.
	credit []float64
	// nextReact gates each classic flow's congestion reaction to once per
	// RTT in virtual time, mirroring packet mode's sequence-space (cwrEnd)
	// gate.
	nextReact []time.Duration
	// recoverExit schedules the virtual full-ACK recovery exit for flows
	// frozen in fast recovery: packet-mode recovery lasts one retransmission
	// round trip, so a flow seen in recovery leaves it one virtual RTT later
	// (zero = not scheduled).
	recoverExit []time.Duration

	// ForceZero is a test hook: epochs are detected (and counted in
	// ZeroEpochs) but commit zero periods, mutating nothing — the
	// zero-length-epoch byte-identity property test drives this.
	ForceZero bool

	// Telemetry: committed epochs, detected-but-empty epochs, virtual
	// packets decided, and total virtual time skipped.
	Epochs, ZeroEpochs int
	VirtualPkts        uint64
	FFTime             time.Duration
}

// New builds an engine over the scenario's bottleneck and bulk flows. It
// reports false when the link's AQM does not support fast-forward stepping
// (no FastForwarder interface, or no periodic update law to step).
func New(clock Clock, l *link.Link, flows []*tcp.Endpoint) (*Engine, bool) {
	fwd, ok := l.FFAQM()
	if !ok || len(flows) == 0 {
		return nil, false
	}
	tup := l.AQM().UpdateInterval()
	if tup <= 0 {
		return nil, false
	}
	return &Engine{
		clock:       clock,
		link:        l,
		fwd:         fwd,
		flows:       flows,
		tupdate:     tup,
		target:      fwd.FFTarget(),
		credit:      make([]float64, len(flows)),
		nextReact:   make([]time.Duration, len(flows)),
		recoverExit: make([]time.Duration, len(flows)),
	}, true
}

// Tupdate returns the AQM control interval the engine steps by.
func (e *Engine) Tupdate() time.Duration { return e.tupdate }

// Quiescent reports whether the system is in a fast-forwardable state right
// now: every flow analytically advanceable (congestion avoidance, no
// out-of-order or SACK state) and the queue parked inside the entry band
// around the AQM operating point — close enough to target that the
// linearized fluid picture holds, and busy, so the epoch's time counts as
// utilized capacity.
func (e *Engine) Quiescent() bool {
	qd := e.link.QueueDelayNow()
	if qd < e.target/2 || qd > 2*e.target || !e.link.Busy() {
		return false
	}
	for _, f := range e.flows {
		if !f.FFEligible() {
			return false
		}
	}
	return true
}

// TryAdvance attempts one fast-forward epoch from the current instant,
// never crossing barrier (the next scheduled discontinuity: warm-up reset
// or end of run). It returns the committed virtual time (0 when the system
// is not quiescent or the barrier is too close). Each AQM update period is
// simulated and committed in sequence; the epoch ends at the barrier or
// when the fluid queue leaves the stay band (0, 4·target).
func (e *Engine) TryAdvance(barrier time.Duration) time.Duration {
	now := e.clock.Now()
	if barrier-now < e.tupdate || !e.Quiescent() {
		return 0
	}
	if e.ForceZero {
		e.ZeroEpochs++
		return 0
	}
	maxPeriods := int((barrier - now) / e.tupdate)
	rate := e.link.RateBps()
	bufBytes := float64(e.link.BufferPackets() * packet.FullLen)
	q := float64(e.link.BacklogBytes())
	dt := e.tupdate.Seconds()
	drain := rate * dt / 8
	vnow := now
	periods := 0
	for j := 0; j < maxPeriods; j++ {
		qdNow := byteDelay(q, rate)
		var accAll, markAll, dropAll int
		var inBytes float64
		for i, f := range e.flows {
			rtt := f.BaseRTT() + qdNow
			// A flow frozen in fast recovery exits it one virtual RTT after
			// first seen — the retransmission's flight time — so it does not
			// stay deaf to congestion signals for the whole epoch.
			if f.FFInRecovery() {
				switch {
				case e.recoverExit[i] == 0:
					e.recoverExit[i] = vnow + rtt
				case vnow >= e.recoverExit[i]:
					f.FFExitRecovery()
					e.recoverExit[i] = 0
				}
			} else if e.recoverExit[i] != 0 {
				e.recoverExit[i] = 0
			}
			e.credit[i] += f.FFCwnd() * dt / rtt.Seconds()
			n := int(e.credit[i])
			if n <= 0 {
				continue
			}
			e.credit[i] -= float64(n)
			ecn := f.DataECN()
			scalable := ecn == packet.ECT1
			acc, mk, dr := 0, 0, 0
			signal := false
			// Flow-major, packet-minor decision order: one RNG draw
			// sequence, fixed by construction order, identical for any
			// -shards value.
			for p := 0; p < n; p++ {
				switch e.fwd.FFDecide(ecn, packet.FullLen, int(q)) {
				case aqm.Accept:
					acc++
				case aqm.Mark:
					acc++
					mk++
					// CE on a classic (ECT0) flow is an ECE-path signal;
					// on a scalable flow it feeds the alpha cadence below.
					if !scalable {
						signal = true
					}
				default: // aqm.Drop
					dr++
					signal = true
				}
			}
			if signal && vnow >= e.nextReact[i] {
				f.FFSignal(vnow)
				e.nextReact[i] = vnow + rtt
			}
			ccMarks := 0
			if scalable {
				ccMarks = mk
			}
			f.FFAdvance(acc, ccMarks, rtt, vnow)
			f.FFApplyStats(acc, mk, rtt)
			accAll += acc
			markAll += mk
			dropAll += dr
			inBytes += float64(acc * packet.FullLen)
		}
		// Fluid backlog step: accepted arrivals minus one period of drain.
		// Dropped packets never occupy the queue; the stay band keeps the
		// link busy so the drain term is exact.
		q += inBytes - drain
		if q < 0 {
			q = 0
		}
		if q > bufBytes {
			q = bufBytes
		}
		qdEnd := byteDelay(q, rate)
		e.link.FFApply(accAll, markAll, dropAll, qdNow)
		e.fwd.FFUpdate(qdEnd)
		e.VirtualPkts += uint64(accAll + dropAll)
		vnow += e.tupdate
		periods = j + 1
		if q <= 0 || qdEnd >= 4*e.target {
			break
		}
	}
	delta := time.Duration(periods) * e.tupdate
	// Commit: translate the frozen packet world past the epoch. The clock
	// shifts first — endpoint shifts read the post-jump Now to classify
	// past-vs-future pacing credits.
	e.clock.ShiftPending(delta)
	e.link.FFShift(delta)
	for _, f := range e.flows {
		f.FFShift(delta)
	}
	e.Epochs++
	e.FFTime += delta
	return delta
}

// byteDelay converts a backlog in bytes to queuing delay at rate bits/s.
func byteDelay(bytes, rate float64) time.Duration {
	return time.Duration(bytes * 8 / rate * float64(time.Second))
}
