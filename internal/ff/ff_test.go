package ff

import (
	"math"
	"testing"
	"time"

	"pi2/internal/aqm"
	"pi2/internal/core"
	"pi2/internal/link"
	"pi2/internal/sim"
	"pi2/internal/stats"
	"pi2/internal/tcp"
)

// buildCell wires a small heavy-style cell: a PI2 bottleneck sized for
// 2 Mb/s per flow at 10 ms RTT, with a reno/cubic/dctcp mix — the regime the
// fast-forward engine targets.
func buildCell(t *testing.T, seed int64, reno, cubic, dctcp int) (*sim.Simulator, *link.Link, []*tcp.Endpoint) {
	t.Helper()
	n := reno + cubic + dctcp
	s := sim.New(seed)
	d := link.NewDispatcher()
	l := link.New(s, link.Config{
		RateBps: 2e6 * float64(n),
		AQM:     core.New(core.Config{}, s.RNG()),
		Sojourn: stats.NewDelayHistogram(),
	}, d.Deliver)
	var flows []*tcp.Endpoint
	id := 1
	mk := func(name string, count int) {
		for i := 0; i < count; i++ {
			cc, mode, err := tcp.NewCCFeedback(name, "")
			if err != nil {
				t.Fatal(err)
			}
			ep := tcp.NewWithEnqueuer(s, l.Enqueue, tcp.Config{
				ID: id, CC: cc, ECN: mode, BaseRTT: 10 * time.Millisecond,
			})
			d.Register(id, ep.DeliverData)
			ep.Start()
			id++
			flows = append(flows, ep)
		}
	}
	mk("reno", reno)
	mk("cubic", cubic)
	mk("dctcp", dctcp)
	return s, l, flows
}

// seekQuiescent runs packet mode in short chunks until the engine's entry
// predicate holds, failing the test if it never does.
func seekQuiescent(t *testing.T, s *sim.Simulator, eng *Engine) {
	t.Helper()
	for i := 0; i < 600; i++ {
		if eng.Quiescent() {
			return
		}
		s.RunUntil(s.Now() + 50*time.Millisecond)
	}
	t.Fatal("system never became quiescent")
}

// TestEngineAdvanceAndResume: a committed epoch advances the clock, produces
// virtual traffic, and packet mode resumes cleanly — auditor invariants
// intact and post-epoch sojourns not inflated by the jump.
func TestEngineAdvanceAndResume(t *testing.T) {
	s, l, flows := buildCell(t, 7, 2, 2, 2)
	eng, ok := New(s, l, flows)
	if !ok {
		t.Fatal("PI2 cell must support fast-forward")
	}
	s.RunUntil(4 * time.Second)
	seekQuiescent(t, s, eng)

	start := s.Now()
	goodput0 := flows[0].Goodput.Bytes()
	delta := eng.TryAdvance(start + 2*time.Second)
	if delta <= 0 {
		t.Fatal("quiescent system refused to advance")
	}
	if got := s.Now(); got != start+delta {
		t.Fatalf("clock = %v, want %v", got, start+delta)
	}
	if eng.Epochs != 1 || eng.VirtualPkts == 0 || eng.FFTime != delta {
		t.Fatalf("telemetry: epochs=%d pkts=%d fftime=%v (delta %v)",
			eng.Epochs, eng.VirtualPkts, eng.FFTime, delta)
	}
	if flows[0].Goodput.Bytes() == goodput0 {
		t.Fatal("virtual progress did not reach the flow's goodput meter")
	}
	if got := l.Enqueues() - l.Dequeues() - l.TotalDrops() - l.BacklogPackets(); got != 0 {
		t.Fatalf("link conservation broken by %d", got)
	}

	// Resume packet mode across the seam.
	s.RunUntil(s.Now() + 2*time.Second)
	if v := l.Audit().Violations(); v != nil {
		t.Fatalf("auditor violations after resume: %v", v)
	}
	if got := l.Sojourn.Max(); got > 1.0 {
		t.Fatalf("post-epoch sojourn inflated: %gs", got)
	}
}

// TestEngineBarrier: the epoch never crosses the barrier, and a barrier
// closer than one update period commits nothing.
func TestEngineBarrier(t *testing.T) {
	s, l, flows := buildCell(t, 11, 2, 2, 2)
	eng, ok := New(s, l, flows)
	if !ok {
		t.Fatal("engine must build")
	}
	s.RunUntil(4 * time.Second)
	seekQuiescent(t, s, eng)

	now := s.Now()
	if d := eng.TryAdvance(now + eng.Tupdate()/2); d != 0 {
		t.Fatalf("advanced %v past a sub-period barrier", d)
	}
	barrier := now + 5*eng.Tupdate()
	if d := eng.TryAdvance(barrier); s.Now() > barrier {
		t.Fatalf("epoch crossed barrier: now %v > %v (delta %v)", s.Now(), barrier, d)
	}
}

// TestEngineForceZero: a detected epoch with ForceZero set mutates nothing —
// the zero-length-epoch property the experiments-level byte-identity test
// builds on.
func TestEngineForceZero(t *testing.T) {
	s, l, flows := buildCell(t, 13, 2, 2, 2)
	eng, ok := New(s, l, flows)
	if !ok {
		t.Fatal("engine must build")
	}
	eng.ForceZero = true
	s.RunUntil(4 * time.Second)
	seekQuiescent(t, s, eng)

	type flowSnap struct {
		cwnd    float64
		goodput int64
	}
	now := s.Now()
	enq, deq, marks := l.Enqueues(), l.Dequeues(), l.Marks()
	pp := l.AQM().(*core.PI2).PPrime()
	var snaps []flowSnap
	for _, f := range flows {
		snaps = append(snaps, flowSnap{f.FFCwnd(), f.Goodput.Bytes()})
	}

	if d := eng.TryAdvance(now + time.Second); d != 0 {
		t.Fatalf("ForceZero epoch advanced %v", d)
	}
	if eng.ZeroEpochs != 1 || eng.Epochs != 0 || eng.VirtualPkts != 0 {
		t.Fatalf("telemetry: zero=%d epochs=%d pkts=%d",
			eng.ZeroEpochs, eng.Epochs, eng.VirtualPkts)
	}
	if s.Now() != now {
		t.Fatalf("clock moved: %v -> %v", now, s.Now())
	}
	if l.Enqueues() != enq || l.Dequeues() != deq || l.Marks() != marks {
		t.Fatal("link counters mutated")
	}
	if got := l.AQM().(*core.PI2).PPrime(); got != pp {
		t.Fatalf("AQM p' mutated: %g -> %g", pp, got)
	}
	for i, f := range flows {
		if f.FFCwnd() != snaps[i].cwnd || f.Goodput.Bytes() != snaps[i].goodput {
			t.Fatalf("flow %d mutated", i)
		}
	}
}

// TestEngineRefusals: non-FastForwarder AQMs and empty flow sets refuse to
// build; a slow-start population refuses to enter.
func TestEngineRefusals(t *testing.T) {
	s := sim.New(1)
	d := link.NewDispatcher()
	tail := link.New(s, link.Config{RateBps: 1e7, AQM: aqm.TailDrop{}}, d.Deliver)
	cc, mode, _ := tcp.NewCCFeedback("reno", "")
	ep := tcp.NewWithEnqueuer(s, tail.Enqueue, tcp.Config{
		ID: 1, CC: cc, ECN: mode, BaseRTT: 10 * time.Millisecond,
	})
	if _, ok := New(s, tail, []*tcp.Endpoint{ep}); ok {
		t.Fatal("tail-drop must not fast-forward")
	}

	s2, l2, flows2 := buildCell(t, 17, 1, 0, 0)
	eng, ok := New(s2, l2, flows2)
	if !ok {
		t.Fatal("engine must build")
	}
	// Fresh flows are in slow start with an empty queue: not quiescent.
	if eng.Quiescent() {
		t.Fatal("cold-start system reported quiescent")
	}
}

// TestEngineRenoEquilibrium drives a Reno-only PI2 cell mostly analytically
// and checks the fast-forwarded steady state against the fluid-model
// operating point internal/fluid linearizes around: for Reno under PI2 the
// classic drop probability is p = p'^2 and equilibrium obeys p·w² = 2
// (κR = 1/(2p₀) in equation (35) is this relation differentiated), i.e.
// w₀ = √(2/p). The analytic stepping must land on the same curve the
// per-packet simulation — and the paper's control design — sit on.
func TestEngineRenoEquilibrium(t *testing.T) {
	n := 4
	s := sim.New(23)
	d := link.NewDispatcher()
	l := link.New(s, link.Config{
		// 10 Mb/s per flow: a per-flow window of ~25 segments, deep in the
		// small-p regime where the square-root law is clean.
		RateBps: 1e7 * float64(n),
		AQM:     core.New(core.Config{}, s.RNG()),
		Sojourn: stats.NewDelayHistogram(),
	}, d.Deliver)
	var flows []*tcp.Endpoint
	for id := 1; id <= n; id++ {
		cc, mode, err := tcp.NewCCFeedback("reno", "")
		if err != nil {
			t.Fatal(err)
		}
		ep := tcp.NewWithEnqueuer(s, l.Enqueue, tcp.Config{
			ID: id, CC: cc, ECN: mode, BaseRTT: 10 * time.Millisecond,
		})
		d.Register(id, ep.DeliverData)
		ep.Start()
		flows = append(flows, ep)
	}
	eng, ok := New(s, l, flows)
	if !ok {
		t.Fatal("engine must build")
	}
	s.RunUntil(4 * time.Second)
	seekQuiescent(t, s, eng)

	// Hybrid loop to 120 s of virtual time in 1 s epochs. The PI2 integrator
	// and the Reno sawtooth oscillate slowly around the operating point, so
	// the equilibrium estimate is a time average over epoch boundaries in
	// the second half of the run, not a single-instant snapshot.
	end := 120 * time.Second
	var pSum, wSum float64
	var samples int
	for s.Now() < end {
		if eng.TryAdvance(s.Now()+time.Second) == 0 {
			s.RunUntil(s.Now() + 128*time.Millisecond)
		}
		if s.Now() > end/2 {
			pp := l.AQM().(*core.PI2).PPrime()
			var w float64
			for _, f := range flows {
				w += f.FFCwnd()
			}
			pSum += pp * pp
			wSum += w / float64(n)
			samples++
		}
	}
	if eng.FFTime < 90*time.Second {
		t.Fatalf("cell was not mostly fast-forwarded: ffTime=%v", eng.FFTime)
	}
	if samples < 20 {
		t.Fatalf("too few equilibrium samples: %d", samples)
	}

	p := pSum / float64(samples)
	if p <= 0 {
		t.Fatal("no operating point: p = 0")
	}
	pp := math.Sqrt(p)
	meanW := wSum / float64(samples)
	want := math.Sqrt(2 / p)
	ratio := meanW / want
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("equilibrium off the √(2/p) curve: p'=%.4f p=%.5f meanCwnd=%.1f want≈%.1f (ratio %.2f)",
			pp, p, meanW, want, ratio)
	}
	// The queue must still be parked near the PI2 target (the band the
	// engine promises to stay in).
	if qd := l.QueueDelayNow(); qd < 5*time.Millisecond || qd > 80*time.Millisecond {
		t.Errorf("queue left the operating band: %v", qd)
	}
	t.Logf("p'=%.4f p=%.5f meanCwnd=%.1f sqrt(2/p)=%.1f ratio=%.2f ffTime=%v epochs=%d",
		pp, p, meanW, want, meanW/want, eng.FFTime, eng.Epochs)
}
