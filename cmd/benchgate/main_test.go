package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: pi2
BenchmarkPI2Decision-8      	 5000000	        21.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkEndToEndSimSecond 	     100	 40000000 ns/op	   12345 B/op	     500 allocs/op
BenchmarkManyFlows-16      	      10	 2.4e+08 ns/op	    3801 B/op	       2 allocs/op
BenchmarkNoMemColumns      	 1000000	      1000 ns/op
PASS
ok  	pi2	10.0s
`

func parseSample(t *testing.T) map[string]result {
	t.Helper()
	res, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return res
}

func TestParseBenchOutput(t *testing.T) {
	res := parseSample(t)
	if len(res) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %v", len(res), res)
	}
	// GOMAXPROCS suffix is stripped; all three columns captured.
	p, ok := res["BenchmarkPI2Decision"]
	if !ok {
		t.Fatal("BenchmarkPI2Decision missing (suffix not stripped?)")
	}
	if p.nsPerOp != 21.5 || !p.hasAllocs || p.allocsPerOp != 0 || !p.hasBytes || p.bytesPerOp != 0 {
		t.Errorf("PI2Decision parsed as %+v", p)
	}
	// Scientific-notation ns/op.
	if m := res["BenchmarkManyFlows"]; m.nsPerOp != 2.4e8 || m.allocsPerOp != 2 || m.bytesPerOp != 3801 {
		t.Errorf("ManyFlows parsed as %+v", m)
	}
	// Lines without -benchmem columns parse but flag the absence.
	if n := res["BenchmarkNoMemColumns"]; n.hasAllocs || n.hasBytes {
		t.Errorf("NoMemColumns claims mem columns: %+v", n)
	}
}

func TestParseRejectsMalformedNs(t *testing.T) {
	_, err := parse(strings.NewReader("BenchmarkBad 10 1.2.3 ns/op\n"))
	if err == nil {
		t.Fatal("want error for malformed ns/op")
	}
}

func TestLoadBudgets(t *testing.T) {
	bf, err := loadBudgets([]byte(`{"ns_ratio": 3.5, "budgets": {"BenchmarkX": {"ref_ns_per_op": 10, "max_allocs_per_op": 1}}}`))
	if err != nil {
		t.Fatalf("loadBudgets: %v", err)
	}
	if bf.NsRatio != 3.5 || len(bf.Budgets) != 1 {
		t.Errorf("loaded %+v", bf)
	}
	if bf.Budgets["BenchmarkX"].MaxBytesPerOp != nil {
		t.Error("absent max_bytes_per_op should stay nil (ungated)")
	}

	// Default ratio.
	bf, err = loadBudgets([]byte(`{"budgets": {"BenchmarkX": {}}}`))
	if err != nil || bf.NsRatio != 2.0 {
		t.Errorf("default ns_ratio: %v %v", bf.NsRatio, err)
	}

	// Malformed JSON and empty budgets are errors.
	if _, err := loadBudgets([]byte(`{`)); err == nil {
		t.Error("want error for malformed JSON")
	}
	if _, err := loadBudgets([]byte(`{"budgets": {}}`)); err == nil {
		t.Error("want error for empty budgets")
	}
}

func newBudgets(name string, b budget) budgetFile {
	return budgetFile{NsRatio: 2.0, Budgets: map[string]budget{name: b}}
}

func i64(v int64) *int64 { return &v }

func runGate(t *testing.T, bf budgetFile) (int, string) {
	t.Helper()
	var sb strings.Builder
	failed := gate(&sb, bf, parseSample(t))
	return failed, sb.String()
}

func TestGatePasses(t *testing.T) {
	failed, out := runGate(t, newBudgets("BenchmarkManyFlows", budget{
		RefNsPerOp: 2.4e8, MaxAllocsPerOp: 50, MaxBytesPerOp: i64(65536),
	}))
	if failed != 0 {
		t.Fatalf("gate failed:\n%s", out)
	}
	if !strings.Contains(out, "ok") {
		t.Errorf("no ok line:\n%s", out)
	}
}

func TestGateMissingBenchmark(t *testing.T) {
	failed, out := runGate(t, newBudgets("BenchmarkNotRun", budget{MaxAllocsPerOp: 10}))
	if failed != 1 || !strings.Contains(out, "MISSING") {
		t.Fatalf("failed=%d out:\n%s", failed, out)
	}
}

func TestGateAllocsRegression(t *testing.T) {
	failed, out := runGate(t, newBudgets("BenchmarkManyFlows", budget{MaxAllocsPerOp: 1}))
	if failed != 1 || !strings.Contains(out, "FAIL allocs/op 2 > budget 1") {
		t.Fatalf("failed=%d out:\n%s", failed, out)
	}
}

func TestGateBytesRegression(t *testing.T) {
	failed, out := runGate(t, newBudgets("BenchmarkManyFlows", budget{
		MaxAllocsPerOp: 50, MaxBytesPerOp: i64(1024),
	}))
	if failed != 1 || !strings.Contains(out, "FAIL B/op 3801 > budget 1024") {
		t.Fatalf("failed=%d out:\n%s", failed, out)
	}
}

func TestGateNsRegression(t *testing.T) {
	failed, out := runGate(t, newBudgets("BenchmarkPI2Decision", budget{
		RefNsPerOp: 5, MaxAllocsPerOp: 0,
	}))
	if failed != 1 || !strings.Contains(out, "FAIL ns/op") {
		t.Fatalf("failed=%d out:\n%s", failed, out)
	}
}

func TestGateMissingMemColumns(t *testing.T) {
	// A budgeted bench that ran without ReportAllocs fails both mem gates.
	failed, out := runGate(t, newBudgets("BenchmarkNoMemColumns", budget{
		MaxAllocsPerOp: 10, MaxBytesPerOp: i64(100),
	}))
	if failed != 1 {
		t.Fatalf("failed=%d out:\n%s", failed, out)
	}
	if !strings.Contains(out, "no allocs/op column") || !strings.Contains(out, "no B/op column") {
		t.Errorf("missing-column diagnostics absent:\n%s", out)
	}
}

func TestGateNilBytesBudgetIgnoresBytes(t *testing.T) {
	// Without max_bytes_per_op, any B/op value passes.
	failed, out := runGate(t, newBudgets("BenchmarkEndToEndSimSecond", budget{
		MaxAllocsPerOp: 600,
	}))
	if failed != 0 {
		t.Fatalf("nil bytes budget should not gate B/op:\n%s", out)
	}
}
