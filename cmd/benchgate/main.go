// Command benchgate compares `go test -bench` output against the committed
// hot-path budgets in BENCH_hotpath.json and exits nonzero on a regression.
//
// Usage:
//
//	go test -run '^$' -bench '...' -benchtime=100x . | go run ./cmd/benchgate
//	go run ./cmd/benchgate -budgets BENCH_hotpath.json bench-output.txt
//
// A benchmark fails the gate when its allocs/op exceeds the recorded
// max_allocs_per_op, its B/op exceeds max_bytes_per_op (when set), or its
// ns/op exceeds ns_ratio (default 2.0) times the recorded ref_ns_per_op.
// Every budgeted benchmark must appear in the input: a silently-skipped
// bench would make the gate vacuous. Benchmarks without a budget entry are
// ignored, so the input may contain a wider -bench match.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
)

type budget struct {
	RefNsPerOp     float64 `json:"ref_ns_per_op"`
	MaxAllocsPerOp int64   `json:"max_allocs_per_op"`
	// MaxBytesPerOp gates the B/op column; nil leaves bytes ungated (the
	// zero-alloc benches pin allocs/op instead, which implies B/op 0).
	MaxBytesPerOp *int64 `json:"max_bytes_per_op,omitempty"`
}

type budgetFile struct {
	NsRatio float64           `json:"ns_ratio"`
	Budgets map[string]budget `json:"budgets"`
}

type result struct {
	nsPerOp     float64
	allocsPerOp int64
	bytesPerOp  int64
	hasAllocs   bool
	hasBytes    bool
}

// benchLine matches e.g.
// "BenchmarkFoo-8   100   21.5 ns/op   0 B/op   0 allocs/op"
// (the -8 GOMAXPROCS suffix and the B/op / allocs/op columns are optional).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op(.*)$`)

var (
	allocsCol = regexp.MustCompile(`(\d+) allocs/op`)
	bytesCol  = regexp.MustCompile(`(\d+) B/op`)
)

func parse(r io.Reader) (map[string]result, error) {
	out := make(map[string]result)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		res := result{nsPerOp: ns}
		if am := allocsCol.FindStringSubmatch(m[3]); am != nil {
			res.allocsPerOp, _ = strconv.ParseInt(am[1], 10, 64)
			res.hasAllocs = true
		}
		if bm := bytesCol.FindStringSubmatch(m[3]); bm != nil {
			res.bytesPerOp, _ = strconv.ParseInt(bm[1], 10, 64)
			res.hasBytes = true
		}
		out[m[1]] = res
	}
	return out, sc.Err()
}

func loadBudgets(raw []byte) (budgetFile, error) {
	var bf budgetFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return bf, err
	}
	if bf.NsRatio <= 0 {
		bf.NsRatio = 2.0
	}
	if len(bf.Budgets) == 0 {
		return bf, fmt.Errorf("no budgets")
	}
	return bf, nil
}

// gate checks every budgeted benchmark against the parsed results, writing
// one line per budget to w. It returns the number of failed gates.
func gate(w io.Writer, bf budgetFile, results map[string]result) int {
	failed := 0
	for _, name := range sortedKeys(bf.Budgets) {
		b := bf.Budgets[name]
		res, ok := results[name]
		if !ok {
			failed++
			fmt.Fprintf(w, "benchgate: %-30s MISSING from input\n", name)
			continue
		}
		bad := false
		if res.hasAllocs && res.allocsPerOp > b.MaxAllocsPerOp {
			bad = true
			fmt.Fprintf(w, "benchgate: %-30s FAIL allocs/op %d > budget %d\n",
				name, res.allocsPerOp, b.MaxAllocsPerOp)
		}
		if !res.hasAllocs {
			bad = true
			fmt.Fprintf(w, "benchgate: %-30s FAIL no allocs/op column (run with -benchmem or ReportAllocs)\n", name)
		}
		if b.MaxBytesPerOp != nil {
			switch {
			case !res.hasBytes:
				bad = true
				fmt.Fprintf(w, "benchgate: %-30s FAIL no B/op column (run with -benchmem or ReportAllocs)\n", name)
			case res.bytesPerOp > *b.MaxBytesPerOp:
				bad = true
				fmt.Fprintf(w, "benchgate: %-30s FAIL B/op %d > budget %d\n",
					name, res.bytesPerOp, *b.MaxBytesPerOp)
			}
		}
		if limit := b.RefNsPerOp * bf.NsRatio; b.RefNsPerOp > 0 && res.nsPerOp > limit {
			bad = true
			fmt.Fprintf(w, "benchgate: %-30s FAIL ns/op %.4g > %.4g (%.2gx ref %.4g)\n",
				name, res.nsPerOp, limit, bf.NsRatio, b.RefNsPerOp)
		}
		if bad {
			failed++
			continue
		}
		fmt.Fprintf(w, "benchgate: %-30s ok (%.4g ns/op, %d allocs/op, %d B/op)\n",
			name, res.nsPerOp, res.allocsPerOp, res.bytesPerOp)
	}
	return failed
}

func main() {
	budgetsPath := flag.String("budgets", "BENCH_hotpath.json", "budget file (see BENCH_hotpath.json)")
	flag.Parse()

	raw, err := os.ReadFile(*budgetsPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	bf, err := loadBudgets(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", *budgetsPath, err)
		os.Exit(1)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	results, err := parse(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}

	if failed := gate(os.Stdout, bf, results); failed > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) failed the gate\n", failed)
		os.Exit(1)
	}
}

func sortedKeys(m map[string]budget) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
