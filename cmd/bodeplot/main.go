// Command bodeplot emits the analytic series behind Figures 4, 5 and 7 as
// tab-separated values (the paper generated these with Octave scripts; this
// tool regenerates them from the Appendix B fluid model).
//
// Usage:
//
//	bodeplot -fig {4|5|7} [-points N]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"pi2/internal/fluid"
)

func main() {
	fig := flag.Int("fig", 7, "figure to generate: 4, 5 or 7")
	points := flag.Int("points", 60, "number of x-axis points")
	flag.Parse()

	switch *fig {
	case 4:
		fmt.Println("p\tline\tgain_margin_db\tphase_margin_deg\tomega180\tomegac")
		emitMargins(fluid.Figure4(*points))
	case 5:
		fmt.Println("p\ttune\tsqrt_2p")
		for _, tp := range fluid.Figure5(*points) {
			fmt.Printf("%.6g\t%.6g\t%.6g\n", tp.P, tp.Tune, tp.SqrtTwoP)
		}
	case 7:
		fmt.Println("p_prime\tline\tgain_margin_db\tphase_margin_deg\tomega180\tomegac")
		emitMargins(fluid.Figure7(*points))
	default:
		fmt.Fprintln(os.Stderr, "bodeplot: -fig must be 4, 5 or 7")
		os.Exit(2)
	}
}

func emitMargins(pts []fluid.MarginPoint) {
	for _, mp := range pts {
		lines := make([]string, 0, len(mp.ByLine))
		for name := range mp.ByLine {
			lines = append(lines, name)
		}
		sort.Strings(lines)
		for _, line := range lines {
			m := mp.ByLine[line]
			fmt.Printf("%.6g\t%s\t%.3f\t%.3f\t%.4g\t%.4g\n",
				mp.P, line, m.GainMarginDB, m.PhaseMarginDeg, m.Omega180, m.OmegaC)
		}
	}
}
