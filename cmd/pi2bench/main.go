// Command pi2bench regenerates the paper's tables and figures.
//
// Usage:
//
//	pi2bench [-quick] [-seed N] [-jobs N] [-json file] [-v] <experiment>...
//
// Experiments are dispatched from the campaign registry; run with no
// arguments to list them. "all" expands to every primary experiment
// (fig15–fig18 are views of "sweep" and fig19–fig20 of "combos", so they
// are omitted from the expansion but can be requested by name).
//
// Grid experiments fan their independent runs across -jobs workers
// (default: GOMAXPROCS). Output is bit-identical at any -jobs value:
// each run's seed derives from the campaign seed and the run's position
// in its matrix, never from scheduling order. -json additionally writes
// every run's record (params, wall time, events/sec) to a file, streamed
// as cells complete.
//
// -workers N dispatches grid cells across N worker processes instead of
// in-process goroutines (see the fleet architecture in DESIGN.md): the
// binary re-executes itself with -worker and speaks a line-delimited
// protocol over the worker's stdin/stdout. Tables, goldens and -json
// records stay byte-identical to any -jobs run; a killed worker's cells
// are re-dispatched to the survivors.
//
// The fleet also crosses machines: `pi2bench -serve :9000` turns a host
// into a worker host, and a coordinator started with -hosts <file> (lines:
// `addr [workers=N] [shards=K] [ff=bool]`) dials them over TCP instead of
// spawning local processes. The handshake rejects drifted binaries
// explicitly; heartbeats let the coordinator kill and re-dispatch cells
// from wedged-but-alive workers; broken links reconnect with capped
// backoff. Inventories without per-host overrides keep the byte-identity
// contract. -journal <file> appends every final record to a crash-safe
// journal, and -resume replays it, skipping completed cells, so a killed
// coordinator loses at most its in-flight cells. -fleet-chaos N injects
// seeded connection faults (drops, stalls, truncated frames) for testing
// the fault paths.
//
// -shards N partitions each cell's simulation across N event-loop domains
// (conservative PDES with propagation-delay lookahead; see DESIGN.md). The
// default 1 is the classic single loop and stays byte-identical to older
// builds; a fixed N > 1 is deterministic too, but produces its own (equally
// valid) event interleaving. -reps N repeats heavy/sweep cells with
// perturbed seeds and prints cross-seed 95% confidence bands. -target
// overrides those drivers' AQM target delay (paper default 20 ms; Briscoe's
// "PI2 Parameters" report recommends 15 ms, the Linux dualpi2 default).
//
// -cell-timeout and -cell-stall arm a per-cell watchdog (wall-clock budget
// and simulated-clock stall detection); -retries re-runs killed or panicking
// cells with a perturbed seed. Failed cells are reported in the output and
// the grid still completes.
//
// -check and -update-golden run the golden-regression harness instead:
// every named experiment (default "all" plus every registered name with a
// baseline) is captured at golden scale and compared against — or written
// to — the checked-in fingerprints (see internal/golden).
//
// -cpuprofile, -memprofile and -trace capture pprof/execution-trace data
// over whatever workload the other flags select (see the profiling workflow
// in EXPERIMENTS.md); -tagfree poisons recycled packets to surface
// use-after-release bugs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"

	"pi2/internal/campaign"
	_ "pi2/internal/experiments" // registers every experiment
	"pi2/internal/fleet"
	"pi2/internal/golden"
	"pi2/internal/packet"
)

func main() {
	quick := flag.Bool("quick", false, "run scaled-down experiments (~5x shorter)")
	timeDiv := flag.Int("timediv", 0, "divide experiment durations by N (overrides -quick's 5x; 0 = off)")
	seed := flag.Int64("seed", 1, "campaign base seed")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel simulation runs")
	workers := flag.Int("workers", 0, "dispatch grid cells across N worker processes (0 = in-process -jobs pool); output is byte-identical either way")
	workerMode := flag.Bool("worker", false, "serve the fleet worker protocol on stdin/stdout (spawned by -workers; not for interactive use)")
	serveAddr := flag.String("serve", "", "run a fleet worker host listening on this TCP address (e.g. :9000; :0 picks a port, printed on stdout)")
	hostsPath := flag.String("hosts", "", "dispatch grid cells to the worker hosts in this inventory file (lines: addr [workers=N] [shards=K] [ff=bool])")
	journalPath := flag.String("journal", "", "append every final run record to this crash-safe journal file")
	resume := flag.Bool("resume", false, "replay -journal before running, skipping already-completed cells")
	fleetChaos := flag.Int64("fleet-chaos", 0, "inject seeded connection faults into every fleet link (testing; 0 = off)")
	shards := flag.Int("shards", 1, "event-loop domains per simulation (conservative PDES); 1 = classic single loop")
	fastForward := flag.Bool("ff", false, "fast-forward quiescent congestion-avoidance epochs analytically (hybrid fluid/packet); also enables the 10k/50k heavy cells")
	reps := flag.Int("reps", 1, "repeat heavy/sweep cells N times with perturbed seeds and print ± confidence bands")
	targetMs := flag.Int("target", 0, "AQM target delay in ms for heavy/sweep/chaos (0 = the paper's 20; Briscoe's PI2 Parameters report suggests 15)")
	jsonPath := flag.String("json", "", "write per-run records (params, timing, events/sec) to this file")
	verbose := flag.Bool("v", false, "report each run's completion on stderr")
	check := flag.Bool("check", false, "compare golden-scale fingerprints against the checked-in baselines")
	update := flag.Bool("update-golden", false, "regenerate the checked-in golden fingerprints")
	goldenDir := flag.String("golden-dir", "", "golden directory for -check/-update-golden (default: embedded baselines for -check, "+golden.DefaultDir+" for -update-golden)")
	cellTimeout := flag.Duration("cell-timeout", 0, "wall-clock watchdog per grid cell (0 = off)")
	cellStall := flag.Duration("cell-stall", 0, "kill a cell whose simulated clock stops advancing for this long (0 = off)")
	retries := flag.Int("retries", 0, "re-run a failed or killed cell up to N times with a perturbed seed")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	tracePath := flag.String("trace", "", "write a runtime execution trace to this file")
	tagFree := flag.Bool("tagfree", false, "poison recycled packets to catch use-after-release (debug)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pi2bench [-quick] [-timediv N] [-seed N] [-jobs N] [-workers N] [-shards N] [-ff] [-reps N]\n")
		fmt.Fprintf(os.Stderr, "                [-target ms] [-json file] [-v]\n")
		fmt.Fprintf(os.Stderr, "                [-cell-timeout d] [-cell-stall d] [-retries N]\n")
		fmt.Fprintf(os.Stderr, "                [-hosts file] [-journal file] [-resume] <experiment>...\n")
		fmt.Fprintf(os.Stderr, "       pi2bench -serve addr            (run a TCP worker host)\n")
		fmt.Fprintf(os.Stderr, "       pi2bench -check|-update-golden [-jobs N] [-golden-dir dir] [<experiment>...]\n\n")
		fmt.Fprintf(os.Stderr, "experiments:\n")
		for _, name := range campaign.Names() {
			e, _ := campaign.Lookup(name)
			all := "  "
			if e.InAll {
				all = "* "
			}
			fmt.Fprintf(os.Stderr, "  %s%-14s %s\n", all, name, e.Desc)
		}
		fmt.Fprintf(os.Stderr, "  * = included in \"all\"\n")
	}
	flag.Parse()
	if *workerMode {
		if err := fleet.Serve(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "pi2bench: worker: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *serveAddr != "" {
		if err := fleet.ServeTCP(*serveAddr, os.Stdout, os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "pi2bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *tagFree {
		packet.PoisonFreed = true
	}
	stopProfiling, err := startProfiling(*cpuProfile, *tracePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pi2bench: %v\n", err)
		os.Exit(1)
	}
	var pool *fleet.Pool
	var dispatch campaign.Dispatcher
	if *hostsPath != "" {
		f, err := os.Open(*hostsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pi2bench: %v\n", err)
			os.Exit(1)
		}
		hosts, err := fleet.ParseHosts(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pi2bench: %s: %v\n", *hostsPath, err)
			os.Exit(1)
		}
		pool = fleet.NewPool(fleet.Config{Hosts: hosts, ChaosSeed: *fleetChaos})
		dispatch = pool
	} else if *workers > 0 || *fleetChaos != 0 {
		pool = fleet.NewPool(fleet.Config{Workers: *workers, ChaosSeed: *fleetChaos})
		dispatch = pool
	}
	var journal *fleet.Journal
	var resumeSet *fleet.ResumeSet
	if *resume {
		if *journalPath == "" {
			fmt.Fprintln(os.Stderr, "pi2bench: -resume needs -journal (the file to replay)")
			os.Exit(2)
		}
		rs, stats, err := fleet.LoadResume(*journalPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pi2bench: %v\n", err)
			os.Exit(1)
		}
		resumeSet = rs
		fmt.Fprintf(os.Stderr, "pi2bench: resume: replayed %d record(s) in %d segment(s)",
			stats.Records, stats.Segments)
		if stats.Truncated > 0 {
			fmt.Fprintf(os.Stderr, ", truncated %d torn byte(s)", stats.Truncated)
		}
		fmt.Fprintln(os.Stderr)
	}
	if *journalPath != "" {
		j, err := fleet.OpenJournal(*journalPath, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pi2bench: %v\n", err)
			os.Exit(1)
		}
		journal = j
	}
	// Route every exit through here so profiles are flushed (and workers
	// reaped) even when a golden check fails or an experiment errors.
	exit := func(code int) {
		if pool != nil {
			pool.Close()
		}
		if journal != nil {
			journal.Close()
		}
		stopProfiling()
		if err := writeMemProfile(*memProfile); err != nil {
			fmt.Fprintf(os.Stderr, "pi2bench: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}
	ex := golden.Exec{Jobs: *jobs, Dispatch: dispatch}
	if journal != nil {
		ex.Journal = journal
	}
	if resumeSet != nil {
		ex.Resume = resumeSet
	}
	if *check || *update {
		exit(goldenMode(*check, *update, *goldenDir, ex, flag.Args()))
	}
	if flag.NArg() == 0 {
		flag.Usage()
		exit(2)
	}

	ctx := &campaign.Context{
		Quick: *quick, TimeDiv: *timeDiv, Seed: *seed, Jobs: *jobs,
		Shards: *shards, FastForward: *fastForward, Reps: *reps, TargetMs: *targetMs,
		Watchdog: campaign.Watchdog{Timeout: *cellTimeout, Stall: *cellStall},
		Retries:  *retries,
		Dispatch: dispatch,
		Journal:  ex.Journal,
		Resume:   ex.Resume,
	}
	var jsonFile *os.File
	if *jsonPath != "" {
		// Stream records to disk as cells complete instead of retaining
		// the whole campaign in memory — at fleet scale the record set is
		// the dominant allocation.
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pi2bench: %v\n", err)
			exit(1)
		}
		jsonFile = f
		ctx.Collector = campaign.NewStreamingCollector(f)
	}
	if *verbose {
		ctx.Progress = func(done, total int, rec campaign.RunRecord) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s (%.1fs, %.0f events/s)\n",
				done, total, rec.Name, rec.WallMs/1e3, rec.EventsPerSec)
		}
	}

	var names []string
	seen := map[string]bool{}
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for _, a := range flag.Args() {
		if a == "all" {
			for _, n := range campaign.AllNames() {
				add(n)
			}
			continue
		}
		if _, ok := campaign.Lookup(a); !ok {
			fmt.Fprintf(os.Stderr, "pi2bench: unknown experiment %q\n\n", a)
			flag.Usage()
			exit(2)
		}
		add(a)
	}

	for _, name := range names {
		e, _ := campaign.Lookup(name)
		if err := e.Run(ctx, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "pi2bench: %s: %v\n", name, err)
			exit(1)
		}
	}

	if jsonFile != nil {
		if err := ctx.Collector.Close(); err == nil {
			err = jsonFile.Close()
		} else {
			jsonFile.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pi2bench: writing %s: %v\n", *jsonPath, err)
			exit(1)
		}
	}
	exit(0)
}

// startProfiling begins CPU profiling and execution tracing as requested and
// returns a function that stops both (idempotent, safe when neither is on).
func startProfiling(cpuPath, tracePath string) (func(), error) {
	var cpuFile, traceFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("starting CPU profile: %w", err)
		}
		cpuFile = f
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, err
		}
		if err := rtrace.Start(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("starting execution trace: %w", err)
		}
		traceFile = f
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			rtrace.Stop()
			traceFile.Close()
		}
	}, nil
}

// writeMemProfile dumps an allocation profile (after a final GC, so the
// numbers reflect live retention rather than collection timing).
func writeMemProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("writing memory profile: %w", err)
	}
	return f.Close()
}

// goldenMode runs -check or -update-golden over the named experiments
// (default: the "all" expansion, which already covers every simulation grid
// — fig15–fig18 and fig19–fig20 are views of "sweep" and "combos"). It
// returns the process exit code.
func goldenMode(check, update bool, dir string, ex golden.Exec, args []string) int {
	if check && update {
		fmt.Fprintln(os.Stderr, "pi2bench: -check and -update-golden are mutually exclusive")
		return 2
	}
	names := args
	if len(names) == 0 {
		names = campaign.AllNames()
	}
	for _, name := range names {
		if _, ok := campaign.Lookup(name); !ok {
			fmt.Fprintf(os.Stderr, "pi2bench: unknown experiment %q\n", name)
			return 2
		}
	}
	if update {
		if dir == "" {
			dir = golden.DefaultDir
		}
		for _, name := range names {
			fp, err := golden.Capture(name, ex)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pi2bench: %v\n", err)
				return 1
			}
			if err := golden.Save(dir, fp); err != nil {
				fmt.Fprintf(os.Stderr, "pi2bench: %v\n", err)
				return 1
			}
			fmt.Printf("golden: wrote %s (%d runs)\n", name, len(fp.Runs))
		}
		return 0
	}
	failed := 0
	for _, name := range names {
		mismatches, err := golden.Check(name, dir, ex)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pi2bench: %v\n", err)
			return 1
		}
		if len(mismatches) == 0 {
			fmt.Printf("golden: %-14s ok\n", name)
			continue
		}
		failed++
		fmt.Printf("golden: %-14s FAIL (%d mismatches)\n", name, len(mismatches))
		for _, m := range mismatches {
			fmt.Printf("  %s\n", m)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "pi2bench: golden check failed for %d experiment(s)\n", failed)
		return 1
	}
	return 0
}
