// Command pi2bench regenerates the paper's tables and figures.
//
// Usage:
//
//	pi2bench [-quick] [-seed N] <experiment> [experiment...]
//
// Experiments: fig4 fig5 fig6 fig7 fig11 fig12 fig13 fig14 fig15 fig16
// fig17 fig18 fig19 fig20 sweep combos table1 fct dualq all.
//
// fig15–fig18 share one sweep; asking for several of them (or "sweep")
// runs the grid once and prints every requested table. Output is
// tab-separated with '#' comment lines, one block per figure.
package main

import (
	"flag"
	"fmt"
	"os"

	"pi2/internal/experiments"
	"pi2/internal/fluid"
)

func main() {
	quick := flag.Bool("quick", false, "run scaled-down experiments (~5x shorter)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pi2bench [-quick] [-seed N] <experiment>...\n")
		fmt.Fprintf(os.Stderr, "experiments: fig4 fig5 fig6 fig7 fig11 fig12 fig13 fig14\n")
		fmt.Fprintf(os.Stderr, "             fig15 fig16 fig17 fig18 fig19 fig20\n")
		fmt.Fprintf(os.Stderr, "             sweep combos table1 fct dualq arrangements rttfair all\n")
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	o := experiments.Options{Quick: *quick, Seed: *seed}

	want := map[string]bool{}
	for _, a := range flag.Args() {
		if a == "all" {
			for _, e := range []string{"table1", "fig4", "fig5", "fig6", "fig7",
				"fig11", "fig12", "fig13", "fig14", "sweep", "combos", "fct", "dualq", "arrangements", "rttfair"} {
				want[e] = true
			}
			continue
		}
		want[a] = true
	}

	out := os.Stdout
	if want["table1"] {
		experiments.PrintTable1(out)
		fmt.Fprintln(out)
	}
	if want["fig4"] {
		printFig4(o)
	}
	if want["fig5"] {
		printFig5(o)
	}
	if want["fig7"] {
		printFig7(o)
	}
	if want["fig6"] {
		experiments.Fig6(o).Print(out)
		fmt.Fprintln(out)
	}
	if want["fig11"] {
		experiments.Fig11(o).Print(out)
		fmt.Fprintln(out)
	}
	if want["fig12"] {
		experiments.Fig12(o).Print(out)
		fmt.Fprintln(out)
	}
	if want["fig13"] {
		experiments.Fig13(o).Print(out)
		fmt.Fprintln(out)
	}
	if want["fig14"] {
		experiments.Fig14(o).Print(out)
		fmt.Fprintln(out)
	}
	if want["sweep"] || want["fig15"] || want["fig16"] || want["fig17"] || want["fig18"] {
		pts := experiments.CoexistenceSweep(o)
		if want["sweep"] || want["fig15"] {
			experiments.PrintFig15(out, pts)
			fmt.Fprintln(out)
		}
		if want["sweep"] || want["fig16"] {
			experiments.PrintFig16(out, pts)
			fmt.Fprintln(out)
		}
		if want["sweep"] || want["fig17"] {
			experiments.PrintFig17(out, pts)
			fmt.Fprintln(out)
		}
		if want["sweep"] || want["fig18"] {
			experiments.PrintFig18(out, pts)
			fmt.Fprintln(out)
		}
	}
	if want["combos"] || want["fig19"] || want["fig20"] {
		pts := experiments.FlowCombos(o, nil)
		if want["combos"] || want["fig19"] {
			experiments.PrintFig19(out, pts)
			fmt.Fprintln(out)
		}
		if want["combos"] || want["fig20"] {
			experiments.PrintFig20(out, pts)
			fmt.Fprintln(out)
		}
	}
	if want["fct"] {
		experiments.FigFCT(o).Print(out)
		fmt.Fprintln(out)
	}
	if want["rttfair"] {
		experiments.PrintRTTFair(out, experiments.RTTFairSweep(o))
		fmt.Fprintln(out)
	}
	if want["dualq"] || want["arrangements"] {
		dq := experiments.DualQ(o, 1, 1)
		if want["dualq"] {
			dq.Print(out)
			fmt.Fprintln(out)
		}
		if want["arrangements"] {
			experiments.PrintArrangements(out, dq, experiments.FQArrangement(o, 1, 1))
			fmt.Fprintln(out)
		}
	}
}

func bodePoints(quick bool) int {
	if quick {
		return 13
	}
	return 49
}

func printFig4(o experiments.Options) {
	fmt.Println("# Figure 4: Bode margins, Reno + PI on p (R0=100ms, alpha=0.125*tune, beta=1.25*tune, T=32ms)")
	fmt.Println("p\tline\tgain_margin_db\tphase_margin_deg")
	for _, mp := range fluid.Figure4(bodePoints(o.Quick)) {
		for _, line := range []string{"tune=auto", "tune=1", "tune=1/2", "tune=1/8"} {
			m := mp.ByLine[line]
			fmt.Printf("%.3g\t%s\t%.2f\t%.2f\n", mp.P, line, m.GainMarginDB, m.PhaseMarginDeg)
		}
	}
	fmt.Println()
}

func printFig5(o experiments.Options) {
	fmt.Println("# Figure 5: PIE 'tune' steps vs sqrt(2p)")
	fmt.Println("p\ttune\tsqrt_2p")
	for _, tp := range fluid.Figure5(bodePoints(o.Quick)) {
		fmt.Printf("%.3g\t%.6g\t%.6g\n", tp.P, tp.Tune, tp.SqrtTwoP)
	}
	fmt.Println()
}

func printFig7(o experiments.Options) {
	fmt.Println("# Figure 7: Bode margins (R0=100ms, T=32ms): reno pie / reno pi2 / scal pi")
	fmt.Println("p_prime\tline\tgain_margin_db\tphase_margin_deg")
	for _, mp := range fluid.Figure7(bodePoints(o.Quick)) {
		for _, line := range []string{"reno pie", "reno pi2", "scal pi"} {
			m := mp.ByLine[line]
			fmt.Printf("%.3g\t%s\t%.2f\t%.2f\n", mp.P, line, m.GainMarginDB, m.PhaseMarginDeg)
		}
	}
	fmt.Println()
}
