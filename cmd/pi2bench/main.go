// Command pi2bench regenerates the paper's tables and figures.
//
// Usage:
//
//	pi2bench [-quick] [-seed N] [-jobs N] [-json file] [-v] <experiment>...
//
// Experiments are dispatched from the campaign registry; run with no
// arguments to list them. "all" expands to every primary experiment
// (fig15–fig18 are views of "sweep" and fig19–fig20 of "combos", so they
// are omitted from the expansion but can be requested by name).
//
// Grid experiments fan their independent runs across -jobs workers
// (default: GOMAXPROCS). Output is bit-identical at any -jobs value:
// each run's seed derives from the campaign seed and the run's position
// in its matrix, never from scheduling order. -json additionally writes
// every run's record (params, wall time, events/sec) to a file.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"pi2/internal/campaign"
	_ "pi2/internal/experiments" // registers every experiment
)

func main() {
	quick := flag.Bool("quick", false, "run scaled-down experiments (~5x shorter)")
	seed := flag.Int64("seed", 1, "campaign base seed")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel simulation runs")
	jsonPath := flag.String("json", "", "write per-run records (params, timing, events/sec) to this file")
	verbose := flag.Bool("v", false, "report each run's completion on stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pi2bench [-quick] [-seed N] [-jobs N] [-json file] [-v] <experiment>...\n\n")
		fmt.Fprintf(os.Stderr, "experiments:\n")
		for _, name := range campaign.Names() {
			e, _ := campaign.Lookup(name)
			all := "  "
			if e.InAll {
				all = "* "
			}
			fmt.Fprintf(os.Stderr, "  %s%-14s %s\n", all, name, e.Desc)
		}
		fmt.Fprintf(os.Stderr, "  * = included in \"all\"\n")
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	ctx := &campaign.Context{Quick: *quick, Seed: *seed, Jobs: *jobs}
	if *jsonPath != "" {
		ctx.Collector = &campaign.Collector{}
	}
	if *verbose {
		ctx.Progress = func(done, total int, rec campaign.RunRecord) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s (%.1fs, %.0f events/s)\n",
				done, total, rec.Name, rec.WallMs/1e3, rec.EventsPerSec)
		}
	}

	var names []string
	seen := map[string]bool{}
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for _, a := range flag.Args() {
		if a == "all" {
			for _, n := range campaign.AllNames() {
				add(n)
			}
			continue
		}
		if _, ok := campaign.Lookup(a); !ok {
			fmt.Fprintf(os.Stderr, "pi2bench: unknown experiment %q\n\n", a)
			flag.Usage()
			os.Exit(2)
		}
		add(a)
	}

	for _, name := range names {
		e, _ := campaign.Lookup(name)
		if err := e.Run(ctx, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "pi2bench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pi2bench: %v\n", err)
			os.Exit(1)
		}
		if err := ctx.Collector.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pi2bench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
}
