// Command pi2sim runs a single bottleneck scenario and prints its queue
// delay / throughput time series and a summary — a generic driver for
// exploring configurations beyond the paper's fixed experiments.
//
// Example:
//
//	pi2sim -aqm pi2 -link 10M -rtt 100ms -flows 5 -cc reno -dur 100s
//	pi2sim -aqm pi2 -link 40M -rtt 10ms -flows 1 -cc cubic -flows2 1 -cc2 dctcp
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pi2/internal/experiments"
	"pi2/internal/plot"
	"pi2/internal/traffic"
)

func main() {
	var (
		aqmName  = flag.String("aqm", "pi2", "AQM: pi2, pie, bare-pie, pi, red, codel, taildrop")
		linkStr  = flag.String("link", "10M", "bottleneck rate in bits/s (suffix K/M/G)")
		rtt      = flag.Duration("rtt", 100*time.Millisecond, "base RTT")
		flows    = flag.Int("flows", 5, "number of flows in the first group")
		cc       = flag.String("cc", "reno", "congestion control of the first group")
		flows2   = flag.Int("flows2", 0, "number of flows in the second group")
		cc2      = flag.String("cc2", "dctcp", "congestion control of the second group")
		udp      = flag.Float64("udp", 0, "additional unresponsive UDP load in bits/s")
		dur      = flag.Duration("dur", 100*time.Second, "simulated duration")
		warm     = flag.Duration("warmup", 0, "stats warm-up (default dur/4)")
		target   = flag.Duration("target", 20*time.Millisecond, "AQM target delay")
		seed     = flag.Int64("seed", 1, "random seed")
		series   = flag.Bool("series", true, "print the 1 s time series")
		sack     = flag.Bool("sack", false, "enable SACK loss recovery on all flows")
		ackEvery = flag.Int("ackevery", 1, "delayed/stretch ACKs: acknowledge every Nth segment")
		buffer   = flag.Int("buffer", 0, "bottleneck buffer in packets (default 40000)")
		doPlot   = flag.Bool("plot", false, "render an ASCII chart of the queue-delay series")
		config   = flag.String("config", "", "load the scenario from a JSON file instead of flags")
	)
	flag.Parse()

	if *config != "" {
		f, err := os.Open(*config)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pi2sim:", err)
			os.Exit(2)
		}
		sc, err := experiments.LoadScenario(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pi2sim:", err)
			os.Exit(2)
		}
		report(experiments.Run(sc), *series, *doPlot, "config:"+*config, sc.LinkRateBps)
		return
	}
	rate, err := parseRate(*linkStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pi2sim:", err)
		os.Exit(2)
	}
	factory, ok := experiments.FactoryByName(*aqmName, *target)
	if !ok {
		fmt.Fprintf(os.Stderr, "pi2sim: unknown AQM %q\n", *aqmName)
		os.Exit(2)
	}
	if *warm == 0 {
		*warm = *dur / 4
	}

	sc := experiments.Scenario{
		Seed:        *seed,
		LinkRateBps: rate,
		NewAQM:      factory,
		Duration:    *dur,
		WarmUp:      *warm,
	}
	sc.BufferPackets = *buffer
	sc.SACK = *sack
	sc.AckEvery = *ackEvery
	if *flows > 0 {
		sc.Bulk = append(sc.Bulk, traffic.BulkFlowSpec{CC: *cc, Count: *flows, RTT: *rtt, Label: "group1"})
	}
	if *flows2 > 0 {
		sc.Bulk = append(sc.Bulk, traffic.BulkFlowSpec{CC: *cc2, Count: *flows2, RTT: *rtt, Label: "group2"})
	}
	if *udp > 0 {
		sc.UDP = []traffic.UDPSpec{{RateBps: *udp}}
	}

	res := experiments.Run(sc)
	label := fmt.Sprintf("aqm=%s link=%.0f rtt=%v target=%v dur=%v", *aqmName, rate, *rtt, *target, *dur)
	report(res, *series, *doPlot, label, rate)
}

// report prints the time series, summary block and optional chart.
func report(res *experiments.Result, series, doPlot bool, label string, rateBps float64) {
	if series {
		fmt.Println("time_s\tqdelay_ms\tgoodput_mbps")
		for i := range res.DelaySeries.Values {
			fmt.Printf("%.0f\t%.2f\t%.3f\n",
				res.DelaySeries.Times[i].Seconds(),
				res.DelaySeries.Values[i]*1e3,
				res.GoodputSeries.Values[i]/1e6)
		}
	}
	fmt.Printf("# %s\n", label)
	fmt.Printf("# qdelay: mean=%.2fms p25=%.2fms p99=%.2fms\n",
		res.Sojourn.Mean()*1e3, res.Sojourn.Percentile(25)*1e3, res.Sojourn.Percentile(99)*1e3)
	fmt.Printf("# utilization=%.3f dropsAQM=%d dropsOverflow=%d marks=%d\n",
		res.Utilization, res.DropsAQM, res.DropsOverflow, res.Marks)
	for _, g := range res.Groups {
		fmt.Printf("# group %s (%s): total=%.3f Mb/s per-flow mean=%.3f Mb/s marks=%d congestion-events=%d retx=%d\n",
			g.Label, g.CC, g.Total()/1e6, g.MeanPerFlow()/1e6, g.Marks, g.CongestionEvents, g.Retransmissions)
	}
	fmt.Printf("# classic prob mean=%.4f p99=%.4f; events=%d\n",
		res.ClassicProb.Mean(), res.ClassicProb.Percentile(99), res.Events)
	if doPlot {
		c := plot.Chart{
			Title:  "queue delay, " + label,
			XLabel: "time [s]", YLabel: "queue delay [ms]",
		}
		c.AddTimeSeries("qdelay", &res.DelaySeries, 1e3)
		c.Render(os.Stdout)
	}
}

// parseRate parses "10M", "2.5G", "400K" or plain bits/s.
func parseRate(s string) (float64, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1e3, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1e6, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1e9, s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad rate %q", s)
	}
	return v * mult, nil
}
