// Command pi2sim runs a single bottleneck scenario and prints its queue
// delay / throughput time series and a summary — a generic driver for
// exploring configurations beyond the paper's fixed experiments.
//
// Example:
//
//	pi2sim -aqm pi2 -link 10M -rtt 100ms -flows 5 -cc reno -dur 100s
//	pi2sim -aqm pi2 -link 40M -rtt 10ms -flows 1 -cc cubic -flows2 1 -cc2 dctcp
//	pi2sim -aqm pi2 -link 40M -reps 8 -jobs 4   # 8 seeds, 4 at a time
//
// With -reps N > 1 the scenario is replicated under N derived seeds (run
// across -jobs workers) and a per-replication summary plus mean ± stddev
// aggregates are printed instead of the single-run report.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"pi2/internal/campaign"
	"pi2/internal/experiments"
	"pi2/internal/plot"
	"pi2/internal/traffic"
)

func main() {
	var (
		aqmName  = flag.String("aqm", "pi2", "AQM: pi2, pie, bare-pie, pi, red, codel, taildrop")
		linkStr  = flag.String("link", "10M", "bottleneck rate in bits/s (suffix K/M/G)")
		rtt      = flag.Duration("rtt", 100*time.Millisecond, "base RTT")
		flows    = flag.Int("flows", 5, "number of flows in the first group")
		cc       = flag.String("cc", "reno", "congestion control of the first group")
		flows2   = flag.Int("flows2", 0, "number of flows in the second group")
		cc2      = flag.String("cc2", "dctcp", "congestion control of the second group")
		udp      = flag.Float64("udp", 0, "additional unresponsive UDP load in bits/s")
		dur      = flag.Duration("dur", 100*time.Second, "simulated duration")
		warm     = flag.Duration("warmup", 0, "stats warm-up (default dur/4)")
		target   = flag.Duration("target", 20*time.Millisecond, "AQM target delay")
		seed     = flag.Int64("seed", 1, "random seed")
		series   = flag.Bool("series", true, "print the 1 s time series")
		sack     = flag.Bool("sack", false, "enable SACK loss recovery on all flows")
		ackEvery = flag.Int("ackevery", 1, "delayed/stretch ACKs: acknowledge every Nth segment")
		buffer   = flag.Int("buffer", 0, "bottleneck buffer in packets (default 40000)")
		doPlot   = flag.Bool("plot", false, "render an ASCII chart of the queue-delay series")
		config   = flag.String("config", "", "load the scenario from a JSON file instead of flags")
		reps     = flag.Int("reps", 1, "replications under derived seeds (aggregate report when > 1)")
		jobs     = flag.Int("jobs", 1, "parallel replications")
	)
	flag.Parse()

	if *config != "" {
		f, err := os.Open(*config)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pi2sim:", err)
			os.Exit(2)
		}
		sc, err := experiments.LoadScenario(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pi2sim:", err)
			os.Exit(2)
		}
		if *reps > 1 {
			replicate(sc, *reps, *jobs, "config:"+*config)
			return
		}
		report(experiments.Run(sc), *series, *doPlot, "config:"+*config, sc.LinkRateBps)
		return
	}
	rate, err := parseRate(*linkStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pi2sim:", err)
		os.Exit(2)
	}
	factory, ok := experiments.FactoryByName(*aqmName, *target)
	if !ok {
		fmt.Fprintf(os.Stderr, "pi2sim: unknown AQM %q\n", *aqmName)
		os.Exit(2)
	}
	if *warm == 0 {
		*warm = *dur / 4
	}

	sc := experiments.Scenario{
		Seed:        *seed,
		LinkRateBps: rate,
		NewAQM:      factory,
		Duration:    *dur,
		WarmUp:      *warm,
	}
	sc.BufferPackets = *buffer
	sc.SACK = *sack
	sc.AckEvery = *ackEvery
	if *flows > 0 {
		sc.Bulk = append(sc.Bulk, traffic.BulkFlowSpec{CC: *cc, Count: *flows, RTT: *rtt, Label: "group1"})
	}
	if *flows2 > 0 {
		sc.Bulk = append(sc.Bulk, traffic.BulkFlowSpec{CC: *cc2, Count: *flows2, RTT: *rtt, Label: "group2"})
	}
	if *udp > 0 {
		sc.UDP = []traffic.UDPSpec{{RateBps: *udp}}
	}

	label := fmt.Sprintf("aqm=%s link=%.0f rtt=%v target=%v dur=%v", *aqmName, rate, *rtt, *target, *dur)
	if *reps > 1 {
		replicate(sc, *reps, *jobs, label)
		return
	}
	report(experiments.Run(sc), *series, *doPlot, label, rate)
}

// replicate runs the scenario under reps derived seeds on a jobs-wide pool
// and prints per-replication summaries plus mean ± stddev aggregates.
func replicate(sc experiments.Scenario, reps, jobs int, label string) {
	base := sc.Seed
	if base == 0 {
		base = 1
	}
	tasks := make([]campaign.Task, reps)
	for i := range tasks {
		i := i
		tasks[i] = campaign.Task{
			Name:      fmt.Sprintf("rep%d", i),
			SeedIndex: i,
			Run: func(tc *campaign.TaskCtx) any {
				rsc := sc
				rsc.Seed = tc.Seed
				rsc.Watch = tc.Watch
				return experiments.Run(rsc)
			},
		}
	}
	recs := campaign.Execute(tasks, campaign.ExecOptions{Jobs: jobs, BaseSeed: base})

	fmt.Printf("# %s reps=%d jobs=%d base_seed=%d\n", label, reps, jobs, base)
	fmt.Println("rep\tseed\tqdelay_mean_ms\tqdelay_p99_ms\tutil\tgoodput_mbps")
	var qMeans, qP99s, utils, goodputs []float64
	for i, rec := range recs {
		res, ok := rec.Result.(*experiments.Result)
		if !ok {
			fmt.Fprintf(os.Stderr, "pi2sim: rep %d failed: %s\n", i, rec.Err)
			continue
		}
		var goodput float64
		for _, g := range res.Groups {
			goodput += g.Total()
		}
		qMeans = append(qMeans, res.Sojourn.Mean()*1e3)
		qP99s = append(qP99s, res.Sojourn.Percentile(99)*1e3)
		utils = append(utils, res.Utilization)
		goodputs = append(goodputs, goodput/1e6)
		fmt.Printf("%d\t%d\t%.2f\t%.2f\t%.3f\t%.3f\n",
			i, rec.Seed, res.Sojourn.Mean()*1e3, res.Sojourn.Percentile(99)*1e3,
			res.Utilization, goodput/1e6)
	}
	m1, s1 := meanStd(qMeans)
	m2, s2 := meanStd(qP99s)
	m3, s3 := meanStd(utils)
	m4, s4 := meanStd(goodputs)
	fmt.Printf("# aggregate over %d reps (mean ± stddev):\n", len(qMeans))
	fmt.Printf("# qdelay_mean=%.2f±%.2f ms  qdelay_p99=%.2f±%.2f ms  util=%.3f±%.3f  goodput=%.3f±%.3f Mb/s\n",
		m1, s1, m2, s2, m3, s3, m4, s4)
}

// meanStd returns the sample mean and (population) standard deviation.
func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}

// report prints the time series, summary block and optional chart.
func report(res *experiments.Result, series, doPlot bool, label string, rateBps float64) {
	if series {
		fmt.Println("time_s\tqdelay_ms\tgoodput_mbps")
		for i := range res.DelaySeries.Values {
			fmt.Printf("%.0f\t%.2f\t%.3f\n",
				res.DelaySeries.Times[i].Seconds(),
				res.DelaySeries.Values[i]*1e3,
				res.GoodputSeries.Values[i]/1e6)
		}
	}
	fmt.Printf("# %s\n", label)
	fmt.Printf("# qdelay: mean=%.2fms p25=%.2fms p99=%.2fms\n",
		res.Sojourn.Mean()*1e3, res.Sojourn.Percentile(25)*1e3, res.Sojourn.Percentile(99)*1e3)
	fmt.Printf("# utilization=%.3f dropsAQM=%d dropsOverflow=%d marks=%d\n",
		res.Utilization, res.DropsAQM, res.DropsOverflow, res.Marks)
	for _, g := range res.Groups {
		fmt.Printf("# group %s (%s): total=%.3f Mb/s per-flow mean=%.3f Mb/s marks=%d congestion-events=%d retx=%d\n",
			g.Label, g.CC, g.Total()/1e6, g.MeanPerFlow()/1e6, g.Marks, g.CongestionEvents, g.Retransmissions)
	}
	fmt.Printf("# classic prob mean=%.4f p99=%.4f; events=%d\n",
		res.ClassicProb.Mean(), res.ClassicProb.Percentile(99), res.Events)
	if doPlot {
		c := plot.Chart{
			Title:  "queue delay, " + label,
			XLabel: "time [s]", YLabel: "queue delay [ms]",
		}
		c.AddTimeSeries("qdelay", &res.DelaySeries, 1e3)
		c.Render(os.Stdout)
	}
}

// parseRate parses "10M", "2.5G", "400K" or plain bits/s.
func parseRate(s string) (float64, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1e3, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1e6, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1e9, s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad rate %q", s)
	}
	return v * mult, nil
}
