// Quickstart: five TCP Reno flows through a PI2-managed 10 Mb/s bottleneck.
//
// This is the smallest complete use of the library: build a simulator, a
// bottleneck link with the PI2 AQM, a handful of flows, run for a minute of
// virtual time, and read the queue-delay statistics. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"pi2/internal/core"
	"pi2/internal/link"
	"pi2/internal/sim"
	"pi2/internal/tcp"
)

func main() {
	// A deterministic simulator: same seed, same run, every time.
	s := sim.New(42)

	// The bottleneck: 10 Mb/s, managed by PI2 with its Table 1 defaults
	// (target 20 ms, T = 32 ms, α = 5/16, β = 50/16 on p′, k = 2).
	dispatch := link.NewDispatcher()
	bottleneck := link.New(s, link.Config{
		RateBps: 10e6,
		AQM:     core.New(core.Config{}, s.RNG()),
	}, dispatch.Deliver)

	// Five long-running Reno flows with a 100 ms base RTT.
	var flows []*tcp.Endpoint
	for id := 1; id <= 5; id++ {
		ep := tcp.New(s, bottleneck, tcp.Config{
			ID:      id,
			CC:      tcp.Reno{},
			BaseRTT: 100 * time.Millisecond,
		})
		dispatch.Register(id, ep.DeliverData)
		ep.Start()
		flows = append(flows, ep)
	}

	// One minute of virtual time.
	s.RunUntil(60 * time.Second)

	fmt.Println("PI2 quickstart: 5 Reno flows, 10 Mb/s bottleneck, 100 ms RTT")
	fmt.Printf("  queue delay: mean %.1f ms, p99 %.1f ms (target 20 ms)\n",
		bottleneck.Sojourn.Mean()*1e3, bottleneck.Sojourn.Percentile(99)*1e3)
	fmt.Printf("  utilization: %.1f %%\n", bottleneck.Utilization()*100)
	fmt.Printf("  AQM drops:   %d of %d packets\n", bottleneck.TotalDrops(), bottleneck.Enqueues())
	for _, f := range flows {
		fmt.Printf("  flow %d: %.2f Mb/s goodput, %d retransmissions\n",
			f.ID(), f.Goodput.RateBps(s.Now())/1e6, f.Retransmissions())
	}
}
