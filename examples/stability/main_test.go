package main

import (
	"strings"
	"testing"
	"time"

	"pi2/internal/fluid"
)

// TestRunSmoke executes the full stability report and checks that every
// section renders: the three Figure 7 curves and both headroom lines.
func TestRunSmoke(t *testing.T) {
	var sb strings.Builder
	run(&sb)
	out := sb.String()

	for _, want := range []string{
		"Bode gain margins over load",
		"reno pie", "reno pi2", "scal pi",
		"squared output (PI2)",
		"direct p (plain PI)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestHeadroomAsymmetry pins the example's point numerically: from the PIE
// base gains, the squared (PI2) loop stays stable past the paper's 2.5x
// gain raise, while plain PI on direct p cannot even sustain the base
// gains across the full load range.
func TestHeadroomAsymmetry(t *testing.T) {
	base := fluid.LoopParams{
		AlphaHz: 0.125, BetaHz: 1.25,
		T: 32 * time.Millisecond, R0: 100 * time.Millisecond,
	}
	pi2 := fluid.MaxStableGainScale(base, fluid.RenoPI2,
		[]float64{0.001, 0.01, 0.1, 0.5, 1}, 0.5, 32)
	if pi2 < 2.5 {
		t.Errorf("PI2 headroom %.2fx, want >= the paper's 2.5x", pi2)
	}
	direct := fluid.MaxStableGainScale(base, fluid.RenoPIE,
		[]float64{1e-5, 1e-4, 1e-3, 0.01, 0.1}, 0.01, 32)
	if direct >= pi2 {
		t.Errorf("direct-p headroom %.2fx not below PI2's %.2fx", direct, pi2)
	}
}
