// Stability: the Appendix B fluid model as an interactive report — why the
// squaring linearizes the loop.
//
// It prints the Figure 7 Bode gain margins for the three loop transfer
// functions, then computes how far the gains could be raised before any
// operating point goes unstable (the paper raised them 2.5x; the analysis
// shows how much headroom that choice left). Run with:
//
//	go run ./examples/stability
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"pi2/internal/fluid"
	"pi2/internal/plot"
)

func main() {
	run(os.Stdout)
}

// run produces the whole report on w (separated from main so the smoke
// test can execute the example without spawning a process).
func run(w io.Writer) {
	const (
		T  = 32 * time.Millisecond
		R0 = 100 * time.Millisecond
	)

	fmt.Fprintln(w, "Bode gain margins over load (R0 = 100 ms, T = 32 ms)")
	pts := fluid.Figure7(25)
	chart := plot.Chart{
		Title:  "gain margin [dB] vs p' (log x rendered linearly by index)",
		XLabel: "index over p' in [0.001, 1] (log-spaced)",
		YLabel: "gain margin [dB]",
	}
	for _, line := range []string{"reno pie", "reno pi2", "scal pi"} {
		x := make([]float64, len(pts))
		y := make([]float64, len(pts))
		for i, mp := range pts {
			x[i] = float64(i)
			y[i] = mp.ByLine[line].GainMarginDB
		}
		chart.Add(line, x, y)
	}
	chart.Render(w)

	fmt.Fprintln(w, "\nGain headroom from the PIE base gains (0.125, 1.25):")
	base := fluid.LoopParams{AlphaHz: 0.125, BetaHz: 1.25, T: T, R0: R0}
	pPrimes := []float64{0.001, 0.01, 0.1, 0.5, 1}
	m := fluid.MaxStableGainScale(base, fluid.RenoPI2, pPrimes, 0.5, 32)
	fmt.Fprintf(w, "  squared output (PI2): stable up to %.1fx  (the paper uses 2.5x)\n", m)
	pDirect := []float64{1e-5, 1e-4, 1e-3, 0.01, 0.1}
	md := fluid.MaxStableGainScale(base, fluid.RenoPIE, pDirect, 0.01, 32)
	fmt.Fprintf(w, "  direct p (plain PI):  stable up to %.2fx over the full load range\n", md)
	fmt.Fprintln(w, "\nThe squaring flattens the gain margin across load, which is exactly")
	fmt.Fprintln(w, "what lets PI2 run 2.5x hotter than PIE without a tuning table.")
}
