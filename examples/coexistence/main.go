// Coexistence: a Classic (Cubic) flow and a Scalable (DCTCP) flow share one
// queue — first under PIE (DCTCP starves Cubic), then under the coupled
// PI2/PI AQM of Figure 9 (rates balance).
//
// This is the paper's second contribution in miniature: the squared Classic
// signal p′² against the linear Scalable signal k·p′ counterbalances
// DCTCP's more aggressive window response. Run with:
//
//	go run ./examples/coexistence
package main

import (
	"fmt"
	"time"

	"pi2/internal/experiments"
	"pi2/internal/traffic"
)

func main() {
	const (
		linkMbps = 40.0
		rtt      = 10 * time.Millisecond
	)
	fmt.Printf("1 Cubic vs 1 DCTCP flow, %g Mb/s bottleneck, %v RTT\n\n", linkMbps, rtt)
	fmt.Println("aqm\tcubic_mbps\tdctcp_mbps\tratio\tqdelay_mean_ms")

	for _, tc := range []struct {
		name    string
		factory experiments.AQMFactory
	}{
		{"pie", experiments.PIEFactory(20 * time.Millisecond)},
		{"pi2", experiments.PI2Factory(20 * time.Millisecond)},
	} {
		res := experiments.Run(experiments.Scenario{
			Seed:        7,
			LinkRateBps: linkMbps * 1e6,
			NewAQM:      tc.factory,
			Bulk: []traffic.BulkFlowSpec{
				{CC: "cubic", Count: 1, RTT: rtt},
				{CC: "dctcp", Count: 1, RTT: rtt},
			},
			Duration: 60 * time.Second,
			WarmUp:   20 * time.Second,
		})
		cubic := res.Groups[0].MeanPerFlow()
		dctcp := res.Groups[1].MeanPerFlow()
		ratio := 0.0
		if dctcp > 0 {
			ratio = cubic / dctcp
		}
		fmt.Printf("%s\t%.2f\t%.2f\t%.3f\t%.1f\n",
			tc.name, cubic/1e6, dctcp/1e6, ratio, res.Sojourn.Mean()*1e3)
	}

	fmt.Println("\nUnder PIE both flows see the same signal, so DCTCP dominates;")
	fmt.Println("under PI2 the Classic flow's signal is squared and coexistence holds.")
}
