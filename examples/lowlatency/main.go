// Lowlatency: how far can the target delay be pushed down?
//
// The paper's Figure 14 compares PIE and PI2 at 5 ms and 20 ms targets.
// This example sweeps the target from 2 ms to 50 ms under a heavy load
// (20 Reno flows at 10 Mb/s, RTT 100 ms) and prints, for each AQM, the
// achieved delay percentiles and the utilization price paid. Run with:
//
//	go run ./examples/lowlatency
package main

import (
	"fmt"
	"time"

	"pi2/internal/experiments"
	"pi2/internal/traffic"
)

func main() {
	targets := []time.Duration{
		2 * time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond,
		20 * time.Millisecond, 50 * time.Millisecond,
	}
	fmt.Println("Target-delay sweep: 20 Reno flows, 10 Mb/s, RTT 100 ms")
	fmt.Println("target_ms\taqm\tqdelay_p50_ms\tqdelay_p99_ms\tutilization")
	for _, target := range targets {
		for _, name := range []string{"pie", "pi2"} {
			factory, _ := experiments.FactoryByName(name, target)
			res := experiments.Run(experiments.Scenario{
				Seed:        11,
				LinkRateBps: 10e6,
				NewAQM:      factory,
				Bulk: []traffic.BulkFlowSpec{
					{CC: "reno", Count: 20, RTT: 100 * time.Millisecond},
				},
				Duration: 80 * time.Second,
				WarmUp:   20 * time.Second,
			})
			fmt.Printf("%.0f\t%s\t%.2f\t%.2f\t%.3f\n",
				float64(target.Milliseconds()), name,
				res.Sojourn.Percentile(50)*1e3,
				res.Sojourn.Percentile(99)*1e3,
				res.Utilization)
		}
	}
	fmt.Println("\nLower targets trade utilization for latency (the paper's trilemma);")
	fmt.Println("PI2 holds the target at least as tightly as PIE without its heuristics.")
}
