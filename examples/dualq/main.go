// Dualq: the DualPI2 dual-queue extension — the deployment the paper names
// as its end goal (Section 7; later RFC 9332).
//
// A DCTCP flow and a Cubic flow share a 40 Mb/s bottleneck. In the paper's
// single-queue arrangement the Scalable flow must suffer the Classic
// flow's ~20 ms queue. With DualPI2 the L queue keeps Scalable traffic at
// sub-millisecond delay while the coupled controller still balances the
// rates. Run with:
//
//	go run ./examples/dualq
package main

import (
	"fmt"
	"time"

	"pi2/internal/core"
	"pi2/internal/link"
	"pi2/internal/sim"
	"pi2/internal/tcp"
)

func main() {
	s := sim.New(3)
	dispatch := link.NewDispatcher()
	dual := core.NewDualLink(s, 40e6, core.DualConfig{}, dispatch.Deliver)

	newFlow := func(id int, cc tcp.CongestionControl, mode tcp.ECNMode) *tcp.Endpoint {
		ep := tcp.NewWithEnqueuer(s, dual.Enqueue, tcp.Config{
			ID: id, CC: cc, ECN: mode, BaseRTT: 10 * time.Millisecond,
		})
		dispatch.Register(id, ep.DeliverData)
		ep.Start()
		return ep
	}
	cubic := newFlow(1, &tcp.Cubic{}, tcp.ECNOff)
	dctcp := newFlow(2, &tcp.DCTCP{}, tcp.ECNScalable)

	s.RunUntil(60 * time.Second)
	now := s.Now()

	lMarks, cMarks := dual.Marks()
	fmt.Println("DualPI2: 1 Cubic (C queue) + 1 DCTCP (L queue), 40 Mb/s, RTT 10 ms")
	fmt.Printf("  cubic: %.2f Mb/s   dctcp: %.2f Mb/s   ratio %.2f\n",
		cubic.Goodput.RateBps(now)/1e6, dctcp.Goodput.RateBps(now)/1e6,
		cubic.Goodput.RateBps(now)/dctcp.Goodput.RateBps(now))
	fmt.Printf("  L-queue delay: mean %.3f ms, p99 %.3f ms\n",
		dual.LSojourn.Mean()*1e3, dual.LSojourn.Percentile(99)*1e3)
	fmt.Printf("  C-queue delay: mean %.3f ms, p99 %.3f ms\n",
		dual.CSojourn.Mean()*1e3, dual.CSojourn.Percentile(99)*1e3)
	fmt.Printf("  marks: L=%d C=%d drops=%d utilization=%.1f %%\n",
		lMarks, cMarks, dual.Drops(), dual.Utilization()*100)
	fmt.Println("\nThe Scalable flow keeps its throughput share at a fraction of the")
	fmt.Println("Classic queuing delay — the step the single-queue paper points toward.")
}
