// Package pi2bench holds the benchmark harness that regenerates every table
// and figure of the paper's evaluation (one testing.B benchmark per
// artifact), the ablation benches for the design choices called out in
// DESIGN.md, and micro-benchmarks of the per-packet decision paths.
//
// The figure benchmarks run the corresponding experiment driver in quick
// mode (durations scaled ~5×) and attach the figure's headline numbers as
// custom metrics, so `go test -bench=.` doubles as a compact reproduction
// report. The full-length tables come from `go run ./cmd/pi2bench all`.
package pi2bench

import (
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"pi2/internal/aqm"
	"pi2/internal/campaign"
	"pi2/internal/core"
	"pi2/internal/experiments"
	"pi2/internal/ff"
	"pi2/internal/fluid"
	"pi2/internal/link"
	"pi2/internal/packet"
	"pi2/internal/sim"
	"pi2/internal/stats"
	"pi2/internal/tcp"
	"pi2/internal/traffic"
)

func quickOpts(i int) experiments.Options {
	// Vary the seed per iteration so repeated benchmark iterations are
	// not byte-identical cached work.
	return experiments.Options{Quick: true, Seed: int64(i + 1)}
}

// --- analytic figures (Appendix B fluid model) ---

// BenchmarkFig4Bode regenerates the Figure 4 Bode margins (PIE tune
// variants over the full load range).
func BenchmarkFig4Bode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := fluid.Figure4(13)
		if len(pts) != 13 {
			b.Fatal("points")
		}
	}
}

// BenchmarkFig5Tune regenerates the Figure 5 tune-vs-√(2p) table.
func BenchmarkFig5Tune(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(fluid.Figure5(49)) != 49 {
			b.Fatal("points")
		}
	}
}

// BenchmarkFig7Bode regenerates the Figure 7 margins (reno pie / reno pi2 /
// scal pi) and reports PI2's gain-margin flatness across the sweep.
func BenchmarkFig7Bode(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		pts := fluid.Figure7(13)
		lo, hi := 1e9, -1e9
		for _, mp := range pts {
			g := mp.ByLine["reno pi2"].GainMarginDB
			if g < lo {
				lo = g
			}
			if g > hi {
				hi = g
			}
		}
		spread = hi - lo
	}
	b.ReportMetric(spread, "gm-spread-dB")
}

// --- simulation figures ---

// BenchmarkFig6VaryingIntensity runs the PI vs PI2 varying-intensity
// comparison (Figure 6) and reports both mean queue delays.
func BenchmarkFig6VaryingIntensity(b *testing.B) {
	var r *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig6(quickOpts(i))
	}
	b.ReportMetric(r.PI.Sojourn.Mean()*1e3, "pi-meanQ-ms")
	b.ReportMetric(r.PI2.Sojourn.Mean()*1e3, "pi2-meanQ-ms")
}

// BenchmarkFig11TrafficLoads runs the three-load PIE vs PI2 comparison.
func BenchmarkFig11TrafficLoads(b *testing.B) {
	var r *experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig11(quickOpts(i))
	}
	b.ReportMetric(r.Runs["50 TCP"]["pi2"].Sojourn.Mean()*1e3, "pi2-50tcp-meanQ-ms")
	b.ReportMetric(r.Runs["50 TCP"]["pie"].Sojourn.Mean()*1e3, "pie-50tcp-meanQ-ms")
}

// BenchmarkFig12VaryingCapacity runs the capacity-step test and reports the
// post-drop queue peaks (the paper's 510 ms vs 250 ms comparison).
func BenchmarkFig12VaryingCapacity(b *testing.B) {
	var r *experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig12(quickOpts(i))
	}
	b.ReportMetric(r.PeakPIEms, "pie-peak-ms")
	b.ReportMetric(r.PeakPI2ms, "pi2-peak-ms")
}

// BenchmarkFig13VaryingIntensity runs the 10 Mb/s staged-flows comparison.
func BenchmarkFig13VaryingIntensity(b *testing.B) {
	var r *experiments.Fig13Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig13(quickOpts(i))
	}
	b.ReportMetric(r.PI2.DelaySeries.Max()*1e3, "pi2-maxQ-ms")
}

// BenchmarkFig14DelayCDF runs the 5/20 ms target CDF comparison and reports
// PI2's P99 at the 5 ms target under 20 flows.
func BenchmarkFig14DelayCDF(b *testing.B) {
	var r *experiments.Fig14Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig14(quickOpts(i))
	}
	for _, c := range r.Cases {
		if c.Target == 5*time.Millisecond && c.Load == "20 TCP" {
			b.ReportMetric(c.PI2.Sojourn.Percentile(99)*1e3, "pi2-p99-ms")
		}
	}
}

// BenchmarkFig15RateBalance runs the headline coexistence cell (40 Mb/s,
// 10 ms, Cubic vs DCTCP) under both AQMs and reports the two ratios.
func BenchmarkFig15RateBalance(b *testing.B) {
	var pie, pi2 experiments.SweepPoint
	for i := 0; i < b.N; i++ {
		pts := experiments.CoexistenceSweep(quickOpts(i))
		for _, p := range pts {
			if p.LinkMbps == 40 && p.RTT == 10*time.Millisecond && p.Pair == "dctcp" {
				if p.AQM == "pie" {
					pie = p
				} else {
					pi2 = p
				}
			}
		}
	}
	b.ReportMetric(pie.Ratio, "pie-ratio")
	b.ReportMetric(pi2.Ratio, "pi2-ratio")
}

// BenchmarkFig16QueueDelay reports the same sweep's queue-delay metric.
func BenchmarkFig16QueueDelay(b *testing.B) {
	var pt experiments.SweepPoint
	for i := 0; i < b.N; i++ {
		pt = sweepCell(quickOpts(i), "pi2", "dctcp")
	}
	b.ReportMetric(pt.QMean*1e3, "qmean-ms")
	b.ReportMetric(pt.QP99*1e3, "qp99-ms")
}

// BenchmarkFig17Probability reports the coupled probabilities of the
// headline cell (the paper's p_s = 2·√p_c relation).
func BenchmarkFig17Probability(b *testing.B) {
	var pt experiments.SweepPoint
	for i := 0; i < b.N; i++ {
		pt = sweepCell(quickOpts(i), "pi2", "dctcp")
	}
	b.ReportMetric(pt.ProbA.Mean*100, "classic-prob-pct")
	b.ReportMetric(pt.ProbB.Mean*100, "scalable-prob-pct")
}

// BenchmarkFig18Utilization reports the utilization quantiles.
func BenchmarkFig18Utilization(b *testing.B) {
	var pt experiments.SweepPoint
	for i := 0; i < b.N; i++ {
		pt = sweepCell(quickOpts(i), "pi2", "dctcp")
	}
	b.ReportMetric(pt.Util.Mean*100, "util-mean-pct")
	b.ReportMetric(pt.Util.P1*100, "util-p1-pct")
}

func sweepCell(o experiments.Options, aqmName, pair string) experiments.SweepPoint {
	pts := experiments.CoexistenceSweep(o)
	for _, p := range pts {
		if p.LinkMbps == 40 && p.RTT == 10*time.Millisecond && p.AQM == aqmName && p.Pair == pair {
			return p
		}
	}
	panic("cell not found")
}

// BenchmarkFig19FlowCombos runs the flow-count combination grid and reports
// the worst per-flow imbalance for PI2+DCTCP.
func BenchmarkFig19FlowCombos(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 1
		for _, p := range experiments.FlowCombos(quickOpts(i), nil) {
			if p.AQM != "pi2" || p.Pair != "dctcp" || p.NA == 0 || p.NB == 0 {
				continue
			}
			r := p.RatioPerFlow
			if r < 1 && r > 0 {
				r = 1 / r
			}
			if r > worst {
				worst = r
			}
		}
	}
	b.ReportMetric(worst, "worst-imbalance")
}

// BenchmarkFig20NormalizedRates reports the P1 normalized rate across the
// combos (how far the slowest flow falls below fair share).
func BenchmarkFig20NormalizedRates(b *testing.B) {
	var p1 float64
	for i := 0; i < b.N; i++ {
		p1 = 1e9
		for _, p := range experiments.FlowCombos(quickOpts(i), nil) {
			if p.AQM != "pi2" || p.Pair != "dctcp" || p.NA == 0 || p.NB == 0 {
				continue
			}
			if v := p.NormB.P1; v > 0 && v < p1 {
				p1 = v
			}
		}
	}
	b.ReportMetric(p1, "min-norm-rate")
}

// BenchmarkTable1Defaults renders the Table 1 parameter table.
func BenchmarkTable1Defaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.PrintTable1(io.Discard)
	}
}

// BenchmarkFCTWorkload runs the web-like short-flow comparison (the
// Section 6 statement that completion times match across PIE/bare-PIE/PI2).
func BenchmarkFCTWorkload(b *testing.B) {
	var r *experiments.FCTResult
	for i := 0; i < b.N; i++ {
		r = experiments.FigFCT(quickOpts(i))
	}
	b.ReportMetric(r.ByAQM["pi2"].Mean*1e3, "pi2-fct-ms")
	b.ReportMetric(r.ByAQM["pie"].Mean*1e3, "pie-fct-ms")
}

// --- ablation benches (design choices from DESIGN.md) ---

// BenchmarkSquareVsDoubleRand ablates the two squaring implementations of
// Section 4 / Figure 8: multiplying p′·p′ (software form) versus comparing
// two random draws (hardware form).
func BenchmarkSquareVsDoubleRand(b *testing.B) {
	q := fakeQueueInfo{}
	for _, tc := range []struct {
		name string
		mult bool
	}{{"double-rand", false}, {"multiply", true}} {
		b.Run(tc.name, func(b *testing.B) {
			q2 := core.New(core.Config{UseMultiply: tc.mult}, rand.New(rand.NewSource(1)))
			warmPI2(q2, 200*time.Millisecond)
			p := packet.NewData(1, 0, packet.MSS, packet.NotECT)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = q2.Enqueue(p, q, 0)
			}
		})
	}
}

// BenchmarkAblationPIEHeuristics compares full PIE against bare-PIE on the
// same workload; the paper saw no difference in any experiment.
func BenchmarkAblationPIEHeuristics(b *testing.B) {
	for _, name := range []string{"pie", "bare-pie"} {
		name := name
		b.Run(name, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				factory, _ := experiments.FactoryByName(name, 20*time.Millisecond)
				res := experiments.Run(experiments.Scenario{
					Seed:        int64(i + 1),
					LinkRateBps: 10e6,
					NewAQM:      factory,
					Bulk: []traffic.BulkFlowSpec{
						{CC: "reno", Count: 5, RTT: 100 * time.Millisecond},
					},
					Duration: 30 * time.Second,
					WarmUp:   10 * time.Second,
				})
				mean = res.Sojourn.Mean()
			}
			b.ReportMetric(mean*1e3, "meanQ-ms")
		})
	}
}

// BenchmarkAblationDelayEstimator compares PI2 with direct sojourn
// timestamps (its native design) against Linux-PIE-style departure-rate
// estimation.
func BenchmarkAblationDelayEstimator(b *testing.B) {
	for _, tc := range []struct {
		name string
		est  aqm.DelayEstimator
	}{
		{"sojourn", aqm.EstimateBySojourn},
		{"rate", aqm.EstimateByRate},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				res := experiments.Run(experiments.Scenario{
					Seed:        int64(i + 1),
					LinkRateBps: 10e6,
					NewAQM: func(rng *rand.Rand) aqm.AQM {
						return core.New(core.Config{Estimator: tc.est}, rng)
					},
					Bulk: []traffic.BulkFlowSpec{
						{CC: "reno", Count: 5, RTT: 100 * time.Millisecond},
					},
					Duration: 30 * time.Second,
					WarmUp:   10 * time.Second,
				})
				mean = res.Sojourn.Mean()
			}
			b.ReportMetric(mean*1e3, "meanQ-ms")
		})
	}
}

// BenchmarkAblationCouplingK compares the analytic k = 1.19 of equation
// (14) against the empirically validated k = 2 on the headline coexistence
// cell.
func BenchmarkAblationCouplingK(b *testing.B) {
	for _, tc := range []struct {
		name string
		k    float64
	}{{"k=1.19", 1.19}, {"k=2", 2}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				res := experiments.Run(experiments.Scenario{
					Seed:        int64(i + 1),
					LinkRateBps: 40e6,
					NewAQM: func(rng *rand.Rand) aqm.AQM {
						return core.New(core.Config{K: tc.k}, rng)
					},
					Bulk: []traffic.BulkFlowSpec{
						{CC: "cubic", Count: 1, RTT: 10 * time.Millisecond},
						{CC: "dctcp", Count: 1, RTT: 10 * time.Millisecond},
					},
					Duration: 40 * time.Second,
					WarmUp:   15 * time.Second,
				})
				if d := res.Groups[1].MeanPerFlow(); d > 0 {
					ratio = res.Groups[0].MeanPerFlow() / d
				}
			}
			b.ReportMetric(ratio, "cubic/dctcp")
		})
	}
}

// --- micro-benchmarks of the hot paths ---

type fakeQueueInfo struct{}

func (fakeQueueInfo) BacklogBytes() int                       { return 30000 }
func (fakeQueueInfo) BacklogPackets() int                     { return 20 }
func (fakeQueueInfo) HeadSojourn(time.Duration) time.Duration { return 15 * time.Millisecond }
func (fakeQueueInfo) CapacityBps() float64                    { return 10e6 }

// warmPI2 drives the controller to a nonzero operating point.
func warmPI2(q2 *core.PI2, sojourn time.Duration) {
	var qi aqm.QueueInfo = warmQueue{sojourn: sojourn}
	for i := 0; i < 100; i++ {
		q2.Update(qi, time.Duration(i)*32*time.Millisecond)
	}
}

type warmQueue struct{ sojourn time.Duration }

func (w warmQueue) BacklogBytes() int                       { return 100000 }
func (w warmQueue) BacklogPackets() int                     { return 67 }
func (w warmQueue) HeadSojourn(time.Duration) time.Duration { return w.sojourn }
func (w warmQueue) CapacityBps() float64                    { return 10e6 }

// BenchmarkPI2EnqueueDecision measures the per-packet cost of PI2's
// decision (the paper's "less computationally expensive" claim vs PIE).
func BenchmarkPI2EnqueueDecision(b *testing.B) {
	q2 := core.New(core.Config{}, rand.New(rand.NewSource(1)))
	warmPI2(q2, 30*time.Millisecond)
	p := packet.NewData(1, 0, packet.MSS, packet.NotECT)
	q := fakeQueueInfo{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = q2.Enqueue(p, q, 0)
	}
}

// BenchmarkPIEEnqueueDecision measures PIE's drop_early path with all
// heuristics active and the controller warmed past its burst allowance
// (a cold PIE short-circuits to accept, which would flatter it).
func BenchmarkPIEEnqueueDecision(b *testing.B) {
	cfg := aqm.DefaultPIEConfig()
	// Measure the decision with a live probability: sojourn-based delay
	// (the rate estimator has no dequeue feed in a micro-bench, which
	// would leave p at 0 and short-circuit the decision).
	cfg.Estimator = aqm.EstimateBySojourn
	pe := aqm.NewPIE(cfg, rand.New(rand.NewSource(1)))
	var qi aqm.QueueInfo = warmQueue{sojourn: 30 * time.Millisecond}
	for i := 0; i < 100; i++ {
		pe.Update(qi, time.Duration(i)*32*time.Millisecond)
	}
	p := packet.NewData(1, 0, packet.MSS, packet.NotECT)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pe.Enqueue(p, qi, 0)
	}
}

// BenchmarkPI2Update measures the periodic control-law update.
func BenchmarkPI2Update(b *testing.B) {
	q2 := core.New(core.Config{}, rand.New(rand.NewSource(1)))
	var qi aqm.QueueInfo = warmQueue{sojourn: 25 * time.Millisecond}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q2.Update(qi, time.Duration(i)*32*time.Millisecond)
	}
}

// BenchmarkPIEUpdate measures PIE's update with auto-tune and caps.
func BenchmarkPIEUpdate(b *testing.B) {
	cfg := aqm.DefaultPIEConfig()
	cfg.Estimator = aqm.EstimateBySojourn
	pe := aqm.NewPIE(cfg, rand.New(rand.NewSource(1)))
	var qi aqm.QueueInfo = warmQueue{sojourn: 25 * time.Millisecond}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pe.Update(qi, time.Duration(i)*32*time.Millisecond)
	}
}

// BenchmarkSimulatorEventLoop measures raw event throughput of the engine.
func BenchmarkSimulatorEventLoop(b *testing.B) {
	s := sim.New(1)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			s.After(time.Microsecond, tick)
		}
	}
	s.After(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	s.Run()
}

// BenchmarkLinkPacketPath measures the full enqueue→serialize→deliver path
// with the pooled packet lifecycle (the deliver callback is the terminal
// owner and recycles each packet).
func BenchmarkLinkPacketPath(b *testing.B) {
	s := sim.New(1)
	pool := s.PacketPool()
	delivered := 0
	l := link.New(s, link.Config{RateBps: 1e12}, func(p *packet.Packet) {
		delivered++
		pool.Release(p)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Enqueue(pool.NewData(1, int64(i), packet.MSS, packet.NotECT))
		if i%64 == 0 {
			s.RunUntil(s.Now() + time.Microsecond)
		}
	}
	s.Run()
	if delivered == 0 {
		b.Fatal("nothing delivered")
	}
}

// benchNop is package-level so scheduling it captures nothing.
func benchNop() {}

// BenchmarkSchedulerChurn pins the slab scheduler's zero-alloc budget on the
// schedule/cancel/fire mix the transports generate: each op schedules two
// timers, cancels one (generation-checked lazy deletion) and fires the other.
func BenchmarkSchedulerChurn(b *testing.B) {
	s := sim.New(1)
	// Warm the slab and free list past the working set.
	for i := 0; i < 64; i++ {
		s.After(time.Duration(i)*time.Microsecond, benchNop)
	}
	s.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keep := s.After(time.Microsecond, benchNop)
		cancel := s.After(2*time.Microsecond, benchNop)
		cancel.Stop()
		_ = keep
		s.Run()
	}
}

// BenchmarkPacketRecycle pins the packet free list's zero-alloc budget on a
// steady-state get→release cycle (one data + one ACK per op, as a segment
// exchange produces).
func BenchmarkPacketRecycle(b *testing.B) {
	s := sim.New(1)
	pool := s.PacketPool()
	// Seed the free list.
	pool.Release(pool.NewData(1, 0, packet.MSS, packet.ECT0))
	pool.Release(pool.NewAck(1, 0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := pool.NewData(1, int64(i), packet.MSS, packet.ECT0)
		a := pool.NewAck(1, int64(i))
		pool.Release(d)
		pool.Release(a)
	}
}

// BenchmarkEndToEndSimSecond measures how fast the full stack simulates one
// virtual second of the Figure 11a scenario (5 Reno flows at 10 Mb/s).
func BenchmarkEndToEndSimSecond(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sim.New(int64(i + 1))
		d := link.NewDispatcher()
		l := link.New(s, link.Config{
			RateBps: 10e6,
			AQM:     core.New(core.Config{}, s.RNG()),
		}, d.Deliver)
		for id := 1; id <= 5; id++ {
			ep := tcp.New(s, l, tcp.Config{ID: id, CC: tcp.Reno{}, BaseRTT: 100 * time.Millisecond})
			d.Register(id, ep.DeliverData)
			ep.Start()
		}
		s.RunUntil(time.Second)
	}
}

// BenchmarkManyFlows measures one virtual second of the heavy tier's
// 1000-flow cell (even reno/cubic/dctcp mix, fair share 2 Mb/s per flow,
// PI2 bottleneck, constant-memory histogram collector). Setup and a warm-up
// second run outside the timer, so allocs/op and bytes/op capture the
// steady-state per-sim-second cost — the budget BENCH_hotpath.json gates.
func BenchmarkManyFlows(b *testing.B) {
	const flows = 1000
	s := sim.New(1)
	d := link.NewDispatcher()
	l := link.New(s, link.Config{
		RateBps: 2e6 * flows,
		AQM:     core.New(core.Config{}, s.RNG()),
		Sojourn: stats.NewDelayHistogram(),
	}, d.Deliver)
	for id := 1; id <= flows; id++ {
		var cc tcp.CongestionControl
		mode := tcp.ECNOff
		switch id % 3 {
		case 0:
			cc = tcp.Reno{}
		case 1:
			cc = &tcp.Cubic{}
		case 2:
			cc = &tcp.DCTCP{}
			mode = tcp.ECNScalable
		}
		ep := tcp.New(s, l, tcp.Config{ID: id, CC: cc, ECN: mode, BaseRTT: 10 * time.Millisecond})
		d.Register(id, ep.DeliverData)
		ep.Start()
	}
	s.RunUntil(time.Second) // warm up: slow start, queue fill, pool growth
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunUntil(time.Duration(i+2) * time.Second)
	}
	b.StopTimer()
	b.ReportMetric(float64(s.Processed())/float64(b.N), "events/op")
}

// BenchmarkShardedManyFlows is the sharded twin of BenchmarkManyFlows: the
// same 1000-flow PI2 cell partitioned across 3 endpoint domains plus a link
// domain on the conservative-PDES coordinator (10 ms RTT splits into 5 ms
// wires; lookahead 5 ms). One op is one virtual second after warm-up. On a
// single core this pays the window/merge overhead; on a multi-core runner
// the domains execute in parallel and ns/op drops below BenchmarkManyFlows
// (the ISSUE-6 target: ≥3x on 8 cores at the 5000-flow scale).
func BenchmarkShardedManyFlows(b *testing.B) {
	const (
		flows   = 1000
		domains = 4 // one link domain + three endpoint domains
		oneWay  = 5 * time.Millisecond
	)
	co := sim.NewCoordinator(1, domains, oneWay)
	linkDom := co.Domain(0)
	type route struct {
		dom  int
		hand func(*packet.Packet)
	}
	routes := make([]route, flows+1)
	l := link.New(linkDom.Sim(), link.Config{
		RateBps: 2e6 * flows,
		AQM:     core.New(core.Config{}, linkDom.Sim().RNG()),
		Sojourn: stats.NewDelayHistogram(),
	}, func(p *packet.Packet) {
		r := routes[p.FlowID]
		linkDom.Send(r.dom, oneWay, p, r.hand)
	})
	linkEnq := l.Enqueue // hoisted: a per-Send method value would allocate
	for id := 1; id <= flows; id++ {
		var cc tcp.CongestionControl
		mode := tcp.ECNOff
		switch id % 3 {
		case 0:
			cc = tcp.Reno{}
		case 1:
			cc = &tcp.Cubic{}
		case 2:
			cc = &tcp.DCTCP{}
			mode = tcp.ECNScalable
		}
		dom := co.Domain(1 + id%(domains-1))
		enq := func(p *packet.Packet) { dom.Send(0, oneWay, p, linkEnq) }
		ep := tcp.NewWithEnqueuer(dom.Sim(), enq, tcp.Config{
			ID: id, CC: cc, ECN: mode, BaseRTT: 10 * time.Millisecond,
			SplitPropagation: true,
		})
		routes[id] = route{dom: dom.ID(), hand: ep.DeliverData}
		ep.Start()
	}
	co.RunUntil(time.Second) // warm up: slow start, queue fill, pool growth
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		co.RunUntil(time.Duration(i+2) * time.Second)
	}
	b.StopTimer()
	b.ReportMetric(float64(co.Processed())/float64(b.N), "events/op")
	if msg := l.Audit().Err("bottleneck link"); msg != "" {
		b.Fatal(msg)
	}
}

// BenchmarkCoordinatorOverhead pins the shards=1 degeneracy: a one-domain
// coordinator must add nothing to the raw event loop (no goroutines, no
// windows — RunUntil delegates straight to the slab scheduler), so its
// ns/op and allocs/op budgets match BenchmarkSimulatorEventLoop's.
func BenchmarkCoordinatorOverhead(b *testing.B) {
	co := sim.NewCoordinator(1, 1, 0)
	s := co.Domain(0).Sim()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			s.After(time.Microsecond, tick)
		}
	}
	s.After(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	co.RunUntil(time.Duration(b.N+1) * time.Microsecond)
}

// BenchmarkAblationSACK compares NewReno and SACK recovery for a Classic
// flow sharing a PI2 queue with DCTCP — loss-recovery efficiency is one of
// the two reasons the measured coexistence ratio sits below 1 (see
// EXPERIMENTS.md deviation 3).
func BenchmarkAblationSACK(b *testing.B) {
	for _, tc := range []struct {
		name string
		sack bool
	}{{"newreno", false}, {"sack", true}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				s := sim.New(int64(i + 1))
				d := link.NewDispatcher()
				l := link.New(s, link.Config{
					RateBps: 40e6,
					AQM:     core.New(core.Config{}, s.RNG()),
				}, d.Deliver)
				cubic := tcp.New(s, l, tcp.Config{
					ID: 1, CC: &tcp.Cubic{}, BaseRTT: 10 * time.Millisecond, SACK: tc.sack,
				})
				dctcp := tcp.New(s, l, tcp.Config{
					ID: 2, CC: &tcp.DCTCP{}, ECN: tcp.ECNScalable, BaseRTT: 10 * time.Millisecond,
				})
				d.Register(1, cubic.DeliverData)
				d.Register(2, dctcp.DeliverData)
				cubic.Start()
				dctcp.Start()
				s.RunUntil(15 * time.Second)
				cubic.Goodput.Reset(s.Now())
				dctcp.Goodput.Reset(s.Now())
				s.RunUntil(45 * time.Second)
				if r := dctcp.Goodput.RateBps(s.Now()); r > 0 {
					ratio = cubic.Goodput.RateBps(s.Now()) / r
				}
			}
			b.ReportMetric(ratio, "cubic/dctcp")
		})
	}
}

// BenchmarkAblationDelayedAcks compares per-packet ACKs against stretch
// ACKs (every 2nd/4th segment) on the Figure 11a load: testbed stacks ack
// every other segment, which halves the Reno growth rate and slightly
// lowers the steady-state window constant.
func BenchmarkAblationDelayedAcks(b *testing.B) {
	for _, every := range []int{1, 2, 4} {
		every := every
		b.Run(fmt.Sprintf("ackevery=%d", every), func(b *testing.B) {
			var meanQ float64
			for i := 0; i < b.N; i++ {
				s := sim.New(int64(i + 1))
				d := link.NewDispatcher()
				l := link.New(s, link.Config{
					RateBps: 10e6,
					AQM:     core.New(core.Config{}, s.RNG()),
				}, d.Deliver)
				for id := 1; id <= 5; id++ {
					ep := tcp.New(s, l, tcp.Config{
						ID: id, CC: tcp.Reno{}, BaseRTT: 100 * time.Millisecond,
						AckEvery: every,
					})
					d.Register(id, ep.DeliverData)
					ep.Start()
				}
				s.RunUntil(30 * time.Second)
				meanQ = l.Sojourn.Mean()
			}
			b.ReportMetric(meanQ*1e3, "meanQ-ms")
		})
	}
}

// BenchmarkAblationHyStart measures slow-start overshoot with and without
// the HyStart exit for a single Cubic flow into a PI2 queue.
func BenchmarkAblationHyStart(b *testing.B) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"hystart", false}, {"classic-ss", true}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var peak float64
			for i := 0; i < b.N; i++ {
				s := sim.New(int64(i + 1))
				d := link.NewDispatcher()
				l := link.New(s, link.Config{
					RateBps: 40e6,
					AQM:     core.New(core.Config{}, s.RNG()),
				}, d.Deliver)
				ep := tcp.New(s, l, tcp.Config{
					ID: 1, CC: &tcp.Cubic{DisableHyStart: tc.disable},
					BaseRTT: 20 * time.Millisecond,
				})
				d.Register(1, ep.DeliverData)
				ep.Start()
				peak = 0
				probe := s.Every(10*time.Millisecond, func() {
					if q := l.QueueDelayNow().Seconds(); q > peak {
						peak = q
					}
				})
				s.RunUntil(5 * time.Second)
				probe.Stop()
			}
			b.ReportMetric(peak*1e3, "peakQ-ms")
		})
	}
}

// BenchmarkCurvyREDVsPI2 compares the DualQ draft's example AQM with PI2 on
// the coexistence cell: both couple, but Curvy RED pushes back with
// standing delay where PI2 holds a fixed target.
func BenchmarkCurvyREDVsPI2(b *testing.B) {
	for _, name := range []string{"pi2", "curvy-red"} {
		name := name
		b.Run(name, func(b *testing.B) {
			var meanQ, ratio float64
			for i := 0; i < b.N; i++ {
				res := experiments.Run(experiments.Scenario{
					Seed:        int64(i + 1),
					LinkRateBps: 40e6,
					NewAQM: func(rng *rand.Rand) aqm.AQM {
						if name == "pi2" {
							return core.New(core.Config{}, rng)
						}
						return aqm.NewCurvyRED(aqm.CurvyREDConfig{}, rng)
					},
					Bulk: []traffic.BulkFlowSpec{
						{CC: "cubic", Count: 1, RTT: 10 * time.Millisecond},
						{CC: "dctcp", Count: 1, RTT: 10 * time.Millisecond},
					},
					Duration: 40 * time.Second,
					WarmUp:   15 * time.Second,
				})
				meanQ = res.Sojourn.Mean()
				if d := res.Groups[1].MeanPerFlow(); d > 0 {
					ratio = res.Groups[0].MeanPerFlow() / d
				}
			}
			b.ReportMetric(meanQ*1e3, "meanQ-ms")
			b.ReportMetric(ratio, "cubic/dctcp")
		})
	}
}

// BenchmarkDualQExtension runs the DualPI2 comparison (single coupled queue
// vs dual queue) and reports the L-queue latency advantage.
func BenchmarkDualQExtension(b *testing.B) {
	var r *experiments.DualQResult
	for i := 0; i < b.N; i++ {
		r = experiments.DualQ(quickOpts(i), 1, 1)
	}
	b.ReportMetric(r.SingleLDelayMs.Mean, "single-L-ms")
	b.ReportMetric(r.DualLDelayMs.Mean, "dual-L-ms")
	b.ReportMetric(r.DualRatio, "dual-ratio")
}

// BenchmarkCampaignParallel measures the campaign engine's run-level
// parallelism on a 16-cell matrix of independent simulations (the quick
// coexistence grid's shape). Each sub-benchmark reports simulator events
// per wall-clock second; on a multi-core machine jobs=8 should approach
// an 8x events/sec advantage over jobs=1, with byte-identical results.
func BenchmarkCampaignParallel(b *testing.B) {
	matrix := func(baseSeed int64) []campaign.Task {
		var tasks []campaign.Task
		for _, linkMbps := range []float64{4, 10, 20, 40} {
			for _, rtt := range []time.Duration{5 * time.Millisecond, 10 * time.Millisecond,
				20 * time.Millisecond, 50 * time.Millisecond} {
				linkMbps, rtt := linkMbps, rtt
				tasks = append(tasks, campaign.Task{
					Name:      "bench-cell",
					SeedIndex: len(tasks),
					Run: func(tc *campaign.TaskCtx) any {
						return experiments.Run(experiments.Scenario{
							Seed:        tc.Seed,
							LinkRateBps: linkMbps * 1e6,
							NewAQM: func(rng *rand.Rand) aqm.AQM {
								return core.New(core.Config{}, rng)
							},
							Bulk: []traffic.BulkFlowSpec{
								{CC: "cubic", Count: 1, RTT: rtt, Label: "A"},
								{CC: "dctcp", Count: 1, RTT: rtt, Label: "B"},
							},
							Duration: 10 * time.Second,
							WarmUp:   4 * time.Second,
						})
					},
				})
			}
		}
		return tasks
	}
	for _, jobs := range []int{1, 8} {
		jobs := jobs
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			var events uint64
			start := time.Now()
			for i := 0; i < b.N; i++ {
				recs := campaign.Execute(matrix(int64(i+1)),
					campaign.ExecOptions{Jobs: jobs, BaseSeed: int64(i + 1)})
				for _, rec := range recs {
					events += rec.Events
				}
			}
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(events)/elapsed, "events/s")
			}
			b.ReportMetric(float64(events)/float64(b.N), "events/op")
		})
	}
}

// BenchmarkPragueAlphaUpdate pins the per-ACK cost of Prague's congestion
// control: observation-window accounting, the EWMA close with a marked-
// window reduction, and the RTT-independence-scaled increase. The ACK
// stream closes a window every 20 ACKs with a mark every 16, so the bench
// exercises accumulate, close-with-cut and close-clean paths together.
// Budget: zero allocations (BENCH_hotpath.json).
func BenchmarkPragueAlphaUpdate(b *testing.B) {
	p := &tcp.Prague{}
	s := &tcp.State{Cwnd: 20, Ssthresh: 10, MinCwnd: 2}
	p.Init(s)
	s.SRTT = 10 * time.Millisecond
	var una, nxt int64
	tcp.BindSeq(p, &una, &nxt)
	nxt = 20
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		una++
		if una%20 == 0 {
			nxt += 20
		}
		p.OnAck(s, 1, i%16 == 0, time.Duration(i)*time.Millisecond)
	}
	if s.Cwnd < tcp.PragueMinCwnd {
		b.Fatal("cwnd under floor")
	}
}

// BenchmarkECNMarkPath is BenchmarkLinkPacketPath with every ECT(1) packet
// CE-marked at enqueue: the delta over the plain path is the marking cost
// itself — the step decision, the ECN rewrite and the per-flow mark
// accounting in the link auditor. Budget: zero allocations (the auditor's
// per-flow map is warmed before the timer starts).
func BenchmarkECNMarkPath(b *testing.B) {
	s := sim.New(1)
	pool := s.PacketPool()
	delivered := 0
	l := link.New(s, link.Config{
		RateBps: 1e12,
		AQM: aqm.NewStepMark(aqm.StepMarkConfig{
			Threshold: time.Nanosecond,
			Estimator: aqm.EstimateByCapacity,
		}),
	}, func(p *packet.Packet) {
		delivered++
		pool.Release(p)
	})
	// Warm the auditor's lazy per-flow mark map off the clock.
	for i := 0; i < 64; i++ {
		l.Enqueue(pool.NewData(1, int64(i), packet.MSS, packet.ECT1))
	}
	s.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Enqueue(pool.NewData(1, int64(64+i), packet.MSS, packet.ECT1))
		if i%64 == 0 {
			s.RunUntil(s.Now() + time.Microsecond)
		}
	}
	s.Run()
	if delivered == 0 || l.Marks() == 0 {
		b.Fatalf("mark path not exercised: delivered=%d marks=%d", delivered, l.Marks())
	}
}

// BenchmarkFastForwardEpoch measures one analytic fast-forward epoch on the
// heavy tier's regime: a quiescent 120-flow PI2 cell advanced one virtual
// second per op by the hybrid engine (cwnd stepping, fluid queue, RNG-exact
// mark/drop draws, time-shift commit). The packet-mode interludes needed to
// re-establish quiescence after a stay-band exit run outside the timer, so
// ns/op and allocs/op are the epoch path alone — the budget
// BENCH_hotpath.json gates next to its packet-mode twin BenchmarkManyFlows.
func BenchmarkFastForwardEpoch(b *testing.B) {
	const flows = 120
	s := sim.New(1)
	d := link.NewDispatcher()
	l := link.New(s, link.Config{
		RateBps: 2e6 * flows,
		AQM:     core.New(core.Config{}, s.RNG()),
		Sojourn: stats.NewDelayHistogram(),
	}, d.Deliver)
	eps := make([]*tcp.Endpoint, 0, flows)
	for id := 1; id <= flows; id++ {
		var cc tcp.CongestionControl
		mode := tcp.ECNOff
		switch id % 3 {
		case 0:
			cc = tcp.Reno{}
		case 1:
			cc = &tcp.Cubic{}
		case 2:
			cc = &tcp.DCTCP{}
			mode = tcp.ECNScalable
		}
		ep := tcp.New(s, l, tcp.Config{ID: id, CC: cc, ECN: mode, BaseRTT: 10 * time.Millisecond})
		d.Register(id, ep.DeliverData)
		ep.Start()
		eps = append(eps, ep)
	}
	eng, ok := ff.New(s, l, eps)
	if !ok {
		b.Fatal("PI2 cell must support fast-forward")
	}
	s.RunUntil(2 * time.Second)
	for i := 0; i < 600 && !eng.Quiescent(); i++ {
		s.RunUntil(s.Now() + 50*time.Millisecond)
	}
	if !eng.Quiescent() {
		b.Fatal("cell never became quiescent")
	}
	b.ReportAllocs()
	b.ResetTimer()
	var ffTime time.Duration
	for i := 0; i < b.N; i++ {
		adv := eng.TryAdvance(s.Now() + time.Second)
		ffTime += adv
		if adv == 0 {
			b.StopTimer()
			for j := 0; j < 600 && !eng.Quiescent(); j++ {
				s.RunUntil(s.Now() + 50*time.Millisecond)
			}
			b.StartTimer()
		}
	}
	b.StopTimer()
	b.ReportMetric(ffTime.Seconds()/float64(b.N), "sim_s/op")
	b.ReportMetric(float64(eng.VirtualPkts)/float64(b.N), "virtual_pkts/op")
}

// BenchmarkFastForwardTwin runs the same 60-flow heavy-style cell through
// the full scenario runner in packet mode and in hybrid fast-forward mode —
// the wall-clock ratio between the two sub-benchmarks is the engine's
// end-to-end speedup on a quiescent steady state (the tentpole claim;
// CHANGES.md records the 5000-flow figure from `pi2bench -ff heavy`).
func BenchmarkFastForwardTwin(b *testing.B) {
	cell := func(ffOn bool, seed int64) experiments.Scenario {
		factory, _ := experiments.FactoryByName("pi2", 0)
		return experiments.Scenario{
			Seed:           seed,
			FastForward:    ffOn,
			LinkRateBps:    2e6 * 60,
			NewAQM:         factory,
			CompactMetrics: true,
			Bulk: []traffic.BulkFlowSpec{
				{CC: "reno", Count: 20, RTT: 10 * time.Millisecond, Label: "reno"},
				{CC: "cubic", Count: 20, RTT: 10 * time.Millisecond, Label: "cubic"},
				{CC: "dctcp", Count: 20, RTT: 10 * time.Millisecond, Label: "dctcp"},
			},
			Duration: 8 * time.Second,
			WarmUp:   3200 * time.Millisecond,
		}
	}
	for _, mode := range []struct {
		name string
		ff   bool
	}{{"packet", false}, {"ff", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var epochs, ffSimMs float64
			for i := 0; i < b.N; i++ {
				res := experiments.Run(cell(mode.ff, int64(i+1)))
				if res.Utilization < 0.9 {
					b.Fatalf("cell underutilized: %.3f", res.Utilization)
				}
				epochs += float64(res.FFEpochs)
				ffSimMs += res.FFTime.Seconds() * 1e3
			}
			b.ReportMetric(epochs/float64(b.N), "ff_epochs/op")
			b.ReportMetric(ffSimMs/float64(b.N), "ff_sim_ms/op")
		})
	}
}
